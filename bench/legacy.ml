(* The estimator exactly as it stood before the frozen-catalog / session
   rewrite (lib/core/{label_probs,estimator}.ml at 9a5f01f), vendored so the
   throughput experiment can measure the genuine pre-rewrite baseline in the
   same binary: hashtable-backed Label_probs, per-estimate state allocation,
   list-based representatives with List.sort, and uncached degree lookups
   against the mutable (hashtable) catalog read path. Only [estimate] is
   exposed; nothing outside bench/ links this module. *)

open Lpp_pgraph
open Lpp_pattern
open Lpp_stats
open Lpp_core

module Label_probs = struct
  type t = { labels : int; vars : (int, float array) Hashtbl.t }

  let create ~labels = { labels; vars = Hashtbl.create 8 }

  let label_count t = t.labels

  let clamp p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

  let introduce t ~var ~init =
    if Hashtbl.mem t.vars var then
      invalid_arg "Label_probs.introduce: variable already live";
    Hashtbl.add t.vars var (Array.init t.labels (fun l -> clamp (init l)))

  let drop t ~var = Hashtbl.remove t.vars var

  let is_live t ~var = Hashtbl.mem t.vars var

  let probs t var =
    match Hashtbl.find_opt t.vars var with
    | Some arr -> arr
    | None -> invalid_arg "Label_probs: variable not live"

  let get t ~var ~label = (probs t var).(label)

  let set t ~var ~label p = (probs t var).(label) <- clamp p

  let update_all t ~var ~f =
    let arr = probs t var in
    Array.iteri (fun l p -> arr.(l) <- clamp (f l p)) arr

  let positive_labels t ~var =
    let arr = probs t var in
    let acc = ref [] in
    for l = t.labels - 1 downto 0 do
      if arr.(l) > 0.0 then acc := l :: !acc
    done;
    !acc

  let live_vars t =
    Hashtbl.fold (fun v _ acc -> v :: acc) t.vars [] |> List.sort Int.compare
end


type state = {
  config : Config.t;
  catalog : Catalog.t;
  hierarchy : Label_hierarchy.t;  (* trivial when H_L is switched off *)
  partition : Label_partition.t;  (* trivial when D_L is switched off *)
  probs : Label_probs.t;
  rel_var_types : int array array;  (* rel var -> allowed types from Expand *)
  mutable card : float;
  mutable last_expand_factor : float;
      (* multiplier applied by the most recent Expand, for the triangle-aware
         MergeOn which re-bases the closing estimate on the wedge count *)
  mutable last_expand_dir : Direction.t;
}

let make_state config catalog (alg : Algebra.t) =
  let labels = Catalog.label_count catalog in
  {
    config;
    catalog;
    hierarchy =
      (if config.Config.use_hierarchy then Catalog.hierarchy catalog
       else Label_hierarchy.trivial labels);
    partition =
      (if config.Config.use_partition then Catalog.partition catalog
       else Label_partition.trivial labels);
    probs = Label_probs.create ~labels;
    rel_var_types = Array.make (max alg.rel_vars 1) [||];
    card = 0.0;
    last_expand_factor = 1.0;
    last_expand_dir = Direction.Out;
  }

let fi = float_of_int

let safe_div num den = if den <= 0.0 then 0.0 else num /. den

let clamp01 p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

(* ------------------------------------------------------------------ *)
(* GetNodes (Section 5.1)                                              *)
(* ------------------------------------------------------------------ *)

let apply_get_nodes st ~var =
  let total = fi (Catalog.nc_star st.catalog) in
  st.card <- total;
  Label_probs.introduce st.probs ~var ~init:(fun l ->
      safe_div (fi (Catalog.nc st.catalog l)) total)

(* ------------------------------------------------------------------ *)
(* LabelSelection (Section 5.2)                                        *)
(* ------------------------------------------------------------------ *)

let apply_label_selection st ~var ~label =
  (* Labels interned after the catalog was built (e.g. a query naming a label
     the data never uses) have no statistics: the selection is empty. *)
  if label < 0 || label >= Label_probs.label_count st.probs then begin
    st.card <- 0.0;
    Label_probs.update_all st.probs ~var ~f:(fun _ _ -> 0.0)
  end
  else begin
  let p_sel = Label_probs.get st.probs ~var ~label in
  st.card <- st.card *. p_sel;
  if p_sel <= 0.0 then
    (* Contradictory selection: the variable now provably has [label] in an
       empty result; only implied superlabels keep probability 1. *)
    Label_probs.update_all st.probs ~var ~f:(fun l _ ->
        if l = label || Label_hierarchy.is_strict_sublabel st.hierarchy label l
        then 1.0
        else 0.0)
  else
    Label_probs.update_all st.probs ~var ~f:(fun l p ->
        if l = label then 1.0 (* case 1 *)
        else if Label_hierarchy.is_strict_sublabel st.hierarchy label l then
          1.0 (* case 2: selected label is a sublabel of l *)
        else if Label_hierarchy.is_strict_sublabel st.hierarchy l label then
          p /. p_sel (* case 3: l is a sublabel of the selected label *)
        else if Label_partition.disjoint st.partition label l then 0.0
          (* case 5 *)
        else p (* case 4: overlapping, independence keeps P(l) *))
  end

(* ------------------------------------------------------------------ *)
(* PropertySelection (Section 5.3)                                     *)
(* ------------------------------------------------------------------ *)

let node_prop_owners st ~var =
  match Label_probs.positive_labels st.probs ~var with
  | [] -> [ Prop_stats.Any_node ]
  | labels -> List.map (fun l -> Prop_stats.Node_label l) labels

let rel_prop_owners st ~rvar =
  match Array.to_list st.rel_var_types.(rvar) with
  | [] -> [ Prop_stats.Any_rel ]
  | types -> List.map (fun t -> Prop_stats.Rel_type t) types

let avg_selectivity st owners (key, pred) =
  let stats = Catalog.props st.catalog in
  let sum =
    List.fold_left
      (fun acc owner -> acc +. Prop_stats.selectivity stats owner ~key pred)
      0.0 owners
  in
  safe_div sum (fi (List.length owners))

let apply_prop_selection st ~kind ~var ~props =
  match st.config.Config.property_mode with
  | Config.Fixed f ->
      (* Classical constant selectivity; predicates on the same entity are
         assumed fully correlated, so min over them is still [f]. *)
      st.card <- st.card *. f
  | Config.Use_stats -> begin
      let owners =
        match (kind : Algebra.var_kind) with
        | Node_var -> node_prop_owners st ~var
        | Rel_var -> rel_prop_owners st ~rvar:var
      in
      let overall =
        Array.fold_left
          (fun acc pred -> Float.min acc (avg_selectivity st owners pred))
          1.0 props
      in
      st.card <- st.card *. overall;
      match kind with
      | Rel_var -> ()
      | Node_var ->
          (* Bayes: P(ℓ | predicates) = P(ℓ) · sel(ℓ) / overall. Labels whose
             own selectivity is zero drop out; labels satisfying the
             predicates more often than average gain probability. *)
          let stats = Catalog.props st.catalog in
          Label_probs.update_all st.probs ~var ~f:(fun l p ->
              if p <= 0.0 then 0.0
              else begin
                let min_sel_for_label =
                  Array.fold_left
                    (fun acc (key, pred) ->
                      Float.min acc
                        (Prop_stats.selectivity stats (Node_label l) ~key pred))
                    1.0 props
                in
                if min_sel_for_label <= 0.0 then 0.0
                else safe_div (p *. min_sel_for_label) overall
              end)
    end

(* ------------------------------------------------------------------ *)
(* Representative labels (shared by Expand and MergeOn, Sections 5.4/5.5) *)
(* ------------------------------------------------------------------ *)

(* Order the labels of one partition cluster: representative labels are those
   that cover most of the nodes matched by v (probability descending) and
   whose extent size is closest to the current result cardinality |R|
   (Section 5.4's ordering criterion). After a LabelSelection this ranks the
   selected label first, so its degree statistics dominate the Expand. *)
let order_cluster st ~prob cluster =
  let card = Float.max st.card 0.0 in
  let scored =
    Array.to_list cluster
    |> List.filter_map (fun l ->
           let p = prob l in
           if p <= 0.0 then None
           else Some (l, p, Float.abs (fi (Catalog.nc st.catalog l) -. card)))
  in
  List.sort
    (fun (_, p1, d1) (_, p2, d2) ->
      match Float.compare p2 p1 with
      | 0 -> Float.compare d1 d2
      | c -> c)
    scored
  |> List.map (fun (l, _, _) -> l)

(* P(v has ℓⱼ and none of the previously ranked labels), Equations 5–6. *)
let repr_prob st ~prob ~before lj =
  let p_lj = prob lj in
  if p_lj <= 0.0 then 0.0
  else if
    List.exists (fun l' -> Label_hierarchy.is_strict_sublabel st.hierarchy lj l') before
  then 0.0 (* ℓⱼ implies a negated superlabel *)
  else begin
    let maximal = Label_hierarchy.maximal_among st.hierarchy before in
    List.fold_left
      (fun acc l' ->
        let factor =
          if Label_hierarchy.is_strict_sublabel st.hierarchy l' lj then
            (* exact under the hierarchy: P(ℓⱼ ∧ ¬ℓ') = P(ℓⱼ) − P(ℓ') *)
            clamp01 (1.0 -. safe_div (prob l') p_lj)
          else clamp01 (1.0 -. prob l')
        in
        acc *. factor)
      p_lj maximal
  end

(* All (label, repr-probability) pairs across the partition, plus the label
   coverage (probability that the node carries at least one label). *)
let representatives st ~prob =
  let reprs = ref [] in
  let coverage = ref 0.0 in
  Array.iter
    (fun cluster ->
      let ordered = order_cluster st ~prob cluster in
      let rec go before = function
        | [] -> ()
        | lj :: rest ->
            let p = repr_prob st ~prob ~before lj in
            if p > 0.0 then begin
              reprs := (lj, p) :: !reprs;
              coverage := !coverage +. p
            end;
            go (lj :: before) rest
      in
      go [] ordered)
    (Label_partition.clusters st.partition);
  (List.rev !reprs, clamp01 !coverage)

(* ------------------------------------------------------------------ *)
(* Expand (Section 5.4)                                                *)
(* ------------------------------------------------------------------ *)

let degree st ~dir ~types ~node ~other =
  let count = Catalog.rc st.catalog ~dir ~node ~types ~other in
  let base =
    match node with
    | Some l -> Catalog.nc st.catalog l
    | None -> Catalog.nc_star st.catalog
  in
  safe_div (fi count) (fi base)

(* One hop of expansion from a population described by [prob] (per-label
   probabilities). Returns the expansion factor and the per-label
   probabilities of the hop's endpoints. *)
let expand_step st ~types ~dir ~prob =
  let reprs, coverage = representatives st ~prob in
  let p_unlabeled = clamp01 (1.0 -. coverage) in
  let deg_of ?other l = degree st ~dir ~types ~node:(Some l) ~other in
  let deg_star ?other () = degree st ~dir ~types ~node:None ~other in
  let expansion =
    List.fold_left (fun acc (l, p) -> acc +. (p *. deg_of l)) 0.0 reprs
    +. (p_unlabeled *. deg_star ())
  in
  let target_prob =
    if st.config.Config.advanced_rc then fun l' ->
      let restricted =
        List.fold_left
          (fun acc (l, p) -> acc +. (p *. deg_of ~other:l' l))
          0.0 reprs
        +. (p_unlabeled *. deg_star ~other:l' ())
      in
      safe_div restricted expansion
    else begin
      (* Simple statistics: the share of qualifying relationship endpoints
         carrying ℓ', from reversed pair counts. *)
      let rev = Direction.reverse dir in
      let total = Catalog.simple_rc st.catalog ~dir:rev ~node:None ~types in
      fun l' ->
        let into =
          Catalog.simple_rc st.catalog ~dir:rev ~node:(Some l') ~types
        in
        safe_div (fi into) (fi total)
    end
  in
  (expansion, target_prob, deg_of)

let apply_expand st ~src_var ~rel_var ~dst_var ~types ~dir ~hops =
  st.rel_var_types.(rel_var) <- types;
  st.last_expand_dir <- dir;
  let src_prob l = Label_probs.get st.probs ~var:src_var ~label:l in
  match hops with
  | None ->
      let expansion, target_prob, deg_of = expand_step st ~types ~dir ~prob:src_prob in
      st.card <- st.card *. expansion;
      st.last_expand_factor <- expansion;
      Label_probs.introduce st.probs ~var:dst_var ~init:target_prob;
      (* Updated probabilities for the source variable: high-degree nodes are
         over-represented after expansion (Section 5.4, final equation). *)
      Label_probs.update_all st.probs ~var:src_var ~f:(fun l p ->
          safe_div (p *. deg_of l) expansion)
  | Some (lo, hi) ->
      (* Variable-length path (the paper's future-work extension): iterate the
         one-hop step, summing the path-count factors of every admissible
         length and mixing the endpoint label distributions by their weight.
         Hop-level edge isomorphism is ignored by the estimate (repeated
         relationships are a vanishing fraction on realistic graphs). *)
      let labels = Catalog.label_count st.catalog in
      let cur = Array.init labels src_prob in
      let factor = ref 1.0 in
      let total = ref 0.0 in
      let mix = Array.make labels 0.0 in
      let first_hop_deg = ref None in
      for k = 1 to hi do
        let expansion, target_prob, deg_of =
          expand_step st ~types ~dir ~prob:(fun l -> cur.(l))
        in
        if k = 1 then first_hop_deg := Some (deg_of, expansion);
        factor := !factor *. expansion;
        for l = 0 to labels - 1 do
          cur.(l) <- clamp01 (target_prob l)
        done;
        if k >= lo then begin
          total := !total +. !factor;
          for l = 0 to labels - 1 do
            mix.(l) <- mix.(l) +. (!factor *. cur.(l))
          done
        end
      done;
      let total_factor = !total in
      st.card <- st.card *. total_factor;
      st.last_expand_factor <- total_factor;
      Label_probs.introduce st.probs ~var:dst_var ~init:(fun l ->
          safe_div mix.(l) total_factor);
      (* Source-variable re-weighting uses the first hop's degrees, the
         dominant effect for short ranges. *)
      (match !first_hop_deg with
      | Some (deg_of, expansion) when expansion > 0.0 ->
          Label_probs.update_all st.probs ~var:src_var ~f:(fun l p ->
              safe_div (p *. deg_of l) expansion)
      | Some _ | None -> ())

(* ------------------------------------------------------------------ *)
(* MergeOn (Section 5.5)                                               *)
(* ------------------------------------------------------------------ *)

(* Triangle-aware closing (extension): a MergeOn that closes a 3-cycle
   immediately after its Expand can be estimated as
     |wedges| · closure-rate
   instead of |wedges| · deg · P(same node). We re-base on the pre-Expand
   cardinality (the wedge estimate) and multiply by the global wedge-closure
   rate. The closing relationship's type constraint is not conditioned on —
   a per-type census would refine this further. *)
let apply_triangle_merge st ~keep ~merge =
  let ts = Catalog.triangles st.catalog in
  let rate =
    match st.last_expand_dir with
    | Direction.Out | Direction.In -> ts.Triangle_stats.rate_directed
    | Direction.Both -> ts.Triangle_stats.rate_undirected
  in
  let wedges = safe_div st.card st.last_expand_factor in
  let merged = wedges *. rate in
  let reduction = safe_div merged (Float.max st.card 1e-300) in
  st.card <- merged;
  let prob_merge l = Label_probs.get st.probs ~var:merge ~label:l in
  Label_probs.update_all st.probs ~var:keep ~f:(fun l pk ->
      let combined = Float.min pk (prob_merge l) in
      if reduction <= 0.0 then 0.0 else clamp01 (combined /. reduction));
  Label_probs.drop st.probs ~var:merge

let apply_merge_on st ~keep ~merge =
  let prob_keep l = Label_probs.get st.probs ~var:keep ~label:l in
  let prob_merge l = Label_probs.get st.probs ~var:merge ~label:l in
  (* Rank clusters by the max of both variables' probabilities, then compute
     per-variable representative probabilities along the shared order. *)
  let prob_max l = Float.max (prob_keep l) (prob_merge l) in
  let labeled = ref 0.0 in
  let cov_keep = ref 0.0 and cov_merge = ref 0.0 in
  Array.iter
    (fun cluster ->
      let ordered = order_cluster st ~prob:prob_max cluster in
      let rec go before = function
        | [] -> ()
        | lj :: rest ->
            let pk = repr_prob st ~prob:prob_keep ~before lj in
            let pm = repr_prob st ~prob:prob_merge ~before lj in
            cov_keep := !cov_keep +. pk;
            cov_merge := !cov_merge +. pm;
            let n = Catalog.nc st.catalog lj in
            if n > 0 then labeled := !labeled +. (pk *. pm /. fi n);
            go (lj :: before) rest
      in
      go [] ordered)
    (Label_partition.clusters st.partition);
  let unl_keep = clamp01 (1.0 -. !cov_keep) in
  let unl_merge = clamp01 (1.0 -. !cov_merge) in
  let unlabeled =
    safe_div (unl_keep *. unl_merge) (fi (Catalog.nc_star st.catalog))
  in
  let reduction = !labeled +. unlabeled in
  st.card <- st.card *. reduction;
  Label_probs.update_all st.probs ~var:keep ~f:(fun l pk ->
      let combined = Float.min pk (prob_merge l) in
      if reduction <= 0.0 then 0.0 else clamp01 (combined /. reduction));
  Label_probs.drop st.probs ~var:merge

(* ------------------------------------------------------------------ *)
(* Algorithm 1                                                         *)
(* ------------------------------------------------------------------ *)

let apply_op st (op : Algebra.op) =
  (match op with
  | Get_nodes { var } -> apply_get_nodes st ~var
  | Label_selection { var; label } -> apply_label_selection st ~var ~label
  | Prop_selection { kind; var; props } ->
      apply_prop_selection st ~kind ~var ~props
  | Expand { src_var; rel_var; dst_var; types; dir; hops } ->
      apply_expand st ~src_var ~rel_var ~dst_var ~types ~dir ~hops
  | Merge_on { keep; merge; cycle_len } ->
      if st.config.Config.use_triangles && cycle_len = Some 3 then
        apply_triangle_merge st ~keep ~merge
      else apply_merge_on st ~keep ~merge);
  if st.card < 0.0 then st.card <- 0.0

let estimate config catalog (alg : Algebra.t) =
  let st = make_state config catalog alg in
  Array.iter (apply_op st) alg.ops;
  st.card

