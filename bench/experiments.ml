(* One function per reproduced table / figure. Each prints the rows or series
   the paper reports; EXPERIMENTS.md records paper-vs-measured shapes. *)

open Lpp_util
open Lpp_harness
open Lpp_workload

let fi = float_of_int

let qerrs ms = Runner.q_errors ms

let median xs =
  match Quantiles.summarize xs with Some s -> s.median | None -> nan

(* ------------------------------------------------------------------ *)
(* Table 1: data set characteristics                                    *)
(* ------------------------------------------------------------------ *)

let table1 (env : Env.t) =
  let t = Ascii_table.create Lpp_datasets.Dataset.summary_headers in
  List.iter
    (fun ds -> Ascii_table.add_row t (Lpp_datasets.Dataset.summary_row ds))
    env.datasets;
  Ascii_table.print ~title:"Table 1: data sets (synthetic stand-ins)" t

(* ------------------------------------------------------------------ *)
(* Table 2: query set sizes                                             *)
(* ------------------------------------------------------------------ *)

let table2 (env : Env.t) =
  let t = Ascii_table.create [ "data set"; "with props"; "without props" ] in
  List.iter
    (fun name ->
      Ascii_table.add_row t
        [ name;
          string_of_int (List.length (Env.queries env ~with_props:true name));
          string_of_int (List.length (Env.queries env ~with_props:false name)) ])
    (Env.dataset_names env);
  Ascii_table.print ~title:"Table 2: number of generated query patterns" t

(* ------------------------------------------------------------------ *)
(* Table 3: summary sizes                                               *)
(* ------------------------------------------------------------------ *)

let table3 (env : Env.t) =
  let t = Ascii_table.create
      [ "data set"; "CSets"; "Neo4j"; "A-LHD"; "A-LHD (no props)"; "WJ"; "SumRDF" ] in
  List.iter
    (fun (ds : Lpp_datasets.Dataset.t) ->
      let csets = Technique.csets ds in
      let neo = Technique.neo4j ds.catalog in
      let alhd = Technique.ours Lpp_core.Config.a_lhd ds.catalog in
      let alhd10 = Technique.ours Lpp_core.Config.a_lhd_10pct ds.catalog in
      let wj = Technique.wander_join ~seed:1 WJ_1 ds in
      let sum = Technique.sumrdf ds in
      Ascii_table.add_row t
        [ ds.name;
          Mem_size.to_string csets.memory_bytes;
          Mem_size.to_string neo.memory_bytes;
          Mem_size.to_string alhd.memory_bytes;
          Mem_size.to_string alhd10.memory_bytes;
          Mem_size.to_string wj.memory_bytes;
          Mem_size.to_string sum.memory_bytes ])
    env.datasets;
  Ascii_table.print ~title:"Table 3: (approximate) sizes of summaries" t

(* ------------------------------------------------------------------ *)
(* Figure 1: accuracy vs efficiency trade-off (SNB, with-props set)      *)
(* ------------------------------------------------------------------ *)

let fig1 (env : Env.t) =
  let t =
    Ascii_table.create
      [ "technique"; "median q-error"; "median runtime"; "supported" ]
  in
  let qs = Env.queries env ~with_props:true "SNB" in
  List.iter
    (fun name ->
      let ms = Env.get_run env "SNB" ~with_props:true name in
      if ms <> [] then
        Ascii_table.add_row t
          [ name;
            Report.float_cell (median (qerrs ms));
            Report.ns_to_string (median (Runner.runtimes_ns ms));
            Printf.sprintf "%d/%d" (List.length ms) (List.length qs) ])
    ("S-L" :: Env.sota_names);
  Ascii_table.print
    ~title:
      "Figure 1: accuracy/efficiency trade-off (SNB, set 1) — no technique \
       should dominate A-LHD"
    t

(* ------------------------------------------------------------------ *)
(* Figure 5: configuration ablation by pattern shape, per dataset        *)
(* ------------------------------------------------------------------ *)

let shapes = [ "chain"; "star"; "tree"; "cyclic" ]

let fig5 (env : Env.t) =
  List.iter
    (fun ds_name ->
      let t = Ascii_table.create ("config" :: shapes) in
      let configs =
        List.map Lpp_core.Config.name Lpp_core.Config.all @ [ "Neo4j" ]
      in
      List.iter
        (fun cfg ->
          let ms = Env.get_run env ds_name ~with_props:true cfg in
          let row =
            List.map
              (fun shape ->
                let sub =
                  Runner.filter
                    (fun q ->
                      Lpp_pattern.Shape.coarse q.Query_gen.shape = shape)
                    ms
                in
                Report.qerr_cell (qerrs sub))
              shapes
          in
          Ascii_table.add_row t (cfg :: row))
        configs;
      Ascii_table.print
        ~title:
          (Printf.sprintf
             "Figure 5 (%s): q-error by configuration and shape — median [q25, q75]"
             ds_name)
        t)
    (Env.dataset_names env)

(* ------------------------------------------------------------------ *)
(* Figure 6: estimation runtime (SNB, with-props set)                   *)
(* ------------------------------------------------------------------ *)

let fig6 (env : Env.t) =
  let t = Ascii_table.create [ "technique"; "runtime median [q25, q75]"; "max" ] in
  List.iter
    (fun name ->
      let ms = Env.get_run env "SNB" ~with_props:true name in
      if ms <> [] then begin
        let times = Runner.runtimes_ns ms in
        let mx = List.fold_left Float.max 0.0 times in
        Ascii_table.add_row t
          [ name; Report.time_cell times; Report.ns_to_string mx ]
      end)
    ("S-L" :: Env.sota_names);
  Ascii_table.print
    ~title:"Figure 6: cardinality estimation runtime (SNB, set 1)" t

(* ------------------------------------------------------------------ *)
(* Figure 7: q-error by pattern size, with and without properties        *)
(* ------------------------------------------------------------------ *)

let size_buckets = [ "2-4"; "5-6"; "7-8"; "9+" ]

let fig7 (env : Env.t) =
  List.iter
    (fun with_props ->
      List.iter
        (fun ds_name ->
          let t = Ascii_table.create ("technique" :: size_buckets) in
          List.iter
            (fun name ->
              let ms = Env.get_run env ds_name ~with_props name in
              if ms <> [] then begin
                let row =
                  List.map
                    (fun bucket ->
                      let sub =
                        Runner.filter
                          (fun q -> Query_gen.size_bucket q.Query_gen.size = bucket)
                          ms
                      in
                      Report.qerr_cell (qerrs sub))
                    size_buckets
                in
                Ascii_table.add_row t (name :: row)
              end)
            Env.sota_names;
          Ascii_table.print
            ~title:
              (Printf.sprintf "Figure 7%s (%s): q-error by pattern size, %s"
                 (if with_props then "a" else "b")
                 ds_name
                 (if with_props then "with properties" else "without properties"))
            t)
        (Env.dataset_names env))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Figure 8a: q-error by pattern shape (no-props set)                   *)
(* ------------------------------------------------------------------ *)

let fig8a (env : Env.t) =
  List.iter
    (fun ds_name ->
      let t = Ascii_table.create ("technique" :: shapes) in
      List.iter
        (fun name ->
          let ms = Env.get_run env ds_name ~with_props:false name in
          if ms <> [] then begin
            let row =
              List.map
                (fun shape ->
                  let sub =
                    Runner.filter
                      (fun q -> Lpp_pattern.Shape.coarse q.Query_gen.shape = shape)
                      ms
                  in
                  Report.qerr_cell (qerrs sub))
                shapes
            in
            Ascii_table.add_row t (name :: row)
          end)
        Env.sota_names;
      Ascii_table.print
        ~title:(Printf.sprintf "Figure 8a (%s): q-error by pattern shape (set 2)" ds_name)
        t)
    (Env.dataset_names env)

(* ------------------------------------------------------------------ *)
(* Figure 8b: q-error by label density (no-props set)                   *)
(* ------------------------------------------------------------------ *)

let density_bucket q =
  let d = Lpp_pattern.Pattern.label_density q.Query_gen.pattern in
  if d <= 0.3 then "low (0-0.3]" else if d <= 0.5 then "med (0.3-0.5]" else "high (>0.5)"

let fig8b (env : Env.t) =
  let buckets = [ "low (0-0.3]"; "med (0.3-0.5]"; "high (>0.5)" ] in
  List.iter
    (fun ds_name ->
      let t = Ascii_table.create ("technique" :: buckets) in
      List.iter
        (fun name ->
          let ms = Env.get_run env ds_name ~with_props:false name in
          if ms <> [] then begin
            let row =
              List.map
                (fun bucket ->
                  let sub = Runner.filter (fun q -> density_bucket q = bucket) ms in
                  Report.qerr_cell (qerrs sub))
                buckets
            in
            Ascii_table.add_row t (name :: row)
          end)
        Env.sota_names;
      Ascii_table.print
        ~title:
          (Printf.sprintf "Figure 8b (%s): q-error by label density (set 2)" ds_name)
        t)
    (Env.dataset_names env)

(* ------------------------------------------------------------------ *)
(* Figure 8c: q-error by result size (no-props set)                     *)
(* ------------------------------------------------------------------ *)

let result_bucket q =
  let c = q.Query_gen.true_card in
  if c < 10 then "1-9"
  else if c < 100 then "10-99"
  else if c < 1000 then "100-999"
  else "1000+"

let fig8c (env : Env.t) =
  let buckets = [ "1-9"; "10-99"; "100-999"; "1000+" ] in
  List.iter
    (fun ds_name ->
      let t = Ascii_table.create ("technique" :: buckets) in
      List.iter
        (fun name ->
          let ms = Env.get_run env ds_name ~with_props:false name in
          if ms <> [] then begin
            let row =
              List.map
                (fun bucket ->
                  let sub = Runner.filter (fun q -> result_bucket q = bucket) ms in
                  Report.qerr_cell (qerrs sub))
                buckets
            in
            Ascii_table.add_row t (name :: row)
          end)
        Env.sota_names;
      Ascii_table.print
        ~title:
          (Printf.sprintf "Figure 8c (%s): q-error by result size (set 2)" ds_name)
        t)
    (Env.dataset_names env)

(* ------------------------------------------------------------------ *)
(* Support fractions (Section 6.2 percentages)                          *)
(* ------------------------------------------------------------------ *)

let support (env : Env.t) =
  let t = Ascii_table.create ("technique" :: Env.dataset_names env) in
  let techniques ds = Env.all_techniques env ds in
  let names =
    List.map
      (fun (tech : Technique.t) -> tech.name)
      (techniques (List.hd env.datasets))
  in
  List.iter
    (fun name ->
      let row =
        List.map
          (fun (ds : Lpp_datasets.Dataset.t) ->
            let tech =
              List.find (fun (t : Technique.t) -> t.name = name) (techniques ds)
            in
            let qs = Env.queries env ~with_props:false ds.name in
            Printf.sprintf "%.0f%%" (100.0 *. Runner.support_fraction tech qs))
          env.datasets
      in
      Ascii_table.add_row t (name :: row))
    names;
  Ascii_table.print
    ~title:"Supported fraction of the no-properties query sets (Section 6.2)" t

(* ------------------------------------------------------------------ *)
(* §6.2: homomorphism vs cyphermorphism ground truth                    *)
(* ------------------------------------------------------------------ *)

let semantics (env : Env.t) =
  let t =
    Ascii_table.create
      [ "data set"; "queries"; "median ratio"; "ratio>1.5"; "ratio>10" ]
  in
  List.iter
    (fun (ds : Lpp_datasets.Dataset.t) ->
      let qs = Env.queries env ~with_props:false ds.name in
      let ratios =
        List.filter_map
          (fun (q : Query_gen.query) ->
            match
              Lpp_exec.Matcher.count ~semantics:Lpp_exec.Semantics.Homomorphism
                ~budget:10_000_000 ds.graph q.pattern
            with
            | Lpp_exec.Matcher.Count hom ->
                Some (fi hom /. fi (max q.true_card 1))
            | Budget_exceeded -> None)
          qs
      in
      let frac pred =
        fi (List.length (List.filter pred ratios)) /. fi (List.length ratios)
      in
      Ascii_table.add_row t
        [ ds.name;
          string_of_int (List.length ratios);
          Report.float_cell (median ratios);
          Printf.sprintf "%.0f%%" (100.0 *. frac (fun r -> r > 1.5));
          Printf.sprintf "%.0f%%" (100.0 *. frac (fun r -> r > 10.0)) ])
    env.datasets;
  Ascii_table.print
    ~title:
      "Section 6.2: homomorphism / cyphermorphism cardinality ratios (set 2)"
    t

(* ------------------------------------------------------------------ *)
(* §4.3: heuristic operator order vs random orders                      *)
(* ------------------------------------------------------------------ *)

let ordering (env : Env.t) =
  let ds = Env.dataset env "SNB" in
  let qs = Env.queries env ~with_props:false "SNB" in
  let qs = List.filteri (fun i _ -> i < 25) qs in
  let rng = Rng.create (env.seed + 777) in
  let n_random = 100 in
  let percentiles =
    List.filter_map
      (fun (q : Query_gen.query) ->
        if Lpp_pattern.Pattern.rel_count q.pattern < 2 then None
        else begin
          let truth = fi q.true_card in
          let qerr alg =
            Qerror.q_error ~truth
              ~estimate:
                (Lpp_core.Estimator.estimate Lpp_core.Config.a_lhd ds.catalog alg)
          in
          let heuristic = qerr (Lpp_pattern.Planner.plan q.pattern) in
          let better = ref 0 in
          for _ = 1 to n_random do
            let alg = Lpp_pattern.Planner.random_order rng q.pattern in
            if qerr alg < heuristic then incr better
          done;
          Some (fi !better /. fi n_random)
        end)
      qs
  in
  let avg = List.fold_left ( +. ) 0.0 percentiles /. fi (List.length percentiles) in
  Printf.printf
    "\nSection 4.3 ordering heuristic (SNB, %d queries × %d random orders):\n"
    (List.length percentiles) n_random;
  Printf.printf
    "  average rank of the heuristic order: top-%.0f%% (paper: top-30%%)\n"
    (100.0 *. avg);
  Printf.printf "  median rank: top-%.0f%%\n" (100.0 *. median percentiles)

(* ------------------------------------------------------------------ *)
(* Extension: triangle statistics (paper's future work, Section 7)      *)
(* ------------------------------------------------------------------ *)

let ext_triangles (env : Env.t) =
  let t =
    Ascii_table.create
      [ "data set"; "closure rate"; "A-LHD (cyclic)"; "A-LHDT (cyclic)";
        "A-LHD (all)"; "A-LHDT (all)" ]
  in
  List.iter
    (fun (ds : Lpp_datasets.Dataset.t) ->
      let qs = Env.queries env ~with_props:false ds.name in
      let run config =
        Runner.run ~measure_time:false
          (Technique.ours config ds.catalog)
          qs
      in
      let base = run Lpp_core.Config.a_lhd in
      let tri = run Lpp_core.Config.a_lhdt in
      let cyclic ms =
        Runner.filter
          (fun q -> Lpp_pattern.Shape.coarse q.Query_gen.shape = "cyclic")
          ms
      in
      let rate =
        (Lpp_stats.Catalog.triangles ds.catalog).Lpp_stats.Triangle_stats
        .rate_directed
      in
      Ascii_table.add_row t
        [ ds.name;
          Printf.sprintf "%.4f" rate;
          Report.qerr_cell (qerrs (cyclic base));
          Report.qerr_cell (qerrs (cyclic tri));
          Report.qerr_cell (qerrs base);
          Report.qerr_cell (qerrs tri) ])
    env.datasets;
  Ascii_table.print
    ~title:
      "Extension: triangle-aware MergeOn (A-LHDT) vs A-LHD — q-error        median [q25, q75] (set 2)"
    t

(* ------------------------------------------------------------------ *)
(* Extension: variable-length paths (paper's future work, Section 7)    *)
(* ------------------------------------------------------------------ *)

let ext_varlen (env : Env.t) =
  let rng = Rng.create (env.seed + 4242) in
  let ranges = [ (1, 2); (1, 3); (2, 2); (2, 3) ] in
  let t =
    Ascii_table.create
      ("data set"
      :: List.map (fun (lo, hi) -> Printf.sprintf "*%d..%d" lo hi) ranges)
  in
  List.iter
    (fun (ds : Lpp_datasets.Dataset.t) ->
      let g = ds.graph in
      (* seed types: every single-typed relationship the query sets use *)
      let seeds =
        Env.queries env ~with_props:true ds.name
        |> List.concat_map (fun (q : Query_gen.query) ->
               Array.to_list q.pattern.rels
               |> List.filter_map (fun (r : Lpp_pattern.Pattern.rel_pat) ->
                      if Array.length r.r_types = 1 then Some r.r_types
                      else None))
        |> List.sort_uniq compare
      in
      let seeds =
        if List.length seeds >= 5 then seeds
        else
          (* fall back to random relationship types *)
          List.init 10 (fun _ ->
              [| Rng.int rng (Lpp_pgraph.Graph.rel_type_count g) |])
      in
      let row =
        List.map
          (fun (lo, hi) ->
            let qerrors =
              List.filter_map
                (fun types ->
                  let p =
                    Lpp_pattern.Pattern.make
                      ~nodes:
                        [| { Lpp_pattern.Pattern.n_labels = [||]; n_props = [||] };
                           { Lpp_pattern.Pattern.n_labels = [||]; n_props = [||] } |]
                      ~rels:
                        [| { Lpp_pattern.Pattern.r_src = 0; r_dst = 1;
                             r_types = types; r_directed = true;
                             r_props = [||]; r_hops = Some (lo, hi) } |]
                  in
                  match Lpp_exec.Matcher.count ~budget:20_000_000 g p with
                  | Lpp_exec.Matcher.Count c when c > 0 ->
                      let est =
                        Lpp_core.Estimator.estimate_pattern
                          Lpp_core.Config.a_lhd ds.catalog p
                      in
                      Some (Qerror.q_error ~truth:(fi c) ~estimate:est)
                  | _ -> None)
                (List.filteri (fun i _ -> i < 25) seeds)
            in
            Report.qerr_cell qerrors)
          ranges
      in
      Ascii_table.add_row t (ds.name :: row))
    env.datasets;
  Ascii_table.print
    ~title:
      "Extension: variable-length path estimation (A-LHD) — q-error        median [q25, q75] per hop range"
    t

(* ------------------------------------------------------------------ *)
(* Multicore scaling: ground truth, catalog build, runner               *)
(* ------------------------------------------------------------------ *)

(* Times the three parallelised stages at jobs ∈ {1, 2, 4}, checks the
   results are bit-identical to the sequential run, and writes the numbers
   to BENCH_parallel.json for machine consumption. *)
let parallel_bench (env : Env.t) =
  let ds = Env.dataset env "SNB" in
  let qs = Env.queries env ~with_props:false "SNB" in
  let jobs_list = [ 1; 2; 4 ] in
  (* each stage returns a digest of its full result so runs at different
     [jobs] can be compared for bit-identity without keeping results alive *)
  let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [])) in
  let ground_truth jobs =
    digest
      (List.map
         (fun (q : Query_gen.query) ->
           Lpp_exec.Matcher.count ~jobs ~budget:10_000_000 ds.graph q.pattern)
         qs)
  in
  let catalog jobs =
    let c = Lpp_stats.Catalog.build ~jobs ds.graph in
    let labels = None :: List.init (Lpp_stats.Catalog.label_count c) Option.some in
    let types =
      List.init (Lpp_pgraph.Graph.rel_type_count ds.graph) (fun t -> [| t |])
    in
    (* the full (label ∪ ✱)² × (type ∪ any) triple table, plus node counts
       and the memory accounting that folds over the raw tables *)
    let rc_matrix =
      List.concat_map
        (fun node ->
          List.concat_map
            (fun other ->
              List.map
                (fun types ->
                  Lpp_stats.Catalog.rc c ~dir:Lpp_pgraph.Direction.Out ~node
                    ~types ~other)
                ([||] :: types))
            labels)
        labels
    in
    let ncs =
      List.map
        (fun l -> Lpp_stats.Catalog.nc c (Option.value ~default:(-1) l))
        labels
    in
    digest
      ( rc_matrix,
        ncs,
        Lpp_stats.Catalog.rel_total c,
        Lpp_stats.Catalog.memory_bytes_simple c,
        Lpp_stats.Catalog.memory_bytes_advanced c )
  in
  let runner jobs =
    let tech = Technique.ours Lpp_core.Config.a_lhd ds.catalog in
    digest
      (List.map
         (fun (m : Runner.measurement) -> (m.query.Query_gen.id, m.estimate))
         (Runner.run ~measure_time:false ~jobs tech qs))
  in
  let stages =
    [ ("ground_truth", ground_truth); ("catalog", catalog); ("runner", runner) ]
  in
  let t = Ascii_table.create [ "stage"; "jobs"; "wall"; "speedup"; "identical" ] in
  let rows =
    List.concat_map
      (fun (stage, run) ->
        let timed jobs =
          let t0 = Clock.now_ns () in
          let d = run jobs in
          (d, Clock.elapsed_ns ~since:t0)
        in
        let base_digest, base_ns = timed 1 in
        List.map
          (fun jobs ->
            let d, ns = if jobs = 1 then (base_digest, base_ns) else timed jobs in
            let speedup = base_ns /. ns in
            let identical = String.equal d base_digest in
            Ascii_table.add_row t
              [ stage;
                string_of_int jobs;
                Report.ns_to_string ns;
                Printf.sprintf "%.2fx" speedup;
                (if identical then "yes" else "NO") ];
            Printf.sprintf
              "    { \"dataset\": \"SNB\", \"stage\": %S, \"jobs\": %d, \
               \"wall_ns\": %.0f, \"speedup\": %.3f, \"identical\": %b }"
              stage jobs ns speedup identical)
          jobs_list)
      stages
  in
  Ascii_table.print
    ~title:"Multicore scaling (SNB, set 2) — parallel vs sequential" t;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"dataset\": \"SNB\",\n  \"scale\": %S,\n  \"host_domains\": %d,\n\
    \  \"results\": [\n%s\n  ]\n}\n"
    (match env.scale with Env.Quick -> "quick" | Env.Default -> "default")
    (Domain.recommended_domain_count ())
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "[parallel] wrote BENCH_parallel.json\n%!"

(* ------------------------------------------------------------------ *)

let all : (string * string * (Env.t -> unit)) list =
  [
    ("table1", "data set characteristics", table1);
    ("table2", "query set sizes", table2);
    ("table3", "summary sizes", table3);
    ("fig1", "accuracy/efficiency trade-off", fig1);
    ("fig5", "configuration ablation by shape", fig5);
    ("fig6", "estimation runtime", fig6);
    ("fig7", "q-error by pattern size", fig7);
    ("fig8a", "q-error by shape", fig8a);
    ("fig8b", "q-error by label density", fig8b);
    ("fig8c", "q-error by result size", fig8c);
    ("support", "supported query fractions", support);
    ("sem", "homomorphism vs cyphermorphism", semantics);
    ("order", "operator ordering heuristic", ordering);
    ("ext-tri", "extension: triangle statistics ablation", ext_triangles);
    ("ext-varlen", "extension: variable-length paths", ext_varlen);
    ("parallel", "multicore scaling of ground truth / catalog / runner", parallel_bench);
    ( "throughput",
      "estimator throughput before/after Catalog.freeze + sessions",
      Throughput.run );
    ( "obs_overhead",
      "observability overhead: session estimates with tracing off vs on",
      Obs_overhead.run );
    ( "serve",
      "lpp serve load test: closed-loop + controlled-QPS latency/throughput",
      Serve_bench.run );
    ( "scale",
      "scale tier: streaming build, Bigarray freeze, sampled-truth q-errors",
      Scale_bench.run );
  ]
