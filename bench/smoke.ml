(* Runs from the [runtest] alias: one tiny throughput iteration per estimator
   configuration, so a plain [dune runtest] exercises the frozen catalog and
   session hot path and its bit-identity with the unfrozen path. *)
let () = Throughput.smoke ()
