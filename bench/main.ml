(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §5 for the experiment index).

     dune exec bench/main.exe                    # everything, default scale
     dune exec bench/main.exe -- --quick         # smaller datasets/query sets
     dune exec bench/main.exe -- --only fig5,fig6
     dune exec bench/main.exe -- --list          # available experiment ids *)

let list_experiments () =
  print_endline "available experiments:";
  List.iter
    (fun (id, descr, _) -> Printf.printf "  %-8s %s\n" id descr)
    Experiments.all;
  Printf.printf "  %-8s %s\n" "bechamel" "estimator latency microbenchmark"

let run quick seed only jobs =
  Option.iter Lpp_util.Pool.set_default_jobs jobs;
  let scale = if quick then Env.Quick else Env.Default in
  let wanted id =
    match only with
    | None -> true
    | Some ids -> List.mem id (String.split_on_char ',' ids)
  in
  let env = Env.make ~scale ~seed in
  let t0 = Lpp_util.Clock.now_ns () in
  List.iter
    (fun (id, _descr, f) -> if wanted id then f env)
    Experiments.all;
  if wanted "bechamel" then Bechamel_bench.run env;
  Printf.printf "\n[bench] done in %.1fs\n" (Lpp_util.Clock.elapsed_s ~since:t0)

let () =
  let open Cmdliner in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small datasets and query sets.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Master RNG seed.")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated experiment ids.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Default domains for parallel stages (LPP_JOBS also works).")
  in
  let term =
    Term.(
      const (fun l q s o j -> if l then list_experiments () else run q s o j)
      $ list_flag $ quick $ seed $ only $ jobs)
  in
  let info =
    Cmd.info "lpp-bench"
      ~doc:"Reproduce the tables and figures of the LPP cardinality estimation paper"
  in
  exit (Cmd.eval (Cmd.v info term))
