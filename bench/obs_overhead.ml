(* Observability overhead on the estimator hot path — the numbers behind
   BENCH_obs_overhead.json.

   Two costs per dataset × configuration cell, at jobs = 1 over the same
   pre-planned workload as [Throughput]:

   - enabled/disabled ratio, measured directly: one Bechamel OLS fit of the
     frozen-session pass with observability off, one with it on.

   - disabled-mode overhead, bounded analytically: with the switch off the
     instrumentation costs one [Obs.enabled] check per estimate plus one
     no-op [Metrics.incr]-style call per hot-path site (frozen-catalog
     lookups, rc_row reads, degree-cache probes, MCV probes).  An
     uninstrumented build does not exist inside this binary, so instead the
     experiment counts those sites exactly — the metrics themselves report,
     when enabled, how many times each site fired on one workload pass, and
     bit-identity guarantees the disabled run takes the same path — and
     multiplies by a microbenchmarked ns-per-disabled-call.  The resulting
     bound is recorded per cell; [disabled_overhead_lt_2pct] asserts the
     worst cell stays under 2%.

   Bit-identity between enabled and disabled estimates is a hard invariant
   and aborts the experiment when violated. *)

open Bechamel

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Counter families whose call sites execute (as no-op calls) in disabled
   mode during an estimate.  estimator.op.* / estimator.estimates and the
   histograms fire only on the traced path and are excluded; freeze/thaw and
   pool counters do not run during a jobs = 1 estimate pass. *)
let hot_path_prefixes =
  [ "catalog.lookup."; "catalog.rc_row."; "estimator.degcache."; "propstats." ]

let hot_path_calls snapshot =
  List.fold_left
    (fun acc (name, v) ->
      if
        List.exists
          (fun p -> String.starts_with ~prefix:p name)
          hot_path_prefixes
      then acc + v
      else acc)
    0 snapshot.Lpp_obs.Metrics.counters

let run (env : Env.t) =
  let cells = Throughput.make_cells env in
  List.iter
    (fun (ds : Lpp_datasets.Dataset.t) -> Lpp_stats.Catalog.freeze ds.catalog)
    env.datasets;
  let sessions =
    List.map
      (fun (c : Throughput.cell) -> Lpp_core.Estimator.make c.config c.catalog)
      cells
  in
  let pairs = List.combine cells sessions in
  assert (not (Lpp_obs.Obs.enabled ()));
  let reference =
    List.map
      (fun ((c : Throughput.cell), session) ->
        Array.map (Lpp_core.Estimator.session_estimate session) c.algs)
      pairs
  in
  (* one enabled pass per cell: checks bit-identity against the disabled
     reference and counts the hot-path instrumentation sites via the
     counters themselves *)
  Lpp_obs.Obs.enable ();
  let calls_per_pass =
    List.map2
      (fun ((c : Throughput.cell), session) ref_ests ->
        Lpp_obs.Metrics.reset ();
        Lpp_obs.Trace.clear ();
        let got =
          Array.map (Lpp_core.Estimator.session_estimate session) c.algs
        in
        let identical =
          Array.for_all2
            (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
            got ref_ests
        in
        if not identical then
          failwith
            (Printf.sprintf
               "obs_overhead: %s: enabled estimates differ from disabled"
               (Throughput.cell_key c));
        hot_path_calls (Lpp_obs.Metrics.snapshot ()))
      pairs reference
  in
  Lpp_obs.Obs.disable ();
  Lpp_obs.Obs.reset ();
  Printf.printf
    "[obs] enabled estimates bit-identical to disabled on every cell\n%!";
  (* ns per disabled hot-path site and per Obs.enabled check, via manual
     tight loops — Bechamel's whole-pass OLS settings are unreliable at
     sub-10 ns granularity, and a closure indirection would triple the
     measured cost, so both loops are written out concretely *)
  let probe = Lpp_obs.Metrics.counter "obs.bench.probe" in
  assert (not (Lpp_obs.Obs.enabled ()));
  let probe_iters = 20_000_000 in
  let site_ns =
    for _ = 1 to 1_000_000 do
      if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr probe
    done;
    let t0 = Lpp_util.Clock.now_ns () in
    for _ = 1 to probe_iters do
      if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr probe
    done;
    Lpp_util.Clock.elapsed_ns ~since:t0 /. float_of_int probe_iters
  in
  let flag_ns =
    let t0 = Lpp_util.Clock.now_ns () in
    for _ = 1 to probe_iters do
      ignore (Lpp_obs.Obs.enabled ())
    done;
    Lpp_util.Clock.elapsed_ns ~since:t0 /. float_of_int probe_iters
  in
  Printf.printf
    "[obs] disabled costs: guarded hot-path site %.2f ns, Obs.enabled check \
     %.2f ns\n\
     %!"
    site_ns flag_ns;
  let find ns key = Option.value ~default:nan (Hashtbl.find_opt ns key) in
  let session_tests () =
    List.map2
      (fun (c : Throughput.cell) session ->
        Test.make ~name:(Throughput.cell_key c)
          (Staged.stage (Throughput.pass_session session c)))
      cells sessions
  in
  Printf.printf "[obs] measuring disabled path…\n%!";
  let off_ns = Throughput.measure_ns ~phase:"obs-off" (session_tests ()) in
  Printf.printf "[obs] measuring enabled path…\n%!";
  Lpp_obs.Obs.enable ();
  let on_ns = Throughput.measure_ns ~phase:"obs-on" (session_tests ()) in
  Lpp_obs.Obs.disable ();
  Lpp_obs.Obs.reset ();
  let table =
    Lpp_util.Ascii_table.create
      [
        "dataset/config"; "off ns/pass"; "on ns/pass"; "on/off";
        "hot calls/pass"; "disabled overhead";
      ]
  in
  let off_overheads = ref [] in
  let on_ratios = ref [] in
  let rows =
    List.map2
      (fun (c : Throughput.cell) calls ->
        let key = Throughput.cell_key c in
        let off = find off_ns key in
        let on = find on_ns key in
        let on_ratio = on /. off in
        on_ratios := on_ratio :: !on_ratios;
        let bound_ns =
          (float_of_int calls *. site_ns)
          +. (float_of_int (Array.length c.algs) *. flag_ns)
        in
        let overhead = bound_ns /. off in
        off_overheads := overhead :: !off_overheads;
        Lpp_util.Ascii_table.add_row table
          [
            key;
            Printf.sprintf "%.0f" off;
            Printf.sprintf "%.0f" on;
            Printf.sprintf "%.2fx" on_ratio;
            string_of_int calls;
            Printf.sprintf "%.3f%%" (100.0 *. overhead);
          ];
        Lpp_util.Json.Obj
          [
            ("dataset", String c.ds_name);
            ("config", String c.cfg_name);
            ("queries", Int (Array.length c.algs));
            ("disabled_ns_per_pass", Float off);
            ("enabled_ns_per_pass", Float on);
            ("enabled_over_disabled", Float on_ratio);
            ("hot_path_calls_per_pass", Int calls);
            ("disabled_bound_ns_per_pass", Float bound_ns);
            ("disabled_overhead_bound", Float overhead);
            ("bit_identical", Bool true);
          ])
      cells calls_per_pass
  in
  Lpp_util.Ascii_table.print
    ~title:"Observability overhead: session estimates, obs off vs on (jobs = 1)"
    table;
  let med_on = median !on_ratios in
  let worst_off = List.fold_left Float.max 0.0 !off_overheads in
  Printf.printf "[obs] median enabled/disabled ratio: %.2fx\n" med_on;
  Printf.printf "[obs] worst disabled overhead bound: %.3f%% (%s 2%%)\n"
    (100.0 *. worst_off)
    (if worst_off < 0.02 then "<" else ">=");
  let doc =
    Lpp_util.Json.Obj
      [
        ( "scale",
          String
            (match env.scale with Env.Quick -> "quick" | Env.Default -> "default")
        );
        ("seed", Int env.seed);
        ("jobs", Int 1);
        ("host_domains", Int (Domain.recommended_domain_count ()));
        ("disabled_site_ns", Float site_ns);
        ("disabled_flag_check_ns", Float flag_ns);
        ("median_enabled_over_disabled", Float med_on);
        ("worst_disabled_overhead_bound", Float worst_off);
        ("disabled_overhead_lt_2pct", Bool (worst_off < 0.02));
        ("results", List rows);
      ]
  in
  Out_channel.with_open_text "BENCH_obs_overhead.json" (fun oc ->
      Lpp_util.Json.to_channel oc doc;
      output_char oc '\n');
  Printf.printf "[obs] wrote BENCH_obs_overhead.json\n%!"
