(* Load generator for the `lpp serve` service — the numbers behind
   BENCH_serve.json.

   The server runs in-process (reader + worker domains) on a temporary Unix
   socket; the main domain drives it with Lpp_serve.Client:

   - closed loop: a window of W pipelined requests is kept in flight; a new
     request is sent the moment a response arrives, so offered = achieved and
     latency includes queueing behind the window.
   - open loop: requests are sent on a fixed schedule at a target QPS
     (fractions of the best closed-loop rate) and responses are drained
     asynchronously, so queueing delay shows up as latency, not as a lower
     offered rate.

   Latency is measured client-side per request (send → matching response;
   responses are FIFO per connection). On the 1-core container the client,
   reader and worker share the core, so these are honest end-to-end numbers,
   not idealized server-side ones. Before any measurement the full pattern set
   is checked bit-identical against an offline Estimator session on the same
   catalog. *)

open Lpp_util

let fi = float_of_int

let quantiles lats =
  let sorted = Array.copy lats in
  Array.sort compare sorted;
  ( Quantiles.quantile sorted 0.5,
    Quantiles.quantile sorted 0.99,
    Quantiles.quantile sorted 0.999 )

(* Send [total] requests keeping [window] in flight; returns
   (wall_s, latencies_ns, errors). *)
let closed_loop client ~lines ~total ~window =
  let n_lines = Array.length lines in
  let pending = Queue.create () in
  let lats = Array.make total 0.0 in
  let sent = ref 0 and recvd = ref 0 and errors = ref 0 in
  let t0 = Clock.now_ns () in
  while !recvd < total do
    while !sent < total && !sent - !recvd < window do
      Queue.push (Clock.now_ns ()) pending;
      Lpp_serve.Client.send_line client lines.(!sent mod n_lines);
      incr sent
    done;
    match Lpp_serve.Client.recv_line client with
    | None -> failwith "serve bench: server closed the connection"
    | Some resp ->
        lats.(!recvd) <- Clock.elapsed_ns ~since:(Queue.pop pending);
        incr recvd;
        (* cheap check; the full-parse validation ran before measuring *)
        if String.length resp < 11 || String.sub resp 0 11 <> {|{"ok":true,|}
        then incr errors
  done;
  (Clock.elapsed_s ~since:t0, lats, !errors)

(* Send [total] requests on a fixed schedule at [offered] QPS, draining
   responses as they arrive. *)
let open_loop client ~lines ~total ~offered =
  let n_lines = Array.length lines in
  let interval_ns = 1e9 /. offered in
  let pending = Queue.create () in
  let lats = Array.make total 0.0 in
  let sent = ref 0 and recvd = ref 0 and errors = ref 0 in
  let t0 = Clock.now_ns () in
  let record resp =
    lats.(!recvd) <- Clock.elapsed_ns ~since:(Queue.pop pending);
    incr recvd;
    if String.length resp < 11 || String.sub resp 0 11 <> {|{"ok":true,|} then
      incr errors
  in
  while !recvd < total do
    if !sent < total then begin
      let due = fi !sent *. interval_ns in
      let now = Clock.elapsed_ns ~since:t0 in
      if now >= due then begin
        Queue.push (Clock.now_ns ()) pending;
        Lpp_serve.Client.send_line client lines.(!sent mod n_lines);
        incr sent
      end
      else begin
        (match Lpp_serve.Client.try_recv_line client with
        | Some resp -> record resp
        | None ->
            let wait_s = (due -. now) /. 1e9 in
            if wait_s > 1e-4 then Unix.sleepf (Float.min wait_s 1e-3))
      end
    end
    else begin
      match Lpp_serve.Client.recv_line client with
      | None -> failwith "serve bench: server closed the connection"
      | Some resp -> record resp
    end
  done;
  (Clock.elapsed_s ~since:t0, lats, !errors)

let request_line ~config pattern =
  Json.to_string
    (Json.Obj
       [ ("op", Json.String "estimate");
         ("config", Json.String config);
         ("pattern", Json.String pattern) ])

let run (env : Env.t) =
  let ds = Env.dataset env "SNB" in
  let patterns =
    Env.queries env ~with_props:true "SNB"
    |> List.map (fun (q : Lpp_workload.Query_gen.query) ->
           Format.asprintf "%a"
             (Lpp_pattern.Pattern.pp_parseable ~names:(Some ds.graph))
             q.pattern)
    |> Array.of_list
  in
  if Array.length patterns = 0 then failwith "serve bench: no queries";
  let total, open_total =
    match env.scale with Env.Quick -> (3_000, 2_000) | Env.Default -> (20_000, 8_000)
  in
  let addr =
    Lpp_serve.Server.Unix_socket
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "lpp-serve-bench-%d.sock" (Unix.getpid ())))
  in
  let scfg = Lpp_serve.Server.default_config addr in
  let server = Lpp_serve.Server.start scfg ~graph:ds.graph ~catalog:ds.catalog in
  let client = Lpp_serve.Client.connect addr in
  (* bit-identity first: every pattern, served vs an offline session *)
  List.iter
    (fun cfg ->
      let session = Lpp_core.Estimator.make cfg ds.catalog in
      let cfg_name = Lpp_core.Config.name cfg in
      Array.iter
        (fun text ->
          let offline =
            match Lpp_pattern.Parse.parse ds.graph text with
            | Ok { pattern; _ } ->
                Lpp_core.Estimator.session_estimate_pattern session pattern
            | Error msg -> failwith ("serve bench: unparsable pattern: " ^ msg)
          in
          match Lpp_serve.Client.estimate client ~config:cfg_name text with
          | Ok est when Int64.bits_of_float est = Int64.bits_of_float offline ->
              ()
          | Ok est ->
              failwith
                (Printf.sprintf "serve bench: %s: served %h <> offline %h"
                   cfg_name est offline)
          | Error msg -> failwith ("serve bench: " ^ msg))
        patterns;
      Printf.printf "[serve] %s: %d served estimates bit-identical to offline\n%!"
        cfg_name (Array.length patterns))
    [ Lpp_core.Config.s_l; Lpp_core.Config.a_lhd ];
  let table =
    Ascii_table.create
      [ "mode"; "config"; "offered/s"; "achieved/s"; "p50"; "p99"; "p999" ]
  in
  let json_rows = ref [] in
  let row ~mode ~cfg_name ~offered ~total ~wall ~lats ~errors =
    if errors > 0 then
      failwith (Printf.sprintf "serve bench: %d error responses" errors);
    let achieved = fi total /. wall in
    let p50, p99, p999 = quantiles lats in
    let offered_s =
      match offered with None -> "closed" | Some q -> Printf.sprintf "%.0f" q
    in
    Ascii_table.add_row table
      [ mode; cfg_name; offered_s;
        Printf.sprintf "%.0f" achieved;
        Lpp_harness.Report.ns_to_string p50; Lpp_harness.Report.ns_to_string p99;
        Lpp_harness.Report.ns_to_string p999 ];
    json_rows :=
      Printf.sprintf
        "    { \"mode\": %S, \"config\": %S, \"offered_qps\": %s, \
         \"achieved_qps\": %.1f, \"requests\": %d, \"wall_s\": %.3f, \
         \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"p999_ns\": %.0f, \"errors\": \
         %d }"
        mode cfg_name
        (match offered with
        | None -> Printf.sprintf "%.1f" achieved
        | Some q -> Printf.sprintf "%.1f" q)
        achieved total wall p50 p99 p999 errors
      :: !json_rows;
    achieved
  in
  let best = ref 0.0 in
  List.iter
    (fun cfg ->
      let cfg_name = Lpp_core.Config.name cfg in
      let lines = Array.map (request_line ~config:cfg_name) patterns in
      List.iter
        (fun window ->
          let wall, lats, errors = closed_loop client ~lines ~total ~window in
          let achieved =
            row ~mode:(Printf.sprintf "closed w=%d" window) ~cfg_name
              ~offered:None ~total ~wall ~lats ~errors
          in
          if achieved > !best then best := achieved;
          Printf.printf "[serve] closed loop %-6s w=%-2d: %.0f estimates/sec\n%!"
            cfg_name window achieved)
        [ 1; 8; 32 ])
    [ Lpp_core.Config.s_l; Lpp_core.Config.a_lhd ];
  (* open loop on the full-featured config, offered at fractions of the best
     closed-loop rate *)
  let cfg_name = Lpp_core.Config.name Lpp_core.Config.a_lhd in
  let lines = Array.map (request_line ~config:cfg_name) patterns in
  List.iter
    (fun frac ->
      let offered = frac *. !best in
      let wall, lats, errors =
        open_loop client ~lines ~total:open_total ~offered
      in
      let achieved =
        row ~mode:(Printf.sprintf "open %.0f%%" (100.0 *. frac)) ~cfg_name
          ~offered:(Some offered) ~total:open_total ~wall ~lats ~errors
      in
      Printf.printf "[serve] open loop %.0f%%: offered %.0f, achieved %.0f\n%!"
        (100.0 *. frac) offered achieved)
    [ 0.25; 0.5 ];
  let stats = Lpp_serve.Server.stats_json server in
  Lpp_serve.Client.close client;
  Lpp_serve.Server.stop server;
  Ascii_table.print
    ~title:
      (Printf.sprintf
         "lpp serve load test (SNB, %d worker(s), batch %d) — client-side \
          latency"
         scfg.Lpp_serve.Server.workers scfg.Lpp_serve.Server.batch)
    table;
  Printf.printf "[serve] best closed-loop rate: %.0f estimates/sec\n" !best;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"seed\": %d,\n\
    \  \"dataset\": \"SNB\",\n\
    \  \"host_domains\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"batch\": %d,\n\
    \  \"patterns\": %d,\n\
    \  \"bit_identical\": true,\n\
    \  \"best_closed_loop_qps\": %.1f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ],\n\
    \  \"server_stats\": %s\n\
     }\n"
    (match env.scale with Env.Quick -> "quick" | Env.Default -> "default")
    env.seed
    (Domain.recommended_domain_count ())
    scfg.Lpp_serve.Server.workers scfg.Lpp_serve.Server.batch
    (Array.length patterns) !best
    (String.concat ",\n" (List.rev !json_rows))
    (Json.to_string stats);
  close_out oc;
  Printf.printf "[serve] wrote BENCH_serve.json\n%!"
