(* Shared benchmark environment: the three datasets, the two query sets per
   dataset, and cached per-technique measurement runs. Everything is generated
   deterministically from one seed so experiment ids are comparable across
   runs. *)

open Lpp_workload

type scale = Quick | Default

type t = {
  scale : scale;
  seed : int;
  datasets : Lpp_datasets.Dataset.t list;
  with_props : (string * Query_gen.query list) list;
  no_props : (string * Query_gen.query list) list;
  mutable runs : (string, Lpp_harness.Runner.measurement list) Hashtbl.t option;
}

let dataset_names t =
  List.map (fun (d : Lpp_datasets.Dataset.t) -> d.name) t.datasets

let queries t ~with_props name =
  List.assoc name (if with_props then t.with_props else t.no_props)

let dataset t name =
  List.find (fun (d : Lpp_datasets.Dataset.t) -> d.name = name) t.datasets

let sizes = function
  | Quick -> (250, 600, 6_000, 40)
  | Default -> (700, 1_700, 16_000, 90)

let make ~scale ~seed =
  let persons, movies, entities, target = sizes scale in
  Printf.printf "[env] generating datasets (seed %d)…\n%!" seed;
  let t0 = Lpp_util.Clock.now_ns () in
  let datasets =
    [
      Lpp_datasets.Snb_gen.generate ~persons ~seed ();
      Lpp_datasets.Cineasts_gen.generate ~movies ~seed:(seed + 1) ();
      Lpp_datasets.Dbpedia_gen.generate ~entities ~seed:(seed + 2) ();
    ]
  in
  Printf.printf "[env] datasets ready (%.1fs)\n%!" (Lpp_util.Clock.elapsed_s ~since:t0);
  let gen_set flavour (ds : Lpp_datasets.Dataset.t) i =
    let t0 = Lpp_util.Clock.now_ns () in
    let rng = Lpp_util.Rng.create (seed + 100 + i) in
    let spec =
      { (Query_gen.default_spec flavour) with
        target;
        attempts = 6 * target;
        truth_budget = 10_000_000;
      }
    in
    let qs = Query_gen.generate rng ds spec in
    Printf.printf "[env] %s %s: %d queries (%.1fs)\n%!" ds.name
      (match flavour with With_props -> "set-1 (props)" | No_props -> "set-2 (no props)")
      (List.length qs)
      (Lpp_util.Clock.elapsed_s ~since:t0);
    (ds.name, qs)
  in
  let with_props = List.mapi (fun i ds -> gen_set With_props ds i) datasets in
  let no_props = List.mapi (fun i ds -> gen_set No_props ds (i + 10)) datasets in
  { scale; seed; datasets; with_props; no_props; runs = None }

(* ---- the full technique lineup per dataset -------------------------- *)

let all_techniques t (ds : Lpp_datasets.Dataset.t) =
  List.map (fun c -> Lpp_harness.Technique.ours c ds.catalog) Lpp_core.Config.all
  @ [
      Lpp_harness.Technique.neo4j ds.catalog;
      Lpp_harness.Technique.csets ds;
      Lpp_harness.Technique.wander_join ~seed:(t.seed + 41) WJ_1 ds;
      Lpp_harness.Technique.wander_join ~seed:(t.seed + 42) WJ_100 ds;
      Lpp_harness.Technique.wander_join ~seed:(t.seed + 43) WJ_R ds;
      Lpp_harness.Technique.sumrdf ds;
    ]

let sota_names = [ "CSets"; "Neo4j"; "A-LHD"; "WJ-1"; "WJ-100"; "WJ-R"; "SumRDF" ]

(* ---- measurement cache ------------------------------------------------ *)

let run_key ds_name ~with_props tech_name =
  Printf.sprintf "%s/%s/%s" ds_name
    (if with_props then "props" else "noprops")
    tech_name

(* Run every technique on every query set once, with timing; reused by all
   experiments. *)
let measurements t =
  match t.runs with
  | Some runs -> runs
  | None ->
      let runs = Hashtbl.create 64 in
      List.iter
        (fun (ds : Lpp_datasets.Dataset.t) ->
          let techniques = all_techniques t ds in
          List.iter
            (fun with_props ->
              let qs = queries t ~with_props ds.name in
              List.iter
                (fun (tech : Lpp_harness.Technique.t) ->
                  let t0 = Lpp_util.Clock.now_ns () in
                  let ms = Lpp_harness.Runner.run tech qs in
                  Printf.printf "[run] %-28s %3d queries  (%.1fs)\n%!"
                    (run_key ds.name ~with_props tech.name)
                    (List.length ms)
                    (Lpp_util.Clock.elapsed_s ~since:t0);
                  Hashtbl.replace runs
                    (run_key ds.name ~with_props tech.name)
                    ms)
                techniques)
            [ true; false ])
        t.datasets;
      t.runs <- Some runs;
      runs

let get_run t ds_name ~with_props tech_name =
  Option.value ~default:[]
    (Hashtbl.find_opt (measurements t) (run_key ds_name ~with_props tech_name))
