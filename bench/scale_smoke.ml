(* Runs from the [scale-smoke] alias (attached to [runtest]): the large-tier
   pipeline — streaming build with properties off, Bigarray freeze, sampled
   ground truth — on a ~10⁵-relationship graph, with hard assertions. *)
let () = Scale_bench.smoke ()
