(* Estimator throughput (estimates/sec) per configuration × dataset, before
   and after the frozen read path — the numbers behind
   BENCH_estimator_throughput.json.

   "Before" is the genuine pre-rewrite path, vendored verbatim in
   [Legacy]: the hashtable-backed catalog queried through the old one-shot
   estimator (hashtable Label_probs, per-estimate allocation, list-based
   representatives). "After" freezes the catalog ([Catalog.freeze]) and
   reuses one [Estimator.make] session per configuration, so the hot path is
   flat-array reads and preallocated scratch. Both phases run the identical
   pre-planned workload at jobs = 1; Bechamel's OLS fit over whole-workload
   passes gives ns/pass, reported as estimates/sec. Estimates must be
   bit-identical between the two paths — any mismatch aborts the
   experiment. *)

open Bechamel
open Toolkit

let fi = float_of_int

type cell = {
  ds_name : string;
  config : Lpp_core.Config.t;
  cfg_name : string;
  catalog : Lpp_stats.Catalog.t;
  algs : Lpp_pattern.Algebra.t array;
}

let make_cells (env : Env.t) =
  List.concat_map
    (fun (ds : Lpp_datasets.Dataset.t) ->
      (* plan once: the comparison is estimator-only, not planner *)
      let algs =
        Env.queries env ~with_props:true ds.name
        |> List.map (fun (q : Lpp_workload.Query_gen.query) ->
               Lpp_pattern.Planner.plan q.pattern)
        |> Array.of_list
      in
      List.map
        (fun config ->
          {
            ds_name = ds.name;
            config;
            cfg_name = Lpp_core.Config.name config;
            catalog = ds.catalog;
            algs;
          })
        Lpp_core.Config.all)
    env.datasets

let cell_key c = Printf.sprintf "%s/%s" c.ds_name c.cfg_name

let pass_oneshot c () =
  let acc = ref 0.0 in
  Array.iter
    (fun alg -> acc := !acc +. Legacy.estimate c.config c.catalog alg)
    c.algs;
  !acc

let pass_session session c () =
  let acc = ref 0.0 in
  Array.iter
    (fun alg -> acc := !acc +. Lpp_core.Estimator.session_estimate session alg)
    c.algs;
  !acc

(* ns per workload pass for each named test, via Bechamel's OLS fit. *)
let measure_ns ~phase tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:phase ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  let ns = Hashtbl.create 64 in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some per_name ->
      let prefix = phase ^ " " in
      let plen = String.length prefix in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              let key =
                if String.length name > plen && String.sub name 0 plen = prefix
                then String.sub name plen (String.length name - plen)
                else name
              in
              Hashtbl.replace ns key est
          | _ -> ())
        per_name);
  ns

let assert_bit_identical c ~reference ~got ~path =
  Array.iteri
    (fun i v ->
      if Int64.bits_of_float v <> Int64.bits_of_float reference.(i) then
        failwith
          (Printf.sprintf
             "throughput: %s query %d: %s path %h <> pre-rewrite one-shot %h"
             (cell_key c) i path v reference.(i)))
    got

let run (env : Env.t) =
  let cells = make_cells env in
  List.iter
    (fun c -> assert (not (Lpp_stats.Catalog.is_frozen c.catalog)))
    cells;
  (* reference estimates: unfrozen catalog, pre-rewrite one-shot estimator *)
  let reference =
    List.map
      (fun c -> Array.map (Legacy.estimate c.config c.catalog) c.algs)
      cells
  in
  let before_tests =
    List.map
      (fun c -> Test.make ~name:(cell_key c) (Staged.stage (pass_oneshot c)))
      cells
  in
  Printf.printf "[throughput] measuring pre-rewrite one-shot path…\n%!";
  let before_ns = measure_ns ~phase:"before" before_tests in
  List.iter
    (fun (ds : Lpp_datasets.Dataset.t) -> Lpp_stats.Catalog.freeze ds.catalog)
    env.datasets;
  let sessions =
    List.map (fun c -> Lpp_core.Estimator.make c.config c.catalog) cells
  in
  List.iter2
    (fun (c, session) ref_ests ->
      assert_bit_identical c ~reference:ref_ests ~path:"frozen session"
        ~got:(Array.map (Lpp_core.Estimator.session_estimate session) c.algs))
    (List.combine cells sessions)
    reference;
  Printf.printf
    "[throughput] all frozen-path estimates bit-identical; measuring frozen \
     session path…\n\
     %!";
  let after_tests =
    List.map2
      (fun c session ->
        Test.make ~name:(cell_key c) (Staged.stage (pass_session session c)))
      cells sessions
  in
  let after_ns = measure_ns ~phase:"after" after_tests in
  let table =
    Lpp_util.Ascii_table.create
      [ "dataset/config"; "queries"; "before est/s"; "after est/s"; "speedup" ]
  in
  let best = ref 0.0 in
  let rows =
    List.map
      (fun c ->
        let key = cell_key c in
        let n = Array.length c.algs in
        let b_ns = Option.value ~default:nan (Hashtbl.find_opt before_ns key) in
        let a_ns = Option.value ~default:nan (Hashtbl.find_opt after_ns key) in
        let eps ns = fi n *. 1e9 /. ns in
        let speedup = b_ns /. a_ns in
        if speedup > !best then best := speedup;
        Lpp_util.Ascii_table.add_row table
          [
            key;
            string_of_int n;
            Printf.sprintf "%.0f" (eps b_ns);
            Printf.sprintf "%.0f" (eps a_ns);
            Printf.sprintf "%.2fx" speedup;
          ];
        Printf.sprintf
          "    { \"dataset\": %S, \"config\": %S, \"queries\": %d, \
           \"before_ns_per_pass\": %.0f, \"after_ns_per_pass\": %.0f, \
           \"before_estimates_per_sec\": %.1f, \"after_estimates_per_sec\": \
           %.1f, \"speedup\": %.3f, \"bit_identical\": true }"
          c.ds_name c.cfg_name n b_ns a_ns (eps b_ns) (eps a_ns) speedup)
      cells
  in
  Lpp_util.Ascii_table.print
    ~title:
      "Estimator throughput: pre-rewrite one-shot vs frozen session (jobs = 1)"
    table;
  Printf.printf "[throughput] best speedup: %.2fx\n" !best;
  let oc = open_out "BENCH_estimator_throughput.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"host_domains\": %d,\n\
    \  \"best_speedup\": %.3f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (match env.scale with Env.Quick -> "quick" | Env.Default -> "default")
    env.seed
    (Domain.recommended_domain_count ())
    !best
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "[throughput] wrote BENCH_estimator_throughput.json\n%!"

(* One tiny throughput iteration per configuration, fast enough for [dune
   runtest]: checks the freeze + session path end-to-end and that it agrees
   bit-for-bit with the unfrozen one-shot path. *)
let smoke () =
  let ds = Lpp_datasets.Snb_gen.generate ~persons:30 ~seed:5 () in
  let rng = Lpp_util.Rng.create 9 in
  let spec =
    { (Lpp_workload.Query_gen.default_spec With_props) with
      target = 5;
      attempts = 40;
      truth_budget = 300_000;
    }
  in
  let algs =
    Lpp_workload.Query_gen.generate rng ds spec
    |> List.map (fun (q : Lpp_workload.Query_gen.query) ->
           Lpp_pattern.Planner.plan q.pattern)
    |> Array.of_list
  in
  if Array.length algs = 0 then failwith "throughput smoke: no queries";
  let reference =
    List.map
      (fun config ->
        Array.map (Lpp_core.Estimator.estimate config ds.catalog) algs)
      Lpp_core.Config.all
  in
  Lpp_stats.Catalog.freeze ds.catalog;
  List.iter2
    (fun config ref_ests ->
      let session = Lpp_core.Estimator.make config ds.catalog in
      let t0 = Lpp_util.Clock.now_ns () in
      let got = Array.map (Lpp_core.Estimator.session_estimate session) algs in
      let ns = Lpp_util.Clock.elapsed_ns ~since:t0 in
      Array.iteri
        (fun i v ->
          if Int64.bits_of_float v <> Int64.bits_of_float ref_ests.(i) then
            failwith
              (Printf.sprintf
                 "throughput smoke: %s query %d: frozen %h <> unfrozen %h"
                 (Lpp_core.Config.name config)
                 i v ref_ests.(i)))
        got;
      Printf.printf
        "[smoke] %-9s %d estimates in %7.0f ns (frozen session), \
         bit-identical to unfrozen\n"
        (Lpp_core.Config.name config)
        (Array.length algs) ns)
    Lpp_core.Config.all reference;
  print_endline "[smoke] throughput smoke passed"
