(* Scale-tier benchmark — the numbers behind BENCH_scale.json.

   Exercises the large-tier protocol end to end on an SNB graph built with
   properties off (the Scale.Large setting): streaming construction through
   Graph_builder into the packed CSR columns, catalog build + freeze into the
   Bigarray layouts, a workload whose ground truth comes from Wander-Join
   sampling (unbiased estimates with 95% CIs), and session-estimate
   throughput per configuration against that sampled truth.

   At --quick the graph is ~10⁵ relationships (persons 1600); at the default
   bench scale it is the real Large tier, ~10⁷ relationships (persons
   160_000). [smoke] below is the @scale-smoke variant: the quick-size graph
   plus hard assertions, fast enough to ride along with dune runtest. *)

open Lpp_util
open Lpp_workload

let fi = float_of_int

let median xs =
  match Quantiles.summarize xs with Some s -> s.median | None -> nan

(* Build the SNB stand-in under the large-tier protocol (no properties) and
   return it with the catalog frozen plus the phase timings. *)
let build_frozen ~persons ~seed =
  let t0 = Clock.now_ns () in
  let ds = Lpp_datasets.Snb_gen.generate ~persons ~props:false ~seed () in
  let generate_s = Clock.elapsed_s ~since:t0 in
  let t1 = Clock.now_ns () in
  Lpp_stats.Catalog.freeze ds.catalog;
  let freeze_s = Clock.elapsed_s ~since:t1 in
  (ds, generate_s, freeze_s)

let sampled_workload (ds : Lpp_datasets.Dataset.t) ~seed ~target ~walks =
  let spec =
    { (Query_gen.default_spec No_props) with
      target;
      attempts = 6 * target;
      truth_budget = 10_000_000;
      ground_truth = Query_gen.Sampled_wj { walks };
    }
  in
  Query_gen.generate (Rng.create (seed + 1000)) ds spec

(* Session-estimate throughput over the workload's patterns: repeat the whole
   set until ≥ ~0.3s of wall time so fast configs get stable numbers. *)
let throughput session patterns =
  let estimate_all () =
    Array.iter
      (fun p -> ignore (Lpp_core.Estimator.session_estimate_pattern session p))
      patterns
  in
  estimate_all ();
  (* warm-up *)
  let t0 = Clock.now_ns () in
  let reps = ref 0 in
  while Clock.elapsed_s ~since:t0 < 0.3 do
    estimate_all ();
    incr reps
  done;
  fi (!reps * Array.length patterns) /. Clock.elapsed_s ~since:t0

let run (env : Env.t) =
  let persons, target, walks =
    match env.scale with
    | Env.Quick -> (1_600, 15, 800)
    | Env.Default -> (160_000, 30, 2_000)
  in
  let seed = env.seed + 77 in
  (* gauges (build.edges_per_sec, catalog.frozen_bytes, …) only record while
     observability is live *)
  Lpp_obs.Obs.enable ();
  Printf.printf "[scale] building SNB, %d persons, props off…\n%!" persons;
  let ds, generate_s, freeze_s = build_frozen ~persons ~seed in
  Lpp_obs.Obs.disable ();
  let g = ds.graph in
  let rels = Lpp_pgraph.Graph.rel_count g in
  let graph_rows = Lpp_pgraph.Graph.memory_breakdown g in
  let catalog_rows = Lpp_stats.Catalog.memory_breakdown ds.catalog in
  let frozen_bytes =
    Option.value ~default:0 (Lpp_stats.Catalog.frozen_bytes ds.catalog)
  in
  let ingest_rate =
    Lpp_obs.Metrics.gauge_value (Lpp_obs.Metrics.gauge "build.edges_per_sec")
  in
  let mem = Ascii_table.create [ "component"; "bytes" ] in
  List.iter
    (fun (k, v) -> Ascii_table.add_row mem [ k; Mem_size.to_string v ])
    (graph_rows @ catalog_rows);
  Ascii_table.print
    ~title:
      (Printf.sprintf
         "Scale tier (SNB, %d nodes / %d rels): packed memory after freeze"
         (Lpp_pgraph.Graph.node_count g)
         rels)
    mem;
  Printf.printf
    "[scale] generate %.1fs (builder ingest %d rels/s), catalog freeze %.2fs\n%!"
    generate_s ingest_rate freeze_s;
  let t0 = Clock.now_ns () in
  let qs = sampled_workload ds ~seed ~target ~walks in
  Printf.printf "[scale] %d queries with WJ-sampled truth (%d walks, %.1fs)\n%!"
    (List.length qs) walks (Clock.elapsed_s ~since:t0);
  let rel_ci_widths =
    List.filter_map
      (fun q ->
        match Query_gen.truth_ci_width q with
        | Some w when Query_gen.truth_value q > 0.0 ->
            Some (w /. Query_gen.truth_value q)
        | _ -> None)
      qs
  in
  let patterns =
    Array.of_list (List.map (fun (q : Query_gen.query) -> q.pattern) qs)
  in
  let table =
    Ascii_table.create [ "config"; "median q-error"; "estimates/s" ]
  in
  let config_rows =
    List.map
      (fun cfg ->
        let tech = Lpp_harness.Technique.ours cfg ds.catalog in
        let ms = Lpp_harness.Runner.run ~measure_time:false tech qs in
        let q50 = median (Lpp_harness.Runner.q_errors ms) in
        let session = Lpp_core.Estimator.make cfg ds.catalog in
        let eps = throughput session patterns in
        Ascii_table.add_row table
          [ Lpp_core.Config.name cfg;
            Lpp_harness.Report.float_cell q50;
            Printf.sprintf "%.0f" eps ];
        Printf.sprintf
          "    { \"config\": %S, \"median_q_error\": %.4f, \
           \"estimates_per_sec\": %.1f }"
          (Lpp_core.Config.name cfg) q50 eps)
      Lpp_core.Config.all
  in
  Ascii_table.print
    ~title:"Scale tier: q-error vs sampled truth and session throughput" table;
  Printf.printf "[scale] median relative 95%%-CI width of sampled truth: %.3f\n"
    (median rel_ci_widths);
  let row_json rows =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) rows)
  in
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"seed\": %d,\n\
    \  \"dataset\": \"SNB\",\n\
    \  \"persons\": %d,\n\
    \  \"nodes\": %d,\n\
    \  \"rels\": %d,\n\
    \  \"props\": false,\n\
    \  \"build\": { \"generate_s\": %.3f, \"builder_rels_per_sec\": %d, \
     \"freeze_s\": %.3f },\n\
    \  \"memory\": { %s, %s, \"csr_bytes\": %d, \"catalog_frozen_bytes\": %d \
     },\n\
    \  \"workload\": { \"queries\": %d, \"walks\": %d, \
     \"median_relative_ci_width\": %.4f, \"relative_ci_widths\": [%s] },\n\
    \  \"configs\": [\n%s\n  ]\n\
     }\n"
    (match env.scale with Env.Quick -> "quick" | Env.Default -> "default")
    env.seed persons
    (Lpp_pgraph.Graph.node_count g)
    rels generate_s ingest_rate freeze_s (row_json graph_rows)
    (row_json catalog_rows)
    (Lpp_pgraph.Graph.csr_bytes g)
    frozen_bytes (List.length qs) walks (median rel_ci_widths)
    (String.concat ", "
       (List.map (Printf.sprintf "%.4f") rel_ci_widths))
    (String.concat ",\n" config_rows);
  close_out oc;
  Printf.printf "[scale] wrote BENCH_scale.json\n%!"

(* @scale-smoke: the quick-size large-tier pipeline with hard assertions —
   ~10⁵ relationships, no properties, sampled truth — fast enough for dune
   runtest. *)
let smoke () =
  let fail fmt = Printf.ksprintf failwith fmt in
  let ds, _, _ = build_frozen ~persons:1_600 ~seed:7 in
  let g = ds.graph in
  let rels = Lpp_pgraph.Graph.rel_count g in
  if rels < 100_000 then fail "scale smoke: only %d rels (want ≥ 1e5)" rels;
  if Lpp_pgraph.Graph.property_count g <> 0 then
    fail "scale smoke: large tier should carry no properties";
  let csr = Lpp_pgraph.Graph.csr_bytes g in
  if csr <= 0 then fail "scale smoke: csr_bytes = %d" csr;
  (match Lpp_stats.Catalog.frozen_bytes ds.catalog with
  | Some b when b > 0 -> ()
  | Some b -> fail "scale smoke: frozen_bytes = %d" b
  | None -> fail "scale smoke: catalog did not freeze");
  List.iter
    (fun (k, v) ->
      if v < 0 then fail "scale smoke: negative bytes for %s" k)
    (Lpp_pgraph.Graph.memory_breakdown g
    @ Lpp_stats.Catalog.memory_breakdown ds.catalog);
  let qs = sampled_workload ds ~seed:7 ~target:6 ~walks:400 in
  if List.length qs = 0 then fail "scale smoke: empty sampled workload";
  let session = Lpp_core.Estimator.make Lpp_core.Config.a_lhd ds.catalog in
  List.iter
    (fun (q : Query_gen.query) ->
      (match q.truth with
      | Query_gen.Exact _ -> fail "scale smoke: expected sampled truth"
      | Query_gen.Sampled { mean; ci_low; ci_high; walks } ->
          if not (mean > 0.0 && ci_low <= mean && mean <= ci_high) then
            fail "scale smoke: bad interval %.2f [%.2f, %.2f]" mean ci_low
              ci_high;
          if walks <> 400 then fail "scale smoke: walks %d" walks);
      let est = Lpp_core.Estimator.session_estimate_pattern session q.pattern in
      if not (Float.is_finite est && est >= 0.0) then
        fail "scale smoke: estimate %f on query %d" est q.id)
    qs;
  Printf.printf
    "[scale smoke] %d rels, csr %s, frozen catalog %s, %d sampled-truth \
     queries OK\n"
    rels (Mem_size.to_string csr)
    (Mem_size.to_string
       (Option.value ~default:0 (Lpp_stats.Catalog.frozen_bytes ds.catalog)))
    (List.length qs)
