(** Summary statistics over float samples (quantiles, means).

    Used by the experiment harness to summarise q-error and runtime
    distributions the way the paper's box plots do. *)

type summary = {
  count : int;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  q95 : float;
  max : float;
  mean : float;
  geo_mean : float;
}

val quantile : float array -> float -> float
(** [quantile sorted p] with [p] in [\[0,1\]]; linear interpolation between
    order statistics. @raise Invalid_argument on an empty array.
    The input array must be sorted ascending. *)

val summarize : float list -> summary option
(** [None] on an empty sample. *)

val summarize_array : float array -> summary option
(** Like {!summarize}; the array is copied, not mutated. *)

val pp_summary : Format.formatter -> summary -> unit
