(** Minimal fixed-width ASCII table rendering for benchmark reports. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string

val print : ?title:string -> t -> unit
(** Render to stdout, optionally preceded by an underlined title. *)
