lib/util/quantiles.mli: Format
