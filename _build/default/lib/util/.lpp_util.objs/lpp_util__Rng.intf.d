lib/util/rng.mli:
