lib/util/mem_size.ml: Format Printf String
