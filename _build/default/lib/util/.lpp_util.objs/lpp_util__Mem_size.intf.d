lib/util/mem_size.mli: Format
