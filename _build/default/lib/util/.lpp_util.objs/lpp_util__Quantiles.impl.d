lib/util/quantiles.ml: Array Float Format
