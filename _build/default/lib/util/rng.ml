type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits to stay within OCaml's native int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled to [0,1). *)
  bound *. (float_of_int v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let coin t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k >= n then begin
    let out = Array.copy arr in
    shuffle t out;
    out
  end else begin
    (* Reservoir sampling keeps memory proportional to [k]. *)
    let out = Array.sub arr 0 k in
    for i = k to n - 1 do
      let j = int t (i + 1) in
      if j < k then out.(j) <- arr.(i)
    done;
    shuffle t out;
    out
  end

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if n = 1 then 0
  else begin
    (* Rejection sampling after Jason Crease / Devroye: efficient for s >= 0. *)
    let nf = float_of_int n in
    let rec try_once () =
      let u = Float.max (float t 1.0) 1e-12 in
      let x =
        if Float.abs (s -. 1.0) < 1e-9 then Float.exp (u *. Float.log nf)
        else ((nf ** (1.0 -. s) -. 1.0) *. u +. 1.0) ** (1.0 /. (1.0 -. s))
      in
      let k = int_of_float x in
      let k = if k < 1 then 1 else if k > n then n else k in
      let ratio = (float_of_int k /. x) ** s in
      if float t 1.0 <= ratio then k - 1 else try_once ()
    in
    try_once ()
  end

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = Float.max (float t 1.0) 1e-300 in
    int_of_float (Float.log u /. Float.log (1.0 -. p))
