(** Deterministic pseudo-random number generator (SplitMix64).

    All randomised components of the library (dataset generators, workload
    generators, Wander Join) take an explicit [Rng.t] so that every experiment
    is reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy sharing the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val coin : t -> float -> bool
(** [coin t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] returns [min k (Array.length arr)]
    distinct elements chosen uniformly. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws from a Zipf distribution over [\[0, n)] with skew
    exponent [s] (rejection-free inverse-CDF over precomputed weights is not
    used; this is an approximate rejection sampler suitable for generators). *)

val geometric : t -> p:float -> int
(** Number of failures before the first success; [p] is the success
    probability, result in [\[0, ∞)]. *)
