type summary = {
  count : int;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  q95 : float;
  max : float;
  mean : float;
  geo_mean : float;
}

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantiles.quantile: empty sample";
  if p <= 0.0 then sorted.(0)
  else if p >= 1.0 then sorted.(n - 1)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let summarize_array values =
  let n = Array.length values in
  if n = 0 then None
  else begin
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    let log_sum =
      Array.fold_left (fun acc v -> acc +. Float.log (Float.max v 1e-300)) 0.0 sorted
    in
    Some
      {
        count = n;
        min = sorted.(0);
        q25 = quantile sorted 0.25;
        median = quantile sorted 0.5;
        q75 = quantile sorted 0.75;
        q95 = quantile sorted 0.95;
        max = sorted.(n - 1);
        mean = sum /. float_of_int n;
        geo_mean = Float.exp (log_sum /. float_of_int n);
      }
  end

let summarize values = summarize_array (Array.of_list values)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%.3g q25=%.3g med=%.3g q75=%.3g q95=%.3g max=%.3g mean=%.3g gmean=%.3g"
    s.count s.min s.q25 s.median s.q75 s.q95 s.max s.mean s.geo_mean
