(** Matching semantics (Definition 3.4 and Section 6.2).

    [Cypher] is the paper's default ("Cyphermorphism"): node variables match
    homomorphically (two pattern nodes may map to the same graph node) while
    relationship variables match isomorphically (no two pattern relationships
    map to the same graph relationship). [Homomorphism] lifts the relationship
    constraint, which is what SPARQL engines (CSets, SumRDF) assume. *)

type t = Cypher | Homomorphism

val equal : t -> t -> bool

val to_string : t -> string
