open Lpp_pgraph
open Lpp_pattern

type mapping = { node_bind : (int * int) list; rel_bind : (int * int list) list }

let bind assoc var value =
  let rec go = function
    | [] -> [ (var, value) ]
    | (v, _) :: _ as rest when var < v -> (var, value) :: rest
    | (v, x) :: rest when v = var ->
        (* rebinding an existing variable is a programming error upstream *)
        assert (x = value);
        (v, x) :: rest
    | pair :: rest -> pair :: go rest
  in
  go assoc

let lookup assoc var = List.assoc var assoc

let drop assoc var = List.remove_assoc var assoc

let prop_ok props key pred =
  match
    Array.fold_left
      (fun acc (k, v) -> if k = key then Some v else acc)
      None props
  with
  | None -> false
  | Some v -> begin
      match (pred : Pattern.prop_pred) with
      | Exists -> true
      | Eq want -> Value.equal v want
    end

let eval_steps ?(semantics = Semantics.Cypher) ?(max_intermediate = 200_000) g
    (alg : Algebra.t) ~on_step =
  let exception Too_big in
  let check_size l = if List.length l > max_intermediate then raise Too_big in
  let edge_iso = Semantics.equal semantics Cypher in
  let apply mappings op =
    match (op : Algebra.op) with
    | Get_nodes { var } ->
        (* GetNodes is always the first operator in our sequences; applying it
           to a non-empty input would be a cross product, which the algebra of
           the paper never produces. *)
        assert (mappings = [ { node_bind = []; rel_bind = [] } ]);
        Graph.fold_nodes g ~init:[] ~f:(fun acc n ->
            { node_bind = [ (var, n) ]; rel_bind = [] } :: acc)
    | Label_selection { var; label } ->
        List.filter
          (fun m -> Graph.node_has_label g (lookup m.node_bind var) label)
          mappings
    | Prop_selection { kind; var; props } ->
        List.filter
          (fun m ->
            match kind with
            | Algebra.Node_var ->
                let entity_props = Graph.node_props g (lookup m.node_bind var) in
                Array.for_all (fun (k, pred) -> prop_ok entity_props k pred) props
            | Algebra.Rel_var ->
                (* a variable-length binding satisfies the predicates iff
                   every hop does, matching how the matcher filters hops *)
                List.for_all
                  (fun r ->
                    Array.for_all
                      (fun (k, pred) -> prop_ok (Graph.rel_props g r) k pred)
                      props)
                  (lookup m.rel_bind var))
          mappings
    | Expand { src_var; rel_var; dst_var; types; dir; hops } ->
        let type_ok t = Array.length types = 0 || Array.exists (( = ) t) types in
        let out = ref [] in
        List.iter
          (fun m ->
            let bound_elsewhere r =
              List.exists (fun (_, rs) -> List.mem r rs) m.rel_bind
            in
            (* iterate qualifying relationships around [u] not in [path] *)
            let iter_hops u path f =
              let consider r other =
                if
                  type_ok (Graph.rel_type g r)
                  && ((not edge_iso)
                     || ((not (bound_elsewhere r)) && not (List.mem r path)))
                then f r other
              in
              let scan_out () =
                Array.iter
                  (fun r -> consider r (Graph.rel_dst g r))
                  (Graph.out_rels g u)
              in
              let scan_in ~skip_loops =
                Array.iter
                  (fun r ->
                    if not (skip_loops && Graph.rel_src g r = Graph.rel_dst g r)
                    then consider r (Graph.rel_src g r))
                  (Graph.in_rels g u)
              in
              match (dir : Direction.t) with
              | Out -> scan_out ()
              | In -> scan_in ~skip_loops:false
              | Both ->
                  scan_out ();
                  scan_in ~skip_loops:true
            in
            let emit node path =
              out :=
                {
                  node_bind = bind m.node_bind dst_var node;
                  rel_bind = bind m.rel_bind rel_var (List.rev path);
                }
                :: !out
            in
            let u = lookup m.node_bind src_var in
            match hops with
            | None -> iter_hops u [] (fun r other -> emit other [ r ])
            | Some (lo, hi) ->
                let rec walk depth node path =
                  if depth >= lo then emit node path;
                  if depth < hi then
                    iter_hops node path (fun r other ->
                        walk (depth + 1) other (r :: path))
                in
                walk 0 u [])
          mappings;
        !out
    | Merge_on { keep; merge; cycle_len = _ } ->
        List.filter_map
          (fun m ->
            if lookup m.node_bind keep = lookup m.node_bind merge then
              Some { m with node_bind = drop m.node_bind merge }
            else None)
          mappings
  in
  match
    Array.fold_left
      (fun acc op ->
        let next = apply acc op in
        check_size next;
        on_step (List.length next);
        next)
      [ { node_bind = []; rel_bind = [] } ]
      alg.ops
  with
  | result -> Some result
  | exception Too_big -> None

let eval ?semantics ?max_intermediate g alg =
  eval_steps ?semantics ?max_intermediate g alg ~on_step:(fun _ -> ())

let count ?semantics ?max_intermediate g alg =
  Option.map List.length (eval ?semantics ?max_intermediate g alg)

let intermediate_sizes ?semantics ?max_intermediate g alg =
  let sizes = ref [] in
  eval_steps ?semantics ?max_intermediate g alg ~on_step:(fun n ->
      sizes := n :: !sizes)
  |> Option.map (fun _ -> List.rev !sizes)
