type t = Cypher | Homomorphism

let equal a b =
  match (a, b) with
  | Cypher, Cypher | Homomorphism, Homomorphism -> true
  | (Cypher | Homomorphism), _ -> false

let to_string = function Cypher -> "cypher" | Homomorphism -> "homomorphism"
