lib/exec/reference.ml: Algebra Array Direction Graph List Lpp_pattern Lpp_pgraph Option Pattern Semantics Value
