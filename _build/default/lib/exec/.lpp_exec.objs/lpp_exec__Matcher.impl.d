lib/exec/matcher.ml: Array Graph List Lpp_pattern Lpp_pgraph Pattern Queue Semantics Value
