lib/exec/reference.mli: Lpp_pattern Lpp_pgraph Semantics
