lib/exec/semantics.mli:
