lib/exec/matcher.mli: Lpp_pattern Lpp_pgraph Semantics
