lib/exec/semantics.ml:
