lib/workload/query_gen.ml: Array Graph Hashtbl Int List Lpp_datasets Lpp_exec Lpp_pattern Lpp_pgraph Lpp_util Pattern Queue Rng Shape
