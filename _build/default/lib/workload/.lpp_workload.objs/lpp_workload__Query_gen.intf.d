lib/workload/query_gen.mli: Lpp_datasets Lpp_pattern Lpp_util
