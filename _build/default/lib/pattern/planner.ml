open Lpp_pgraph

let expand_dir (r : Pattern.rel_pat) ~from_src =
  if not r.r_directed then Direction.Both
  else if from_src then Direction.Out
  else Direction.In

(* Selection operators for a freshly introduced node variable. *)
let node_selections (p : Pattern.t) pnode var =
  let n = p.nodes.(pnode) in
  let labels =
    Array.to_list n.n_labels
    |> List.map (fun l -> Algebra.Label_selection { var; label = l })
  in
  let props =
    if Array.length n.n_props = 0 then []
    else [ Algebra.Prop_selection { kind = Node_var; var; props = n.n_props } ]
  in
  labels @ props

let rel_selections (p : Pattern.t) prel rel_var =
  let r = p.rels.(prel) in
  if Array.length r.r_props = 0 then []
  else [ Algebra.Prop_selection { kind = Rel_var; var = rel_var; props = r.r_props } ]

(* shortest path (in relationships) between two pattern nodes, ignoring one
   relationship — the cycle a deferred rel closes has this length + 1 *)
let cycle_length (p : Pattern.t) ~without u w =
  let n = Pattern.node_count p in
  let dist = Array.make n (-1) in
  dist.(u) <- 0;
  let queue = Queue.create () in
  Queue.add u queue;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    Array.iteri
      (fun i (r : Pattern.rel_pat) ->
        if i <> without && (r.r_src = x || r.r_dst = x) then begin
          let y = if r.r_src = x then r.r_dst else r.r_src in
          if dist.(y) < 0 then begin
            dist.(y) <- dist.(x) + 1;
            Queue.add y queue
          end
        end)
      p.rels
  done;
  if dist.(w) < 0 then None else Some (dist.(w) + 1)

let expand_op (p : Pattern.t) prel ~src_var ~dst_var ~from_src =
  let r = p.rels.(prel) in
  Algebra.Expand
    {
      src_var;
      rel_var = prel;
      dst_var;
      types = r.r_types;
      dir = expand_dir r ~from_src;
      hops = r.r_hops;
    }

let plan (p : Pattern.t) =
  let n = Pattern.node_count p in
  let degrees = Array.init n (Pattern.degree p) in
  let start = ref 0 in
  for v = 1 to n - 1 do
    let better =
      degrees.(v) > degrees.(!start)
      || degrees.(v) = degrees.(!start)
         && Array.length p.nodes.(v).n_labels
            > Array.length p.nodes.(!start).n_labels
    in
    if better then start := v
  done;
  let start = !start in
  let bound = Array.make n false in
  let rel_done = Array.make (Pattern.rel_count p) false in
  let ops = ref [ Algebra.Get_nodes { var = start } ] in
  let emit op = ops := op :: !ops in
  List.iter emit (node_selections p start start);
  bound.(start) <- true;
  let queue = Queue.create () in
  Queue.add start queue;
  let deferred = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun prel ->
        if not rel_done.(prel) then begin
          let r = p.rels.(prel) in
          let from_src = r.r_src = u in
          let w = if from_src then r.r_dst else r.r_src in
          if bound.(w) then
            (* both endpoints bound: closes a cycle, defer to the end *)
            deferred := (prel, u, w, from_src) :: !deferred
          else begin
            rel_done.(prel) <- true;
            emit (expand_op p prel ~src_var:u ~dst_var:w ~from_src);
            List.iter emit (rel_selections p prel prel);
            List.iter emit (node_selections p w w);
            bound.(w) <- true;
            Queue.add w queue
          end
        end)
      (Pattern.incident_rels p u)
  done;
  let fresh = ref n in
  List.iter
    (fun (prel, u, w, from_src) ->
      if not rel_done.(prel) then begin
        rel_done.(prel) <- true;
        let tmp = !fresh in
        incr fresh;
        emit (expand_op p prel ~src_var:u ~dst_var:tmp ~from_src);
        List.iter emit (rel_selections p prel prel);
        emit
          (Algebra.Merge_on
             { keep = w; merge = tmp;
               cycle_len = cycle_length p ~without:prel u w })
      end)
    (List.rev !deferred);
  {
    Algebra.ops = Array.of_list (List.rev !ops);
    node_vars = !fresh;
    rel_vars = Pattern.rel_count p;
  }

let random_order rng (p : Pattern.t) =
  let n = Pattern.node_count p in
  let m = Pattern.rel_count p in
  let bound = Array.make n false in
  let rel_done = Array.make m false in
  let start = Lpp_util.Rng.int rng n in
  (* Pool of selection operators not yet emitted, flushed at random moments. *)
  let pending = ref [] in
  let ops = ref [ Algebra.Get_nodes { var = start } ] in
  let emit op = ops := op :: !ops in
  let add_pending l = pending := !pending @ l in
  let flush_some () =
    let keep, emit_now =
      List.partition (fun _ -> Lpp_util.Rng.bool rng) !pending
    in
    pending := keep;
    List.iter emit emit_now
  in
  bound.(start) <- true;
  add_pending (node_selections p start start);
  let fresh = ref n in
  let remaining = ref m in
  while !remaining > 0 do
    flush_some ();
    (* frontier: undone rels with at least one bound endpoint *)
    let frontier = ref [] in
    for prel = 0 to m - 1 do
      if not rel_done.(prel) then begin
        let r = p.rels.(prel) in
        if bound.(r.r_src) then frontier := (prel, true) :: !frontier;
        if bound.(r.r_dst) then frontier := (prel, false) :: !frontier
      end
    done;
    let prel, from_src = Lpp_util.Rng.pick_list rng !frontier in
    let r = p.rels.(prel) in
    let u = if from_src then r.r_src else r.r_dst in
    let w = if from_src then r.r_dst else r.r_src in
    rel_done.(prel) <- true;
    decr remaining;
    if bound.(w) then begin
      let tmp = !fresh in
      incr fresh;
      emit (expand_op p prel ~src_var:u ~dst_var:tmp ~from_src);
      add_pending (rel_selections p prel prel);
      emit
        (Algebra.Merge_on
           { keep = w; merge = tmp;
             cycle_len = cycle_length p ~without:prel u w })
    end
    else begin
      emit (expand_op p prel ~src_var:u ~dst_var:w ~from_src);
      bound.(w) <- true;
      add_pending (rel_selections p prel prel);
      add_pending (node_selections p w w)
    end
  done;
  List.iter emit !pending;
  {
    Algebra.ops = Array.of_list (List.rev !ops);
    node_vars = !fresh;
    rel_vars = m;
  }
