type var_kind = Node_var | Rel_var

type op =
  | Get_nodes of { var : int }
  | Label_selection of { var : int; label : int }
  | Prop_selection of {
      kind : var_kind;
      var : int;
      props : (int * Pattern.prop_pred) array;
    }
  | Expand of {
      src_var : int;
      rel_var : int;
      dst_var : int;
      types : int array;
      dir : Lpp_pgraph.Direction.t;
      hops : (int * int) option;
    }
  | Merge_on of { keep : int; merge : int; cycle_len : int option }

type t = { ops : op array; node_vars : int; rel_vars : int }

let op_count t = Array.length t.ops

let validate t =
  let bound_nodes = Array.make (max t.node_vars 1) false in
  let bound_rels = Array.make (max t.rel_vars 1) false in
  let error fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_node_in_range v =
    if v < 0 || v >= t.node_vars then error "node var %d out of range" v
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let check_live v =
    let* () = check_node_in_range v in
    if not bound_nodes.(v) then error "node var %d used before introduction" v
    else Ok ()
  in
  let introduce v =
    let* () = check_node_in_range v in
    if bound_nodes.(v) then error "node var %d introduced twice" v
    else begin
      bound_nodes.(v) <- true;
      Ok ()
    end
  in
  let step op =
    match op with
    | Get_nodes { var } -> introduce var
    | Label_selection { var; label } ->
        let* () = check_live var in
        if label < 0 then error "negative label id" else Ok ()
    | Prop_selection { kind; var; props } -> begin
        if Array.length props = 0 then error "empty property selection"
        else
          match kind with
          | Node_var -> check_live var
          | Rel_var ->
              if var < 0 || var >= t.rel_vars then
                error "rel var %d out of range" var
              else if not bound_rels.(var) then
                error "rel var %d used before introduction" var
              else Ok ()
      end
    | Expand { src_var; rel_var; dst_var; types = _; dir = _; hops } ->
        let* () =
          match hops with
          | Some (lo, hi) when lo < 1 || hi < lo -> error "invalid hop range"
          | Some _ | None -> Ok ()
        in
        let* () = check_live src_var in
        let* () = introduce dst_var in
        if rel_var < 0 || rel_var >= t.rel_vars then
          error "rel var %d out of range" rel_var
        else if bound_rels.(rel_var) then error "rel var %d introduced twice" rel_var
        else begin
          bound_rels.(rel_var) <- true;
          Ok ()
        end
    | Merge_on { keep; merge; cycle_len = _ } ->
        let* () = check_live keep in
        let* () = check_live merge in
        if keep = merge then error "Merge_on of a variable with itself"
        else begin
          bound_nodes.(merge) <- false;
          Ok ()
        end
  in
  Array.fold_left
    (fun acc op -> Result.bind acc (fun () -> step op))
    (Ok ()) t.ops

let pp_props ppf props =
  Array.iteri
    (fun i (k, p) ->
      if i > 0 then Format.fprintf ppf ", ";
      match (p : Pattern.prop_pred) with
      | Exists -> Format.fprintf ppf "k%d" k
      | Eq v -> Format.fprintf ppf "k%d=%a" k Lpp_pgraph.Value.pp v)
    props

let pp_op ppf = function
  | Get_nodes { var } -> Format.fprintf ppf "GetNodes(v%d)" var
  | Label_selection { var; label } ->
      Format.fprintf ppf "LabelSel(v%d : L%d)" var label
  | Prop_selection { kind; var; props } ->
      let prefix = match kind with Node_var -> "v" | Rel_var -> "r" in
      Format.fprintf ppf "PropSel(%s%d {%a})" prefix var pp_props props
  | Expand { src_var; rel_var; dst_var; types; dir; hops } ->
      let hops_str =
        match hops with
        | None -> ""
        | Some (lo, hi) ->
            if lo = hi then Printf.sprintf "*%d" lo
            else Printf.sprintf "*%d..%d" lo hi
      in
      Format.fprintf ppf "Expand(v%d %a[r%d:%s%s] v%d)" src_var
        Lpp_pgraph.Direction.pp dir rel_var
        (String.concat "|"
           (Array.to_list (Array.map (fun t -> "T" ^ string_of_int t) types)))
        hops_str dst_var
  | Merge_on { keep; merge; cycle_len } ->
      Format.fprintf ppf "MergeOn(v%d = v%d%s)" keep merge
        (match cycle_len with
        | None -> ""
        | Some k -> Printf.sprintf ", %d-cycle" k)

let pp ppf t =
  Array.iteri
    (fun i op ->
      if i > 0 then Format.fprintf ppf " ; ";
      pp_op ppf op)
    t.ops
