(** Pattern shape taxonomy (Bonifati et al., adopted by the paper's Section 6).

    Acyclic patterns are chains, stars or general trees; cyclic patterns are
    subdivided into circles (a single cycle), petals (two branch nodes joined
    by parallel paths), flowers (a single branch node carrying cycles and
    appendages) and other cyclic shapes. *)

type cyclic_kind = Circle | Petal | Flower | Other_cyclic

type t = Chain | Star | Tree | Cyclic of cyclic_kind

val classify : Pattern.t -> t
(** Classification over the undirected multigraph skeleton of the pattern:
    - no cycle, max degree ≤ 2 → [Chain] (includes single nodes and edges);
    - no cycle, all edges incident to one centre → [Star];
    - no cycle otherwise → [Tree];
    - cyclic with zero / one / two nodes of degree ≥ 3 → [Circle] / [Flower] /
      [Petal]; more → [Other_cyclic]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val all : t list
(** Every shape in report order: chain, star, tree, circle, petal, flower,
    other-cyclic. *)

val coarse : t -> string
(** The four coarse classes used by Figure 5: "chain", "star", "tree",
    "cyclic". *)
