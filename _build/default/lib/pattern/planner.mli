(** Linearisation of a pattern into an operator sequence (Section 4.3).

    The heuristic order starts from the pattern node with the highest degree,
    expands the pattern breadth-first, introduces label and property selections
    as early as possible, and defers cycle-closing relationships (emitted as an
    [Expand] to a fresh variable followed by [Merge_on]) to the end.

    [random_order] produces a uniformly random valid linearisation; the paper's
    preliminary ordering experiment compares the heuristic against 100 such
    orders per query. *)

val plan : Pattern.t -> Algebra.t
(** Heuristic order. Node variable [i < node_count] is bound to pattern node
    [i]; fresh variables (for cycle closers) get ids from [node_count] up.
    Relationship variable [j] is bound to pattern relationship [j]. *)

val random_order : Lpp_util.Rng.t -> Pattern.t -> Algebra.t
(** A valid but randomly chosen linearisation: random start node, random
    traversal order (cycle closers not deferred), selections inserted at random
    valid positions. *)
