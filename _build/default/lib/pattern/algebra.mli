(** Operator sequences of the property-graph algebra (Section 3.2).

    A sequence linearises a {!Pattern.t} into the five operators whose
    cardinality behaviour the paper models: [GetNodes], [LabelSelection],
    [PropertySelection], [Expand] and [MergeOn]. Estimators process the
    sequence front to back (Algorithm 1); a reference evaluator in
    [Lpp_exec.Reference] executes the same sequence exactly. *)

type var_kind = Node_var | Rel_var

type op =
  | Get_nodes of { var : int }
      (** bind a fresh node variable to every node of the graph *)
  | Label_selection of { var : int; label : int }
      (** keep mappings where [var]'s node carries [label] *)
  | Prop_selection of {
      kind : var_kind;
      var : int;
      props : (int * Pattern.prop_pred) array;
    }
      (** keep mappings where the entity satisfies all property predicates *)
  | Expand of {
      src_var : int;
      rel_var : int;
      dst_var : int;
      types : int array;  (** allowed relationship types; empty = any *)
      dir : Lpp_pgraph.Direction.t;
      hops : (int * int) option;
          (** variable-length range; [None] = exactly one relationship *)
    }
      (** one output mapping per input mapping and qualifying relationship
          (or, with [hops], qualifying path) incident to [src_var]'s node;
          binds [rel_var] and [dst_var] *)
  | Merge_on of { keep : int; merge : int; cycle_len : int option }
      (** keep mappings where the two node variables are bound to the same
          node, dropping [merge]. [cycle_len] is planner-provided metadata:
          the length of the pattern cycle this merge closes (3 for a
          triangle), consumed by the triangle-aware estimator extension. *)

type t = {
  ops : op array;
  node_vars : int;  (** node variable ids are [0 .. node_vars-1] *)
  rel_vars : int;  (** relationship variable ids are [0 .. rel_vars-1] *)
}

val validate : t -> (unit, string) result
(** Well-formedness: each variable is introduced exactly once before use, the
    first operator introducing a node variable is [Get_nodes] or [Expand],
    [Merge_on] drops a live variable, and variable ids stay within bounds. *)

val op_count : t -> int

val pp_op : Format.formatter -> op -> unit

val pp : Format.formatter -> t -> unit
