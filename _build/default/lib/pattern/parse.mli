(** A small openCypher-style pattern parser.

    Grammar (whitespace-insensitive):

    {v
    pattern  ::= path ("," path)*
    path     ::= node (rel node)*
    node     ::= "(" ident? (":" name)* props? ")"
    rel      ::= "-[" ident? types? hops? props? "]->"    (outgoing)
               | "<-[" … "]-"                             (incoming)
               | "-[" … "]-"                              (undirected)
    types    ::= ":" name ("|" name)…
    hops     ::= "*" int? (".." int)?
    props    ::= "{" entry ("," entry)* "}"
    entry    ::= key ":" value          (equality predicate)
               | key                     (existence predicate)
    value    ::= int | float | "string" | 'string' | true | false
    v}

    Node identifiers share variables across paths, so cyclic patterns read
    naturally: ["(a)-[:KNOWS]->(b)-[:KNOWS]->(a)"]. Bare [*] means hops 1..∞,
    capped at {!max_unbounded_hops}; [*n] means exactly n; [*n..m] a range.

    Names are resolved against (and interned into) the graph's vocabulary. *)

val max_unbounded_hops : int
(** Upper bound substituted for an open range (3). *)

type parsed = { pattern : Pattern.t; var_names : string option array }
(** [var_names.(i)] is the identifier the query used for pattern node [i],
    if any. *)

val parse : Lpp_pgraph.Graph.t -> string -> (parsed, string) result

val parse_exn : Lpp_pgraph.Graph.t -> string -> Pattern.t
(** @raise Invalid_argument with the parse error message. *)
