lib/pattern/shape.mli: Format Pattern
