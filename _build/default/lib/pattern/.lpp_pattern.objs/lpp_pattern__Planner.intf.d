lib/pattern/planner.mli: Algebra Lpp_util Pattern
