lib/pattern/pattern.mli: Format Lpp_pgraph
