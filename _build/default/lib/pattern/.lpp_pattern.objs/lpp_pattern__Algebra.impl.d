lib/pattern/algebra.ml: Array Format Lpp_pgraph Pattern Printf Result String
