lib/pattern/shape.ml: Array Format Fun Int Pattern
