lib/pattern/pattern.ml: Array Format Fun Graph Int Interner List Lpp_pgraph String Value
