lib/pattern/algebra.mli: Format Lpp_pgraph Pattern
