lib/pattern/parse.ml: Array Format Hashtbl List Lpp_pgraph Pattern String
