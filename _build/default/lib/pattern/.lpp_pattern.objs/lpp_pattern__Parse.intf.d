lib/pattern/parse.mli: Lpp_pgraph Pattern
