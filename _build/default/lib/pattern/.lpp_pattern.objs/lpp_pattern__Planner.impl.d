lib/pattern/planner.ml: Algebra Array Direction List Lpp_pgraph Lpp_util Pattern Queue
