let max_unbounded_hops = 3

type parsed = { pattern : Pattern.t; var_names : string option array }

(* ---------------- lexer ---------------- *)

type token =
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Colon
  | Comma
  | Pipe
  | Star
  | Dotdot
  | Dash
  | Arrow_out  (* "->" *)
  | Arrow_in  (* "<-" *)
  | Ident of string
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = '[' then (push Lbracket; incr i)
    else if c = ']' then (push Rbracket; incr i)
    else if c = '{' then (push Lbrace; incr i)
    else if c = '}' then (push Rbrace; incr i)
    else if c = ':' then (push Colon; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '|' then (push Pipe; incr i)
    else if c = '*' then (push Star; incr i)
    else if c = '.' && !i + 1 < n && input.[!i + 1] = '.' then begin
      push Dotdot;
      i := !i + 2
    end
    else if c = '<' && !i + 1 < n && input.[!i + 1] = '-' then begin
      push Arrow_in;
      i := !i + 2
    end
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then begin
      push Arrow_out;
      i := !i + 2
    end
    else if c = '-' && not (!i + 1 < n && is_digit input.[!i + 1]) then begin
      push Dash;
      incr i
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> quote do
        incr j
      done;
      if !j >= n then fail "unterminated string literal";
      push (Str (String.sub input start (!j - start)));
      i := !j + 1
    end
    else if is_digit c || c = '-' then begin
      (* a number; ".." terminates it so hop ranges like 1..3 lex correctly *)
      let start = !i in
      if c = '-' then incr i;
      while
        !i < n
        && (is_digit input.[!i]
           || (input.[!i] = '.' && not (!i + 1 < n && input.[!i + 1] = '.')))
      do
        incr i
      done;
      let lit = String.sub input start (!i - start) in
      if String.contains lit '.' then push (Float (float_of_string lit))
      else push (Int (int_of_string lit))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      match String.lowercase_ascii word with
      | "true" -> push (Bool true)
      | "false" -> push (Bool false)
      | _ -> push (Ident word)
    end
    else fail "unexpected character %C at offset %d" c !i
  done;
  List.rev !tokens

(* ---------------- parser ---------------- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with [] -> fail "unexpected end of input" | _ :: rest -> st.toks <- rest

let expect st tok name =
  match st.toks with
  | t :: rest when t = tok -> st.toks <- rest
  | _ -> fail "expected %s" name

let accept st tok =
  match st.toks with
  | t :: rest when t = tok ->
      st.toks <- rest;
      true
  | _ -> false

let parse_value st =
  match peek st with
  | Some (Int i) ->
      advance st;
      Lpp_pgraph.Value.Int i
  | Some (Float f) ->
      advance st;
      Lpp_pgraph.Value.Float f
  | Some (Str s) ->
      advance st;
      Lpp_pgraph.Value.Str s
  | Some (Bool b) ->
      advance st;
      Lpp_pgraph.Value.Bool b
  | _ -> fail "expected a literal value"

let parse_props st =
  if not (accept st Lbrace) then []
  else begin
    let entries = ref [] in
    let rec entry () =
      match peek st with
      | Some (Ident key) ->
          advance st;
          let pred =
            if accept st Colon then Pattern.Eq (parse_value st)
            else Pattern.Exists
          in
          entries := (key, pred) :: !entries;
          if accept st Comma then entry ()
      | _ -> fail "expected a property key"
    in
    entry ();
    expect st Rbrace "'}'";
    List.rev !entries
  end

(* ( ident? (:Label)* props? ) *)
let parse_node st =
  expect st Lparen "'('";
  let name =
    match peek st with
    | Some (Ident id) ->
        advance st;
        Some id
    | _ -> None
  in
  let labels = ref [] in
  while accept st Colon do
    match peek st with
    | Some (Ident l) ->
        advance st;
        labels := l :: !labels
    | _ -> fail "expected a label name"
  done;
  let props = parse_props st in
  expect st Rparen "')'";
  (name, List.rev !labels, props)

let parse_hops st =
  if not (accept st Star) then None
  else begin
    match peek st with
    | Some (Int lo) ->
        advance st;
        if accept st Dotdot then begin
          match peek st with
          | Some (Int hi) ->
              advance st;
              Some (lo, hi)
          | _ -> Some (lo, max_unbounded_hops)
        end
        else Some (lo, lo)
    | _ -> Some (1, max_unbounded_hops)
  end

(* the bracket part: [ ident? type-alternatives? hops? props? ] *)
let parse_rel_body st =
  expect st Lbracket "'['";
  (* relationship identifiers are accepted and ignored (only node variables
     participate in cardinality estimation) *)
  (match peek st with Some (Ident _) -> advance st | _ -> ());
  let types = ref [] in
  if accept st Colon then begin
    let rec types_loop () =
      match peek st with
      | Some (Ident t) ->
          advance st;
          types := t :: !types;
          if accept st Pipe then types_loop ()
      | _ -> fail "expected a relationship type"
    in
    types_loop ()
  end;
  let hops = parse_hops st in
  let props = parse_props st in
  expect st Rbracket "']'";
  (List.rev !types, hops, props)

(* rel between two nodes; returns (types, hops, props, direction) where
   direction is `Out | `In | `Undirected relative to reading order *)
let parse_rel st =
  if accept st Arrow_in then begin
    (* <-[ ... ]- *)
    let body = parse_rel_body st in
    expect st Dash "'-'";
    (body, `In)
  end
  else begin
    expect st Dash "'-'";
    let body = parse_rel_body st in
    if accept st Arrow_out then (body, `Out)
    else begin
      expect st Dash "'-'";
      (body, `Undirected)
    end
  end

let looks_like_rel st =
  match peek st with Some (Dash | Arrow_in) -> true | _ -> false

let parse graph input =
  try
    let st = { toks = tokenize input } in
    (* accept and skip a leading MATCH keyword *)
    (match peek st with
    | Some (Ident kw) when String.lowercase_ascii kw = "match" -> advance st
    | _ -> ());
    let nodes = ref [] in
    let n_nodes = ref 0 in
    let names = Hashtbl.create 8 in
    let rels = ref [] in
    let node_index (name, labels, props) =
      match name with
      | Some id when Hashtbl.mem names id ->
          let idx = Hashtbl.find names id in
          if labels <> [] || props <> [] then
            fail "variable %s is redeclared with labels or properties" id;
          idx
      | _ ->
          let idx = !n_nodes in
          incr n_nodes;
          (match name with Some id -> Hashtbl.add names id idx | None -> ());
          nodes := (name, Pattern.node_spec ~labels ~props ()) :: !nodes;
          idx
    in
    let rec parse_path () =
      let left = ref (node_index (parse_node st)) in
      while looks_like_rel st do
        let (types, hops, props), dir = parse_rel st in
        let right = node_index (parse_node st) in
        let src, dst, directed =
          match dir with
          | `Out -> (!left, right, true)
          | `In -> (right, !left, true)
          | `Undirected -> (!left, right, false)
        in
        rels :=
          Pattern.rel_spec ~types ~directed ~rprops:props ?hops ~src ~dst ()
          :: !rels;
        left := right
      done;
      if accept st Comma then parse_path ()
    in
    parse_path ();
    (match st.toks with
    | [] -> ()
    | _ -> fail "trailing input after pattern");
    let node_specs = List.rev_map snd !nodes in
    let var_names = Array.of_list (List.rev_map fst !nodes) in
    let pattern = Pattern.of_spec graph node_specs (List.rev !rels) in
    Ok { pattern; var_names }
  with
  | Parse_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let parse_exn graph input =
  match parse graph input with
  | Ok { pattern; _ } -> pattern
  | Error msg -> invalid_arg ("Parse.parse_exn: " ^ msg)
