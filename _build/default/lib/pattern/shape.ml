type cyclic_kind = Circle | Petal | Flower | Other_cyclic

type t = Chain | Star | Tree | Cyclic of cyclic_kind

let rank = function
  | Chain -> 0
  | Star -> 1
  | Tree -> 2
  | Cyclic Circle -> 3
  | Cyclic Petal -> 4
  | Cyclic Flower -> 5
  | Cyclic Other_cyclic -> 6

let compare a b = Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_string = function
  | Chain -> "chain"
  | Star -> "star"
  | Tree -> "tree"
  | Cyclic Circle -> "circle"
  | Cyclic Petal -> "petal"
  | Cyclic Flower -> "flower"
  | Cyclic Other_cyclic -> "cyclic-other"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all =
  [ Chain; Star; Tree; Cyclic Circle; Cyclic Petal; Cyclic Flower;
    Cyclic Other_cyclic ]

let coarse = function
  | Chain -> "chain"
  | Star -> "star"
  | Tree -> "tree"
  | Cyclic _ -> "cyclic"

let classify (p : Pattern.t) =
  let n = Pattern.node_count p in
  let m = Pattern.rel_count p in
  (* Patterns are connected by construction, so the cyclomatic number of the
     undirected skeleton is simply m - n + 1. *)
  let cycles = m - n + 1 in
  let degrees = Array.init n (Pattern.degree p) in
  let max_degree = Array.fold_left max 0 degrees in
  if cycles <= 0 then begin
    if max_degree <= 2 then Chain
    else if
      (* a star: some centre is an endpoint of every relationship *)
      Array.exists
        (fun c ->
          Array.for_all
            (fun (r : Pattern.rel_pat) -> r.r_src = c || r.r_dst = c)
            p.rels
          && degrees.(c) = m)
        (Array.init n Fun.id)
    then Star
    else Tree
  end
  else begin
    let branch_nodes =
      Array.fold_left (fun acc d -> if d >= 3 then acc + 1 else acc) 0 degrees
    in
    match branch_nodes with
    | 0 -> Cyclic Circle
    | 1 -> Cyclic Flower
    | 2 -> Cyclic Petal
    | _ -> Cyclic Other_cyclic
  end
