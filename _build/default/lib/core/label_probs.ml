type t = { labels : int; vars : (int, float array) Hashtbl.t }

let create ~labels = { labels; vars = Hashtbl.create 8 }

let label_count t = t.labels

let clamp p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let introduce t ~var ~init =
  if Hashtbl.mem t.vars var then
    invalid_arg "Label_probs.introduce: variable already live";
  Hashtbl.add t.vars var (Array.init t.labels (fun l -> clamp (init l)))

let drop t ~var = Hashtbl.remove t.vars var

let is_live t ~var = Hashtbl.mem t.vars var

let probs t var =
  match Hashtbl.find_opt t.vars var with
  | Some arr -> arr
  | None -> invalid_arg "Label_probs: variable not live"

let get t ~var ~label = (probs t var).(label)

let set t ~var ~label p = (probs t var).(label) <- clamp p

let update_all t ~var ~f =
  let arr = probs t var in
  Array.iteri (fun l p -> arr.(l) <- clamp (f l p)) arr

let positive_labels t ~var =
  let arr = probs t var in
  let acc = ref [] in
  for l = t.labels - 1 downto 0 do
    if arr.(l) > 0.0 then acc := l :: !acc
  done;
  !acc

let live_vars t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.vars [] |> List.sort Int.compare
