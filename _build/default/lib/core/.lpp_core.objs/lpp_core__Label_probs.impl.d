lib/core/label_probs.ml: Array Hashtbl Int List
