lib/core/label_probs.mli:
