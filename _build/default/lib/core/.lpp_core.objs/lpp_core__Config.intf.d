lib/core/config.mli:
