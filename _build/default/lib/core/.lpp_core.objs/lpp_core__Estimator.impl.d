lib/core/estimator.ml: Algebra Array Catalog Config Direction Float Label_hierarchy Label_partition Label_probs List Lpp_pattern Lpp_pgraph Lpp_stats Planner Prop_stats Triangle_stats
