lib/core/estimator.mli: Config Lpp_pattern Lpp_stats
