(** The q-error accuracy metric (Moerkotte et al.), as used throughout
    Section 6: the factor by which an estimate deviates from the truth,
    symmetric in over- and underestimation. *)

val q_error : truth:float -> estimate:float -> float
(** [max (truth/estimate) (estimate/truth)] with both inputs clamped to ≥ 1,
    so a zero estimate of a single-match query yields the truth itself rather
    than infinity (the standard convention). Always ≥ 1. *)

val underestimates : truth:float -> estimate:float -> bool
(** After the same clamping. *)
