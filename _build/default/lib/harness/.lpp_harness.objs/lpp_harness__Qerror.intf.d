lib/harness/qerror.mli:
