lib/harness/runner.ml: Float List Lpp_workload Qerror Technique Unix
