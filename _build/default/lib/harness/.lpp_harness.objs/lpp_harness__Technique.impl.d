lib/harness/technique.ml: Csets List Lpp_baselines Lpp_core Lpp_datasets Lpp_pattern Lpp_util Neo4j_est Sumrdf Wander_join
