lib/harness/qerror.ml: Float
