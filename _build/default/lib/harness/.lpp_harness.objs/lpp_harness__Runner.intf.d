lib/harness/runner.mli: Lpp_workload Technique
