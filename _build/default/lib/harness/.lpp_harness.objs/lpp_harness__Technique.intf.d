lib/harness/technique.mli: Lpp_baselines Lpp_core Lpp_datasets Lpp_pattern Lpp_stats
