lib/harness/report.mli:
