lib/harness/report.ml: Float Lpp_util Printf
