(** Formatting helpers shared by the benchmark executable's reports. *)

val qerr_cell : float list -> string
(** Quartile rendering of a q-error sample, e.g. ["3.2 [1.4, 18]"] for median
    [q25, q75]; ["-"] for an empty sample. *)

val time_cell : float list -> string
(** Median [q25, q75] of latencies in a human unit (ns/µs/ms). *)

val float_cell : float -> string
(** Compact significant-digit rendering. *)

val ns_to_string : float -> string
