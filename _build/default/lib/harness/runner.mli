(** Experiment runner: apply a technique to a query set, recording q-error and
    estimation latency per query. *)

type measurement = {
  query : Lpp_workload.Query_gen.query;
  estimate : float;
  q_error : float;
  runtime_ns : float;  (** wall-clock per single estimation call *)
}

val run :
  ?measure_time:bool ->
  Technique.t ->
  Lpp_workload.Query_gen.query list ->
  measurement list
(** Unsupported queries are skipped. With [measure_time] (default true) each
    estimate is repeated until at least ~1 ms of wall clock has been observed
    so that sub-microsecond estimators still get a meaningful latency. *)

val support_fraction :
  Technique.t -> Lpp_workload.Query_gen.query list -> float

val q_errors : measurement list -> float list

val runtimes_ns : measurement list -> float list

val filter :
  (Lpp_workload.Query_gen.query -> bool) -> measurement list -> measurement list
