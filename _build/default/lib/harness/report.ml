let float_cell v =
  if Float.is_integer v && Float.abs v < 1e6 then
    Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.3g" v
  else Printf.sprintf "%.2f" v

let qerr_cell sample =
  match Lpp_util.Quantiles.summarize sample with
  | None -> "-"
  | Some s ->
      Printf.sprintf "%s [%s, %s]" (float_cell s.median) (float_cell s.q25)
        (float_cell s.q75)

let ns_to_string ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let time_cell sample =
  match Lpp_util.Quantiles.summarize sample with
  | None -> "-"
  | Some s ->
      Printf.sprintf "%s [%s, %s]" (ns_to_string s.median)
        (ns_to_string s.q25) (ns_to_string s.q75)
