let q_error ~truth ~estimate =
  let t = Float.max truth 1.0 in
  let e = Float.max estimate 1.0 in
  Float.max (t /. e) (e /. t)

let underestimates ~truth ~estimate =
  Float.max estimate 1.0 < Float.max truth 1.0
