(** Gubichev's cardinality estimator, as adopted by Neo4j (Section 2).

    Statistics: per-label node counts and (label, type, direction) pair counts
    — the "simple" half of our {!Lpp_stats.Catalog}. Estimation combines
    per-node label selectivities and per-relationship selectivities under full
    independence; relationship selectivity takes the tighter of the two
    endpoint-side bounds, which is what produces the systematic underestimation
    on long chains that the paper reports. Property predicates use the
    classical fixed 10 % selectivity, as Neo4j does. *)

type t

val build : Lpp_stats.Catalog.t -> t

val estimate : t -> Lpp_pattern.Pattern.t -> float

val supports : Lpp_pattern.Pattern.t -> bool
(** [true] for every pattern in the paper's query sets; only variable-length
    paths (this library's extension) are out of model. *)

val memory_bytes : t -> int
