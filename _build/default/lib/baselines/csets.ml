open Lpp_pgraph
open Lpp_pattern
open Lpp_stats

(* A characteristic-set element: relationship type plus orientation. *)
module Elem = struct
  type t = { typ : int; out : bool }

  let compare a b =
    match Int.compare a.typ b.typ with
    | 0 -> Bool.compare a.out b.out
    | c -> c
end

module ElemMap = Map.Make (Elem)

type cset = {
  mutable node_count : int;
  mutable occurrences : int ElemMap.t;  (* total incident rels per element *)
}

type t = {
  sets : (Elem.t list, cset) Hashtbl.t;
  catalog : Catalog.t;
}

let node_elements g nd =
  let add m typ out =
    let key = { Elem.typ; out } in
    ElemMap.update key
      (fun c -> Some (1 + Option.value ~default:0 c))
      m
  in
  let m = ElemMap.empty in
  let m =
    Array.fold_left
      (fun m r -> add m (Graph.rel_type g r) true)
      m (Graph.out_rels g nd)
  in
  Array.fold_left
    (fun m r -> add m (Graph.rel_type g r) false)
    m (Graph.in_rels g nd)

let build g catalog =
  let sets = Hashtbl.create 256 in
  Graph.iter_nodes g (fun nd ->
      let elems = node_elements g nd in
      let key = List.map fst (ElemMap.bindings elems) in
      let entry =
        match Hashtbl.find_opt sets key with
        | Some e -> e
        | None ->
            let e = { node_count = 0; occurrences = ElemMap.empty } in
            Hashtbl.add sets key e;
            e
      in
      entry.node_count <- entry.node_count + 1;
      entry.occurrences <-
        ElemMap.union (fun _ a b -> Some (a + b)) entry.occurrences elems);
  { sets; catalog }

let supports (p : Pattern.t) =
  Array.for_all
    (fun (r : Pattern.rel_pat) ->
      r.r_directed && Array.length r.r_types = 1 && r.r_hops = None)
    p.rels

let fi = float_of_int

let safe_div num den = if den <= 0.0 then 0.0 else num /. den

(* Greedy decomposition into non-overlapping stars: repeatedly pick the node
   with the most unassigned incident relationships as a centre. Returns the
   list of (centre, rel indices). *)
let star_decomposition (p : Pattern.t) =
  let m = Pattern.rel_count p in
  let assigned = Array.make m false in
  let stars = ref [] in
  let remaining = ref m in
  while !remaining > 0 do
    let best = ref (-1) and best_count = ref 0 in
    for v = 0 to Pattern.node_count p - 1 do
      let c =
        List.length
          (List.filter (fun r -> not assigned.(r)) (Pattern.incident_rels p v))
      in
      if c > !best_count then begin
        best := v;
        best_count := c
      end
    done;
    let centre = !best in
    let rels =
      List.filter (fun r -> not assigned.(r)) (Pattern.incident_rels p centre)
    in
    List.iter
      (fun r ->
        assigned.(r) <- true;
        decr remaining)
      rels;
    stars := (centre, rels) :: !stars
  done;
  List.rev !stars

(* Expected number of (star-centre, incident-rel…) tuples for one star, from
   the characteristic-set counts. Repeated query elements use falling
   factorials of the average multiplicity to respect edge isomorphism. *)
let star_cardinality t (p : Pattern.t) centre rels =
  (* multiset of query elements *)
  let query =
    List.fold_left
      (fun m ri ->
        let r = p.rels.(ri) in
        let out = r.r_src = centre in
        let key = { Elem.typ = r.r_types.(0); out } in
        ElemMap.update key (fun c -> Some (1 + Option.value ~default:0 c)) m)
      ElemMap.empty rels
  in
  Hashtbl.fold
    (fun _key (cs : cset) acc ->
      let covers =
        ElemMap.for_all (fun e _ -> ElemMap.mem e cs.occurrences) query
      in
      if not covers then acc
      else begin
        let per_node = fi cs.node_count in
        let factor =
          ElemMap.fold
            (fun e k f ->
              let mult = safe_div (fi (ElemMap.find e cs.occurrences)) per_node in
              let rec falling m i =
                if i >= k then 1.0
                else Float.max 0.0 (m -. fi i) *. falling m (i + 1)
              in
              f *. falling mult 0)
            query 1.0
        in
        acc +. (per_node *. factor)
      end)
    t.sets 0.0

let label_and_prop_factor t (p : Pattern.t) =
  let total = fi (Catalog.nc_star t.catalog) in
  let stats = Catalog.props t.catalog in
  let node_factor =
    Array.fold_left
      (fun acc (np : Pattern.node_pat) ->
        let labels =
          Array.fold_left
            (fun f l -> f *. safe_div (fi (Catalog.nc t.catalog l)) total)
            1.0 np.n_labels
        in
        let props =
          Array.fold_left
            (fun f (key, pred) ->
              f *. Prop_stats.selectivity stats Any_node ~key pred)
            1.0 np.n_props
        in
        acc *. labels *. props)
      1.0 p.nodes
  in
  let rel_factor =
    Array.fold_left
      (fun acc (r : Pattern.rel_pat) ->
        Array.fold_left
          (fun f (key, pred) ->
            f *. Prop_stats.selectivity stats Any_rel ~key pred)
          acc r.r_props)
      1.0 p.rels
  in
  node_factor *. rel_factor

let estimate t (p : Pattern.t) =
  if not (supports p) then 0.0
  else if Pattern.rel_count p = 0 then
    fi (Catalog.nc_star t.catalog) *. label_and_prop_factor t p
  else begin
    let stars = star_decomposition p in
    let star_product =
      List.fold_left
        (fun acc (centre, rels) -> acc *. star_cardinality t p centre rels)
        1.0 stars
    in
    (* Independence join factor: every node appearing in more than one star
       contributes 1/NC(✱) per extra appearance. *)
    let appearances = Array.make (Pattern.node_count p) 0 in
    List.iter
      (fun (centre, rels) ->
        let touched = Hashtbl.create 8 in
        Hashtbl.replace touched centre ();
        List.iter
          (fun ri ->
            let r = p.rels.(ri) in
            Hashtbl.replace touched r.r_src ();
            Hashtbl.replace touched r.r_dst ())
          rels;
        Hashtbl.iter (fun v () -> appearances.(v) <- appearances.(v) + 1) touched)
      stars;
    let total = fi (Catalog.nc_star t.catalog) in
    let join_factor =
      Array.fold_left
        (fun acc a ->
          if a > 1 then acc *. ((1.0 /. total) ** fi (a - 1)) else acc)
        1.0 appearances
    in
    star_product *. join_factor *. label_and_prop_factor t p
  end

let distinct_sets t = Hashtbl.length t.sets

let memory_bytes t =
  let open Lpp_util.Mem_size in
  Hashtbl.fold
    (fun key cs acc ->
      acc
      + table_entry
          ~key_bytes:(List.length key * 2 * int_entry)
          ~value_bytes:
            (int_entry + (ElemMap.cardinal cs.occurrences * 3 * int_entry)))
    t.sets 0
