lib/baselines/wander_join.ml: Array Graph List Lpp_pattern Lpp_pgraph Lpp_util Pattern Queue
