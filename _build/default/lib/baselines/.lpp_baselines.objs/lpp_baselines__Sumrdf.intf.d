lib/baselines/sumrdf.mli: Lpp_pattern Lpp_pgraph
