lib/baselines/sumrdf.ml: Array Float Graph Hashtbl Int List Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Option Pattern Prop_stats Queue
