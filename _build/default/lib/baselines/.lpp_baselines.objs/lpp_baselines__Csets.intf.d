lib/baselines/csets.mli: Lpp_pattern Lpp_pgraph Lpp_stats
