lib/baselines/neo4j_est.mli: Lpp_pattern Lpp_stats
