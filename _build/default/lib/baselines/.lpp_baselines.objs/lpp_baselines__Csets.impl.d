lib/baselines/csets.ml: Array Bool Catalog Float Graph Hashtbl Int List Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Map Option Pattern Prop_stats
