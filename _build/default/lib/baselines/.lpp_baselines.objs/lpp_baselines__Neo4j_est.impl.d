lib/baselines/neo4j_est.ml: Array Catalog Direction Lpp_pattern Lpp_pgraph Lpp_stats Pattern
