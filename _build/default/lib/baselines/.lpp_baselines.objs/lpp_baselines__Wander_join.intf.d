lib/baselines/wander_join.mli: Lpp_pattern Lpp_pgraph Lpp_util
