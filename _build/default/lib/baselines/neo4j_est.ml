open Lpp_pgraph
open Lpp_pattern
open Lpp_stats

type t = { catalog : Catalog.t }

let build catalog = { catalog }

(* Gubichev's formulas cover every fixed-length pattern; variable-length
   paths (our extension) are outside its model. *)
let supports (p : Pattern.t) = not (Pattern.has_var_length p)

let fi = float_of_int

let property_selectivity = 0.10

let safe_div num den = if den <= 0.0 then 0.0 else num /. den

(* Label-adjusted cardinality of a single pattern node under independence. *)
let node_card t (np : Pattern.node_pat) =
  let total = fi (Catalog.nc_star t.catalog) in
  let label_factor =
    Array.fold_left
      (fun acc l -> acc *. safe_div (fi (Catalog.nc t.catalog l)) total)
      1.0 np.n_labels
  in
  let prop_factor =
    property_selectivity ** fi (Array.length np.n_props)
  in
  total *. label_factor *. prop_factor

(* Pair count from one endpoint's perspective, taking the most selective of
   the node's labels (Neo4j consults its label-specific counters and keeps
   the tightest). *)
let side_count t (np : Pattern.node_pat) ~dir ~types =
  let for_label node = Catalog.simple_rc t.catalog ~dir ~node ~types in
  if Array.length np.n_labels = 0 then for_label None
  else
    Array.fold_left
      (fun acc l -> min acc (for_label (Some l)))
      max_int np.n_labels

let estimate t (p : Pattern.t) =
  let total = fi (Catalog.nc_star t.catalog) in
  let node_cards = Array.map (node_card t) p.nodes in
  let nodes_product = Array.fold_left ( *. ) 1.0 node_cards in
  let rel_factor =
    Array.fold_left
      (fun acc (r : Pattern.rel_pat) ->
        let dir_src, dir_dst =
          if r.r_directed then (Direction.Out, Direction.In)
          else (Direction.Both, Direction.Both)
        in
        let from_src = side_count t p.nodes.(r.r_src) ~dir:dir_src ~types:r.r_types in
        let from_dst = side_count t p.nodes.(r.r_dst) ~dir:dir_dst ~types:r.r_types in
        let bound = fi (min from_src from_dst) in
        (* Selectivity of the relationship relative to the unlabeled cross
           product of its endpoints; label factors are already applied in the
           node cardinalities, so scale the bound by the inverse of the label
           selectivities it already incorporates. *)
        let label_sel np =
          Array.fold_left
            (fun acc l ->
              acc *. safe_div (fi (Catalog.nc t.catalog l)) total)
            1.0 np.Pattern.n_labels
        in
        let denom =
          total *. total
          *. label_sel p.nodes.(r.r_src)
          *. label_sel p.nodes.(r.r_dst)
        in
        let prop_factor =
          property_selectivity ** fi (Array.length r.r_props)
        in
        acc *. safe_div bound denom *. prop_factor)
      1.0 p.rels
  in
  nodes_product *. rel_factor

let memory_bytes t = Catalog.memory_bytes_simple t.catalog
