(** SumRDF-style graph-summary cardinality estimation (Stefanoni et al.),
    adapted to property graphs.

    The summary merges nodes with the same label signature into buckets
    (large signatures split by degree so the summary approaches a target
    size) and records, per (bucket, type, bucket), the relationship
    multiplicity. A pattern is estimated by enumerating its homomorphic
    embeddings into the summary: each embedding contributes the product of
    the expected per-relationship match counts under a uniform random-graph
    model within bucket pairs, times the bucket sizes of its free nodes.

    This reproduces the paper-relevant behaviour of SumRDF: accuracy well
    above the per-label independence models, with runtime exponential in
    pattern size and memory proportional to the summary — hence the step
    [budget] (the analogue of the paper's 10 s timeout), after which the
    partial sum accumulated so far is returned. *)

type t

val build : ?target_buckets:int -> Lpp_pgraph.Graph.t -> t
(** [target_buckets] defaults to 512. *)

val bucket_count : t -> int

val estimate : ?budget:int -> t -> Lpp_pattern.Pattern.t -> float
(** [budget] (default 5_000_000 steps) bounds the embedding enumeration. *)

val supports : Lpp_pattern.Pattern.t -> bool
(** Directed, single-typed relationships only, as in the paper. *)

val memory_bytes : t -> int
