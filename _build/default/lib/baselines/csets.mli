(** Characteristic Sets (Neumann & Moerkotte), adapted to property graphs.

    The characteristic set of a node is the set of (relationship type,
    direction) pairs incident to it. We keep, per distinct set, the number of
    nodes exhibiting it and, per element, the total number of incident
    relationships (for average multiplicities) — uncompressed, as the paper's
    own CSets implementation is configured for maximal accuracy.

    Estimation decomposes the pattern into non-overlapping stars (greedily, by
    descending degree), answers each star from the characteristic-set counts,
    and combines stars under the independence assumption (each shared node
    contributes a [1/NC(✱)] join factor) — the behaviour the paper credits for
    CSets' severe underestimation on non-star-decomposable patterns.

    Node labels multiply in their independent selectivities; property
    predicates use wildcard property statistics. Patterns with undirected or
    untyped relationships are unsupported (see {!supports}), matching the
    support percentages reported in Section 6.2. *)

type t

val build : Lpp_pgraph.Graph.t -> Lpp_stats.Catalog.t -> t

val estimate : t -> Lpp_pattern.Pattern.t -> float

val supports : Lpp_pattern.Pattern.t -> bool
(** [true] iff every relationship is directed and carries exactly one type. *)

val distinct_sets : t -> int

val memory_bytes : t -> int
