open Lpp_pgraph
open Lpp_pattern

type t = {
  bucket_of : int array;  (* node -> bucket *)
  sizes : int array;  (* bucket -> node count *)
  signatures : int array array;  (* bucket -> sorted label ids *)
  edges : (int * int * int, int) Hashtbl.t;  (* (b1, typ, b2) -> multiplicity *)
  out_adj : (int * int, (int * int) list) Hashtbl.t;  (* (b1,typ) -> (b2,count) *)
  in_adj : (int * int, (int * int) list) Hashtbl.t;  (* (b2,typ) -> (b1,count) *)
  props : Lpp_stats.Prop_stats.t;
}

let build ?(target_buckets = 512) g =
  let n = Graph.node_count g in
  (* group nodes by label signature *)
  let groups : (int list, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Graph.iter_nodes g (fun nd ->
      let key = Array.to_list (Graph.node_labels g nd) in
      match Hashtbl.find_opt groups key with
      | Some l -> l := nd :: !l
      | None -> Hashtbl.add groups key (ref [ nd ]));
  (* allocate buckets: each group gets splits proportional to its share *)
  let bucket_of = Array.make n (-1) in
  let sizes = ref [] and signatures = ref [] in
  let next = ref 0 in
  Hashtbl.iter
    (fun key members ->
      let members = Array.of_list !members in
      let share =
        max 1
          (int_of_float
             (Float.round
                (float_of_int target_buckets
                *. float_of_int (Array.length members)
                /. float_of_int n)))
      in
      let k = min share (Array.length members) in
      (* split by total degree so hubs and leaves land in different buckets *)
      Array.sort
        (fun a b ->
          Int.compare (Graph.degree g Both a) (Graph.degree g Both b))
        members;
      let chunk = (Array.length members + k - 1) / k in
      let i = ref 0 in
      while !i < Array.length members do
        let hi = min (Array.length members) (!i + chunk) in
        let b = !next in
        incr next;
        for j = !i to hi - 1 do
          bucket_of.(members.(j)) <- b
        done;
        sizes := (hi - !i) :: !sizes;
        signatures := Array.of_list key :: !signatures;
        i := hi
      done)
    groups;
  let sizes = Array.of_list (List.rev !sizes) in
  let signatures = Array.of_list (List.rev !signatures) in
  let edges = Hashtbl.create 1024 in
  Graph.iter_rels g (fun r ->
      let key =
        ( bucket_of.(Graph.rel_src g r),
          Graph.rel_type g r,
          bucket_of.(Graph.rel_dst g r) )
      in
      Hashtbl.replace edges key
        (1 + Option.value ~default:0 (Hashtbl.find_opt edges key)));
  let out_adj = Hashtbl.create 1024 and in_adj = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (b1, ty, b2) c ->
      let push tbl key v =
        Hashtbl.replace tbl key
          (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
      in
      push out_adj (b1, ty) (b2, c);
      push in_adj (b2, ty) (b1, c))
    edges;
  {
    bucket_of;
    sizes;
    signatures;
    edges;
    out_adj;
    in_adj;
    props = Lpp_stats.Prop_stats.build g;
  }

let bucket_count t = Array.length t.sizes

let supports (p : Pattern.t) =
  Array.for_all
    (fun (r : Pattern.rel_pat) ->
      r.r_directed && Array.length r.r_types = 1 && r.r_hops = None)
    p.rels

let fi = float_of_int

let signature_covers sig_ labels =
  Array.for_all (fun l -> Array.exists (( = ) l) sig_) labels

type step = { prel : int; from_src : bool; closes : bool }

let traversal (p : Pattern.t) =
  let n = Pattern.node_count p in
  let degrees = Array.init n (Pattern.degree p) in
  let start = ref 0 in
  for v = 1 to n - 1 do
    if degrees.(v) > degrees.(!start) then start := v
  done;
  let bound = Array.make n false in
  let rel_done = Array.make (Pattern.rel_count p) false in
  bound.(!start) <- true;
  let steps = ref [] in
  let queue = Queue.create () in
  Queue.add !start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun prel ->
        if not rel_done.(prel) then begin
          rel_done.(prel) <- true;
          let r = p.rels.(prel) in
          let from_src = r.r_src = u in
          let w = if from_src then r.r_dst else r.r_src in
          if bound.(w) then steps := { prel; from_src; closes = true } :: !steps
          else begin
            bound.(w) <- true;
            steps := { prel; from_src; closes = false } :: !steps;
            Queue.add w queue
          end
        end)
      (Pattern.incident_rels p u)
  done;
  (!start, Array.of_list (List.rev !steps))

exception Out_of_budget

let prop_factor t (p : Pattern.t) =
  let open Lpp_stats in
  let node_f =
    Array.fold_left
      (fun acc (np : Pattern.node_pat) ->
        Array.fold_left
          (fun f (key, pred) ->
            f *. Prop_stats.selectivity t.props Any_node ~key pred)
          acc np.n_props)
      1.0 p.nodes
  in
  Array.fold_left
    (fun acc (r : Pattern.rel_pat) ->
      Array.fold_left
        (fun f (key, pred) ->
          f *. Prop_stats.selectivity t.props Any_rel ~key pred)
        acc r.r_props)
    node_f p.rels

let estimate ?(budget = 5_000_000) t (p : Pattern.t) =
  if not (supports p) then 0.0
  else begin
    let start, steps = traversal p in
    let bucket_bind = Array.make (Pattern.node_count p) (-1) in
    let total = ref 0.0 in
    let remaining = ref budget in
    let tick () =
      decr remaining;
      if !remaining < 0 then raise Out_of_budget
    in
    let rec go i partial =
      if i >= Array.length steps then total := !total +. partial
      else begin
        let { prel; from_src; closes } = steps.(i) in
        let rp = p.rels.(prel) in
        let typ = rp.r_types.(0) in
        let b_u = bucket_bind.(if from_src then rp.r_src else rp.r_dst) in
        let w_pat = if from_src then rp.r_dst else rp.r_src in
        let adj = if from_src then t.out_adj else t.in_adj in
        let neighbours =
          Option.value ~default:[] (Hashtbl.find_opt adj (b_u, typ))
        in
        List.iter
          (fun (b_w, count) ->
            tick ();
            if closes then begin
              if bucket_bind.(w_pat) = b_w then begin
                (* both endpoints bound: plain density factor *)
                let f = fi count /. (fi t.sizes.(b_u) *. fi t.sizes.(b_w)) in
                go (i + 1) (partial *. f)
              end
            end
            else if signature_covers t.signatures.(b_w) p.nodes.(w_pat).n_labels
            then begin
              (* introducing w: density × bucket size collapses to c / |b_u| *)
              bucket_bind.(w_pat) <- b_w;
              go (i + 1) (partial *. (fi count /. fi t.sizes.(b_u)));
              bucket_bind.(w_pat) <- -1
            end)
          neighbours
      end
    in
    (try
       if Pattern.rel_count p = 0 then
         (* single-node pattern: sum the sizes of covering buckets *)
         Array.iteri
           (fun b sig_ ->
             if signature_covers sig_ p.nodes.(start).n_labels then
               total := !total +. fi t.sizes.(b))
           t.signatures
       else
         Array.iteri
           (fun b sig_ ->
             tick ();
             if signature_covers sig_ p.nodes.(start).n_labels then begin
               bucket_bind.(start) <- b;
               go 0 (fi t.sizes.(b));
               bucket_bind.(start) <- -1
             end)
           t.signatures
     with Out_of_budget -> ());
    !total *. prop_factor t p
  end

let memory_bytes t =
  let open Lpp_util.Mem_size in
  let buckets =
    Array.fold_left
      (fun acc sig_ -> acc + int_entry + (Array.length sig_ * int_entry) + word)
      0 t.signatures
  in
  let edge_bytes =
    Hashtbl.length t.edges
    * table_entry ~key_bytes:(3 * int_entry) ~value_bytes:int_entry
  in
  buckets + edge_bytes
