(** Mutable construction of a property graph, frozen into a {!Graph.t}.

    {[
      let b = Graph_builder.create () in
      let alice = Graph_builder.add_node b ~labels:[ "Person"; "Student" ]
          ~props:[ ("name", Value.Str "Alice") ] in
      let bob = Graph_builder.add_node b ~labels:[ "Person" ] ~props:[] in
      let _r = Graph_builder.add_rel b ~src:alice ~dst:bob ~rel_type:"knows"
          ~props:[] in
      let g = Graph_builder.freeze b
    ]} *)

type t

val create : unit -> t

val add_node :
  t -> labels:string list -> props:(string * Value.t) list -> Graph.node
(** Duplicate labels and duplicate property keys are deduplicated (last write
    wins for properties). *)

val add_rel :
  t ->
  src:Graph.node ->
  dst:Graph.node ->
  rel_type:string ->
  props:(string * Value.t) list ->
  Graph.rel
(** @raise Invalid_argument if either endpoint has not been added yet. *)

val node_count : t -> int

val rel_count : t -> int

val freeze : t -> Graph.t
(** The builder must not be used after [freeze]. *)
