lib/pgraph/direction.mli: Format
