lib/pgraph/graph_io.mli: Graph
