lib/pgraph/graph_builder.ml: Array Graph Hashtbl Int Interner List Value
