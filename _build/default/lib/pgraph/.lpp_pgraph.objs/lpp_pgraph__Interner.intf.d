lib/pgraph/interner.mli:
