lib/pgraph/graph.ml: Array Direction Interner Value
