lib/pgraph/direction.ml: Format Int
