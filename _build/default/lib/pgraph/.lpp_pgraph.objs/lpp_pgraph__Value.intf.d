lib/pgraph/value.mli: Format
