lib/pgraph/graph_io.ml: Array Buffer Fun Graph Hashtbl Int Interner List Option Printf String Value
