lib/pgraph/graph.mli: Direction Interner Value
