lib/pgraph/interner.ml: Array Hashtbl Lpp_util
