lib/pgraph/graph_builder.mli: Graph Value
