lib/pgraph/value.ml: Bool Float Format Hashtbl Int String
