(** Bidirectional string ↔ dense-integer interning.

    Labels, relationship types and property keys are interned once at graph
    construction time; all downstream code (statistics, estimators, matcher)
    works on dense integer ids, which keeps per-operator estimation cost low. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Return the id for [s], allocating a fresh one on first sight. *)

val find_opt : t -> string -> int option
(** Lookup without allocation. *)

val name : t -> int -> string
(** @raise Invalid_argument on an unknown id. *)

val size : t -> int
(** Number of distinct interned strings; ids are [0 .. size-1]. *)

val iter : t -> (int -> string -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> string -> 'a) -> 'a

val memory_bytes : t -> int
(** Approximate footprint of the interner's payload (see {!Lpp_util.Mem_size}). *)
