(** Traversal direction of a relationship, α ∈ {→, ←, ↔} in the paper. *)

type t = Out | In | Both

val equal : t -> t -> bool

val compare : t -> t -> int

val reverse : t -> t
(** [Out ↔ In]; [Both] is its own reverse. Used when propagating statistics
    from the target variable's point of view. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val all : t list
