type node = int

type rel = int

type t = {
  labels : Interner.t;
  rel_types : Interner.t;
  prop_keys : Interner.t;
  node_labels : int array array;
  node_props : (int * Value.t) array array;
  rel_src : int array;
  rel_dst : int array;
  rel_type : int array;
  rel_props : (int * Value.t) array array;
  out_adj : int array array;
  in_adj : int array array;
  label_index : int array array; (* label id -> sorted node ids *)
  unlabeled : int;
  prop_total : int;
}

let node_count t = Array.length t.node_labels

let rel_count t = Array.length t.rel_src

let property_count t = t.prop_total

let labels t = t.labels

let rel_types t = t.rel_types

let prop_keys t = t.prop_keys

let label_count t = Interner.size t.labels

let rel_type_count t = Interner.size t.rel_types

let prop_key_count t = Interner.size t.prop_keys

let node_labels t n = t.node_labels.(n)

let node_has_label t n l =
  (* Label arrays are tiny (rarely > 5); linear scan beats binary search. *)
  let arr = t.node_labels.(n) in
  let rec go i = i < Array.length arr && (arr.(i) = l || go (i + 1)) in
  go 0

let node_props t n = t.node_props.(n)

let assoc_prop props key =
  let rec go i =
    if i >= Array.length props then None
    else begin
      let k, v = props.(i) in
      if k = key then Some v else if k > key then None else go (i + 1)
    end
  in
  go 0

let node_prop t n key = assoc_prop t.node_props.(n) key

let nodes_with_label t l =
  (* labels interned into the vocabulary after freezing (e.g. by a query)
     have an empty extent *)
  if l < 0 || l >= Array.length t.label_index then [||] else t.label_index.(l)

let unlabeled_node_count t = t.unlabeled

let rel_src t r = t.rel_src.(r)

let rel_dst t r = t.rel_dst.(r)

let rel_type t r = t.rel_type.(r)

let rel_props t r = t.rel_props.(r)

let rel_prop t r key = assoc_prop t.rel_props.(r) key

let out_rels t n = t.out_adj.(n)

let in_rels t n = t.in_adj.(n)

let degree t dir n =
  match (dir : Direction.t) with
  | Out -> Array.length t.out_adj.(n)
  | In -> Array.length t.in_adj.(n)
  | Both -> Array.length t.out_adj.(n) + Array.length t.in_adj.(n)

let other_end t r n =
  if t.rel_src.(r) = n then t.rel_dst.(r)
  else if t.rel_dst.(r) = n then t.rel_src.(r)
  else invalid_arg "Graph.other_end: node is not an endpoint"

let iter_nodes t f =
  for n = 0 to node_count t - 1 do
    f n
  done

let iter_rels t f =
  for r = 0 to rel_count t - 1 do
    f r
  done

let fold_nodes t ~init ~f =
  let acc = ref init in
  iter_nodes t (fun n -> acc := f !acc n);
  !acc

let fold_rels t ~init ~f =
  let acc = ref init in
  iter_rels t (fun r -> acc := f !acc r);
  !acc

let build_adjacency ~n_nodes ~endpoints =
  let counts = Array.make n_nodes 0 in
  Array.iter (fun e -> counts.(e) <- counts.(e) + 1) endpoints;
  let adj = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make n_nodes 0 in
  Array.iteri
    (fun r e ->
      adj.(e).(fill.(e)) <- r;
      fill.(e) <- fill.(e) + 1)
    endpoints;
  adj

let unsafe_make ~labels ~rel_types ~prop_keys ~node_labels ~node_props ~rel_src
    ~rel_dst ~rel_type ~rel_props =
  let n_nodes = Array.length node_labels in
  let out_adj = build_adjacency ~n_nodes ~endpoints:rel_src in
  let in_adj = build_adjacency ~n_nodes ~endpoints:rel_dst in
  let label_counts = Array.make (Interner.size labels) 0 in
  Array.iter
    (fun ls -> Array.iter (fun l -> label_counts.(l) <- label_counts.(l) + 1) ls)
    node_labels;
  let label_index = Array.map (fun c -> Array.make c 0) label_counts in
  let fill = Array.make (Interner.size labels) 0 in
  Array.iteri
    (fun n ls ->
      Array.iter
        (fun l ->
          label_index.(l).(fill.(l)) <- n;
          fill.(l) <- fill.(l) + 1)
        ls)
    node_labels;
  let unlabeled =
    Array.fold_left
      (fun acc ls -> if Array.length ls = 0 then acc + 1 else acc)
      0 node_labels
  in
  let prop_total =
    Array.fold_left (fun acc ps -> acc + Array.length ps) 0 node_props
    + Array.fold_left (fun acc ps -> acc + Array.length ps) 0 rel_props
  in
  {
    labels;
    rel_types;
    prop_keys;
    node_labels;
    node_props;
    rel_src;
    rel_dst;
    rel_type;
    rel_props;
    out_adj;
    in_adj;
    label_index;
    unlabeled;
    prop_total;
  }
