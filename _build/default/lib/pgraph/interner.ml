type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create () = { by_name = Hashtbl.create 64; by_id = Array.make 16 ""; next = 0 }

let grow t =
  if t.next >= Array.length t.by_id then begin
    let fresh = Array.make (2 * Array.length t.by_id) "" in
    Array.blit t.by_id 0 fresh 0 t.next;
    t.by_id <- fresh
  end

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
      let id = t.next in
      grow t;
      t.by_id.(id) <- s;
      t.next <- id + 1;
      Hashtbl.add t.by_name s id;
      id

let find_opt t s = Hashtbl.find_opt t.by_name s

let name t id =
  if id < 0 || id >= t.next then invalid_arg "Interner.name: unknown id";
  t.by_id.(id)

let size t = t.next

let iter t f =
  for id = 0 to t.next - 1 do
    f id t.by_id.(id)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun id s -> acc := f !acc id s);
  !acc

let memory_bytes t =
  fold t ~init:0 ~f:(fun acc _ s ->
      acc
      + Lpp_util.Mem_size.table_entry
          ~key_bytes:(Lpp_util.Mem_size.string_bytes s)
          ~value_bytes:Lpp_util.Mem_size.int_entry)
