type pending_node = { labels : int array; props : (int * Value.t) array }

type pending_rel = {
  src : int;
  dst : int;
  typ : int;
  rprops : (int * Value.t) array;
}

type t = {
  label_names : Interner.t;
  type_names : Interner.t;
  key_names : Interner.t;
  mutable nodes : pending_node list; (* reversed *)
  mutable n_nodes : int;
  mutable rels : pending_rel list; (* reversed *)
  mutable n_rels : int;
  mutable frozen : bool;
}

let create () =
  {
    label_names = Interner.create ();
    type_names = Interner.create ();
    key_names = Interner.create ();
    nodes = [];
    n_nodes = 0;
    rels = [];
    n_rels = 0;
    frozen = false;
  }

let check_live t =
  if t.frozen then invalid_arg "Graph_builder: already frozen"

let dedup_sorted_ints arr =
  Array.sort Int.compare arr;
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    let out = ref [ arr.(0) ] in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(i - 1) then out := arr.(i) :: !out
    done;
    Array.of_list (List.rev !out)
  end

let intern_props keys props =
  let tbl = Hashtbl.create (List.length props) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl (Interner.intern keys k) v) props;
  let arr = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> Array.of_list in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
  arr

let add_node t ~labels ~props =
  check_live t;
  let label_ids =
    dedup_sorted_ints
      (Array.of_list (List.map (Interner.intern t.label_names) labels))
  in
  let prop_arr = intern_props t.key_names props in
  t.nodes <- { labels = label_ids; props = prop_arr } :: t.nodes;
  let id = t.n_nodes in
  t.n_nodes <- id + 1;
  id

let add_rel t ~src ~dst ~rel_type ~props =
  check_live t;
  if src < 0 || src >= t.n_nodes || dst < 0 || dst >= t.n_nodes then
    invalid_arg "Graph_builder.add_rel: unknown endpoint";
  let typ = Interner.intern t.type_names rel_type in
  let rprops = intern_props t.key_names props in
  t.rels <- { src; dst; typ; rprops } :: t.rels;
  let id = t.n_rels in
  t.n_rels <- id + 1;
  id

let node_count t = t.n_nodes

let rel_count t = t.n_rels

let freeze t =
  check_live t;
  t.frozen <- true;
  let nodes = Array.of_list (List.rev t.nodes) in
  let rels = Array.of_list (List.rev t.rels) in
  Graph.unsafe_make ~labels:t.label_names ~rel_types:t.type_names
    ~prop_keys:t.key_names
    ~node_labels:(Array.map (fun n -> n.labels) nodes)
    ~node_props:(Array.map (fun n -> n.props) nodes)
    ~rel_src:(Array.map (fun r -> r.src) rels)
    ~rel_dst:(Array.map (fun r -> r.dst) rels)
    ~rel_type:(Array.map (fun r -> r.typ) rels)
    ~rel_props:(Array.map (fun r -> r.rprops) rels)
