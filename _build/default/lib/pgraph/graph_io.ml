let magic = "lpp-graph v1"

(* ---------------- escaping ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | 't' -> Buffer.add_char buf '\t'
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

let value_to_string = function
  | Value.Bool b -> "b:" ^ string_of_bool b
  | Value.Int i -> "i:" ^ string_of_int i
  | Value.Float f -> Printf.sprintf "f:%h" f
  | Value.Str s -> "s:" ^ escape s

let value_of_string s =
  if String.length s < 2 || s.[1] <> ':' then None
  else begin
    let payload = String.sub s 2 (String.length s - 2) in
    match s.[0] with
    | 'b' -> Option.map (fun b -> Value.Bool b) (bool_of_string_opt payload)
    | 'i' -> Option.map (fun i -> Value.Int i) (int_of_string_opt payload)
    | 'f' -> Option.map (fun f -> Value.Float f) (float_of_string_opt payload)
    | 's' -> Some (Value.Str (unescape payload))
    | _ -> None
  end

(* ---------------- writing ---------------- *)

let write g oc =
  let pr fmt = Printf.fprintf oc fmt in
  pr "%s\n" magic;
  Interner.iter (Graph.labels g) (fun id name -> pr "label\t%d\t%s\n" id (escape name));
  Interner.iter (Graph.rel_types g) (fun id name -> pr "type\t%d\t%s\n" id (escape name));
  Interner.iter (Graph.prop_keys g) (fun id name -> pr "key\t%d\t%s\n" id (escape name));
  Graph.iter_nodes g (fun nd ->
      pr "node\t%d" nd;
      Array.iter (fun l -> pr "\t%d" l) (Graph.node_labels g nd);
      pr "\n";
      Array.iter
        (fun (k, v) -> pr "nprop\t%d\t%d\t%s\n" nd k (value_to_string v))
        (Graph.node_props g nd));
  Graph.iter_rels g (fun r ->
      pr "rel\t%d\t%d\t%d\t%d\n" r (Graph.rel_src g r) (Graph.rel_dst g r)
        (Graph.rel_type g r);
      Array.iter
        (fun (k, v) -> pr "rprop\t%d\t%d\t%s\n" r k (value_to_string v))
        (Graph.rel_props g r))

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write g oc)

(* ---------------- reading ---------------- *)

exception Bad of string

let read ic =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    (match input_line ic with
    | line when line = magic -> ()
    | line -> fail "bad magic %S" line
    | exception End_of_file -> fail "empty input");
    let labels = Interner.create () in
    let rel_types = Interner.create () in
    let prop_keys = Interner.create () in
    let nodes = ref [] (* reversed: (labels, props rev ref) *) in
    let n_nodes = ref 0 in
    let rels = ref [] in
    let n_rels = ref 0 in
    let node_props : (int, (int * Value.t) list ref) Hashtbl.t = Hashtbl.create 64 in
    let rel_props : (int, (int * Value.t) list ref) Hashtbl.t = Hashtbl.create 64 in
    let intern_decl interner id name =
      let got = Interner.intern interner (unescape name) in
      if got <> id then fail "non-dense vocabulary id %d" id
    in
    let int_of s =
      match int_of_string_opt s with
      | Some i -> i
      | None -> fail "expected an integer, got %S" s
    in
    let value_of s =
      match value_of_string s with
      | Some v -> v
      | None -> fail "bad value literal %S" s
    in
    let push_prop tbl owner k v =
      let cell =
        match Hashtbl.find_opt tbl owner with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add tbl owner c;
            c
      in
      cell := (k, v) :: !cell
    in
    (try
       while true do
         let line = input_line ic in
         if line <> "" then begin
           match String.split_on_char '\t' line with
           | "label" :: id :: [ name ] -> intern_decl labels (int_of id) name
           | "type" :: id :: [ name ] -> intern_decl rel_types (int_of id) name
           | "key" :: id :: [ name ] -> intern_decl prop_keys (int_of id) name
           | "node" :: id :: label_ids ->
               if int_of id <> !n_nodes then fail "non-dense node id %s" id;
               incr n_nodes;
               nodes := Array.of_list (List.map int_of label_ids) :: !nodes
           | [ "nprop"; nd; k; v ] ->
               push_prop node_props (int_of nd) (int_of k) (value_of v)
           | [ "rel"; id; src; dst; typ ] ->
               if int_of id <> !n_rels then fail "non-dense rel id %s" id;
               incr n_rels;
               rels := (int_of src, int_of dst, int_of typ) :: !rels
           | [ "rprop"; r; k; v ] ->
               push_prop rel_props (int_of r) (int_of k) (value_of v)
           | _ -> fail "unrecognised line %S" line
         end
       done
     with End_of_file -> ());
    let node_labels = Array.of_list (List.rev !nodes) in
    Array.iteri
      (fun nd ls ->
        ignore nd;
        Array.iter
          (fun l -> if l < 0 || l >= Interner.size labels then fail "label id out of range")
          ls)
      node_labels;
    let rel_arr = Array.of_list (List.rev !rels) in
    Array.iter
      (fun (s, d, t) ->
        if s < 0 || s >= !n_nodes || d < 0 || d >= !n_nodes then
          fail "relationship endpoint out of range";
        if t < 0 || t >= Interner.size rel_types then fail "type id out of range")
      rel_arr;
    let props_of tbl owner =
      match Hashtbl.find_opt tbl owner with
      | None -> [||]
      | Some c ->
          let arr = Array.of_list (List.rev !c) in
          Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
          Array.iter
            (fun (k, _) ->
              if k < 0 || k >= Interner.size prop_keys then fail "key id out of range")
            arr;
          arr
    in
    Ok
      (Graph.unsafe_make ~labels ~rel_types ~prop_keys ~node_labels
         ~node_props:(Array.init !n_nodes (props_of node_props))
         ~rel_src:(Array.map (fun (s, _, _) -> s) rel_arr)
         ~rel_dst:(Array.map (fun (_, d, _) -> d) rel_arr)
         ~rel_type:(Array.map (fun (_, _, t) -> t) rel_arr)
         ~rel_props:(Array.init !n_rels (props_of rel_props)))
  with Bad msg -> Error msg

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
