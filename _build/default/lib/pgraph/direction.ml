type t = Out | In | Both

let equal a b =
  match (a, b) with
  | Out, Out | In, In | Both, Both -> true
  | (Out | In | Both), _ -> false

let rank = function Out -> 0 | In -> 1 | Both -> 2

let compare a b = Int.compare (rank a) (rank b)

let reverse = function Out -> In | In -> Out | Both -> Both

let to_string = function Out -> "->" | In -> "<-" | Both -> "--"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Out; In; Both ]
