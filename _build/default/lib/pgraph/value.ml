type t = Bool of bool | Int of int | Float of float | Str of string

let equal a b =
  match (a, b) with
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | (Bool _ | Int _ | Float _ | Str _), _ -> false

let rank = function Bool _ -> 0 | Int _ -> 1 | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Bool b -> if b then 1 else 0
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str s -> s

let pp ppf v =
  match v with
  | Str s -> Format.fprintf ppf "%S" s
  | other -> Format.pp_print_string ppf (to_string other)

let type_name = function
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
