(** Plain-text serialisation of property graphs.

    A line-oriented, tab-separated format ("lpp-graph v1"):

    {v
    lpp-graph v1
    label <id> <name>
    type <id> <name>
    key <id> <name>
    node <id> <label-id>*            (ids ascending, one line per node)
    nprop <node-id> <key-id> <value>
    rel <id> <src> <dst> <type-id>
    rprop <rel-id> <key-id> <value>
    v}

    Values are tagged: [b:true], [i:42], [f:3.14], [s:text] with backslash
    escapes for tab, newline and backslash in names and strings. The format
    is stable under round-trips: ids are dense and written in order, so
    [load (save g)] reproduces [g] exactly. *)

val write : Graph.t -> out_channel -> unit

val save : Graph.t -> string -> unit
(** @raise Sys_error on I/O failure. *)

val read : in_channel -> (Graph.t, string) result

val load : string -> (Graph.t, string) result
(** I/O errors are reported as [Error]. *)
