(** Property values attached to nodes and relationships.

    The property-graph model (Definition 3.1) treats properties as key/value
    pairs; values are scalars. A total order is provided so values can be used
    as keys in frequency statistics. *)

type t = Bool of bool | Int of int | Float of float | Str of string

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: Bool < Int < Float < Str, then the natural order within each
    constructor. Ints and floats are intentionally not unified: property
    statistics treat [Int 1] and [Float 1.0] as distinct values, as Neo4j does
    for index keys. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val type_name : t -> string
(** ["bool"], ["int"], ["float"] or ["string"]. *)
