(** Triangle statistics — the "more sophisticated graph statistics" the paper
    names as future work (Section 7).

    We keep the wedge-closure rates of the graph: the probability that the two
    endpoints of a 2-path (wedge) are themselves connected, measured per
    *orientation*. The estimator's triangle-aware MergeOn (configuration
    [A-LHDT]) replaces the independence assumption for 3-cycles with these
    rates, attacking exactly the cyclic-pattern underestimation the paper
    reports. *)

type t = {
  wedges : float;  (** unordered 2-paths in the undirected skeleton *)
  rate_directed : float;
      (** per ordered endpoint pair (2 per wedge): probability of at least
          one relationship in that specific direction *)
  rate_undirected : float;
      (** per wedge: expected closing matches when direction is free
          (each orientation counts once, as the Expand does) *)
  exact : bool;  (** whether the census was exhaustive or sampled *)
}

val build : ?max_wedges:int -> Lpp_pgraph.Graph.t -> t
(** Exhaustive when the wedge count is at most [max_wedges] (default 2M);
    otherwise a deterministic stratified sample of that size. *)

val memory_bytes : t -> int
