open Lpp_pgraph

type t = {
  wedges : float;
  rate_directed : float;
  rate_undirected : float;
  exact : bool;
}

(* distinct undirected neighbours per node, plus directed adjacency sets *)
let adjacency g =
  let n = Graph.node_count g in
  let out_sets = Array.init n (fun _ -> Hashtbl.create 4) in
  let neigh = Array.init n (fun _ -> Hashtbl.create 8) in
  Graph.iter_rels g (fun r ->
      let s = Graph.rel_src g r and d = Graph.rel_dst g r in
      if s <> d then begin
        Hashtbl.replace out_sets.(s) d ();
        Hashtbl.replace neigh.(s) d ();
        Hashtbl.replace neigh.(d) s ()
      end);
  (out_sets, neigh)

let build ?(max_wedges = 2_000_000) g =
  let out_sets, neigh = adjacency g in
  let neighbours =
    Array.map (fun s -> Array.of_seq (Seq.map fst (Hashtbl.to_seq s))) neigh
  in
  let total_wedges =
    Array.fold_left
      (fun acc ns ->
        let d = Array.length ns in
        acc +. (float_of_int d *. float_of_int (d - 1) /. 2.0))
      0.0 neighbours
  in
  if total_wedges <= 0.0 then
    { wedges = 0.0; rate_directed = 0.0; rate_undirected = 0.0; exact = true }
  else begin
    let exact = total_wedges <= float_of_int max_wedges in
    let ratio =
      if exact then 1.0 else float_of_int max_wedges /. total_wedges
    in
    let sampled = ref 0.0 and closings = ref 0.0 in
    (* Per-centre deterministic sampling: every centre contributes all of its
       wedges, or an evenly strided subset at the global ratio. *)
    Array.iter
      (fun ns ->
        let d = Array.length ns in
        if d >= 2 then begin
          let all = float_of_int d *. float_of_int (d - 1) /. 2.0 in
          let want =
            if exact then int_of_float all
            else max 1 (int_of_float (Float.round (all *. ratio)))
          in
          let step = max 1 (int_of_float (all /. float_of_int want)) in
          let idx = ref 0 and taken = ref 0 in
          (try
             for i = 0 to d - 2 do
               for j = i + 1 to d - 1 do
                 if !idx mod step = 0 then begin
                   incr taken;
                   sampled := !sampled +. 1.0;
                   if Hashtbl.mem out_sets.(ns.(i)) ns.(j) then
                     closings := !closings +. 1.0;
                   if Hashtbl.mem out_sets.(ns.(j)) ns.(i) then
                     closings := !closings +. 1.0;
                   if (not exact) && !taken >= want then raise Exit
                 end;
                 incr idx
               done
             done
           with Exit -> ())
        end)
      neighbours;
    let per_wedge = if !sampled <= 0.0 then 0.0 else !closings /. !sampled in
    {
      wedges = total_wedges;
      rate_directed = per_wedge /. 2.0;
      rate_undirected = per_wedge;
      exact;
    }
  end

let memory_bytes _ = 3 * Lpp_util.Mem_size.float_entry
