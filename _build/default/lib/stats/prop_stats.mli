(** Property statistics (Section 4.2.2), PostgreSQL-style.

    For each (label-or-type-or-wildcard, property key) pair observed in the
    graph we keep: the number of owning entities, the number of entities that
    carry the key, the number of distinct values, and the ten most frequent
    values with their frequencies. Selectivity estimation follows the classic
    MCV + uniform-tail model. *)

type owner =
  | Node_label of int
  | Rel_type of int
  | Any_node
  | Any_rel

type entry = {
  owner_total : int;  (** entities with the owner label/type *)
  with_key : int;  (** of those, how many carry the key *)
  distinct : int;  (** distinct values of the key among them *)
  mcvs : (Lpp_pgraph.Value.t * int) array;  (** top values, count, desc *)
}

type t

val mcv_limit : int
(** 10, as in the paper and PostgreSQL's default-lite setup. *)

val build : Lpp_pgraph.Graph.t -> t

val find : t -> owner -> key:int -> entry option

val selectivity : t -> owner -> key:int -> Lpp_pattern.Pattern.prop_pred -> float
(** [sel(lt, p)] of Section 4.2.2: probability that an entity with the given
    label/type satisfies the predicate. Unknown (owner, key) pairs yield 0.
    [Exists] is [with_key / owner_total]; [Eq v] additionally multiplies the
    MCV frequency (or the uniform share of the non-MCV tail). *)

val entry_count : t -> int

val memory_bytes : t -> int
