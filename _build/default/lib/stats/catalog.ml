open Lpp_pgraph

(* Triple keys are (src, typ, dst) with -1 encoding the wildcard [*]; all
   counts are stored from the relationship's natural orientation (src → dst).
   Queries in direction [In] swap the roles; [Both] sums both. *)
type t = {
  mutable total_nodes : int;
  mutable total_rels : int;
  mutable nc : int array;
  mutable rel_type_totals : int array;
  triples : (int * int * int, int) Hashtbl.t;
  any_type : (int * int, int) Hashtbl.t;
  hierarchy : Label_hierarchy.t;
  partition : Label_partition.t;
  props : Prop_stats.t;
  triangles : Triangle_stats.t Lazy.t;
}

let star = -1

let wild = function None -> star | Some l -> l

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let build_with ?hierarchy ?partition g =
  let hierarchy =
    match hierarchy with Some h -> h | None -> Label_hierarchy.infer g
  in
  let partition =
    match partition with Some p -> p | None -> Label_partition.infer g
  in
  let nc =
    Array.init (Graph.label_count g) (fun l ->
        Array.length (Graph.nodes_with_label g l))
  in
  let rel_type_totals = Array.make (Graph.rel_type_count g) 0 in
  let triples = Hashtbl.create 1024 in
  let any_type = Hashtbl.create 256 in
  Graph.iter_rels g (fun r ->
      let typ = Graph.rel_type g r in
      rel_type_totals.(typ) <- rel_type_totals.(typ) + 1;
      let src_labels = Array.append [| star |] (Graph.node_labels g (Graph.rel_src g r)) in
      let dst_labels = Array.append [| star |] (Graph.node_labels g (Graph.rel_dst g r)) in
      Array.iter
        (fun l1 ->
          Array.iter
            (fun l2 ->
              bump triples (l1, typ, l2);
              bump any_type (l1, l2))
            dst_labels)
        src_labels);
  {
    total_nodes = Graph.node_count g;
    total_rels = Graph.rel_count g;
    nc;
    rel_type_totals;
    triples;
    any_type;
    hierarchy;
    partition;
    props = Prop_stats.build g;
    triangles = lazy (Triangle_stats.build g);
  }

let build g = build_with g

let nc_star t = t.total_nodes

let nc t l = if l >= 0 && l < Array.length t.nc then t.nc.(l) else 0

let label_count t = Array.length t.nc

let rel_total t = t.total_rels

let rel_type_total t typ =
  if typ >= 0 && typ < Array.length t.rel_type_totals then t.rel_type_totals.(typ)
  else 0

let rc_directed t ~src ~types ~dst =
  if Array.length types = 0 then get t.any_type (src, dst)
  else Array.fold_left (fun acc ty -> acc + get t.triples (src, ty, dst)) 0 types

let rc t ~dir ~node ~types ~other =
  let node = wild node and other = wild other in
  match (dir : Direction.t) with
  | Out -> rc_directed t ~src:node ~types ~dst:other
  | In -> rc_directed t ~src:other ~types ~dst:node
  | Both ->
      rc_directed t ~src:node ~types ~dst:other
      + rc_directed t ~src:other ~types ~dst:node

let simple_rc t ~dir ~node ~types = rc t ~dir ~node ~types ~other:None

let hierarchy t = t.hierarchy

let partition t = t.partition

let props t = t.props

let triangles t = Lazy.force t.triangles

let nc_bytes t = Array.length t.nc * Lpp_util.Mem_size.int_entry

let memory_bytes_simple t =
  (* Neo4j keeps NC(ℓ) plus (ℓ, t, direction) pair counts: our triple entries
     whose far side is the wildcard, once per direction. *)
  let pair_entries =
    Hashtbl.fold
      (fun (l1, _, l2) _ acc ->
        let out_pair = if l2 = star then 1 else 0 in
        let in_pair = if l1 = star then 1 else 0 in
        acc + out_pair + in_pair)
      t.triples 0
  in
  nc_bytes t
  + pair_entries
    * Lpp_util.Mem_size.table_entry
        ~key_bytes:(2 * Lpp_util.Mem_size.int_entry)
        ~value_bytes:Lpp_util.Mem_size.int_entry

let memory_bytes_advanced t =
  nc_bytes t
  + Hashtbl.length t.triples
    * Lpp_util.Mem_size.table_entry
        ~key_bytes:(3 * Lpp_util.Mem_size.int_entry)
        ~value_bytes:Lpp_util.Mem_size.int_entry

(* ---- incremental maintenance (Section 4.1's cheap-to-keep claim) ---- *)

let ensure_capacity arr size =
  if size <= Array.length arr then arr
  else begin
    let fresh = Array.make size 0 in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh
  end

let note_node_added t ~labels =
  t.total_nodes <- t.total_nodes + 1;
  Array.iter
    (fun l ->
      t.nc <- ensure_capacity t.nc (l + 1);
      t.nc.(l) <- t.nc.(l) + 1)
    labels

let note_rel_added t ~src_labels ~typ ~dst_labels =
  t.total_rels <- t.total_rels + 1;
  t.rel_type_totals <- ensure_capacity t.rel_type_totals (typ + 1);
  t.rel_type_totals.(typ) <- t.rel_type_totals.(typ) + 1;
  let src = Array.append [| star |] src_labels in
  let dst = Array.append [| star |] dst_labels in
  Array.iter
    (fun l1 ->
      Array.iter
        (fun l2 ->
          bump t.triples (l1, typ, l2);
          bump t.any_type (l1, l2))
        dst)
    src

let memory_bytes_optional t =
  Label_hierarchy.memory_bytes t.hierarchy
  + Label_partition.memory_bytes t.partition

let memory_bytes_props t = Prop_stats.memory_bytes t.props

let memory_bytes_alhd t =
  memory_bytes_advanced t + memory_bytes_optional t + memory_bytes_props t
