lib/stats/catalog.mli: Label_hierarchy Label_partition Lpp_pgraph Prop_stats Triangle_stats
