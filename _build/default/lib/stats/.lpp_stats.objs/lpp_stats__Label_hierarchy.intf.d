lib/stats/label_hierarchy.mli: Lpp_pgraph
