lib/stats/label_partition.mli: Lpp_pgraph
