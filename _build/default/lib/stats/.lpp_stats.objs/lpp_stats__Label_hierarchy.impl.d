lib/stats/label_hierarchy.ml: Array Graph Int List Lpp_pgraph Lpp_util Set
