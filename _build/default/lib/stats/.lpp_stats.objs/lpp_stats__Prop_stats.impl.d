lib/stats/prop_stats.ml: Array Graph Hashtbl Int Lpp_pattern Lpp_pgraph Lpp_util Option Value
