lib/stats/label_partition.ml: Array Fun Graph Hashtbl List Lpp_pgraph Lpp_util
