lib/stats/catalog.ml: Array Direction Graph Hashtbl Label_hierarchy Label_partition Lazy Lpp_pgraph Lpp_util Option Prop_stats Triangle_stats
