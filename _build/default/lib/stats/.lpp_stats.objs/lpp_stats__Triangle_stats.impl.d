lib/stats/triangle_stats.ml: Array Float Graph Hashtbl Lpp_pgraph Lpp_util Seq
