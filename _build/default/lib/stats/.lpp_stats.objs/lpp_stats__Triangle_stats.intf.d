lib/stats/triangle_stats.mli: Lpp_pgraph
