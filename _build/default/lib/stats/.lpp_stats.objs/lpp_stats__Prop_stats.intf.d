lib/stats/prop_stats.mli: Lpp_pattern Lpp_pgraph
