open Lpp_pgraph
open Lpp_stats

type t = { name : string; graph : Graph.t; catalog : Catalog.t }

let make ?hierarchy_pairs ~name graph =
  let hierarchy =
    Option.map
      (fun pairs ->
        let resolve n = Interner.find_opt (Graph.labels graph) n in
        let id_pairs =
          List.filter_map
            (fun (child, parent) ->
              match (resolve child, resolve parent) with
              | Some c, Some p -> Some (c, p)
              | _ -> None)
            pairs
        in
        Label_hierarchy.of_pairs ~labels:(Graph.label_count graph) id_pairs)
      hierarchy_pairs
  in
  { name; graph; catalog = Catalog.build_with ?hierarchy graph }

let summary_headers =
  [ "data set"; "nodes"; "rels"; "props"; "labels"; "rel types"; "prop keys";
    "H_L height"; "D_L comps" ]

let summary_row t =
  let g = t.graph in
  [
    t.name;
    string_of_int (Graph.node_count g);
    string_of_int (Graph.rel_count g);
    string_of_int (Graph.property_count g);
    string_of_int (Graph.label_count g);
    string_of_int (Graph.rel_type_count g);
    string_of_int (Graph.prop_key_count g);
    string_of_int (Label_hierarchy.height (Catalog.hierarchy t.catalog));
    string_of_int (Label_partition.cluster_count (Catalog.partition t.catalog));
  ]
