(** A named data graph bundled with its statistics catalog.

    The paper evaluates on LDBC SNB (scale 0.1), Cineasts and DBpedia; this
    library generates synthetic stand-ins with the same statistical shape (see
    DESIGN.md §3). For SNB and Cineasts the label hierarchy is supplied
    "manually" by the generator, mirroring how the paper curates it; for the
    DBpedia-like data it comes from the generated ontology. *)

type t = {
  name : string;
  graph : Lpp_pgraph.Graph.t;
  catalog : Lpp_stats.Catalog.t;
}

val make :
  ?hierarchy_pairs:(string * string) list ->
  name:string ->
  Lpp_pgraph.Graph.t ->
  t
(** [hierarchy_pairs] lists (sublabel, superlabel) by name; names missing from
    the graph are ignored. Without it the hierarchy is inferred from the data.
    The label partition is always inferred (co-occurrence components are exact
    for disjointness). *)

val summary_row : t -> string list
(** Table 1 row: nodes, relationships, properties, node labels, relationship
    types, property keys, H_L height, D_L components. *)

val summary_headers : string list
