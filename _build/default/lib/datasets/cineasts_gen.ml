open Lpp_pgraph
open Lpp_util

let hierarchy_pairs =
  [ ("Actor", "Person"); ("Director", "Person"); ("User", "Person") ]

let genres =
  [| "Drama"; "Comedy"; "Action"; "Thriller"; "Documentary"; "Romance";
     "Horror"; "SciFi" |]

let countries = [| "USA"; "UK"; "France"; "Germany"; "Japan"; "India" |]

let str s = Value.Str s

let int i = Value.Int i

let generate ?(movies = 2200) ~seed () =
  let rng = Rng.create seed in
  let b = Graph_builder.create () in
  let n_people = movies * 2 in
  (* Professions overlap: some people act, some direct, some do both; a
     disjoint group are platform users who only rate and befriend. *)
  let people =
    Array.init n_people (fun i ->
        let acts = Rng.coin rng 0.62 in
        let directs = Rng.coin rng (if acts then 0.06 else 0.22) in
        let is_user = (not acts) && (not directs) || Rng.coin rng 0.08 in
        let labels =
          [ "Person" ]
          @ (if acts then [ "Actor" ] else [])
          @ (if directs then [ "Director" ] else [])
          @ if is_user then [ "User" ] else []
        in
        let props =
          [ ("name", str (Printf.sprintf "Person%d" i));
            ("birthyear", int (1930 + Rng.int rng 75)) ]
        in
        let props =
          if is_user then
            ("login", str (Printf.sprintf "user%d" i)) :: props
          else props
        in
        let props =
          if Rng.coin rng 0.7 then
            ("birthplace", str (Rng.pick rng countries)) :: props
          else props
        in
        (Graph_builder.add_node b ~labels ~props, acts, directs, is_user))
    |> Array.to_list
  in
  let actors =
    List.filter_map (fun (nd, a, _, _) -> if a then Some nd else None) people
    |> Array.of_list
  in
  let directors =
    List.filter_map (fun (nd, _, d, _) -> if d then Some nd else None) people
    |> Array.of_list
  in
  let users =
    List.filter_map (fun (nd, _, _, u) -> if u then Some nd else None) people
    |> Array.of_list
  in
  let movie_ids =
    Array.init movies (fun i ->
        let props =
          [ ("title", str (Printf.sprintf "Movie%d" i));
            ("year", int (1950 + Rng.int rng 72));
            ("genre", str (Rng.pick rng genres));
            ("runtime", int (60 + Rng.int rng 120)) ]
        in
        let props =
          if Rng.coin rng 0.5 then
            ("language", str (Rng.pick rng [| "en"; "fr"; "de"; "ja"; "hi" |]))
            :: props
          else props
        in
        Graph_builder.add_node b ~labels:[ "Movie" ] ~props)
  in
  Array.iter
    (fun m ->
      (* cast: Zipf over actors so a few stars appear in many movies *)
      let cast_size = 3 + Rng.geometric rng ~p:0.35 in
      for _ = 1 to min cast_size 12 do
        let a = actors.(Rng.zipf rng ~n:(Array.length actors) ~s:0.7) in
        ignore
          (Graph_builder.add_rel b ~src:a ~dst:m ~rel_type:"ACTS_IN"
             ~props:[ ("role", str (Printf.sprintf "Role%d" (Rng.int rng 500))) ])
      done;
      let d = directors.(Rng.zipf rng ~n:(Array.length directors) ~s:0.6) in
      ignore (Graph_builder.add_rel b ~src:d ~dst:m ~rel_type:"DIRECTED" ~props:[]);
      if Rng.coin rng 0.15 then begin
        let d2 = directors.(Rng.zipf rng ~n:(Array.length directors) ~s:0.6) in
        if d2 <> d then
          ignore
            (Graph_builder.add_rel b ~src:d2 ~dst:m ~rel_type:"DIRECTED" ~props:[])
      end)
    movie_ids;
  (* ratings by users *)
  let n_ratings = Array.length users * 8 in
  for _ = 1 to n_ratings do
    let u = users.(Rng.zipf rng ~n:(Array.length users) ~s:0.5) in
    let m = movie_ids.(Rng.zipf rng ~n:movies ~s:0.8) in
    let props = [ ("stars", int (1 + Rng.int rng 5)) ] in
    let props =
      if Rng.coin rng 0.3 then ("comment", str "nice one") :: props else props
    in
    ignore (Graph_builder.add_rel b ~src:u ~dst:m ~rel_type:"RATED" ~props)
  done;
  (* sparse friendship network among users: almost triangle-free *)
  let n_users = Array.length users in
  for i = 1 to n_users - 1 do
    if Rng.coin rng 0.8 then begin
      let j = Rng.int rng i in
      ignore
        (Graph_builder.add_rel b ~src:users.(i) ~dst:users.(j)
           ~rel_type:"FRIEND" ~props:[])
    end
  done;
  Dataset.make ~hierarchy_pairs ~name:"Cineasts" (Graph_builder.freeze b)
