lib/datasets/dbpedia_gen.mli: Dataset
