lib/datasets/dataset.ml: Catalog Graph Interner Label_hierarchy Label_partition List Lpp_pgraph Lpp_stats Option
