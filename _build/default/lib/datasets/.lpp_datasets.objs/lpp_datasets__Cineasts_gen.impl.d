lib/datasets/cineasts_gen.ml: Array Dataset Graph_builder List Lpp_pgraph Lpp_util Printf Rng Value
