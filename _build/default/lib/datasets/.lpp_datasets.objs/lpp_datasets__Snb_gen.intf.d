lib/datasets/snb_gen.mli: Dataset
