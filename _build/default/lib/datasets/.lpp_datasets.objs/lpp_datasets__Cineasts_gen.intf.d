lib/datasets/cineasts_gen.mli: Dataset
