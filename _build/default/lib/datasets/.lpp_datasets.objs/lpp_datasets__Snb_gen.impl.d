lib/datasets/snb_gen.ml: Array Dataset Graph_builder Lpp_pgraph Lpp_util Printf Rng Value
