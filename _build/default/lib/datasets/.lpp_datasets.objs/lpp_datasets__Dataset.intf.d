lib/datasets/dataset.mli: Lpp_pgraph Lpp_stats
