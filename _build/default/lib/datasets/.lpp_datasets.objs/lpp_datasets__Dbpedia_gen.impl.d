lib/datasets/dbpedia_gen.ml: Array Dataset Fun Graph_builder List Lpp_pgraph Lpp_util Printf Rng Value
