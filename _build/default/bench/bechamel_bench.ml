(* Bechamel micro-benchmarks: per-call latency of each estimator on one
   representative query per table/figure workload. Complements Figure 6's
   wall-clock quartiles with properly sampled OLS estimates. *)

open Bechamel
open Toolkit

(* a representative mid-size query per dataset: the first 5-rel-or-larger
   supported pattern of the with-props set, falling back to the first query *)
let representative (env : Env.t) ds_name =
  let qs = Env.queries env ~with_props:true ds_name in
  match
    List.find_opt
      (fun (q : Lpp_workload.Query_gen.query) ->
        Lpp_pattern.Pattern.rel_count q.pattern >= 3)
      qs
  with
  | Some q -> Some q.pattern
  | None -> begin
      match qs with
      | q :: _ -> Some q.pattern
      | [] -> None
    end

let tests (env : Env.t) =
  List.concat_map
    (fun (ds : Lpp_datasets.Dataset.t) ->
      match representative env ds.name with
      | None -> []
      | Some pattern ->
          let techs =
            [
              Lpp_harness.Technique.ours Lpp_core.Config.a_lhd ds.catalog;
              Lpp_harness.Technique.neo4j ds.catalog;
              Lpp_harness.Technique.csets ds;
              Lpp_harness.Technique.sumrdf ds;
            ]
          in
          List.filter_map
            (fun (tech : Lpp_harness.Technique.t) ->
              if tech.supports pattern then
                Some
                  (Test.make
                     ~name:(Printf.sprintf "%s/%s" ds.name tech.name)
                     (Staged.stage (fun () -> ignore (tech.estimate pattern))))
              else None)
            techs)
    env.datasets

let run (env : Env.t) =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"estimate" ~fmt:"%s %s" (tests env) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  let table = Lpp_util.Ascii_table.create [ "estimator"; "ns/call (OLS)" ] in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some per_name ->
      per_name |> Hashtbl.to_seq |> List.of_seq
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, ols_result) ->
             let cell =
               match Analyze.OLS.estimates ols_result with
               | Some (est :: _) -> Lpp_harness.Report.ns_to_string est
               | _ -> "n/a"
             in
             Lpp_util.Ascii_table.add_row table [ name; cell ]));
  Lpp_util.Ascii_table.print
    ~title:"Bechamel: estimator latency (one representative query per data set)"
    table
