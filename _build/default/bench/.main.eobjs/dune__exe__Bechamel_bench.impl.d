bench/bechamel_bench.ml: Analyze Bechamel Benchmark Env Hashtbl Instance List Lpp_core Lpp_datasets Lpp_harness Lpp_pattern Lpp_util Lpp_workload Measure Printf Staged String Test Time Toolkit
