bench/main.ml: Arg Bechamel_bench Cmd Cmdliner Env Experiments List Printf String Term Unix
