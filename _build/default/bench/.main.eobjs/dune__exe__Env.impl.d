bench/env.ml: Hashtbl List Lpp_core Lpp_datasets Lpp_harness Lpp_util Lpp_workload Option Printf Query_gen Unix
