bench/main.mli:
