(* Movie-database workload on the Cineasts-like dataset: demonstrates how the
   optional statistics (label hierarchy H_L and label partition D_L) change
   estimates on overlapping and disjoint label combinations, and compares the
   full state-of-the-art lineup on a co-acting query.

   Run with: dune exec examples/movie_advisor.exe *)

open Lpp_pattern

let node = Pattern.node_spec

let rel = Pattern.rel_spec

let () =
  print_endline "generating Cineasts-like movie database…";
  let ds = Lpp_datasets.Cineasts_gen.generate ~movies:1500 ~seed:7 () in
  let g = ds.graph in
  List.iter2
    (fun h v -> Printf.printf "  %-10s %s\n" h v)
    Lpp_datasets.Dataset.summary_headers
    (Lpp_datasets.Dataset.summary_row ds);

  (* --- how H_L and D_L change label-combination estimates ------------- *)
  let combos =
    [ ("actor ∧ person (hierarchy)", [ "Actor"; "Person" ]);
      ("actor ∧ director (overlap)", [ "Actor"; "Director" ]);
      ("actor ∧ movie (disjoint)", [ "Actor"; "Movie" ]) ]
  in
  let table = Lpp_util.Ascii_table.create
      [ "label combination"; "truth"; "A-L"; "A-LH"; "A-LD"; "A-LHD" ] in
  List.iter
    (fun (name, labels) ->
      let p = Pattern.of_spec g [ node ~labels () ] [] in
      let truth =
        match Lpp_exec.Matcher.count g p with
        | Lpp_exec.Matcher.Count c -> float_of_int c
        | Budget_exceeded -> nan
      in
      let est c = Lpp_core.Estimator.estimate_pattern c ds.catalog p in
      Lpp_util.Ascii_table.add_row table
        [ name;
          Printf.sprintf "%.0f" truth;
          Printf.sprintf "%.1f" (est Lpp_core.Config.a_l);
          Printf.sprintf "%.1f" (est Lpp_core.Config.a_lh);
          Printf.sprintf "%.1f" (est Lpp_core.Config.a_ld);
          Printf.sprintf "%.1f" (est Lpp_core.Config.a_lhd) ])
    combos;
  Lpp_util.Ascii_table.print
    ~title:"Optional statistics on label combinations (Section 4.2.1)" table;

  (* --- state-of-the-art lineup on movie queries ------------------------ *)
  let queries =
    [
      ( "co-actors",
        (* (a:Actor)-[:ACTS_IN]->(m:Movie)<-[:ACTS_IN]-(b:Actor) *)
        Pattern.of_spec g
          [ node ~labels:[ "Actor" ] (); node ~labels:[ "Movie" ] ();
            node ~labels:[ "Actor" ] () ]
          [ rel ~types:[ "ACTS_IN" ] ~src:0 ~dst:1 ();
            rel ~types:[ "ACTS_IN" ] ~src:2 ~dst:1 () ] );
      ( "director-also-acts",
        (* (d:Director)-[:DIRECTED]->(m:Movie)<-[:ACTS_IN]-(d') merged: the
           same person directs and acts in the same movie *)
        Pattern.of_spec g
          [ node ~labels:[ "Director"; "Actor" ] (); node ~labels:[ "Movie" ] () ]
          [ rel ~types:[ "DIRECTED" ] ~src:0 ~dst:1 ();
            rel ~types:[ "ACTS_IN" ] ~src:0 ~dst:1 () ] );
      ( "five-star-fans",
        (* (u:User)-[:RATED {stars: 5}]->(m:Movie) *)
        Pattern.of_spec g
          [ node ~labels:[ "User" ] (); node ~labels:[ "Movie" ] () ]
          [ rel ~types:[ "RATED" ]
              ~rprops:[ ("stars", Pattern.Eq (Lpp_pgraph.Value.Int 5)) ]
              ~src:0 ~dst:1 () ] );
    ]
  in
  let techniques = Lpp_harness.Technique.state_of_the_art ~seed:99 ds in
  let table2 =
    Lpp_util.Ascii_table.create
      ([ "query"; "truth" ]
      @ List.map (fun (t : Lpp_harness.Technique.t) -> t.name) techniques)
  in
  List.iter
    (fun (name, pattern) ->
      let truth =
        match Lpp_exec.Matcher.count g pattern with
        | Lpp_exec.Matcher.Count c -> float_of_int c
        | Budget_exceeded -> nan
      in
      let cells =
        List.map
          (fun (t : Lpp_harness.Technique.t) ->
            if t.supports pattern then Printf.sprintf "%.1f" (t.estimate pattern)
            else "unsup.")
          techniques
      in
      Lpp_util.Ascii_table.add_row table2
        ([ name; Printf.sprintf "%.0f" truth ] @ cells))
    queries;
  Lpp_util.Ascii_table.print ~title:"State of the art on movie queries" table2;
  print_endline
    "\n\"unsup.\" marks queries outside a technique's supported fragment\n\
     (multi-label nodes for Wander Join, properties for WJ, …) — the support\n\
     limitations Section 6 describes."
