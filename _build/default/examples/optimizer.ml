(* Why cardinality estimation matters (the paper's motivation, Section 1):
   a cost-based optimizer uses the estimator to choose among operator orders.
   For several queries we enumerate random linearisations plus the heuristic
   one, cost each with A-LHD estimates (sum of intermediate cardinalities),
   pick the estimated-cheapest, and compare its *actual* work — the sum of
   exact intermediate result sizes — against the best, median and worst
   orders.

   Run with: dune exec examples/optimizer.exe *)

let queries =
  [
    "(f:Forum)-[:HAS_MEMBER]->(p:Person)-[:IS_LOCATED_IN]->(c:City)";
    "(t:Tag)<-[:HAS_TAG]-(m:Post)-[:HAS_CREATOR]->(p:Person)-[:STUDY_AT]->(u:University)";
    "(a:Person)-[:KNOWS]->(b:Person)-[:HAS_INTEREST]->(t:Tag)<-[:HAS_INTEREST]-(a)";
    "(c:Comment)-[:REPLY_OF]->(m:Post)<-[:LIKES]-(p:Person)-[:IS_LOCATED_IN]->(city:City)";
  ]

let estimated_cost catalog alg =
  List.fold_left
    (fun acc (_, card) -> acc +. card)
    0.0
    (Lpp_core.Estimator.trace Lpp_core.Config.a_lhd catalog alg)

let actual_cost graph alg =
  match
    Lpp_exec.Reference.intermediate_sizes ~max_intermediate:3_000_000 graph alg
  with
  | Some sizes -> Some (List.fold_left ( + ) 0 sizes)
  | None -> None

let () =
  print_endline "generating SNB-like social network…";
  let ds = Lpp_datasets.Snb_gen.generate ~persons:350 ~seed:77 () in
  let rng = Lpp_util.Rng.create 99 in
  let table =
    Lpp_util.Ascii_table.create
      [ "query"; "orders"; "best"; "median"; "worst"; "heuristic";
        "picked-by-estimate" ]
  in
  List.iter
    (fun q ->
      match Lpp_pattern.Parse.parse ds.graph q with
      | Error msg -> Printf.eprintf "parse error: %s\n" msg
      | Ok { pattern; _ } ->
          let heuristic = Lpp_pattern.Planner.plan pattern in
          let candidates =
            heuristic
            :: List.init 40 (fun _ -> Lpp_pattern.Planner.random_order rng pattern)
          in
          (* keep only orders whose exact evaluation stays within bounds *)
          let measured =
            List.filter_map
              (fun alg ->
                Option.map
                  (fun actual -> (alg, estimated_cost ds.catalog alg, actual))
                  (actual_cost ds.graph alg))
              candidates
          in
          (match measured with
          | [] -> ()
          | (h_alg, _, h_actual) :: _ ->
              ignore h_alg;
              let actuals =
                List.map (fun (_, _, a) -> float_of_int a) measured
                |> List.sort Float.compare
              in
              let best = List.hd actuals in
              let worst = List.nth actuals (List.length actuals - 1) in
              let median_cost =
                List.nth actuals (List.length actuals / 2)
              in
              (* the optimizer's pick: minimal estimated cost *)
              let _, _, picked_actual =
                List.fold_left
                  (fun ((_, best_est, _) as best) ((_, est, _) as cand) ->
                    if est < best_est then cand else best)
                  (List.hd measured) (List.tl measured)
              in
              Lpp_util.Ascii_table.add_row table
                [ (let short = String.sub q 0 (min 34 (String.length q)) in
                   short ^ if String.length q > 34 then "…" else "");
                  string_of_int (List.length measured);
                  Printf.sprintf "%.0f" best;
                  Printf.sprintf "%.0f" median_cost;
                  Printf.sprintf "%.0f" worst;
                  Printf.sprintf "%.0f" (float_of_int h_actual);
                  Printf.sprintf "%.0f" (float_of_int picked_actual) ]))
    queries;
  Lpp_util.Ascii_table.print
    ~title:
      "Actual work (sum of exact intermediate result sizes) per operator order"
    table;
  print_endline
    "\nThe estimate-guided pick usually sits near the best order and well away\n\
     from the worst — the reason query optimizers need cardinality estimates,\n\
     and why their accuracy/latency trade-off (Figure 1) matters. Cyclic\n\
     patterns, the hardest to estimate (Figure 5), can still mislead the pick."
