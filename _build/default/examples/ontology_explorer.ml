(* Knowledge-graph exploration on the DBpedia-like dataset: deep label
   hierarchies, hundreds of classes, and what that does to cardinality
   estimation. Also shows schema inference (Section 4.2.1) recovering the
   generated ontology from the data alone.

   Run with: dune exec examples/ontology_explorer.exe *)

open Lpp_pattern
open Lpp_stats

let () =
  print_endline "generating DBpedia-like knowledge graph…";
  let ds = Lpp_datasets.Dbpedia_gen.generate ~entities:12_000 ~seed:31 () in
  let g = ds.graph in
  List.iter2
    (fun h v -> Printf.printf "  %-10s %s\n" h v)
    Lpp_datasets.Dataset.summary_headers
    (Lpp_datasets.Dataset.summary_row ds);

  (* --- schema inference --------------------------------------------- *)
  let inferred = Label_hierarchy.infer g in
  let curated = Catalog.hierarchy ds.catalog in
  let labels = Lpp_pgraph.Graph.label_count g in
  let agree = ref 0 and total = ref 0 in
  for a = 0 to labels - 1 do
    for b = 0 to labels - 1 do
      if a <> b && Label_hierarchy.is_strict_sublabel curated a b then begin
        incr total;
        if Label_hierarchy.is_strict_sublabel inferred a b then incr agree
      end
    done
  done;
  Printf.printf
    "\nschema inference: %d/%d curated sublabel pairs recovered from data\n"
    !agree !total;

  (* --- estimation depth ladder --------------------------------------- *)
  (* pick the deepest class chain and estimate each prefix *)
  let hier = Catalog.hierarchy ds.catalog in
  let deepest =
    let best = ref 0 and best_len = ref (-1) in
    for l = 0 to labels - 1 do
      let len = List.length (Label_hierarchy.superlabels hier l) in
      if len > !best_len then begin
        best := l;
        best_len := len
      end
    done;
    !best
  in
  let chain =
    (* order ancestors from the class itself up to the root *)
    deepest
    :: (Label_hierarchy.superlabels hier deepest
       |> List.sort (fun a b ->
              compare
                (List.length (Label_hierarchy.superlabels hier b))
                (List.length (Label_hierarchy.superlabels hier a))))
  in
  let name l = Lpp_pgraph.Interner.name (Lpp_pgraph.Graph.labels g) l in
  Printf.printf "\ndeepest class chain: %s\n"
    (String.concat " ⊑ " (List.map name chain));
  let table =
    Lpp_util.Ascii_table.create [ "labels on node"; "truth"; "A-L"; "A-LHD" ]
  in
  List.iteri
    (fun i _ ->
      let prefix = List.filteri (fun j _ -> j <= i) chain in
      let p =
        Pattern.of_spec g [ Pattern.node_spec ~labels:(List.map name prefix) () ] []
      in
      let truth =
        match Lpp_exec.Matcher.count g p with
        | Lpp_exec.Matcher.Count c -> float_of_int c
        | Budget_exceeded -> nan
      in
      Lpp_util.Ascii_table.add_row table
        [ String.concat "+" (List.map name prefix);
          Printf.sprintf "%.0f" truth;
          Printf.sprintf "%.2f"
            (Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_l ds.catalog p);
          Printf.sprintf "%.2f"
            (Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd ds.catalog p) ])
    chain;
  Lpp_util.Ascii_table.print
    ~title:"Adding superlabels is free with H_L, costly without" table;

  (* --- a typed traversal --------------------------------------------- *)
  let types = Lpp_pgraph.Graph.rel_types g in
  let some_type = Lpp_pgraph.Interner.name types 0 in
  let p =
    Pattern.of_spec g
      [ Pattern.node_spec ~labels:[ name deepest ] (); Pattern.node_spec () ]
      [ Pattern.rel_spec ~types:[ some_type ] ~directed:false ~src:0 ~dst:1 () ]
  in
  let truth =
    match Lpp_exec.Matcher.count g p with
    | Lpp_exec.Matcher.Count c -> float_of_int c
    | Budget_exceeded -> nan
  in
  Printf.printf
    "\nundirected typed traversal from %s via %s: truth %.0f, A-LHD %.2f\n"
    (name deepest) some_type truth
    (Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd ds.catalog p);

  (* --- baseline support on knowledge-graph queries -------------------- *)
  let rng = Lpp_util.Rng.create 17 in
  let spec =
    { (Lpp_workload.Query_gen.default_spec No_props) with
      target = 40; attempts = 160; truth_budget = 5_000_000 }
  in
  let queries = Lpp_workload.Query_gen.generate rng ds spec in
  Printf.printf "\nsupport on %d generated no-property queries:\n"
    (List.length queries);
  List.iter
    (fun (t : Lpp_harness.Technique.t) ->
      Printf.printf "  %-8s %3.0f%%\n" t.name
        (100.0 *. Lpp_harness.Runner.support_fraction t queries))
    (Lpp_harness.Technique.state_of_the_art ~seed:3 ds)
