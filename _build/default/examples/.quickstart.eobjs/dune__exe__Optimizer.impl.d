examples/optimizer.ml: Float List Lpp_core Lpp_datasets Lpp_exec Lpp_pattern Lpp_util Option Printf String
