examples/ontology_explorer.ml: Catalog Label_hierarchy List Lpp_core Lpp_datasets Lpp_exec Lpp_harness Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Lpp_workload Pattern Printf String
