examples/quickstart.mli:
