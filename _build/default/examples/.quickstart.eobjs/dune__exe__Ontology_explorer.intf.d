examples/ontology_explorer.mli:
