examples/quickstart.ml: Algebra Format Graph Graph_builder List Lpp_core Lpp_exec Lpp_harness Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Pattern Planner Printf Shape Value
