examples/movie_advisor.ml: List Lpp_core Lpp_datasets Lpp_exec Lpp_harness Lpp_pattern Lpp_pgraph Lpp_util Pattern Printf
