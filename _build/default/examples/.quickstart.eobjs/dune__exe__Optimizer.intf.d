examples/optimizer.mli:
