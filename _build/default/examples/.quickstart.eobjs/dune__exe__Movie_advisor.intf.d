examples/movie_advisor.mli:
