examples/social_network.ml: List Lpp_datasets Lpp_exec Lpp_harness Lpp_pattern Lpp_pgraph Lpp_util Pattern Printf Shape
