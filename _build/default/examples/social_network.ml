(* Social-network workload: the query shapes the paper's introduction
   motivates, run against the SNB-like dataset. For each query we print the
   estimates of every configuration of our technique plus Neo4j's estimator,
   next to the exact cardinality.

   Run with: dune exec examples/social_network.exe *)

open Lpp_pattern

let node = Pattern.node_spec

let rel = Pattern.rel_spec

let queries graph =
  [
    ( "friends-of-friends",
      (* (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) *)
      Pattern.of_spec graph
        [ node ~labels:[ "Person" ] (); node ~labels:[ "Person" ] ();
          node ~labels:[ "Person" ] () ]
        [ rel ~types:[ "KNOWS" ] ~src:0 ~dst:1 ();
          rel ~types:[ "KNOWS" ] ~src:1 ~dst:2 () ] );
    ( "posts-in-moderated-forum",
      (* (f:Forum)-[:HAS_MODERATOR]->(p:Person), (f)-[:CONTAINER_OF]->(post:Post) *)
      Pattern.of_spec graph
        [ node ~labels:[ "Forum" ] (); node ~labels:[ "Person" ] ();
          node ~labels:[ "Post" ] () ]
        [ rel ~types:[ "HAS_MODERATOR" ] ~src:0 ~dst:1 ();
          rel ~types:[ "CONTAINER_OF" ] ~src:0 ~dst:2 () ] );
    ( "creator-liked-own-message",
      (* cyclic: (p:Person)<-[:HAS_CREATOR]-(m:Message), (p)-[:LIKES]->(m) *)
      Pattern.of_spec graph
        [ node ~labels:[ "Person" ] (); node ~labels:[ "Message" ] () ]
        [ rel ~types:[ "HAS_CREATOR" ] ~src:1 ~dst:0 ();
          rel ~types:[ "LIKES" ] ~src:0 ~dst:1 () ] );
    ( "interest-in-common-with-friend",
      (* (a:Person)-[:KNOWS]->(b:Person), both HAS_INTEREST the same (t:Tag) *)
      Pattern.of_spec graph
        [ node ~labels:[ "Person" ] (); node ~labels:[ "Person" ] ();
          node ~labels:[ "Tag" ] () ]
        [ rel ~types:[ "KNOWS" ] ~src:0 ~dst:1 ();
          rel ~types:[ "HAS_INTEREST" ] ~src:0 ~dst:2 ();
          rel ~types:[ "HAS_INTEREST" ] ~src:1 ~dst:2 () ] );
    ( "students-messaging-from-chrome",
      (* (p:Person)<-[:HAS_CREATOR]-(m:Comment {browserUsed: "Chrome"}) *)
      Pattern.of_spec graph
        [ node ~labels:[ "Person" ] ();
          node ~labels:[ "Message"; "Comment" ]
            ~props:[ ("browserUsed", Pattern.Eq (Lpp_pgraph.Value.Str "Chrome")) ]
            () ]
        [ rel ~types:[ "HAS_CREATOR" ] ~src:1 ~dst:0 () ] );
  ]

let () =
  print_endline "generating SNB-like social network…";
  let ds = Lpp_datasets.Snb_gen.generate ~persons:600 ~seed:2024 () in
  List.iter2
    (fun h v -> Printf.printf "  %-10s %s\n" h v)
    Lpp_datasets.Dataset.summary_headers
    (Lpp_datasets.Dataset.summary_row ds);
  let techniques = Lpp_harness.Technique.our_configurations ds in
  let table =
    Lpp_util.Ascii_table.create
      ([ "query"; "shape"; "truth" ]
      @ List.map (fun (t : Lpp_harness.Technique.t) -> t.name) techniques)
  in
  List.iter
    (fun (name, pattern) ->
      let truth =
        match Lpp_exec.Matcher.count ds.graph pattern with
        | Lpp_exec.Matcher.Count c -> float_of_int c
        | Budget_exceeded -> nan
      in
      let cells =
        List.map
          (fun (t : Lpp_harness.Technique.t) ->
            let est = t.estimate pattern in
            Printf.sprintf "%.1f (q%.1f)" est
              (Lpp_harness.Qerror.q_error ~truth ~estimate:est))
          techniques
      in
      Lpp_util.Ascii_table.add_row table
        ([ name;
           Shape.to_string (Shape.classify pattern);
           Printf.sprintf "%.0f" truth ]
        @ cells))
    (queries ds.graph);
  Lpp_util.Ascii_table.print ~title:"Estimates per configuration (q = q-error)"
    table;
  print_endline
    "\nNote how the cyclic query is hardest (MergeOn applies the independence\n\
     assumption) and how A-LHD's optional statistics pay off on multi-label\n\
     patterns — the trends of the paper's Figure 5a."
