(* Quickstart: build a property graph, collect statistics, and estimate the
   cardinality of a subgraph-matching query with label probability
   propagation — then compare against the exact count.

   Run with: dune exec examples/quickstart.exe *)

open Lpp_pgraph
open Lpp_pattern

let () =
  (* 1. Build a small property graph: people working at companies. *)
  let b = Graph_builder.create () in
  let acme =
    Graph_builder.add_node b ~labels:[ "Company" ]
      ~props:[ ("name", Value.Str "ACME") ]
  in
  let globex =
    Graph_builder.add_node b ~labels:[ "Company" ]
      ~props:[ ("name", Value.Str "Globex") ]
  in
  let people =
    List.mapi
      (fun i (name, is_manager) ->
        let labels =
          if is_manager then [ "Person"; "Manager" ] else [ "Person" ]
        in
        let person =
          Graph_builder.add_node b ~labels
            ~props:[ ("name", Value.Str name); ("id", Value.Int i) ]
        in
        let employer = if i mod 3 = 0 then globex else acme in
        ignore
          (Graph_builder.add_rel b ~src:person ~dst:employer ~rel_type:"WORKS_AT"
             ~props:[ ("since", Value.Int (2010 + i)) ]);
        person)
      [ ("Ada", true); ("Grace", false); ("Alan", false); ("Edsger", true);
        ("Barbara", false); ("Tony", false) ]
  in
  (* a few KNOWS edges among colleagues *)
  (match people with
  | a :: rest ->
      List.iter
        (fun p ->
          ignore (Graph_builder.add_rel b ~src:a ~dst:p ~rel_type:"KNOWS" ~props:[]))
        rest
  | [] -> ());
  let graph = Graph_builder.freeze b in
  Printf.printf "graph: %d nodes, %d relationships, %d properties\n"
    (Graph.node_count graph) (Graph.rel_count graph)
    (Graph.property_count graph);

  (* 2. Collect the statistics catalog (required + optional, one pass). *)
  let catalog = Lpp_stats.Catalog.build graph in
  Printf.printf "catalog: NC(*)=%d, %d labels, A-LHD summary = %s\n"
    (Lpp_stats.Catalog.nc_star catalog)
    (Lpp_stats.Catalog.label_count catalog)
    (Lpp_util.Mem_size.to_string (Lpp_stats.Catalog.memory_bytes_alhd catalog));

  (* 3. Describe a query pattern: (m:Manager)-[:KNOWS]->(p:Person)-[:WORKS_AT]->(c:Company) *)
  let pattern =
    Pattern.of_spec graph
      [ Pattern.node_spec ~labels:[ "Manager" ] ();
        Pattern.node_spec ~labels:[ "Person" ] ();
        Pattern.node_spec ~labels:[ "Company" ] () ]
      [ Pattern.rel_spec ~types:[ "KNOWS" ] ~src:0 ~dst:1 ();
        Pattern.rel_spec ~types:[ "WORKS_AT" ] ~src:1 ~dst:2 () ]
  in
  Printf.printf "\npattern: %a\nshape: %s, size: %d\n%!"
    (fun oc p -> output_string oc (Format.asprintf "%a" (Pattern.pp ~names:(Some graph)) p))
    pattern
    (Shape.to_string (Shape.classify pattern))
    (Pattern.size pattern);

  (* 4. Linearise into the operator sequence of Section 3.2. *)
  let alg = Planner.plan pattern in
  Printf.printf "\noperator sequence:\n  %s\n" (Format.asprintf "%a" Algebra.pp alg);

  (* 5. Estimate with label probability propagation, tracing each operator. *)
  let config = Lpp_core.Config.a_lhd in
  Printf.printf "\ntrace (%s):\n" (Lpp_core.Config.name config);
  List.iter
    (fun (op, card) ->
      Printf.printf "  %-40s -> %8.2f\n" (Format.asprintf "%a" Algebra.pp_op op) card)
    (Lpp_core.Estimator.trace config catalog alg);

  (* 6. Compare against the exact count. *)
  let estimate = Lpp_core.Estimator.estimate config catalog alg in
  let truth =
    match Lpp_exec.Matcher.count graph pattern with
    | Lpp_exec.Matcher.Count c -> float_of_int c
    | Budget_exceeded -> nan
  in
  Printf.printf "\nestimate = %.2f, truth = %.0f, q-error = %.2f\n" estimate truth
    (Lpp_harness.Qerror.q_error ~truth ~estimate)
