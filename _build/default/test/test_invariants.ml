(* Cross-cutting invariants, mostly property-based: estimator monotonicity,
   matcher semantics ordering, planner determinism, reference/matcher
   agreement on random graphs. *)

open Lpp_pattern

let raw_node ?(labels = [||]) () = { Pattern.n_labels = labels; n_props = [||] }

let raw_rel ?(types = [||]) ?(directed = true) src dst =
  { Pattern.r_src = src; r_dst = dst; r_types = types; r_directed = directed;
    r_props = [||]; r_hops = None }

(* random small graph + random connected pattern over its vocabulary *)
let random_graph rng =
  let open Lpp_util in
  let b = Lpp_pgraph.Graph_builder.create () in
  let n = Rng.int_in rng 3 12 in
  let labels = [| "A"; "B"; "C" |] in
  let types = [| "s"; "t" |] in
  let nodes =
    Array.init n (fun _ ->
        let ls =
          List.filter (fun _ -> Rng.coin rng 0.5) (Array.to_list labels)
        in
        Lpp_pgraph.Graph_builder.add_node b ~labels:ls ~props:[])
  in
  let m = Rng.int_in rng 2 (3 * n) in
  for _ = 1 to m do
    let s = nodes.(Rng.int rng n) and d = nodes.(Rng.int rng n) in
    if s <> d then
      ignore
        (Lpp_pgraph.Graph_builder.add_rel b ~src:s ~dst:d
           ~rel_type:(Rng.pick rng types) ~props:[])
  done;
  Lpp_pgraph.Graph_builder.freeze b

let random_pattern rng (g : Lpp_pgraph.Graph.t) =
  let open Lpp_util in
  let n = Rng.int_in rng 1 4 in
  let nodes =
    Array.init n (fun _ ->
        if Rng.coin rng 0.4 && Lpp_pgraph.Graph.label_count g > 0 then
          raw_node ~labels:[| Rng.int rng (Lpp_pgraph.Graph.label_count g) |] ()
        else raw_node ())
  in
  let rels = ref [] in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    let types =
      if Rng.coin rng 0.5 && Lpp_pgraph.Graph.rel_type_count g > 0 then
        [| Rng.int rng (Lpp_pgraph.Graph.rel_type_count g) |]
      else [||]
    in
    rels := raw_rel ~types ~directed:(Rng.coin rng 0.7) i j :: !rels
  done;
  if n >= 2 && Rng.coin rng 0.3 then
    rels := raw_rel (Rng.int rng n) (Rng.int rng n) :: !rels;
  (* self-loops are possible from the cycle edge above; Pattern allows them *)
  Pattern.make ~nodes ~rels:(Array.of_list !rels)

let test_matcher_vs_reference_random_graphs () =
  let rng = Lpp_util.Rng.create 31337 in
  let checked = ref 0 in
  for _ = 1 to 120 do
    let g = random_graph rng in
    match random_pattern rng g with
    | exception Invalid_argument _ -> ()
    | p ->
        let alg = Planner.plan p in
        (match
           ( Lpp_exec.Matcher.count ~budget:2_000_000 g p,
             Lpp_exec.Reference.count ~max_intermediate:100_000 g alg )
         with
        | Lpp_exec.Matcher.Count c, Some r ->
            incr checked;
            Alcotest.(check int)
              (Format.asprintf "matcher=reference on %a" (Pattern.pp ~names:None) p)
              c r
        | _ -> ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d cases" !checked)
    true (!checked > 80)

let test_hom_geq_cypher () =
  let rng = Lpp_util.Rng.create 2718 in
  for _ = 1 to 80 do
    let g = random_graph rng in
    match random_pattern rng g with
    | exception Invalid_argument _ -> ()
    | p -> begin
        match
          ( Lpp_exec.Matcher.count ~semantics:Lpp_exec.Semantics.Cypher
              ~budget:2_000_000 g p,
            Lpp_exec.Matcher.count ~semantics:Lpp_exec.Semantics.Homomorphism
              ~budget:2_000_000 g p )
        with
        | Lpp_exec.Matcher.Count cy, Lpp_exec.Matcher.Count hom ->
            Alcotest.(check bool) "hom >= cypher" true (hom >= cy)
        | _ -> ()
      end
  done

(* Label/property selections and MergeOn can only shrink the estimate;
   GetNodes and Expand multiply by non-negative factors. *)
let test_estimator_trace_monotonicity () =
  let ds = Lazy.force Fixtures.small_snb in
  let rng = Lpp_util.Rng.create 1234 in
  for _ = 1 to 150 do
    match random_pattern rng ds.graph with
    | exception Invalid_argument _ -> ()
    | p ->
        List.iter
          (fun config ->
            let alg = Planner.plan p in
            let prev = ref nan in
            List.iter
              (fun ((op : Algebra.op), card) ->
                Alcotest.(check bool) "finite, non-negative" true
                  (Float.is_finite card && card >= 0.0);
                (match op with
                | Label_selection _ | Prop_selection _ | Merge_on _ ->
                    if Float.is_finite !prev then
                      Alcotest.(check bool) "selection shrinks" true
                        (card <= !prev +. 1e-9)
                | Get_nodes _ | Expand _ -> ());
                prev := card)
              (Lpp_core.Estimator.trace config ds.catalog alg))
          [ Lpp_core.Config.s_l; Lpp_core.Config.a_lhd ]
  done

let test_estimator_deterministic () =
  let ds = Lazy.force Fixtures.small_snb in
  let rng = Lpp_util.Rng.create 888 in
  for _ = 1 to 40 do
    match random_pattern rng ds.graph with
    | exception Invalid_argument _ -> ()
    | p ->
        let a = Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd ds.catalog p in
        let b = Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd ds.catalog p in
        Alcotest.(check (float 0.0)) "same estimate" a b
  done

let test_planner_deterministic () =
  let ds = Lazy.force Fixtures.small_snb in
  let rng = Lpp_util.Rng.create 999 in
  for _ = 1 to 40 do
    match random_pattern rng ds.graph with
    | exception Invalid_argument _ -> ()
    | p ->
        let a = Planner.plan p and b = Planner.plan p in
        Alcotest.(check int) "same length" (Algebra.op_count a) (Algebra.op_count b)
  done

(* A single-relationship estimate equals the relevant RC count exactly for
   every configuration (sanity anchoring of Expand against the catalog). *)
let test_single_rel_anchoring () =
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  let typ name =
    Option.get (Lpp_pgraph.Interner.find_opt (Lpp_pgraph.Graph.rel_types g) name)
  in
  List.iter
    (fun type_name ->
      let ty = typ type_name in
      let p =
        Pattern.make
          ~nodes:[| raw_node (); raw_node () |]
          ~rels:[| raw_rel ~types:[| ty |] 0 1 |]
      in
      let truth =
        float_of_int
          (Lpp_stats.Catalog.rc ds.catalog ~dir:Lpp_pgraph.Direction.Out
             ~node:None ~types:[| ty |] ~other:None)
      in
      (* With both D_L (disjoint clusters) and H_L (sublabels not counted
         twice inside a cluster) the representative-label decomposition of
         the unselected source variable is exact. Dropping either one lets
         overlap/hierarchy pollution skew it — the "optional statistics
         improve accuracy" effect of Section 6.1. *)
      List.iter
        (fun config ->
          let est = Lpp_core.Estimator.estimate_pattern config ds.catalog p in
          Alcotest.(check bool)
            (Printf.sprintf "%s exact on (v)-[%s]->(w): %.1f vs %.1f"
               (Lpp_core.Config.name config) type_name est truth)
            true
            (Float.abs (est -. truth) /. Float.max truth 1.0 < 0.02))
        [ Lpp_core.Config.a_lhd ];
      List.iter
        (fun config ->
          let est = Lpp_core.Estimator.estimate_pattern config ds.catalog p in
          Alcotest.(check bool)
            (Printf.sprintf "%s sane on (v)-[%s]->(w): %.1f vs %.1f"
               (Lpp_core.Config.name config) type_name est truth)
            true
            (est > 0.0 && Lpp_harness.Qerror.q_error ~truth ~estimate:est < 20.0))
        Lpp_core.Config.all)
    [ "KNOWS"; "LIKES"; "HAS_CREATOR" ]

(* Value hash agrees with equality *)
let prop_value_hash =
  let value_gen =
    QCheck.Gen.(
      oneof
        [ map (fun i -> Lpp_pgraph.Value.Int i) (int_range (-20) 20);
          map (fun s -> Lpp_pgraph.Value.Str s) (string_size (0 -- 3)) ])
  in
  QCheck.Test.make ~name:"Value.hash consistent with equal" ~count:300
    (QCheck.make QCheck.Gen.(pair value_gen value_gen))
    (fun (a, b) ->
      (not (Lpp_pgraph.Value.equal a b))
      || Lpp_pgraph.Value.hash a = Lpp_pgraph.Value.hash b)

(* report formatting *)
let test_report_cells () =
  Alcotest.(check string) "empty" "-" (Lpp_harness.Report.qerr_cell []);
  let cell = Lpp_harness.Report.qerr_cell [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check bool) "median rendered" true (Str_contains.contains cell "2");
  Alcotest.(check string) "us" "1.50 us" (Lpp_harness.Report.ns_to_string 1500.0);
  Alcotest.(check string) "ms" "2.50 ms" (Lpp_harness.Report.ns_to_string 2.5e6);
  Alcotest.(check string) "s" "1.20 s" (Lpp_harness.Report.ns_to_string 1.2e9)

let suite =
  [
    Alcotest.test_case "matcher ≡ reference (random graphs)" `Quick
      test_matcher_vs_reference_random_graphs;
    Alcotest.test_case "hom ≥ cypher" `Quick test_hom_geq_cypher;
    Alcotest.test_case "estimator: trace monotone" `Quick
      test_estimator_trace_monotonicity;
    Alcotest.test_case "estimator: deterministic" `Quick test_estimator_deterministic;
    Alcotest.test_case "planner: deterministic" `Quick test_planner_deterministic;
    Alcotest.test_case "estimator: single-rel anchoring" `Quick
      test_single_rel_anchoring;
    QCheck_alcotest.to_alcotest prop_value_hash;
    Alcotest.test_case "report: cells" `Quick test_report_cells;
  ]
