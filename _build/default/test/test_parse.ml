(* Tests for the openCypher-style pattern parser. *)

open Lpp_pattern

let graph = lazy (Fixtures.campus ()).graph

let parse_ok q =
  match Parse.parse (Lazy.force graph) q with
  | Ok r -> r
  | Error msg -> Alcotest.failf "parse %S failed: %s" q msg

let count q =
  match Lpp_exec.Matcher.count (Lazy.force graph) (parse_ok q).pattern with
  | Lpp_exec.Matcher.Count c -> c
  | Budget_exceeded -> Alcotest.fail "budget"

let test_single_node () =
  let r = parse_ok "(p:Person)" in
  Alcotest.(check int) "one node" 1 (Pattern.node_count r.pattern);
  Alcotest.(check int) "one label" 1 (Pattern.label_total r.pattern);
  Alcotest.(check (array (option string))) "var name" [| Some "p" |] r.var_names;
  Alcotest.(check int) "4 persons" 4 (count "(p:Person)")

let test_multi_label_and_anonymous () =
  let r = parse_ok "(:Person:Student)" in
  Alcotest.(check (array (option string))) "anonymous" [| None |] r.var_names;
  Alcotest.(check int) "3 students (all persons)" 3 (count "(:Person:Student)")

let test_directed_chain () =
  Alcotest.(check int) "attends rels" 4
    (count "(s:Student)-[:attends]->(c:Course)");
  Alcotest.(check int) "reversed arrow" 4
    (count "(c:Course)<-[:attends]-(s:Student)")

let test_undirected_and_untyped () =
  Alcotest.(check int) "all rels, both ways" 18 (count "(a)-[]-(b)");
  Alcotest.(check int) "likes undirected" 4 (count "(a)-[:likes]-(b)")

let test_type_alternatives () =
  Alcotest.(check int) "teaches|attends" 6
    (count "(p:Person)-[:teaches|attends]->(c)")

let test_props () =
  Alcotest.(check int) "eq string" 1 (count "(p {name: \"Emil\"})");
  Alcotest.(check int) "eq int" 1 (count "(p {semester: 3})");
  Alcotest.(check int) "exists" 1 (count "(p {semester})");
  Alcotest.(check int) "single quotes" 1 (count "(p {name: 'Carol'})")

let test_shared_variables_cycle () =
  let r = parse_ok "(a)-[:likes]->(b)-[:likes]->(a)" in
  Alcotest.(check int) "two nodes" 2 (Pattern.node_count r.pattern);
  Alcotest.(check string) "cyclic" "circle"
    (Shape.to_string (Shape.classify r.pattern));
  (* E and C like each other: 2 ordered mutual pairs *)
  Alcotest.(check int) "mutual likes" 2 (count "(a)-[:likes]->(b)-[:likes]->(a)")

let test_comma_paths () =
  (* star written as two paths sharing the centre *)
  let q = "(c:Course)<-[:attends]-(s:Student), (c)<-[:teaches]-(t:Teacher)" in
  let r = parse_ok q in
  Alcotest.(check int) "three nodes" 3 (Pattern.node_count r.pattern);
  Alcotest.(check int) "attended and taught" 4 (count q)

let test_hops_syntax () =
  let r = parse_ok "(a)-[:likes*1..2]->(b)" in
  Alcotest.(check bool) "has var length" true (Pattern.has_var_length r.pattern);
  let r2 = parse_ok "(a)-[:likes*2]->(b)" in
  (match r2.pattern.rels.(0).r_hops with
  | Some (2, 2) -> ()
  | _ -> Alcotest.fail "expected *2 to mean exactly 2");
  let r3 = parse_ok "(a)-[*]->(b)" in
  (match r3.pattern.rels.(0).r_hops with
  | Some (1, hi) -> Alcotest.(check int) "capped" Parse.max_unbounded_hops hi
  | _ -> Alcotest.fail "expected open range");
  let r4 = parse_ok "(a)-[:likes*2..]->(b)" in
  match r4.pattern.rels.(0).r_hops with
  | Some (2, hi) -> Alcotest.(check int) "capped upper" Parse.max_unbounded_hops hi
  | _ -> Alcotest.fail "expected 2..cap"

let test_match_keyword_and_whitespace () =
  Alcotest.(check int) "MATCH prefix"
    (count "(s:Student)-[:attends]->(c:Course)")
    (count "MATCH  ( s:Student ) - [ :attends ] -> ( c:Course )")

let test_rel_identifier_ignored () =
  Alcotest.(check int) "named rel" 4 (count "(s:Student)-[r:attends]->(c:Course)")

let test_errors () =
  let expect_error q =
    match Parse.parse (Lazy.force graph) q with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to fail" q
  in
  expect_error "";
  expect_error "(a";
  expect_error "(a)-[:x(b)";
  expect_error "(a)->(b)";
  expect_error "(a {k:})";
  expect_error "(a) trailing";
  expect_error "(a)-[:x]->(a:Label)" (* redeclared variable *);
  expect_error "(a)-[:x*0..2]->(b)" (* invalid hop range *);
  expect_error "(a), (b)" (* disconnected *)

let test_roundtrip_with_estimator () =
  let ds = Lazy.force Fixtures.small_snb in
  let q = "(p:Person)<-[:HAS_CREATOR]-(m:Post)-[:HAS_TAG]->(t:Tag)" in
  match Parse.parse ds.graph q with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok { pattern; _ } ->
      let est =
        Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd ds.catalog pattern
      in
      let truth =
        match Lpp_exec.Matcher.count ds.graph pattern with
        | Lpp_exec.Matcher.Count c -> float_of_int c
        | Budget_exceeded -> Alcotest.fail "budget"
      in
      Alcotest.(check bool)
        (Printf.sprintf "estimate %.1f close to truth %.1f" est truth)
        true
        (Lpp_harness.Qerror.q_error ~truth ~estimate:est < 3.0)

let suite =
  [
    Alcotest.test_case "parse: single node" `Quick test_single_node;
    Alcotest.test_case "parse: multi-label/anon" `Quick test_multi_label_and_anonymous;
    Alcotest.test_case "parse: directed chain" `Quick test_directed_chain;
    Alcotest.test_case "parse: undirected/untyped" `Quick test_undirected_and_untyped;
    Alcotest.test_case "parse: type alternatives" `Quick test_type_alternatives;
    Alcotest.test_case "parse: properties" `Quick test_props;
    Alcotest.test_case "parse: shared vars/cycle" `Quick test_shared_variables_cycle;
    Alcotest.test_case "parse: comma paths" `Quick test_comma_paths;
    Alcotest.test_case "parse: hop syntax" `Quick test_hops_syntax;
    Alcotest.test_case "parse: MATCH + whitespace" `Quick
      test_match_keyword_and_whitespace;
    Alcotest.test_case "parse: rel identifier" `Quick test_rel_identifier_ignored;
    Alcotest.test_case "parse: errors" `Quick test_errors;
    Alcotest.test_case "parse: estimator roundtrip" `Quick test_roundtrip_with_estimator;
  ]
