(* Tests for Lpp_pattern.Planner: heuristic and random linearisations.

   The central property: evaluating the planned operator sequence with the
   exact Reference evaluator yields the same count as the backtracking
   Matcher run directly on the pattern — i.e. plans faithfully represent
   their patterns, including cycle closing via Expand + MergeOn. *)

open Lpp_pattern

let raw_node ?(labels = [||]) () = { Pattern.n_labels = labels; n_props = [||] }

let raw_rel ?(types = [||]) ?(directed = true) src dst =
  { Pattern.r_src = src; r_dst = dst; r_types = types; r_directed = directed;
    r_props = [||]; r_hops = None }

let matcher_count g p =
  match Lpp_exec.Matcher.count g p with
  | Lpp_exec.Matcher.Count c -> c
  | Budget_exceeded -> Alcotest.fail "matcher budget exceeded in test"

let reference_count g alg =
  match Lpp_exec.Reference.count g alg with
  | Some c -> c
  | None -> Alcotest.fail "reference evaluator blew up in test"

let test_plan_structure () =
  let f = Fixtures.campus () in
  let p =
    Pattern.of_spec f.graph
      [ Pattern.node_spec ~labels:[ "Student" ] ();
        Pattern.node_spec ~labels:[ "Course" ] () ]
      [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ]
  in
  let alg = Planner.plan p in
  Alcotest.(check bool) "validates" true (Result.is_ok (Algebra.validate alg));
  (match alg.ops.(0) with
  | Algebra.Get_nodes _ -> ()
  | _ -> Alcotest.fail "must start with GetNodes");
  Alcotest.(check int) "rel vars = pattern rels" 1 alg.rel_vars

let test_plan_starts_at_max_degree () =
  (* star with centre 2 *)
  let p =
    Pattern.make
      ~nodes:(Array.init 4 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 2 0; raw_rel 2 1; raw_rel 2 3 |]
  in
  let alg = Planner.plan p in
  match alg.ops.(0) with
  | Algebra.Get_nodes { var } -> Alcotest.(check int) "starts at centre" 2 var
  | _ -> Alcotest.fail "must start with GetNodes"

let test_plan_cycle_uses_merge () =
  let p =
    Pattern.make
      ~nodes:(Array.init 3 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2; raw_rel 2 0 |]
  in
  let alg = Planner.plan p in
  let merges =
    Array.to_list alg.ops
    |> List.filter (function Algebra.Merge_on _ -> true | _ -> false)
  in
  Alcotest.(check int) "one merge for one cycle" 1 (List.length merges);
  Alcotest.(check int) "one fresh variable" 4 alg.node_vars

let test_plan_selections_early () =
  (* label selections must directly follow the introduction of their var *)
  let f = Fixtures.campus () in
  let p =
    Pattern.of_spec f.graph
      [ Pattern.node_spec ~labels:[ "Person" ] ();
        Pattern.node_spec ~labels:[ "Course" ] () ]
      [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ]
  in
  let alg = Planner.plan p in
  let ops = Array.to_list alg.ops in
  let rec check_after_intro seen = function
    | [] -> ()
    | Algebra.Label_selection { var; _ } :: rest ->
        Alcotest.(check bool) "selection after introduction" true
          (List.mem var seen);
        check_after_intro seen rest
    | Algebra.Get_nodes { var } :: rest -> check_after_intro (var :: seen) rest
    | Algebra.Expand { dst_var; _ } :: rest ->
        check_after_intro (dst_var :: seen) rest
    | _ :: rest -> check_after_intro seen rest
  in
  check_after_intro [] ops

(* Random connected pattern generator over the campus vocabulary. *)
let random_pattern rng (g : Lpp_pgraph.Graph.t) =
  let open Lpp_util in
  let n = Rng.int_in rng 1 4 in
  let nodes =
    Array.init n (fun _ ->
        let labels =
          if Rng.coin rng 0.5 then
            [| Rng.int rng (Lpp_pgraph.Graph.label_count g) |]
          else [||]
        in
        raw_node ~labels ())
  in
  let rels = ref [] in
  (* spanning tree first, then a few extra edges *)
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    let types =
      if Rng.coin rng 0.6 then
        [| Rng.int rng (Lpp_pgraph.Graph.rel_type_count g) |]
      else [||]
    in
    let directed = Rng.coin rng 0.7 in
    rels :=
      (if Rng.bool rng then raw_rel ~types ~directed i j
       else raw_rel ~types ~directed j i)
      :: !rels
  done;
  if n >= 2 && Rng.coin rng 0.4 then begin
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b then rels := raw_rel a b :: !rels
  end;
  Pattern.make ~nodes ~rels:(Array.of_list !rels)

let test_plan_matches_matcher_on_random_patterns () =
  let f = Fixtures.campus () in
  let rng = Lpp_util.Rng.create 77 in
  for _ = 1 to 200 do
    let p = random_pattern rng f.graph in
    let alg = Planner.plan p in
    Alcotest.(check bool) "plan validates" true (Result.is_ok (Algebra.validate alg));
    Alcotest.(check int)
      (Format.asprintf "plan ≡ pattern for %a" (Pattern.pp ~names:None) p)
      (matcher_count f.graph p)
      (reference_count f.graph alg)
  done

let test_random_order_matches_matcher () =
  let f = Fixtures.campus () in
  let rng = Lpp_util.Rng.create 99 in
  for _ = 1 to 100 do
    let p = random_pattern rng f.graph in
    let alg = Planner.random_order rng p in
    Alcotest.(check bool) "random order validates" true
      (Result.is_ok (Algebra.validate alg));
    Alcotest.(check int) "random order ≡ pattern"
      (matcher_count f.graph p)
      (reference_count f.graph alg)
  done

let test_plans_on_triangle_graph () =
  let g, _ = Fixtures.triangle () in
  let p =
    Pattern.make
      ~nodes:(Array.init 3 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2; raw_rel 2 0 |]
  in
  (* the directed triangle appears 3 times (one per rotation) *)
  Alcotest.(check int) "matcher triangle count" 3 (matcher_count g p);
  Alcotest.(check int) "reference triangle count" 3
    (reference_count g (Planner.plan p))

let suite =
  [
    Alcotest.test_case "plan: structure" `Quick test_plan_structure;
    Alcotest.test_case "plan: max-degree start" `Quick test_plan_starts_at_max_degree;
    Alcotest.test_case "plan: cycle via merge" `Quick test_plan_cycle_uses_merge;
    Alcotest.test_case "plan: selections early" `Quick test_plan_selections_early;
    Alcotest.test_case "plan: ≡ matcher (200 random)" `Quick
      test_plan_matches_matcher_on_random_patterns;
    Alcotest.test_case "random order: ≡ matcher (100 random)" `Quick
      test_random_order_matches_matcher;
    Alcotest.test_case "plan: triangle" `Quick test_plans_on_triangle_graph;
  ]
