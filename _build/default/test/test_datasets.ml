(* Tests for Lpp_datasets: schema invariants, determinism, statistics shape. *)

open Lpp_pgraph
open Lpp_stats

let label g name = Option.get (Interner.find_opt (Graph.labels g) name)

(* every declared hierarchy pair must hold in the generated data *)
let check_hierarchy_holds (ds : Lpp_datasets.Dataset.t) pairs =
  let g = ds.graph in
  List.iter
    (fun (child, parent) ->
      match (Interner.find_opt (Graph.labels g) child,
             Interner.find_opt (Graph.labels g) parent) with
      | Some c, Some p ->
          Array.iter
            (fun nd ->
              Alcotest.(check bool)
                (Printf.sprintf "node with %s carries %s" child parent)
                true
                (Graph.node_has_label g nd p))
            (Graph.nodes_with_label g c)
      | _ -> Alcotest.failf "label missing: %s or %s" child parent)
    pairs

let test_snb_shape () =
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  Alcotest.(check int) "14 labels like the paper" 14 (Graph.label_count g);
  Alcotest.(check int) "15 rel types like the paper" 15 (Graph.rel_type_count g);
  Alcotest.(check int) "7 partition components" 7
    (Label_partition.cluster_count (Catalog.partition ds.catalog));
  Alcotest.(check int) "H_L height 2" 2
    (Label_hierarchy.height (Catalog.hierarchy ds.catalog));
  Alcotest.(check bool) "nodes exist" true (Graph.node_count g > 1000);
  Alcotest.(check bool) "rels outnumber nodes" true
    (Graph.rel_count g > Graph.node_count g)

let test_snb_hierarchy_holds () =
  let ds = Lazy.force Fixtures.small_snb in
  check_hierarchy_holds ds Lpp_datasets.Snb_gen.hierarchy_pairs

let test_snb_determinism () =
  let a = Lpp_datasets.Snb_gen.generate ~persons:50 ~seed:9 () in
  let b = Lpp_datasets.Snb_gen.generate ~persons:50 ~seed:9 () in
  Alcotest.(check int) "same node count" (Graph.node_count a.graph)
    (Graph.node_count b.graph);
  Alcotest.(check int) "same rel count" (Graph.rel_count a.graph)
    (Graph.rel_count b.graph);
  Alcotest.(check int) "same property count" (Graph.property_count a.graph)
    (Graph.property_count b.graph);
  let c = Lpp_datasets.Snb_gen.generate ~persons:50 ~seed:10 () in
  Alcotest.(check bool) "different seed differs" true
    (Graph.rel_count a.graph <> Graph.rel_count c.graph
    || Graph.property_count a.graph <> Graph.property_count c.graph)

let test_snb_degree_skew () =
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  let person = label g "Person" in
  let degrees =
    Array.map (Graph.degree g Direction.Both) (Graph.nodes_with_label g person)
  in
  Array.sort Int.compare degrees;
  let n = Array.length degrees in
  let max_deg = degrees.(n - 1) in
  let median_deg = degrees.(n / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "skewed degrees (max %d vs median %d)" max_deg median_deg)
    true
    (max_deg > 4 * median_deg)

let test_cineasts_shape () =
  let ds = Lazy.force Fixtures.small_cineasts in
  let g = ds.graph in
  Alcotest.(check int) "5 labels" 5 (Graph.label_count g);
  Alcotest.(check int) "4 rel types" 4 (Graph.rel_type_count g);
  Alcotest.(check int) "2 partition components" 2
    (Label_partition.cluster_count (Catalog.partition ds.catalog));
  Alcotest.(check int) "H_L height 2" 2
    (Label_hierarchy.height (Catalog.hierarchy ds.catalog))

let test_cineasts_hierarchy_holds () =
  let ds = Lazy.force Fixtures.small_cineasts in
  check_hierarchy_holds ds Lpp_datasets.Cineasts_gen.hierarchy_pairs

let test_cineasts_overlapping_professions () =
  let ds = Lazy.force Fixtures.small_cineasts in
  let g = ds.graph in
  let actor = label g "Actor" and director = label g "Director" in
  let both =
    Array.fold_left
      (fun acc nd -> if Graph.node_has_label g nd director then acc + 1 else acc)
      0
      (Graph.nodes_with_label g actor)
  in
  Alcotest.(check bool) "actors and directors overlap" true (both > 0);
  Alcotest.(check bool) "but not all actors direct" true
    (both < Array.length (Graph.nodes_with_label g actor))

let test_dbpedia_shape () =
  let ds = Lazy.force Fixtures.small_dbpedia in
  let g = ds.graph in
  Alcotest.(check int) "40 classes" 40 (Graph.label_count g);
  Alcotest.(check int) "one partition component (Thing overlaps all)" 1
    (Label_partition.cluster_count (Catalog.partition ds.catalog));
  Alcotest.(check int) "H_L height 5" 5
    (Label_hierarchy.height (Catalog.hierarchy ds.catalog))

let test_dbpedia_everyone_is_a_thing () =
  let ds = Lazy.force Fixtures.small_dbpedia in
  let g = ds.graph in
  let thing = label g "Thing" in
  Alcotest.(check int) "all nodes carry Thing" (Graph.node_count g)
    (Array.length (Graph.nodes_with_label g thing))

let test_dbpedia_ancestor_chain () =
  let ds = Lazy.force Fixtures.small_dbpedia in
  let g = ds.graph in
  let h = Catalog.hierarchy ds.catalog in
  (* for every node, every label's superlabels are also on the node *)
  let ok = ref true in
  Graph.iter_nodes g (fun nd ->
      let ls = Graph.node_labels g nd in
      Array.iter
        (fun l ->
          List.iter
            (fun sup ->
              if not (Graph.node_has_label g nd sup) then ok := false)
            (Label_hierarchy.superlabels h l))
        ls);
  Alcotest.(check bool) "ancestor chains complete" true !ok

let test_dataset_summary_row () =
  let ds = Lazy.force Fixtures.small_snb in
  let row = Lpp_datasets.Dataset.summary_row ds in
  Alcotest.(check int) "row width matches headers"
    (List.length Lpp_datasets.Dataset.summary_headers)
    (List.length row);
  Alcotest.(check string) "name first" "SNB" (List.hd row)

let test_inferred_hierarchy_subsumes_curated () =
  (* inference from data must find every curated pair (it may find more,
     e.g. extent-level coincidences at small scale) *)
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  let inferred = Label_hierarchy.infer g in
  List.iter
    (fun (child, parent) ->
      let c = label g child and p = label g parent in
      Alcotest.(check bool)
        (Printf.sprintf "inferred %s ⊑ %s" child parent)
        true
        (Label_hierarchy.is_strict_sublabel inferred c p))
    Lpp_datasets.Snb_gen.hierarchy_pairs

let suite =
  [
    Alcotest.test_case "snb: shape" `Quick test_snb_shape;
    Alcotest.test_case "snb: hierarchy holds" `Quick test_snb_hierarchy_holds;
    Alcotest.test_case "snb: determinism" `Quick test_snb_determinism;
    Alcotest.test_case "snb: degree skew" `Quick test_snb_degree_skew;
    Alcotest.test_case "cineasts: shape" `Quick test_cineasts_shape;
    Alcotest.test_case "cineasts: hierarchy holds" `Quick test_cineasts_hierarchy_holds;
    Alcotest.test_case "cineasts: overlap" `Quick test_cineasts_overlapping_professions;
    Alcotest.test_case "dbpedia: shape" `Quick test_dbpedia_shape;
    Alcotest.test_case "dbpedia: Thing on all" `Quick test_dbpedia_everyone_is_a_thing;
    Alcotest.test_case "dbpedia: ancestor chains" `Quick test_dbpedia_ancestor_chain;
    Alcotest.test_case "dataset: summary row" `Quick test_dataset_summary_row;
    Alcotest.test_case "snb: inference ⊇ curated" `Quick
      test_inferred_hierarchy_subsumes_curated;
  ]
