(* Tests for Lpp_workload.Query_gen and the harness (Qerror, Runner). *)

open Lpp_workload

let gen_queries flavour target =
  let ds = Lazy.force Fixtures.small_snb in
  let rng = Lpp_util.Rng.create 314 in
  let spec =
    { (Query_gen.default_spec flavour) with
      target; attempts = 4 * target; truth_budget = 3_000_000 }
  in
  (ds, Query_gen.generate rng ds spec)

let with_props = lazy (gen_queries Query_gen.With_props 30)

let no_props = lazy (gen_queries Query_gen.No_props 30)

let test_queries_have_matches () =
  let _, qs = Lazy.force with_props in
  Alcotest.(check bool) "got queries" true (List.length qs >= 20);
  List.iter
    (fun (q : Query_gen.query) ->
      Alcotest.(check bool) "anchored ⇒ ≥1 match" true (q.true_card >= 1))
    qs

let test_ground_truth_correct () =
  let ds, qs = Lazy.force no_props in
  List.iter
    (fun (q : Query_gen.query) ->
      match Lpp_exec.Matcher.count ds.graph q.pattern with
      | Lpp_exec.Matcher.Count c ->
          Alcotest.(check int) "stored truth matches recount" c q.true_card
      | Budget_exceeded -> Alcotest.fail "unexpected budget blowup")
    (List.filteri (fun i _ -> i < 10) qs)

let test_shape_and_size_stored () =
  let _, qs = Lazy.force with_props in
  List.iter
    (fun (q : Query_gen.query) ->
      Alcotest.(check bool) "shape consistent" true
        (Lpp_pattern.Shape.equal q.shape (Lpp_pattern.Shape.classify q.pattern));
      Alcotest.(check int) "size consistent" (Lpp_pattern.Pattern.size q.pattern) q.size)
    qs

let test_with_props_universal_support () =
  (* "set 1" must be supported by every technique except WJ *)
  let ds, qs = Lazy.force with_props in
  let csets = Lpp_harness.Technique.csets ds in
  let sumrdf = Lpp_harness.Technique.sumrdf ~target_buckets:32 ds in
  List.iter
    (fun (q : Query_gen.query) ->
      Alcotest.(check bool) "csets supports" true (csets.supports q.pattern);
      Alcotest.(check bool) "sumrdf supports" true (sumrdf.supports q.pattern))
    qs

let test_with_props_has_properties () =
  let _, qs = Lazy.force with_props in
  Alcotest.(check bool) "some queries carry predicates" true
    (List.exists
       (fun (q : Query_gen.query) -> Lpp_pattern.Pattern.has_properties q.pattern)
       qs);
  List.iter
    (fun (q : Query_gen.query) ->
      Alcotest.(check bool) "at most 3 predicates" true
        (Lpp_pattern.Pattern.prop_total q.pattern <= 3))
    qs

let test_no_props_flavour () =
  let _, qs = Lazy.force no_props in
  List.iter
    (fun (q : Query_gen.query) ->
      Alcotest.(check bool) "no predicates" false
        (Lpp_pattern.Pattern.has_properties q.pattern))
    qs;
  (* generalisation must produce some undirected or untyped relationships *)
  let relaxed =
    List.exists
      (fun (q : Query_gen.query) ->
        Array.exists
          (fun (r : Lpp_pattern.Pattern.rel_pat) ->
            (not r.r_directed) || Array.length r.r_types = 0)
          q.pattern.rels)
      qs
  in
  Alcotest.(check bool) "relaxed rels present" true relaxed

let test_shape_diversity () =
  let _, qs = Lazy.force no_props in
  let coarse =
    List.sort_uniq String.compare
      (List.map (fun (q : Query_gen.query) -> Lpp_pattern.Shape.coarse q.shape) qs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "≥3 coarse shapes (%s)" (String.concat "," coarse))
    true
    (List.length coarse >= 3)

let test_size_bucket () =
  Alcotest.(check string) "small" "2-4" (Query_gen.size_bucket 3);
  Alcotest.(check string) "mid" "5-6" (Query_gen.size_bucket 6);
  Alcotest.(check string) "large" "7-8" (Query_gen.size_bucket 7);
  Alcotest.(check string) "huge" "9+" (Query_gen.size_bucket 12)

let test_generation_deterministic () =
  let ds = Lazy.force Fixtures.small_snb in
  let spec =
    { (Query_gen.default_spec No_props) with
      target = 10; attempts = 40; truth_budget = 2_000_000 }
  in
  let a = Query_gen.generate (Lpp_util.Rng.create 55) ds spec in
  let b = Query_gen.generate (Lpp_util.Rng.create 55) ds spec in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Query_gen.query) (y : Query_gen.query) ->
      Alcotest.(check int) "same truth" x.true_card y.true_card;
      Alcotest.(check int) "same size" x.size y.size)
    a b

(* ---------------- Qerror ---------------- *)

let test_qerror () =
  Alcotest.(check (float 1e-9)) "exact" 1.0 (Lpp_harness.Qerror.q_error ~truth:5.0 ~estimate:5.0);
  Alcotest.(check (float 1e-9)) "over" 4.0 (Lpp_harness.Qerror.q_error ~truth:5.0 ~estimate:20.0);
  Alcotest.(check (float 1e-9)) "under" 4.0 (Lpp_harness.Qerror.q_error ~truth:20.0 ~estimate:5.0);
  Alcotest.(check (float 1e-9)) "zero estimate clamped" 7.0
    (Lpp_harness.Qerror.q_error ~truth:7.0 ~estimate:0.0);
  Alcotest.(check (float 1e-9)) "both tiny" 1.0
    (Lpp_harness.Qerror.q_error ~truth:0.2 ~estimate:0.9);
  Alcotest.(check bool) "underestimates" true
    (Lpp_harness.Qerror.underestimates ~truth:10.0 ~estimate:2.0);
  Alcotest.(check bool) "overestimates" false
    (Lpp_harness.Qerror.underestimates ~truth:2.0 ~estimate:10.0)

let prop_qerror_symmetric_and_bounded =
  QCheck.Test.make ~name:"q-error symmetric, ≥1" ~count:300
    QCheck.(pair (float_range 0.0 1e6) (float_range 0.0 1e6))
    (fun (a, b) ->
      let q1 = Lpp_harness.Qerror.q_error ~truth:a ~estimate:b in
      let q2 = Lpp_harness.Qerror.q_error ~truth:b ~estimate:a in
      Float.abs (q1 -. q2) < 1e-9 && q1 >= 1.0)

(* ---------------- Runner ---------------- *)

let test_runner_skips_unsupported () =
  let ds, qs = Lazy.force no_props in
  let csets = Lpp_harness.Technique.csets ds in
  let ms = Lpp_harness.Runner.run ~measure_time:false csets qs in
  let frac = Lpp_harness.Runner.support_fraction csets qs in
  Alcotest.(check int) "measurements = supported queries"
    (int_of_float (frac *. float_of_int (List.length qs)))
    (List.length ms);
  Alcotest.(check bool) "csets only supports a fraction of set 2" true (frac < 1.0)

let test_runner_measures_time () =
  let ds, qs = Lazy.force with_props in
  let tech = Lpp_harness.Technique.ours Lpp_core.Config.a_lhd ds.catalog in
  let ms = Lpp_harness.Runner.run tech (List.filteri (fun i _ -> i < 3) qs) in
  List.iter
    (fun (m : Lpp_harness.Runner.measurement) ->
      Alcotest.(check bool) "positive runtime" true (m.runtime_ns > 0.0))
    ms

let test_runner_filter () =
  let _, qs = Lazy.force no_props in
  let tech_qs = List.map (fun q -> { q with Query_gen.id = q.Query_gen.id }) qs in
  let ms =
    List.map
      (fun q ->
        { Lpp_harness.Runner.query = q; estimate = 1.0; q_error = 1.0;
          runtime_ns = 1.0 })
      tech_qs
  in
  let chains =
    Lpp_harness.Runner.filter
      (fun q -> Lpp_pattern.Shape.coarse q.Query_gen.shape = "chain")
      ms
  in
  Alcotest.(check bool) "filter selects subset" true
    (List.length chains <= List.length ms)

let suite =
  [
    Alcotest.test_case "queries: anchored" `Quick test_queries_have_matches;
    Alcotest.test_case "queries: truth correct" `Quick test_ground_truth_correct;
    Alcotest.test_case "queries: shape/size stored" `Quick test_shape_and_size_stored;
    Alcotest.test_case "set1: universal support" `Quick test_with_props_universal_support;
    Alcotest.test_case "set1: properties" `Quick test_with_props_has_properties;
    Alcotest.test_case "set2: flavour" `Quick test_no_props_flavour;
    Alcotest.test_case "queries: shape diversity" `Quick test_shape_diversity;
    Alcotest.test_case "size buckets" `Quick test_size_bucket;
    Alcotest.test_case "queries: deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "qerror: cases" `Quick test_qerror;
    QCheck_alcotest.to_alcotest prop_qerror_symmetric_and_bounded;
    Alcotest.test_case "runner: unsupported skipped" `Quick test_runner_skips_unsupported;
    Alcotest.test_case "runner: timing" `Quick test_runner_measures_time;
    Alcotest.test_case "runner: filter" `Quick test_runner_filter;
  ]
