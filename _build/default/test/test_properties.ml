(* Additional property-based coverage: serialisation round-trips over random
   graphs, shape-classification totality, planner/validator compatibility on
   random patterns, and estimator scale behaviour. *)

open Lpp_pattern

let random_graph rng =
  let open Lpp_util in
  let b = Lpp_pgraph.Graph_builder.create () in
  let n = Rng.int_in rng 1 15 in
  let nodes =
    Array.init n (fun i ->
        let labels =
          List.filteri (fun j _ -> (i + j) mod 3 <> 0 || Rng.bool rng)
            [ "A"; "B"; "C" ]
        in
        let props =
          if Rng.coin rng 0.4 then
            [ ("k", Lpp_pgraph.Value.Int (Rng.int rng 5));
              ("s", Lpp_pgraph.Value.Str (String.make (Rng.int rng 3) 'x')) ]
          else []
        in
        Lpp_pgraph.Graph_builder.add_node b ~labels ~props)
  in
  let m = Rng.int rng (3 * n) in
  for _ = 1 to m do
    let s = nodes.(Rng.int rng n) and d = nodes.(Rng.int rng n) in
    ignore
      (Lpp_pgraph.Graph_builder.add_rel b ~src:s ~dst:d
         ~rel_type:(if Rng.bool rng then "u" else "v")
         ~props:(if Rng.coin rng 0.3 then [ ("w", Lpp_pgraph.Value.Float 0.5) ] else []))
  done;
  Lpp_pgraph.Graph_builder.freeze b

let test_graph_io_roundtrip_random () =
  let rng = Lpp_util.Rng.create 808 in
  for _ = 1 to 40 do
    let g = random_graph rng in
    let path = Filename.temp_file "lpp_rand" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Lpp_pgraph.Graph_io.save g path;
        match Lpp_pgraph.Graph_io.load path with
        | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
        | Ok g' ->
            Alcotest.(check int) "nodes" (Lpp_pgraph.Graph.node_count g)
              (Lpp_pgraph.Graph.node_count g');
            Alcotest.(check int) "rels" (Lpp_pgraph.Graph.rel_count g)
              (Lpp_pgraph.Graph.rel_count g');
            Alcotest.(check int) "props" (Lpp_pgraph.Graph.property_count g)
              (Lpp_pgraph.Graph.property_count g');
            (* ground truth of a fixed pattern is invariant under round-trip *)
            let p =
              Pattern.of_spec g
                [ Pattern.node_spec ~labels:[ "A" ] (); Pattern.node_spec () ]
                [ Pattern.rel_spec ~types:[ "u" ] ~src:0 ~dst:1 () ]
            in
            let count graph =
              match Lpp_exec.Matcher.count graph p with
              | Lpp_exec.Matcher.Count c -> c
              | Budget_exceeded -> -1
            in
            Alcotest.(check int) "counts invariant" (count g) (count g'))
  done

let random_connected_pattern rng max_nodes =
  let open Lpp_util in
  let n = Rng.int_in rng 1 max_nodes in
  let nodes =
    Array.init n (fun _ ->
        { Pattern.n_labels = (if Rng.bool rng then [| Rng.int rng 3 |] else [||]);
          n_props = [||] })
  in
  let rels = ref [] in
  for i = 1 to n - 1 do
    rels :=
      { Pattern.r_src = i; r_dst = Rng.int rng i; r_types = [||];
        r_directed = Rng.bool rng; r_props = [||];
        r_hops = (if Rng.coin rng 0.2 then Some (1, 2) else None) }
      :: !rels
  done;
  if n >= 2 && Rng.coin rng 0.5 then
    rels :=
      { Pattern.r_src = Rng.int rng n; r_dst = Rng.int rng n; r_types = [||];
        r_directed = true; r_props = [||]; r_hops = None }
      :: !rels;
  Pattern.make ~nodes ~rels:(Array.of_list !rels)

let test_shape_total_and_consistent () =
  let rng = Lpp_util.Rng.create 909 in
  for _ = 1 to 300 do
    match random_connected_pattern rng 7 with
    | exception Invalid_argument _ -> ()
    | p ->
        let s = Shape.classify p in
        Alcotest.(check bool) "coarse of shape is one of four" true
          (List.mem (Shape.coarse s) [ "chain"; "star"; "tree"; "cyclic" ]);
        let cycles = Pattern.rel_count p - Pattern.node_count p + 1 in
        Alcotest.(check bool) "cyclic iff cyclomatic > 0" true
          (Shape.coarse s = "cyclic" = (cycles > 0))
  done

let test_plans_always_validate () =
  let rng = Lpp_util.Rng.create 1001 in
  for _ = 1 to 300 do
    match random_connected_pattern rng 7 with
    | exception Invalid_argument _ -> ()
    | p ->
        (match Algebra.validate (Planner.plan p) with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "heuristic plan invalid: %s" msg);
        (match Algebra.validate (Planner.random_order rng p) with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "random plan invalid: %s" msg)
  done

(* Doubling every extent doubles single-label estimates (scale equivariance
   of GetNodes + LabelSelection). *)
let test_estimator_scale_equivariance () =
  let build copies =
    let b = Lpp_pgraph.Graph_builder.create () in
    for _ = 1 to copies do
      let a = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "A" ] ~props:[] in
      let c = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "B" ] ~props:[] in
      ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:a ~dst:c ~rel_type:"t" ~props:[])
    done;
    let g = Lpp_pgraph.Graph_builder.freeze b in
    (g, Lpp_stats.Catalog.build g)
  in
  let g1, c1 = build 5 and g2, c2 = build 10 in
  let est g c =
    Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd c
      (Pattern.of_spec g
         [ Pattern.node_spec ~labels:[ "A" ] (); Pattern.node_spec ~labels:[ "B" ] () ]
         [ Pattern.rel_spec ~types:[ "t" ] ~src:0 ~dst:1 () ])
  in
  Alcotest.(check (float 1e-9)) "doubling the data doubles the estimate"
    (2.0 *. est g1 c1) (est g2 c2)

let suite =
  [
    Alcotest.test_case "prop: io roundtrip random graphs" `Quick
      test_graph_io_roundtrip_random;
    Alcotest.test_case "prop: shape totality" `Quick test_shape_total_and_consistent;
    Alcotest.test_case "prop: plans validate" `Quick test_plans_always_validate;
    Alcotest.test_case "prop: scale equivariance" `Quick
      test_estimator_scale_equivariance;
  ]
