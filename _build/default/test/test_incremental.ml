(* Tests for incremental statistics maintenance (Catalog.note_… functions) and the
   Reference evaluator's intermediate-size profile. *)

open Lpp_pgraph
open Lpp_stats

(* Build a graph in two stages; maintaining the stage-1 catalog incrementally
   must reproduce the required statistics of a fresh stage-2 catalog. *)
let test_incremental_matches_rebuild () =
  let rng = Lpp_util.Rng.create 515 in
  let b = Graph_builder.create () in
  let labels_pool = [ [ "A" ]; [ "B" ]; [ "A"; "B" ]; [ "C" ]; [] ] in
  let add_node () =
    Graph_builder.add_node b ~labels:(Lpp_util.Rng.pick_list rng labels_pool) ~props:[]
  in
  let stage1_nodes = Array.init 40 (fun _ -> add_node ()) in
  for _ = 1 to 80 do
    ignore
      (Graph_builder.add_rel b
         ~src:(Lpp_util.Rng.pick rng stage1_nodes)
         ~dst:(Lpp_util.Rng.pick rng stage1_nodes)
         ~rel_type:(if Lpp_util.Rng.bool rng then "s" else "t")
         ~props:[])
  done;
  (* snapshot the stage-1 statistics: freeze a copy of the same content *)
  let snapshot_graph =
    (* rebuild the identical prefix deterministically *)
    let rng = Lpp_util.Rng.create 515 in
    let b1 = Graph_builder.create () in
    let nodes =
      Array.init 40 (fun _ ->
          Graph_builder.add_node b1
            ~labels:(Lpp_util.Rng.pick_list rng labels_pool)
            ~props:[])
    in
    for _ = 1 to 80 do
      ignore
        (Graph_builder.add_rel b1
           ~src:(Lpp_util.Rng.pick rng nodes)
           ~dst:(Lpp_util.Rng.pick rng nodes)
           ~rel_type:(if Lpp_util.Rng.bool rng then "s" else "t")
           ~props:[])
    done;
    Graph_builder.freeze b1
  in
  let incremental = Catalog.build snapshot_graph in
  (* stage 2: more nodes and rels, mirrored into the incremental catalog *)
  let new_nodes = ref [] in
  for _ = 1 to 15 do
    let labels = Lpp_util.Rng.pick_list rng labels_pool in
    let nd = Graph_builder.add_node b ~labels ~props:[] in
    new_nodes := nd :: !new_nodes;
    let ids =
      List.filter_map
        (fun l -> Interner.find_opt (Graph.labels snapshot_graph) l)
        labels
    in
    Catalog.note_node_added incremental ~labels:(Array.of_list ids)
  done;
  let all_nodes = Array.append stage1_nodes (Array.of_list !new_nodes) in
  let pending_rels = ref [] in
  for _ = 1 to 40 do
    let src = Lpp_util.Rng.pick rng all_nodes in
    let dst = Lpp_util.Rng.pick rng all_nodes in
    let typ = if Lpp_util.Rng.bool rng then "s" else "t" in
    ignore (Graph_builder.add_rel b ~src ~dst ~rel_type:typ ~props:[]);
    pending_rels := (src, dst, typ) :: !pending_rels
  done;
  let final_graph = Graph_builder.freeze b in
  List.iter
    (fun (src, dst, typ) ->
      Catalog.note_rel_added incremental
        ~src_labels:(Graph.node_labels final_graph src)
        ~typ:(Option.get (Interner.find_opt (Graph.rel_types final_graph) typ))
        ~dst_labels:(Graph.node_labels final_graph dst))
    !pending_rels;
  let fresh = Catalog.build final_graph in
  (* required statistics agree *)
  Alcotest.(check int) "NC(*)" (Catalog.nc_star fresh) (Catalog.nc_star incremental);
  Alcotest.(check int) "rel total" (Catalog.rel_total fresh)
    (Catalog.rel_total incremental);
  for l = 0 to Graph.label_count final_graph - 1 do
    Alcotest.(check int)
      (Printf.sprintf "NC(%d)" l)
      (Catalog.nc fresh l) (Catalog.nc incremental l)
  done;
  let labels = None :: List.init (Graph.label_count final_graph) (fun l -> Some l) in
  List.iter
    (fun dir ->
      List.iter
        (fun node ->
          List.iter
            (fun other ->
              Alcotest.(check int) "rc agrees"
                (Catalog.rc fresh ~dir ~node ~types:[||] ~other)
                (Catalog.rc incremental ~dir ~node ~types:[||] ~other))
            labels)
        labels)
    Direction.all;
  (* and the estimator built on the maintained catalog works *)
  let p =
    Lpp_pattern.Pattern.of_spec final_graph
      [ Lpp_pattern.Pattern.node_spec ~labels:[ "A" ] ();
        Lpp_pattern.Pattern.node_spec () ]
      [ Lpp_pattern.Pattern.rel_spec ~types:[ "s" ] ~src:0 ~dst:1 () ]
  in
  Alcotest.(check (float 1e-6)) "same estimate"
    (Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_l fresh p)
    (Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_l incremental p)

let test_note_unseen_label_grows () =
  let f = Fixtures.campus () in
  let cat = Catalog.build f.graph in
  let fresh_label = Interner.intern (Graph.labels f.graph) "Brand_new" in
  Catalog.note_node_added cat ~labels:[| fresh_label |];
  Alcotest.(check int) "new label counted" 1 (Catalog.nc cat fresh_label);
  Alcotest.(check int) "total bumped" 7 (Catalog.nc_star cat)

let test_intermediate_sizes () =
  let f = Fixtures.campus () in
  let p =
    Lpp_pattern.Pattern.of_spec f.graph
      [ Lpp_pattern.Pattern.node_spec ~labels:[ "Student" ] ();
        Lpp_pattern.Pattern.node_spec ~labels:[ "Course" ] () ]
      [ Lpp_pattern.Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ]
  in
  let alg = Lpp_pattern.Planner.plan p in
  match Lpp_exec.Reference.intermediate_sizes f.graph alg with
  | None -> Alcotest.fail "expected sizes"
  | Some sizes ->
      Alcotest.(check int) "one entry per op"
        (Lpp_pattern.Algebra.op_count alg)
        (List.length sizes);
      (* plan starts at the Course side (same degree, more selective order is
         a planner detail) — final size must equal the true cardinality *)
      Alcotest.(check int) "final size is the count" 4
        (List.nth sizes (List.length sizes - 1));
      Alcotest.(check int) "first op scans all nodes" 6 (List.hd sizes)

let suite =
  [
    Alcotest.test_case "incremental: matches rebuild" `Quick
      test_incremental_matches_rebuild;
    Alcotest.test_case "incremental: unseen label" `Quick test_note_unseen_label_grows;
    Alcotest.test_case "reference: intermediate sizes" `Quick test_intermediate_sizes;
  ]
