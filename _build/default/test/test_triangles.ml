(* Tests for triangle statistics and the triangle-aware MergeOn (A-LHDT). *)

open Lpp_pattern
open Lpp_stats

let raw_node () = { Pattern.n_labels = [||]; n_props = [||] }

let raw_rel src dst =
  { Pattern.r_src = src; r_dst = dst; r_types = [||]; r_directed = true;
    r_props = [||]; r_hops = None }

let triangle_pattern =
  lazy
    (Pattern.make
       ~nodes:(Array.init 3 (fun _ -> raw_node ()))
       ~rels:[| raw_rel 0 1; raw_rel 1 2; raw_rel 2 0 |])

let test_stats_on_triangle_graph () =
  let g, _ = Fixtures.triangle () in
  let ts = Triangle_stats.build g in
  (* nodes: t0(t1,t2), t1(t0,t2), t2(t0,t1,p), p(t2): wedges = 1+1+3+0 = 5.
     Each triangle wedge has exactly one closing orientation: 3 closings over
     10 ordered endpoint pairs. *)
  Alcotest.(check (float 1e-9)) "wedges" 5.0 ts.wedges;
  Alcotest.(check (float 1e-9)) "directed rate" 0.3 ts.rate_directed;
  Alcotest.(check (float 1e-9)) "undirected rate" 0.6 ts.rate_undirected;
  Alcotest.(check bool) "exact census" true ts.exact

let test_stats_on_triangle_free_graph () =
  let g = Fixtures.bipartite ~k_left:5 ~k_right:5 ~deg:2 in
  let ts = Triangle_stats.build g in
  Alcotest.(check (float 1e-9)) "bipartite has no triangles" 0.0 ts.rate_undirected;
  Alcotest.(check bool) "but wedges exist" true (ts.wedges > 0.0)

let test_stats_sampled () =
  let ds = Lazy.force Fixtures.small_snb in
  let exact = Triangle_stats.build ds.graph in
  let sampled = Triangle_stats.build ~max_wedges:5_000 ds.graph in
  Alcotest.(check bool) "sampled is flagged" true (not sampled.exact || exact.exact);
  (* a sampled rate should land in the same ballpark as the exact one *)
  if exact.exact && not sampled.exact then
    Alcotest.(check bool)
      (Printf.sprintf "sampled %.4f vs exact %.4f" sampled.rate_directed
         exact.rate_directed)
      true
      (Float.abs (sampled.rate_directed -. exact.rate_directed)
      < Float.max 0.05 (0.5 *. exact.rate_directed))

let test_planner_records_cycle_len () =
  let alg = Planner.plan (Lazy.force triangle_pattern) in
  let found = ref false in
  Array.iter
    (fun op ->
      match (op : Algebra.op) with
      | Merge_on { cycle_len; _ } ->
          found := true;
          Alcotest.(check (option int)) "triangle cycle" (Some 3) cycle_len
      | _ -> ())
    alg.ops;
  Alcotest.(check bool) "merge present" true !found

let test_planner_records_square_cycle () =
  let square =
    Pattern.make
      ~nodes:(Array.init 4 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2; raw_rel 2 3; raw_rel 3 0 |]
  in
  let alg = Planner.plan square in
  Array.iter
    (fun op ->
      match (op : Algebra.op) with
      | Algebra.Merge_on { cycle_len; _ } ->
          Alcotest.(check (option int)) "square cycle" (Some 4) cycle_len
      | _ -> ())
    alg.ops

let test_config_name_and_flag () =
  Alcotest.(check string) "A-LHDT" "A-LHDT" (Lpp_core.Config.name Lpp_core.Config.a_lhdt);
  Alcotest.(check bool) "not in the paper's six" false
    (List.mem Lpp_core.Config.a_lhdt Lpp_core.Config.all)

let test_triangle_merge_exact_on_triangle_free () =
  (* tripartite X→Y→Z→X where the Z→X edges are offset so that no wedge ever
     closes: the directed-triangle truth is 0; independence keeps A-LHD
     positive while the closure rate drives A-LHDT to exactly 0 *)
  let m = 12 in
  let b = Lpp_pgraph.Graph_builder.create () in
  let layer l = Array.init m (fun _ -> Lpp_pgraph.Graph_builder.add_node b ~labels:[ l ] ~props:[]) in
  let xs = layer "X" and ys = layer "Y" and zs = layer "Z" in
  let e src dst = ignore (Lpp_pgraph.Graph_builder.add_rel b ~src ~dst ~rel_type:"e" ~props:[]) in
  Array.iteri (fun i x -> e x ys.(i); e x ys.((i + 1) mod m)) xs;
  Array.iteri (fun i y -> e y zs.(i); e y zs.((i + 2) mod m)) ys;
  Array.iteri (fun i z -> e z xs.((i + 6) mod m)) zs;
  let g = Lpp_pgraph.Graph_builder.freeze b in
  let cat = Lpp_stats.Catalog.build g in
  let p = Lazy.force triangle_pattern in
  let base = Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd cat p in
  let tri = Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhdt cat p in
  Alcotest.(check bool) "independence overestimates" true (base > 0.0);
  Alcotest.(check (float 1e-9)) "closure rate knows better" 0.0 tri

let test_triangle_merge_reasonable_on_snb () =
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  let p = Lazy.force triangle_pattern in
  let truth =
    match Lpp_exec.Matcher.count ~budget:100_000_000 g p with
    | Lpp_exec.Matcher.Count c -> float_of_int c
    | Budget_exceeded -> Alcotest.fail "budget"
  in
  let q config =
    Lpp_harness.Qerror.q_error ~truth
      ~estimate:(Lpp_core.Estimator.estimate_pattern config ds.catalog p)
  in
  let tri = q Lpp_core.Config.a_lhdt in
  Alcotest.(check bool)
    (Printf.sprintf "A-LHDT within a small factor of truth (q=%.2f)" tri)
    true (tri < 8.0)

let test_triangle_config_matches_alhd_on_acyclic () =
  (* without a 3-cycle the two configurations are identical *)
  let ds = Lazy.force Fixtures.small_snb in
  let p =
    Pattern.make
      ~nodes:(Array.init 3 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2 |]
  in
  Alcotest.(check (float 0.0)) "same on chains"
    (Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd ds.catalog p)
    (Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhdt ds.catalog p)

let test_triangle_memory () =
  let g, _ = Fixtures.triangle () in
  Alcotest.(check bool) "tiny footprint" true
    (Triangle_stats.memory_bytes (Triangle_stats.build g) <= 64)

let suite =
  [
    Alcotest.test_case "triangles: exact census" `Quick test_stats_on_triangle_graph;
    Alcotest.test_case "triangles: triangle-free" `Quick
      test_stats_on_triangle_free_graph;
    Alcotest.test_case "triangles: sampling" `Quick test_stats_sampled;
    Alcotest.test_case "triangles: planner 3-cycle" `Quick test_planner_records_cycle_len;
    Alcotest.test_case "triangles: planner 4-cycle" `Quick
      test_planner_records_square_cycle;
    Alcotest.test_case "triangles: config" `Quick test_config_name_and_flag;
    Alcotest.test_case "triangles: exact on triangle-free" `Quick
      test_triangle_merge_exact_on_triangle_free;
    Alcotest.test_case "triangles: reasonable on SNB" `Quick
      test_triangle_merge_reasonable_on_snb;
    Alcotest.test_case "triangles: inert on acyclic" `Quick
      test_triangle_config_matches_alhd_on_acyclic;
    Alcotest.test_case "triangles: memory" `Quick test_triangle_memory;
  ]
