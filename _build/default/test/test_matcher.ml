(* Tests for Lpp_exec.Matcher and Lpp_exec.Reference. *)

open Lpp_pattern
open Lpp_exec

let raw_node ?(labels = [||]) ?(props = [||]) () =
  { Pattern.n_labels = labels; n_props = props }

let raw_rel ?(types = [||]) ?(directed = true) ?(props = [||]) src dst =
  { Pattern.r_src = src; r_dst = dst; r_types = types; r_directed = directed;
    r_props = props; r_hops = None }

let count ?semantics ?budget g p =
  match Matcher.count ?semantics ?budget g p with
  | Matcher.Count c -> c
  | Budget_exceeded -> Alcotest.fail "unexpected budget exhaustion"

let label g name =
  Option.get (Lpp_pgraph.Interner.find_opt (Lpp_pgraph.Graph.labels g) name)

let key g name =
  Option.get (Lpp_pgraph.Interner.find_opt (Lpp_pgraph.Graph.prop_keys g) name)

let typ g name =
  Option.get (Lpp_pgraph.Interner.find_opt (Lpp_pgraph.Graph.rel_types g) name)

let test_single_node_counts () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let all = Pattern.make ~nodes:[| raw_node () |] ~rels:[||] in
  Alcotest.(check int) "all nodes" 6 (count g all);
  let students =
    Pattern.make ~nodes:[| raw_node ~labels:[| label g "Student" |] () |] ~rels:[||]
  in
  Alcotest.(check int) "students C,E,F" 3 (count g students);
  let multi =
    Pattern.make
      ~nodes:[| raw_node ~labels:[| label g "Student"; label g "Tutor" |] () |]
      ~rels:[||]
  in
  Alcotest.(check int) "student+tutor is only C" 1 (count g multi)

let test_property_predicates () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let with_semester =
    Pattern.make
      ~nodes:[| raw_node ~props:[| (key g "semester", Pattern.Exists) |] () |]
      ~rels:[||]
  in
  Alcotest.(check int) "only F has semester" 1 (count g with_semester);
  let eq_ok =
    Pattern.make
      ~nodes:
        [| raw_node ~props:[| (key g "semester", Pattern.Eq (Lpp_pgraph.Value.Int 3)) |] () |]
      ~rels:[||]
  in
  Alcotest.(check int) "semester = 3" 1 (count g eq_ok);
  let eq_wrong =
    Pattern.make
      ~nodes:
        [| raw_node ~props:[| (key g "semester", Pattern.Eq (Lpp_pgraph.Value.Int 4)) |] () |]
      ~rels:[||]
  in
  Alcotest.(check int) "semester = 4 matches nothing" 0 (count g eq_wrong)

let test_directed_edges () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let attends =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~types:[| typ g "attends" |] 0 1 |]
  in
  Alcotest.(check int) "4 attends rels" 4 (count g attends);
  let attends_rev =
    Pattern.make
      ~nodes:[| raw_node ~labels:[| label g "Course" |] (); raw_node () |]
      ~rels:[| raw_rel ~types:[| typ g "attends" |] 0 1 |]
  in
  Alcotest.(check int) "no attends out of courses" 0 (count g attends_rev)

let test_undirected_edges () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let likes_undirected =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~types:[| typ g "likes" |] ~directed:false 0 1 |]
  in
  (* 2 likes rels × 2 orientations *)
  Alcotest.(check int) "undirected doubles" 4 (count g likes_undirected)

let test_untyped_edges () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let any_edge =
    Pattern.make ~nodes:[| raw_node (); raw_node () |] ~rels:[| raw_rel 0 1 |]
  in
  Alcotest.(check int) "all 9 rels" 9 (count g any_edge)

let test_chain_two_hops () =
  let f = Fixtures.campus () in
  let g = f.graph in
  (* Student -attends-> Course <-teaches- Teacher: E/A/B? B teaches A and D.
     attends into A: C,E; into D: E,F. So pairs: (C,A,B),(E,A,B),(E,D,B),(F,D,B) *)
  let p =
    Pattern.make
      ~nodes:
        [| raw_node ~labels:[| label g "Student" |] ();
           raw_node ~labels:[| label g "Course" |] ();
           raw_node ~labels:[| label g "Teacher" |] () |]
      ~rels:
        [| raw_rel ~types:[| typ g "attends" |] 0 1;
           raw_rel ~types:[| typ g "teaches" |] 2 1 |]
  in
  Alcotest.(check int) "student-course-teacher" 4 (count g p)

let test_cypher_vs_homomorphism () =
  let g, _ = Fixtures.triangle () in
  (* a 2-chain of e-rels: under homomorphism a->b->a counts too *)
  let p =
    Pattern.make
      ~nodes:(Array.init 3 (fun _ -> raw_node ()))
      ~rels:[| raw_rel ~types:[| typ g "e" |] 0 1;
               raw_rel ~types:[| typ g "e" |] 1 2 |]
  in
  let cy = count ~semantics:Semantics.Cypher g p in
  let hom = count ~semantics:Semantics.Homomorphism g p in
  Alcotest.(check bool) "hom >= cypher" true (hom >= cy);
  (* In the triangle + pendant graph: walks of length 2 following directions:
     t0->t1->t2, t1->t2->t0, t2->t0->t1, t1->t2->p — all use distinct rels,
     so both semantics agree here. *)
  Alcotest.(check int) "cypher chains" 4 cy;
  Alcotest.(check int) "hom chains" 4 hom

let test_edge_isomorphism () =
  (* single undirected rel matched as a 2-cycle pattern: homomorphism allows
     reusing the rel in both directions is impossible (directions), use two
     parallel opposite rels instead *)
  let b = Lpp_pgraph.Graph_builder.create () in
  let n0 = Lpp_pgraph.Graph_builder.add_node b ~labels:[] ~props:[] in
  let n1 = Lpp_pgraph.Graph_builder.add_node b ~labels:[] ~props:[] in
  ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:n0 ~dst:n1 ~rel_type:"e" ~props:[]);
  let g = Lpp_pgraph.Graph_builder.freeze b in
  (* pattern: two undirected rels between v0 and v1 — needs two distinct rels
     under Cypher, but only one exists *)
  let p =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~directed:false 0 1; raw_rel ~directed:false 0 1 |]
  in
  Alcotest.(check int) "cypher: no reuse" 0 (count ~semantics:Semantics.Cypher g p);
  Alcotest.(check bool) "homomorphism: reuse allowed" true
    (count ~semantics:Semantics.Homomorphism g p > 0)

let test_node_homomorphism_allowed () =
  (* Cypher allows two pattern nodes to bind the same graph node *)
  let b = Lpp_pgraph.Graph_builder.create () in
  let n0 = Lpp_pgraph.Graph_builder.add_node b ~labels:[] ~props:[] in
  let n1 = Lpp_pgraph.Graph_builder.add_node b ~labels:[] ~props:[] in
  ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:n0 ~dst:n1 ~rel_type:"a" ~props:[]);
  ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:n1 ~dst:n0 ~rel_type:"a" ~props:[]);
  let g = Lpp_pgraph.Graph_builder.freeze b in
  (* chain v0 -> v1 -> v2: n0->n1->n0 binds v0 and v2 to n0 *)
  let p =
    Pattern.make
      ~nodes:(Array.init 3 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2 |]
  in
  Alcotest.(check int) "node reuse fine under cypher" 2 (count g p)

let test_budget () =
  let ds = Lazy.force Fixtures.small_snb in
  let p =
    Pattern.make
      ~nodes:(Array.init 5 (fun _ -> raw_node ()))
      ~rels:[| raw_rel ~directed:false 0 1; raw_rel ~directed:false 1 2;
               raw_rel ~directed:false 2 3; raw_rel ~directed:false 3 4 |]
  in
  (match Matcher.count ~budget:1000 ds.graph p with
  | Matcher.Budget_exceeded -> ()
  | Count c -> Alcotest.failf "expected budget exhaustion, got %d" c)

let test_enumerate () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let p =
    Pattern.make
      ~nodes:[| raw_node ~labels:[| label g "Student" |] () |]
      ~rels:[||]
  in
  let bindings = Matcher.enumerate g p in
  Alcotest.(check int) "3 bindings" 3 (List.length bindings);
  List.iter
    (fun (b : Matcher.binding) ->
      Alcotest.(check int) "one node var" 1 (Array.length b.nodes);
      Alcotest.(check bool) "bound to a student" true
        (Lpp_pgraph.Graph.node_has_label g b.nodes.(0) (label g "Student")))
    bindings;
  let limited = Matcher.enumerate ~limit:2 g p in
  Alcotest.(check int) "limit respected" 2 (List.length limited)

let test_reference_max_intermediate () =
  let ds = Lazy.force Fixtures.small_snb in
  let p =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~directed:false 0 1 |]
  in
  let alg = Planner.plan p in
  Alcotest.(check bool) "refuses huge intermediates" true
    (Reference.count ~max_intermediate:100 ds.graph alg = None)

let suite =
  [
    Alcotest.test_case "matcher: single node" `Quick test_single_node_counts;
    Alcotest.test_case "matcher: properties" `Quick test_property_predicates;
    Alcotest.test_case "matcher: directed" `Quick test_directed_edges;
    Alcotest.test_case "matcher: undirected" `Quick test_undirected_edges;
    Alcotest.test_case "matcher: untyped" `Quick test_untyped_edges;
    Alcotest.test_case "matcher: 2-hop chain" `Quick test_chain_two_hops;
    Alcotest.test_case "matcher: cypher vs hom" `Quick test_cypher_vs_homomorphism;
    Alcotest.test_case "matcher: edge isomorphism" `Quick test_edge_isomorphism;
    Alcotest.test_case "matcher: node homomorphism" `Quick
      test_node_homomorphism_allowed;
    Alcotest.test_case "matcher: budget" `Quick test_budget;
    Alcotest.test_case "matcher: enumerate" `Quick test_enumerate;
    Alcotest.test_case "reference: size guard" `Quick test_reference_max_intermediate;
  ]
