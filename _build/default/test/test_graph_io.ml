(* Tests for Lpp_pgraph.Graph_io: round-trips and malformed input. *)

open Lpp_pgraph

let roundtrip g =
  let path = Filename.temp_file "lpp_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save g path;
      match Graph_io.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok g' -> g')

let graphs_equal g g' =
  Graph.node_count g = Graph.node_count g'
  && Graph.rel_count g = Graph.rel_count g'
  && Graph.property_count g = Graph.property_count g'
  && Graph.fold_nodes g ~init:true ~f:(fun acc nd ->
         acc
         && Graph.node_labels g nd = Graph.node_labels g' nd
         && Graph.node_props g nd = Graph.node_props g' nd)
  && Graph.fold_rels g ~init:true ~f:(fun acc r ->
         acc
         && Graph.rel_src g r = Graph.rel_src g' r
         && Graph.rel_dst g r = Graph.rel_dst g' r
         && Graph.rel_type g r = Graph.rel_type g' r
         && Graph.rel_props g r = Graph.rel_props g' r)

let names_equal g g' =
  let same i i' =
    Interner.size i = Interner.size i'
    && Interner.fold i ~init:true ~f:(fun acc id name ->
           acc && Interner.name i' id = name)
  in
  same (Graph.labels g) (Graph.labels g')
  && same (Graph.rel_types g) (Graph.rel_types g')
  && same (Graph.prop_keys g) (Graph.prop_keys g')

let test_roundtrip_campus () =
  let g = (Fixtures.campus ()).graph in
  let g' = roundtrip g in
  Alcotest.(check bool) "structure preserved" true (graphs_equal g g');
  Alcotest.(check bool) "vocabulary preserved" true (names_equal g g')

let test_roundtrip_special_values () =
  let b = Graph_builder.create () in
  let n =
    Graph_builder.add_node b
      ~labels:[ "Weird\tLabel"; "Line\nBreak" ]
      ~props:
        [ ("tabbed", Value.Str "a\tb");
          ("multiline", Value.Str "a\nb\\c");
          ("float", Value.Float 0.1);
          ("neg", Value.Int (-42));
          ("flag", Value.Bool false) ]
  in
  let _ =
    Graph_builder.add_rel b ~src:n ~dst:n ~rel_type:"self"
      ~props:[ ("w", Value.Float infinity) ]
  in
  let g = Graph_builder.freeze b in
  let g' = roundtrip g in
  Alcotest.(check bool) "escapes round-trip" true (graphs_equal g g');
  Alcotest.(check bool) "names round-trip" true (names_equal g g')

let test_roundtrip_snb_stats () =
  (* the statistics catalog built on a reloaded graph is identical *)
  let ds = Lazy.force Fixtures.small_snb in
  let g' = roundtrip ds.graph in
  let c = ds.catalog and c' = Lpp_stats.Catalog.build g' in
  Alcotest.(check int) "NC(*)" (Lpp_stats.Catalog.nc_star c) (Lpp_stats.Catalog.nc_star c');
  for l = 0 to Graph.label_count ds.graph - 1 do
    Alcotest.(check int) "NC(l)" (Lpp_stats.Catalog.nc c l) (Lpp_stats.Catalog.nc c' l)
  done;
  Alcotest.(check int) "memory identical"
    (Lpp_stats.Catalog.memory_bytes_advanced c)
    (Lpp_stats.Catalog.memory_bytes_advanced c')

let read_string s =
  let path = Filename.temp_file "lpp_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Graph_io.load path)

let test_bad_inputs () =
  let expect_error s =
    match read_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected failure for %S" s
  in
  expect_error "";
  expect_error "not-the-magic\n";
  expect_error "lpp-graph v1\nnode\t5\n";
  expect_error "lpp-graph v1\nnode\t0\t7\n" (* label id out of range *);
  expect_error "lpp-graph v1\nnode\t0\nrel\t0\t0\t3\t0\n" (* endpoint range *);
  expect_error "lpp-graph v1\ngarbage line\n";
  expect_error "lpp-graph v1\nnode\t0\nnprop\t0\t0\tq:huh\n"

let test_missing_file () =
  Alcotest.(check bool) "load missing is Error" true
    (Result.is_error (Graph_io.load "/nonexistent/path/graph.txt"))

let suite =
  [
    Alcotest.test_case "io: campus roundtrip" `Quick test_roundtrip_campus;
    Alcotest.test_case "io: escapes" `Quick test_roundtrip_special_values;
    Alcotest.test_case "io: stats identical" `Quick test_roundtrip_snb_stats;
    Alcotest.test_case "io: malformed input" `Quick test_bad_inputs;
    Alcotest.test_case "io: missing file" `Quick test_missing_file;
  ]
