(* Tests for variable-length paths (the paper's future-work extension):
   matcher semantics, reference agreement, estimator behaviour. *)

open Lpp_pattern

let raw_node ?(labels = [||]) () = { Pattern.n_labels = labels; n_props = [||] }

let raw_rel ?(types = [||]) ?(directed = true) ?hops src dst =
  { Pattern.r_src = src; r_dst = dst; r_types = types; r_directed = directed;
    r_props = [||]; r_hops = hops }

let count ?semantics g p =
  match Lpp_exec.Matcher.count ?semantics g p with
  | Lpp_exec.Matcher.Count c -> c
  | Budget_exceeded -> Alcotest.fail "budget"

(* a directed 5-ring: 0→1→2→3→4→0, all type "k", all label "N" *)
let ring n =
  let b = Lpp_pgraph.Graph_builder.create () in
  let nodes =
    Array.init n (fun _ -> Lpp_pgraph.Graph_builder.add_node b ~labels:[ "N" ] ~props:[])
  in
  for i = 0 to n - 1 do
    ignore
      (Lpp_pgraph.Graph_builder.add_rel b ~src:nodes.(i)
         ~dst:nodes.((i + 1) mod n)
         ~rel_type:"k" ~props:[])
  done;
  Lpp_pgraph.Graph_builder.freeze b

let test_hop_range_validation () =
  Alcotest.check_raises "lo=0 invalid" (Invalid_argument "Pattern.make: invalid hop range")
    (fun () ->
      ignore
        (Pattern.make
           ~nodes:[| raw_node (); raw_node () |]
           ~rels:[| raw_rel ~hops:(0, 2) 0 1 |]));
  Alcotest.check_raises "hi<lo invalid" (Invalid_argument "Pattern.make: invalid hop range")
    (fun () ->
      ignore
        (Pattern.make
           ~nodes:[| raw_node (); raw_node () |]
           ~rels:[| raw_rel ~hops:(3, 2) 0 1 |]))

let test_ring_path_counts () =
  let g = ring 5 in
  let pattern hops =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~hops 0 1 |]
  in
  (* every node has exactly one outgoing path of each length *)
  Alcotest.(check int) "*1..1 = 5" 5 (count g (pattern (1, 1)));
  Alcotest.(check int) "*1..3 = 15" 15 (count g (pattern (1, 3)));
  Alcotest.(check int) "*2..4 = 15" 15 (count g (pattern (2, 4)));
  (* length-5 paths wrap the full ring and end at the start node *)
  Alcotest.(check int) "*5..5 = 5" 5 (count g (pattern (5, 5)));
  (* length 6 would have to reuse a relationship: excluded under Cypher *)
  Alcotest.(check int) "*6..6 = 0 (edge iso)" 0 (count g (pattern (6, 6)));
  Alcotest.(check int) "*6..6 hom reuses rels" 5
    (count ~semantics:Lpp_exec.Semantics.Homomorphism g (pattern (6, 6)))

let test_hops_equal_unrolled_chain () =
  (* on the campus graph: (v)-[*2..2]->(w) untyped equals the explicit 2-chain *)
  let f = Fixtures.campus () in
  let hops =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~hops:(2, 2) 0 1 |]
  in
  let chain =
    Pattern.make
      ~nodes:[| raw_node (); raw_node (); raw_node () |]
      ~rels:[| raw_rel 0 1; raw_rel 1 2 |]
  in
  Alcotest.(check int) "*2..2 ≡ 2-chain" (count f.graph chain) (count f.graph hops)

let test_hops_with_label_endpoint () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let person =
    Option.get (Lpp_pgraph.Interner.find_opt (Lpp_pgraph.Graph.labels g) "Person")
  in
  let course =
    Option.get (Lpp_pgraph.Interner.find_opt (Lpp_pgraph.Graph.labels g) "Course")
  in
  let p =
    Pattern.make
      ~nodes:[| raw_node ~labels:[| person |] (); raw_node ~labels:[| course |] () |]
      ~rels:[| raw_rel ~hops:(1, 2) 0 1 |]
  in
  (* direct person→course rels: teaches B→A, B→D, attends C→A, E→A, E→D, F→D
     (6). 2-hop person→·→course paths: C→B→A and C→B→D (assistantOf+teaches),
     E→C→A (likes+attends), C→E→A and C→E→D (likes+attends). So 11 total. *)
  Alcotest.(check int) "person -[*1..2]-> course" 11 (count g p)

let test_reference_agrees_on_hops () =
  let f = Fixtures.campus () in
  let rng = Lpp_util.Rng.create 6021 in
  for _ = 1 to 60 do
    let n = Lpp_util.Rng.int_in rng 2 3 in
    let nodes = Array.init n (fun _ -> raw_node ()) in
    let rels = ref [] in
    for i = 1 to n - 1 do
      let j = Lpp_util.Rng.int rng i in
      let hops =
        if Lpp_util.Rng.coin rng 0.6 then
          Some (Lpp_util.Rng.int_in rng 1 2, Lpp_util.Rng.int_in rng 2 3)
        else None
      in
      let hops =
        match hops with
        | Some (lo, hi) when hi < lo -> Some (hi, lo)
        | other -> other
      in
      rels :=
        raw_rel ?hops ~directed:(Lpp_util.Rng.coin rng 0.7) i j :: !rels
    done;
    let p = Pattern.make ~nodes ~rels:(Array.of_list !rels) in
    let alg = Lpp_pattern.Planner.plan p in
    match
      ( Lpp_exec.Matcher.count ~budget:2_000_000 f.graph p,
        Lpp_exec.Reference.count ~max_intermediate:100_000 f.graph alg )
    with
    | Lpp_exec.Matcher.Count c, Some r ->
        Alcotest.(check int)
          (Format.asprintf "hops: matcher=reference on %a" (Pattern.pp ~names:None) p)
          c r
    | _ -> ()
  done

let test_estimator_exact_on_ring () =
  let g = ring 7 in
  let cat = Lpp_stats.Catalog.build g in
  let pattern hops =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~hops 0 1 |]
  in
  List.iter
    (fun ((lo, hi), expect) ->
      let est =
        Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd cat
          (pattern (lo, hi))
      in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "*%d..%d" lo hi)
        expect est)
    [ ((1, 1), 7.0); ((1, 3), 21.0); ((2, 2), 7.0); ((2, 4), 21.0) ]

let test_estimator_hops_propagates_labels () =
  (* bipartite L→R: a 2-hop path L→R→? has nowhere to go, so *2..2 ≈ 0 *)
  let g = Fixtures.bipartite ~k_left:6 ~k_right:3 ~deg:2 in
  let cat = Lpp_stats.Catalog.build g in
  let p =
    Pattern.make
      ~nodes:
        [| raw_node
             ~labels:
               [| Option.get
                    (Lpp_pgraph.Interner.find_opt
                       (Lpp_pgraph.Graph.labels g) "L") |]
             ();
           raw_node () |]
      ~rels:[| raw_rel ~hops:(2, 2) 0 1 |]
  in
  let est = Lpp_core.Estimator.estimate_pattern Lpp_core.Config.a_lhd cat p in
  Alcotest.(check (float 1e-6)) "dead-ends after one hop" 0.0 est

let test_baselines_reject_hops () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let p =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:
        [| raw_rel
             ~types:
               [| Option.get
                    (Lpp_pgraph.Interner.find_opt
                       (Lpp_pgraph.Graph.rel_types g) "attends") |]
             ~hops:(1, 2) 0 1 |]
  in
  Alcotest.(check bool) "neo4j" false (Lpp_baselines.Neo4j_est.supports p);
  Alcotest.(check bool) "csets" false (Lpp_baselines.Csets.supports p);
  Alcotest.(check bool) "wj" false (Lpp_baselines.Wander_join.supports p);
  Alcotest.(check bool) "sumrdf" false (Lpp_baselines.Sumrdf.supports p)

let test_pp_shows_hops () =
  let p =
    Pattern.make
      ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel ~hops:(1, 3) 0 1 |]
  in
  let s = Format.asprintf "%a" (Pattern.pp ~names:None) p in
  Alcotest.(check bool) "renders *1..3" true (Str_contains.contains s "*1..3")

let suite =
  [
    Alcotest.test_case "hops: validation" `Quick test_hop_range_validation;
    Alcotest.test_case "hops: ring counts" `Quick test_ring_path_counts;
    Alcotest.test_case "hops: ≡ unrolled chain" `Quick test_hops_equal_unrolled_chain;
    Alcotest.test_case "hops: labeled endpoints" `Quick test_hops_with_label_endpoint;
    Alcotest.test_case "hops: reference agreement" `Quick test_reference_agrees_on_hops;
    Alcotest.test_case "hops: estimator exact on ring" `Quick test_estimator_exact_on_ring;
    Alcotest.test_case "hops: label propagation" `Quick
      test_estimator_hops_propagates_labels;
    Alcotest.test_case "hops: baselines reject" `Quick test_baselines_reject_hops;
    Alcotest.test_case "hops: pretty-printing" `Quick test_pp_shows_hops;
  ]
