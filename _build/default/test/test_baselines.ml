(* Tests for Lpp_baselines: Neo4j_est, Csets, Wander_join, Sumrdf. *)

open Lpp_pattern
open Lpp_baselines

let check_est = Alcotest.(check (float 1e-6))

let node = Pattern.node_spec

let rel = Pattern.rel_spec

(* ---------------- Neo4j / Gubichev ---------------- *)

let test_neo4j_single_node () =
  let f = Fixtures.campus () in
  let cat = Lpp_stats.Catalog.build f.graph in
  let est = Neo4j_est.build cat in
  let p = Pattern.of_spec f.graph [ node ~labels:[ "Student" ] () ] [] in
  check_est "students exact" 3.0 (Neo4j_est.estimate est p);
  let p2 = Pattern.of_spec f.graph [ node () ] [] in
  check_est "all nodes" 6.0 (Neo4j_est.estimate est p2)

let test_neo4j_single_rel_exact () =
  let g = Fixtures.bipartite ~k_left:10 ~k_right:5 ~deg:3 in
  let cat = Lpp_stats.Catalog.build g in
  let est = Neo4j_est.build cat in
  let p =
    Pattern.of_spec g
      [ node ~labels:[ "L" ] (); node ~labels:[ "R" ] () ]
      [ rel ~types:[ "t" ] ~src:0 ~dst:1 () ]
  in
  check_est "single rel exact" 30.0 (Neo4j_est.estimate est p)

let test_neo4j_chain_underestimates () =
  (* The paper's core criticism: independence across relationships makes
     Neo4j underestimate chains. Build a 2-hop chain through a single hub
     diluted by an edgeless decoy of the same label, so true count is deg². *)
  let b = Lpp_pgraph.Graph_builder.create () in
  let add l = Lpp_pgraph.Graph_builder.add_node b ~labels:[ l ] ~props:[] in
  let hub = add "M" in
  let e src dst ty =
    ignore (Lpp_pgraph.Graph_builder.add_rel b ~src ~dst ~rel_type:ty ~props:[])
  in
  for _ = 1 to 5 do
    let a = add "A" in
    e a hub "in_t"
  done;
  for _ = 1 to 5 do
    let c = add "C" in
    e hub c "out_t"
  done;
  (* decoy: another M node with no edges, diluting the per-label averages *)
  let _ = add "M" in
  let g = Lpp_pgraph.Graph_builder.freeze b in
  let cat = Lpp_stats.Catalog.build g in
  let est = Neo4j_est.build cat in
  let p =
    Pattern.of_spec g
      [ node ~labels:[ "A" ] (); node ~labels:[ "M" ] (); node ~labels:[ "C" ] () ]
      [ rel ~types:[ "in_t" ] ~src:0 ~dst:1 ();
        rel ~types:[ "out_t" ] ~src:1 ~dst:2 () ]
  in
  (* truth: 25 (all A × all C through the hub) *)
  let neo = Neo4j_est.estimate est p in
  Alcotest.(check bool) "underestimates the chain" true (neo < 25.0)

(* The paper's aggregate claim: on a real workload, label probability
   propagation with the *same simple statistics* (S-L) beats Neo4j's
   estimator in median q-error (Section 6.1, Figure 5a). *)
let test_s_l_beats_neo4j_in_aggregate () =
  let ds = Lazy.force Fixtures.small_snb in
  let rng = Lpp_util.Rng.create 2025 in
  let spec =
    { (Lpp_workload.Query_gen.default_spec With_props) with
      target = 30; attempts = 120; truth_budget = 3_000_000 }
  in
  let queries = Lpp_workload.Query_gen.generate rng ds spec in
  Alcotest.(check bool) "enough queries" true (List.length queries >= 20);
  let median tech =
    let ms = Lpp_harness.Runner.run ~measure_time:false tech queries in
    match Lpp_util.Quantiles.summarize (Lpp_harness.Runner.q_errors ms) with
    | Some s -> s.median
    | None -> Alcotest.fail "no measurements"
  in
  let s_l = median (Lpp_harness.Technique.ours Lpp_core.Config.s_l ds.catalog) in
  let neo = median (Lpp_harness.Technique.neo4j ds.catalog) in
  Alcotest.(check bool)
    (Printf.sprintf "S-L median %.2f <= Neo4j median %.2f" s_l neo)
    true (s_l <= neo)

let test_neo4j_supports_everything () =
  let f = Fixtures.campus () in
  let p =
    Pattern.of_spec f.graph
      [ node (); node () ]
      [ rel ~directed:false ~src:0 ~dst:1 () ]
  in
  Alcotest.(check bool) "supports undirected untyped" true (Neo4j_est.supports p)

(* ---------------- CSets ---------------- *)

let test_csets_star_exact () =
  (* uniform star data: every X node has exactly 2 "a" out-edges and 1 "b"
     out-edge; the star query (v)-[a]->(), (v)-[a]->(), (v)-[b]->() has
     2·1·1 = 2 ordered a-pairs × 1 b = count 2 per node under edge-iso. *)
  let b = Lpp_pgraph.Graph_builder.create () in
  let n_centres = 4 in
  for _ = 1 to n_centres do
    let c = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "X" ] ~props:[] in
    for _ = 1 to 2 do
      let leaf = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "Y" ] ~props:[] in
      ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:c ~dst:leaf ~rel_type:"a" ~props:[])
    done;
    let leaf = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "Y" ] ~props:[] in
    ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:c ~dst:leaf ~rel_type:"b" ~props:[])
  done;
  let g = Lpp_pgraph.Graph_builder.freeze b in
  let cat = Lpp_stats.Catalog.build g in
  let est = Csets.build g cat in
  let p =
    Pattern.of_spec g
      [ node (); node (); node (); node () ]
      [ rel ~types:[ "a" ] ~src:0 ~dst:1 ();
        rel ~types:[ "a" ] ~src:0 ~dst:2 ();
        rel ~types:[ "b" ] ~src:0 ~dst:3 () ]
  in
  (* truth: per centre, ordered pairs of distinct a-rels (2) × b (1) = 2;
     4 centres → 8. The falling-factorial multiplicity model is exact here. *)
  check_est "uniform star exact" 8.0 (Csets.estimate est p);
  Alcotest.(check bool) "some sets collected" true (Csets.distinct_sets est > 0)

let test_csets_supports () =
  let f = Fixtures.campus () in
  let undirected =
    Pattern.of_spec f.graph [ node (); node () ]
      [ rel ~types:[ "likes" ] ~directed:false ~src:0 ~dst:1 () ]
  in
  Alcotest.(check bool) "no undirected" false (Csets.supports undirected);
  let untyped =
    Pattern.of_spec f.graph [ node (); node () ] [ rel ~src:0 ~dst:1 () ]
  in
  Alcotest.(check bool) "no untyped" false (Csets.supports untyped)

let test_csets_join_underestimates_chain () =
  (* CSets decomposes a 2-hop chain into two stars joined on the middle node
     with a 1/NC(✱) factor — the documented failure mode. *)
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  let p =
    Pattern.of_spec g
      [ node (); node ~labels:[ "Post" ] (); node () ]
      [ rel ~types:[ "HAS_CREATOR" ] ~src:1 ~dst:0 ();
        rel ~types:[ "LIKES" ] ~src:2 ~dst:1 () ]
  in
  let truth =
    match Lpp_exec.Matcher.count g p with
    | Lpp_exec.Matcher.Count c -> float_of_int c
    | Budget_exceeded -> Alcotest.fail "budget"
  in
  let est = Csets.build g ds.catalog in
  let c = Csets.estimate est p in
  Alcotest.(check bool) "positive" true (c > 0.0);
  Alcotest.(check bool) "systematically below truth" true (c < truth)

(* ---------------- Wander Join ---------------- *)

let test_wj_exact_on_single_rel () =
  let g = Fixtures.bipartite ~k_left:10 ~k_right:5 ~deg:3 in
  let wj = Wander_join.build g in
  let p =
    Pattern.of_spec g
      [ node ~labels:[ "L" ] (); node ~labels:[ "R" ] () ]
      [ rel ~types:[ "t" ] ~src:0 ~dst:1 () ]
  in
  (* A single-rel walk has weight = |rels of type t| and never dies: any
     number of walks gives the exact 30. *)
  let rng = Lpp_util.Rng.create 5 in
  check_est "single rel exact" 30.0 (Wander_join.estimate ~rng wj WJ_1 p)

let test_wj_unbiased_on_chain () =
  let g = Fixtures.bipartite ~k_left:6 ~k_right:6 ~deg:2 in
  (* chain R <- L -> R : truth = 6 × (2 choose ordered pairs) = 6×2×1 = 12 *)
  let p =
    Pattern.of_spec g
      [ node ~labels:[ "R" ] (); node ~labels:[ "L" ] (); node ~labels:[ "R" ] () ]
      [ rel ~types:[ "t" ] ~src:1 ~dst:0 (); rel ~types:[ "t" ] ~src:1 ~dst:2 () ]
  in
  let truth =
    match Lpp_exec.Matcher.count g p with
    | Lpp_exec.Matcher.Count c -> float_of_int c
    | Budget_exceeded -> Alcotest.fail "budget"
  in
  let wj = Wander_join.build g in
  let rng = Lpp_util.Rng.create 11 in
  (* average many WJ-100 estimates: should concentrate near the truth *)
  let n = 50 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Wander_join.estimate ~rng wj WJ_100 p
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f near truth %.2f" mean truth)
    true
    (Float.abs (mean -. truth) /. truth < 0.15)

let test_wj_supports () =
  let f = Fixtures.campus () in
  let multi_label =
    Pattern.of_spec f.graph
      [ node ~labels:[ "Student"; "Tutor" ] (); node () ]
      [ rel ~types:[ "likes" ] ~src:0 ~dst:1 () ]
  in
  Alcotest.(check bool) "no multi-label" false (Wander_join.supports multi_label);
  let with_prop =
    Pattern.of_spec f.graph
      [ node ~props:[ ("name", Pattern.Exists) ] (); node () ]
      [ rel ~types:[ "likes" ] ~src:0 ~dst:1 () ]
  in
  Alcotest.(check bool) "no props" false (Wander_join.supports with_prop)

let test_wj_walk_counts () =
  let g = Fixtures.bipartite ~k_left:5 ~k_right:5 ~deg:2 in
  let wj = Wander_join.build g in
  Alcotest.(check int) "WJ-1" 1 (Wander_join.walks wj WJ_1);
  Alcotest.(check int) "WJ-100" 100 (Wander_join.walks wj WJ_100);
  Alcotest.(check bool) "WJ-R scales" true (Wander_join.walks wj WJ_R >= 1000)

(* ---------------- SumRDF ---------------- *)

let test_sumrdf_exact_with_full_resolution () =
  (* with one bucket per label signature and uniform in-bucket structure the
     random-graph model is exact *)
  let g = Fixtures.bipartite ~k_left:10 ~k_right:5 ~deg:3 in
  let s = Sumrdf.build ~target_buckets:2 g in
  let p =
    Pattern.of_spec g
      [ node ~labels:[ "L" ] (); node ~labels:[ "R" ] () ]
      [ rel ~types:[ "t" ] ~src:0 ~dst:1 () ]
  in
  check_est "bipartite exact" 30.0 (Sumrdf.estimate s p)

let test_sumrdf_single_node () =
  let f = Fixtures.campus () in
  let s = Sumrdf.build f.graph in
  let p = Pattern.of_spec f.graph [ node ~labels:[ "Student" ] () ] [] in
  check_est "students" 3.0 (Sumrdf.estimate s p)

let test_sumrdf_more_buckets_more_accuracy () =
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  let p =
    Pattern.of_spec g
      [ node ~labels:[ "Person" ] (); node ~labels:[ "Forum" ] () ]
      [ rel ~types:[ "HAS_MEMBER" ] ~src:1 ~dst:0 () ]
  in
  let truth =
    match Lpp_exec.Matcher.count g p with
    | Lpp_exec.Matcher.Count c -> float_of_int c
    | Budget_exceeded -> Alcotest.fail "budget"
  in
  let coarse = Sumrdf.build ~target_buckets:8 g in
  let fine = Sumrdf.build ~target_buckets:512 g in
  Alcotest.(check bool) "more buckets" true
    (Sumrdf.bucket_count fine > Sumrdf.bucket_count coarse);
  let e_fine = Sumrdf.estimate fine p in
  (* single-rel estimates are exact at any resolution (multiplicities are
     totals); check sanity rather than strict improvement *)
  Alcotest.(check bool) "fine estimate near truth" true
    (Lpp_harness.Qerror.q_error ~truth ~estimate:e_fine < 1.5)

let test_sumrdf_memory_grows_with_buckets () =
  let ds = Lazy.force Fixtures.small_snb in
  let coarse = Sumrdf.build ~target_buckets:8 ds.graph in
  let fine = Sumrdf.build ~target_buckets:512 ds.graph in
  Alcotest.(check bool) "memory grows" true
    (Sumrdf.memory_bytes fine > Sumrdf.memory_bytes coarse)

let test_sumrdf_budget_returns () =
  let ds = Lazy.force Fixtures.small_snb in
  let s = Sumrdf.build ds.graph in
  let p =
    Pattern.of_spec ds.graph
      [ node (); node (); node (); node (); node () ]
      [ rel ~types:[ "KNOWS" ] ~src:0 ~dst:1 ();
        rel ~types:[ "KNOWS" ] ~src:1 ~dst:2 ();
        rel ~types:[ "KNOWS" ] ~src:2 ~dst:3 ();
        rel ~types:[ "KNOWS" ] ~src:3 ~dst:4 () ]
  in
  (* tiny budget: must terminate and return something finite *)
  let e = Sumrdf.estimate ~budget:1000 s p in
  Alcotest.(check bool) "finite under budget" true (Float.is_finite e && e >= 0.0)

let suite =
  [
    Alcotest.test_case "neo4j: single node" `Quick test_neo4j_single_node;
    Alcotest.test_case "neo4j: single rel exact" `Quick test_neo4j_single_rel_exact;
    Alcotest.test_case "neo4j: chain underestimates" `Quick
      test_neo4j_chain_underestimates;
    Alcotest.test_case "s-l beats neo4j in aggregate" `Slow
      test_s_l_beats_neo4j_in_aggregate;
    Alcotest.test_case "neo4j: supports all" `Quick test_neo4j_supports_everything;
    Alcotest.test_case "csets: star exact" `Quick test_csets_star_exact;
    Alcotest.test_case "csets: supports" `Quick test_csets_supports;
    Alcotest.test_case "csets: chain underestimates" `Quick
      test_csets_join_underestimates_chain;
    Alcotest.test_case "wj: single rel exact" `Quick test_wj_exact_on_single_rel;
    Alcotest.test_case "wj: unbiased chain" `Quick test_wj_unbiased_on_chain;
    Alcotest.test_case "wj: supports" `Quick test_wj_supports;
    Alcotest.test_case "wj: walk counts" `Quick test_wj_walk_counts;
    Alcotest.test_case "sumrdf: bipartite exact" `Quick
      test_sumrdf_exact_with_full_resolution;
    Alcotest.test_case "sumrdf: single node" `Quick test_sumrdf_single_node;
    Alcotest.test_case "sumrdf: resolution" `Quick test_sumrdf_more_buckets_more_accuracy;
    Alcotest.test_case "sumrdf: memory" `Quick test_sumrdf_memory_grows_with_buckets;
    Alcotest.test_case "sumrdf: budget" `Quick test_sumrdf_budget_returns;
  ]
