(* Tests for Lpp_stats: Label_hierarchy, Label_partition, Prop_stats, Catalog. *)

open Lpp_stats
open Lpp_pgraph

let label g name = Option.get (Interner.find_opt (Graph.labels g) name)

let typ g name = Option.get (Interner.find_opt (Graph.rel_types g) name)

let key g name = Option.get (Interner.find_opt (Graph.prop_keys g) name)

(* ---------------- Label_hierarchy ---------------- *)

let test_hierarchy_of_pairs () =
  (* 0 ⊑ 1 ⊑ 2; 3 unrelated *)
  let h = Label_hierarchy.of_pairs ~labels:4 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "direct" true (Label_hierarchy.is_strict_sublabel h 0 1);
  Alcotest.(check bool) "transitive" true (Label_hierarchy.is_strict_sublabel h 0 2);
  Alcotest.(check bool) "not reflexive" false (Label_hierarchy.is_strict_sublabel h 1 1);
  Alcotest.(check bool) "subeq reflexive" true (Label_hierarchy.subeq h 1 1);
  Alcotest.(check bool) "not inverted" false (Label_hierarchy.is_strict_sublabel h 2 0);
  Alcotest.(check bool) "unrelated" false (Label_hierarchy.related h 0 3);
  Alcotest.(check (list int)) "superlabels of 0" [ 1; 2 ] (Label_hierarchy.superlabels h 0);
  Alcotest.(check (list int)) "sublabels of 2" [ 0; 1 ] (Label_hierarchy.sublabels h 2)

let test_hierarchy_cycle_rejected () =
  Alcotest.check_raises "cycle" (Invalid_argument "Label_hierarchy: cyclic declaration")
    (fun () -> ignore (Label_hierarchy.of_pairs ~labels:2 [ (0, 1); (1, 0) ]))

let test_hierarchy_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Label_hierarchy.of_pairs: label id out of range") (fun () ->
      ignore (Label_hierarchy.of_pairs ~labels:2 [ (0, 5) ]))

let test_hierarchy_infer_campus () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let h = Label_hierarchy.infer g in
  let sub a b = Label_hierarchy.is_strict_sublabel h (label g a) (label g b) in
  Alcotest.(check bool) "Student ⊑ Person" true (sub "Student" "Person");
  Alcotest.(check bool) "Tutor ⊑ Person" true (sub "Tutor" "Person");
  Alcotest.(check bool) "Teacher ⊑ Person" true (sub "Teacher" "Person");
  Alcotest.(check bool) "Seminar ⊑ Course" true (sub "Seminar" "Course");
  Alcotest.(check bool) "Person not ⊑ Student" false (sub "Person" "Student");
  (* Tutor ⊑ Student holds *in this tiny data* (C is the only tutor and is a
     student) — inference is extent containment, so this is expected. *)
  Alcotest.(check bool) "Tutor ⊑ Student by extent" true (sub "Tutor" "Student");
  Alcotest.(check bool) "Student/Teacher unrelated" false
    (Label_hierarchy.related h (label g "Student") (label g "Teacher"))

let test_hierarchy_infer_equal_extents () =
  let b = Graph_builder.create () in
  let _ = Graph_builder.add_node b ~labels:[ "A"; "B" ] ~props:[] in
  let _ = Graph_builder.add_node b ~labels:[ "A"; "B" ] ~props:[] in
  let g = Graph_builder.freeze b in
  let h = Label_hierarchy.infer g in
  (* alias labels are oriented by id, no cycle *)
  let a = label g "A" and bb = label g "B" in
  Alcotest.(check bool) "exactly one direction" true
    (Label_hierarchy.is_strict_sublabel h (min a bb) (max a bb)
    && not (Label_hierarchy.is_strict_sublabel h (max a bb) (min a bb)))

let test_hierarchy_drop_redundant () =
  let h = Label_hierarchy.of_pairs ~labels:4 [ (0, 1); (2, 1) ] in
  (* selecting {0, 1}: 1 is implied by its sublabel 0 *)
  Alcotest.(check (list int)) "drops superlabel" [ 0 ]
    (Label_hierarchy.drop_redundant h [ 0; 1 ]);
  Alcotest.(check (list int)) "keeps unrelated" [ 0; 3 ]
    (Label_hierarchy.drop_redundant h [ 0; 3 ])

let test_hierarchy_maximal_among () =
  let h = Label_hierarchy.of_pairs ~labels:4 [ (0, 1); (2, 1) ] in
  Alcotest.(check (list int)) "keeps maximal" [ 1; 3 ]
    (Label_hierarchy.maximal_among h [ 0; 1; 2; 3 ])

let test_hierarchy_height () =
  Alcotest.(check int) "trivial height" 1
    (Label_hierarchy.height (Label_hierarchy.trivial 3));
  Alcotest.(check int) "empty height" 0
    (Label_hierarchy.height (Label_hierarchy.trivial 0));
  let h = Label_hierarchy.of_pairs ~labels:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "chain of 3 + root" 3 (Label_hierarchy.height h)

(* ---------------- Label_partition ---------------- *)

let test_partition_infer_campus () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let d = Label_partition.infer g in
  Alcotest.(check int) "two clusters" 2 (Label_partition.cluster_count d);
  let dis a b = Label_partition.disjoint d (label g a) (label g b) in
  Alcotest.(check bool) "Person/Course disjoint" true (dis "Person" "Course");
  Alcotest.(check bool) "Student/Seminar disjoint" true (dis "Student" "Seminar");
  Alcotest.(check bool) "Student/Teacher same cluster" false (dis "Student" "Teacher");
  Alcotest.(check bool) "never self-disjoint" false (dis "Person" "Person")

let test_partition_of_clusters () =
  let d = Label_partition.of_clusters ~labels:5 [ [ 0; 1 ]; [ 2 ] ] in
  (* 3 and 4 get singleton clusters *)
  Alcotest.(check int) "clusters" 4 (Label_partition.cluster_count d);
  Alcotest.(check bool) "cross disjoint" true (Label_partition.disjoint d 0 2);
  Alcotest.(check bool) "within cluster" false (Label_partition.disjoint d 0 1);
  Alcotest.(check bool) "singletons disjoint" true (Label_partition.disjoint d 3 4)

let test_partition_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Label_partition.of_clusters: duplicate label") (fun () ->
      ignore (Label_partition.of_clusters ~labels:3 [ [ 0; 1 ]; [ 1 ] ]))

let test_partition_trivial () =
  let d = Label_partition.trivial 4 in
  Alcotest.(check int) "one cluster" 1 (Label_partition.cluster_count d);
  Alcotest.(check bool) "nothing disjoint" false (Label_partition.disjoint d 0 3)

let test_partition_members_complete () =
  let f = Fixtures.campus () in
  let d = Label_partition.infer f.graph in
  let total =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 (Label_partition.clusters d)
  in
  Alcotest.(check int) "every label in exactly one cluster" 6 total

(* ---------------- Prop_stats ---------------- *)

let test_prop_stats_counts () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let ps = Prop_stats.build g in
  let name_key = key g "name" in
  (match Prop_stats.find ps (Node_label (label g "Person")) ~key:name_key with
  | None -> Alcotest.fail "expected entry"
  | Some e ->
      Alcotest.(check int) "4 persons" 4 e.owner_total;
      Alcotest.(check int) "all carry name" 4 e.with_key;
      Alcotest.(check int) "4 distinct names" 4 e.distinct);
  match Prop_stats.find ps Any_node ~key:name_key with
  | None -> Alcotest.fail "expected wildcard entry"
  | Some e ->
      Alcotest.(check int) "6 nodes total" 6 e.owner_total;
      Alcotest.(check int) "4 names" 4 e.with_key

let test_prop_stats_selectivity_exists () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let ps = Prop_stats.build g in
  let sel =
    Prop_stats.selectivity ps (Node_label (label g "Student"))
      ~key:(key g "semester") Lpp_pattern.Pattern.Exists
  in
  (* one of the three students has a semester *)
  Alcotest.(check (float 1e-9)) "1/3" (1.0 /. 3.0) sel

let test_prop_stats_selectivity_eq () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let ps = Prop_stats.build g in
  let sel_hit =
    Prop_stats.selectivity ps Any_node ~key:(key g "semester")
      (Lpp_pattern.Pattern.Eq (Value.Int 3))
  in
  Alcotest.(check (float 1e-9)) "mcv hit 1/6" (1.0 /. 6.0) sel_hit;
  let sel_miss =
    Prop_stats.selectivity ps Any_node ~key:(key g "semester")
      (Lpp_pattern.Pattern.Eq (Value.Int 99))
  in
  (* only one distinct value and it is an MCV: no tail mass *)
  Alcotest.(check (float 1e-9)) "tail miss" 0.0 sel_miss

let test_prop_stats_unknown_pair () =
  let f = Fixtures.campus () in
  let ps = Prop_stats.build f.graph in
  Alcotest.(check (float 1e-9)) "unknown owner/key" 0.0
    (Prop_stats.selectivity ps (Node_label 999) ~key:0 Lpp_pattern.Pattern.Exists)

let test_prop_stats_mcv_order () =
  let b = Graph_builder.create () in
  for i = 0 to 29 do
    let v = if i < 20 then "common" else Printf.sprintf "rare%d" i in
    ignore (Graph_builder.add_node b ~labels:[ "X" ] ~props:[ ("p", Value.Str v) ])
  done;
  let g = Graph_builder.freeze b in
  let ps = Prop_stats.build g in
  match Prop_stats.find ps Any_node ~key:(key g "p") with
  | None -> Alcotest.fail "entry expected"
  | Some e ->
      Alcotest.(check int) "mcv limit" Prop_stats.mcv_limit (Array.length e.mcvs);
      let v, c = e.mcvs.(0) in
      Alcotest.(check bool) "top mcv is the common value" true
        (Value.equal v (Value.Str "common") && c = 20);
      Alcotest.(check int) "distinct" 11 e.distinct;
      (* a non-MCV rare value gets the uniform tail share *)
      let rare_values_outside_mcv = 11 - Prop_stats.mcv_limit in
      let tail_mass = 30 - 20 - (Prop_stats.mcv_limit - 1) in
      let expect =
        float_of_int tail_mass /. float_of_int rare_values_outside_mcv /. 30.0
      in
      (* find a rare value that did not make it into the MCV list *)
      let in_mcv v = Array.exists (fun (mv, _) -> Value.equal mv v) e.mcvs in
      let rec first_non_mcv i =
        if i >= 30 then Alcotest.fail "no non-mcv value"
        else begin
          let v = Value.Str (Printf.sprintf "rare%d" i) in
          if in_mcv v then first_non_mcv (i + 1) else v
        end
      in
      let v = first_non_mcv 20 in
      Alcotest.(check (float 1e-9)) "tail selectivity" expect
        (Prop_stats.selectivity ps Any_node ~key:(key g "p")
           (Lpp_pattern.Pattern.Eq v))

(* ---------------- Catalog ---------------- *)

let test_catalog_nc () =
  let f = Fixtures.campus () in
  let c = Catalog.build f.graph in
  Alcotest.(check int) "NC(*)" 6 (Catalog.nc_star c);
  Alcotest.(check int) "NC(Person)" 4 (Catalog.nc c (label f.graph "Person"));
  Alcotest.(check int) "NC(Seminar)" 1 (Catalog.nc c (label f.graph "Seminar"));
  Alcotest.(check int) "NC unknown" 0 (Catalog.nc c 999)

(* brute-force rc for cross-checking *)
let brute_rc g ~dir ~node ~types ~other =
  let type_ok t = Array.length types = 0 || Array.exists (( = ) t) types in
  let has_opt nd = function
    | None -> true
    | Some l -> Graph.node_has_label g nd l
  in
  Graph.fold_rels g ~init:0 ~f:(fun acc r ->
      if not (type_ok (Graph.rel_type g r)) then acc
      else begin
        let s = Graph.rel_src g r and d = Graph.rel_dst g r in
        let out_match = has_opt s node && has_opt d other in
        let in_match = has_opt d node && has_opt s other in
        match (dir : Direction.t) with
        | Out -> if out_match then acc + 1 else acc
        | In -> if in_match then acc + 1 else acc
        | Both -> acc + (if out_match then 1 else 0) + if in_match then 1 else 0
      end)

let test_catalog_rc_exhaustive () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let c = Catalog.build g in
  let labels = None :: List.init (Graph.label_count g) (fun l -> Some l) in
  let type_choices =
    [||] :: List.init (Graph.rel_type_count g) (fun t -> [| t |])
  in
  List.iter
    (fun dir ->
      List.iter
        (fun node ->
          List.iter
            (fun other ->
              List.iter
                (fun types ->
                  Alcotest.(check int)
                    (Printf.sprintf "rc dir=%s node=%s other=%s types=%d"
                       (Direction.to_string dir)
                       (match node with None -> "*" | Some l -> string_of_int l)
                       (match other with None -> "*" | Some l -> string_of_int l)
                       (Array.length types))
                    (brute_rc g ~dir ~node ~types ~other)
                    (Catalog.rc c ~dir ~node ~types ~other))
                type_choices)
            labels)
        labels)
    Direction.all

let test_catalog_simple_rc () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let c = Catalog.build g in
  let attends = [| typ g "attends" |] in
  Alcotest.(check int) "students attend 4 (C,E×2,F)" 4
    (Catalog.simple_rc c ~dir:Out ~node:(Some (label g "Student")) ~types:attends);
  Alcotest.(check int) "courses attended 4" 4
    (Catalog.simple_rc c ~dir:In ~node:(Some (label g "Course")) ~types:attends)

let test_catalog_memory_ordering () =
  let ds = Lazy.force Fixtures.small_snb in
  let c = ds.catalog in
  Alcotest.(check bool) "simple < advanced" true
    (Catalog.memory_bytes_simple c < Catalog.memory_bytes_advanced c);
  Alcotest.(check bool) "alhd = advanced + optional + props" true
    (Catalog.memory_bytes_alhd c
    = Catalog.memory_bytes_advanced c + Catalog.memory_bytes_optional c
      + Catalog.memory_bytes_props c)

let test_catalog_rel_type_totals () =
  let f = Fixtures.campus () in
  let c = Catalog.build f.graph in
  Alcotest.(check int) "attends ×4" 4 (Catalog.rel_type_total c (typ f.graph "attends"));
  Alcotest.(check int) "teaches ×2" 2 (Catalog.rel_type_total c (typ f.graph "teaches"));
  Alcotest.(check int) "total rels" 9 (Catalog.rel_total c)

let suite =
  [
    Alcotest.test_case "hierarchy: of_pairs closure" `Quick test_hierarchy_of_pairs;
    Alcotest.test_case "hierarchy: cycle rejected" `Quick test_hierarchy_cycle_rejected;
    Alcotest.test_case "hierarchy: range" `Quick test_hierarchy_out_of_range;
    Alcotest.test_case "hierarchy: infer campus" `Quick test_hierarchy_infer_campus;
    Alcotest.test_case "hierarchy: equal extents" `Quick test_hierarchy_infer_equal_extents;
    Alcotest.test_case "hierarchy: drop_redundant" `Quick test_hierarchy_drop_redundant;
    Alcotest.test_case "hierarchy: maximal_among" `Quick test_hierarchy_maximal_among;
    Alcotest.test_case "hierarchy: height" `Quick test_hierarchy_height;
    Alcotest.test_case "partition: infer campus" `Quick test_partition_infer_campus;
    Alcotest.test_case "partition: of_clusters" `Quick test_partition_of_clusters;
    Alcotest.test_case "partition: duplicates" `Quick test_partition_duplicate_rejected;
    Alcotest.test_case "partition: trivial" `Quick test_partition_trivial;
    Alcotest.test_case "partition: members complete" `Quick test_partition_members_complete;
    Alcotest.test_case "props: counts" `Quick test_prop_stats_counts;
    Alcotest.test_case "props: exists selectivity" `Quick test_prop_stats_selectivity_exists;
    Alcotest.test_case "props: eq selectivity" `Quick test_prop_stats_selectivity_eq;
    Alcotest.test_case "props: unknown pair" `Quick test_prop_stats_unknown_pair;
    Alcotest.test_case "props: mcv order + tail" `Quick test_prop_stats_mcv_order;
    Alcotest.test_case "catalog: nc" `Quick test_catalog_nc;
    Alcotest.test_case "catalog: rc exhaustive" `Quick test_catalog_rc_exhaustive;
    Alcotest.test_case "catalog: simple rc" `Quick test_catalog_simple_rc;
    Alcotest.test_case "catalog: memory ordering" `Quick test_catalog_memory_ordering;
    Alcotest.test_case "catalog: type totals" `Quick test_catalog_rel_type_totals;
  ]
