(* Shared test graphs.

   [campus] mirrors the paper's running example (Figure 2): a tiny university
   graph whose labels exhibit all three label relationships of Section 4.2.1 —
   Student/Tutor/Teacher are sublabels of Person (Student and Tutor overlap,
   Student and Teacher are disjoint in the data), Seminar is a sublabel of
   Course, and the Person cluster is disjoint from the Course cluster. *)

open Lpp_pgraph

type campus = {
  graph : Graph.t;
  course_a : Graph.node;
  teacher_b : Graph.node;
  tutor_c : Graph.node;
  seminar_d : Graph.node;
  student_e : Graph.node;
  student_f : Graph.node;
}

let campus () =
  let b = Graph_builder.create () in
  let str s = Value.Str s in
  let course_a =
    Graph_builder.add_node b ~labels:[ "Course" ]
      ~props:[ ("title", str "Databases") ]
  in
  let teacher_b =
    Graph_builder.add_node b
      ~labels:[ "Person"; "Teacher" ]
      ~props:[ ("name", str "Beatrix") ]
  in
  let tutor_c =
    Graph_builder.add_node b
      ~labels:[ "Person"; "Student"; "Tutor" ]
      ~props:[ ("name", str "Carol") ]
  in
  let seminar_d =
    Graph_builder.add_node b
      ~labels:[ "Course"; "Seminar" ]
      ~props:[ ("title", str "Graph Seminar") ]
  in
  let student_e =
    Graph_builder.add_node b
      ~labels:[ "Person"; "Student" ]
      ~props:[ ("name", str "Emil") ]
  in
  let student_f =
    Graph_builder.add_node b
      ~labels:[ "Person"; "Student" ]
      ~props:[ ("name", str "Fiona"); ("semester", Value.Int 3) ]
  in
  let rel src dst rel_type =
    ignore (Graph_builder.add_rel b ~src ~dst ~rel_type ~props:[])
  in
  rel teacher_b course_a "teaches";
  rel teacher_b seminar_d "teaches";
  rel tutor_c teacher_b "assistantOf";
  rel tutor_c course_a "attends";
  rel student_e course_a "attends";
  rel student_e seminar_d "attends";
  rel student_f seminar_d "attends";
  rel student_e tutor_c "likes";
  rel tutor_c student_e "likes";
  {
    graph = Graph_builder.freeze b;
    course_a;
    teacher_b;
    tutor_c;
    seminar_d;
    student_e;
    student_f;
  }

(* A directed triangle plus a pendant node, for cycle tests:
   t0 -> t1 -> t2 -> t0, t2 -> p. All rels typed "e", all nodes labeled "N". *)
let triangle () =
  let b = Graph_builder.create () in
  let n () = Graph_builder.add_node b ~labels:[ "N" ] ~props:[] in
  let t0 = n () and t1 = n () and t2 = n () and p = n () in
  let e src dst = ignore (Graph_builder.add_rel b ~src ~dst ~rel_type:"e" ~props:[]) in
  e t0 t1;
  e t1 t2;
  e t2 t0;
  e t2 p;
  (Graph_builder.freeze b, (t0, t1, t2, p))

(* A uniform bipartite graph: [k_left] nodes labeled L each with exactly
   [deg] edges of type "t" to distinct nodes labeled R (round-robin over
   [k_right] R-nodes). Degrees are exactly uniform, so estimator formulas
   that assume label-uniform degrees become exact. *)
let bipartite ~k_left ~k_right ~deg =
  let b = Graph_builder.create () in
  let left = Array.init k_left (fun _ -> Graph_builder.add_node b ~labels:[ "L" ] ~props:[]) in
  let right = Array.init k_right (fun _ -> Graph_builder.add_node b ~labels:[ "R" ] ~props:[]) in
  Array.iteri
    (fun i l ->
      for j = 0 to deg - 1 do
        let r = right.(((i * deg) + j) mod k_right) in
        ignore (Graph_builder.add_rel b ~src:l ~dst:r ~rel_type:"t" ~props:[])
      done)
    left;
  Graph_builder.freeze b

let small_snb = lazy (Lpp_datasets.Snb_gen.generate ~persons:120 ~seed:1 ())

let small_cineasts = lazy (Lpp_datasets.Cineasts_gen.generate ~movies:250 ~seed:2 ())

let small_dbpedia =
  lazy (Lpp_datasets.Dbpedia_gen.generate ~entities:2000 ~classes:40 ~rel_kinds:25 ~seed:3 ())
