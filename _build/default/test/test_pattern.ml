(* Tests for Lpp_pattern: Pattern, Shape, Algebra validation. *)

open Lpp_pattern

let node ?(labels = []) ?(props = []) () = Pattern.node_spec ~labels ~props ()

let rel = Pattern.rel_spec

(* small helpers building raw patterns without a graph *)
let raw_node ?(labels = [||]) ?(props = [||]) () =
  { Pattern.n_labels = labels; n_props = props }

let raw_rel ?(types = [||]) ?(directed = true) ?(props = [||]) src dst =
  { Pattern.r_src = src; r_dst = dst; r_types = types; r_directed = directed;
    r_props = props; r_hops = None }

let chain_pattern n =
  Pattern.make
    ~nodes:(Array.init n (fun _ -> raw_node ()))
    ~rels:(Array.init (n - 1) (fun i -> raw_rel i (i + 1)))

let star_pattern leaves =
  Pattern.make
    ~nodes:(Array.init (leaves + 1) (fun _ -> raw_node ()))
    ~rels:(Array.init leaves (fun i -> raw_rel 0 (i + 1)))

let circle_pattern n =
  Pattern.make
    ~nodes:(Array.init n (fun _ -> raw_node ()))
    ~rels:(Array.init n (fun i -> raw_rel i ((i + 1) mod n)))

(* ---------------- Pattern construction ---------------- *)

let test_make_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Pattern.make: empty pattern")
    (fun () -> ignore (Pattern.make ~nodes:[||] ~rels:[||]))

let test_make_disconnected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Pattern.make: pattern not connected") (fun () ->
      ignore (Pattern.make ~nodes:[| raw_node (); raw_node () |] ~rels:[||]))

let test_make_bad_endpoint () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Pattern.make: relationship endpoint out of range")
    (fun () ->
      ignore (Pattern.make ~nodes:[| raw_node () |] ~rels:[| raw_rel 0 3 |]))

let test_single_node_ok () =
  let p = Pattern.make ~nodes:[| raw_node () |] ~rels:[||] in
  Alcotest.(check int) "one node" 1 (Pattern.node_count p);
  Alcotest.(check bool) "connected" true (Pattern.is_connected p)

let test_of_spec () =
  let f = Fixtures.campus () in
  let p =
    Pattern.of_spec f.graph
      [ node ~labels:[ "Person"; "Student" ] ();
        node ~labels:[ "Course" ] ~props:[ ("title", Pattern.Exists) ] () ]
      [ rel ~types:[ "attends" ] ~src:0 ~dst:1 () ]
  in
  Alcotest.(check int) "nodes" 2 (Pattern.node_count p);
  Alcotest.(check int) "rels" 1 (Pattern.rel_count p);
  Alcotest.(check int) "size = 3 labels + 1 rel + 1 prop" 5 (Pattern.size p);
  Alcotest.(check bool) "has props" true (Pattern.has_properties p);
  Alcotest.(check (float 1e-9)) "density" 1.5 (Pattern.label_density p)

let test_degree_and_incidence () =
  let p = star_pattern 3 in
  Alcotest.(check int) "centre degree" 3 (Pattern.degree p 0);
  Alcotest.(check int) "leaf degree" 1 (Pattern.degree p 1);
  Alcotest.(check (list int)) "incident to centre" [ 0; 1; 2 ]
    (Pattern.incident_rels p 0)

let test_self_loop_degree () =
  let p = Pattern.make ~nodes:[| raw_node () |] ~rels:[| raw_rel 0 0 |] in
  Alcotest.(check int) "self-loop counts twice" 2 (Pattern.degree p 0)

let test_pp_smoke () =
  let f = Fixtures.campus () in
  let p =
    Pattern.of_spec f.graph
      [ node ~labels:[ "Person" ] (); node () ]
      [ rel ~types:[ "likes" ] ~src:0 ~dst:1 () ]
  in
  let s = Format.asprintf "%a" (Pattern.pp ~names:(Some f.graph)) p in
  Alcotest.(check bool) "mentions label" true
    (String.length s > 0
    && Str_contains.contains s "Person" && Str_contains.contains s "likes")

(* ---------------- Shape ---------------- *)

let test_shapes () =
  let check name expected p =
    Alcotest.(check string) name expected (Shape.to_string (Shape.classify p))
  in
  check "2-chain" "chain" (chain_pattern 2);
  check "5-chain" "chain" (chain_pattern 5);
  check "star-3" "star" (star_pattern 3);
  check "single node" "chain" (Pattern.make ~nodes:[| raw_node () |] ~rels:[||]);
  check "circle-3" "circle" (circle_pattern 3);
  check "circle-5" "circle" (circle_pattern 5);
  (* tree: a "Y" with one 2-chain arm *)
  let tree =
    Pattern.make
      ~nodes:(Array.init 5 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 0 2; raw_rel 0 3; raw_rel 3 4 |]
  in
  check "tree" "tree" tree;
  (* petal: two parallel 2-paths between node 0 and node 2 *)
  let petal =
    Pattern.make
      ~nodes:(Array.init 4 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2; raw_rel 0 3; raw_rel 3 2;
               raw_rel 0 2 |]
  in
  check "petal" "petal" petal;
  (* flower: a triangle with a pendant chain at one node *)
  let flower =
    Pattern.make
      ~nodes:(Array.init 4 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2; raw_rel 2 0; raw_rel 0 3 |]
  in
  check "flower" "flower" flower;
  (* other: two triangles sharing an edge, plus appendages on 3 nodes *)
  let other =
    Pattern.make
      ~nodes:(Array.init 7 (fun _ -> raw_node ()))
      ~rels:[| raw_rel 0 1; raw_rel 1 2; raw_rel 2 0; raw_rel 1 3;
               raw_rel 3 0; raw_rel 0 4; raw_rel 1 5; raw_rel 2 6 |]
  in
  check "other cyclic" "cyclic-other" other

let test_shape_parallel_edges_cycle () =
  (* two parallel rels between two nodes form a cycle (m - n + 1 = 1) *)
  let p =
    Pattern.make ~nodes:[| raw_node (); raw_node () |]
      ~rels:[| raw_rel 0 1; raw_rel 1 0 |]
  in
  Alcotest.(check string) "2-cycle is a circle" "circle"
    (Shape.to_string (Shape.classify p))

let test_shape_coarse () =
  Alcotest.(check string) "cyclic coarse" "cyclic" (Shape.coarse (Cyclic Petal));
  Alcotest.(check string) "chain coarse" "chain" (Shape.coarse Chain);
  Alcotest.(check int) "all shapes listed" 7 (List.length Shape.all)

(* ---------------- Algebra validation ---------------- *)

let test_algebra_valid_sequence () =
  let alg =
    {
      Algebra.ops =
        [|
          Get_nodes { var = 0 };
          Label_selection { var = 0; label = 1 };
          Expand { src_var = 0; rel_var = 0; dst_var = 1; types = [||];
                   dir = Lpp_pgraph.Direction.Out; hops = None };
          Merge_on { keep = 0; merge = 1; cycle_len = None };
        |];
      node_vars = 2;
      rel_vars = 1;
    }
  in
  Alcotest.(check bool) "valid" true (Result.is_ok (Algebra.validate alg))

let test_algebra_use_before_intro () =
  let alg =
    {
      Algebra.ops = [| Algebra.Label_selection { var = 0; label = 0 } |];
      node_vars = 1;
      rel_vars = 0;
    }
  in
  Alcotest.(check bool) "invalid" true (Result.is_error (Algebra.validate alg))

let test_algebra_double_introduction () =
  let alg =
    {
      Algebra.ops = [| Algebra.Get_nodes { var = 0 }; Get_nodes { var = 0 } |];
      node_vars = 1;
      rel_vars = 0;
    }
  in
  Alcotest.(check bool) "invalid" true (Result.is_error (Algebra.validate alg))

let test_algebra_merge_kills_var () =
  let alg =
    {
      Algebra.ops =
        [|
          Get_nodes { var = 0 };
          Expand { src_var = 0; rel_var = 0; dst_var = 1; types = [||];
                   dir = Lpp_pgraph.Direction.Out; hops = None };
          Merge_on { keep = 0; merge = 1; cycle_len = None };
          Label_selection { var = 1; label = 0 };
        |];
      node_vars = 2;
      rel_vars = 1;
    }
  in
  Alcotest.(check bool) "use after merge invalid" true
    (Result.is_error (Algebra.validate alg))

let test_algebra_merge_self () =
  let alg =
    {
      Algebra.ops = [| Algebra.Get_nodes { var = 0 }; Merge_on { keep = 0; merge = 0; cycle_len = None } |];
      node_vars = 1;
      rel_vars = 0;
    }
  in
  Alcotest.(check bool) "self merge invalid" true
    (Result.is_error (Algebra.validate alg))

let suite =
  [
    Alcotest.test_case "pattern: empty rejected" `Quick test_make_empty;
    Alcotest.test_case "pattern: disconnected rejected" `Quick test_make_disconnected;
    Alcotest.test_case "pattern: bad endpoint" `Quick test_make_bad_endpoint;
    Alcotest.test_case "pattern: single node" `Quick test_single_node_ok;
    Alcotest.test_case "pattern: of_spec" `Quick test_of_spec;
    Alcotest.test_case "pattern: degree/incidence" `Quick test_degree_and_incidence;
    Alcotest.test_case "pattern: self-loop degree" `Quick test_self_loop_degree;
    Alcotest.test_case "pattern: pp" `Quick test_pp_smoke;
    Alcotest.test_case "shape: taxonomy" `Quick test_shapes;
    Alcotest.test_case "shape: parallel edges" `Quick test_shape_parallel_edges_cycle;
    Alcotest.test_case "shape: coarse" `Quick test_shape_coarse;
    Alcotest.test_case "algebra: valid sequence" `Quick test_algebra_valid_sequence;
    Alcotest.test_case "algebra: use before intro" `Quick test_algebra_use_before_intro;
    Alcotest.test_case "algebra: double intro" `Quick test_algebra_double_introduction;
    Alcotest.test_case "algebra: merge kills var" `Quick test_algebra_merge_kills_var;
    Alcotest.test_case "algebra: merge self" `Quick test_algebra_merge_self;
  ]
