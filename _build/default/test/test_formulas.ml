(* Fine-grained checks of the Section 5 formulas, via estimates whose values
   can be derived by hand on the campus fixture (see Fixtures.campus). *)

open Lpp_pattern
open Lpp_core

let campus = lazy (
  let f = Fixtures.campus () in
  (f.graph, Lpp_stats.Catalog.build f.graph))

let est config specs rels =
  let g, cat = Lazy.force campus in
  Estimator.estimate_pattern config cat (Pattern.of_spec g specs rels)

let check = Alcotest.(check (float 1e-9))

(* Section 5.2, case 3: selecting the superlabel first leaves the sublabel
   with P(sub)/P(super); selecting it next yields NC(sub) exactly. *)
let test_case3_superlabel_then_sublabel () =
  (* Person interned before Student, so selections run Person, Student:
     6 × (4/6) × ((3/6)/(4/6)) = 3 *)
  check "Person∧Student = 3" 3.0
    (est Config.a_lhd [ Pattern.node_spec ~labels:[ "Person"; "Student" ] () ] [])

(* Section 5.2, case 2: sublabel first makes the superlabel free. Tutor is
   interned after Student; select Student(3/6) then Tutor: without hierarchy,
   independence gives ×P(Tutor) = 1/6; with data-inferred Tutor ⊑ Student,
   case 3 applies instead: (1/6)/(3/6) = 1/3 → exact 1. *)
let test_overlapping_sublabels () =
  check "Student∧Tutor exact with H_L" 1.0
    (est Config.a_lh [ Pattern.node_spec ~labels:[ "Student"; "Tutor" ] () ] []);
  check "Student∧Tutor independence" 0.5
    (est Config.a_l [ Pattern.node_spec ~labels:[ "Student"; "Tutor" ] () ] [])

(* Section 5.2, case 5: disjoint labels zero out, regardless of order. *)
let test_case5_all_orders () =
  List.iter
    (fun labels ->
      check
        (String.concat "," labels ^ " = 0")
        0.0
        (est Config.a_lhd [ Pattern.node_spec ~labels () ] []))
    [ [ "Person"; "Course" ]; [ "Course"; "Person" ]; [ "Student"; "Seminar" ] ]

(* Section 5.1: GetNodes initialises label probabilities with NC(ℓ)/NC(✱);
   a single label selection is therefore always exact. *)
let test_every_single_label_exact () =
  let g, _ = Lazy.force campus in
  Lpp_pgraph.Interner.iter (Lpp_pgraph.Graph.labels g) (fun id name ->
      let truth =
        float_of_int (Array.length (Lpp_pgraph.Graph.nodes_with_label g id))
      in
      check (name ^ " exact") truth
        (est Config.a_lhd [ Pattern.node_spec ~labels:[ name ] () ] []))

(* Section 5.4: expansion through a typed relationship from a selected label
   is RC(ℓ,t,✱)/NC(ℓ)-exact. teaches: 2 rels, both from the 1 Teacher. *)
let test_expand_degree_exact () =
  check "(Teacher)-[teaches]->() = 2" 2.0
    (est Config.a_lhd
       [ Pattern.node_spec ~labels:[ "Teacher" ] (); Pattern.node_spec () ]
       [ Pattern.rel_spec ~types:[ "teaches" ] ~src:0 ~dst:1 () ]);
  (* and the propagated target probabilities make the follow-up label
     selection exact: both teaches-targets are Courses *)
  check "(Teacher)-[teaches]->(Course) = 2" 2.0
    (est Config.a_lhd
       [ Pattern.node_spec ~labels:[ "Teacher" ] ();
         Pattern.node_spec ~labels:[ "Course" ] () ]
       [ Pattern.rel_spec ~types:[ "teaches" ] ~src:0 ~dst:1 () ]);
  (* a contradictory target label is propagated to zero *)
  check "(Teacher)-[teaches]->(Person) = 0" 0.0
    (est Config.a_lhd
       [ Pattern.node_spec ~labels:[ "Teacher" ] ();
         Pattern.node_spec ~labels:[ "Person" ] () ]
       [ Pattern.rel_spec ~types:[ "teaches" ] ~src:0 ~dst:1 () ])

(* Section 5.3: existence predicates with per-label statistics. All four
   Persons carry "name", so the predicate is free on Person. *)
let test_prop_free_when_universal () =
  check "(Person {name}) = 4" 4.0
    (est Config.a_lhd
       [ Pattern.node_spec ~labels:[ "Person" ] ~props:[ ("name", Pattern.Exists) ] () ]
       [])

(* Unknown vocabulary: a label that does not exist in the data estimates 0. *)
let test_unknown_label () =
  check "unknown label" 0.0
    (est Config.a_lhd [ Pattern.node_spec ~labels:[ "Martian" ] () ] []);
  check "unknown type" 0.0
    (est Config.a_lhd
       [ Pattern.node_spec (); Pattern.node_spec () ]
       [ Pattern.rel_spec ~types:[ "teleports" ] ~src:0 ~dst:1 () ])

(* Estimates are invariant under the textual order of node specs that the
   planner reorders anyway. *)
let test_spec_order_invariance () =
  let a =
    est Config.a_lhd
      [ Pattern.node_spec ~labels:[ "Student" ] ();
        Pattern.node_spec ~labels:[ "Course" ] () ]
      [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ]
  in
  let b =
    est Config.a_lhd
      [ Pattern.node_spec ~labels:[ "Course" ] ();
        Pattern.node_spec ~labels:[ "Student" ] () ]
      [ Pattern.rel_spec ~types:[ "attends" ] ~src:1 ~dst:0 () ]
  in
  check "mirrored specs agree" a b

let suite =
  [
    Alcotest.test_case "formula: case 3 ordering" `Quick
      test_case3_superlabel_then_sublabel;
    Alcotest.test_case "formula: overlapping sublabels" `Quick
      test_overlapping_sublabels;
    Alcotest.test_case "formula: disjoint orders" `Quick test_case5_all_orders;
    Alcotest.test_case "formula: single labels exact" `Quick
      test_every_single_label_exact;
    Alcotest.test_case "formula: expand degrees" `Quick test_expand_degree_exact;
    Alcotest.test_case "formula: universal prop free" `Quick
      test_prop_free_when_universal;
    Alcotest.test_case "formula: unknown vocabulary" `Quick test_unknown_label;
    Alcotest.test_case "formula: spec order invariance" `Quick
      test_spec_order_invariance;
  ]
