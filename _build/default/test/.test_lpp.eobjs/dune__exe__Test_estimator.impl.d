test/test_estimator.ml: Alcotest Algebra Array Config Estimator Fixtures Float Label_probs Lazy List Lpp_core Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Lpp_workload Option Pattern Planner Printf
