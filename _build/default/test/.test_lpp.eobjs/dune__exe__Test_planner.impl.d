test/test_planner.ml: Alcotest Algebra Array Fixtures Format List Lpp_exec Lpp_pattern Lpp_pgraph Lpp_util Pattern Planner Result Rng
