test/test_properties.ml: Alcotest Algebra Array Filename Fun List Lpp_core Lpp_exec Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Pattern Planner Rng Shape String Sys
