test/test_triangles.ml: Alcotest Algebra Array Fixtures Float Lazy List Lpp_core Lpp_exec Lpp_harness Lpp_pattern Lpp_pgraph Lpp_stats Pattern Planner Printf Triangle_stats
