test/test_util.ml: Alcotest Array Ascii_table Float Fun Gen Int List Lpp_util Mem_size QCheck QCheck_alcotest Quantiles Rng Set String
