test/test_graph_io.ml: Alcotest Filename Fixtures Fun Graph Graph_builder Graph_io Interner Lazy Lpp_pgraph Lpp_stats Result Sys Value
