test/test_harness.ml: Alcotest Fixtures Float Lazy List Lpp_core Lpp_datasets Lpp_harness Lpp_pattern Lpp_util Lpp_workload Pattern Printf Shape
