test/test_matcher.ml: Alcotest Array Fixtures Lazy List Lpp_exec Lpp_pattern Lpp_pgraph Matcher Option Pattern Planner Reference Semantics
