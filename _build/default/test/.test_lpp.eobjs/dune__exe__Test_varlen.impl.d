test/test_varlen.ml: Alcotest Array Fixtures Format List Lpp_baselines Lpp_core Lpp_exec Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Option Pattern Printf Str_contains
