test/test_formulas.ml: Alcotest Array Config Estimator Fixtures Lazy List Lpp_core Lpp_pattern Lpp_pgraph Lpp_stats Pattern String
