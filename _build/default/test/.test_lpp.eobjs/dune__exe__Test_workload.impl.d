test/test_workload.ml: Alcotest Array Fixtures Float Lazy List Lpp_core Lpp_exec Lpp_harness Lpp_pattern Lpp_util Lpp_workload Printf QCheck QCheck_alcotest Query_gen String
