test/test_incremental.ml: Alcotest Array Catalog Direction Fixtures Graph Graph_builder Interner List Lpp_core Lpp_exec Lpp_pattern Lpp_pgraph Lpp_stats Lpp_util Option Printf
