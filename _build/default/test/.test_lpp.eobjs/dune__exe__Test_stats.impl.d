test/test_stats.ml: Alcotest Array Catalog Direction Fixtures Graph Graph_builder Interner Label_hierarchy Label_partition Lazy List Lpp_pattern Lpp_pgraph Lpp_stats Option Printf Prop_stats Value
