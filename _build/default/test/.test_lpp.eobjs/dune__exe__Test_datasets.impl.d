test/test_datasets.ml: Alcotest Array Catalog Direction Fixtures Graph Int Interner Label_hierarchy Label_partition Lazy List Lpp_datasets Lpp_pgraph Lpp_stats Option Printf
