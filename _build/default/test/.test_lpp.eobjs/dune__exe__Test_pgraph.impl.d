test/test_pgraph.ml: Alcotest Array Direction Fixtures Graph Graph_builder Interner Lpp_pgraph Lpp_util Option QCheck QCheck_alcotest Value
