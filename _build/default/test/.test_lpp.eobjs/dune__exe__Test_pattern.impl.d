test/test_pattern.ml: Alcotest Algebra Array Fixtures Format List Lpp_pattern Lpp_pgraph Pattern Result Shape Str_contains String
