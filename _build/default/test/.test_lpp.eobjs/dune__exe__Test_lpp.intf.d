test/test_lpp.mli:
