test/fixtures.ml: Array Graph Graph_builder Lpp_datasets Lpp_pgraph Value
