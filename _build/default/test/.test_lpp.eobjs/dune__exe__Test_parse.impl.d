test/test_parse.ml: Alcotest Array Fixtures Lazy Lpp_core Lpp_exec Lpp_harness Lpp_pattern Parse Pattern Printf Shape
