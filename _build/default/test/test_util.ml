(* Tests for Lpp_util: Rng, Quantiles, Ascii_table, Mem_size. *)

open Lpp_util

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 9 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    let v = Rng.int_in rng 3 6 in
    Alcotest.(check bool) "in [3,6]" true (v >= 3 && v <= 6);
    seen.(v - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_coin_extremes () =
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never true" false (Rng.coin rng 0.0)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always true" true (Rng.coin rng 1.0)
  done

let test_rng_coin_rate () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.coin rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 6 in
  let arr = Array.init 30 Fun.id in
  let s = Rng.sample_without_replacement rng 10 arr in
  Alcotest.(check int) "10 elements" 10 (Array.length s);
  let module IS = Set.Make (Int) in
  Alcotest.(check int) "distinct" 10 (IS.cardinal (IS.of_list (Array.to_list s)));
  let all = Rng.sample_without_replacement rng 100 arr in
  Alcotest.(check int) "capped at n" 30 (Array.length all)

let test_rng_zipf_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 2000 do
    let v = Rng.zipf rng ~n:20 ~s:1.1 in
    Alcotest.(check bool) "in [0,20)" true (v >= 0 && v < 20)
  done

let test_rng_zipf_skew () =
  let rng = Rng.create 13 in
  let counts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let v = Rng.zipf rng ~n:50 ~s:1.0 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true
    (counts.(0) > counts.(5) && counts.(5) > counts.(30))

let test_rng_zipf_single () =
  let rng = Rng.create 1 in
  Alcotest.(check int) "n=1 yields 0" 0 (Rng.zipf rng ~n:1 ~s:1.0)

let test_rng_geometric () =
  let rng = Rng.create 17 in
  Alcotest.(check int) "p=1 is 0" 0 (Rng.geometric rng ~p:1.0);
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng ~p:0.5
  done;
  (* mean of failures-before-success at p=0.5 is 1 *)
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1" true (Float.abs (mean -. 1.0) < 0.1)

let test_rng_split_independent () =
  let a = Rng.create 21 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

(* ---------------- Quantiles ---------------- *)

let test_quantile_basic () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Quantiles.quantile sorted 0.5);
  check_float "min" 1.0 (Quantiles.quantile sorted 0.0);
  check_float "max" 5.0 (Quantiles.quantile sorted 1.0);
  check_float "q25 interpolated" 2.0 (Quantiles.quantile sorted 0.25)

let test_quantile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  check_float "interpolates" 5.0 (Quantiles.quantile sorted 0.5);
  check_float "0.3 point" 3.0 (Quantiles.quantile sorted 0.3)

let test_quantile_empty () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Quantiles.quantile: empty sample") (fun () ->
      ignore (Quantiles.quantile [||] 0.5))

let test_summarize () =
  match Quantiles.summarize [ 4.0; 1.0; 3.0; 2.0 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check int) "count" 4 s.count;
      check_float "min" 1.0 s.min;
      check_float "max" 4.0 s.max;
      check_float "median" 2.5 s.median;
      check_float "mean" 2.5 s.mean

let test_summarize_empty () =
  Alcotest.(check bool) "empty is None" true (Quantiles.summarize [] = None)

let test_summarize_geo_mean () =
  match Quantiles.summarize [ 1.0; 100.0 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s -> check_float "geometric mean" 10.0 s.geo_mean

let test_summarize_does_not_mutate () =
  let arr = [| 3.0; 1.0; 2.0 |] in
  ignore (Quantiles.summarize_array arr);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] arr

(* qcheck: quantile is monotone in p and bounded by min/max *)
let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone and bounded" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 1000.0))
              (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (sample, (p1, p2)) ->
      QCheck.assume (sample <> []);
      let sorted = Array.of_list sample in
      Array.sort Float.compare sorted;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let qlo = Quantiles.quantile sorted lo and qhi = Quantiles.quantile sorted hi in
      qlo <= qhi && qlo >= sorted.(0) && qhi <= sorted.(Array.length sorted - 1))

(* ---------------- Ascii_table ---------------- *)

let test_table_render () =
  let t = Ascii_table.create [ "a"; "bb" ] in
  Ascii_table.add_row t [ "1"; "2" ];
  Ascii_table.add_row t [ "333" ];
  let s = Ascii_table.render t in
  Alcotest.(check bool) "header present" true
    (String.length s > 0
    && (let lines = String.split_on_char '\n' s in
        List.exists (fun l -> l = "| a   | bb |") lines));
  Alcotest.(check bool) "padded row" true
    (List.exists (fun l -> l = "| 333 |    |") (String.split_on_char '\n' s))

let test_table_too_many_cells () =
  let t = Ascii_table.create [ "a" ] in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Ascii_table.add_row: too many cells") (fun () ->
      Ascii_table.add_row t [ "1"; "2" ])

let test_table_separator () =
  let t = Ascii_table.create [ "x" ] in
  Ascii_table.add_row t [ "1" ];
  Ascii_table.add_separator t;
  Ascii_table.add_row t [ "2" ];
  let rules =
    String.split_on_char '\n' (Ascii_table.render t)
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '+')
  in
  Alcotest.(check int) "four rules" 4 (List.length rules)

(* ---------------- Mem_size ---------------- *)

let test_mem_size_strings () =
  Alcotest.(check bool) "string payload grows" true
    (Mem_size.string_bytes "a longer string than this"
    > Mem_size.string_bytes "ab");
  Alcotest.(check int) "word-aligned" 0 (Mem_size.string_bytes "abc" mod 8)

let test_mem_size_render () =
  Alcotest.(check string) "bytes" "812 B" (Mem_size.to_string 812);
  Alcotest.(check string) "kilobytes" "3.1 kB" (Mem_size.to_string 3174);
  Alcotest.(check string) "megabytes" "1.4 MB" (Mem_size.to_string 1_468_006)

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: int invalid" `Quick test_rng_int_invalid;
    Alcotest.test_case "rng: int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng: float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng: coin extremes" `Quick test_rng_coin_extremes;
    Alcotest.test_case "rng: coin rate" `Quick test_rng_coin_rate;
    Alcotest.test_case "rng: shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng: sample w/o replacement" `Quick
      test_rng_sample_without_replacement;
    Alcotest.test_case "rng: zipf bounds" `Quick test_rng_zipf_bounds;
    Alcotest.test_case "rng: zipf skew" `Quick test_rng_zipf_skew;
    Alcotest.test_case "rng: zipf n=1" `Quick test_rng_zipf_single;
    Alcotest.test_case "rng: geometric" `Quick test_rng_geometric;
    Alcotest.test_case "rng: split" `Quick test_rng_split_independent;
    Alcotest.test_case "quantiles: basic" `Quick test_quantile_basic;
    Alcotest.test_case "quantiles: interpolation" `Quick test_quantile_interpolation;
    Alcotest.test_case "quantiles: empty" `Quick test_quantile_empty;
    Alcotest.test_case "quantiles: summarize" `Quick test_summarize;
    Alcotest.test_case "quantiles: summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "quantiles: geo mean" `Quick test_summarize_geo_mean;
    Alcotest.test_case "quantiles: no mutation" `Quick test_summarize_does_not_mutate;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    Alcotest.test_case "table: render" `Quick test_table_render;
    Alcotest.test_case "table: overflow" `Quick test_table_too_many_cells;
    Alcotest.test_case "table: separator" `Quick test_table_separator;
    Alcotest.test_case "mem: strings" `Quick test_mem_size_strings;
    Alcotest.test_case "mem: render" `Quick test_mem_size_render;
  ]
