(* Tests for Lpp_pgraph: Value, Interner, Direction, Graph, Graph_builder. *)

open Lpp_pgraph

(* ---------------- Value ---------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float f) (float_range (-100.0) 100.0);
        map (fun s -> Value.Str s) (string_size (0 -- 8));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_value_compare_total =
  QCheck.Test.make ~name:"Value.compare is a total order" ~count:500
    QCheck.(triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      (* transitivity of <= *)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let prop_value_equal_consistent =
  QCheck.Test.make ~name:"Value.equal agrees with compare" ~count:500
    QCheck.(pair value_arb value_arb)
    (fun (a, b) -> Value.equal a b = (Value.compare a b = 0))

let test_value_int_float_distinct () =
  Alcotest.(check bool) "Int 1 <> Float 1." false
    (Value.equal (Value.Int 1) (Value.Float 1.0))

let test_value_type_names () =
  Alcotest.(check string) "int" "int" (Value.type_name (Value.Int 3));
  Alcotest.(check string) "str" "string" (Value.type_name (Value.Str "x"))

(* ---------------- Interner ---------------- *)

let test_interner_roundtrip () =
  let i = Interner.create () in
  let a = Interner.intern i "alpha" in
  let b = Interner.intern i "beta" in
  Alcotest.(check int) "dense ids" 0 a;
  Alcotest.(check int) "dense ids" 1 b;
  Alcotest.(check int) "idempotent" a (Interner.intern i "alpha");
  Alcotest.(check string) "name back" "beta" (Interner.name i b);
  Alcotest.(check int) "size" 2 (Interner.size i);
  Alcotest.(check (option int)) "find" (Some 0) (Interner.find_opt i "alpha");
  Alcotest.(check (option int)) "find missing" None (Interner.find_opt i "gamma")

let test_interner_unknown_id () =
  let i = Interner.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Interner.name: unknown id")
    (fun () -> ignore (Interner.name i 5))

let test_interner_many () =
  let i = Interner.create () in
  for k = 0 to 999 do
    Alcotest.(check int) "sequential" k (Interner.intern i (string_of_int k))
  done;
  Alcotest.(check int) "size 1000" 1000 (Interner.size i);
  let seen = ref 0 in
  Interner.iter i (fun id name ->
      incr seen;
      Alcotest.(check string) "iter consistent" name (string_of_int id));
  Alcotest.(check int) "iterated all" 1000 !seen

(* ---------------- Direction ---------------- *)

let test_direction_reverse () =
  Alcotest.(check bool) "out<->in" true
    Direction.(equal (reverse Out) In && equal (reverse In) Out
               && equal (reverse Both) Both)

(* ---------------- Graph / Graph_builder ---------------- *)

let test_graph_basic () =
  let f = Fixtures.campus () in
  let g = f.graph in
  Alcotest.(check int) "nodes" 6 (Graph.node_count g);
  Alcotest.(check int) "rels" 9 (Graph.rel_count g);
  Alcotest.(check int) "labels" 6 (Graph.label_count g);
  Alcotest.(check int) "types" 4 (Graph.rel_type_count g);
  Alcotest.(check int) "props" 7 (Graph.property_count g)

let test_graph_labels () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let person = Option.get (Interner.find_opt (Graph.labels g) "Person") in
  let tutor = Option.get (Interner.find_opt (Graph.labels g) "Tutor") in
  Alcotest.(check bool) "C is a Tutor" true (Graph.node_has_label g f.tutor_c tutor);
  Alcotest.(check bool) "A is not a Person" false
    (Graph.node_has_label g f.course_a person);
  Alcotest.(check int) "three persons... plus C and E and F and B" 4
    (Array.length (Graph.nodes_with_label g person));
  Alcotest.(check int) "label array sorted+deduped" 3
    (Array.length (Graph.node_labels g f.tutor_c))

let test_graph_adjacency () =
  let f = Fixtures.campus () in
  let g = f.graph in
  Alcotest.(check int) "E out-degree" 3 (Array.length (Graph.out_rels g f.student_e));
  Alcotest.(check int) "E in-degree" 1 (Array.length (Graph.in_rels g f.student_e));
  Alcotest.(check int) "E both" 4 (Graph.degree g Direction.Both f.student_e);
  Alcotest.(check int) "A in-degree" 3 (Array.length (Graph.in_rels g f.course_a));
  Array.iter
    (fun r -> Alcotest.(check int) "src of out rel" f.student_e (Graph.rel_src g r))
    (Graph.out_rels g f.student_e)

let test_graph_other_end () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let r = (Graph.out_rels g f.student_e).(0) in
  Alcotest.(check int) "other end from src" (Graph.rel_dst g r)
    (Graph.other_end g r f.student_e);
  Alcotest.(check int) "other end from dst" f.student_e
    (Graph.other_end g r (Graph.rel_dst g r));
  Alcotest.check_raises "not an endpoint"
    (Invalid_argument "Graph.other_end: node is not an endpoint") (fun () ->
      ignore (Graph.other_end g r f.teacher_b))

let test_graph_props () =
  let f = Fixtures.campus () in
  let g = f.graph in
  let name = Option.get (Interner.find_opt (Graph.prop_keys g) "name") in
  let semester = Option.get (Interner.find_opt (Graph.prop_keys g) "semester") in
  Alcotest.(check bool) "F has semester=3" true
    (Graph.node_prop g f.student_f semester = Some (Value.Int 3));
  Alcotest.(check bool) "E has no semester" true
    (Graph.node_prop g f.student_e semester = None);
  Alcotest.(check bool) "E has a name" true
    (Graph.node_prop g f.student_e name = Some (Value.Str "Emil"))

let test_graph_unlabeled_count () =
  let b = Graph_builder.create () in
  let _a = Graph_builder.add_node b ~labels:[] ~props:[] in
  let _c = Graph_builder.add_node b ~labels:[ "X" ] ~props:[] in
  let g = Graph_builder.freeze b in
  Alcotest.(check int) "one unlabeled" 1 (Graph.unlabeled_node_count g)

let test_builder_dedup () =
  let b = Graph_builder.create () in
  let n =
    Graph_builder.add_node b ~labels:[ "X"; "X"; "Y" ]
      ~props:[ ("k", Value.Int 1); ("k", Value.Int 2) ]
  in
  let g = Graph_builder.freeze b in
  Alcotest.(check int) "labels deduped" 2 (Array.length (Graph.node_labels g n));
  Alcotest.(check int) "props deduped" 1 (Array.length (Graph.node_props g n));
  let k = Option.get (Interner.find_opt (Graph.prop_keys g) "k") in
  Alcotest.(check bool) "last write wins" true
    (Graph.node_prop g n k = Some (Value.Int 2))

let test_builder_bad_endpoint () =
  let b = Graph_builder.create () in
  let n = Graph_builder.add_node b ~labels:[] ~props:[] in
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Graph_builder.add_rel: unknown endpoint") (fun () ->
      ignore (Graph_builder.add_rel b ~src:n ~dst:(n + 1) ~rel_type:"e" ~props:[]))

let test_builder_frozen () =
  let b = Graph_builder.create () in
  let _n = Graph_builder.add_node b ~labels:[] ~props:[] in
  let _g = Graph_builder.freeze b in
  Alcotest.check_raises "frozen builder"
    (Invalid_argument "Graph_builder: already frozen") (fun () ->
      ignore (Graph_builder.add_node b ~labels:[] ~props:[]))

let test_graph_fold () =
  let f = Fixtures.campus () in
  let g = f.graph in
  Alcotest.(check int) "fold_nodes counts" (Graph.node_count g)
    (Graph.fold_nodes g ~init:0 ~f:(fun acc _ -> acc + 1));
  Alcotest.(check int) "fold_rels counts" (Graph.rel_count g)
    (Graph.fold_rels g ~init:0 ~f:(fun acc _ -> acc + 1))

(* qcheck: a randomly built graph has consistent adjacency *)
let prop_adjacency_consistent =
  QCheck.Test.make ~name:"builder adjacency consistent" ~count:50
    QCheck.(pair (int_range 1 20) (int_range 0 60))
    (fun (n_nodes, n_rels) ->
      let rng = Lpp_util.Rng.create (n_nodes + (n_rels * 1000)) in
      let b = Graph_builder.create () in
      let nodes =
        Array.init n_nodes (fun i ->
            Graph_builder.add_node b
              ~labels:(if i mod 2 = 0 then [ "Even" ] else [ "Odd" ])
              ~props:[])
      in
      for _ = 1 to n_rels do
        ignore
          (Graph_builder.add_rel b
             ~src:nodes.(Lpp_util.Rng.int rng n_nodes)
             ~dst:nodes.(Lpp_util.Rng.int rng n_nodes)
             ~rel_type:"e" ~props:[])
      done;
      let g = Graph_builder.freeze b in
      let out_total =
        Graph.fold_nodes g ~init:0 ~f:(fun acc n ->
            acc + Array.length (Graph.out_rels g n))
      in
      let in_total =
        Graph.fold_nodes g ~init:0 ~f:(fun acc n ->
            acc + Array.length (Graph.in_rels g n))
      in
      out_total = n_rels && in_total = n_rels
      && Graph.fold_rels g ~init:true ~f:(fun acc r ->
             acc
             && Array.exists (( = ) r) (Graph.out_rels g (Graph.rel_src g r))
             && Array.exists (( = ) r) (Graph.in_rels g (Graph.rel_dst g r))))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_value_compare_total;
    QCheck_alcotest.to_alcotest prop_value_equal_consistent;
    Alcotest.test_case "value: int/float distinct" `Quick test_value_int_float_distinct;
    Alcotest.test_case "value: type names" `Quick test_value_type_names;
    Alcotest.test_case "interner: roundtrip" `Quick test_interner_roundtrip;
    Alcotest.test_case "interner: unknown id" `Quick test_interner_unknown_id;
    Alcotest.test_case "interner: many" `Quick test_interner_many;
    Alcotest.test_case "direction: reverse" `Quick test_direction_reverse;
    Alcotest.test_case "graph: basic counts" `Quick test_graph_basic;
    Alcotest.test_case "graph: labels" `Quick test_graph_labels;
    Alcotest.test_case "graph: adjacency" `Quick test_graph_adjacency;
    Alcotest.test_case "graph: other_end" `Quick test_graph_other_end;
    Alcotest.test_case "graph: props" `Quick test_graph_props;
    Alcotest.test_case "graph: unlabeled count" `Quick test_graph_unlabeled_count;
    Alcotest.test_case "builder: dedup" `Quick test_builder_dedup;
    Alcotest.test_case "builder: bad endpoint" `Quick test_builder_bad_endpoint;
    Alcotest.test_case "builder: frozen" `Quick test_builder_frozen;
    Alcotest.test_case "graph: folds" `Quick test_graph_fold;
    QCheck_alcotest.to_alcotest prop_adjacency_consistent;
  ]
