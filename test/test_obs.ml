(* The observability layer (Lpp_obs): JSON emitter round-trips, span
   nesting and per-domain recording, shard-merged metrics, the Chrome trace
   sink, hand-computed frozen-catalog lookup-path counters, and the central
   guarantee that enabling instrumentation never changes an estimate bit.

   Every test that enables the global switch does so under Fun.protect and
   resets the recorders afterwards, so the rest of the test binary keeps
   running on the disabled (zero-overhead) path. *)

open Lpp_pgraph
open Lpp_stats
open Lpp_util

let with_obs f =
  Lpp_obs.Obs.enable ();
  Lpp_obs.Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Lpp_obs.Obs.disable ();
      Lpp_obs.Obs.reset ())
    f

(* ---- Lpp_util.Json -------------------------------------------------- *)

let test_json_escape () =
  Alcotest.(check string) "quotes and backslashes" "a\\\"b\\\\c"
    (Json.escape "a\"b\\c");
  Alcotest.(check string) "control chars" "line\\nfeed\\ttab\\u0000"
    (Json.escape "line\nfeed\ttab\000");
  Alcotest.(check string) "plain passthrough" "plain" (Json.escape "plain")

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5e-3);
        ("big", Json.Float 986.0);
        ("string", Json.String "sp\"ec\\ial\n\tchars");
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok doc' -> Alcotest.(check bool) "round-trip equal" true (doc = doc')

let test_json_parse_unicode () =
  (match Json.of_string {|"aé😀b"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "BMP + surrogate pair" "a\xc3\xa9\xf0\x9f\x98\x80b" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error msg -> Alcotest.failf "unicode parse failed: %s" msg);
  (match Json.of_string "[1, 2.5, -3e2, {\"k\": []}]" with
  | Ok (Json.List [ Json.Int 1; Json.Float 2.5; Json.Float (-300.);
                    Json.Obj [ ("k", Json.List []) ] ]) -> ()
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Json.to_string other)
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  (match Json.of_string "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse")

let test_json_float_tokens () =
  Alcotest.(check string) "integral floats keep a digit after the dot"
    "[1.0,0.5]" (Json.to_string (Json.List [ Json.Float 1.0; Json.Float 0.5 ]));
  Alcotest.(check string) "non-finite floats become null" "[null,null,null]"
    (Json.to_string
       (Json.List [ Json.Float Float.nan; Json.Float Float.infinity;
                    Json.Float Float.neg_infinity ]));
  (* %.17g must round-trip doubles exactly *)
  let x = 0.1 +. 0.2 in
  match Json.of_string (Json.to_string (Json.Float x)) with
  | Ok (Json.Float y) ->
      Alcotest.(check int64) "17 significant digits round-trip"
        (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Alcotest.fail "float reparse failed"

(* ---- Clock ----------------------------------------------------------- *)

let test_clock_diff_ns () =
  let t0 = Clock.now_ns () in
  let t1 = Clock.now_ns () in
  let d = Clock.diff_ns ~since:t0 t1 in
  Alcotest.(check bool) "monotonic" true (Int64.compare d 0L >= 0);
  Alcotest.(check int64) "diff is plain subtraction"
    (Int64.sub t1 t0) d

(* ---- span tracer ----------------------------------------------------- *)

let test_span_nesting () =
  with_obs @@ fun () ->
  Lpp_obs.Trace.with_span ~cat:"t" "outer" (fun () ->
      Lpp_obs.Trace.with_span ~cat:"t" "inner" (fun () -> ());
      Lpp_obs.Trace.begin_span ~cat:"t" "argful";
      Lpp_obs.Trace.end_span ~args:[| ("x", 7.0) |] ());
  let spans = Lpp_obs.Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name = List.find (fun (s : Lpp_obs.Trace.span) -> s.name = name) spans in
  let outer = find "outer" and inner = find "inner" and argful = find "argful" in
  Alcotest.(check int) "outer at depth 0" 0 outer.depth;
  Alcotest.(check int) "inner at depth 1" 1 inner.depth;
  Alcotest.(check int) "argful at depth 1" 1 argful.depth;
  Alcotest.(check bool) "args recorded" true (argful.args = [| ("x", 7.0) |]);
  Alcotest.(check int) "same domain" outer.dom inner.dom;
  (* containment: inner ⊆ outer on the int64 timeline *)
  let ends (s : Lpp_obs.Trace.span) = Int64.add s.ts s.dur in
  Alcotest.(check bool) "inner starts after outer" true
    (Int64.compare outer.ts inner.ts <= 0);
  Alcotest.(check bool) "inner ends before outer" true
    (Int64.compare (ends inner) (ends outer) <= 0);
  (* a span recorded even when the thunk raises *)
  (try
     Lpp_obs.Trace.with_span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "raising span recorded" 4
    (List.length (Lpp_obs.Trace.spans ()));
  Lpp_obs.Trace.clear ();
  Alcotest.(check int) "clear empties" 0 (List.length (Lpp_obs.Trace.spans ()))

let test_span_unbalanced_end () =
  with_obs @@ fun () ->
  (* an end with no open span must be ignored, not crash or underflow *)
  Lpp_obs.Trace.end_span ();
  Lpp_obs.Trace.with_span "ok" (fun () -> ());
  Alcotest.(check int) "only the real span" 1
    (List.length (Lpp_obs.Trace.spans ()))

let test_spans_across_domains () =
  with_obs @@ fun () ->
  let chunks =
    Pool.parallel_chunks ~jobs:4 ~n:400 (fun ~lo ~hi ->
        Lpp_obs.Trace.with_span ~cat:"test" "chunk" (fun () -> hi - lo))
  in
  Alcotest.(check int) "all elements covered" 400
    (List.fold_left ( + ) 0 chunks);
  let spans = Lpp_obs.Trace.spans () in
  let named n = List.filter (fun (s : Lpp_obs.Trace.span) -> s.name = n) spans in
  Alcotest.(check int) "one span per chunk" (List.length chunks)
    (List.length (named "chunk"));
  (* the pool monitor wraps every task that went through the queue (all
     chunks except chunk 0, which runs inline on the caller) *)
  let pool_spans =
    List.filter (fun (s : Lpp_obs.Trace.span) -> s.cat = "pool") spans
  in
  Alcotest.(check int) "queued tasks traced" (List.length chunks - 1)
    (List.length pool_spans);
  Alcotest.(check bool) "sorted by start time" true
    (let rec ok = function
       | (a : Lpp_obs.Trace.span) :: (b :: _ as rest) ->
           Int64.compare a.ts b.ts <= 0 && ok rest
       | _ -> true
     in
     ok spans)

(* ---- metrics --------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Lpp_obs.Obs.reset ();
  let c = Lpp_obs.Metrics.counter "test.disabled" in
  Lpp_obs.Metrics.incr c;
  Lpp_obs.Metrics.add c 10;
  Alcotest.(check int) "writes ignored while disabled" 0
    (Lpp_obs.Metrics.value c)

let test_metrics_register_idempotent () =
  let a = Lpp_obs.Metrics.counter "test.same" in
  let b = Lpp_obs.Metrics.counter "test.same" in
  with_obs @@ fun () ->
  Lpp_obs.Metrics.incr a;
  Lpp_obs.Metrics.incr b;
  Alcotest.(check int) "same underlying metric" 2 (Lpp_obs.Metrics.value a);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: \"test.same\" already registered with another kind")
    (fun () -> ignore (Lpp_obs.Metrics.gauge "test.same"))

let test_counter_parallel_merge () =
  let c = Lpp_obs.Metrics.counter "test.parallel_counter" in
  with_obs @@ fun () ->
  let chunks =
    Pool.parallel_chunks ~jobs:4 ~n:1000 (fun ~lo ~hi ->
        for _ = lo to hi - 1 do
          Lpp_obs.Metrics.incr c
        done;
        hi - lo)
  in
  Alcotest.(check int) "chunks cover range" 1000 (List.fold_left ( + ) 0 chunks);
  Alcotest.(check int) "shards merge to the total" 1000 (Lpp_obs.Metrics.value c)

let test_histogram_merge_matches_single_domain () =
  let values = Array.init 500 (fun i -> float_of_int (i * 7 mod 1023)) in
  let observe_all name jobs =
    let h = Lpp_obs.Metrics.histogram name in
    with_obs @@ fun () ->
    ignore
      (Pool.parallel_chunks ~jobs ~n:(Array.length values) (fun ~lo ~hi ->
           for i = lo to hi - 1 do
             Lpp_obs.Metrics.observe h values.(i)
           done;
           0));
    Lpp_obs.Metrics.hist_value h
  in
  let seq = observe_all "test.hist_seq" 1 in
  let par = observe_all "test.hist_par" 4 in
  Alcotest.(check int) "counts equal" seq.count par.count;
  Alcotest.(check (float 1e-9)) "sums equal" seq.sum par.sum;
  Alcotest.(check (array int)) "buckets equal" seq.buckets par.buckets

let test_histogram_buckets () =
  Alcotest.(check int) "v<=1 in bucket 0" 0 (Lpp_obs.Metrics.bucket_of 1.0);
  Alcotest.(check int) "non-positive in bucket 0" 0 (Lpp_obs.Metrics.bucket_of (-5.0));
  Alcotest.(check int) "nan in bucket 0" 0 (Lpp_obs.Metrics.bucket_of Float.nan);
  Alcotest.(check int) "(1,2] in bucket 1" 1 (Lpp_obs.Metrics.bucket_of 2.0);
  Alcotest.(check int) "(2,4] in bucket 2" 2 (Lpp_obs.Metrics.bucket_of 2.5);
  Alcotest.(check int) "exact powers land in the closed-upper bucket" 10
    (Lpp_obs.Metrics.bucket_of 1024.0);
  Alcotest.(check int) "just above a power moves up" 11
    (Lpp_obs.Metrics.bucket_of 1024.5);
  Alcotest.(check int) "infinity overflows" (Lpp_obs.Metrics.bucket_count - 1)
    (Lpp_obs.Metrics.bucket_of Float.infinity);
  (* lo/hi describe the (lo, hi] ranges the buckets actually receive *)
  for i = 1 to 20 do
    let lo = Lpp_obs.Metrics.bucket_lo i and hi = Lpp_obs.Metrics.bucket_hi i in
    Alcotest.(check int) "hi lands in its own bucket" i
      (Lpp_obs.Metrics.bucket_of hi);
    Alcotest.(check int) "lo lands in the bucket below" (i - 1)
      (Lpp_obs.Metrics.bucket_of lo)
  done

let test_gauge_max_merge () =
  let g = Lpp_obs.Metrics.gauge "test.gauge" in
  with_obs @@ fun () ->
  ignore
    (Pool.parallel_chunks ~jobs:4 ~n:64 (fun ~lo ~hi ->
         Lpp_obs.Metrics.set g hi;
         hi - lo));
  Alcotest.(check int) "merged gauge is the max across shards" 64
    (Lpp_obs.Metrics.gauge_value g)

(* ---- frozen-catalog lookup-path counters (hand-computed) ------------- *)

let tiny_catalog () =
  let b = Lpp_pgraph.Graph_builder.create () in
  let a = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "A" ] ~props:[] in
  let c = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "B" ] ~props:[] in
  ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:a ~dst:c ~rel_type:"u" ~props:[]);
  Catalog.build (Lpp_pgraph.Graph_builder.freeze b)

let counter name =
  (* reuse the instrumented modules' registrations by name *)
  Lpp_obs.Metrics.value (Lpp_obs.Metrics.counter name)

let test_lookup_path_counters () =
  let catalog = tiny_catalog () in
  with_obs @@ fun () ->
  Catalog.freeze catalog;
  Alcotest.(check int) "small key space freezes dense" 1
    (counter "catalog.freeze.dense");
  let rc ~dir ~node ~types =
    ignore (Catalog.rc catalog ~dir ~node ~types ~other:None)
  in
  (* Out + any-type: exactly one dense probe *)
  rc ~dir:Direction.Out ~node:(Some 0) ~types:[||];
  Alcotest.(check int) "one dense probe" 1 (counter "catalog.lookup.dense");
  (* Both sums two directed lookups: two more probes *)
  rc ~dir:Direction.Both ~node:(Some 0) ~types:[||];
  Alcotest.(check int) "both = two probes" 3 (counter "catalog.lookup.dense");
  (* one valid type probes the dense array; an out-of-range type is a miss *)
  rc ~dir:Direction.Out ~node:(Some 0) ~types:[| 0; 5 |];
  Alcotest.(check int) "valid type probes dense" 4 (counter "catalog.lookup.dense");
  Alcotest.(check int) "out-of-range type misses" 1 (counter "catalog.lookup.miss");
  (* an unknown label is a bounds miss before the layout is consulted *)
  rc ~dir:Direction.Out ~node:(Some 99) ~types:[||];
  Alcotest.(check int) "unknown label misses" 2 (counter "catalog.lookup.miss");
  (* negative types are skipped without any probe *)
  rc ~dir:Direction.Out ~node:(Some 0) ~types:[| -3 |];
  Alcotest.(check int) "negative type: no probe" 4 (counter "catalog.lookup.dense");
  (* the whole-row sweep takes the dense fast path *)
  let row = Array.make (Catalog.label_count catalog) 0 in
  Catalog.rc_row catalog ~dir:Direction.Out ~node:(Some 0) ~types:[||] ~row;
  Alcotest.(check int) "rc_row dense fast path" 1 (counter "catalog.rc_row.dense");
  Alcotest.(check int) "fast path does not probe per label" 4
    (counter "catalog.lookup.dense");
  (* thawing reroutes everything to the hashtables *)
  Catalog.thaw catalog;
  Alcotest.(check int) "thaw counted" 1 (counter "catalog.thaw");
  rc ~dir:Direction.Out ~node:(Some 0) ~types:[||];
  Alcotest.(check int) "unfrozen lookup" 1 (counter "catalog.lookup.hashtable");
  Catalog.rc_row catalog ~dir:Direction.Out ~node:(Some 0) ~types:[||] ~row;
  Alcotest.(check int) "rc_row generic path" 1 (counter "catalog.rc_row.generic");
  Alcotest.(check int) "generic sweep = one probe per label" 3
    (counter "catalog.lookup.hashtable")

let test_packed_layout_counters () =
  let catalog = tiny_catalog () in
  (* growing a label id to 1500 pushes (L+1)² past the dense slot limit *)
  Catalog.note_node_added catalog ~labels:[| 1500 |];
  with_obs @@ fun () ->
  Catalog.freeze catalog;
  Alcotest.(check int) "large key space freezes packed" 1
    (counter "catalog.freeze.packed");
  ignore (Catalog.rc catalog ~dir:Direction.Out ~node:(Some 0) ~types:[||] ~other:None);
  Alcotest.(check int) "binary-search probe counted" 1
    (counter "catalog.lookup.packed");
  Alcotest.(check int) "no dense probes" 0 (counter "catalog.lookup.dense");
  Catalog.thaw catalog

(* ---- Chrome trace / metrics sinks ------------------------------------ *)

let test_chrome_trace_roundtrip () =
  with_obs @@ fun () ->
  Lpp_obs.Trace.with_span ~cat:"outer" "parent" (fun () ->
      Lpp_obs.Trace.with_span ~cat:"inner" "child" (fun () -> ()));
  let doc = Lpp_obs.Export.chrome_trace () in
  (* the emitted document must survive our own parser *)
  match Json.of_string (Json.to_string doc) with
  | Error msg -> Alcotest.failf "chrome trace does not reparse: %s" msg
  | Ok doc' -> begin
      Alcotest.(check bool) "round-trip equal" true (doc = doc');
      match Json.member "traceEvents" doc' with
      | Some (Json.List events) ->
          let complete =
            List.filter
              (fun e -> Json.member "ph" e = Some (Json.String "X"))
              events
          in
          let metadata =
            List.filter
              (fun e -> Json.member "ph" e = Some (Json.String "M"))
              events
          in
          Alcotest.(check int) "one X event per span" 2 (List.length complete);
          Alcotest.(check int) "one thread-name event per domain" 1
            (List.length metadata);
          List.iter
            (fun e ->
              Alcotest.(check bool) "ts/dur/pid/tid present" true
                (List.for_all
                   (fun k -> Json.member k e <> None)
                   [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ]))
            complete
      | _ -> Alcotest.fail "traceEvents missing"
    end

let test_metrics_json_shape () =
  let c = Lpp_obs.Metrics.counter "test.export_counter" in
  let h = Lpp_obs.Metrics.histogram "test.export_hist" in
  with_obs @@ fun () ->
  Lpp_obs.Metrics.add c 5;
  Lpp_obs.Metrics.observe h 3.0;
  let doc = Lpp_obs.Export.metrics_json () in
  match Json.of_string (Json.to_string doc) with
  | Error msg -> Alcotest.failf "metrics json does not reparse: %s" msg
  | Ok doc' -> begin
      (match Json.member "counters" doc' with
      | Some counters ->
          Alcotest.(check bool) "counter exported" true
            (Json.member "test.export_counter" counters = Some (Json.Int 5))
      | None -> Alcotest.fail "counters missing");
      match Json.member "histograms" doc' with
      | Some hists -> begin
          match Json.member "test.export_hist" hists with
          | Some hist ->
              Alcotest.(check bool) "count exported" true
                (Json.member "count" hist = Some (Json.Int 1));
              (match Json.member "buckets" hist with
              | Some (Json.List [ bucket ]) ->
                  Alcotest.(check bool) "3.0 in (2,4]" true
                    (Json.member "lo" bucket = Some (Json.Float 2.0)
                    && Json.member "hi" bucket = Some (Json.Float 4.0))
              | _ -> Alcotest.fail "expected exactly one non-empty bucket")
          | None -> Alcotest.fail "histogram missing"
        end
      | None -> Alcotest.fail "histograms missing"
    end

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_summary_renders () =
  with_obs @@ fun () ->
  Lpp_obs.Trace.with_span ~cat:"t" "work" (fun () -> ());
  Lpp_obs.Metrics.incr (Lpp_obs.Metrics.counter "test.summary_counter");
  let text = Lpp_obs.Export.summary () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "summary mentions %s" needle)
        true (contains text needle))
    [ "work"; "test.summary_counter" ]

(* ---- the disabled path is bit-identical ------------------------------ *)

let random_graph rng =
  let b = Lpp_pgraph.Graph_builder.create () in
  let n = Rng.int_in rng 2 16 in
  let nodes =
    Array.init n (fun i ->
        let labels =
          List.filteri (fun j _ -> (i + j) mod 3 <> 0 || Rng.bool rng)
            [ "A"; "B"; "C"; "D" ]
        in
        let props =
          if Rng.coin rng 0.4 then [ ("k", Lpp_pgraph.Value.Int (Rng.int rng 4)) ]
          else []
        in
        Lpp_pgraph.Graph_builder.add_node b ~labels ~props)
  in
  let m = Rng.int rng (3 * n) in
  for _ = 1 to m do
    let s = nodes.(Rng.int rng n) and d = nodes.(Rng.int rng n) in
    ignore
      (Lpp_pgraph.Graph_builder.add_rel b ~src:s ~dst:d
         ~rel_type:(if Rng.bool rng then "u" else "v")
         ~props:[])
  done;
  Lpp_pgraph.Graph_builder.freeze b

let random_pattern rng max_nodes =
  let open Lpp_pattern in
  let n = Rng.int_in rng 1 max_nodes in
  let nodes =
    Array.init n (fun _ ->
        { Pattern.n_labels = (if Rng.bool rng then [| Rng.int rng 4 |] else [||]);
          n_props =
            (if Rng.coin rng 0.25 then
               [| (0, Pattern.Eq (Lpp_pgraph.Value.Int (Rng.int rng 4))) |]
             else [||]) })
  in
  let rels = ref [] in
  for i = 1 to n - 1 do
    rels :=
      { Pattern.r_src = i; r_dst = Rng.int rng i; r_types = [||];
        r_directed = Rng.bool rng; r_props = [||];
        r_hops = (if Rng.coin rng 0.15 then Some (1, 2) else None) }
      :: !rels
  done;
  if n >= 2 && Rng.coin rng 0.3 then
    rels :=
      { Pattern.r_src = Rng.int rng n; r_dst = Rng.int rng n; r_types = [||];
        r_directed = true; r_props = [||]; r_hops = None }
      :: !rels;
  Pattern.make ~nodes ~rels:(Array.of_list !rels)

let prop_enabled_estimates_bit_identical =
  QCheck.Test.make ~name:"Obs.enabled does not change any estimate bit"
    ~count:40
    (QCheck.make QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let catalog = Catalog.build g in
      if Rng.bool rng then Catalog.freeze catalog;
      let algs =
        List.init 4 (fun _ ->
            match random_pattern rng 6 with
            | p -> Some (Lpp_pattern.Planner.plan p)
            | exception Invalid_argument _ -> None)
        |> List.filter_map Fun.id
      in
      let configs = Lpp_core.Config.all @ [ Lpp_core.Config.a_lhdt ] in
      let run () =
        List.concat_map
          (fun config ->
            let session = Lpp_core.Estimator.make config catalog in
            List.map
              (fun alg ->
                Int64.bits_of_float
                  (Lpp_core.Estimator.session_estimate session alg))
              algs)
          configs
      in
      let disabled = run () in
      let enabled =
        Lpp_obs.Obs.enable ();
        Fun.protect
          ~finally:(fun () ->
            Lpp_obs.Obs.disable ();
            Lpp_obs.Obs.reset ())
          run
      in
      disabled = enabled)

let suite =
  [
    Alcotest.test_case "json: escape" `Quick test_json_escape;
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: unicode escapes" `Quick test_json_parse_unicode;
    Alcotest.test_case "json: float tokens" `Quick test_json_float_tokens;
    Alcotest.test_case "clock: diff_ns" `Quick test_clock_diff_ns;
    Alcotest.test_case "trace: nesting and args" `Quick test_span_nesting;
    Alcotest.test_case "trace: unbalanced end ignored" `Quick
      test_span_unbalanced_end;
    Alcotest.test_case "trace: spans across domains" `Quick
      test_spans_across_domains;
    Alcotest.test_case "metrics: disabled writes are no-ops" `Quick
      test_metrics_disabled_noop;
    Alcotest.test_case "metrics: registration idempotent" `Quick
      test_metrics_register_idempotent;
    Alcotest.test_case "metrics: parallel counter merge" `Quick
      test_counter_parallel_merge;
    Alcotest.test_case "metrics: merged histogram = single-domain" `Quick
      test_histogram_merge_matches_single_domain;
    Alcotest.test_case "metrics: log2 buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "metrics: gauge max-merge" `Quick test_gauge_max_merge;
    Alcotest.test_case "catalog: lookup-path counters" `Quick
      test_lookup_path_counters;
    Alcotest.test_case "catalog: packed-layout counters" `Quick
      test_packed_layout_counters;
    Alcotest.test_case "export: chrome trace round-trip" `Quick
      test_chrome_trace_roundtrip;
    Alcotest.test_case "export: metrics json shape" `Quick
      test_metrics_json_shape;
    Alcotest.test_case "export: text summary" `Quick test_summary_renders;
    QCheck_alcotest.to_alcotest prop_enabled_estimates_bit_identical;
  ]
