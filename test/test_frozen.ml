(* The frozen catalog read path (Catalog.freeze) must be observationally
   equivalent to the hashtable path: identical nc/rc/simple_rc answers —
   including wildcard sides, out-of-range and post-freeze interned ids — and
   bit-identical estimates through every configuration, one-shot or via the
   session API. *)

open Lpp_pgraph
open Lpp_stats

let random_graph rng =
  let open Lpp_util in
  let b = Graph_builder.create () in
  let n = Rng.int_in rng 1 18 in
  let label_pool = [ "A"; "B"; "C"; "D" ] in
  let nodes =
    Array.init n (fun i ->
        let labels =
          List.filteri (fun j _ -> (i + j) mod 3 <> 0 || Rng.bool rng) label_pool
        in
        Graph_builder.add_node b ~labels ~props:[])
  in
  let m = Rng.int rng (3 * n) in
  for _ = 1 to m do
    let s = nodes.(Rng.int rng n) and d = nodes.(Rng.int rng n) in
    ignore
      (Graph_builder.add_rel b ~src:s ~dst:d
         ~rel_type:(match Rng.int rng 3 with 0 -> "u" | 1 -> "v" | _ -> "w")
         ~props:[])
  done;
  Graph_builder.freeze b

(* Every nc/rc/simple_rc answer over a probe battery: both wildcard sides,
   every direction, empty / single / multi / out-of-range / negative type
   sets, and label ids past the catalog's vocabulary. *)
let observe catalog =
  let labels = Catalog.label_count catalog in
  let node_probes =
    None
    :: List.init (labels + 3) (fun l -> Some (l - 1)) (* includes Some (-1) *)
  in
  let type_probes = [ [||]; [| 0 |]; [| 1 |]; [| 0; 1; 2 |]; [| 99 |]; [| -3 |] ] in
  let acc = ref [] in
  for l = -1 to labels + 2 do
    acc := Catalog.nc catalog l :: !acc
  done;
  List.iter
    (fun dir ->
      List.iter
        (fun node ->
          List.iter
            (fun types ->
              acc := Catalog.simple_rc catalog ~dir ~node ~types :: !acc;
              (* rc_row must agree with per-label rc, including the slots
                 past the frozen snapshot's label space *)
              let row = Array.make (labels + 2) (-1) in
              Catalog.rc_row catalog ~dir ~node ~types ~row;
              Array.iter (fun c -> acc := c :: !acc) row;
              List.iter
                (fun other ->
                  acc := Catalog.rc catalog ~dir ~node ~types ~other :: !acc)
                node_probes)
            type_probes)
        node_probes)
    [ Direction.Out; Direction.In; Direction.Both ];
  acc :=
    Catalog.memory_bytes_simple catalog :: Catalog.memory_bytes_advanced catalog
    :: !acc;
  !acc

let prop_frozen_matches_hashtable =
  QCheck.Test.make ~name:"frozen catalog == hashtable catalog" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Lpp_util.Rng.create (seed + 1) in
      let g = random_graph rng in
      let catalog = Catalog.build g in
      (* grow the id space through the incremental path before freezing, so
         the snapshot must cover ids the build never saw *)
      if Lpp_util.Rng.bool rng then begin
        let big = Catalog.label_count catalog + Lpp_util.Rng.int rng 4 in
        Catalog.note_node_added catalog ~labels:[| big |];
        Catalog.note_rel_added catalog ~src_labels:[| big |] ~typ:5
          ~dst_labels:[| 0 |]
      end;
      let before = observe catalog in
      Catalog.freeze catalog;
      let frozen = observe catalog in
      Catalog.thaw catalog;
      let thawed = observe catalog in
      before = frozen && before = thawed)

(* The packed (sorted-key binary search) layout kicks in when the dense key
   space would exceed the slot limit; a label id around 1500 pushes
   (L+1)² past it. Same equivalence requirement. *)
let test_packed_layout_matches () =
  let { graph; _ } : Fixtures.campus = Fixtures.campus () in
  let catalog = Catalog.build graph in
  Catalog.note_node_added catalog ~labels:[| 1500 |];
  Catalog.note_rel_added catalog ~src_labels:[| 1500 |] ~typ:2
    ~dst_labels:[| 0; 1500 |];
  let before = observe catalog in
  let big_before =
    Catalog.rc catalog ~dir:Direction.Out ~node:(Some 1500) ~types:[| 2 |]
      ~other:(Some 0)
  in
  Catalog.freeze catalog;
  Alcotest.(check bool) "frozen" true (Catalog.is_frozen catalog);
  Alcotest.(check (list int)) "packed probes" before (observe catalog);
  Alcotest.(check int) "grown id count" big_before
    (Catalog.rc catalog ~dir:Direction.Out ~node:(Some 1500) ~types:[| 2 |]
       ~other:(Some 0));
  Alcotest.(check int) "post-freeze interned label counts 0" 0
    (Catalog.rc catalog ~dir:Direction.Out ~node:(Some 2000) ~types:[||]
       ~other:None)

let test_freeze_idempotent () =
  let { graph; _ } : Fixtures.campus = Fixtures.campus () in
  let catalog = Catalog.build graph in
  let before = observe catalog in
  Catalog.freeze catalog;
  Catalog.freeze catalog;
  Alcotest.(check (list int)) "double freeze" before (observe catalog)

let test_frozen_refuses_updates () =
  let { graph; _ } : Fixtures.campus = Fixtures.campus () in
  let catalog = Catalog.build graph in
  Catalog.freeze catalog;
  Alcotest.check_raises "note_node_added refused"
    (Invalid_argument
       "Catalog.note_node_added: catalog is frozen; call Catalog.thaw before \
        incremental updates") (fun () ->
      Catalog.note_node_added catalog ~labels:[| 0 |]);
  Alcotest.check_raises "note_rel_added refused"
    (Invalid_argument
       "Catalog.note_rel_added: catalog is frozen; call Catalog.thaw before \
        incremental updates") (fun () ->
      Catalog.note_rel_added catalog ~src_labels:[| 0 |] ~typ:0
        ~dst_labels:[| 1 |]);
  let nodes = Catalog.nc_star catalog in
  Catalog.thaw catalog;
  Catalog.note_node_added catalog ~labels:[| 0 |];
  Alcotest.(check int) "thaw re-enables updates" (nodes + 1)
    (Catalog.nc_star catalog)

(* Estimates must be bit-identical across: one-shot vs session API, and
   unfrozen vs frozen catalog — for every configuration of the ladder. *)
let test_estimates_bit_identical () =
  let ds = Lpp_datasets.Snb_gen.generate ~persons:100 ~seed:7 () in
  let rng = Lpp_util.Rng.create 42 in
  let spec =
    { (Lpp_workload.Query_gen.default_spec With_props) with
      target = 12; attempts = 60; truth_budget = 1_000_000 }
  in
  let queries = Lpp_workload.Query_gen.generate rng ds spec in
  Alcotest.(check bool) "got queries" true (List.length queries >= 8);
  let algs =
    List.map
      (fun (q : Lpp_workload.Query_gen.query) -> Lpp_pattern.Planner.plan q.pattern)
      queries
  in
  let configs = Lpp_core.Config.all @ [ Lpp_core.Config.a_lhdt ] in
  let bits = List.map Int64.bits_of_float in
  let estimates_oneshot () =
    List.concat_map
      (fun config ->
        List.map (fun alg -> Lpp_core.Estimator.estimate config ds.catalog alg) algs)
      configs
  in
  let estimates_session () =
    List.concat_map
      (fun config ->
        let session = Lpp_core.Estimator.make config ds.catalog in
        List.map (fun alg -> Lpp_core.Estimator.session_estimate session alg) algs)
      configs
  in
  let reference = estimates_oneshot () in
  Alcotest.(check (list int64)) "session == one-shot (unfrozen)"
    (bits reference)
    (bits (estimates_session ()));
  Catalog.freeze ds.catalog;
  Alcotest.(check (list int64)) "frozen one-shot == unfrozen"
    (bits reference)
    (bits (estimates_oneshot ()));
  Alcotest.(check (list int64)) "frozen session == unfrozen"
    (bits reference)
    (bits (estimates_session ()));
  Catalog.thaw ds.catalog;
  Alcotest.(check (list int64)) "thawed == original"
    (bits reference)
    (bits (estimates_oneshot ()))

(* One session serving many differently-shaped algebras must not leak state
   across estimates: interleaved replay equals fresh one-shots. *)
let test_session_no_state_leak () =
  let ds = Lpp_datasets.Snb_gen.generate ~persons:80 ~seed:11 () in
  let rng = Lpp_util.Rng.create 5 in
  let spec =
    { (Lpp_workload.Query_gen.default_spec No_props) with
      target = 10; attempts = 50; truth_budget = 1_000_000 }
  in
  let queries = Lpp_workload.Query_gen.generate rng ds spec in
  let algs =
    List.map
      (fun (q : Lpp_workload.Query_gen.query) -> Lpp_pattern.Planner.plan q.pattern)
      queries
  in
  let config = Lpp_core.Config.a_lhd in
  let session = Lpp_core.Estimator.make config ds.catalog in
  (* run the whole workload twice through one session, in both orders *)
  List.iter
    (fun alg ->
      ignore (Lpp_core.Estimator.session_estimate session alg))
    algs;
  List.iter
    (fun alg ->
      let fresh = Lpp_core.Estimator.estimate config ds.catalog alg in
      let reused = Lpp_core.Estimator.session_estimate session alg in
      Alcotest.(check int64) "reused session bit-identical"
        (Int64.bits_of_float fresh)
        (Int64.bits_of_float reused))
    (List.rev algs)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_frozen_matches_hashtable;
    Alcotest.test_case "frozen: packed layout parity" `Quick
      test_packed_layout_matches;
    Alcotest.test_case "frozen: freeze idempotent" `Quick test_freeze_idempotent;
    Alcotest.test_case "frozen: updates refused" `Quick test_frozen_refuses_updates;
    Alcotest.test_case "frozen: estimates bit-identical" `Quick
      test_estimates_bit_identical;
    Alcotest.test_case "frozen: session state isolation" `Quick
      test_session_no_state_leak;
  ]
