(* Scale-tier invariants: the Bigarray-backed graph/catalog must be
   observationally identical to the boxed path it replaced, the streaming
   id-level builder must agree with the batch string API, the props-off
   (Large tier) generators must produce the identical relationship
   structure, and Wander-Join sampled ground truth must be calibrated
   (the exact count falls inside the reported 95% CI ≳ 90% of the time). *)

open Lpp_pgraph
open Lpp_util

(* Same shape as Test_frozen.random_graph but with a property sprinkle, so
   builder-equality also covers the sparse property tables. *)
let random_graph_spec rng =
  let n = Rng.int_in rng 1 18 in
  let label_pool = [ "A"; "B"; "C"; "D" ] in
  let nodes =
    Array.init n (fun i ->
        let labels =
          List.filteri (fun j _ -> (i + j) mod 3 <> 0 || Rng.bool rng) label_pool
        in
        let props =
          if Rng.bool rng then [ ("k", Value.Int (Rng.int rng 50)) ] else []
        in
        (labels, props))
  in
  let m = Rng.int rng (3 * n) in
  let rels =
    Array.init m (fun _ ->
        let s = Rng.int rng n and d = Rng.int rng n in
        let ty = match Rng.int rng 3 with 0 -> "u" | 1 -> "v" | _ -> "w" in
        let props =
          if Rng.bool rng then [ ("w", Value.Int (Rng.int rng 9)) ] else []
        in
        (s, d, ty, props))
  in
  (nodes, rels)

let build_batch (nodes, rels) =
  let b = Graph_builder.create () in
  let ids =
    Array.map (fun (labels, props) -> Graph_builder.add_node b ~labels ~props)
      nodes
  in
  Array.iter
    (fun (s, d, ty, props) ->
      ignore
        (Graph_builder.add_rel b ~src:ids.(s) ~dst:ids.(d) ~rel_type:ty ~props))
    rels;
  Graph_builder.freeze b

(* The same logical graph through the id-level streaming API (interned
   vocabulary up front, then add_node_ids / add_rel_ids / set_*_prop). *)
let build_streaming (nodes, rels) =
  let b = Graph_builder.create () in
  let label_id = Hashtbl.create 8 in
  List.iter
    (fun l -> Hashtbl.replace label_id l (Graph_builder.intern_label b l))
    [ "A"; "B"; "C"; "D" ];
  let type_id = Hashtbl.create 8 in
  List.iter
    (fun t -> Hashtbl.replace type_id t (Graph_builder.intern_rel_type b t))
    [ "u"; "v"; "w" ];
  let key_id k = Graph_builder.intern_prop_key b k in
  let ids =
    Array.map
      (fun (labels, props) ->
        let lab_ids =
          Array.of_list (List.map (Hashtbl.find label_id) labels)
        in
        let nd = Graph_builder.add_node_ids b ~labels:lab_ids in
        List.iter
          (fun (k, v) -> Graph_builder.set_node_prop b nd ~key:(key_id k) v)
          props;
        nd)
      nodes
  in
  Array.iter
    (fun (s, d, ty, props) ->
      let r =
        Graph_builder.add_rel_ids b ~src:ids.(s) ~dst:ids.(d)
          ~typ:(Hashtbl.find type_id ty)
      in
      List.iter
        (fun (k, v) -> Graph_builder.set_rel_prop b r ~key:(key_id k) v)
        props)
    rels;
  Graph_builder.freeze b

(* Full observational fingerprint of a graph: counts, per-node labels and
   properties, per-rel endpoints/type/properties, and both adjacency sides.
   Name lists are sorted: id assignment order is an interning artefact (the
   batch API interns lazily, the streaming build up front), not observable
   graph structure. *)
let fingerprint g =
  let sorted l = List.sort String.compare l in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "n=%d m=%d p=%d;" (Graph.node_count g) (Graph.rel_count g)
       (Graph.property_count g));
  for nd = 0 to Graph.node_count g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "N%d[%s]{%s}(out:%s in:%s);" nd
         (String.concat ","
            (sorted
               (Array.to_list
                  (Array.map
                     (fun l -> Interner.name (Graph.labels g) l)
                     (Graph.node_labels g nd)))))
         (String.concat ","
            (sorted
               (Array.to_list
                  (Array.map
                     (fun (k, v) ->
                       Printf.sprintf "%s=%s"
                         (Interner.name (Graph.prop_keys g) k)
                         (Value.to_string v))
                     (Graph.node_props g nd)))))
         (String.concat "," (Array.to_list (Array.map string_of_int (Graph.out_rels g nd))))
         (String.concat "," (Array.to_list (Array.map string_of_int (Graph.in_rels g nd)))))
  done;
  for r = 0 to Graph.rel_count g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "R%d:%d-%s->%d{%s};" r (Graph.rel_src g r)
         (Interner.name (Graph.rel_types g) (Graph.rel_type g r))
         (Graph.rel_dst g r)
         (String.concat ","
            (sorted
               (Array.to_list
                  (Array.map
                     (fun (k, v) ->
                       Printf.sprintf "%s=%s"
                         (Interner.name (Graph.prop_keys g) k)
                         (Value.to_string v))
                     (Graph.rel_props g r))))))
  done;
  Buffer.contents buf

let prop_streaming_equals_batch =
  QCheck.Test.make ~name:"streaming builder == batch builder" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let spec = random_graph_spec (Rng.create (seed + 3)) in
      String.equal
        (fingerprint (build_batch spec))
        (fingerprint (build_streaming spec)))

(* CSR adjacency invariants: out_rels/in_rels (fresh copies) agree with the
   iterator API and with the degree accessors; every relationship appears in
   exactly one out-slice and one in-slice, at its endpoints. *)
let prop_csr_accessors_agree =
  QCheck.Test.make ~name:"CSR accessors: copies == iterators == degrees"
    ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = build_batch (random_graph_spec (Rng.create (seed + 11))) in
      let seen_out = Array.make (Graph.rel_count g) 0 in
      let seen_in = Array.make (Graph.rel_count g) 0 in
      let ok = ref true in
      for nd = 0 to Graph.node_count g - 1 do
        let out = Graph.out_rels g nd in
        let collected = ref [] in
        Graph.iter_out_rels g nd (fun r -> collected := r :: !collected);
        if Array.to_list out <> List.rev !collected then ok := false;
        if Array.length out <> Graph.out_degree g nd then ok := false;
        Array.iter
          (fun r ->
            seen_out.(r) <- seen_out.(r) + 1;
            if Graph.rel_src g r <> nd then ok := false)
          out;
        let inr = Graph.in_rels g nd in
        let collected = ref [] in
        Graph.iter_in_rels g nd (fun r -> collected := r :: !collected);
        if Array.to_list inr <> List.rev !collected then ok := false;
        if Array.length inr <> Graph.in_degree g nd then ok := false;
        Array.iter
          (fun r ->
            seen_in.(r) <- seen_in.(r) + 1;
            if Graph.rel_dst g r <> nd then ok := false)
          inr
      done;
      Array.iter (fun c -> if c <> 1 then ok := false) seen_out;
      Array.iter (fun c -> if c <> 1 then ok := false) seen_in;
      (* memory accounting is wired through the same Bigarrays *)
      let breakdown = Graph.memory_breakdown g in
      if Graph.csr_bytes g <= 0 then ok := false;
      List.iter (fun (_, v) -> if v < 0 then ok := false) breakdown;
      !ok)

(* Frozen (packed Bigarray) catalog must answer every estimator
   configuration bit-identically to the unfrozen hashtable path, on random
   graphs with a generated workload. *)
let prop_frozen_estimates_bit_identical =
  QCheck.Test.make ~name:"bigarray frozen estimates == unfrozen, six configs"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = build_batch (random_graph_spec (Rng.create (seed + 23))) in
      let ds = Lpp_datasets.Dataset.make ~name:"rand" g in
      let qs =
        let spec =
          { (Lpp_workload.Query_gen.default_spec No_props) with
            target = 4;
            attempts = 16;
            truth_budget = 200_000;
          }
        in
        Lpp_workload.Query_gen.generate (Rng.create (seed + 1)) ds spec
      in
      let algs =
        (* a rel-free two-node pattern would be disconnected; fall back to a
           single node when the random graph has no relationships at all *)
        (if Graph.rel_count g > 0 then
           Lpp_pattern.Pattern.of_spec g
             [
               Lpp_pattern.Pattern.node_spec ();
               Lpp_pattern.Pattern.node_spec ();
             ]
             [ Lpp_pattern.Pattern.rel_spec ~src:0 ~dst:1 () ]
         else
           Lpp_pattern.Pattern.of_spec g [ Lpp_pattern.Pattern.node_spec () ] [])
        :: List.map
             (fun (q : Lpp_workload.Query_gen.query) -> q.pattern)
             qs
        |> List.map Lpp_pattern.Planner.plan
      in
      let estimates () =
        List.concat_map
          (fun config ->
            List.map
              (fun alg ->
                Int64.bits_of_float
                  (Lpp_core.Estimator.estimate config ds.catalog alg))
              algs)
          Lpp_core.Config.all
      in
      let unfrozen = estimates () in
      Lpp_stats.Catalog.freeze ds.catalog;
      let frozen = estimates () in
      Lpp_stats.Catalog.thaw ds.catalog;
      let thawed = estimates () in
      unfrozen = frozen && unfrozen = thawed)

(* Large-tier generators: props:false must leave the relationship structure
   bit-for-bit identical (same RNG stream), only dropping the properties. *)
let test_props_off_same_structure () =
  let strip_props_fingerprint g =
    (* the structural part of [fingerprint]: ignore property sets *)
    let buf = Buffer.create 256 in
    for nd = 0 to Graph.node_count g - 1 do
      Buffer.add_string buf
        (Printf.sprintf "N%d[%s](%s|%s);" nd
           (String.concat ","
              (Array.to_list
                 (Array.map
                    (fun l -> Interner.name (Graph.labels g) l)
                    (Graph.node_labels g nd))))
           (String.concat "," (Array.to_list (Array.map string_of_int (Graph.out_rels g nd))))
           (String.concat "," (Array.to_list (Array.map string_of_int (Graph.in_rels g nd)))))
    done;
    for r = 0 to Graph.rel_count g - 1 do
      Buffer.add_string buf
        (Printf.sprintf "R%d:%d-%d->%d;" r (Graph.rel_src g r)
           (Graph.rel_type g r) (Graph.rel_dst g r))
    done;
    Buffer.contents buf
  in
  List.iter
    (fun (name, with_p, without_p) ->
      let gp = (with_p : Lpp_datasets.Dataset.t).graph in
      let gn = (without_p : Lpp_datasets.Dataset.t).graph in
      Alcotest.(check int) (name ^ ": no props") 0 (Graph.property_count gn);
      Alcotest.(check bool) (name ^ ": props present") true
        (Graph.property_count gp > 0);
      Alcotest.(check string)
        (name ^ ": identical structure")
        (strip_props_fingerprint gp)
        (strip_props_fingerprint gn))
    [
      ( "snb",
        Lpp_datasets.Snb_gen.generate ~persons:60 ~seed:3 (),
        Lpp_datasets.Snb_gen.generate ~persons:60 ~props:false ~seed:3 () );
      ( "cineasts",
        Lpp_datasets.Cineasts_gen.generate ~movies:80 ~seed:3 (),
        Lpp_datasets.Cineasts_gen.generate ~movies:80 ~props:false ~seed:3 () );
      ( "dbpedia",
        Lpp_datasets.Dbpedia_gen.generate ~entities:400 ~classes:20
          ~rel_kinds:10 ~seed:3 (),
        Lpp_datasets.Dbpedia_gen.generate ~entities:400 ~classes:20
          ~rel_kinds:10 ~props:false ~seed:3 () );
    ]

(* Wander-Join interval calibration: over WJ-supported patterns with known
   exact counts, the true count must land inside the reported 95% CI for
   ≳ 90% of (pattern, seed) pairs. Deterministic seeds. *)
let test_wj_ci_calibration () =
  let ds = Lazy.force Fixtures.small_snb in
  let g = ds.graph in
  let pat specs rels =
    Lpp_pattern.Pattern.of_spec g specs rels
  in
  let open Lpp_pattern.Pattern in
  let patterns =
    [
      pat
        [ node_spec ~labels:[ "Person" ] (); node_spec () ]
        [ rel_spec ~types:[ "KNOWS" ] ~src:0 ~dst:1 () ];
      pat
        [ node_spec ~labels:[ "Person" ] (); node_spec (); node_spec () ]
        [ rel_spec ~types:[ "KNOWS" ] ~src:0 ~dst:1 ();
          rel_spec ~types:[ "KNOWS" ] ~src:1 ~dst:2 () ];
      pat
        [ node_spec ~labels:[ "Forum" ] (); node_spec ~labels:[ "Person" ] () ]
        [ rel_spec ~types:[ "HAS_MEMBER" ] ~src:0 ~dst:1 () ];
      pat
        [ node_spec (); node_spec ~labels:[ "Post" ] (); node_spec () ]
        [ rel_spec ~types:[ "LIKES" ] ~src:0 ~dst:1 ();
          rel_spec ~types:[ "HAS_CREATOR" ] ~src:1 ~dst:2 () ];
    ]
  in
  let wj = Lpp_baselines.Wander_join.build g in
  let trials = ref 0 and covered = ref 0 in
  List.iteri
    (fun pi p ->
      let exact =
        match Lpp_exec.Matcher.count ~budget:30_000_000 g p with
        | Lpp_exec.Matcher.Count c -> float_of_int c
        | Budget_exceeded -> Alcotest.fail "calibration: budget exceeded"
      in
      Alcotest.(check bool) "pattern supported" true
        (Lpp_baselines.Wander_join.supports p);
      for s = 0 to 9 do
        let rng = Rng.create ((1000 * pi) + s + 5) in
        match
          Lpp_baselines.Wander_join.estimate_interval ~rng wj ~walks:1500 p
        with
        | None -> Alcotest.fail "calibration: no interval"
        | Some iv ->
            incr trials;
            if
              iv.Lpp_baselines.Wander_join.ci_low <= exact
              && exact <= iv.Lpp_baselines.Wander_join.ci_high
            then incr covered
      done)
    patterns;
  let coverage = float_of_int !covered /. float_of_int !trials in
  if coverage < 0.9 then
    Alcotest.failf "CI coverage %.2f (%d/%d) below 0.9" coverage !covered
      !trials

(* The sampled-truth workload mode: every query carries a positive interval,
   truth_value is the mean, true_card its rounding, and CI width is exposed;
   exact mode reports no CI. *)
let test_sampled_workload_truth () =
  let ds = Lazy.force Fixtures.small_snb in
  let spec =
    { (Lpp_workload.Query_gen.default_spec No_props) with
      target = 8;
      attempts = 48;
      ground_truth = Lpp_workload.Query_gen.Sampled_wj { walks = 300 };
    }
  in
  let qs = Lpp_workload.Query_gen.generate (Rng.create 9) ds spec in
  Alcotest.(check bool) "got sampled queries" true (List.length qs >= 4);
  List.iter
    (fun (q : Lpp_workload.Query_gen.query) ->
      match q.truth with
      | Lpp_workload.Query_gen.Exact _ -> Alcotest.fail "expected sampled truth"
      | Lpp_workload.Query_gen.Sampled { mean; ci_low; ci_high; walks } ->
          Alcotest.(check bool) "interval ordered" true
            (0.0 <= ci_low && ci_low <= mean && mean <= ci_high);
          Alcotest.(check int) "walks recorded" 300 walks;
          Alcotest.(check (float 1e-9)) "truth_value = mean" mean
            (Lpp_workload.Query_gen.truth_value q);
          Alcotest.(check (float 1e-9)) "ci width" (ci_high -. ci_low)
            (Option.get (Lpp_workload.Query_gen.truth_ci_width q));
          Alcotest.(check int) "true_card = rounded mean"
            (max 1 (int_of_float (Float.round mean)))
            q.true_card;
          (* sampled mode only generalises into the WJ-supported fragment *)
          Alcotest.(check bool) "WJ supports" true
            (Lpp_baselines.Wander_join.supports q.pattern))
    qs;
  let exact_qs =
    Lpp_workload.Query_gen.generate (Rng.create 9) ds
      { (Lpp_workload.Query_gen.default_spec No_props) with
        target = 4;
        attempts = 24;
        truth_budget = 2_000_000;
      }
  in
  List.iter
    (fun (q : Lpp_workload.Query_gen.query) ->
      Alcotest.(check (option (float 0.0))) "exact: no CI" None
        (Lpp_workload.Query_gen.truth_ci_width q))
    exact_qs

(* Scale-tier dispatch table. *)
let test_scale_module () =
  let open Lpp_datasets.Scale in
  List.iter
    (fun t -> Alcotest.(check string) "round trip" (to_string t)
        (match of_name (to_string t) with
        | Ok t' -> to_string t'
        | Error e -> e))
    [ Smoke; Default; Large ];
  Alcotest.(check bool) "unknown tier" true
    (Result.is_error (of_name "galactic"));
  Alcotest.(check bool) "props on by default" true (props Default && props Smoke);
  Alcotest.(check bool) "large drops props" false (props Large);
  Alcotest.(check bool) "large samples truth" true (sampled_truth Large);
  Alcotest.(check bool) "default exact truth" false (sampled_truth Default);
  (match build Smoke ~name:"snb" ~seed:1 with
  | Some ds ->
      Alcotest.(check string) "snb name" "SNB" ds.name;
      Alcotest.(check bool) "smoke-sized" true
        (Lpp_pgraph.Graph.node_count ds.graph < 5_000)
  | None -> Alcotest.fail "snb should build");
  Alcotest.(check bool) "unknown dataset" true
    (build Smoke ~name:"nope" ~seed:1 = None)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_streaming_equals_batch;
    QCheck_alcotest.to_alcotest prop_csr_accessors_agree;
    QCheck_alcotest.to_alcotest prop_frozen_estimates_bit_identical;
    Alcotest.test_case "scale: props off, same structure" `Quick
      test_props_off_same_structure;
    Alcotest.test_case "scale: WJ CI calibration" `Quick test_wj_ci_calibration;
    Alcotest.test_case "scale: sampled workload truth" `Quick
      test_sampled_workload_truth;
    Alcotest.test_case "scale: tier dispatch" `Quick test_scale_module;
  ]
