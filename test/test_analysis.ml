(* Tests for Lpp_analysis: the sequence lint's defect classes, the catalog
   consistency checker on deliberately corrupted catalogs, the soundness
   verifier's interval guarantee against the real estimator, and the opt-in
   zero-short-circuit in the harness.

   Campus label ids (interning order of Fixtures.campus): Course=0 Person=1
   Teacher=2 Student=3 Tutor=4 Seminar=5; rel types teaches=0 assistantOf=1
   attends=2 likes=3. *)

open Lpp_pattern
open Lpp_analysis

let campus = lazy (
  let f = Fixtures.campus () in
  (f, Lpp_stats.Catalog.build f.graph))

let codes (ds : Diagnostic.t list) = List.map (fun d -> d.Diagnostic.code) ds

let has_code c ds = List.mem c (codes ds)

let check_code name c ds =
  Alcotest.(check bool) (name ^ " reports " ^ c) true (has_code c ds)

let alg ?(node_vars = 1) ?(rel_vars = 0) ops =
  { Algebra.ops = Array.of_list ops; node_vars; rel_vars }

(* ---------------- sequence lint: defect classes ---------------- *)

let test_lint_disjoint_labels () =
  let f, cat = Lazy.force campus in
  (* Student and Course live in different partition clusters *)
  let p =
    Pattern.of_spec f.graph
      [ Pattern.node_spec ~labels:[ "Student"; "Course" ] () ] []
  in
  let r = Seq_lint.run ~catalog:cat (Planner.plan p) in
  check_code "disjoint conjunction" "LPP-A101" r.diagnostics;
  Alcotest.(check bool) "provably zero" true r.provably_zero;
  Alcotest.(check bool) "well formed" true r.well_formed

let test_lint_zero_count_label () =
  let _, cat = Lazy.force campus in
  let a =
    alg
      [ Algebra.Get_nodes { var = 0 };
        Label_selection { var = 0; label = 99 } ]
  in
  let r = Seq_lint.run ~catalog:cat a in
  check_code "unknown label" "LPP-A102" r.diagnostics;
  Alcotest.(check bool) "provably zero" true r.provably_zero;
  Alcotest.(check (option int)) "zero at the selection" (Some 1) r.zero_at

let test_lint_zero_count_type () =
  let _, cat = Lazy.force campus in
  let a =
    alg ~node_vars:2 ~rel_vars:1
      [ Algebra.Get_nodes { var = 0 };
        Expand
          { src_var = 0; rel_var = 0; dst_var = 1; types = [| 99 |];
            dir = Lpp_pgraph.Direction.Out; hops = None } ]
  in
  let r = Seq_lint.run ~catalog:cat a in
  check_code "unknown rel type" "LPP-A103" r.diagnostics;
  Alcotest.(check bool) "provably zero" true r.provably_zero

let test_lint_disjoint_merge () =
  let _, cat = Lazy.force campus in
  let a =
    alg ~node_vars:2 ~rel_vars:1
      [ Algebra.Get_nodes { var = 0 };
        Label_selection { var = 0; label = 3 (* Student *) };
        Expand
          { src_var = 0; rel_var = 0; dst_var = 1; types = [||];
            dir = Lpp_pgraph.Direction.Out; hops = None };
        Label_selection { var = 1; label = 0 (* Course *) };
        Merge_on { keep = 0; merge = 1; cycle_len = None } ]
  in
  let r = Seq_lint.run ~catalog:cat a in
  check_code "disjoint merge" "LPP-A104" r.diagnostics;
  Alcotest.(check bool) "provably zero" true r.provably_zero

let test_lint_redundant_superlabel () =
  let _, cat = Lazy.force campus in
  (* Student ⊑ Person in the campus data: selecting Person after Student is
     redundant under the hierarchy *)
  let a =
    alg
      [ Algebra.Get_nodes { var = 0 };
        Label_selection { var = 0; label = 3 (* Student *) };
        Label_selection { var = 0; label = 1 (* Person *) } ]
  in
  let r = Seq_lint.run ~catalog:cat a in
  check_code "redundant superlabel" "LPP-A110" r.diagnostics;
  Alcotest.(check bool) "only a hint, not zero" false r.provably_zero;
  Alcotest.(check bool) "no errors" false (Diagnostic.has_errors r.diagnostics)

let test_lint_duplicate_label () =
  let _, cat = Lazy.force campus in
  let a =
    alg
      [ Algebra.Get_nodes { var = 0 };
        Label_selection { var = 0; label = 3 };
        Label_selection { var = 0; label = 3 } ]
  in
  let r = Seq_lint.run ~catalog:cat a in
  check_code "duplicate label" "LPP-A111" r.diagnostics

let test_lint_duplicate_prop () =
  let a =
    alg
      [ Algebra.Get_nodes { var = 0 };
        Prop_selection
          { kind = Algebra.Node_var; var = 0;
            props = [| (7, Pattern.Exists) |] };
        Prop_selection
          { kind = Algebra.Node_var; var = 0;
            props = [| (7, Pattern.Exists) |] } ]
  in
  (* duplicate detection is purely structural: no catalog needed *)
  let r = Seq_lint.run a in
  check_code "duplicate property" "LPP-A112" r.diagnostics

let test_lint_second_get_nodes () =
  let a =
    alg ~node_vars:2
      [ Algebra.Get_nodes { var = 0 }; Algebra.Get_nodes { var = 1 } ]
  in
  let r = Seq_lint.run a in
  check_code "second Get_nodes" "LPP-A130" r.diagnostics;
  Alcotest.(check bool) "warning only" false
    (Diagnostic.has_errors r.diagnostics)

(* A triangle pattern: a→b→c→a over campus rel types. *)
let triangle_pattern graph =
  Pattern.of_spec graph
    [ Pattern.node_spec (); Pattern.node_spec (); Pattern.node_spec () ]
    [ Pattern.rel_spec ~src:0 ~dst:1 ();
      Pattern.rel_spec ~src:1 ~dst:2 ();
      Pattern.rel_spec ~src:2 ~dst:0 () ]

let test_lint_cycle_metadata () =
  let f, _ = Lazy.force campus in
  let a = Planner.plan (triangle_pattern f.graph) in
  (* the planner's own plan carries consistent cycle metadata *)
  let r = Seq_lint.run a in
  Alcotest.(check bool) "planner plan has no A120" false
    (has_code "LPP-A120" r.diagnostics);
  (* corrupt the Merge_on's cycle_len and the lint must object *)
  let ops =
    Array.map
      (function
        | Algebra.Merge_on m -> Algebra.Merge_on { m with cycle_len = Some 4 }
        | op -> op)
      a.Algebra.ops
  in
  Alcotest.(check bool) "fixture really contains a merge" true
    (Array.exists (function Algebra.Merge_on _ -> true | _ -> false) ops);
  let r = Seq_lint.run { a with ops } in
  check_code "cycle metadata mismatch" "LPP-A120" r.diagnostics

(* ---------------- validate: built on the same dataflow pass ----------- *)

let test_validate_first_error_preserved () =
  let a = alg [ Algebra.Label_selection { var = 0; label = 0 } ] in
  (match Algebra.validate a with
  | Error msg ->
      Alcotest.(check string) "legacy message"
        "node var 0 used before introduction" msg
  | Ok () -> Alcotest.fail "expected an error");
  (* the scan keeps going after the first violation *)
  let a =
    alg ~node_vars:2
      [ Algebra.Label_selection { var = 0; label = 0 };
        Label_selection { var = 1; label = -1 } ]
  in
  let vs = Algebra.Dataflow.scan a in
  (* op 0: unbound var; op 1: unbound var AND negative label *)
  Alcotest.(check int) "all violations collected" 3 (List.length vs);
  let r = Seq_lint.run a in
  Alcotest.(check bool) "lint maps them to codes" true
    (has_code "LPP-A002" r.diagnostics && has_code "LPP-A007" r.diagnostics)

(* ---------------- catalog checker: corruption classes ------------------ *)

(* fresh catalog per test: corruption hooks mutate in place *)
let campus_cat () =
  let f = Fixtures.campus () in
  (f, Lpp_stats.Catalog.build f.graph)

let test_catalog_clean () =
  let _, cat = campus_cat () in
  Alcotest.(check int) "campus catalog consistent" 0
    (List.length (Catalog_check.run cat));
  Lpp_stats.Catalog.freeze cat;
  Alcotest.(check int) "frozen campus catalog consistent" 0
    (List.length (Catalog_check.run cat))

let test_catalog_negative_nc () =
  let _, cat = campus_cat () in
  Lpp_stats.Catalog.unsafe_set_nc cat 0 (-5);
  check_code "negative NC" "LPP-C001" (Catalog_check.run cat)

let test_catalog_wildcard_dominance () =
  let _, cat = campus_cat () in
  (* rc(Person, teaches, Course) far above its wildcard projections *)
  Lpp_stats.Catalog.unsafe_set_rc cat ~src:(Some 1) ~typ:(Some 0)
    ~dst:(Some 0) 1000;
  check_code "dominance violation" "LPP-C002" (Catalog_check.run cat)

let test_catalog_cyclic_hierarchy () =
  let b = Lpp_pgraph.Graph_builder.create () in
  ignore (Lpp_pgraph.Graph_builder.add_node b ~labels:[ "A" ] ~props:[]);
  ignore (Lpp_pgraph.Graph_builder.add_node b ~labels:[ "B" ] ~props:[]);
  let g = Lpp_pgraph.Graph_builder.freeze b in
  let hierarchy =
    (* A ⊑ B and B ⊑ A: a cycle no data-derived hierarchy can produce *)
    Lpp_stats.Label_hierarchy.unsafe_of_supers [| [| 1 |]; [| 0 |] |]
  in
  let cat = Lpp_stats.Catalog.build_with ~hierarchy g in
  check_code "cyclic hierarchy" "LPP-C005" (Catalog_check.run cat)

let test_catalog_overlapping_partition () =
  let b = Lpp_pgraph.Graph_builder.create () in
  ignore (Lpp_pgraph.Graph_builder.add_node b ~labels:[ "A" ] ~props:[]);
  ignore (Lpp_pgraph.Graph_builder.add_node b ~labels:[ "B" ] ~props:[]);
  let g = Lpp_pgraph.Graph_builder.freeze b in
  let partition =
    (* label 1 claimed by both clusters *)
    Lpp_stats.Label_partition.unsafe_make ~cluster:[| 0; 0 |]
      ~members:[| [| 0; 1 |]; [| 1 |] |]
  in
  let cat = Lpp_stats.Catalog.build_with ~partition g in
  check_code "overlapping partition" "LPP-C007" (Catalog_check.run cat)

let test_catalog_frozen_divergence () =
  let _, cat = campus_cat () in
  Lpp_stats.Catalog.freeze cat;
  (* mutate the hashtables underneath the frozen snapshot *)
  Lpp_stats.Catalog.unsafe_set_rc cat ~src:(Some 1) ~typ:(Some 0)
    ~dst:(Some 0) 7;
  check_code "frozen/mutable divergence" "LPP-C009" (Catalog_check.run cat)

(* ---------------- soundness verifier ---------------- *)

let soundness_configs =
  [ Lpp_core.Config.s_l; Lpp_core.Config.a_l; Lpp_core.Config.a_ld;
    Lpp_core.Config.a_lhd; Lpp_core.Config.a_lhdt ]

let check_trace_within cat a =
  List.iter
    (fun config ->
      let s = Soundness.verify config cat a in
      Alcotest.(check bool)
        ("sound under " ^ (Lpp_core.Config.name config))
        true s.sound;
      let tr = Lpp_core.Estimator.trace config cat a in
      List.iteri
        (fun i (_, v) ->
          let iv = s.intervals.(i) in
          if not (iv.Soundness.lo <= v && v <= iv.Soundness.hi) then
            Alcotest.failf "%s op %d: %h outside [%h, %h]"
              (Lpp_core.Config.name config) i v iv.Soundness.lo
              iv.Soundness.hi)
        tr)
    soundness_configs

let test_soundness_campus () =
  let f, cat = Lazy.force campus in
  Lpp_stats.Catalog.freeze cat;
  let patterns =
    [ Pattern.of_spec f.graph [ Pattern.node_spec ~labels:[ "Student" ] () ] [];
      Pattern.of_spec f.graph
        [ Pattern.node_spec ~labels:[ "Person" ] ();
          Pattern.node_spec ~labels:[ "Course" ] () ]
        [ Pattern.rel_spec ~types:[ "teaches" ] ~src:0 ~dst:1 () ];
      triangle_pattern f.graph;
      Pattern.of_spec f.graph
        [ Pattern.node_spec ~labels:[ "Student" ] (); Pattern.node_spec () ]
        [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1
            ~hops:(1, 3) () ] ]
  in
  List.iter (fun p -> check_trace_within cat (Planner.plan p)) patterns

let test_soundness_malformed () =
  let _, cat = Lazy.force campus in
  let a = alg [ Algebra.Label_selection { var = 0; label = 0 } ] in
  let s = Soundness.verify Lpp_core.Config.a_lhd cat a in
  Alcotest.(check bool) "not sound" false s.sound;
  check_code "malformed" "LPP-S003" s.diagnostics;
  Alcotest.(check int) "no intervals" 0 (Array.length s.intervals)

(* Random patterns over random graphs: the estimator's whole trace must lie
   inside the verifier's intervals, for every configuration. *)
let prop_soundness_random =
  QCheck.Test.make ~name:"soundness intervals contain estimator trace"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Lpp_util.Rng.create seed in
      let g = Test_properties.random_graph rng in
      let cat = Lpp_stats.Catalog.build g in
      if Lpp_util.Rng.bool rng then Lpp_stats.Catalog.freeze cat;
      match Test_properties.random_connected_pattern rng 6 with
      | exception Invalid_argument _ -> true
      | p ->
          let a =
            if Lpp_util.Rng.bool rng then Planner.plan p
            else Planner.random_order rng p
          in
          check_trace_within cat a;
          true)

(* Provable zero is a semantic statement about the data, not the estimator:
   whenever the lint proves a prefix empty, the reference evaluator must
   find exactly 0 result mappings. *)
let prop_provably_zero_is_zero =
  QCheck.Test.make ~name:"provably-zero sequences evaluate to 0" ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Lpp_util.Rng.create seed in
      let g = Test_properties.random_graph rng in
      let cat = Lpp_stats.Catalog.build g in
      match Test_properties.random_connected_pattern rng 5 with
      | exception Invalid_argument _ -> true
      | p ->
          let a = Planner.plan p in
          if Lint.provably_zero ~catalog:cat a then
            match Lpp_exec.Reference.count ~jobs:1 g a with
            | Some n -> n = 0
            | None -> true (* budget exceeded; nothing to check *)
          else true)

(* The planner-consistency satellite: every sequence the planner emits —
   heuristic or random order — carries cycle metadata the lint agrees with. *)
let prop_planner_cycle_metadata_consistent =
  QCheck.Test.make ~name:"planner cycle metadata never triggers A120"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Lpp_util.Rng.create seed in
      match Test_properties.random_connected_pattern rng 7 with
      | exception Invalid_argument _ -> true
      | p ->
          let check a = not (has_code "LPP-A120" (Seq_lint.run a).diagnostics) in
          check (Planner.plan p) && check (Planner.random_order rng p))

(* ---------------- estimator integration ---------------- *)

let test_checks_mode_bit_identical () =
  let f, cat = Lazy.force campus in
  let patterns =
    [ Pattern.of_spec f.graph [ Pattern.node_spec ~labels:[ "Person" ] () ] [];
      triangle_pattern f.graph;
      Pattern.of_spec f.graph
        [ Pattern.node_spec ~labels:[ "Student" ] (); Pattern.node_spec () ]
        [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ] ]
  in
  List.iter
    (fun config ->
      let plain = Lpp_core.Estimator.make config cat in
      let checked = Lpp_core.Estimator.make ~checks:true config cat in
      List.iter
        (fun p ->
          let a = Planner.plan p in
          Alcotest.(check (float 0.0))
            "checked session bit-identical"
            (Lpp_core.Estimator.session_estimate plain a)
            (Lpp_core.Estimator.session_estimate checked a))
        patterns)
    soundness_configs

let test_lint_zero_short_circuit () =
  let f, cat = Lazy.force campus in
  let p =
    Pattern.of_spec f.graph
      [ Pattern.node_spec ~labels:[ "Student"; "Course" ] () ] []
  in
  (* A-L has no partition: plain estimation gives 3 × 2/6 = 1, but the lint
     proves the conjunction empty and the short-circuit returns 0 *)
  let plain = Lpp_harness.Technique.ours Lpp_core.Config.a_l cat in
  let sc = Lpp_harness.Technique.ours ~lint_zero:true Lpp_core.Config.a_l cat in
  Alcotest.(check (float 1e-9)) "default estimate" 1.0
    (plain.Lpp_harness.Technique.estimate p);
  Alcotest.(check (float 0.0)) "short-circuited" 0.0
    (sc.Lpp_harness.Technique.estimate p);
  (match Lpp_exec.Matcher.count f.graph p with
  | Lpp_exec.Matcher.Count n -> Alcotest.(check int) "truly empty" 0 n
  | Budget_exceeded -> Alcotest.fail "budget exceeded on 6 nodes");
  (* a satisfiable pattern is not short-circuited *)
  let q =
    Pattern.of_spec f.graph [ Pattern.node_spec ~labels:[ "Student" ] () ] []
  in
  Alcotest.(check (float 1e-9)) "satisfiable pattern untouched"
    (plain.Lpp_harness.Technique.estimate q)
    (sc.Lpp_harness.Technique.estimate q)

(* ---------------- diagnostics & JSON ---------------- *)

let test_diagnostic_json () =
  let d =
    Diagnostic.make Diagnostic.Error ~code:"LPP-A101"
      ~loc:(Diagnostic.Op 3) "labels \"a\"\nand b"
  in
  Alcotest.(check string) "object shape"
    "{\"severity\":\"error\",\"code\":\"LPP-A101\",\"op\":3,\"message\":\"labels \\\"a\\\"\\nand b\"}"
    (Diagnostic.to_json d);
  let s =
    Diagnostic.list_to_json
      [ d; Diagnostic.make Diagnostic.Hint ~loc:(Diagnostic.Stats "nc") ~code:"LPP-C000" "x" ]
  in
  Alcotest.(check bool) "array shape" true
    (Str_contains.contains s "\"stats\":\"nc\""
    && String.length s > 2
    && s.[0] = '[' && s.[String.length s - 1] = ']');
  Alcotest.(check string) "control chars escaped" "a\\u0001b"
    (Diagnostic.json_escape "a\001b")

let suite =
  [
    Alcotest.test_case "lint: disjoint labels (A101)" `Quick
      test_lint_disjoint_labels;
    Alcotest.test_case "lint: zero-count label (A102)" `Quick
      test_lint_zero_count_label;
    Alcotest.test_case "lint: zero-count type (A103)" `Quick
      test_lint_zero_count_type;
    Alcotest.test_case "lint: disjoint merge (A104)" `Quick
      test_lint_disjoint_merge;
    Alcotest.test_case "lint: redundant superlabel (A110)" `Quick
      test_lint_redundant_superlabel;
    Alcotest.test_case "lint: duplicate label (A111)" `Quick
      test_lint_duplicate_label;
    Alcotest.test_case "lint: duplicate property (A112)" `Quick
      test_lint_duplicate_prop;
    Alcotest.test_case "lint: second Get_nodes (A130)" `Quick
      test_lint_second_get_nodes;
    Alcotest.test_case "lint: cycle metadata (A120)" `Quick
      test_lint_cycle_metadata;
    Alcotest.test_case "validate built on dataflow scan" `Quick
      test_validate_first_error_preserved;
    Alcotest.test_case "catalog: clean build passes" `Quick test_catalog_clean;
    Alcotest.test_case "catalog: negative NC (C001)" `Quick
      test_catalog_negative_nc;
    Alcotest.test_case "catalog: wildcard dominance (C002)" `Quick
      test_catalog_wildcard_dominance;
    Alcotest.test_case "catalog: cyclic hierarchy (C005)" `Quick
      test_catalog_cyclic_hierarchy;
    Alcotest.test_case "catalog: overlapping partition (C007)" `Quick
      test_catalog_overlapping_partition;
    Alcotest.test_case "catalog: frozen divergence (C009)" `Quick
      test_catalog_frozen_divergence;
    Alcotest.test_case "soundness: campus patterns" `Quick
      test_soundness_campus;
    Alcotest.test_case "soundness: malformed sequence (S003)" `Quick
      test_soundness_malformed;
    Alcotest.test_case "estimator: checks mode bit-identical" `Quick
      test_checks_mode_bit_identical;
    Alcotest.test_case "harness: lint_zero short-circuit" `Quick
      test_lint_zero_short_circuit;
    Alcotest.test_case "diagnostic JSON" `Quick test_diagnostic_json;
    QCheck_alcotest.to_alcotest prop_soundness_random;
    QCheck_alcotest.to_alcotest prop_provably_zero_is_zero;
    QCheck_alcotest.to_alcotest prop_planner_cycle_metadata_consistent;
  ]
