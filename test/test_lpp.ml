let () =
  Alcotest.run "lpp"
    [
      ("util", Test_util.suite);
      ("pgraph", Test_pgraph.suite);
      ("pattern", Test_pattern.suite);
      ("planner", Test_planner.suite);
      ("matcher", Test_matcher.suite);
      ("stats", Test_stats.suite);
      ("estimator", Test_estimator.suite);
      ("baselines", Test_baselines.suite);
      ("datasets", Test_datasets.suite);
      ("workload", Test_workload.suite);
      ("invariants", Test_invariants.suite);
      ("varlen", Test_varlen.suite);
      ("parse", Test_parse.suite);
      ("triangles", Test_triangles.suite);
      ("incremental", Test_incremental.suite);
      ("frozen", Test_frozen.suite);
      ("harness", Test_harness.suite);
      ("graph_io", Test_graph_io.suite);
      ("formulas", Test_formulas.suite);
      ("properties", Test_properties.suite);
      ("analysis", Test_analysis.suite);
      ("srclint", Test_srclint.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("scale", Test_scale.suite);
    ]
