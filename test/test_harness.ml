(* Tests for Lpp_harness.Technique wrappers and end-to-end harness behaviour
   on the campus fixture, plus remaining report/runner edge cases. *)

open Lpp_pattern

let ds = lazy (Lpp_datasets.Dataset.make ~name:"campus" (Fixtures.campus ()).graph)

let simple_pattern () =
  let g = (Lazy.force ds).graph in
  Pattern.of_spec g
    [ Pattern.node_spec ~labels:[ "Student" ] (); Pattern.node_spec () ]
    [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ]

let test_technique_names () =
  let ds = Lazy.force ds in
  let names =
    List.map
      (fun (t : Lpp_harness.Technique.t) -> t.name)
      (Lpp_harness.Technique.state_of_the_art ~seed:1 ds)
  in
  Alcotest.(check (list string)) "lineup"
    [ "CSets"; "Neo4j"; "A-LHD"; "WJ-1"; "WJ-100"; "WJ-R"; "SumRDF" ]
    names

let test_our_configurations_cover_paper () =
  let ds = Lazy.force ds in
  let names =
    List.map
      (fun (t : Lpp_harness.Technique.t) -> t.name)
      (Lpp_harness.Technique.our_configurations ds)
  in
  List.iter
    (fun expect ->
      Alcotest.(check bool) expect true (List.mem expect names))
    [ "S-L"; "A-L"; "A-LH"; "A-LD"; "A-LHD"; "A-LHD-10%"; "Neo4j" ]

let test_all_techniques_positive_on_supported () =
  let ds = Lazy.force ds in
  let p = simple_pattern () in
  List.iter
    (fun (t : Lpp_harness.Technique.t) ->
      if t.supports p then begin
        let est = t.estimate p in
        Alcotest.(check bool)
          (Printf.sprintf "%s positive finite (%f)" t.name est)
          true
          (Float.is_finite est && est > 0.0)
      end)
    (Lpp_harness.Technique.state_of_the_art ~seed:3 ds
    @ Lpp_harness.Technique.our_configurations ds)

let test_memory_reported () =
  let ds = Lazy.force ds in
  List.iter
    (fun (t : Lpp_harness.Technique.t) ->
      Alcotest.(check bool) (t.name ^ " memory ≥ 0") true (t.memory_bytes >= 0))
    (Lpp_harness.Technique.state_of_the_art ~seed:4 ds)

let test_wj_deterministic_given_seed () =
  let ds = Lazy.force Fixtures.small_snb in
  let p =
    Pattern.of_spec ds.graph
      [ Pattern.node_spec ~labels:[ "Person" ] (); Pattern.node_spec () ]
      [ Pattern.rel_spec ~types:[ "KNOWS" ] ~src:0 ~dst:1 () ]
  in
  let est seed =
    let t = Lpp_harness.Technique.wander_join ~seed WJ_100 ds in
    t.estimate p
  in
  Alcotest.(check (float 0.0)) "same seed same estimate" (est 7) (est 7)

let test_summary_of_counts () =
  (* sanity of the full loop: measurements → q-errors → summary *)
  let ds = Lazy.force ds in
  let p = simple_pattern () in
  let queries =
    [ { Lpp_workload.Query_gen.id = 0; pattern = p;
        shape = Shape.classify p; size = Pattern.size p; true_card = 4;
        truth = Lpp_workload.Query_gen.Exact 4 } ]
  in
  let tech = Lpp_harness.Technique.ours Lpp_core.Config.a_lhd ds.catalog in
  let ms = Lpp_harness.Runner.run ~measure_time:false tech queries in
  match Lpp_util.Quantiles.summarize (Lpp_harness.Runner.q_errors ms) with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check int) "one measurement" 1 s.count;
      Alcotest.(check bool) "exact on campus" true (s.median < 1.05)

let suite =
  [
    Alcotest.test_case "harness: lineup names" `Quick test_technique_names;
    Alcotest.test_case "harness: paper configs" `Quick test_our_configurations_cover_paper;
    Alcotest.test_case "harness: positive estimates" `Quick
      test_all_techniques_positive_on_supported;
    Alcotest.test_case "harness: memory reported" `Quick test_memory_reported;
    Alcotest.test_case "harness: WJ determinism" `Quick test_wj_deterministic_given_seed;
    Alcotest.test_case "harness: summary loop" `Quick test_summary_of_counts;
  ]
