(* The serving layer (Lpp_serve): protocol parsing totality, wire round-trips
   against an in-process server on a Unix socket, bit-identity of served
   estimates against a direct Estimator session, graceful handling of
   malformed and oversized input, and clean shutdown.

   Each test starts its own server on a fresh temporary socket path and stops
   it under Fun.protect, so a failing assertion cannot leak domains into the
   rest of the binary. *)

open Lpp_util

module Serve = Lpp_serve.Server
module Client = Lpp_serve.Client
module Protocol = Lpp_serve.Protocol

let next_sock = ref 0

let temp_sock () =
  incr next_sock;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lpp-test-%d-%d.sock" (Unix.getpid ()) !next_sock)

(* campus fixture + a fan-out of rel types exercised by the patterns below *)
let campus_ds () =
  let f = Fixtures.campus () in
  (f.graph, Lpp_stats.Catalog.build f.graph)

let patterns =
  [
    "(s:Student)-[:attends]->(c:Course)";
    "(t:Tutor)-[:assistantOf]->(x:Teacher)";
    "(a:Person)-[]->(b)";
    "(a)-[:likes]->(b)-[:likes]->(a)";
    "(s:Student)-[:attends]->(c:Seminar), (t:Teacher)-[:teaches]->(c)";
  ]

let with_server ?(config = Lpp_core.Config.a_lhd) ?(workers = 2) ?(batch = 4)
    ?max_line f =
  let graph, catalog = campus_ds () in
  let addr = Serve.Unix_socket (temp_sock ()) in
  let cfg =
    let d = Serve.default_config addr in
    {
      d with
      Serve.workers;
      batch;
      max_line = Option.value max_line ~default:d.Serve.max_line;
      estimator = config;
    }
  in
  let server = Serve.start cfg ~graph ~catalog in
  Fun.protect ~finally:(fun () -> Serve.stop server)
    (fun () -> f ~graph ~catalog ~addr ~server)

let direct_estimates config graph catalog texts =
  let session = Lpp_core.Estimator.make config catalog in
  List.map
    (fun text ->
      match Lpp_pattern.Parse.parse graph text with
      | Ok { pattern; _ } ->
          Lpp_core.Estimator.session_estimate_pattern session pattern
      | Error msg -> Alcotest.failf "fixture pattern %S: %s" text msg)
    texts

let check_bits what expected got =
  Alcotest.(check int64) what
    (Int64.bits_of_float expected)
    (Int64.bits_of_float got)

(* ---- protocol (pure) ------------------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.request_of_line {|{"op":"estimate","pattern":"(a)","config":"S-L","id":7}|} with
  | Ok (Protocol.Estimate { id = Some (Json.Int 7); pattern = "(a)"; config = Some "S-L" }) -> ()
  | Ok _ -> Alcotest.fail "parsed into the wrong request"
  | Error j -> Alcotest.failf "rejected valid request: %s" (Json.to_string j));
  (match Protocol.request_of_line {|{"op":"ping"}|} with
  | Ok (Protocol.Ping { id = None }) -> ()
  | _ -> Alcotest.fail "ping did not parse");
  (match Protocol.request_of_line {|{"op":"stats","id":"s1"}|} with
  | Ok (Protocol.Stats { id = Some (Json.String "s1") }) -> ()
  | _ -> Alcotest.fail "stats did not parse");
  let expect_kind line kind =
    match Protocol.request_of_line line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error j -> begin
        Alcotest.(check bool) "ok:false" true
          (Json.member "ok" j = Some (Json.Bool false));
        match Option.bind (Json.member "error" j) (Json.member "kind") with
        | Some (Json.String k) -> Alcotest.(check string) line kind k
        | _ -> Alcotest.failf "%S: no error.kind" line
      end
  in
  expect_kind "{broken" "bad_json";
  expect_kind {|[1,2,3]|} "bad_request";
  expect_kind {|{"op":"shrug"}|} "bad_request";
  expect_kind {|{"op":"estimate"}|} "bad_request";
  expect_kind {|{"op":"estimate","pattern":17}|} "bad_request";
  (* the id survives into the error response when extractable *)
  match Protocol.request_of_line {|{"op":"shrug","id":42}|} with
  | Error j -> Alcotest.(check bool) "id preserved" true
      (Json.member "id" j = Some (Json.Int 42))
  | Ok _ -> Alcotest.fail "accepted unknown op"

(* any line yields either a valid request or a complete ok:false response —
   the parser never raises and never returns something half-formed *)
let prop_protocol_total =
  let gen =
    QCheck.Gen.(
      oneof
        [
          string_size ~gen:printable (int_bound 60);
          map
            (fun p -> Printf.sprintf {|{"op":"estimate","pattern":%S}|} p)
            (string_size ~gen:printable (int_bound 20));
          map
            (fun op -> Printf.sprintf {|{"op":%S,"id":3}|} op)
            (oneofl [ "estimate"; "ping"; "stats"; "bogus"; "" ]);
          oneofl
            [ {|{"op":"ping"|}; "null"; "17"; ""; "   "; {|{"id":[1,{}]}|} ];
        ])
  in
  QCheck.Test.make ~count:500
    ~name:"any line parses to a request or an ok:false response"
    (QCheck.make ~print:String.escaped gen)
    (fun line ->
      match Protocol.request_of_line line with
      | Ok _ -> true
      | Error j -> Json.member "ok" j = Some (Json.Bool false))

(* ---- wire round-trips ------------------------------------------------ *)

let test_roundtrip_bit_identical () =
  with_server @@ fun ~graph ~catalog ~addr ~server:_ ->
  let expected = direct_estimates Lpp_core.Config.a_lhd graph catalog patterns in
  let expected_sl = direct_estimates Lpp_core.Config.s_l graph catalog patterns in
  let client = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  List.iter2
    (fun text expect ->
      match Client.estimate client text with
      | Ok est -> check_bits text expect est
      | Error msg -> Alcotest.failf "%s: %s" text msg)
    patterns expected;
  (* per-request config override is honored *)
  List.iter2
    (fun text expect ->
      match Client.estimate client ~config:"S-L" text with
      | Ok est -> check_bits (text ^ " [S-L]") expect est
      | Error msg -> Alcotest.failf "%s [S-L]: %s" text msg)
    patterns expected_sl;
  (* ping, stats, and id round-trip *)
  let pong = Client.request client {|{"op":"ping","id":[1,2]}|} in
  Alcotest.(check bool) "pong" true
    (Json.member "pong" pong = Some (Json.Bool true));
  Alcotest.(check bool) "ping id" true
    (Json.member "id" pong = Some (Json.List [ Json.Int 1; Json.Int 2 ]));
  match Json.member "stats" (Client.request client {|{"op":"stats"}|}) with
  | Some (Json.Obj _ as stats) -> begin
      match Json.member "served" stats with
      | Some (Json.Int n) ->
          Alcotest.(check bool) "served counts the estimates" true
            (n >= 2 * List.length patterns)
      | _ -> Alcotest.fail "stats.served missing"
    end
  | _ -> Alcotest.fail "stats did not return an object"

let test_concurrent_clients () =
  with_server @@ fun ~graph ~catalog ~addr ~server:_ ->
  (* all parsing of the expectation happens before the client domains run,
     so the only concurrent parsers are the server's own workers *)
  let expected =
    Array.of_list (direct_estimates Lpp_core.Config.a_lhd graph catalog patterns)
  in
  let texts = Array.of_list patterns in
  let rounds = 25 in
  let client_run () =
    let client = Client.connect addr in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    Array.init (rounds * Array.length texts) (fun i ->
        match Client.estimate client texts.(i mod Array.length texts) with
        | Ok est -> est
        | Error msg -> Alcotest.failf "concurrent estimate failed: %s" msg)
  in
  let domains = List.init 3 (fun _ -> Domain.spawn client_run) in
  let results = List.map Domain.join domains in
  List.iter
    (fun ests ->
      Array.iteri
        (fun i est ->
          check_bits
            (Printf.sprintf "request %d" i)
            expected.(i mod Array.length texts)
            est)
        ests)
    results

let test_malformed_and_oversized () =
  with_server ~max_line:128 @@ fun ~graph:_ ~catalog:_ ~addr ~server:_ ->
  let client = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let kind_of resp =
    match Option.bind (Json.member "error" resp) (Json.member "kind") with
    | Some (Json.String k) -> k
    | _ -> "?"
  in
  let expect_error line kind =
    let resp = Client.request client line in
    Alcotest.(check bool) (line ^ " ok:false") true
      (Json.member "ok" resp = Some (Json.Bool false));
    Alcotest.(check string) line kind (kind_of resp)
  in
  expect_error "{not json" "bad_json";
  expect_error {|{"op":"warmup"}|} "bad_request";
  expect_error {|{"op":"estimate","pattern":"(a:"}|} "parse_error";
  expect_error {|{"op":"estimate","pattern":"(a)","config":"Z-9"}|}
    "unknown_config";
  (* an oversized line earns exactly one rejected response *)
  let big =
    Printf.sprintf {|{"op":"estimate","pattern":"(a:%s)"}|}
      (String.make 200 'x')
  in
  let resp = Client.request client big in
  Alcotest.(check bool) "oversized rejected" true
    (Json.member "rejected" resp = Some (Json.Bool true));
  (match Json.member "reason" resp with
  | Some (Json.String r) -> Alcotest.(check string) "reason" "oversized" r
  | _ -> Alcotest.fail "rejection carried no reason");
  (* the connection survives and the next request is served normally *)
  match Client.estimate client "(a:Person)-[]->(b)" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "connection did not recover: %s" msg

(* deterministic garbage at the wire level: every non-blank line gets exactly
   one JSON response carrying an "ok" member, in order *)
let test_garbage_lines_answered () =
  with_server @@ fun ~graph:_ ~catalog:_ ~addr ~server:_ ->
  let client = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let rng = Rng.create 2024 in
  for i = 1 to 60 do
    let len = 1 + Rng.int rng 40 in
    let line =
      String.init len (fun _ ->
          (* printable, no newline; Client.send_line frames by newline *)
          Char.chr (33 + Rng.int rng 94))
    in
    let resp = Client.request client line in
    match Json.member "ok" resp with
    | Some (Json.Bool _) -> ()
    | _ ->
        Alcotest.failf "garbage line %d (%S) got a response without ok" i line
  done

let test_clean_shutdown () =
  let graph, catalog = campus_ds () in
  let path = temp_sock () in
  let addr = Serve.Unix_socket path in
  let cfg = { (Serve.default_config addr) with Serve.workers = 2; batch = 4 } in
  let server = Serve.start cfg ~graph ~catalog in
  Alcotest.(check bool) "socket exists while serving" true (Sys.file_exists path);
  let client = Client.connect addr in
  (match Client.estimate client "(a:Person)-[]->(b)" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "pre-shutdown estimate failed: %s" msg);
  Serve.stop server;
  Alcotest.(check bool) "socket file removed" true (not (Sys.file_exists path));
  Alcotest.(check bool) "connection got EOF" true (Client.recv_line client = None);
  Client.close client;
  (match Client.connect addr with
  | _ -> Alcotest.fail "connect succeeded after stop"
  | exception Unix.Unix_error _ -> ());
  (* stop is idempotent *)
  Serve.stop server

let suite =
  [
    Alcotest.test_case "protocol: request parsing" `Quick test_protocol_parse;
    QCheck_alcotest.to_alcotest prop_protocol_total;
    Alcotest.test_case "wire: round-trip bit-identical" `Quick
      test_roundtrip_bit_identical;
    Alcotest.test_case "wire: concurrent clients bit-identical" `Quick
      test_concurrent_clients;
    Alcotest.test_case "wire: malformed and oversized input" `Quick
      test_malformed_and_oversized;
    Alcotest.test_case "wire: garbage lines all answered" `Quick
      test_garbage_lines_answered;
    Alcotest.test_case "lifecycle: clean shutdown" `Quick test_clean_shutdown;
  ]
