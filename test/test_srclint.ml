(* Tests for Lpp_srclint (the source linter) and the exception-safe locking
   primitive it enforces. Fixture sources are inline strings fed through
   Check.lint_string under a fake path (the path decides rule scope and the
   allowlist), plus one integration case that lints the real tree from the
   build sandbox. *)

module D = Lpp_analysis.Diagnostic
module Check = Lpp_srclint.Check
module Rules = Lpp_srclint.Rules
module Json = Lpp_util.Json

let lint ?suppress ?(path = "lib/fake.ml") src =
  Check.lint_string ?suppress ~path src

let parse_json s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.fail ("json should parse: " ^ e)

let codes ds = List.map (fun d -> d.D.code) ds

let has c ds = List.mem c (codes ds)

let check_fires name code ?suppress ?path src =
  Alcotest.(check bool)
    (name ^ " reports " ^ code)
    true
    (has code (lint ?suppress ?path src))

let check_clean name ?suppress ?path src =
  Alcotest.(check (list string)) (name ^ " is clean") []
    (codes (lint ?suppress ?path src))

(* ---------------- per-rule fixtures ---------------- *)

let test_d000_parse_error () =
  let ds = lint "let let = in" in
  Alcotest.(check (list string)) "only the parse error" [ "LPP-D000" ]
    (codes ds);
  match (List.hd ds).D.loc with
  | D.Src { file; line } ->
      Alcotest.(check string) "file" "lib/fake.ml" file;
      Alcotest.(check bool) "line recorded" true (line >= 1)
  | _ -> Alcotest.fail "expected Src location"

let test_d001_fires () =
  check_fires "global hashtbl" "LPP-D001" "let cache = Hashtbl.create 16";
  check_fires "global ref" "LPP-D001" "let hits = ref 0";
  check_fires "global atomic" "LPP-D001" "let n = Atomic.make 0";
  check_fires "global buffer" "LPP-D001" "let b = Buffer.create 64";
  (* through a module binding it is still top level *)
  check_fires "inside module" "LPP-D001"
    "module M = struct let cache = Hashtbl.create 16 end";
  (* line points at the binding *)
  let ds = lint "let a = 1\nlet cache = Hashtbl.create 16" in
  match (List.hd ds).D.loc with
  | D.Src { line; _ } -> Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "expected Src location"

let test_d001_clean () =
  check_clean "annotated global"
    {|let cache = Hashtbl.create 16 [@@lpp.domain_safe "guarded by mu"]|};
  check_clean "local state" "let f () = let t = Hashtbl.create 16 in t";
  check_clean "state under fun" "let make () = ref 0";
  check_clean "immutable global" "let limit = 16";
  (* D001 is lib-only: bench and bin may keep globals *)
  check_clean "bench global" ~path:"bench/fake.ml" "let acc = ref 0";
  check_clean "bin global" ~path:"bin/fake.ml" "let acc = ref 0"

let test_d002 () =
  check_fires "ad-hoc spawn" "LPP-D002"
    "let d = Domain.spawn (fun () -> ())";
  check_fires "spawn in bench" "LPP-D002" ~path:"bench/fake.ml"
    "let d = Domain.spawn (fun () -> ())";
  (* the pool and the server own domain lifecycles *)
  check_clean "pool spawns" ~path:"lib/util/pool.ml"
    "let d = Domain.spawn (fun () -> ())";
  check_clean "server spawns" ~path:"lib/serve/server.ml"
    "let d = Domain.spawn (fun () -> ())"

let test_d003 () =
  check_fires "bare lock" "LPP-D003" "let f m = Mutex.lock m";
  check_fires "bare unlock" "LPP-D003" "let f m = Mutex.unlock m";
  check_fires "bare try_lock" "LPP-D003" "let f m = Mutex.try_lock m";
  check_clean "create is fine" "let m = Mutex.create () [@@lpp.domain_safe \"the lock itself\"]";
  check_clean "with_lock is fine" "let f m g = Lpp_util.Sync.with_lock m g";
  (* sync.ml implements with_lock, so it may touch the mutex *)
  check_clean "sync.ml itself" ~path:"lib/util/sync.ml"
    "let f m = Mutex.lock m"

let test_d004 () =
  check_fires "gettimeofday" "LPP-D004" "let t = Unix.gettimeofday";
  check_fires "unix time" "LPP-D004" "let t () = Unix.time ()";
  check_fires "sys time" "LPP-D004" "let t () = Sys.time ()";
  check_fires "wall clock in bin" "LPP-D004" ~path:"bin/fake.ml"
    "let t () = Unix.gettimeofday ()";
  check_clean "monotonic clock" "let t () = Lpp_util.Clock.now_ns ()"

let test_d005 () =
  check_fires "global rng" "LPP-D005" "let x () = Random.int 10";
  check_fires "self_init" "LPP-D005" "let () = Random.self_init ()";
  check_fires "rng in bench" "LPP-D005" ~path:"bench/fake.ml"
    "let x () = Random.int 10";
  check_clean "seeded state"
    "let x st = Random.State.int st 10";
  check_clean "make seeded"
    "let st () = Random.State.make [| 42 |]"

let test_d006 () =
  check_fires "print_endline" "LPP-D006" {|let f () = print_endline "hi"|};
  check_fires "printf" "LPP-D006" {|let f () = Printf.printf "%d" 1|};
  check_fires "format printf" "LPP-D006" {|let f () = Format.printf "hi"|};
  check_fires "stdlib qualified" "LPP-D006"
    {|let f () = Stdlib.print_string "hi"|};
  check_clean "stderr is fine" {|let f () = Printf.eprintf "%d" 1|};
  check_clean "sprintf is fine" {|let f () = Printf.sprintf "%d" 1|};
  check_clean "explicit channel" "let f oc s = output_string oc s";
  (* the CLI owns stdout *)
  check_clean "print in bin" ~path:"bin/fake.ml"
    {|let f () = print_endline "hi"|};
  check_clean "print in bench" ~path:"bench/fake.ml"
    {|let f () = print_endline "hi"|}

let test_d007 () =
  check_fires "catch-all try" "LPP-D007" "let f g = try g () with _ -> 0";
  check_fires "catch-all in or-pattern" "LPP-D007"
    "let f g = try g () with Not_found -> 1 | _ -> 0";
  check_fires "match exception wildcard" "LPP-D007"
    "let f g = match g () with x -> x | exception _ -> 0";
  check_clean "specific exception" "let f g = try g () with Not_found -> 0";
  check_clean "rebound exception"
    {|let f g = try g () with Failure m -> String.length m|};
  (* bin code may be a last-resort handler *)
  check_clean "catch-all in bin" ~path:"bin/fake.ml"
    "let f g = try g () with _ -> 0"

(* ---------------- suppression ---------------- *)

let test_suppress_expression () =
  check_clean "expression allow"
    {|let f () = (print_endline "hi") [@lpp.allow "D006 test fixture"]|};
  (* the allow scopes to its subtree only *)
  check_fires "outside the allow" "LPP-D006"
    {|let f () = (print_endline "a") [@lpp.allow "D006 x"]
      let g () = print_endline "b"|}

let test_suppress_binding () =
  check_clean "binding allow"
    {|let f () = print_endline "hi" [@@lpp.allow "D006 test fixture"]|}

let test_suppress_module () =
  check_clean "floating allow"
    {|[@@@lpp.allow "D006 this whole fixture prints"]
      let f () = print_endline "a"
      let g () = print_endline "b"|};
  (* a floating allow inside a submodule ends with the submodule *)
  check_fires "submodule scope ends" "LPP-D006"
    {|module M = struct
        [@@@lpp.allow "D006 scoped"]
        let f () = print_endline "a"
      end
      let g () = print_endline "b"|}

let test_suppress_global () =
  check_clean "run-level suppress" ~suppress:[ "D006" ]
    {|let f () = print_endline "hi"|};
  check_clean "normalized form" ~suppress:[ "lpp-d006" ]
    {|let f () = print_endline "hi"|};
  Alcotest.(check string) "normalize bare" "LPP-D006"
    (Rules.normalize_code "d006");
  Alcotest.(check string) "normalize full" "LPP-D006"
    (Rules.normalize_code "LPP-D006")

let test_d008 () =
  let warn src =
    let ds = lint src in
    Alcotest.(check (list string)) "one attr warning" [ "LPP-D008" ]
      (codes ds);
    Alcotest.(check string) "severity" "warning"
      (D.severity_string (List.hd ds).D.severity)
  in
  warn "let x = 1 [@@lpp.domain_safe]";
  warn {|let x = 1 [@@lpp.domain_safe ""]|};
  warn {|let f () = (1 + 1) [@lpp.allow "D999 no such rule"]|};
  warn {|let f () = (1 + 1) [@lpp.allow "D006"]|};
  warn "let x = 1 [@@lpp.frobnicate]";
  check_clean "well-formed attrs"
    {|let x = ref 0 [@@lpp.domain_safe "guarded by mu"]
      let f () = (1 + 1) [@lpp.allow "D006 reason given"]|}

(* ---------------- catalog & JSON ---------------- *)

let test_rules_catalog () =
  Alcotest.(check int) "nine rules" 9 (List.length Rules.all);
  List.iter
    (fun (r : Rules.t) ->
      Alcotest.(check bool)
        (r.code ^ " well formed")
        true
        (String.length r.code = 8
        && String.sub r.code 0 5 = "LPP-D"
        && r.title <> "" && r.rationale <> ""))
    Rules.all;
  Alcotest.(check bool) "find known" true (Rules.find "D003" <> None);
  Alcotest.(check bool) "find unknown" true (Rules.find "D999" = None);
  Alcotest.(check bool) "allowlisted" true
    (Rules.allowlisted ~path:"lib/util/pool.ml" "LPP-D002");
  (* suffix match respects path component boundaries *)
  Alcotest.(check bool) "no substring match" false
    (Rules.allowlisted ~path:"lib/util/notpool.ml" "LPP-D002");
  (* the rule table and JSON build without raising *)
  Alcotest.(check bool) "table renders" true
    (String.length (Rules.to_table ()) > 0);
  match parse_json (Json.to_string (Rules.to_json ())) with
  | Json.List l -> Alcotest.(check int) "json rules" 9 (List.length l)
  | _ -> Alcotest.fail "rules json should be a list"

let test_diagnostic_json_roundtrip () =
  let ds =
    lint
      "let cache = Hashtbl.create 16\nlet f () = Random.int 10\nlet g m = Mutex.lock m"
  in
  Alcotest.(check int) "three findings" 3 (List.length ds);
  match parse_json (D.list_to_json ds) with
  | Json.List objs ->
      Alcotest.(check int) "three objects" 3 (List.length objs);
      List.iter2
        (fun d j ->
          match j with
          | Json.Obj fields ->
              Alcotest.(check bool) "code" true
                (List.assoc "code" fields = Json.String d.D.code);
              Alcotest.(check bool) "file" true
                (List.assoc "file" fields = Json.String "lib/fake.ml");
              (match d.D.loc with
              | D.Src { line; _ } ->
                  Alcotest.(check bool) "line" true
                    (List.assoc "line" fields = Json.Int line)
              | _ -> Alcotest.fail "expected Src location")
          | _ -> Alcotest.fail "diagnostic should be an object")
        ds objs
  | _ -> Alcotest.fail "diagnostics json should be a list"

(* ---------------- whole-tree runs ---------------- *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_tree files f =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lpp_srclint_%d" (Unix.getpid ()))
  in
  if Sys.file_exists root then rm_rf root;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists root then rm_rf root)
    (fun () ->
      List.iter
        (fun (rel, contents) ->
          let abs = Filename.concat root rel in
          let rec mkdirs d =
            if not (Sys.file_exists d) then begin
              mkdirs (Filename.dirname d);
              Sys.mkdir d 0o755
            end
          in
          mkdirs (Filename.dirname abs);
          write_file abs contents)
        files;
      f root)

let test_run_temp_tree () =
  with_temp_tree
    [
      ("lib/a/bad.ml", "let cache = Hashtbl.create 16");
      ("lib/a/good.ml", "let f x = x + 1");
      ("bin/main.ml", {|let () = print_endline "hi"|});
      ("lib/skip.txt", "not ocaml");
    ]
    (fun root ->
      let r = Lpp_srclint.Srclint.run ~root () in
      Alcotest.(check (list string)) "files discovered, sorted"
        [ "bin/main.ml"; "lib/a/bad.ml"; "lib/a/good.ml" ]
        r.files;
      Alcotest.(check int) "one error" 1 (Lpp_srclint.Srclint.errors r);
      Alcotest.(check int) "no warnings" 0 (Lpp_srclint.Srclint.warnings r);
      Alcotest.(check (list string)) "the one finding" [ "LPP-D001" ]
        (codes r.diagnostics);
      (* report JSON round-trips through the hand-rolled parser *)
      (match parse_json (Json.to_string (Lpp_srclint.Srclint.to_json r)) with
      | Json.Obj fields ->
          Alcotest.(check bool) "errors field" true
            (List.assoc "errors" fields = Json.Int 1);
          Alcotest.(check bool) "files field" true
            (List.assoc "files" fields = Json.Int 3)
      | _ -> Alcotest.fail "report json should be an object");
      (* run-level suppression silences the code *)
      let r' = Lpp_srclint.Srclint.run ~suppress:[ "D001" ] ~root () in
      Alcotest.(check int) "suppressed" 0 (Lpp_srclint.Srclint.errors r'))

let test_real_tree_lints_clean () =
  (* the test binary runs in _build/default/test; the checkout is 3 up *)
  let root = "../../.." in
  if
    Sys.file_exists (Filename.concat root "dune-project")
    && Sys.file_exists (Filename.concat root "lib")
  then begin
    let r = Lpp_srclint.Srclint.run ~root () in
    Alcotest.(check bool) "tree has files" true (List.length r.files > 40);
    Alcotest.(check (list string)) "real tree lints clean" []
      (codes r.diagnostics)
  end

(* ---------------- the locking primitive ---------------- *)

let test_with_lock_releases () =
  let m = Mutex.create () in
  Alcotest.(check int) "returns the body's value" 42
    (Lpp_util.Sync.with_lock m (fun () -> 42));
  Alcotest.(check bool) "released after return" true (Mutex.try_lock m);
  Mutex.unlock m;
  (match Lpp_util.Sync.with_lock m (fun () -> raise Exit) with
  | () -> Alcotest.fail "body should raise"
  | exception Exit -> ());
  Alcotest.(check bool) "released after raise" true (Mutex.try_lock m);
  Mutex.unlock m

let test_pool_survives_raising_chunk () =
  (* a raising task must reach the caller, not kill a worker domain *)
  (match
     Lpp_util.Pool.parallel_map_array ~jobs:2
       (fun i -> if i = 5 then raise Exit else i)
       (Array.init 16 Fun.id)
   with
  | _ -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  (* and the pool stays usable afterwards *)
  let r =
    Lpp_util.Pool.parallel_map_array ~jobs:2 (fun i -> i * i)
      (Array.init 16 Fun.id)
  in
  Alcotest.(check int) "pool still works" 225 r.(15)

let test_pool_survives_raising_monitor () =
  Fun.protect
    ~finally:(fun () -> Lpp_util.Pool.set_monitor None)
    (fun () ->
      Lpp_util.Pool.set_monitor
        (Some (fun ~helped:_ ~queue_depth:_ _thunk -> raise Exit));
      match
        Lpp_util.Pool.parallel_map_array ~jobs:2 Fun.id (Array.init 16 Fun.id)
      with
      | _ -> Alcotest.fail "expected the monitor's exception"
      | exception Exit -> ());
  let r =
    Lpp_util.Pool.parallel_map_array ~jobs:2 (fun i -> i + 1)
      (Array.init 8 Fun.id)
  in
  Alcotest.(check int) "pool recovered" 8 r.(7)

let test_pool_monitor_dropping_task () =
  Fun.protect
    ~finally:(fun () -> Lpp_util.Pool.set_monitor None)
    (fun () ->
      Lpp_util.Pool.set_monitor
        (Some (fun ~helped:_ ~queue_depth:_ _thunk -> ()));
      match
        Lpp_util.Pool.parallel_map_array ~jobs:2 Fun.id (Array.init 4 Fun.id)
      with
      | _ -> Alcotest.fail "expected a failure for the dropped task"
      | exception Failure m ->
          Alcotest.(check bool) "names the monitor" true
            (Str_contains.contains m "monitor"))

let suite =
  [
    Alcotest.test_case "D000: parse error" `Quick test_d000_parse_error;
    Alcotest.test_case "D001: top-level mutable state fires" `Quick
      test_d001_fires;
    Alcotest.test_case "D001: annotated/local/non-lib is clean" `Quick
      test_d001_clean;
    Alcotest.test_case "D002: Domain.spawn outside pool/server" `Quick
      test_d002;
    Alcotest.test_case "D003: bare Mutex.lock" `Quick test_d003;
    Alcotest.test_case "D004: wall-clock time" `Quick test_d004;
    Alcotest.test_case "D005: global RNG" `Quick test_d005;
    Alcotest.test_case "D006: stdout writes in lib" `Quick test_d006;
    Alcotest.test_case "D007: catch-all handlers" `Quick test_d007;
    Alcotest.test_case "suppress: expression [@lpp.allow]" `Quick
      test_suppress_expression;
    Alcotest.test_case "suppress: binding [@@lpp.allow]" `Quick
      test_suppress_binding;
    Alcotest.test_case "suppress: floating [@@@lpp.allow]" `Quick
      test_suppress_module;
    Alcotest.test_case "suppress: run-level --suppress" `Quick
      test_suppress_global;
    Alcotest.test_case "D008: attribute hygiene" `Quick test_d008;
    Alcotest.test_case "rules: catalog shape" `Quick test_rules_catalog;
    Alcotest.test_case "json: diagnostics round-trip" `Quick
      test_diagnostic_json_roundtrip;
    Alcotest.test_case "run: temp tree discovery + report" `Quick
      test_run_temp_tree;
    Alcotest.test_case "run: the real tree lints clean" `Quick
      test_real_tree_lints_clean;
    Alcotest.test_case "sync: with_lock releases on raise" `Quick
      test_with_lock_releases;
    Alcotest.test_case "pool: raising chunk propagates" `Quick
      test_pool_survives_raising_chunk;
    Alcotest.test_case "pool: raising monitor propagates" `Quick
      test_pool_survives_raising_monitor;
    Alcotest.test_case "pool: monitor that drops its task" `Quick
      test_pool_monitor_dropping_task;
  ]
