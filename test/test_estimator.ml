(* Tests for Lpp_core.Estimator: per-operator formulas, exactness on uniform
   data, and the configuration ladder (S-L … A-LHD). *)

open Lpp_pattern
open Lpp_core

let label g name =
  Option.get (Lpp_pgraph.Interner.find_opt (Lpp_pgraph.Graph.labels g) name)

let check_est = Alcotest.(check (float 1e-6))

let estimate config (ds_graph : Lpp_pgraph.Graph.t) catalog specs rels =
  let p = Pattern.of_spec ds_graph specs rels in
  Estimator.estimate_pattern config catalog p

let campus_catalog = lazy (
  let f = Fixtures.campus () in
  (f, Lpp_stats.Catalog.build f.graph))

(* ---------------- GetNodes / LabelSelection ---------------- *)

let test_get_nodes_card () =
  let f, cat = Lazy.force campus_catalog in
  check_est "all nodes" 6.0
    (estimate Config.a_lhd f.graph cat [ Pattern.node_spec () ] [])

let test_single_label_exact () =
  let f, cat = Lazy.force campus_catalog in
  check_est "students" 3.0
    (estimate Config.a_lhd f.graph cat
       [ Pattern.node_spec ~labels:[ "Student" ] () ] []);
  check_est "seminars" 1.0
    (estimate Config.a_lhd f.graph cat
       [ Pattern.node_spec ~labels:[ "Seminar" ] () ] [])

let test_sublabel_pair_with_hierarchy () =
  let f, cat = Lazy.force campus_catalog in
  (* {Person, Student}: with H_L, Person is implied by Student → exact 3 *)
  check_est "hierarchy makes it exact" 3.0
    (estimate Config.a_lhd f.graph cat
       [ Pattern.node_spec ~labels:[ "Person"; "Student" ] () ] []);
  (* without H_L, independence: 3 × P(Person) = 3 × 4/6 = 2 *)
  check_est "independence underestimates" 2.0
    (estimate Config.a_l f.graph cat
       [ Pattern.node_spec ~labels:[ "Person"; "Student" ] () ] [])

let test_disjoint_pair_with_partition () =
  let f, cat = Lazy.force campus_catalog in
  (* Student and Course are cross-cluster: with D_L the estimate is 0 *)
  check_est "disjoint labels → 0" 0.0
    (estimate Config.a_ld f.graph cat
       [ Pattern.node_spec ~labels:[ "Student"; "Course" ] () ] []);
  (* without D_L, independence gives 3 × 2/6 = 1 *)
  check_est "without D_L nonzero" 1.0
    (estimate Config.a_l f.graph cat
       [ Pattern.node_spec ~labels:[ "Student"; "Course" ] () ] [])

let test_overlapping_labels_independence () =
  let f, cat = Lazy.force campus_catalog in
  (* Student ∩ Tutor: truth is 1 (only C). Under A-L independence:
     3 × P(Tutor) = 3 × 1/6 = 0.5 *)
  check_est "overlap via independence" 0.5
    (estimate Config.a_l f.graph cat
       [ Pattern.node_spec ~labels:[ "Student"; "Tutor" ] () ] [])

(* ---------------- Expand ---------------- *)

let test_expand_exact_on_uniform_bipartite () =
  let g = Fixtures.bipartite ~k_left:10 ~k_right:5 ~deg:3 in
  let cat = Lpp_stats.Catalog.build g in
  check_est "L-t->R = 30" 30.0
    (estimate Config.a_l g cat
       [ Pattern.node_spec ~labels:[ "L" ] (); Pattern.node_spec ~labels:[ "R" ] () ]
       [ Pattern.rel_spec ~types:[ "t" ] ~src:0 ~dst:1 () ]);
  (* Reversed traversal (planner starts at R, expands In). The probability-
     first representative ordering ranks the selected label R before the
     case-4-polluted L, so this is exact with or without D_L. *)
  check_est "R<-t-L = 30 with D_L" 30.0
    (estimate Config.a_ld g cat
       [ Pattern.node_spec ~labels:[ "R" ] (); Pattern.node_spec ~labels:[ "L" ] () ]
       [ Pattern.rel_spec ~types:[ "t" ] ~src:1 ~dst:0 () ]);
  check_est "R<-t-L = 30 without D_L" 30.0
    (estimate Config.a_l g cat
       [ Pattern.node_spec ~labels:[ "R" ] (); Pattern.node_spec ~labels:[ "L" ] () ]
       [ Pattern.rel_spec ~types:[ "t" ] ~src:1 ~dst:0 () ])

let test_expand_undirected_doubles () =
  let g = Fixtures.bipartite ~k_left:4 ~k_right:4 ~deg:2 in
  let cat = Lpp_stats.Catalog.build g in
  (* untyped undirected edge between unlabeled endpoints: every rel matches
     twice (once per orientation): 8 nodes, 8 rels → 16 *)
  check_est "undirected doubles" 16.0
    (estimate Config.a_l g cat
       [ Pattern.node_spec (); Pattern.node_spec () ]
       [ Pattern.rel_spec ~directed:false ~src:0 ~dst:1 () ])

(* Advanced triples beat simple pair counts when a type mixes endpoint labels:
   a1,a2:A → x:X and b1,b2:B → y:Y, all via type t. *)
let mixed_type_graph () =
  let b = Lpp_pgraph.Graph_builder.create () in
  let add l = Lpp_pgraph.Graph_builder.add_node b ~labels:[ l ] ~props:[] in
  let a1 = add "A" and a2 = add "A" and b1 = add "B" and b2 = add "B" in
  let x = add "X" and y = add "Y" in
  let e src dst =
    ignore (Lpp_pgraph.Graph_builder.add_rel b ~src ~dst ~rel_type:"t" ~props:[])
  in
  e a1 x;
  e a2 x;
  e b1 y;
  e b2 y;
  Lpp_pgraph.Graph_builder.freeze b

let test_advanced_vs_simple_target_probs () =
  let g = mixed_type_graph () in
  let cat = Lpp_stats.Catalog.build g in
  let specs =
    [ Pattern.node_spec ~labels:[ "A" ] (); Pattern.node_spec ~labels:[ "X" ] () ]
  in
  let rels = [ Pattern.rel_spec ~types:[ "t" ] ~src:0 ~dst:1 () ] in
  (* truth: 2. A-L uses RC(A,t,X) → target is X with probability 1 → exact. *)
  check_est "A-L exact" 2.0 (estimate Config.a_l g cat specs rels);
  (* S-L only knows that half of all t-targets carry X → 2 × 0.5 = 1. *)
  check_est "S-L dilutes" 1.0 (estimate Config.s_l g cat specs rels)

let test_expand_source_prob_update () =
  (* After expanding, high-degree source labels are over-represented:
     graph: h:H with 3 out-edges, l:L with 1 out-edge, both type t to m:M. *)
  let b = Lpp_pgraph.Graph_builder.create () in
  let add l = Lpp_pgraph.Graph_builder.add_node b ~labels:[ l ] ~props:[] in
  let h = add "H" and l = add "L" and m = add "M" in
  let e src dst =
    ignore (Lpp_pgraph.Graph_builder.add_rel b ~src ~dst ~rel_type:"t" ~props:[])
  in
  e h m;
  e h m;
  e h m;
  e l m;
  let g = Lpp_pgraph.Graph_builder.freeze b in
  let cat = Lpp_stats.Catalog.build g in
  (* (v)-[t]->(m:M) then select H on v: of the 4 expansion rows, 3 have H.
     estimate: expand from unlabeled start... pattern (v:H)-[t]->(w:M) = 3 *)
  check_est "H rows" 3.0
    (estimate Config.a_ld g cat
       [ Pattern.node_spec ~labels:[ "H" ] (); Pattern.node_spec ~labels:[ "M" ] () ]
       [ Pattern.rel_spec ~types:[ "t" ] ~src:0 ~dst:1 () ])

(* ---------------- PropertySelection ---------------- *)

let test_prop_selection_fixed_mode () =
  let f, cat = Lazy.force campus_catalog in
  check_est "10% of students" 0.3
    (estimate Config.a_lhd_10pct f.graph cat
       [ Pattern.node_spec ~labels:[ "Student" ]
           ~props:[ ("semester", Pattern.Exists) ] () ]
       [])

let test_prop_selection_stats_mode () =
  let f, cat = Lazy.force campus_catalog in
  (* A-L: L' = all labels with positive probability after σ_Student;
     P(Student)=1, others unchanged: Person, Tutor, Teacher, Course→0? Course
     stays 2/6 without D_L. sel(semester | ℓ) is 1/4 for Person, 1/3 for
     Student, 0 elsewhere. avg over 6 positive labels = (1/4 + 1/3)/6. *)
  let expected = 3.0 *. ((0.25 +. (1.0 /. 3.0)) /. 6.0) in
  check_est "postgres-style estimate" expected
    (estimate Config.a_l f.graph cat
       [ Pattern.node_spec ~labels:[ "Student" ]
           ~props:[ ("semester", Pattern.Exists) ] () ]
       [])

let test_prop_selection_min_combining () =
  let f, cat = Lazy.force campus_catalog in
  (* two predicates on the same node: the more selective one wins (correlated
     predicates assumption) rather than multiplying. *)
  let one =
    estimate Config.a_lhd f.graph cat
      [ Pattern.node_spec ~labels:[ "Person" ] ~props:[ ("name", Pattern.Exists) ] () ]
      []
  in
  let both =
    estimate Config.a_lhd f.graph cat
      [ Pattern.node_spec ~labels:[ "Person" ]
          ~props:[ ("name", Pattern.Exists); ("semester", Pattern.Exists) ] () ]
      []
  in
  let semester_only =
    estimate Config.a_lhd f.graph cat
      [ Pattern.node_spec ~labels:[ "Person" ]
          ~props:[ ("semester", Pattern.Exists) ] () ]
      []
  in
  Alcotest.(check bool) "min-combining" true
    (both <= one && Float.abs (both -. semester_only) < 1e-9)

let test_rel_prop_selection () =
  (* relationship predicate scales the Expand output by sel(type, key) *)
  let b = Lpp_pgraph.Graph_builder.create () in
  let n () = Lpp_pgraph.Graph_builder.add_node b ~labels:[ "N" ] ~props:[] in
  let s = n () and d = n () in
  ignore
    (Lpp_pgraph.Graph_builder.add_rel b ~src:s ~dst:d ~rel_type:"t"
       ~props:[ ("w", Lpp_pgraph.Value.Int 1) ]);
  ignore (Lpp_pgraph.Graph_builder.add_rel b ~src:s ~dst:d ~rel_type:"t" ~props:[]);
  let g = Lpp_pgraph.Graph_builder.freeze b in
  let cat = Lpp_stats.Catalog.build g in
  check_est "half the rels have w" 1.0
    (estimate Config.a_lhd g cat
       [ Pattern.node_spec (); Pattern.node_spec () ]
       [ Pattern.rel_spec ~types:[ "t" ] ~rprops:[ ("w", Pattern.Exists) ]
           ~src:0 ~dst:1 () ])

(* ---------------- MergeOn ---------------- *)

let test_merge_on_triangle () =
  let g, _ = Fixtures.triangle () in
  let cat = Lpp_stats.Catalog.build g in
  let p =
    Pattern.make
      ~nodes:
        (Array.init 3 (fun _ -> { Pattern.n_labels = [||]; n_props = [||] }))
      ~rels:
        (Array.init 3 (fun i ->
             { Pattern.r_src = i; r_dst = (i + 1) mod 3; r_types = [||];
               r_directed = true; r_props = [||]; r_hops = None }))
  in
  let est = Estimator.estimate_pattern Config.a_lhd cat p in
  (* truth is 3; the estimator must stay positive and within a sane factor *)
  Alcotest.(check bool) "positive and bounded" true (est > 0.0 && est < 64.0)

let test_merge_reduces_cardinality () =
  let ds = Lazy.force Fixtures.small_snb in
  let cat = ds.catalog in
  let chain =
    Pattern.make
      ~nodes:(Array.init 3 (fun _ -> { Pattern.n_labels = [||]; n_props = [||] }))
      ~rels:
        [| { Pattern.r_src = 0; r_dst = 1; r_types = [||]; r_directed = true;
             r_props = [||]; r_hops = None };
           { Pattern.r_src = 1; r_dst = 2; r_types = [||]; r_directed = true;
             r_props = [||]; r_hops = None } |]
  in
  let closed =
    Pattern.make
      ~nodes:(Array.init 3 (fun _ -> { Pattern.n_labels = [||]; n_props = [||] }))
      ~rels:
        [| { Pattern.r_src = 0; r_dst = 1; r_types = [||]; r_directed = true;
             r_props = [||]; r_hops = None };
           { Pattern.r_src = 1; r_dst = 2; r_types = [||]; r_directed = true;
             r_props = [||]; r_hops = None };
           { Pattern.r_src = 2; r_dst = 0; r_types = [||]; r_directed = true;
             r_props = [||]; r_hops = None } |]
  in
  let est_chain = Estimator.estimate_pattern Config.a_lhd cat chain in
  let est_closed = Estimator.estimate_pattern Config.a_lhd cat closed in
  Alcotest.(check bool) "closing a cycle reduces the estimate" true
    (est_closed < est_chain)

(* ---------------- Algorithm-level properties ---------------- *)

let test_trace_length_and_final () =
  let f, cat = Lazy.force campus_catalog in
  let p =
    Pattern.of_spec f.graph
      [ Pattern.node_spec ~labels:[ "Student" ] (); Pattern.node_spec () ]
      [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ]
  in
  let alg = Planner.plan p in
  let tr = Estimator.trace Config.a_lhd cat alg in
  Alcotest.(check int) "one entry per op" (Algebra.op_count alg) (List.length tr);
  let _, final = List.nth tr (List.length tr - 1) in
  check_est "trace final = estimate" (Estimator.estimate Config.a_lhd cat alg) final

let test_estimates_finite_on_random_queries () =
  let ds = Lazy.force Fixtures.small_snb in
  let rng = Lpp_util.Rng.create 4242 in
  let spec =
    { (Lpp_workload.Query_gen.default_spec No_props) with
      target = 25; attempts = 100; truth_budget = 3_000_000 }
  in
  let queries = Lpp_workload.Query_gen.generate rng ds spec in
  Alcotest.(check bool) "generated some queries" true (List.length queries > 10);
  List.iter
    (fun (q : Lpp_workload.Query_gen.query) ->
      List.iter
        (fun config ->
          let est = Estimator.estimate_pattern config ds.catalog q.pattern in
          Alcotest.(check bool)
            (Printf.sprintf "finite non-negative (%s, q%d)" (Config.name config) q.id)
            true
            (Float.is_finite est && est >= 0.0))
        Config.all)
    queries

let test_config_names () =
  Alcotest.(check string) "S-L" "S-L" (Config.name Config.s_l);
  Alcotest.(check string) "A-L" "A-L" (Config.name Config.a_l);
  Alcotest.(check string) "A-LH" "A-LH" (Config.name Config.a_lh);
  Alcotest.(check string) "A-LD" "A-LD" (Config.name Config.a_ld);
  Alcotest.(check string) "A-LHD" "A-LHD" (Config.name Config.a_lhd);
  Alcotest.(check string) "A-LHD-10%" "A-LHD-10%" (Config.name Config.a_lhd_10pct);
  Alcotest.(check int) "six configs" 6 (List.length Config.all)

let test_memory_bytes_monotone () =
  let ds = Lazy.force Fixtures.small_snb in
  let m c = Estimator.memory_bytes c ds.catalog in
  Alcotest.(check bool) "simple < advanced stats" true
    (m Config.s_l < m Config.a_l);
  Alcotest.(check bool) "optional info adds bytes" true
    (m Config.a_l <= m Config.a_lhd);
  Alcotest.(check bool) "10% variant stores no prop stats" true
    (m Config.a_lhd_10pct < m Config.a_lhd)

(* label probability invariant: all probabilities stay in [0,1] — exercised
   indirectly by Label_probs clamping; here we test the module directly. *)
let test_label_probs_module () =
  let lp = Label_probs.create ~vars:1 ~labels:3 () in
  Label_probs.introduce lp ~var:0 ~init:(fun l -> float_of_int l);
  Alcotest.(check (float 0.0)) "clamped to 1" 1.0 (Label_probs.get lp ~var:0 ~label:2);
  Label_probs.set lp ~var:0 ~label:0 (-5.0);
  Alcotest.(check (float 0.0)) "clamped to 0" 0.0 (Label_probs.get lp ~var:0 ~label:0);
  let buf = Array.make 3 (-1) in
  let n = Label_probs.positive_labels lp ~var:0 ~buf in
  Alcotest.(check (list int)) "positive labels" [ 1; 2 ]
    (Array.to_list (Array.sub buf 0 n));
  Alcotest.check_raises "short buffer"
    (Invalid_argument "Label_probs.positive_labels: buffer shorter than label count")
    (fun () -> ignore (Label_probs.positive_labels lp ~var:0 ~buf:(Array.make 2 0)));
  Alcotest.check_raises "double introduce"
    (Invalid_argument "Label_probs.introduce: variable already live") (fun () ->
      Label_probs.introduce lp ~var:0 ~init:(fun _ -> 0.0));
  (* growing past the preallocated row capacity preserves existing rows *)
  Label_probs.introduce lp ~var:5 ~init:(fun l -> if l = 1 then 0.5 else 0.0);
  Alcotest.(check (float 0.0)) "grown row" 0.5 (Label_probs.get lp ~var:5 ~label:1);
  Alcotest.(check (float 0.0)) "old row intact" 1.0 (Label_probs.get lp ~var:0 ~label:2);
  Alcotest.(check (list int)) "live vars" [ 0; 5 ] (Label_probs.live_vars lp);
  Label_probs.drop lp ~var:0;
  Alcotest.(check bool) "dropped" false (Label_probs.is_live lp ~var:0);
  Label_probs.reset lp;
  Alcotest.(check (list int)) "reset unbinds all" [] (Label_probs.live_vars lp)

let suite =
  [
    Alcotest.test_case "get_nodes: NC(*)" `Quick test_get_nodes_card;
    Alcotest.test_case "label: exact single" `Quick test_single_label_exact;
    Alcotest.test_case "label: hierarchy pair" `Quick test_sublabel_pair_with_hierarchy;
    Alcotest.test_case "label: disjoint pair" `Quick test_disjoint_pair_with_partition;
    Alcotest.test_case "label: overlap" `Quick test_overlapping_labels_independence;
    Alcotest.test_case "expand: exact on uniform" `Quick
      test_expand_exact_on_uniform_bipartite;
    Alcotest.test_case "expand: undirected" `Quick test_expand_undirected_doubles;
    Alcotest.test_case "expand: A vs S target probs" `Quick
      test_advanced_vs_simple_target_probs;
    Alcotest.test_case "expand: source prob update" `Quick test_expand_source_prob_update;
    Alcotest.test_case "props: fixed 10%" `Quick test_prop_selection_fixed_mode;
    Alcotest.test_case "props: stats mode" `Quick test_prop_selection_stats_mode;
    Alcotest.test_case "props: min combining" `Quick test_prop_selection_min_combining;
    Alcotest.test_case "props: rel predicates" `Quick test_rel_prop_selection;
    Alcotest.test_case "merge: triangle sane" `Quick test_merge_on_triangle;
    Alcotest.test_case "merge: reduces card" `Quick test_merge_reduces_cardinality;
    Alcotest.test_case "trace: aligned" `Quick test_trace_length_and_final;
    Alcotest.test_case "estimates: finite on random" `Quick
      test_estimates_finite_on_random_queries;
    Alcotest.test_case "config: names" `Quick test_config_names;
    Alcotest.test_case "config: memory monotone" `Quick test_memory_bytes_monotone;
    Alcotest.test_case "label_probs: module" `Quick test_label_probs_module;
  ]
