(* The determinism contract of the multicore layer: every parallel path must
   produce results bit-identical to its sequential [jobs:1] reference, for
   every jobs value. *)

open Lpp_util
open Lpp_pattern
open Lpp_exec

let jobs_values = [ 1; 2; 4 ]

(* ---------------- Pool primitives ---------------- *)

let test_resolve_jobs () =
  Alcotest.(check int) "Some j passes through" 5 (Pool.resolve_jobs (Some 5));
  Alcotest.(check int) "Some 0 clamps to 1" 1 (Pool.resolve_jobs (Some 0));
  Alcotest.(check int) "Some -3 clamps to 1" 1 (Pool.resolve_jobs (Some (-3)));
  Alcotest.(check bool) "default is positive" true (Pool.resolve_jobs None >= 1)

let test_chunks_partition () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let chunks = Pool.parallel_chunks ~jobs ~n (fun ~lo ~hi -> (lo, hi)) in
          Alcotest.(check int) "chunk count"
            (if n = 0 then 0 else min jobs n)
            (List.length chunks);
          (* contiguous, in order, covering [0, n) *)
          let next = ref 0 in
          List.iter
            (fun (lo, hi) ->
              Alcotest.(check int) "contiguous" !next lo;
              Alcotest.(check bool) "non-empty" true (hi > lo);
              next := hi)
            chunks;
          Alcotest.(check int) "covers range" n !next)
        [ 0; 1; 2; 3; 7; 100 ])
    (jobs_values @ [ 13 ])

let test_map_matches_sequential () =
  let arr = Array.init 103 (fun i -> (i * 37) mod 101) in
  let f x = (x * x) + 1 in
  let expect = Array.map f arr in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "map at jobs %d" jobs)
        expect
        (Pool.parallel_map_array ~jobs f arr))
    jobs_values;
  Alcotest.(check (array int)) "empty array" [||]
    (Pool.parallel_map_array ~jobs:4 f [||])

let test_reduce_ordered () =
  (* string concatenation is associative but not commutative: a scheduling-
     dependent merge order would scramble the result *)
  let chunk ~lo ~hi =
    String.concat "" (List.init (hi - lo) (fun i -> string_of_int (lo + i)))
  in
  let expect = String.concat "" (List.init 50 string_of_int) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "ordered merge at jobs %d" jobs)
        expect
        (Pool.parallel_reduce ~jobs ~n:50 ~chunk ~merge:( ^ ) ~init:""))
    jobs_values

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      (* every chunk raises, including chunk 0 on the caller's domain *)
      Alcotest.check_raises
        (Printf.sprintf "exception at jobs %d" jobs)
        (Failure "boom")
        (fun () ->
          ignore (Pool.parallel_chunks ~jobs ~n:8 (fun ~lo:_ ~hi:_ -> failwith "boom")));
      (* a failure on a worker-side chunk only *)
      if jobs > 1 then
        Alcotest.check_raises
          (Printf.sprintf "worker exception at jobs %d" jobs)
          (Failure "late")
          (fun () ->
            ignore
              (Pool.parallel_chunks ~jobs ~n:jobs (fun ~lo ~hi:_ ->
                   if lo > 0 then failwith "late"))))
    jobs_values

let test_nested_calls () =
  (* a caller waiting on its chunks helps drain the queue, so nesting with
     more tasks than workers must not deadlock *)
  let inner lo =
    Pool.parallel_reduce ~jobs:4 ~n:10
      ~chunk:(fun ~lo:l ~hi:h ->
        let s = ref 0 in
        for i = l to h - 1 do s := !s + (lo * 10) + i done;
        !s)
      ~merge:( + ) ~init:0
  in
  let total =
    Pool.parallel_reduce ~jobs:4 ~n:8
      ~chunk:(fun ~lo ~hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do s := !s + inner i done;
        !s)
      ~merge:( + ) ~init:0
  in
  let expect = ref 0 in
  for i = 0 to 7 do
    for j = 0 to 9 do expect := !expect + (i * 10) + j done
  done;
  Alcotest.(check int) "nested sums" !expect total

(* ---------------- Matcher parity ---------------- *)

let outcome =
  Alcotest.testable
    (fun ppf -> function
      | Matcher.Count c -> Format.fprintf ppf "Count %d" c
      | Matcher.Budget_exceeded -> Format.fprintf ppf "Budget_exceeded")
    ( = )

let campus_patterns g =
  [
    Pattern.of_spec g [ Pattern.node_spec () ] [];
    Pattern.of_spec g
      [ Pattern.node_spec ~labels:[ "Student" ] (); Pattern.node_spec () ]
      [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 () ];
    Pattern.of_spec g
      [ Pattern.node_spec (); Pattern.node_spec (); Pattern.node_spec () ]
      [ Pattern.rel_spec ~src:0 ~dst:1 ~directed:false ();
        Pattern.rel_spec ~src:1 ~dst:2 ~directed:false () ];
  ]

let test_matcher_parity_fixtures () =
  let campus = (Fixtures.campus ()).graph in
  let triangle, _ = Fixtures.triangle () in
  let bipartite = Fixtures.bipartite ~k_left:12 ~k_right:8 ~deg:3 in
  let cases =
    List.map (fun p -> (campus, p)) (campus_patterns campus)
    @ [
        ( triangle,
          Pattern.of_spec triangle
            [ Pattern.node_spec (); Pattern.node_spec (); Pattern.node_spec () ]
            [ Pattern.rel_spec ~src:0 ~dst:1 (); Pattern.rel_spec ~src:1 ~dst:2 ();
              Pattern.rel_spec ~src:2 ~dst:0 () ] );
        ( bipartite,
          Pattern.of_spec bipartite
            [ Pattern.node_spec ~labels:[ "L" ] (); Pattern.node_spec ~labels:[ "R" ] () ]
            [ Pattern.rel_spec ~types:[ "t" ] ~src:0 ~dst:1 () ] );
      ]
  in
  List.iter
    (fun (g, p) ->
      let reference = Matcher.count ~jobs:1 g p in
      List.iter
        (fun jobs ->
          Alcotest.check outcome
            (Printf.sprintf "jobs %d" jobs)
            reference
            (Matcher.count ~jobs g p))
        jobs_values)
    cases

let snb_queries =
  lazy
    (let ds = Lazy.force Fixtures.small_snb in
     let spec =
       { (Lpp_workload.Query_gen.default_spec No_props) with
         target = 12; attempts = 48; truth_budget = 500_000 }
     in
     Lpp_workload.Query_gen.generate ~jobs:1 (Rng.create 11) ds spec)

let test_matcher_parity_snb () =
  let ds = Lazy.force Fixtures.small_snb in
  let qs = Lazy.force snb_queries in
  Alcotest.(check bool) "workload non-empty" true (qs <> []);
  List.iter
    (fun (q : Lpp_workload.Query_gen.query) ->
      List.iter
        (fun jobs ->
          Alcotest.check outcome
            (Printf.sprintf "query %d at jobs %d" q.id jobs)
            (Matcher.Count q.true_card)
            (Matcher.count ~jobs ~budget:500_000 ds.graph q.pattern))
        jobs_values)
    qs

let test_matcher_budget_parity () =
  (* the Budget_exceeded boundary must fall on exactly the same budget value
     for every jobs count — the step accounting is exact, not approximate *)
  let g = (Fixtures.campus ()).graph in
  let p =
    Pattern.of_spec g
      [ Pattern.node_spec ~labels:[ "Student" ] (); Pattern.node_spec ();
        Pattern.node_spec () ]
      [ Pattern.rel_spec ~types:[ "attends" ] ~src:0 ~dst:1 ();
        Pattern.rel_spec ~src:1 ~dst:2 ~directed:false () ]
  in
  let boundary_seen = ref false in
  for budget = 1 to 80 do
    let reference = Matcher.count ~jobs:1 ~budget g p in
    if reference <> Matcher.Budget_exceeded then boundary_seen := true;
    List.iter
      (fun jobs ->
        Alcotest.check outcome
          (Printf.sprintf "budget %d at jobs %d" budget jobs)
          reference
          (Matcher.count ~jobs ~budget g p))
      [ 2; 3; 4 ]
  done;
  (* the sweep must cross the boundary in both directions to prove anything *)
  Alcotest.check outcome "budget 1 exceeds" Matcher.Budget_exceeded
    (Matcher.count ~jobs:3 ~budget:1 g p);
  Alcotest.(check bool) "some budget completes" true !boundary_seen

(* ---------------- Reference parity ---------------- *)

let test_reference_parity () =
  let campus = (Fixtures.campus ()).graph in
  List.iter
    (fun p ->
      let alg = Planner.plan p in
      List.iter
        (fun max_intermediate ->
          let reference = Reference.count ~max_intermediate ~jobs:1 campus alg in
          List.iter
            (fun jobs ->
              Alcotest.(check (option int))
                (Printf.sprintf "max %d at jobs %d" max_intermediate jobs)
                reference
                (Reference.count ~max_intermediate ~jobs campus alg))
            jobs_values)
        (* sweep across the abort boundary: tiny caps must give None at every
           jobs value, large ones the exact count *)
        [ 1; 2; 3; 5; 8; 20; 200_000 ])
    (campus_patterns campus)

let test_reference_agrees_with_matcher () =
  let ds = Lazy.force Fixtures.small_snb in
  let qs = Lazy.force snb_queries in
  List.iter
    (fun (q : Lpp_workload.Query_gen.query) ->
      match Reference.count ~jobs:4 ds.graph (Planner.plan q.pattern) with
      | None -> ()
      | Some c ->
          Alcotest.(check int)
            (Printf.sprintf "query %d" q.id)
            q.true_card c)
    (List.filteri (fun i _ -> i < 5) qs)

(* ---------------- Catalog parity ---------------- *)

let catalog_fingerprint g c =
  let open Lpp_stats in
  let labels = None :: List.init (Catalog.label_count c) Option.some in
  let types =
    [||] :: List.init (Lpp_pgraph.Graph.rel_type_count g) (fun t -> [| t |])
  in
  let rcs =
    List.concat_map
      (fun node ->
        List.concat_map
          (fun other ->
            List.concat_map
              (fun types ->
                List.map
                  (fun dir -> Catalog.rc c ~dir ~node ~types ~other)
                  [ Lpp_pgraph.Direction.Out; In; Both ])
              types)
          labels)
      labels
  in
  ( List.map (fun l -> Catalog.nc c (Option.value ~default:(-1) l)) labels,
    List.init (Lpp_pgraph.Graph.rel_type_count g) (Catalog.rel_type_total c),
    Catalog.rel_total c,
    Catalog.nc_star c,
    rcs,
    Catalog.memory_bytes_simple c,
    Catalog.memory_bytes_advanced c )

let test_catalog_parity () =
  List.iter
    (fun g ->
      let reference = catalog_fingerprint g (Lpp_stats.Catalog.build ~jobs:1 g) in
      List.iter
        (fun jobs ->
          let got = catalog_fingerprint g (Lpp_stats.Catalog.build ~jobs g) in
          Alcotest.(check bool)
            (Printf.sprintf "catalog identical at jobs %d" jobs)
            true (got = reference))
        jobs_values)
    [
      (Fixtures.campus ()).graph;
      fst (Fixtures.triangle ());
      (Lazy.force Fixtures.small_snb).graph;
    ]

let test_catalog_empty_graph () =
  let g = Lpp_pgraph.Graph_builder.freeze (Lpp_pgraph.Graph_builder.create ()) in
  let c = Lpp_stats.Catalog.build ~jobs:4 g in
  Alcotest.(check int) "no nodes" 0 (Lpp_stats.Catalog.nc_star c);
  Alcotest.(check int) "no rels" 0 (Lpp_stats.Catalog.rel_total c)

(* ---------------- Runner parity ---------------- *)

let runner_results ms =
  List.map
    (fun (m : Lpp_harness.Runner.measurement) ->
      (m.query.Lpp_workload.Query_gen.id, m.estimate, m.q_error))
    ms

let test_runner_parity () =
  let ds = Lazy.force Fixtures.small_snb in
  let qs = Lazy.force snb_queries in
  let techniques =
    [
      Lpp_harness.Technique.ours Lpp_core.Config.a_lhd ds.catalog;
      (* randomised: exercises the per-query seeded streams *)
      Lpp_harness.Technique.wander_join ~seed:7 Lpp_baselines.Wander_join.WJ_1 ds;
    ]
  in
  List.iter
    (fun (tech : Lpp_harness.Technique.t) ->
      let reference =
        runner_results (Lpp_harness.Runner.run ~measure_time:false ~jobs:1 tech qs)
      in
      List.iter
        (fun jobs ->
          let got =
            runner_results
              (Lpp_harness.Runner.run ~measure_time:false ~jobs tech qs)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s identical at jobs %d" tech.name jobs)
            true (got = reference))
        jobs_values)
    techniques

(* ---------------- Query generation parity ---------------- *)

let test_query_gen_parity () =
  let ds = Lazy.force Fixtures.small_snb in
  let spec =
    { (Lpp_workload.Query_gen.default_spec No_props) with
      target = 6; attempts = 24; truth_budget = 200_000 }
  in
  let gen jobs =
    List.map
      (fun (q : Lpp_workload.Query_gen.query) ->
        (q.id, q.pattern, q.shape, q.size, q.true_card))
      (Lpp_workload.Query_gen.generate ~jobs (Rng.create 23) ds spec)
  in
  let reference = gen 1 in
  Alcotest.(check bool) "generator produced queries" true (reference <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "query set identical at jobs %d" jobs)
        true
        (gen jobs = reference))
    [ 2; 4 ]

(* ---------------- QCheck: random graphs ---------------- *)

let prop_matcher_parallel_random =
  QCheck.Test.make ~name:"matcher: parallel == sequential on random graphs"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Test_properties.random_graph rng in
      match Test_properties.random_connected_pattern rng 4 with
      | exception Invalid_argument _ -> true
      | p ->
          let budget = 1 + Rng.int rng 5_000 in
          List.for_all
            (fun jobs ->
              Matcher.count ~jobs ~budget g p
              = Matcher.count ~jobs:1 ~budget g p)
            [ 2; 3; 4 ])

(* ---------------- Clock ---------------- *)

let test_clock_monotonic () =
  let t0 = Clock.now_ns () in
  let acc = ref 0 in
  for i = 1 to 100_000 do acc := !acc + i done;
  ignore (Sys.opaque_identity !acc);
  let dt = Clock.elapsed_ns ~since:t0 in
  Alcotest.(check bool) "elapsed non-negative" true (dt >= 0.0);
  Alcotest.(check bool) "clock advances eventually" true
    (Clock.now_ns () >= t0)

let suite =
  [
    Alcotest.test_case "pool: resolve_jobs" `Quick test_resolve_jobs;
    Alcotest.test_case "pool: chunk partition" `Quick test_chunks_partition;
    Alcotest.test_case "pool: map == Array.map" `Quick test_map_matches_sequential;
    Alcotest.test_case "pool: ordered reduce" `Quick test_reduce_ordered;
    Alcotest.test_case "pool: exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "pool: nested calls" `Quick test_nested_calls;
    Alcotest.test_case "matcher: parity on fixtures" `Quick test_matcher_parity_fixtures;
    Alcotest.test_case "matcher: parity on SNB workload" `Quick test_matcher_parity_snb;
    Alcotest.test_case "matcher: exact budget boundary" `Quick test_matcher_budget_parity;
    Alcotest.test_case "reference: parity incl. abort" `Quick test_reference_parity;
    Alcotest.test_case "reference: agrees with matcher" `Quick
      test_reference_agrees_with_matcher;
    Alcotest.test_case "catalog: parity" `Quick test_catalog_parity;
    Alcotest.test_case "catalog: empty graph" `Quick test_catalog_empty_graph;
    Alcotest.test_case "runner: parity" `Quick test_runner_parity;
    Alcotest.test_case "query_gen: parity" `Quick test_query_gen_parity;
    QCheck_alcotest.to_alcotest prop_matcher_parallel_random;
    Alcotest.test_case "clock: monotonic" `Quick test_clock_monotonic;
  ]
