let default_dirs = [ "lib"; "bin"; "bench" ]

let skip_dir name =
  name = "_build" || name = "_opam"
  || (String.length name > 0 && name.[0] = '.')

let discover ?(dirs = default_dirs) ~root () =
  let acc = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    match Sys.is_directory full with
    | true ->
        Array.iter
          (fun entry ->
            if not (skip_dir entry) then walk (rel ^ "/" ^ entry))
          (Sys.readdir full)
    | false -> if Filename.check_suffix rel ".ml" then acc := rel :: !acc
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun d -> if Sys.file_exists (Filename.concat root d) then walk d)
    dirs;
  List.sort String.compare !acc
