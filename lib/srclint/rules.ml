type scope = Lib_only | Everywhere

type t = {
  code : string;
  severity : Lpp_analysis.Diagnostic.severity;
  scope : scope;
  title : string;
  rationale : string;
}

let all =
  [
    {
      code = "LPP-D000";
      severity = Lpp_analysis.Diagnostic.Error;
      scope = Everywhere;
      title = "source file must parse";
      rationale =
        "a file the linter cannot parse is a file it cannot vouch for; this \
         only fires on trees that do not build";
    };
    {
      code = "LPP-D001";
      severity = Error;
      scope = Lib_only;
      title =
        "no unannotated top-level mutable state (ref, Hashtbl.create, \
         Buffer.create, Queue.create, Stack.create, Bytes.create, \
         Atomic.make) in library code";
      rationale =
        "module-level mutable state is shared by every domain; each global \
         must either be justified with [@@lpp.domain_safe \"reason\"] \
         (stating the synchronisation discipline that protects it) or moved \
         into per-call / per-domain state";
    };
    {
      code = "LPP-D002";
      severity = Error;
      scope = Everywhere;
      title = "Domain.spawn only in the pool and the server";
      rationale =
        "lib/util/pool.ml (the work-stealing pool) and lib/serve/server.ml \
         (the serving runtime) own domain lifecycles, including joining \
         before exit; ad-hoc spawns elsewhere escape shutdown, the \
         determinism contract and the obs-layer monitor";
    };
    {
      code = "LPP-D003";
      severity = Error;
      scope = Everywhere;
      title = "no bare Mutex.lock/unlock — use Lpp_util.Sync.with_lock";
      rationale =
        "a bare lock/unlock pair leaks the mutex (and deadlocks every future \
         contender) the moment the critical section raises; \
         Sync.with_lock releases on all paths via Fun.protect";
    };
    {
      code = "LPP-D004";
      severity = Error;
      scope = Everywhere;
      title =
        "no wall-clock time (Unix.gettimeofday, Unix.time, Sys.time) — use \
         Lpp_util.Clock";
      rationale =
        "benchmarks and traces must be monotonic and NTP-immune; wall-clock \
         reads also differ across reruns, breaking bit-identical \
         comparisons";
    };
    {
      code = "LPP-D005";
      severity = Error;
      scope = Everywhere;
      title =
        "no global RNG (Random.self_init, Random.int, ...) — use an explicit \
         seeded Random.State";
      rationale =
        "every random choice must flow from an explicit seed so parallel \
         runs, reruns and served results stay bit-identical; the implicit \
         global generator is shared, unseeded state";
    };
    {
      code = "LPP-D006";
      severity = Error;
      scope = Lib_only;
      title = "no stdout writes (print_*, Printf.printf, Format.printf, ...) \
              in library code";
      rationale =
        "libraries stay silent — the CLI owns stdout; a library that prints \
         corrupts machine-read output (NDJSON responses, JSON sinks) and \
         cannot be embedded";
    };
    {
      code = "LPP-D007";
      severity = Error;
      scope = Lib_only;
      title = "no catch-all `try ... with _ ->` in library code";
      rationale =
        "a wildcard handler swallows Out_of_memory, Stack_overflow and \
         genuine bugs alike; match the exceptions the code can actually \
         raise, or catch-and-reraise";
    };
    {
      code = "LPP-D008";
      severity = Warning;
      scope = Everywhere;
      title = "lint attributes must be well-formed and carry a reason";
      rationale =
        "[@lpp.domain_safe]/[@lpp.allow] suppress errors, so each use must \
         say why (a string payload: for lpp.allow the code then the reason, \
         e.g. [@lpp.allow \"D006 CLI table sink\"]); a bare or misspelt \
         suppression is itself suspect";
    };
  ]

let normalize_code s =
  let s = String.trim s in
  let s = String.uppercase_ascii s in
  if String.length s >= 4 && String.sub s 0 4 = "LPP-" then s else "LPP-" ^ s

let find code =
  let code = normalize_code code in
  List.find_opt (fun r -> r.code = code) all

let allowlist =
  [
    ("lib/util/pool.ml", "LPP-D002");
    ("lib/serve/server.ml", "LPP-D002");
    ("lib/util/sync.ml", "LPP-D003");
  ]

let suffix_matches ~path suffix =
  let lp = String.length path and ls = String.length suffix in
  lp >= ls
  && String.sub path (lp - ls) ls = suffix
  && (lp = ls || path.[lp - ls - 1] = '/')

let allowlisted ~path code =
  List.exists
    (fun (suffix, c) -> c = code && suffix_matches ~path suffix)
    allowlist

let scope_string = function Lib_only -> "lib/" | Everywhere -> "lib+bin+bench"

let to_table () =
  let t = Lpp_util.Ascii_table.create [ "code"; "sev"; "scope"; "rule" ] in
  List.iter
    (fun r ->
      Lpp_util.Ascii_table.add_row t
        [
          r.code;
          Lpp_analysis.Diagnostic.severity_string r.severity;
          scope_string r.scope;
          r.title;
        ])
    all;
  Lpp_util.Ascii_table.render t

let to_json () =
  Lpp_util.Json.List
    (List.map
       (fun r ->
         Lpp_util.Json.Obj
           [
             ("code", Lpp_util.Json.String r.code);
             ( "severity",
               Lpp_util.Json.String
                 (Lpp_analysis.Diagnostic.severity_string r.severity) );
             ("scope", Lpp_util.Json.String (scope_string r.scope));
             ("title", Lpp_util.Json.String r.title);
             ("rationale", Lpp_util.Json.String r.rationale);
           ])
       all)
