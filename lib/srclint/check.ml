(* Two passes over each file's Parsetree: an explicit structure walk for
   D001 (top-level mutable state — precise because it descends through
   module bindings only, never into expressions, so per-call state inside
   functions can't be mistaken for a global), then an Ast_iterator pass for
   the expression-level rules D002–D007 and attribute hygiene D008.

   Both passes share one diagnostic sink and one suppression discipline
   (emit): global --suppress codes, [@@@lpp.allow] module-scope codes,
   scoped [@lpp.allow] codes and the Rules.allowlist all silence a finding
   before it is recorded. *)

module D = Lpp_analysis.Diagnostic

type st = {
  path : string;
  in_lib : bool;
  suppress : string list;  (* normalized codes, whole run *)
  mutable file_allows : string list;  (* [@@@lpp.allow], enclosing module *)
  mutable scoped : string list;  (* [@lpp.allow] / [@@lpp.allow], subtree *)
  mutable diags : D.t list;  (* reverse traversal order *)
}

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let rule code =
  match Rules.find code with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Srclint.Check: unknown rule %s" code)

let emit st (r : Rules.t) (loc : Location.t) fmt =
  Format.kasprintf
    (fun message ->
      let applies = r.scope = Rules.Everywhere || st.in_lib in
      let silenced =
        List.mem r.code st.suppress
        || List.mem r.code st.file_allows
        || List.mem r.code st.scoped
        || Rules.allowlisted ~path:st.path r.code
      in
      if applies && not silenced then
        st.diags <-
          D.make r.severity ~code:r.code
            ~loc:(D.Src { file = st.path; line = line_of loc })
            message
          :: st.diags)
    fmt

(* ---- lint attributes ------------------------------------------------- *)

let attr_string (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* "D006 CLI table sink" -> ("D006", "CLI table sink") *)
let split_code s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )

let is_lpp_attr (a : Parsetree.attribute) =
  let n = a.attr_name.txt in
  String.length n > 4 && String.sub n 0 4 = "lpp."

(* The codes a set of [@lpp.allow] attributes suppresses. Unknown codes are
   dropped here (they suppress nothing); D008 reports them separately. *)
let allows_of_attrs attrs =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lpp.allow" then None
      else
        match attr_string a with
        | None -> None
        | Some s -> begin
            let code, _ = split_code s in
            match Rules.find code with
            | Some r -> Some r.code
            | None -> None
          end)
    attrs

let has_domain_safe attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = "lpp.domain_safe")
    attrs

(* D008: every lpp.* attribute must be one we know, carry a string payload,
   name a real code (lpp.allow) and give a reason. *)
let validate_attr st (a : Parsetree.attribute) =
  if is_lpp_attr a then begin
    let d008 = rule "LPP-D008" in
    match a.attr_name.txt with
    | "lpp.domain_safe" -> begin
        match attr_string a with
        | Some s when String.trim s <> "" -> ()
        | _ ->
            emit st d008 a.attr_loc
              "%s needs a reason string stating the synchronisation \
               discipline, e.g. %s"
              "[@@lpp.domain_safe]" "[@@lpp.domain_safe \"guarded by mu\"]"
      end
    | "lpp.allow" -> begin
        match attr_string a with
        | None ->
            emit st d008 a.attr_loc
              "%s payload must be a string literal: %s" "[@lpp.allow]"
              "[@lpp.allow \"D006 reason\"]"
        | Some s -> begin
            let code, reason = split_code s in
            match Rules.find code with
            | None ->
                emit st d008 a.attr_loc
                  "%s names no known rule (see lpp srclint --list-rules)"
                  (Printf.sprintf "[@lpp.allow %S]" code)
            | Some _ ->
                if reason = "" then
                  emit st d008 a.attr_loc
                    "%s needs a reason after the code: %s"
                    (Printf.sprintf "[@lpp.allow \"%s\"]" code)
                    (Printf.sprintf
                       "[@lpp.allow \"%s why this site is exempt\"]" code)
          end
      end
    | other ->
        emit st d008 a.attr_loc
          "unknown lint attribute %s; the linter understands %s and %s"
          (Printf.sprintf "[@%s]" other)
          "[@@lpp.domain_safe]" "[@lpp.allow]"
  end

let add_file_allow st (a : Parsetree.attribute) =
  match allows_of_attrs [ a ] with
  | codes -> st.file_allows <- codes @ st.file_allows

(* ---- D001: top-level mutable state ----------------------------------- *)

let creation_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident "ref"; _ } -> Some "ref"
  | Pexp_ident { txt = Ldot (Lident m, f); _ } -> begin
      match (m, f) with
      | ("Hashtbl" | "Buffer" | "Queue" | "Stack" | "Bytes"), "create" ->
          Some (m ^ ".create")
      | "Atomic", "make" -> Some "Atomic.make"
      | _ -> None
    end
  | _ -> None

(* Does evaluating [e] at module-initialisation time build mutable state?
   Function bodies and lazy thunks run per call, not at init, so the walk
   stops there; everything else descends into whatever is evaluated. *)
let rec mutable_creation (e : Parsetree.expression) =
  let first es = List.find_map mutable_creation es in
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> None
  | Pexp_apply (f, args) -> begin
      match creation_name f with
      | Some name -> Some (name, e.pexp_loc)
      | None -> first (List.map snd args)
    end
  | Pexp_let (_, vbs, body) ->
      first (List.map (fun (vb : Parsetree.value_binding) -> vb.pvb_expr) vbs @ [ body ])
  | Pexp_sequence (a, b) -> first [ a; b ]
  | Pexp_ifthenelse (c, t, f) -> first (c :: t :: Option.to_list f)
  | Pexp_tuple es | Pexp_array es -> first es
  | Pexp_record (fields, base) ->
      first (List.map snd fields @ Option.to_list base)
  | Pexp_construct (_, Some a)
  | Pexp_variant (_, Some a)
  | Pexp_constraint (a, _)
  | Pexp_coerce (a, _, _)
  | Pexp_open (_, a)
  | Pexp_field (a, _) ->
      mutable_creation a
  | Pexp_match (scrut, cases) ->
      first (scrut :: List.map (fun (c : Parsetree.case) -> c.pc_rhs) cases)
  | _ -> None

let d001_binding st (vb : Parsetree.value_binding) =
  if
    (not (has_domain_safe vb.pvb_attributes))
    && not (List.mem "LPP-D001" (allows_of_attrs vb.pvb_attributes))
  then
    match mutable_creation vb.pvb_expr with
    | None -> ()
    | Some (name, loc) ->
        emit st (rule "LPP-D001") loc
          "top-level mutable state (%s): annotate with %s stating the \
           synchronisation discipline, or move it into per-call / \
           per-domain state"
          name "[@@lpp.domain_safe \"reason\"]"

let rec d001_structure st (items : Parsetree.structure) =
  let saved = st.file_allows in
  List.iter
    (fun (it : Parsetree.structure_item) ->
      match it.pstr_desc with
      | Pstr_attribute a -> add_file_allow st a
      | Pstr_value (_, vbs) -> List.iter (d001_binding st) vbs
      | Pstr_module mb -> d001_module st mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.iter
            (fun (mb : Parsetree.module_binding) -> d001_module st mb.pmb_expr)
            mbs
      | _ -> ())
    items;
  st.file_allows <- saved

and d001_module st (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure s -> d001_structure st s
  | Pmod_constraint (me, _) -> d001_module st me
  | _ -> ()

(* ---- D002..D007: the expression rules -------------------------------- *)

let d006_bare =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "stdout";
  ]

let d006_format =
  [
    "printf"; "print_string"; "print_newline"; "print_flush"; "print_space";
    "print_cut"; "std_formatter";
  ]

let check_ident st (txt : Longident.t) (loc : Location.t) =
  match txt with
  | Ldot (Lident "Domain", "spawn") ->
      emit st (rule "LPP-D002") loc
        "Domain.spawn outside the pool/server: submit work through \
         Lpp_util.Pool so shutdown, determinism and monitoring hold"
  | Ldot (Lident "Mutex", (("lock" | "unlock" | "try_lock") as f)) ->
      emit st (rule "LPP-D003") loc
        "bare Mutex.%s leaks the lock if the critical section raises: use \
         Lpp_util.Sync.with_lock"
        f
  | Ldot (Lident "Unix", (("gettimeofday" | "time") as f)) ->
      emit st (rule "LPP-D004") loc
        "wall-clock Unix.%s: use Lpp_util.Clock (monotonic, NTP-immune)" f
  | Ldot (Lident "Sys", "time") ->
      emit st (rule "LPP-D004") loc
        "wall-clock Sys.time: use Lpp_util.Clock (monotonic, NTP-immune)"
  | Ldot (Lident "Random", f) ->
      emit st (rule "LPP-D005") loc
        "global RNG Random.%s breaks determinism: thread an explicit seeded \
         Random.State (Lpp_util.Rng)"
        f
  | Lident name when List.mem name d006_bare ->
      emit st (rule "LPP-D006") loc
        "stdout write (%s) in library code: libraries stay silent, the CLI \
         owns stdout"
        name
  | Ldot (Lident "Stdlib", name) when List.mem name d006_bare ->
      emit st (rule "LPP-D006") loc
        "stdout write (Stdlib.%s) in library code: libraries stay silent, \
         the CLI owns stdout"
        name
  | Ldot (Lident "Printf", "printf") ->
      emit st (rule "LPP-D006") loc
        "stdout write (Printf.printf) in library code: libraries stay \
         silent, the CLI owns stdout (Printf.sprintf / eprintf are fine)"
  | Ldot (Lident "Format", name) when List.mem name d006_format ->
      emit st (rule "LPP-D006") loc
        "stdout write (Format.%s) in library code: format to an explicit \
         formatter instead"
        name
  | _ -> ()

let rec catch_all_pattern (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let check_case_catch_all st what (c : Parsetree.case) =
  if c.pc_guard = None && catch_all_pattern c.pc_lhs then
    emit st (rule "LPP-D007") c.pc_lhs.ppat_loc
      "catch-all %s swallows every exception (including Out_of_memory and \
       bugs): match the exceptions this code can raise"
      what

let check_match_exception st (c : Parsetree.case) =
  match c.pc_lhs.ppat_desc with
  | Ppat_exception inner ->
      if c.pc_guard = None && catch_all_pattern inner then
        emit st (rule "LPP-D007") c.pc_lhs.ppat_loc
          "catch-all `exception _` case swallows every exception (including \
           Out_of_memory and bugs): match the exceptions this code can raise"
  | _ -> ()

let check_expr st (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident st txt loc
  | Pexp_try (_, cases) ->
      List.iter (check_case_catch_all st "`try ... with _ ->`") cases
  | Pexp_match (_, cases) -> List.iter (check_match_exception st) cases
  | _ -> ()

let make_iterator st =
  let open Ast_iterator in
  let with_scoped st codes k =
    match codes with
    | [] -> k ()
    | _ ->
        let saved = st.scoped in
        st.scoped <- codes @ st.scoped;
        Fun.protect ~finally:(fun () -> st.scoped <- saved) k
  in
  {
    default_iterator with
    expr =
      (fun self e ->
        with_scoped st (allows_of_attrs e.pexp_attributes) (fun () ->
            check_expr st e;
            default_iterator.expr self e));
    value_binding =
      (fun self vb ->
        with_scoped st (allows_of_attrs vb.pvb_attributes) (fun () ->
            default_iterator.value_binding self vb));
    structure_item =
      (fun self it ->
        (match it.pstr_desc with
        | Pstr_attribute a -> add_file_allow st a
        | _ -> ());
        default_iterator.structure_item self it);
    module_expr =
      (fun self me ->
        match me.pmod_desc with
        | Pmod_structure _ ->
            let saved = st.file_allows in
            default_iterator.module_expr self me;
            st.file_allows <- saved
        | _ -> default_iterator.module_expr self me);
    (* validate, but do not lint inside, attribute payloads *)
    attribute = (fun _self a -> validate_attr st a);
  }

(* ---- entry points ---------------------------------------------------- *)

let normalize_path p =
  String.map (fun c -> if c = '\\' then '/' else c) p

let lint_string ?(suppress = []) ~path src =
  let path = normalize_path path in
  let st =
    {
      path;
      in_lib =
        (String.length path >= 4 && String.sub path 0 4 = "lib/")
        || Filename.dirname path = "lib";
      suppress = List.map Rules.normalize_code suppress;
      file_allows = [];
      scoped = [];
      diags = [];
    }
  in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  (match Parse.implementation lexbuf with
  | str ->
      d001_structure st str;
      st.file_allows <- [];
      let it = make_iterator st in
      it.structure it str
  | exception e ->
      let line =
        match e with
        | Syntaxerr.Error err ->
            (Syntaxerr.location_of_error err).loc_start.pos_lnum
        | _ -> 0
      in
      let d000 = rule "LPP-D000" in
      emit st d000
        {
          Location.none with
          loc_start = { Location.none.loc_start with pos_lnum = line };
        }
        "cannot parse: %s" (Printexc.to_string e));
  D.sort (List.rev st.diags)

let lint_file ?suppress ~root rel_path =
  let full = Filename.concat root rel_path in
  let ic = open_in_bin full in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_string ?suppress ~path:rel_path src
