module D = Lpp_analysis.Diagnostic

type report = {
  root : string;
  files : string list;
  diagnostics : D.t list;
}

let run ?(suppress = []) ?dirs ~root () =
  let files = Source.discover ?dirs ~root () in
  let diagnostics =
    List.concat_map (fun f -> Check.lint_file ~suppress ~root f) files
  in
  { root; files; diagnostics = D.sort diagnostics }

let errors r = D.count D.Error r.diagnostics

let warnings r = D.count D.Warning r.diagnostics

let to_json r =
  let open Lpp_util.Json in
  Obj
    [
      ("root", String r.root);
      ("files", Int (List.length r.files));
      ("errors", Int (errors r));
      ("warnings", Int (warnings r));
      ( "diagnostics",
        (* Diagnostic.to_json is the shared hand-rendered emitter; parse its
           output back into the tree so one emitter serves both paths. *)
        List
          (List.map
             (fun d ->
               match of_string (D.to_json d) with
               | Ok j -> j
               | Error msg ->
                   failwith ("Srclint.to_json: diagnostic did not round-trip: " ^ msg))
             r.diagnostics) );
    ]
