(** Source discovery for the linter.

    Finds the [.ml] files under a project root that the rule set governs —
    by default everything beneath [lib/], [bin/] and [bench/] — skipping
    build artefacts ([_build], [_opam], dot-directories). Paths come back
    root-relative with ['/'] separators, sorted, so a lint run is
    deterministic regardless of filesystem order. *)

val default_dirs : string list
(** [["lib"; "bin"; "bench"]] — the directories the conventions cover. *)

val discover : ?dirs:string list -> root:string -> unit -> string list
(** Root-relative paths of every [.ml] file under [dirs] (those that exist),
    recursively, sorted. Directories named [_build] or [_opam], and entries
    starting with ['.'], are skipped. *)
