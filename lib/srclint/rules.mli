(** The source-lint rule catalog.

    Every rule has a stable [LPP-Dxxx] code (contractual, like the [A]/[C]/[S]
    families in {!Lpp_analysis}: codes never change meaning), a severity, a
    scope — some rules only apply to library code under [lib/], where the
    determinism and silence conventions are strict — and the prose the
    [--list-rules] flag and DESIGN.md §14 print. *)

type scope =
  | Lib_only  (** enforced for files under [lib/] only *)
  | Everywhere  (** enforced for [lib/], [bin/] and [bench/] *)

type t = {
  code : string;  (** stable, e.g. ["LPP-D003"] *)
  severity : Lpp_analysis.Diagnostic.severity;
  scope : scope;
  title : string;  (** one line, imperative *)
  rationale : string;  (** why the rule exists, for [--list-rules] and docs *)
}

val all : t list
(** Every rule, in code order. *)

val find : string -> t option
(** Lookup by normalized code. *)

val normalize_code : string -> string
(** ["D003"] / ["d003"] / ["LPP-D003"] -> ["LPP-D003"]. Unknown strings are
    returned prefixed but unvalidated; pair with {!find} to validate. *)

val allowlist : (string * string) list
(** [(path suffix, code)] pairs exempt by design — e.g. [lib/util/pool.ml]
    and [lib/serve/server.ml] may call [Domain.spawn] (LPP-D002), and
    [lib/util/sync.ml] is the one implementation allowed to touch
    [Mutex.lock] (LPP-D003). Paths match by suffix on ['/']-separated
    normalized paths. *)

val allowlisted : path:string -> string -> bool
(** [allowlisted ~path code] — is [code] exempt in [path] by {!allowlist}? *)

val to_table : unit -> string
(** The rule catalog as an ASCII table (the [--list-rules] text output). *)

val to_json : unit -> Lpp_util.Json.t
(** The rule catalog as JSON (the [--list-rules --json] output). *)
