(** Source-level concurrency & determinism linter.

    PR 3 pointed the diagnostic machinery at query plans and catalogs; this
    subsystem points it at the project's own OCaml sources. Every guarantee
    the reproduction makes — bit-identical parallel paths, bit-identical
    frozen/served/off-heap estimates, fair cross-technique comparison —
    rests on coding conventions (seeded RNG streams, [Lpp_util.Clock],
    exception-safe locking, silent libraries); the linter turns those
    conventions into machine-checked rules with stable [LPP-Dxxx] codes.

    Built on [compiler-libs.common]: each [.ml] under [lib/], [bin/] and
    [bench/] is parsed into a [Parsetree] and walked with [Ast_iterator] —
    parse-only, no typing, sub-second over the whole tree, which is why the
    [@srclint] dune alias rides along with every [dune runtest].

    See {!Rules} for the rule catalog and {!Check} for suppression
    ([[@lpp.domain_safe]], [[@lpp.allow]], allowlist, [--suppress]). *)

type report = {
  root : string;
  files : string list;  (** every file linted, root-relative, sorted *)
  diagnostics : Lpp_analysis.Diagnostic.t list;
      (** all findings, ordered by file then line *)
}

val run :
  ?suppress:string list -> ?dirs:string list -> root:string -> unit -> report
(** Lint every [.ml] under [dirs] (default {!Source.default_dirs}) below
    [root]. [suppress] silences whole codes for the run, in any form
    {!Rules.normalize_code} accepts. *)

val errors : report -> int

val warnings : report -> int

val to_json : report -> Lpp_util.Json.t
(** [{"root":...,"files":N,"errors":E,"warnings":W,"diagnostics":[...]}] —
    diagnostic objects are {!Lpp_analysis.Diagnostic.to_json} shaped
    ([severity]/[code]/[file]/[line]/[message]), so [lpp srclint --json]
    round-trips through [Lpp_util.Json.of_string]. *)
