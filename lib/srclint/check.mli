(** The per-file AST pass behind {!Srclint}.

    Each [.ml] file is parsed into a [Parsetree.structure] with
    [compiler-libs] and walked twice: an explicit structure walk for
    LPP-D001 (top-level mutable state — "top level" is precise by
    construction: reachable from the root structure through module bindings
    only, never through an expression), and an [Ast_iterator] pass for the
    expression-level rules (D002–D007) plus attribute well-formedness
    (D008).

    Suppression, innermost scope first:
    - [[@lpp.allow "Dxxx reason"]] on an expression, or
      [[@@lpp.allow "Dxxx reason"]] on a [let] binding, suppresses [Dxxx]
      within that subtree;
    - [[@@@lpp.allow "Dxxx reason"]] suppresses [Dxxx] for the rest of the
      enclosing module;
    - [[@@lpp.domain_safe "reason"]] on a top-level binding justifies its
      mutable state (D001 only);
    - [~suppress] disables codes for the whole run (the CLI's
      [--suppress]);
    - {!Rules.allowlist} exempts (file, code) pairs that are correct by
      design.

    Suppressing an unknown code, or suppressing without a reason string, is
    itself reported (D008, warning). *)

val lint_string :
  ?suppress:string list ->
  path:string ->
  string ->
  Lpp_analysis.Diagnostic.t list
(** [lint_string ~path src] lints one compilation unit given as a string.
    [path] decides rule scope (rules marked [Lib_only] fire only when it
    starts with ["lib/"]) and the {!Rules.allowlist} match, and is the
    [file] of every emitted location. [suppress] takes codes in any form
    accepted by {!Rules.normalize_code}. Diagnostics come back in source
    order. *)

val lint_file :
  ?suppress:string list ->
  root:string ->
  string ->
  Lpp_analysis.Diagnostic.t list
(** [lint_file ~root rel_path] reads [root ^ "/" ^ rel_path] and lints it as
    [lint_string ~path:rel_path]. *)
