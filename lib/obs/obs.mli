(** The global observability switch.

    Everything in [Lpp_obs] — span tracing ({!Trace}) and metrics
    ({!Metrics}) — is inert while the switch is off: every instrumentation
    site reduces to one load and one predictable branch, so the disabled
    system behaves bit-identically to an uninstrumented build. Flip the
    switch only from quiescent points (no parallel work in flight).

    {!enable} also installs the [Lpp_util.Pool] task monitor (per-domain
    task spans, steal counters, queue-depth histogram); {!disable} removes
    it. *)

val enabled : unit -> bool
(** Read by every instrumentation site; [false] by default. *)

val live : bool ref
(** The switch itself. Per-lookup hot paths guard their counter updates with
    [if !Obs.live then ...]: without flambda an [enabled ()] call never
    inlines away, while the ref read costs two loads and a predictable
    branch. Read-only for instrumented code — flip only through {!enable} /
    {!disable} so the pool monitor stays in sync. *)

val enable : unit -> unit

val disable : unit -> unit

val reset : unit -> unit
(** Clear all recorded spans and zero all metrics. *)
