(* Low-overhead span tracer.

   Every domain owns a private ring buffer of completed spans plus an
   explicit span stack (begin/end pairs), both reached through one
   [Domain.DLS] lookup — recording a span never takes a lock and never
   allocates beyond the span record itself. Buffers register themselves in a
   global list on first use so [spans] can merge them; merging and clearing
   assume the traced workload is quiescent (every [Pool] call returned),
   which is when the CLI sinks run.

   A span's begin and end always execute on the same domain (the stack lives
   in domain-local storage), so spans cannot cross domains and the per-domain
   depth recorded at [begin_span] yields well-nested intervals. When a ring
   fills, new spans are dropped and counted rather than overwriting older
   ones: the trace keeps the workload's leading structure and reports the
   loss. *)

type span = {
  name : string;
  cat : string;
  ts : int64;  (* start, ns since [epoch] *)
  dur : int64;  (* ns *)
  dom : int;  (* dense per-domain slot, 0 = first domain that traced *)
  depth : int;  (* nesting depth at begin time, outermost = 0 *)
  args : (string * float) array;
}

(* All timestamps are reported relative to one process-wide origin so spans
   from different domains share a timeline. *)
let epoch = Lpp_util.Clock.now_ns ()

let default_capacity = 1 lsl 16

let capacity = ref default_capacity
[@@lpp.domain_safe "set from quiescent points only, before rings exist"]

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity";
  capacity := n

let dummy =
  { name = ""; cat = ""; ts = 0L; dur = 0L; dom = 0; depth = 0; args = [||] }

type dom_state = {
  id : int;
  buf : span array;
  mutable len : int;
  mutable dropped : int;
  mutable stack_name : string array;
  mutable stack_cat : string array;
  mutable stack_ts : int64 array;
  mutable depth : int;
}

let registry_mutex = Mutex.create ()

let states : dom_state list ref = ref []
[@@lpp.domain_safe
  "ring registry: registration holds [registry_mutex]; merging assumes \
   quiescence (see module header)"]

let next_id = ref 0
[@@lpp.domain_safe "guarded by [registry_mutex]"]

let make_state () =
  Lpp_util.Sync.with_lock registry_mutex (fun () ->
      let id = !next_id in
      incr next_id;
      let st =
        {
          id;
          buf = Array.make !capacity dummy;
          len = 0;
          dropped = 0;
          stack_name = Array.make 64 "";
          stack_cat = Array.make 64 "";
          stack_ts = Array.make 64 0L;
          depth = 0;
        }
      in
      states := st :: !states;
      st)

let key = Domain.DLS.new_key make_state

let state () = Domain.DLS.get key

let grow_stack st =
  let n = Array.length st.stack_name in
  let copy a fill =
    let fresh = Array.make (2 * n) fill in
    Array.blit a 0 fresh 0 n;
    fresh
  in
  st.stack_name <- copy st.stack_name "";
  st.stack_cat <- copy st.stack_cat "";
  st.stack_ts <- copy st.stack_ts 0L

let begin_span ?(cat = "") name =
  if Flag.enabled () then begin
    let st = state () in
    if st.depth >= Array.length st.stack_name then grow_stack st;
    let d = st.depth in
    st.stack_name.(d) <- name;
    st.stack_cat.(d) <- cat;
    st.stack_ts.(d) <- Lpp_util.Clock.now_ns ();
    st.depth <- d + 1
  end

let end_span ?(args = [||]) () =
  if Flag.enabled () then begin
    let st = state () in
    (* depth 0 means tracing was enabled mid-span; drop silently *)
    if st.depth > 0 then begin
      let d = st.depth - 1 in
      st.depth <- d;
      let t0 = st.stack_ts.(d) in
      if st.len < Array.length st.buf then begin
        st.buf.(st.len) <-
          {
            name = st.stack_name.(d);
            cat = st.stack_cat.(d);
            ts = Lpp_util.Clock.diff_ns ~since:epoch t0;
            dur = Lpp_util.Clock.diff_ns ~since:t0 (Lpp_util.Clock.now_ns ());
            dom = st.id;
            depth = d;
            args;
          };
        st.len <- st.len + 1
      end
      else st.dropped <- st.dropped + 1
    end
  end

let with_span ?cat ?args name f =
  if not (Flag.enabled ()) then f ()
  else begin
    begin_span ?cat name;
    let finish () =
      end_span ?args:(match args with None -> None | Some a -> Some (a ())) ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* ---- collection (quiescent side) ------------------------------------ *)

let spans () =
  let all =
    Lpp_util.Sync.with_lock registry_mutex (fun () ->
        List.concat_map
          (fun st -> Array.to_list (Array.sub st.buf 0 st.len))
          !states)
  in
  List.sort
    (fun a b ->
      match Int64.compare a.ts b.ts with
      | 0 -> Int.compare a.dom b.dom
      | c -> c)
    all

let dropped () =
  Lpp_util.Sync.with_lock registry_mutex (fun () ->
      List.fold_left (fun acc st -> acc + st.dropped) 0 !states)

let clear () =
  Lpp_util.Sync.with_lock registry_mutex (fun () ->
      List.iter
        (fun st ->
          st.len <- 0;
          st.dropped <- 0;
          st.depth <- 0)
        !states)
