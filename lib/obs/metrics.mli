(** Metrics registry: named counters, gauges and fixed-bucket log-scale
    histograms.

    Writes are lock-free and domain-local (per-domain shards reached through
    [Domain.DLS], merged on read) and no-ops while the global switch
    ({!Obs.enabled}) is off. Register metrics at module initialisation —
    registration takes a lock; the write path does not.

    Merged reads are exact once the workload is quiescent; concurrent reads
    see a momentary but valid view (word-sized loads cannot tear). *)

type counter

type gauge

type histogram

val counter : string -> counter
(** Find-or-create by name; idempotent.
    @raise Invalid_argument if the name is registered with another kind. *)

val gauge : string -> gauge

val histogram : string -> histogram
(** Log-scale histogram with 64 fixed buckets: bucket 0 holds values ≤ 1,
    bucket [i] holds values in (2{^i-1}, 2{^i}], bucket 63 overflows. *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> int -> unit
(** Per-domain last-write-wins; the merged {!value} is the max over
    domains. *)

val observe : histogram -> float -> unit

val value : counter -> int
(** Sum over all domains. *)

val gauge_value : gauge -> int
(** Max over all domains. *)

type hist_snapshot = { count : int; sum : float; buckets : int array }

val hist_value : histogram -> hist_snapshot

val hist_quantile : hist_snapshot -> float -> float
(** [hist_quantile h p] ([p] ∈ [\[0,1\]]) derives the value at rank
    ⌈p·count⌉ from the log2 buckets, interpolating geometrically inside the
    bucket (linearly inside bucket 0, which spans (0, 1]). Exact to within
    one bucket's resolution — a factor of 2. [nan] on an empty histogram.
    Used by the JSON/text sinks for p50/p90/p99 and by [lpp serve] for its
    live latency report; callers holding exact samples should prefer
    [Lpp_util.Quantiles]. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Every registered metric with merged values, each section sorted by
    name — the deterministic input to the JSON/text sinks. *)

val reset : unit -> unit
(** Zero every shard of every metric. *)

val bucket_count : int

val bucket_of : float -> int

val bucket_lo : int -> float

val bucket_hi : int -> float
