(* The global observability switch. A plain bool ref read without
   synchronisation: it is flipped only from quiescent points (Obs.enable /
   Obs.disable, before and after a traced workload), and the disabled fast
   path must cost exactly one load and one predictable branch at every
   instrumentation site. Internal to Lpp_obs — instrumented code reads it
   through [Obs.enabled]. *)

let flag = ref false
[@@lpp.domain_safe
  "the global observability switch; flipped only at quiescent points and \
   read as one word (module header)"]

let[@inline] enabled () = !flag

let set b = flag := b
