(** Per-domain ring-buffer span tracer.

    Recording is lock-free and domain-local: each domain owns a ring of
    completed spans and an explicit span stack, reached via one
    [Domain.DLS] lookup. A span's begin and end always run on the same
    domain, so spans never cross domains and nest properly per domain.
    Every entry point is a no-op (one load, one branch) while the global
    switch ({!Obs.enabled}) is off.

    {!spans}, {!clear} and {!dropped} merge or reset the per-domain buffers
    and must only run while the traced workload is quiescent (every
    [Lpp_util.Pool] call has returned). *)

type span = {
  name : string;
  cat : string;
  ts : int64;  (** start, ns since the process-wide trace epoch *)
  dur : int64;  (** ns *)
  dom : int;  (** dense per-domain slot; 0 = first domain that traced *)
  depth : int;  (** nesting depth at begin time, outermost = 0 *)
  args : (string * float) array;
}

val with_span :
  ?cat:string -> ?args:(unit -> (string * float) array) -> string ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is recorded even if the thunk
    raises. When tracing is disabled, calls the thunk directly and never
    evaluates [args] — pass argument construction as a thunk so disabled
    call sites allocate nothing. *)

val begin_span : ?cat:string -> string -> unit
(** Push a span onto the calling domain's stack. Pair with {!end_span} on
    the same domain; prefer {!with_span} unless the closing arguments are
    only known at the end (e.g. an operator's output cardinality). *)

val end_span : ?args:(string * float) array -> unit -> unit
(** Pop the innermost open span and record it with [args]. A pop with no
    open span (tracing was enabled mid-span) is ignored. *)

val spans : unit -> span list
(** All recorded spans across domains, sorted by start timestamp. *)

val dropped : unit -> int
(** Spans discarded because a domain's ring was full. *)

val clear : unit -> unit
(** Empty every domain's ring and span stack. *)

val set_capacity : int -> unit
(** Ring capacity for domains that start tracing after the call (default
    65536 spans); existing rings keep their size. *)

val default_capacity : int

val epoch : int64
(** The [Clock.now_ns] origin all span timestamps are relative to. *)
