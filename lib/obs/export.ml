(* Sinks: Chrome trace_event JSON, metrics JSON, and a compact aggregate
   text report. All three read the merged quiescent state (Trace.spans /
   Metrics.snapshot) and build Lpp_util.Json trees, so the emitted bytes go
   through the repo's one escaping implementation. *)

open Lpp_util

let ns_to_us ns = Int64.to_float ns /. 1e3

(* ---- Chrome trace_event --------------------------------------------- *)

let span_event (s : Trace.span) =
  let base =
    [
      ("name", Json.String s.name);
      ("cat", Json.String (if s.cat = "" then "lpp" else s.cat));
      ("ph", Json.String "X");
      ("ts", Json.Float (ns_to_us s.ts));
      ("dur", Json.Float (ns_to_us s.dur));
      ("pid", Json.Int 1);
      ("tid", Json.Int s.dom);
    ]
  in
  let args =
    if Array.length s.args = 0 then []
    else
      [
        ( "args",
          Json.Obj
            (Array.to_list
               (Array.map (fun (k, v) -> (k, Json.Float v)) s.args)) );
      ]
  in
  Json.Obj (base @ args)

let thread_meta dom =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int dom);
      ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain-%d" dom)) ]);
    ]

let chrome_trace () =
  let spans = Trace.spans () in
  let doms =
    List.sort_uniq Int.compare (List.map (fun (s : Trace.span) -> s.dom) spans)
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map thread_meta doms @ List.map span_event spans) );
      ("displayTimeUnit", Json.String "ms");
      ("droppedSpans", Json.Int (Trace.dropped ()));
    ]

(* ---- metrics JSON --------------------------------------------------- *)

let hist_json (h : Metrics.hist_snapshot) =
  let buckets = ref [] in
  for i = Metrics.bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then
      buckets :=
        Json.Obj
          [
            ("lo", Json.Float (Metrics.bucket_lo i));
            ("hi", Json.Float (Metrics.bucket_hi i));
            ("count", Json.Int h.buckets.(i));
          ]
        :: !buckets
  done;
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("p50", Json.Float (Metrics.hist_quantile h 0.50));
      ("p90", Json.Float (Metrics.hist_quantile h 0.90));
      ("p99", Json.Float (Metrics.hist_quantile h 0.99));
      ("buckets", Json.List !buckets);
    ]

let metrics_json () =
  let s = Metrics.snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) s.histograms) );
    ]

let write path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Json.to_channel oc json;
      output_char oc '\n')

let write_chrome_trace path = write path (chrome_trace ())

let write_metrics path = write path (metrics_json ())

(* ---- text summary --------------------------------------------------- *)

type agg = {
  mutable calls : int;
  mutable total : int64;
  mutable min : int64;
  mutable max : int64;
  mutable durs : float list;  (* exact per-call ns, for true quantiles *)
}

let summary () =
  let buf = Buffer.create 4096 in
  let spans = Trace.spans () in
  let by_name : (string * string, agg) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      let key = (s.cat, s.name) in
      match Hashtbl.find_opt by_name key with
      | Some a ->
          a.calls <- a.calls + 1;
          a.total <- Int64.add a.total s.dur;
          if Int64.compare s.dur a.min < 0 then a.min <- s.dur;
          if Int64.compare s.dur a.max > 0 then a.max <- s.dur;
          a.durs <- Int64.to_float s.dur :: a.durs
      | None ->
          Hashtbl.add by_name key
            {
              calls = 1;
              total = s.dur;
              min = s.dur;
              max = s.dur;
              durs = [ Int64.to_float s.dur ];
            })
    spans;
  let ms ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e6) in
  let us ns = Printf.sprintf "%.1f" (Int64.to_float ns /. 1e3) in
  if Hashtbl.length by_name > 0 then begin
    let t =
      Ascii_table.create
        [
          "cat"; "span"; "calls"; "total ms"; "mean µs"; "p50 µs"; "p99 µs";
          "min µs"; "max µs";
        ]
    in
    Hashtbl.fold (fun k a acc -> (k, a) :: acc) by_name []
    |> List.sort (fun ((_, _), a) ((_, _), b) -> Int64.compare b.total a.total)
    |> List.iter (fun ((cat, name), a) ->
           (* exact quantiles: the aggregator kept every sample *)
           let sorted = Array.of_list a.durs in
           Array.sort Float.compare sorted;
           let q p = Printf.sprintf "%.1f" (Quantiles.quantile sorted p /. 1e3) in
           Ascii_table.add_row t
             [
               (if cat = "" then "lpp" else cat);
               name;
               string_of_int a.calls;
               ms a.total;
               us (Int64.div a.total (Int64.of_int a.calls));
               q 0.50;
               q 0.99;
               us a.min;
               us a.max;
             ]);
    Buffer.add_string buf
      (Printf.sprintf "Spans (%d recorded%s)\n" (List.length spans)
         (match Trace.dropped () with
         | 0 -> ""
         | d -> Printf.sprintf ", %d dropped" d));
    Buffer.add_string buf (Ascii_table.render t)
  end
  else Buffer.add_string buf "Spans: none recorded\n";
  let snap = Metrics.snapshot () in
  let nonzero_counters = List.filter (fun (_, v) -> v <> 0) snap.counters in
  if nonzero_counters <> [] then begin
    let t = Ascii_table.create [ "counter"; "value" ] in
    List.iter
      (fun (n, v) -> Ascii_table.add_row t [ n; string_of_int v ])
      nonzero_counters;
    Buffer.add_string buf "\nCounters\n";
    Buffer.add_string buf (Ascii_table.render t)
  end;
  let live_hists =
    List.filter (fun (_, (h : Metrics.hist_snapshot)) -> h.count > 0) snap.histograms
  in
  if live_hists <> [] then begin
    let t =
      Ascii_table.create
        [ "histogram"; "count"; "sum"; "mean"; "~p50"; "~p90"; "~p99" ]
    in
    List.iter
      (fun (n, (h : Metrics.hist_snapshot)) ->
        let q p = Printf.sprintf "%.1f" (Metrics.hist_quantile h p) in
        Ascii_table.add_row t
          [
            n;
            string_of_int h.count;
            Printf.sprintf "%.1f" h.sum;
            Printf.sprintf "%.2f" (h.sum /. float_of_int h.count);
            q 0.50;
            q 0.90;
            q 0.99;
          ])
      live_hists;
    Buffer.add_string buf "\nHistograms\n";
    Buffer.add_string buf (Ascii_table.render t)
  end;
  Buffer.contents buf

let print_summary () = print_string (summary ())
[@@lpp.allow
  "D006 the lpp-trace text sink: the CLI calls this to put the summary on \
   stdout"]
