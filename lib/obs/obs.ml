(* Facade: the global switch plus the wiring that cannot live in the
   instrumented libraries themselves (the Pool task monitor — Lpp_util must
   not depend on Lpp_obs, so the hook is injected from here). *)

let enabled = Flag.enabled

(* The switch itself, for per-lookup hot paths: without flambda a call to
   [enabled] never inlines away, but [if !Obs.live then ...] compiles to two
   loads and a predictable branch (~0.5 ns), which is what keeps the
   disabled-mode overhead bound under 2% (see bench/obs_overhead.ml).
   Read-only outside this library: flip it via {!enable} / {!disable}. *)
let live = Flag.flag

(* Pool instrumentation: per-task spans tagged by who executed them, steal
   and worker-task counters, and the queue depth observed at each dequeue. *)
let pool_tasks = Metrics.counter "pool.task.worker"

let pool_steals = Metrics.counter "pool.task.steal"

let pool_queue_depth = Metrics.histogram "pool.queue_depth"

let pool_monitor ~helped ~queue_depth task =
  Metrics.incr (if helped then pool_steals else pool_tasks);
  Metrics.observe pool_queue_depth (float_of_int queue_depth);
  Trace.with_span ~cat:"pool"
    (if helped then "pool.task.steal" else "pool.task")
    task

let enable () =
  Lpp_util.Pool.set_monitor (Some pool_monitor);
  Flag.set true

let disable () =
  Flag.set false;
  Lpp_util.Pool.set_monitor None

let reset () =
  Trace.clear ();
  Metrics.reset ()
