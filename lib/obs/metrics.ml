(* Metrics registry: named counters, gauges and fixed-bucket log-scale
   histograms.

   Writes go to lock-free per-domain shards: each domain holds (via
   Domain.DLS) an array of cells indexed by metric id, so an increment is
   one DLS lookup plus plain int stores — no atomics, no contention. Shards
   register themselves under a mutex on first use; reads ([value],
   [snapshot]) merge all shards. Word-sized loads cannot tear in OCaml, so
   reading concurrently with writers yields a momentary but valid view;
   exact totals require the workload to be quiescent, which is when the CLI
   sinks run.

   Registration ([counter] / [gauge] / [histogram]) is idempotent by name
   and mutex-guarded; call it at module initialisation, not on hot paths. *)

type kind = Counter | Gauge | Histogram

type metric = { id : int; name : string; kind : kind }

type counter = metric

type gauge = metric

type histogram = metric

(* Histogram shape: bucket 0 holds values <= 1 (and everything non-positive
   or NaN); bucket i in 1..62 holds values in (2^(i-1), 2^i]; bucket 63 is
   the overflow. Fixed for every histogram so shards merge by plain array
   addition. *)
let bucket_count = 64

let bucket_of x =
  if not (x > 1.0) then 0
  else if x = Float.infinity then bucket_count - 1
  else begin
    (* x = m·2^e with m ∈ [0.5, 1): x ∈ (2^(e-1), 2^e] after nudging exact
       powers of two down into their closed-upper bucket *)
    let m, e = Float.frexp x in
    let e = if m = 0.5 then e - 1 else e in
    if e > bucket_count - 1 then bucket_count - 1 else e
  end

let bucket_lo i = if i = 0 then 0.0 else 2.0 ** float_of_int (i - 1)

let bucket_hi i = 2.0 ** float_of_int i

(* ---- registry ------------------------------------------------------- *)

let mutex = Mutex.create ()

let by_name : (string, metric) Hashtbl.t = Hashtbl.create 64
[@@lpp.domain_safe "registry table; every access holds [mutex]"]

let metrics : metric list ref = ref []
[@@lpp.domain_safe "registry list; every access holds [mutex]"]

let metric_count = ref 0
[@@lpp.domain_safe "guarded by [mutex]"]

let register kind name =
  Lpp_util.Sync.with_lock mutex (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some m ->
          if m.kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %S already registered with another kind"
                 name);
          m
      | None ->
          let m = { id = !metric_count; name; kind } in
          incr metric_count;
          Hashtbl.add by_name name m;
          metrics := m :: !metrics;
          m)

let counter name : counter = register Counter name

let gauge name : gauge = register Gauge name

let histogram name : histogram = register Histogram name

(* ---- per-domain shards ---------------------------------------------- *)

type cell = {
  mutable v : int;  (* counter total / gauge value / histogram count *)
  mutable sum : float;  (* histograms only *)
  mutable hist : int array;  (* [||] unless the metric is a histogram *)
}

type shard = { mutable cells : cell option array }

let shards : shard list ref = ref []
[@@lpp.domain_safe
  "shard registry: registration holds [mutex]; merged reads assume \
   quiescence (see module header)"]

let make_shard () =
  let sh = { cells = Array.make 64 None } in
  Lpp_util.Sync.with_lock mutex (fun () -> shards := sh :: !shards);
  sh

let shard_key = Domain.DLS.new_key make_shard

let cell (m : metric) =
  let sh = Domain.DLS.get shard_key in
  if m.id >= Array.length sh.cells then begin
    let fresh = Array.make (max (m.id + 1) (2 * Array.length sh.cells)) None in
    Array.blit sh.cells 0 fresh 0 (Array.length sh.cells);
    sh.cells <- fresh
  end;
  match sh.cells.(m.id) with
  | Some c -> c
  | None ->
      let c =
        {
          v = 0;
          sum = 0.0;
          hist =
            (match m.kind with
            | Histogram -> Array.make bucket_count 0
            | Counter | Gauge -> [||]);
        }
      in
      sh.cells.(m.id) <- Some c;
      c

(* Writers check the global switch themselves so cold call sites stay a bare
   [Metrics.incr c]; hot paths additionally hide the whole instrumented
   block behind [Obs.enabled]. *)

let incr c = if Flag.enabled () then (let cl = cell c in cl.v <- cl.v + 1)

let add c n = if Flag.enabled () then (let cl = cell c in cl.v <- cl.v + n)

let set g x = if Flag.enabled () then (cell g).v <- x

let observe h x =
  if Flag.enabled () then begin
    let cl = cell h in
    cl.v <- cl.v + 1;
    cl.sum <- cl.sum +. x;
    cl.hist.(bucket_of x) <- cl.hist.(bucket_of x) + 1
  end

(* ---- merged reads --------------------------------------------------- *)

let fold_cells (m : metric) ~init ~f =
  Lpp_util.Sync.with_lock mutex (fun () ->
      List.fold_left
        (fun acc sh ->
          if m.id < Array.length sh.cells then
            match sh.cells.(m.id) with Some c -> f acc c | None -> acc
          else acc)
        init !shards)

let value (m : metric) =
  match m.kind with
  | Counter | Histogram -> fold_cells m ~init:0 ~f:(fun acc c -> acc + c.v)
  | Gauge -> fold_cells m ~init:0 ~f:(fun acc c -> max acc c.v)

let gauge_value = value

type hist_snapshot = { count : int; sum : float; buckets : int array }

let hist_value (m : metric) =
  fold_cells m
    ~init:{ count = 0; sum = 0.0; buckets = Array.make bucket_count 0 }
    ~f:(fun acc c ->
      Array.iteri (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n) c.hist;
      { acc with count = acc.count + c.v; sum = acc.sum +. c.sum })

(* Quantiles derived from the log2 buckets: find the bucket holding rank
   ⌈p·count⌉ and interpolate geometrically inside it (linearly inside
   bucket 0, which spans (0, 1]). Exact to within one bucket — a factor of
   2 — which is plenty for latency reporting. *)
let hist_quantile (h : hist_snapshot) p =
  if h.count = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let cum = ref 0 and i = ref 0 in
    (* [incr] here is this module's counter incr, hence the explicit update *)
    while !cum + h.buckets.(!i) < rank do
      cum := !cum + h.buckets.(!i);
      i := !i + 1
    done;
    let frac = float_of_int (rank - !cum) /. float_of_int h.buckets.(!i) in
    if !i = 0 then frac else bucket_lo !i *. (2.0 ** frac)
  end

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot () =
  let all = Lpp_util.Sync.with_lock mutex (fun () -> List.rev !metrics) in
  let by_kind k = List.filter (fun m -> m.kind = k) all in
  let named f ms =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun m -> (m.name, f m)) ms)
  in
  {
    counters = named value (by_kind Counter);
    gauges = named value (by_kind Gauge);
    histograms = named hist_value (by_kind Histogram);
  }

let reset () =
  Lpp_util.Sync.with_lock mutex (fun () ->
      List.iter
        (fun sh ->
          Array.iter
            (function
              | None -> ()
              | Some c ->
                  c.v <- 0;
                  c.sum <- 0.0;
                  Array.fill c.hist 0 (Array.length c.hist) 0)
            sh.cells)
        !shards)
