(** Sinks over the recorded spans and metrics.

    All readers assume the traced workload is quiescent. The JSON trees are
    built with [Lpp_util.Json], so every emitted string goes through the
    repo's single escaping implementation. *)

val chrome_trace : unit -> Lpp_util.Json.t
(** The [trace_event] document Chrome's [about:tracing] / Perfetto loads:
    one ["ph": "X"] (complete) event per span with microsecond [ts]/[dur],
    [tid] = recording domain, plus thread-name metadata events and a
    [droppedSpans] count. *)

val write_chrome_trace : string -> unit

val metrics_json : unit -> Lpp_util.Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {..}}]; histograms
    carry bucket-derived [p50]/[p90]/[p99] ({!Metrics.hist_quantile}) and
    list only their non-empty buckets as [{lo, hi, count}]. *)

val write_metrics : string -> unit

val summary : unit -> string
(** Compact text report: spans aggregated by (cat, name) — calls, total,
    mean/min/max plus exact p50/p99 over the recorded samples
    ([Lpp_util.Quantiles]) — and non-zero counters and non-empty histograms
    with their bucket-derived ~p50/~p90/~p99. *)

val print_summary : unit -> unit
