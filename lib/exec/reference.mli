(** Direct (materialising) evaluation of an operator sequence.

    Executes the algebra of Section 3.2 exactly as its [res(·)] definitions
    read: every intermediate result is an explicit list of mappings. Exponential
    in the worst case — intended only for tests that cross-validate the
    {!Lpp_pattern.Planner} linearisation against the backtracking {!Matcher},
    and for didactic examples on small graphs. *)

type mapping = {
  node_bind : (int * int) list;  (** node var → graph node, sorted by var *)
  rel_bind : (int * int list) list;
      (** rel var → bound relationships: a singleton for ordinary
          relationships, the hop sequence for variable-length paths *)
}

val eval :
  ?semantics:Semantics.t ->
  ?max_intermediate:int ->
  Lpp_pgraph.Graph.t ->
  Lpp_pattern.Algebra.t ->
  mapping list option
(** [None] if an intermediate result would exceed [max_intermediate]
    (default 200_000) mappings. *)

val count :
  ?semantics:Semantics.t ->
  ?max_intermediate:int ->
  ?jobs:int ->
  Lpp_pgraph.Graph.t ->
  Lpp_pattern.Algebra.t ->
  int option
(** Like [eval] but returns only the result cardinality. When the sequence
    starts with [Get_nodes] and [jobs > 1] (default
    {!Lpp_util.Pool.default_jobs}), the initial node extent is partitioned
    across domains and each slice is evaluated independently; per-operator
    sizes are summed afterwards, so the result — including whether
    [max_intermediate] is exceeded — is bit-identical to the sequential
    [jobs:1] run. *)

val intermediate_sizes :
  ?semantics:Semantics.t ->
  ?max_intermediate:int ->
  Lpp_pgraph.Graph.t ->
  Lpp_pattern.Algebra.t ->
  int list option
(** The exact cardinality after each operator — the "work done" profile a
    cost-based optimizer wants to minimise. Element [i] corresponds to
    operator [i]. *)
