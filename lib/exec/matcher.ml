open Lpp_pgraph
open Lpp_pattern

type outcome = Count of int | Budget_exceeded

type binding = { nodes : int array; rels : int array }

exception Out_of_budget

let prop_ok props key pred =
  match Graph.assoc_prop props key with
  | None -> false
  | Some v -> begin
      match (pred : Pattern.prop_pred) with
      | Exists -> true
      | Eq want -> Value.equal v want
    end

let node_matches g (p : Pattern.t) i n =
  let np = p.nodes.(i) in
  Array.for_all (fun l -> Graph.node_has_label g n l) np.n_labels
  && Array.for_all (fun (k, pred) -> prop_ok (Graph.node_props g n) k pred) np.n_props

let rel_props_match g (rp : Pattern.rel_pat) r =
  Array.for_all (fun (k, pred) -> prop_ok (Graph.rel_props g r) k pred) rp.r_props

let type_ok (types : int array) t =
  Array.length types = 0 || Array.exists (fun x -> x = t) types

(* A traversal plan: the start pattern node plus, for each pattern rel in
   processing order, which endpoint is already bound when we reach it. *)
type step = { prel : int; from_src : bool; closes_cycle : bool }

let traversal_order (p : Pattern.t) =
  let n = Pattern.node_count p in
  let degrees = Array.init n (Pattern.degree p) in
  let start = ref 0 in
  for v = 1 to n - 1 do
    let better =
      degrees.(v) > degrees.(!start)
      || degrees.(v) = degrees.(!start)
         && Array.length p.nodes.(v).n_labels
            > Array.length p.nodes.(!start).n_labels
    in
    if better then start := v
  done;
  let bound = Array.make n false in
  let rel_done = Array.make (Pattern.rel_count p) false in
  bound.(!start) <- true;
  let steps = ref [] in
  let queue = Queue.create () in
  Queue.add !start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun prel ->
        if not rel_done.(prel) then begin
          let r = p.rels.(prel) in
          let from_src = r.r_src = u in
          let w = if from_src then r.r_dst else r.r_src in
          if bound.(w) then begin
            rel_done.(prel) <- true;
            steps := { prel; from_src; closes_cycle = true } :: !steps
          end
          else begin
            rel_done.(prel) <- true;
            bound.(w) <- true;
            steps := { prel; from_src; closes_cycle = false } :: !steps;
            Queue.add w queue
          end
        end)
      (Pattern.incident_rels p u)
  done;
  (!start, Array.of_list (List.rev !steps))

(* Iterate the graph relationships incident to [u] that can match pattern rel
   [rp] when reached from the [from_src] side; calls [f r other] for each. *)
let iter_candidate_rels g (rp : Pattern.rel_pat) ~from_src u f =
  let want_out = rp.r_directed && from_src in
  let want_in = rp.r_directed && not from_src in
  let scan_out () =
    Graph.iter_out_rels g u (fun r ->
        if type_ok rp.r_types (Graph.rel_type g r) then f r (Graph.rel_dst g r))
  in
  let scan_in () =
    Graph.iter_in_rels g u (fun r ->
        if
          type_ok rp.r_types (Graph.rel_type g r)
          (* self-loops already produced by the out scan in undirected mode *)
          && not ((not rp.r_directed) && Graph.rel_src g r = Graph.rel_dst g r)
        then f r (Graph.rel_src g r))
  in
  if want_out then scan_out ()
  else if want_in then scan_in ()
  else begin
    scan_out ();
    scan_in ()
  end

(* The candidate extent of the start node: every node for a label-free start,
   the index of the rarest required label otherwise. Materialised as an array
   so the extent can be partitioned across domains. *)
let start_extent g (p : Pattern.t) start =
  let np = p.nodes.(start) in
  if Array.length np.n_labels = 0 then
    Array.init (Graph.node_count g) Fun.id
  else begin
    (* Scan the index of the rarest required label. *)
    let best = ref np.n_labels.(0) in
    Array.iter
      (fun l ->
        if
          Array.length (Graph.nodes_with_label g l)
          < Array.length (Graph.nodes_with_label g !best)
        then best := l)
      np.n_labels;
    Graph.nodes_with_label g !best
  end

(* One independent backtracking searcher: all mutable search state is local,
   so several searchers may run concurrently on different domains as long as
   each receives its own [tick] and [on_match]. Returns the start pattern
   node and a [try_start] that explores everything reachable from one start
   candidate. *)
let make_searcher ?(semantics = Semantics.Cypher) g (p : Pattern.t) ~tick
    ~on_match =
  let start, steps = traversal_order p in
  let n = Pattern.node_count p in
  let m = Pattern.rel_count p in
  let node_of = Array.make n (-1) in
  let rel_of = Array.make m (-1) in
  (* global edge-isomorphism marks, shared by single relationships and every
     hop of variable-length paths *)
  let used = Array.make (max (Graph.rel_count g) 1) false in
  let edge_iso = Semantics.equal semantics Cypher in
  let rec go i =
    if i >= Array.length steps then on_match node_of rel_of
    else begin
      let { prel; from_src; closes_cycle } = steps.(i) in
      let rp = p.rels.(prel) in
      let u = node_of.(if from_src then rp.r_src else rp.r_dst) in
      let w_pat = if from_src then rp.r_dst else rp.r_src in
      let arrive other continue =
        if closes_cycle then begin
          if node_of.(w_pat) = other then continue ()
        end
        else if node_matches g p w_pat other then begin
          node_of.(w_pat) <- other;
          continue ();
          node_of.(w_pat) <- -1
        end
      in
      match rp.r_hops with
      | None ->
          iter_candidate_rels g rp ~from_src u (fun r other ->
              tick ();
              if ((not edge_iso) || not used.(r)) && rel_props_match g rp r
              then begin
                used.(r) <- true;
                rel_of.(prel) <- r;
                arrive other (fun () -> go (i + 1));
                rel_of.(prel) <- -1;
                used.(r) <- false
              end)
      | Some (lo, hi) ->
          (* enumerate paths of lo..hi qualifying hops; every hop respects
             type/direction/property constraints and Cypher edge isomorphism
             (within the path and against previously bound relationships) *)
          let rec walk depth node =
            if depth >= lo then arrive node (fun () -> go (i + 1));
            if depth < hi then
              iter_candidate_rels g rp ~from_src node (fun r other ->
                  tick ();
                  if ((not edge_iso) || not used.(r)) && rel_props_match g rp r
                  then begin
                    used.(r) <- true;
                    walk (depth + 1) other;
                    used.(r) <- false
                  end)
          in
          walk 0 u
    end
  in
  let try_start nd =
    tick ();
    if node_matches g p start nd then begin
      node_of.(start) <- nd;
      go 0;
      node_of.(start) <- -1
    end
  in
  (start, try_start)

let run ?semantics ?(budget = 50_000_000) g (p : Pattern.t) ~on_match =
  let remaining = ref budget in
  let tick () =
    decr remaining;
    if !remaining < 0 then raise Out_of_budget
  in
  let start, try_start = make_searcher ?semantics g p ~tick ~on_match in
  Array.iter try_start (start_extent g p start)

(* Parallel counting partitions the start extent across domains; every chunk
   searches with a private budget counter equal to the full budget, and the
   per-chunk step counts are summed afterwards. The outcome is bit-identical
   to the sequential run: the search explores T total steps regardless of the
   partition, the sequential run reports [Budget_exceeded] iff T > budget,
   and here either some chunk alone exceeds the budget (hence T does), or
   every chunk completes and the exact T is compared against the budget. *)
let count ?semantics ?(budget = 50_000_000) ?jobs g p =
  Lpp_obs.Trace.with_span ~cat:"exec" "matcher.count" @@ fun () ->
  let jobs = Lpp_util.Pool.resolve_jobs jobs in
  if jobs <= 1 then begin
    let total = ref 0 in
    match run ?semantics ~budget g p ~on_match:(fun _ _ -> incr total) with
    | () -> Count !total
    | exception Out_of_budget -> Budget_exceeded
  end
  else begin
    let start, _ = traversal_order p in
    let extent = start_extent g p start in
    let chunk ~lo ~hi =
      Lpp_obs.Trace.with_span ~cat:"exec" "matcher.partition"
        ~args:(fun () ->
          [| ("lo", float_of_int lo); ("hi", float_of_int hi) |])
      @@ fun () ->
      let steps = ref 0 in
      let tick () =
        incr steps;
        if !steps > budget then raise Out_of_budget
      in
      let total = ref 0 in
      let _, try_start =
        make_searcher ?semantics g p ~tick ~on_match:(fun _ _ -> incr total)
      in
      match
        for i = lo to hi - 1 do
          try_start extent.(i)
        done
      with
      | () -> (!steps, Some !total)
      | exception Out_of_budget -> (!steps, None)
    in
    let shards =
      Lpp_util.Pool.parallel_chunks ~jobs ~n:(Array.length extent) chunk
    in
    let steps = List.fold_left (fun acc (s, _) -> acc + s) 0 shards in
    if steps > budget || List.exists (fun (_, c) -> c = None) shards then
      Budget_exceeded
    else
      Count (List.fold_left (fun acc (_, c) -> acc + Option.get c) 0 shards)
  end

let enumerate ?semantics ?budget ?(limit = 1000) g p =
  let acc = ref [] in
  let seen = ref 0 in
  let exception Done in
  (try
     run ?semantics ?budget g p ~on_match:(fun nodes rels ->
         acc := { nodes = Array.copy nodes; rels = Array.copy rels } :: !acc;
         incr seen;
         if !seen >= limit then raise Done)
   with Done | Out_of_budget -> ());
  List.rev !acc
