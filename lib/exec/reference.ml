open Lpp_pgraph
open Lpp_pattern

type mapping = { node_bind : (int * int) list; rel_bind : (int * int list) list }

let bind assoc var value =
  let rec go = function
    | [] -> [ (var, value) ]
    | (v, _) :: _ as rest when var < v -> (var, value) :: rest
    | (v, x) :: rest when v = var ->
        (* rebinding an existing variable is a programming error upstream *)
        assert (x = value);
        (v, x) :: rest
    | pair :: rest -> pair :: go rest
  in
  go assoc

let lookup assoc var = List.assoc var assoc

let drop assoc var = List.remove_assoc var assoc

let prop_ok = Matcher.prop_ok

(* One operator applied to a full intermediate result. Every operator
   processes its input mappings independently of one another (GetNodes is
   always first and introduces them), which is what makes partitioning the
   initial extent across domains sound. *)
let apply_op ~edge_iso g mappings (op : Algebra.op) =
  match op with
  | Get_nodes { var } ->
      (* GetNodes is always the first operator in our sequences; applying it
         to a non-empty input would be a cross product, which the algebra of
         the paper never produces. *)
      assert (mappings = [ { node_bind = []; rel_bind = [] } ]);
      Graph.fold_nodes g ~init:[] ~f:(fun acc n ->
          { node_bind = [ (var, n) ]; rel_bind = [] } :: acc)
  | Label_selection { var; label } ->
      List.filter
        (fun m -> Graph.node_has_label g (lookup m.node_bind var) label)
        mappings
  | Prop_selection { kind; var; props } ->
      List.filter
        (fun m ->
          match kind with
          | Algebra.Node_var ->
              let entity_props = Graph.node_props g (lookup m.node_bind var) in
              Array.for_all (fun (k, pred) -> prop_ok entity_props k pred) props
          | Algebra.Rel_var ->
              (* a variable-length binding satisfies the predicates iff
                 every hop does, matching how the matcher filters hops *)
              List.for_all
                (fun r ->
                  Array.for_all
                    (fun (k, pred) -> prop_ok (Graph.rel_props g r) k pred)
                    props)
                (lookup m.rel_bind var))
        mappings
  | Expand { src_var; rel_var; dst_var; types; dir; hops } ->
      let type_ok t = Array.length types = 0 || Array.exists (( = ) t) types in
      let out = ref [] in
      List.iter
        (fun m ->
          let bound_elsewhere r =
            List.exists (fun (_, rs) -> List.mem r rs) m.rel_bind
          in
          (* iterate qualifying relationships around [u] not in [path] *)
          let iter_hops u path f =
            let consider r other =
              if
                type_ok (Graph.rel_type g r)
                && ((not edge_iso)
                   || ((not (bound_elsewhere r)) && not (List.mem r path)))
              then f r other
            in
            let scan_out () =
              Graph.iter_out_rels g u (fun r -> consider r (Graph.rel_dst g r))
            in
            let scan_in ~skip_loops =
              Graph.iter_in_rels g u (fun r ->
                  if not (skip_loops && Graph.rel_src g r = Graph.rel_dst g r)
                  then consider r (Graph.rel_src g r))
            in
            match (dir : Direction.t) with
            | Out -> scan_out ()
            | In -> scan_in ~skip_loops:false
            | Both ->
                scan_out ();
                scan_in ~skip_loops:true
          in
          let emit node path =
            out :=
              {
                node_bind = bind m.node_bind dst_var node;
                rel_bind = bind m.rel_bind rel_var (List.rev path);
              }
              :: !out
          in
          let u = lookup m.node_bind src_var in
          match hops with
          | None -> iter_hops u [] (fun r other -> emit other [ r ])
          | Some (lo, hi) ->
              let rec walk depth node path =
                if depth >= lo then emit node path;
                if depth < hi then
                  iter_hops node path (fun r other ->
                      walk (depth + 1) other (r :: path))
              in
              walk 0 u [])
        mappings;
      !out
  | Merge_on { keep; merge; cycle_len = _ } ->
      List.filter_map
        (fun m ->
          if lookup m.node_bind keep = lookup m.node_bind merge then
            Some { m with node_bind = drop m.node_bind merge }
          else None)
        mappings

let eval_steps ?(semantics = Semantics.Cypher) ?(max_intermediate = 200_000) g
    (alg : Algebra.t) ~on_step =
  let exception Too_big in
  let check_size l = if List.length l > max_intermediate then raise Too_big in
  let edge_iso = Semantics.equal semantics Cypher in
  match
    Array.fold_left
      (fun acc op ->
        let next = apply_op ~edge_iso g acc op in
        check_size next;
        on_step (List.length next);
        next)
      [ { node_bind = []; rel_bind = [] } ]
      alg.ops
  with
  | result -> Some result
  | exception Too_big -> None

let eval ?semantics ?max_intermediate g alg =
  eval_steps ?semantics ?max_intermediate g alg ~on_step:(fun _ -> ())

(* Parallel counting: partition the GetNodes extent into per-domain slices
   and run the remaining operators over each slice independently. Per-step
   sizes are tracked locally and summed after the barrier, so the Too_big
   outcome is identical to the sequential evaluation: a slice aborts only
   when its local size alone exceeds [max_intermediate] (then the total does
   too), and otherwise the exact per-step totals decide. *)
let count_sharded ~semantics ~max_intermediate ~jobs g (alg : Algebra.t) var =
  let edge_iso = Semantics.equal semantics Semantics.Cypher in
  let ops = alg.ops in
  let n_ops = Array.length ops in
  let n = Graph.node_count g in
  let chunk ~lo ~hi =
    Lpp_obs.Trace.with_span ~cat:"exec" "reference.partition"
      ~args:(fun () -> [| ("lo", float_of_int lo); ("hi", float_of_int hi) |])
    @@ fun () ->
    let sizes = Array.make n_ops 0 in
    sizes.(0) <- hi - lo;
    let exception Local_too_big in
    let mappings = ref [] in
    for nd = lo to hi - 1 do
      mappings := { node_bind = [ (var, nd) ]; rel_bind = [] } :: !mappings
    done;
    match
      for i = 1 to n_ops - 1 do
        mappings := apply_op ~edge_iso g !mappings ops.(i);
        let len = List.length !mappings in
        sizes.(i) <- len;
        if len > max_intermediate then raise Local_too_big
      done
    with
    | () -> Some (sizes, List.length !mappings)
    | exception Local_too_big -> None
  in
  let shards = Lpp_util.Pool.parallel_chunks ~jobs ~n chunk in
  if List.exists Option.is_none shards then None
  else begin
    let shards = List.map Option.get shards in
    let totals = Array.make n_ops 0 in
    List.iter
      (fun (sizes, _) ->
        Array.iteri (fun i s -> totals.(i) <- totals.(i) + s) sizes)
      shards;
    if Array.exists (fun s -> s > max_intermediate) totals then None
    else Some (List.fold_left (fun acc (_, c) -> acc + c) 0 shards)
  end

let count ?(semantics = Semantics.Cypher) ?(max_intermediate = 200_000) ?jobs g
    (alg : Algebra.t) =
  Lpp_obs.Trace.with_span ~cat:"exec" "reference.count" @@ fun () ->
  let jobs = Lpp_util.Pool.resolve_jobs jobs in
  let sharded_start =
    if jobs > 1 && Array.length alg.ops > 0 then
      match alg.ops.(0) with
      | Algebra.Get_nodes { var } -> Some var
      | _ -> None
    else None
  in
  match sharded_start with
  | Some var -> count_sharded ~semantics ~max_intermediate ~jobs g alg var
  | None ->
      Option.map List.length (eval ~semantics ~max_intermediate g alg)

let intermediate_sizes ?semantics ?max_intermediate g alg =
  let sizes = ref [] in
  eval_steps ?semantics ?max_intermediate g alg ~on_step:(fun n ->
      sizes := n :: !sizes)
  |> Option.map (fun _ -> List.rev !sizes)
