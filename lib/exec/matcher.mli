(** Exact subgraph matching by backtracking — the ground-truth oracle.

    Counts (or enumerates) the mappings of Definition 3.4 for a pattern against
    a property graph, under either matching semantics. Ground-truth counting of
    arbitrary patterns is #P-hard, so every entry point takes a [budget]: an
    upper bound on backtracking steps after which the computation aborts. The
    experiment harness discards queries whose ground truth exceeds the budget,
    mirroring the paper's timeout handling for slow competitors. *)

type outcome = Count of int | Budget_exceeded

val count :
  ?semantics:Semantics.t ->
  ?budget:int ->
  ?jobs:int ->
  Lpp_pgraph.Graph.t ->
  Lpp_pattern.Pattern.t ->
  outcome
(** [count g p] is the number of result mappings of [p] over [g].
    [semantics] defaults to [Cypher]; [budget] defaults to 50 million steps.

    With [jobs > 1] (default {!Lpp_util.Pool.default_jobs}) the candidate
    extent of the start pattern node is partitioned across that many domains
    and the per-chunk match counts are summed. The outcome — both the count
    and whether the budget is exceeded — is bit-identical to the sequential
    [jobs:1] run for every [jobs] value: budget accounting sums the exact
    per-chunk step counts, never an approximation. *)

type binding = { nodes : int array; rels : int array }
(** [nodes.(i)] is the graph node bound to pattern node [i]; [rels.(j)] the
    graph relationship bound to pattern relationship [j]. *)

val enumerate :
  ?semantics:Semantics.t ->
  ?budget:int ->
  ?limit:int ->
  Lpp_pgraph.Graph.t ->
  Lpp_pattern.Pattern.t ->
  binding list
(** First [limit] (default 1000) result mappings, in backtracking order.
    Stops silently if the budget runs out. *)

val node_matches :
  Lpp_pgraph.Graph.t -> Lpp_pattern.Pattern.t -> int -> Lpp_pgraph.Graph.node -> bool
(** [node_matches g p i n]: does graph node [n] satisfy the label and property
    requirements of pattern node [i]? Exposed for the workload generator. *)

val prop_ok :
  (int * Lpp_pgraph.Value.t) array -> int -> Lpp_pattern.Pattern.prop_pred -> bool
(** Does a sorted property array satisfy one predicate on the given key?
    A thin wrapper over {!Lpp_pgraph.Graph.assoc_prop}; shared with
    {!Reference} so both executors filter properties identically. *)
