(** A cardinality estimation technique packaged for the experiment harness:
    a name, a support predicate, an estimate closure over a prebuilt summary,
    and the summary's memory footprint. *)

type t = {
  name : string;
  supports : Lpp_pattern.Pattern.t -> bool;
  estimate : Lpp_pattern.Pattern.t -> float;
  seeded_estimate : (int -> Lpp_pattern.Pattern.t -> float) option;
      (** For randomised techniques: [f qid p] estimates with a private RNG
          stream derived from the technique seed and the query id, so results
          are independent of evaluation order and of the domain the call runs
          on. [None] for deterministic techniques; {!Runner.run} prefers this
          over [estimate] when present. *)
  memory_bytes : int;
}

val ours : ?lint_zero:bool -> Lpp_core.Config.t -> Lpp_stats.Catalog.t -> t
(** One of our configurations (S-L … A-LHD-10%).

    [lint_zero] (default [false]) short-circuits sequences that
    [Lpp_analysis.Lint.provably_zero] marks empty to an exact [0.0] instead
    of running Algorithm 1 on them. The claim is about the {e true}
    cardinality (the contradiction is derived from the data's own
    partition/counts), so the short-circuit can only improve accuracy; it is
    opt-in because the default must stay bit-identical to the paper's
    estimator output. *)

val neo4j : Lpp_stats.Catalog.t -> t

val csets : Lpp_datasets.Dataset.t -> t

val wander_join :
  seed:int -> Lpp_baselines.Wander_join.config -> Lpp_datasets.Dataset.t -> t

val sumrdf : ?target_buckets:int -> ?budget:int -> Lpp_datasets.Dataset.t -> t

val our_configurations : ?lint_zero:bool -> Lpp_datasets.Dataset.t -> t list
(** The six configurations of Figure 5, plus Neo4j as the reference point.
    [lint_zero] is passed through to {!ours}. *)

val state_of_the_art : seed:int -> Lpp_datasets.Dataset.t -> t list
(** Figure 6/7/8 lineup: CSets, Neo4j, A-LHD, WJ-1, WJ-100, WJ-R, SumRDF. *)
