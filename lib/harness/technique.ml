open Lpp_baselines

type t = {
  name : string;
  supports : Lpp_pattern.Pattern.t -> bool;
  estimate : Lpp_pattern.Pattern.t -> float;
  seeded_estimate : (int -> Lpp_pattern.Pattern.t -> float) option;
  memory_bytes : int;
}

let ours ?(lint_zero = false) config catalog =
  (* One estimator session per domain: Runner.run fans queries out across a
     domain pool, and sessions hold scratch state that must not be shared.
     Estimates are pure in (config, catalog, pattern), so which domain's
     session serves a query cannot change the result. *)
  let session_key =
    Domain.DLS.new_key (fun () -> Lpp_core.Estimator.make config catalog)
  in
  let estimate =
    if lint_zero then fun p ->
      (* Opt-in: a sequence the lint proves empty (contradictory labels,
         a label or type the data never uses) has true cardinality 0 — answer
         it exactly instead of running Algorithm 1. Off by default so the
         configurations stay bit-identical to the paper's behaviour. *)
      let alg = Lpp_pattern.Planner.plan p in
      if Lpp_analysis.Lint.provably_zero ~catalog alg then 0.0
      else
        Lpp_core.Estimator.session_estimate (Domain.DLS.get session_key) alg
    else fun p ->
      Lpp_core.Estimator.session_estimate_pattern
        (Domain.DLS.get session_key)
        p
  in
  {
    name = Lpp_core.Config.name config;
    supports = (fun _ -> true);
    estimate;
    seeded_estimate = None;
    memory_bytes = Lpp_core.Estimator.memory_bytes config catalog;
  }

let neo4j catalog =
  let est = Neo4j_est.build catalog in
  {
    name = "Neo4j";
    supports = Neo4j_est.supports;
    estimate = Neo4j_est.estimate est;
    seeded_estimate = None;
    memory_bytes = Neo4j_est.memory_bytes est;
  }

let csets (ds : Lpp_datasets.Dataset.t) =
  let est = Csets.build ds.graph ds.catalog in
  {
    name = "CSets";
    supports = Csets.supports;
    estimate = Csets.estimate est;
    seeded_estimate = None;
    memory_bytes = Csets.memory_bytes est;
  }

let wander_join ~seed config (ds : Lpp_datasets.Dataset.t) =
  let est = Wander_join.build ds.graph in
  let rng = Lpp_util.Rng.create seed in
  {
    name = Wander_join.config_name config;
    supports = Wander_join.supports;
    estimate = (fun p -> Wander_join.estimate ~rng est config p);
    (* a private stream per query id: the estimate for query [i] does not
       depend on which other queries ran before it or on which domain it
       runs, so parallel runs reproduce sequential ones exactly *)
    seeded_estimate =
      Some
        (fun qid p ->
          let rng = Lpp_util.Rng.create (((qid + 1) * 1_000_003) + seed) in
          Wander_join.estimate ~rng est config p);
    memory_bytes = Wander_join.memory_bytes est;
  }

let sumrdf ?target_buckets ?budget (ds : Lpp_datasets.Dataset.t) =
  let est = Sumrdf.build ?target_buckets ds.graph in
  {
    name = "SumRDF";
    supports = Sumrdf.supports;
    estimate = Sumrdf.estimate ?budget est;
    seeded_estimate = None;
    memory_bytes = Sumrdf.memory_bytes est;
  }

let our_configurations ?lint_zero (ds : Lpp_datasets.Dataset.t) =
  List.map (fun c -> ours ?lint_zero c ds.catalog) Lpp_core.Config.all
  @ [ neo4j ds.catalog ]

let state_of_the_art ~seed (ds : Lpp_datasets.Dataset.t) =
  [
    csets ds;
    neo4j ds.catalog;
    ours Lpp_core.Config.a_lhd ds.catalog;
    wander_join ~seed Wander_join.WJ_1 ds;
    wander_join ~seed:(seed + 1) Wander_join.WJ_100 ds;
    wander_join ~seed:(seed + 2) Wander_join.WJ_R ds;
    sumrdf ds;
  ]
