(** Experiment runner: apply a technique to a query set, recording q-error and
    estimation latency per query. *)

type measurement = {
  query : Lpp_workload.Query_gen.query;
  estimate : float;
  q_error : float;
  runtime_ns : float;  (** monotonic wall clock per single estimation call *)
}

val run :
  ?measure_time:bool ->
  ?jobs:int ->
  Technique.t ->
  Lpp_workload.Query_gen.query list ->
  measurement list
(** Unsupported queries are skipped. With [measure_time] (default true) each
    estimate is repeated until at least ~1 ms of wall clock has been observed
    so that sub-microsecond estimators still get a meaningful latency.

    With [jobs > 1] (default {!Lpp_util.Pool.default_jobs}) queries are
    evaluated across domains; measurements come back in query order, and
    randomised techniques use their per-query [seeded_estimate] streams, so
    the estimates (and q-errors) are identical to the [jobs:1] run. Only the
    [runtime_ns] readings vary between runs, as wall-clock timings always
    do. *)

val support_fraction :
  Technique.t -> Lpp_workload.Query_gen.query list -> float

val q_errors : measurement list -> float list

val runtimes_ns : measurement list -> float list

val filter :
  (Lpp_workload.Query_gen.query -> bool) -> measurement list -> measurement list
