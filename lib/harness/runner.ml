type measurement = {
  query : Lpp_workload.Query_gen.query;
  estimate : float;
  q_error : float;
  runtime_ns : float;
}

let time_once f x =
  let t0 = Lpp_util.Clock.now_ns () in
  let y = f x in
  (y, Lpp_util.Clock.elapsed_ns ~since:t0)

(* Repeat until ≥ ~1ms total so fast estimators get stable per-call numbers. *)
let timed_estimate f x =
  let y, ns = time_once f x in
  if ns >= 1_000_000.0 then (y, ns)
  else begin
    let reps = max 1 (int_of_float (1_000_000.0 /. Float.max ns 100.0)) in
    let t0 = Lpp_util.Clock.now_ns () in
    for _ = 1 to reps do
      ignore (f x)
    done;
    (y, Lpp_util.Clock.elapsed_ns ~since:t0 /. float_of_int reps)
  end

let run ?(measure_time = true) ?jobs (t : Technique.t) queries =
  let eval (q : Lpp_workload.Query_gen.query) =
    if not (t.supports q.pattern) then None
    else begin
      let estimator =
        match t.seeded_estimate with
        | Some f -> fun p -> f q.id p
        | None -> t.estimate
      in
      let estimate, runtime_ns =
        if measure_time then timed_estimate estimator q.pattern
        else (estimator q.pattern, 0.0)
      in
      Some
        {
          query = q;
          estimate;
          q_error = Qerror.q_error ~truth:(float_of_int q.true_card) ~estimate;
          runtime_ns;
        }
    end
  in
  Lpp_util.Pool.parallel_map_array ?jobs eval (Array.of_list queries)
  |> Array.to_list
  |> List.filter_map Fun.id

let support_fraction (t : Technique.t) queries =
  match queries with
  | [] -> 0.0
  | _ ->
      let supported =
        List.length
          (List.filter
             (fun (q : Lpp_workload.Query_gen.query) -> t.supports q.pattern)
             queries)
      in
      float_of_int supported /. float_of_int (List.length queries)

let q_errors ms = List.map (fun m -> m.q_error) ms

let runtimes_ns ms = List.map (fun m -> m.runtime_ns) ms

let filter pred ms = List.filter (fun m -> pred m.query) ms
