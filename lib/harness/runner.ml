type measurement = {
  query : Lpp_workload.Query_gen.query;
  estimate : float;
  q_error : float;
  runtime_ns : float;
}

(* The single-shot interval is kept as exact integer nanoseconds
   (Clock.diff_ns); floats only enter for the averaged repeat below. *)
let time_once f x =
  let t0 = Lpp_util.Clock.now_ns () in
  let y = f x in
  (y, Lpp_util.Clock.diff_ns ~since:t0 (Lpp_util.Clock.now_ns ()))

(* Repeat until ≥ ~1ms total so fast estimators get stable per-call numbers. *)
let timed_estimate f x =
  let y, ns = time_once f x in
  if Int64.compare ns 1_000_000L >= 0 then (y, Int64.to_float ns)
  else begin
    let ns = Int64.to_float ns in
    let reps = max 1 (int_of_float (1_000_000.0 /. Float.max ns 100.0)) in
    let t0 = Lpp_util.Clock.now_ns () in
    for _ = 1 to reps do
      ignore (f x)
    done;
    (y, Lpp_util.Clock.elapsed_ns ~since:t0 /. float_of_int reps)
  end

let run ?(measure_time = true) ?jobs (t : Technique.t) queries =
  (* Per-query spans are named by the technique so traces of a multi-technique
     comparison stay readable; the name is the same string for every query, so
     recording does not allocate per call. *)
  let eval (q : Lpp_workload.Query_gen.query) =
    if not (t.supports q.pattern) then None
    else begin
      let estimator =
        match t.seeded_estimate with
        | Some f -> fun p -> f q.id p
        | None -> t.estimate
      in
      let estimate, runtime_ns =
        if measure_time then timed_estimate estimator q.pattern
        else (estimator q.pattern, 0.0)
      in
      let m =
        {
          query = q;
          estimate;
          q_error =
            Qerror.q_error ~truth:(Lpp_workload.Query_gen.truth_value q)
              ~estimate;
          runtime_ns;
        }
      in
      Some m
    end
  in
  let eval q =
    Lpp_obs.Trace.with_span ~cat:"runner" t.name
      ~args:(fun () -> [| ("query", float_of_int q.Lpp_workload.Query_gen.id) |])
      (fun () -> eval q)
  in
  Lpp_obs.Trace.with_span ~cat:"runner" "runner.run"
    ~args:(fun () -> [| ("queries", float_of_int (List.length queries)) |])
  @@ fun () ->
  Lpp_util.Pool.parallel_map_array ?jobs eval (Array.of_list queries)
  |> Array.to_list
  |> List.filter_map Fun.id

let support_fraction (t : Technique.t) queries =
  match queries with
  | [] -> 0.0
  | _ ->
      let supported =
        List.length
          (List.filter
             (fun (q : Lpp_workload.Query_gen.query) -> t.supports q.pattern)
             queries)
      in
      float_of_int supported /. float_of_int (List.length queries)

let q_errors ms = List.map (fun m -> m.q_error) ms

let runtimes_ns ms = List.map (fun m -> m.runtime_ns) ms

let filter pred ms = List.filter (fun m -> pred m.query) ms
