type property_mode = Use_stats | Fixed of float

type t = {
  advanced_rc : bool;
  use_hierarchy : bool;
  use_partition : bool;
  property_mode : property_mode;
  use_triangles : bool;
}

let s_l =
  {
    advanced_rc = false;
    use_hierarchy = false;
    use_partition = false;
    property_mode = Use_stats;
    use_triangles = false;
  }

let a_l = { s_l with advanced_rc = true }

let a_lh = { a_l with use_hierarchy = true }

let a_ld = { a_l with use_partition = true }

let a_lhd = { a_l with use_hierarchy = true; use_partition = true }

let a_lhd_10pct = { a_lhd with property_mode = Fixed 0.10 }

let a_lhdt = { a_lhd with use_triangles = true }

let name t =
  let base =
    Printf.sprintf "%s-L%s%s%s"
      (if t.advanced_rc then "A" else "S")
      (if t.use_hierarchy then "H" else "")
      (if t.use_partition then "D" else "")
      (if t.use_triangles then "T" else "")
  in
  match t.property_mode with
  | Use_stats -> base
  | Fixed f -> Printf.sprintf "%s-%.0f%%" base (100.0 *. f)

let all = [ s_l; a_l; a_lh; a_ld; a_lhd; a_lhd_10pct ]

(* Accepts the canonical names case-insensitively, with '_' for '-' and the
   trailing "%" of "A-LHD-10%" optional — the spellings shells and JSON
   clients actually produce. *)
let of_name s =
  let canon s =
    String.lowercase_ascii s |> String.map (function '_' | '%' -> '-' | c -> c)
  in
  let wanted = canon s in
  let candidates = all @ [ a_lhdt ] in
  match
    List.find_opt
      (fun c ->
        let n = canon (name c) in
        n = wanted || n = wanted ^ "-")
      candidates
  with
  | Some c -> Ok c
  | None ->
      Error
        (Printf.sprintf "unknown configuration %S (one of: %s)" s
           (String.concat ", " (List.map name candidates)))
