(** Estimator configurations (Section 6.1's naming scheme).

    A configuration name is read as: [S]imple or [A]dvanced relationship
    statistics; [L]abel probability propagation (always on — it is the
    technique); optional [H]ierarchy and [D]isjointness information; and the
    property mode ([-10%] for the classical fixed-selectivity fallback). *)

type property_mode =
  | Use_stats  (** consult {!Lpp_stats.Prop_stats} *)
  | Fixed of float  (** classical constant selectivity, e.g. 0.10 *)

type t = {
  advanced_rc : bool;
      (** triples RC(ℓ₁,t,ℓ₂) if [true]; Neo4j-style (ℓ,t,α) pairs if [false] *)
  use_hierarchy : bool;  (** consult H_L *)
  use_partition : bool;  (** consult D_L *)
  property_mode : property_mode;
  use_triangles : bool;
      (** consult {!Lpp_stats.Triangle_stats} when a MergeOn closes a
          3-cycle — this library's implementation of the paper's
          "triangle counts" future work (Section 7) *)
}

val s_l : t

val a_l : t

val a_lh : t

val a_ld : t

val a_lhd : t

val a_lhd_10pct : t

val a_lhdt : t
(** A-LHD plus triangle statistics (extension, not one of the paper's six). *)

val name : t -> string
(** Canonical name: "S-L", "A-L", "A-LH", "A-LD", "A-LHD", "A-LHD-10%" or
    "A-LHDT". *)

val all : t list
(** The six configurations of Figure 5, in the paper's order. *)

val of_name : string -> (t, string) result
(** Inverse of {!name} over {!all} plus {!a_lhdt}. Case-insensitive; accepts
    ['_'] for ['-'] and an omitted trailing ["%"], so ["a-lhd-10"] resolves
    to A-LHD-10%. The [Error] carries a message listing the valid names. *)
