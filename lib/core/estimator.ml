open Lpp_pgraph
open Lpp_pattern
open Lpp_stats

(* A session bundles the resolved configuration with every piece of mutable
   state an estimate needs, so a workload amortises all allocation: the label
   probability matrix, the representative/ordering scratch arrays, and the
   per-estimate degree-vector cache are created once in [make] and reset by
   [begin_estimate]. One session serves one domain; concurrent use from
   several domains needs one session each (see Lpp_harness.Technique). *)

type deg_entry = {
  de_dir : Direction.t;
  de_types : int array;
  de_degs : float array;
      (* index 0 = wildcard [*], l+1 = label l; NaN marks a slot not yet
         computed — degrees are filled lazily because an Expand only touches
         the representative labels plus whatever the source update needs *)
}

type session = {
  config : Config.t;
  checks : bool;
  catalog : Catalog.t;
  hierarchy : Label_hierarchy.t;  (* trivial when H_L is switched off *)
  partition : Label_partition.t;  (* trivial when D_L is switched off *)
  probs : Label_probs.t;
  labels : int;
  mutable rel_var_types : int array array;  (* rel var -> allowed types *)
  mutable card : float;
  mutable last_expand_factor : float;
      (* multiplier applied by the most recent Expand, for the triangle-aware
         MergeOn which re-bases the closing estimate on the wedge count *)
  mutable last_expand_dir : Direction.t;
  (* ---- reusable scratch, valid only within one operator application ---- *)
  pos_buf : int array;  (* positive_labels target *)
  ord_buf : int array;  (* one cluster's labels, ranked *)
  ord_p : float array;  (* ranking keys, parallel to ord_buf *)
  ord_d : float array;
  ord_dom : bool array;
      (* ord_dom.(a): ord_buf.(a) is a strict sublabel of some already-ranked
         label — maintained incrementally by [note_ranked] as the ranked
         prefix grows, so [repr_prob] reads it in O(1) per factor *)
  repr_labels : int array;  (* representatives across all clusters *)
  repr_probs : float array;
  varlen_cur : float array;  (* hop-mixing state for variable-length paths *)
  varlen_mix : float array;
  rc_row_buf : int array;  (* one Catalog.rc_row result *)
  tp_buf : float array;  (* the advanced target-probability numerators *)
  mutable deg_entries : deg_entry list;  (* per-(dir, types) cache *)
}

let make ?(checks = false) config catalog =
  let labels = Catalog.label_count catalog in
  let n = max labels 1 in
  {
    config;
    checks;
    catalog;
    hierarchy =
      (if config.Config.use_hierarchy then Catalog.hierarchy catalog
       else Label_hierarchy.trivial labels);
    partition =
      (if config.Config.use_partition then Catalog.partition catalog
       else Label_partition.trivial labels);
    probs = Label_probs.create ~labels ();
    labels;
    rel_var_types = Array.make 8 [||];
    card = 0.0;
    last_expand_factor = 1.0;
    last_expand_dir = Direction.Out;
    pos_buf = Array.make n 0;
    ord_buf = Array.make n 0;
    ord_p = Array.make n 0.0;
    ord_d = Array.make n 0.0;
    ord_dom = Array.make n false;
    repr_labels = Array.make n 0;
    repr_probs = Array.make n 0.0;
    varlen_cur = Array.make labels 0.0;
    varlen_mix = Array.make labels 0.0;
    rc_row_buf = Array.make labels 0;
    tp_buf = Array.make labels 0.0;
    deg_entries = [];
  }

let begin_estimate st (alg : Algebra.t) =
  Label_probs.reset st.probs;
  if Array.length st.rel_var_types < alg.rel_vars then
    st.rel_var_types <-
      Array.make (max alg.rel_vars (2 * Array.length st.rel_var_types)) [||]
  else Array.fill st.rel_var_types 0 (Array.length st.rel_var_types) [||];
  st.card <- 0.0;
  st.last_expand_factor <- 1.0;
  st.last_expand_dir <- Direction.Out;
  (* the cache keys counts off the catalog, which may be mutated between
     estimates (note_* on an unfrozen catalog) — valid for one estimate only *)
  st.deg_entries <- []

let fi = float_of_int

(* Observability: per-operator spans and counters (PR 4). Metrics are
   registered once at module initialisation; each write site costs one load
   and one branch while the global [Lpp_obs] switch is off, and
   [session_estimate] branches once per estimate into the traced or the
   original loop, so disabled estimates run the exact pre-instrumentation
   float sequence. *)
let m_estimates = Lpp_obs.Metrics.counter "estimator.estimates"

let m_deg_hit = Lpp_obs.Metrics.counter "estimator.degcache.hit"

let m_deg_fill = Lpp_obs.Metrics.counter "estimator.degcache.fill"

let h_card_out = Lpp_obs.Metrics.histogram "estimator.card_out"

let h_live_vars = Lpp_obs.Metrics.histogram "estimator.label_map.live_vars"

let c_get_nodes = Lpp_obs.Metrics.counter "estimator.op.get_nodes"

let c_label_sel = Lpp_obs.Metrics.counter "estimator.op.label_selection"

let c_prop_sel = Lpp_obs.Metrics.counter "estimator.op.prop_selection"

let c_expand = Lpp_obs.Metrics.counter "estimator.op.expand"

let c_merge_on = Lpp_obs.Metrics.counter "estimator.op.merge_on"

(* Static names: span recording must not allocate per operator. *)
let op_name (op : Algebra.op) =
  match op with
  | Get_nodes _ -> "GetNodes"
  | Label_selection _ -> "LabelSelection"
  | Prop_selection _ -> "PropertySelection"
  | Expand _ -> "Expand"
  | Merge_on _ -> "MergeOn"

let op_counter (op : Algebra.op) =
  match op with
  | Get_nodes _ -> c_get_nodes
  | Label_selection _ -> c_label_sel
  | Prop_selection _ -> c_prop_sel
  | Expand _ -> c_expand
  | Merge_on _ -> c_merge_on

let safe_div num den = if den <= 0.0 then 0.0 else num /. den

let clamp01 p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

(* ------------------------------------------------------------------ *)
(* GetNodes (Section 5.1)                                              *)
(* ------------------------------------------------------------------ *)

let apply_get_nodes st ~var =
  let total = fi (Catalog.nc_star st.catalog) in
  st.card <- total;
  Label_probs.introduce st.probs ~var ~init:(fun l ->
      safe_div (fi (Catalog.nc st.catalog l)) total)

(* ------------------------------------------------------------------ *)
(* LabelSelection (Section 5.2)                                        *)
(* ------------------------------------------------------------------ *)

let apply_label_selection st ~var ~label =
  (* Labels interned after the catalog was built (e.g. a query naming a label
     the data never uses) have no statistics: the selection is empty. *)
  if label < 0 || label >= Label_probs.label_count st.probs then begin
    st.card <- 0.0;
    Label_probs.update_all st.probs ~var ~f:(fun _ _ -> 0.0)
  end
  else begin
  let p_sel = Label_probs.get st.probs ~var ~label in
  st.card <- st.card *. p_sel;
  if p_sel <= 0.0 then
    (* Contradictory selection: the variable now provably has [label] in an
       empty result; only implied superlabels keep probability 1. *)
    Label_probs.update_all st.probs ~var ~f:(fun l _ ->
        if l = label || Label_hierarchy.is_strict_sublabel st.hierarchy label l
        then 1.0
        else 0.0)
  else
    Label_probs.update_all st.probs ~var ~f:(fun l p ->
        if l = label then 1.0 (* case 1 *)
        else if Label_hierarchy.is_strict_sublabel st.hierarchy label l then
          1.0 (* case 2: selected label is a sublabel of l *)
        else if Label_hierarchy.is_strict_sublabel st.hierarchy l label then
          p /. p_sel (* case 3: l is a sublabel of the selected label *)
        else if Label_partition.disjoint st.partition label l then 0.0
          (* case 5 *)
        else p (* case 4: overlapping, independence keeps P(l) *))
  end

(* ------------------------------------------------------------------ *)
(* PropertySelection (Section 5.3)                                     *)
(* ------------------------------------------------------------------ *)

(* sel averaged over the owners of Section 5.3's set L': the positive-prob
   labels of a node variable (in st.pos_buf, [n] of them; none = Any_node)
   or the allowed types of a relationship variable (none = Any_rel). *)
let avg_node_selectivity st ~n (key, pred) =
  let stats = Catalog.props st.catalog in
  if n = 0 then Prop_stats.selectivity stats Prop_stats.Any_node ~key pred
  else begin
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum :=
        !sum
        +. Prop_stats.selectivity stats
             (Prop_stats.Node_label st.pos_buf.(i))
             ~key pred
    done;
    safe_div !sum (fi n)
  end

let avg_rel_selectivity st ~rvar (key, pred) =
  let stats = Catalog.props st.catalog in
  let types = st.rel_var_types.(rvar) in
  let n = Array.length types in
  if n = 0 then Prop_stats.selectivity stats Prop_stats.Any_rel ~key pred
  else begin
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum :=
        !sum
        +. Prop_stats.selectivity stats (Prop_stats.Rel_type types.(i)) ~key pred
    done;
    safe_div !sum (fi n)
  end

let apply_prop_selection st ~kind ~var ~props =
  match st.config.Config.property_mode with
  | Config.Fixed f ->
      (* Classical constant selectivity; predicates on the same entity are
         assumed fully correlated, so min over them is still [f]. *)
      st.card <- st.card *. f
  | Config.Use_stats -> begin
      let overall =
        match (kind : Algebra.var_kind) with
        | Node_var ->
            let n = Label_probs.positive_labels st.probs ~var ~buf:st.pos_buf in
            Array.fold_left
              (fun acc pred -> Float.min acc (avg_node_selectivity st ~n pred))
              1.0 props
        | Rel_var ->
            Array.fold_left
              (fun acc pred ->
                Float.min acc (avg_rel_selectivity st ~rvar:var pred))
              1.0 props
      in
      st.card <- st.card *. overall;
      match kind with
      | Rel_var -> ()
      | Node_var ->
          (* Bayes: P(ℓ | predicates) = P(ℓ) · sel(ℓ) / overall. Labels whose
             own selectivity is zero drop out; labels satisfying the
             predicates more often than average gain probability. *)
          let stats = Catalog.props st.catalog in
          Label_probs.update_all st.probs ~var ~f:(fun l p ->
              if p <= 0.0 then 0.0
              else begin
                let min_sel_for_label =
                  Array.fold_left
                    (fun acc (key, pred) ->
                      Float.min acc
                        (Prop_stats.selectivity stats (Node_label l) ~key pred))
                    1.0 props
                in
                if min_sel_for_label <= 0.0 then 0.0
                else safe_div (p *. min_sel_for_label) overall
              end)
    end

(* ------------------------------------------------------------------ *)
(* Representative labels (shared by Expand and MergeOn, Sections 5.4/5.5) *)
(* ------------------------------------------------------------------ *)

(* Order the labels of one partition cluster into st.ord_buf[0..n-1] and
   return n: representative labels are those that cover most of the nodes
   matched by v (probability descending) and whose extent size is closest to
   the current result cardinality |R| (Section 5.4's ordering criterion).
   After a LabelSelection this ranks the selected label first, so its degree
   statistics dominate the Expand. The insertion sort is stable, matching the
   List.sort-based ranking this replaced (clusters are ascending, so full
   ties stay in label order). *)
let order_cluster_into st ~prob cluster =
  let card = Float.max st.card 0.0 in
  let n = ref 0 in
  Array.iter
    (fun l ->
      let p = prob l in
      if p > 0.0 then begin
        let d = Float.abs (fi (Catalog.nc st.catalog l) -. card) in
        let i = ref !n in
        while
          !i > 0
          && (st.ord_p.(!i - 1) < p
             || (st.ord_p.(!i - 1) = p && st.ord_d.(!i - 1) > d))
        do
          st.ord_buf.(!i) <- st.ord_buf.(!i - 1);
          st.ord_p.(!i) <- st.ord_p.(!i - 1);
          st.ord_d.(!i) <- st.ord_d.(!i - 1);
          decr i
        done;
        st.ord_buf.(!i) <- l;
        st.ord_p.(!i) <- p;
        st.ord_d.(!i) <- d;
        incr n
      end)
    cluster;
  !n

(* Grow the ranked prefix to include st.ord_buf.(len): refresh its dominated
   flag against the earlier ranks and propagate its negation down to them.
   Callers invoke this after processing rank [len], keeping st.ord_dom exact
   for every subsequent [repr_prob ~len:(len+1)] — O(len) here instead of the
   O(len²) rescan per representative this replaced, which made deep ranked
   prefixes (hierarchy configs leave all labels in one cluster) cubic in the
   number of positive labels. *)
let note_ranked st ~len =
  let m = st.ord_buf.(len) in
  let dominated = ref false in
  for b = 0 to len - 1 do
    if
      (not !dominated)
      && Label_hierarchy.is_strict_sublabel st.hierarchy m st.ord_buf.(b)
    then dominated := true;
    if
      (not st.ord_dom.(b))
      && Label_hierarchy.is_strict_sublabel st.hierarchy st.ord_buf.(b) m
    then st.ord_dom.(b) <- true
  done;
  st.ord_dom.(len) <- !dominated

(* P(v has ℓⱼ and none of the previously ranked labels), Equations 5–6. The
   previously ranked labels are st.ord_buf[0..len-1]; negation factors are
   multiplied most-recently-ranked first over the hierarchy-maximal ones
   (st.ord_dom flags the dominated ranks), reproducing the exact
   float-product order of the list-based code. *)
let repr_prob st ~prob ~len lj =
  let p_lj = prob lj in
  if p_lj <= 0.0 then 0.0
  else begin
    let implies_negated = ref false in
    let a = ref 0 in
    while (not !implies_negated) && !a < len do
      if Label_hierarchy.is_strict_sublabel st.hierarchy lj st.ord_buf.(!a)
      then implies_negated := true;
      incr a
    done;
    if !implies_negated then 0.0 (* ℓⱼ implies a negated superlabel *)
    else begin
      let acc = ref p_lj in
      for a = len - 1 downto 0 do
        if not st.ord_dom.(a) then begin
          let l' = st.ord_buf.(a) in
          let factor =
            if Label_hierarchy.is_strict_sublabel st.hierarchy l' lj then
              (* exact under the hierarchy: P(ℓⱼ ∧ ¬ℓ') = P(ℓⱼ) − P(ℓ') *)
              clamp01 (1.0 -. safe_div (prob l') p_lj)
            else clamp01 (1.0 -. prob l')
          in
          acc := !acc *. factor
        end
      done;
      !acc
    end
  end

(* All (label, repr-probability) pairs across the partition — written into
   st.repr_labels/st.repr_probs, count returned — plus the label coverage
   (probability that the node carries at least one label). *)
let representatives_into st ~prob =
  let count = ref 0 in
  let coverage = ref 0.0 in
  Array.iter
    (fun cluster ->
      let n = order_cluster_into st ~prob cluster in
      for j = 0 to n - 1 do
        let lj = st.ord_buf.(j) in
        let p = repr_prob st ~prob ~len:j lj in
        if p > 0.0 then begin
          st.repr_labels.(!count) <- lj;
          st.repr_probs.(!count) <- p;
          incr count;
          coverage := !coverage +. p
        end;
        if j < n - 1 then note_ranked st ~len:j
      done)
    (Label_partition.clusters st.partition);
  (!count, clamp01 !coverage)

(* ------------------------------------------------------------------ *)
(* Expand (Section 5.4)                                                *)
(* ------------------------------------------------------------------ *)

let degree st ~dir ~types ~node ~other =
  let count = Catalog.rc st.catalog ~dir ~node ~types ~other in
  let base =
    match node with
    | Some l -> Catalog.nc st.catalog l
    | None -> Catalog.nc_star st.catalog
  in
  safe_div (fi count) (fi base)

let types_equal a b =
  a == b
  || (Array.length a = Array.length b
     && begin
          let i = ref 0 in
          while !i < Array.length a && a.(!i) = b.(!i) do
            incr i
          done;
          !i = Array.length a
        end)

(* The unrestricted degree vector of one (dir, types) pair, cached for the
   rest of the estimate: repeated Expands over the same type set (chains,
   stars, variable-length hops) reuse it instead of recomputing deg_of for
   every label. Restricted degrees (~other) are not cached — they are touched
   once per (repr, target) pair within a single Expand. *)
let deg_vector st ~dir ~types =
  match
    List.find_opt
      (fun e -> e.de_dir = dir && types_equal e.de_types types)
      st.deg_entries
  with
  | Some e -> e.de_degs
  | None ->
      let degs = Array.make (st.labels + 1) Float.nan in
      st.deg_entries <-
        { de_dir = dir; de_types = Array.copy types; de_degs = degs }
        :: st.deg_entries;
      degs

let cached_deg st degs ~dir ~types node =
  let idx = match node with None -> 0 | Some l -> l + 1 in
  let v = degs.(idx) in
  if v = v then begin
    (* filled: degrees are never NaN *)
    if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_deg_hit;
    v
  end
  else begin
    if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_deg_fill;
    let d = degree st ~dir ~types ~node ~other:None in
    degs.(idx) <- d;
    d
  end

(* One hop of expansion from a population described by [prob] (per-label
   probabilities). Returns the expansion factor, the per-label probabilities
   of the hop's endpoints, and the (cached) unrestricted degree function. *)
let expand_step st ~types ~dir ~prob =
  let repr_count, coverage = representatives_into st ~prob in
  let p_unlabeled = clamp01 (1.0 -. coverage) in
  let degs = deg_vector st ~dir ~types in
  let deg_of l = cached_deg st degs ~dir ~types (Some l) in
  let deg_star () = cached_deg st degs ~dir ~types None in
  let expansion =
    let acc = ref 0.0 in
    for i = 0 to repr_count - 1 do
      acc := !acc +. (st.repr_probs.(i) *. deg_of st.repr_labels.(i))
    done;
    !acc +. (p_unlabeled *. deg_star ())
  in
  let target_prob =
    if st.config.Config.advanced_rc then begin
      (* Whole-row formulation: fetch each representative's restricted
         relationship counts as one [Catalog.rc_row] sweep and accumulate the
         probability-weighted degrees into [tp_buf] slot by slot. Per target
         label the additions run in the same order as the former
         per-ℓ' fold over representatives (then the unlabeled term), so the
         floats are bit-identical — only the count lookups are batched. *)
      let row = st.rc_row_buf and tp = st.tp_buf in
      Array.fill tp 0 st.labels 0.0;
      for i = 0 to repr_count - 1 do
        let l = st.repr_labels.(i) and p = st.repr_probs.(i) in
        Catalog.rc_row st.catalog ~dir ~node:(Some l) ~types ~row;
        let base = fi (Catalog.nc st.catalog l) in
        for l' = 0 to st.labels - 1 do
          tp.(l') <- tp.(l') +. (p *. safe_div (fi row.(l')) base)
        done
      done;
      Catalog.rc_row st.catalog ~dir ~node:None ~types ~row;
      let base = fi (Catalog.nc_star st.catalog) in
      for l' = 0 to st.labels - 1 do
        tp.(l') <- tp.(l') +. (p_unlabeled *. safe_div (fi row.(l')) base)
      done;
      (* reads the tp scratch: consume before the next Expand *)
      fun l' -> safe_div tp.(l') expansion
    end
    else begin
      (* Simple statistics: the share of qualifying relationship endpoints
         carrying ℓ', from reversed pair counts. [simple_rc ~dir:rev
         ~node:(Some l')] equals [rc ~dir ~node:None ~other:(Some l')] —
         swapping which endpoint is "the node" mirrors the direction — so the
         whole numerator row is one [rc_row] sweep. *)
      let rev = Direction.reverse dir in
      let total = Catalog.simple_rc st.catalog ~dir:rev ~node:None ~types in
      let row = st.rc_row_buf in
      Catalog.rc_row st.catalog ~dir ~node:None ~types ~row;
      (* reads the row scratch: consume before the next Expand *)
      fun l' -> safe_div (fi row.(l')) (fi total)
    end
  in
  (expansion, target_prob, deg_of)

let apply_expand st ~src_var ~rel_var ~dst_var ~types ~dir ~hops =
  st.rel_var_types.(rel_var) <- types;
  st.last_expand_dir <- dir;
  let src_prob l = Label_probs.get st.probs ~var:src_var ~label:l in
  match hops with
  | None ->
      let expansion, target_prob, deg_of = expand_step st ~types ~dir ~prob:src_prob in
      st.card <- st.card *. expansion;
      st.last_expand_factor <- expansion;
      Label_probs.introduce st.probs ~var:dst_var ~init:target_prob;
      (* Updated probabilities for the source variable: high-degree nodes are
         over-represented after expansion (Section 5.4, final equation). *)
      Label_probs.update_all st.probs ~var:src_var ~f:(fun l p ->
          if p <= 0.0 then 0.0 else safe_div (p *. deg_of l) expansion)
  | Some (lo, hi) ->
      (* Variable-length path (the paper's future-work extension): iterate the
         one-hop step, summing the path-count factors of every admissible
         length and mixing the endpoint label distributions by their weight.
         Hop-level edge isomorphism is ignored by the estimate (repeated
         relationships are a vanishing fraction on realistic graphs). *)
      let labels = st.labels in
      let cur = st.varlen_cur and mix = st.varlen_mix in
      for l = 0 to labels - 1 do
        cur.(l) <- src_prob l;
        mix.(l) <- 0.0
      done;
      let factor = ref 1.0 in
      let total = ref 0.0 in
      let first_hop_deg = ref None in
      for k = 1 to hi do
        let expansion, target_prob, deg_of =
          expand_step st ~types ~dir ~prob:(fun l -> cur.(l))
        in
        if k = 1 then first_hop_deg := Some (deg_of, expansion);
        factor := !factor *. expansion;
        for l = 0 to labels - 1 do
          cur.(l) <- clamp01 (target_prob l)
        done;
        if k >= lo then begin
          total := !total +. !factor;
          for l = 0 to labels - 1 do
            mix.(l) <- mix.(l) +. (!factor *. cur.(l))
          done
        end
      done;
      let total_factor = !total in
      st.card <- st.card *. total_factor;
      st.last_expand_factor <- total_factor;
      Label_probs.introduce st.probs ~var:dst_var ~init:(fun l ->
          safe_div mix.(l) total_factor);
      (* Source-variable re-weighting uses the first hop's degrees, the
         dominant effect for short ranges. *)
      (match !first_hop_deg with
      | Some (deg_of, expansion) when expansion > 0.0 ->
          Label_probs.update_all st.probs ~var:src_var ~f:(fun l p ->
              if p <= 0.0 then 0.0 else safe_div (p *. deg_of l) expansion)
      | Some _ | None -> ())

(* ------------------------------------------------------------------ *)
(* MergeOn (Section 5.5)                                               *)
(* ------------------------------------------------------------------ *)

(* Triangle-aware closing (extension): a MergeOn that closes a 3-cycle
   immediately after its Expand can be estimated as
     |wedges| · closure-rate
   instead of |wedges| · deg · P(same node). We re-base on the pre-Expand
   cardinality (the wedge estimate) and multiply by the global wedge-closure
   rate. The closing relationship's type constraint is not conditioned on —
   a per-type census would refine this further. *)
let apply_triangle_merge st ~keep ~merge =
  let ts = Catalog.triangles st.catalog in
  let rate =
    match st.last_expand_dir with
    | Direction.Out | Direction.In -> ts.Triangle_stats.rate_directed
    | Direction.Both -> ts.Triangle_stats.rate_undirected
  in
  let wedges = safe_div st.card st.last_expand_factor in
  let merged = wedges *. rate in
  let reduction = safe_div merged (Float.max st.card 1e-300) in
  st.card <- merged;
  let prob_merge l = Label_probs.get st.probs ~var:merge ~label:l in
  Label_probs.update_all st.probs ~var:keep ~f:(fun l pk ->
      let combined = Float.min pk (prob_merge l) in
      if reduction <= 0.0 then 0.0 else clamp01 (combined /. reduction));
  Label_probs.drop st.probs ~var:merge

let apply_merge_on st ~keep ~merge =
  let prob_keep l = Label_probs.get st.probs ~var:keep ~label:l in
  let prob_merge l = Label_probs.get st.probs ~var:merge ~label:l in
  (* Rank clusters by the max of both variables' probabilities, then compute
     per-variable representative probabilities along the shared order. *)
  let prob_max l = Float.max (prob_keep l) (prob_merge l) in
  let labeled = ref 0.0 in
  let cov_keep = ref 0.0 and cov_merge = ref 0.0 in
  Array.iter
    (fun cluster ->
      let n = order_cluster_into st ~prob:prob_max cluster in
      for j = 0 to n - 1 do
        let lj = st.ord_buf.(j) in
        let pk = repr_prob st ~prob:prob_keep ~len:j lj in
        let pm = repr_prob st ~prob:prob_merge ~len:j lj in
        cov_keep := !cov_keep +. pk;
        cov_merge := !cov_merge +. pm;
        let c = Catalog.nc st.catalog lj in
        if c > 0 then labeled := !labeled +. (pk *. pm /. fi c);
        if j < n - 1 then note_ranked st ~len:j
      done)
    (Label_partition.clusters st.partition);
  let unl_keep = clamp01 (1.0 -. !cov_keep) in
  let unl_merge = clamp01 (1.0 -. !cov_merge) in
  let unlabeled =
    safe_div (unl_keep *. unl_merge) (fi (Catalog.nc_star st.catalog))
  in
  let reduction = !labeled +. unlabeled in
  st.card <- st.card *. reduction;
  Label_probs.update_all st.probs ~var:keep ~f:(fun l pk ->
      let combined = Float.min pk (prob_merge l) in
      if reduction <= 0.0 then 0.0 else clamp01 (combined /. reduction));
  Label_probs.drop st.probs ~var:merge

(* ------------------------------------------------------------------ *)
(* Algorithm 1                                                         *)
(* ------------------------------------------------------------------ *)

let apply_op st (op : Algebra.op) =
  (match op with
  | Get_nodes { var } -> apply_get_nodes st ~var
  | Label_selection { var; label } -> apply_label_selection st ~var ~label
  | Prop_selection { kind; var; props } ->
      apply_prop_selection st ~kind ~var ~props
  | Expand { src_var; rel_var; dst_var; types; dir; hops } ->
      apply_expand st ~src_var ~rel_var ~dst_var ~types ~dir ~hops
  | Merge_on { keep; merge; cycle_len } ->
      if st.config.Config.use_triangles && cycle_len = Some 3 then
        apply_triangle_merge st ~keep ~merge
      else apply_merge_on st ~keep ~merge);
  if st.card < 0.0 then st.card <- 0.0

(* Runtime assertion mode (opt-in, [make ~checks:true]): after every operator
   the invariants the soundness verifier proves statically — cardinality
   finite and ≥ 0, every live probability in [0, 1] — are re-checked against
   the actual state, failing loudly instead of propagating garbage. *)
let assert_sound st i op =
  let bad fmt = Format.kasprintf failwith fmt in
  if Float.is_nan st.card || st.card = Float.infinity || st.card < 0.0 then
    bad "estimator soundness violated after op %d (%a): cardinality %h" i
      Algebra.pp_op op st.card;
  List.iter
    (fun var ->
      for label = 0 to Label_probs.label_count st.probs - 1 do
        let p = Label_probs.get st.probs ~var ~label in
        if Float.is_nan p || p < 0.0 || p > 1.0 then
          bad "estimator soundness violated after op %d (%a): P(v%d:L%d) = %h"
            i Algebra.pp_op op var label p
      done)
    (Label_probs.live_vars st.probs)

(* Traced variant of the estimate loop: an enclosing "estimate" span with one
   nested span per operator, carrying input/output cardinality and the live
   variable count of the label probability matrix. Reached only when the
   global switch is on; the plain loops below are byte-for-byte the
   pre-instrumentation code, so disabled estimates are bit-identical. *)
let apply_ops_traced st (alg : Algebra.t) =
  Lpp_obs.Trace.begin_span ~cat:"estimator" "estimate";
  (try
     Array.iteri
       (fun i op ->
         let card_in = st.card in
         Lpp_obs.Metrics.incr (op_counter op);
         Lpp_obs.Trace.begin_span ~cat:"estimator" (op_name op);
         (try
            apply_op st op;
            if st.checks then assert_sound st i op
          with e ->
            Lpp_obs.Trace.end_span ();
            raise e);
         let live = fi (List.length (Label_probs.live_vars st.probs)) in
         Lpp_obs.Metrics.observe h_live_vars live;
         Lpp_obs.Trace.end_span
           ~args:
             [|
               ("card_in", card_in);
               ("card_out", st.card);
               ("live_vars", live);
             |]
           ())
       alg.ops;
     Lpp_obs.Metrics.incr m_estimates;
     Lpp_obs.Metrics.observe h_card_out st.card;
     Lpp_obs.Trace.end_span
       ~args:[| ("ops", fi (Array.length alg.ops)); ("card", st.card) |] ()
   with e ->
     Lpp_obs.Trace.end_span ();
     raise e)

let session_estimate st (alg : Algebra.t) =
  begin_estimate st alg;
  if Lpp_obs.Obs.enabled () then apply_ops_traced st alg
  else if st.checks then
    Array.iteri
      (fun i op ->
        apply_op st op;
        assert_sound st i op)
      alg.ops
  else Array.iter (apply_op st) alg.ops;
  st.card

let session_estimate_pattern st pattern =
  session_estimate st (Planner.plan pattern)

let estimate config catalog (alg : Algebra.t) =
  session_estimate (make config catalog) alg

let estimate_pattern config catalog pattern =
  estimate config catalog (Planner.plan pattern)

let trace config catalog (alg : Algebra.t) =
  let st = make config catalog in
  begin_estimate st alg;
  Array.fold_left
    (fun acc op ->
      apply_op st op;
      (op, st.card) :: acc)
    [] alg.ops
  |> List.rev

let memory_bytes (config : Config.t) catalog =
  let required =
    if config.advanced_rc then Catalog.memory_bytes_advanced catalog
    else Catalog.memory_bytes_simple catalog
  in
  let hierarchy =
    if config.use_hierarchy then
      Label_hierarchy.memory_bytes (Catalog.hierarchy catalog)
    else 0
  in
  let partition =
    if config.use_partition then
      Label_partition.memory_bytes (Catalog.partition catalog)
    else 0
  in
  let props =
    match config.property_mode with
    | Use_stats -> Catalog.memory_bytes_props catalog
    | Fixed _ -> 0
  in
  required + hierarchy + partition + props
