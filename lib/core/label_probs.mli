(** The mapping M of Algorithm 1: per node variable, the probability that a
    node bound to that variable carries each label.

    Backed by one flat var-major float matrix with liveness flags rather than
    a hashtable of rows: binding, reading and updating variables never
    allocates, and {!reset} lets an estimator session reuse the same matrix
    across estimates. *)

type t

val create : ?vars:int -> labels:int -> unit -> t
(** Empty mapping for a vocabulary of [labels] labels; [vars] (default 8)
    pre-sizes the variable dimension, which grows on demand. *)

val label_count : t -> int

val reset : t -> unit
(** Unbind every variable, keeping the allocated matrix. *)

val introduce : t -> var:int -> init:(int -> float) -> unit
(** Bind a fresh variable with [init label] as its per-label probabilities.
    @raise Invalid_argument if the variable is already live. *)

val drop : t -> var:int -> unit
(** Forget a variable (after [MergeOn] consumes it). *)

val is_live : t -> var:int -> bool

val get : t -> var:int -> label:int -> float

val set : t -> var:int -> label:int -> float -> unit
(** The value is clamped to [\[0, 1\]]. *)

val update_all : t -> var:int -> f:(int -> float -> float) -> unit
(** [update_all t ~var ~f] replaces every label probability [p] of [var] by
    [f label p], clamped to [\[0, 1\]]. *)

val positive_labels : t -> var:int -> buf:int array -> int
(** Fill [buf] with the labels of probability > 0, ascending — the set L' of
    Section 5.3 — and return how many were written. [buf] must hold at least
    {!label_count} entries.
    @raise Invalid_argument if [buf] is too short. *)

val live_vars : t -> int list
