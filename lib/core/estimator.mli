(** Label probability propagation — the paper's cardinality estimation
    technique (Algorithm 1, Sections 4–5).

    The estimator consumes an operator sequence front to back, maintaining an
    estimated cardinality and the per-variable label probabilities
    ({!Label_probs}). All statistical lookups go through a prebuilt
    {!Lpp_stats.Catalog}; the {!Config} decides which optional statistics are
    consulted.

    Where the published formulas leave micro-decisions open, this
    implementation chooses as follows (see also DESIGN.md §4):

    - Representative-label ordering inside a partition cluster (Section 5.4,
      "labels that cover most of the nodes matched by v … and whose number of
      nodes in the database is closest to |R|"): descending [P(v:ℓ)], ties
      broken by ascending [|NC(ℓ) − |R||].
    - The probability that a node's representative label is ℓⱼ is
      [P(ℓⱼ) · Πf(ℓ')] over the hierarchy-maximal previously-ranked labels ℓ',
      where [f] is [0] when ℓⱼ ⊑ ℓ' (the node would carry the negated
      superlabel), [1 − P(ℓ')/P(ℓⱼ)] when ℓ' ⊑ ℓⱼ (exact under the
      hierarchy), and [1 − P(ℓ')] otherwise (independence).
    - With simple (pair-count) statistics, the new label probabilities of the
      Expand target variable use reversed (label, type, direction) pair counts
      instead of triples. *)

(** {1 Sessions}

    A session owns every piece of mutable estimator state — the label
    probability matrix, the representative/ordering scratch arrays and the
    per-estimate degree-vector cache — so a workload of many estimates
    allocates (almost) nothing per query. Estimates through a session are
    bit-identical to the one-shot {!estimate}. Sessions are not thread-safe:
    use one per domain. *)

type session

val make : ?checks:bool -> Config.t -> Lpp_stats.Catalog.t -> session
(** Resolve the configuration against the catalog once and preallocate all
    scratch state. The session reads the catalog lazily at estimate time, so
    freezing ({!Lpp_stats.Catalog.freeze}) or incremental updates between
    estimates are picked up.

    [checks] (default [false]) enables the runtime assertion mode: after
    every operator the session verifies the invariants
    [Lpp_analysis.Soundness] proves statically — cardinality finite and
    ≥ 0, every live label probability in [0, 1] — and raises [Failure]
    naming the offending operator otherwise. Estimates are bit-identical
    with checks on or off. *)

val session_estimate : session -> Lpp_pattern.Algebra.t -> float
(** Like {!estimate}, reusing the session's state. *)

val session_estimate_pattern : session -> Lpp_pattern.Pattern.t -> float
(** [Lpp_pattern.Planner.plan] followed by {!session_estimate}. *)

(** {1 One-shot entry points} *)

val estimate :
  Config.t -> Lpp_stats.Catalog.t -> Lpp_pattern.Algebra.t -> float
(** Estimated result cardinality of the operator sequence. Never negative;
    may legitimately be < 1 for very selective patterns. Equivalent to
    [session_estimate (make config catalog) alg]. *)

val estimate_pattern :
  Config.t -> Lpp_stats.Catalog.t -> Lpp_pattern.Pattern.t -> float
(** [Lpp_pattern.Planner.plan] followed by {!estimate}. *)

val trace :
  Config.t ->
  Lpp_stats.Catalog.t ->
  Lpp_pattern.Algebra.t ->
  (Lpp_pattern.Algebra.op * float) list
(** Per-operator cardinalities, for tests and debugging: element [i] is the
    estimate after applying operator [i]. *)

val memory_bytes : Config.t -> Lpp_stats.Catalog.t -> int
(** Size of the statistics this configuration actually consults (Table 3). *)
