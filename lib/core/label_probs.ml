(* Var-major flat matrix: row [var] holds the per-label probabilities of that
   variable, [live] flags which rows are bound. No per-variable allocation on
   the estimator hot path — [reset] rebinds nothing and keeps the buffers, so
   a session reuses one matrix across estimates.

   The matrix is a float64 Bigarray rather than a [float array]: identical
   unboxed element reads/writes (a flat float array is already unboxed), but
   the buffer lives off the OCaml heap so big sessions over wide label
   vocabularies add nothing to GC scan work. *)

type matrix = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  labels : int;
  mutable data : matrix;  (* rows × labels, row-major *)
  mutable live : bool array;
}

let make_matrix n : matrix =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0.0;
  a

let create ?(vars = 8) ~labels () =
  let vars = max vars 1 in
  { labels; data = make_matrix (vars * labels); live = Array.make vars false }

let label_count t = t.labels

let rows t = Array.length t.live

let ensure_row t var =
  if var >= rows t then begin
    let fresh_rows = max (var + 1) (2 * rows t) in
    let data = make_matrix (fresh_rows * t.labels) in
    let n = Bigarray.Array1.dim t.data in
    Bigarray.Array1.blit t.data (Bigarray.Array1.sub data 0 n);
    let live = Array.make fresh_rows false in
    Array.blit t.live 0 live 0 (Array.length t.live);
    t.data <- data;
    t.live <- live
  end

let reset t = Array.fill t.live 0 (rows t) false

let clamp p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let introduce t ~var ~init =
  ensure_row t var;
  if t.live.(var) then invalid_arg "Label_probs.introduce: variable already live";
  t.live.(var) <- true;
  let base = var * t.labels in
  for l = 0 to t.labels - 1 do
    t.data.{base + l} <- clamp (init l)
  done

let drop t ~var = if var < rows t then t.live.(var) <- false

let is_live t ~var = var < rows t && t.live.(var)

let check_live t var =
  if not (is_live t ~var) then invalid_arg "Label_probs: variable not live"

let get t ~var ~label =
  check_live t var;
  t.data.{(var * t.labels) + label}

let set t ~var ~label p =
  check_live t var;
  t.data.{(var * t.labels) + label} <- clamp p

let update_all t ~var ~f =
  check_live t var;
  let base = var * t.labels in
  for l = 0 to t.labels - 1 do
    t.data.{base + l} <- clamp (f l t.data.{base + l})
  done

let positive_labels t ~var ~buf =
  check_live t var;
  if Array.length buf < t.labels then
    invalid_arg "Label_probs.positive_labels: buffer shorter than label count";
  let base = var * t.labels in
  let n = ref 0 in
  for l = 0 to t.labels - 1 do
    if t.data.{base + l} > 0.0 then begin
      buf.(!n) <- l;
      incr n
    end
  done;
  !n

let live_vars t =
  let acc = ref [] in
  for v = rows t - 1 downto 0 do
    if t.live.(v) then acc := v :: !acc
  done;
  !acc
