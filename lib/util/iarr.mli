(** Flat immutable-by-convention int arrays backed by [Bigarray.Array1].

    The memory-dominant graph and catalog structures (CSR offsets/targets,
    relationship endpoint/type columns, packed counter tables) store plain
    non-negative machine integers. Keeping them in a Bigarray instead of an
    [int array] takes them off the OCaml heap entirely: the GC neither scans
    nor moves them, and when every value fits in 31 bits the [Int32] kind
    halves the footprint. The variant is matched once per bulk operation
    ({!iter_range}), so hot loops do not re-dispatch per element.

    Values must be non-negative; {!create} picks the 32-bit representation
    exactly when [max_value] fits in an [int32]. *)

type t =
  | I32 of (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | I64 of (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : max_value:int -> int -> t
(** [create ~max_value len] is a zero-filled array of [len] slots able to
    hold values in [\[0, max_value\]]. *)

val length : t -> int

val bits : t -> int
(** Bits per element: 32 or 64. *)

val get : t -> int -> int

val set : t -> int -> int -> unit
(** The value must fit the representation chosen at creation; out-of-range
    values in an [I32] array are silently truncated (caller's invariant). *)

val of_array : ?max_value:int -> int array -> t
(** Pack a plain array; [max_value] defaults to the array's maximum element
    (one extra pass). *)

val to_array : t -> int array

val sub_to_array : t -> pos:int -> len:int -> int array
(** Fresh boxed copy of a slice. *)

val iter : t -> (int -> unit) -> unit

val iter_range : t -> pos:int -> len:int -> (int -> unit) -> unit
(** Apply [f] to each element of [\[pos, pos+len)] in order; the
    representation dispatch happens once per call, not per element. *)

val size_in_bytes : t -> int
(** Payload bytes ([Bigarray.Array1.size_in_bytes]): 4·length or 8·length. *)
