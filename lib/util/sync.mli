(** Exception-safe mutual exclusion.

    [with_lock] is the only sanctioned way to hold a [Mutex.t] in this code
    base: a bare [Mutex.lock … Mutex.unlock] pair leaks the lock — and
    deadlocks every future contender — the moment the critical section
    raises. The source linter ({!Lpp_srclint}, rule [LPP-D003]) rejects bare
    [Mutex.lock] outside this module's implementation.

    [Condition.wait] may be called inside the critical section (it releases
    and reacquires the mutex itself), so waiting loops convert directly:

    {[
      Sync.with_lock m (fun () ->
          while not (ready ()) do Condition.wait cv m done;
          take ())
    ]}

    The companion convention for the state a mutex protects: every
    top-level mutable binding in [lib/] carries
    [[@@lpp.domain_safe "reason"]], where the reason names the
    synchronisation discipline — "guarded by [mu]", "per-domain via DLS",
    "flipped only at quiescent points" — that makes the global safe under
    multiple domains. The linter (rule [LPP-D001]) rejects unannotated
    globals, exactly as {!Lpp_util.Clock}'s header bans wall-clock reads
    (rule [LPP-D004]). *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f ()] with [m] held and returns its result. The
    mutex is released on every exit path, normal or raising; an exception
    from [f] is re-raised with its original backtrace ([Fun.protect]).
    Not reentrant — OCaml mutexes are not recursive, so [f] must not call
    [with_lock m] on the same mutex. *)
