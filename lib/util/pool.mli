(** Multicore execution layer: a fixed-size domain pool with deterministic
    chunked fan-out.

    All entry points split an index range [\[0, n)] into at most [jobs]
    contiguous chunks, evaluate the chunks on a shared pool of worker domains
    (grown lazily, reused for the whole process) and return the chunk results
    {e in chunk order}. Chunk boundaries depend only on [(jobs, n)], never on
    scheduling, so order-sensitive reductions over the returned list are
    deterministic and [jobs = 1] is the sequential reference path (the chunk
    function runs inline on the caller's domain, no pool involved).

    Nested calls are safe: a caller waiting for its chunks helps execute
    queued tasks, so the pool cannot deadlock even when every worker issues
    further parallel calls.

    The chunk function must only share immutable (or externally synchronised)
    state with other chunks; each chunk should accumulate into its own local
    state and let the caller merge. *)

val default_jobs : unit -> int
(** The [LPP_JOBS] environment variable if set to a positive integer, else a
    value set via {!set_default_jobs}, else [Domain.recommended_domain_count]. *)

val set_default_jobs : int -> unit
(** Process-wide override (clamped to ≥ 1) taking precedence over [LPP_JOBS];
    used by command-line [--jobs] flags. *)

val resolve_jobs : int option -> int
(** [resolve_jobs (Some j)] is [max 1 j]; [resolve_jobs None] is
    {!default_jobs}[ ()]. The idiom for [?jobs] parameters. *)

val parallel_chunks :
  ?jobs:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [parallel_chunks ~jobs ~n f] evaluates [f ~lo ~hi] over a partition of
    [\[0, n)] into [min jobs n] contiguous chunks and returns the results in
    ascending chunk order. Returns [[]] for [n = 0]. If any chunk raises, the
    first exception observed is re-raised after all chunks finished. *)

val parallel_map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map: [parallel_map_array f a] equals
    [Array.map f a] whenever [f] is pure. *)

val parallel_reduce :
  ?jobs:int ->
  n:int ->
  chunk:(lo:int -> hi:int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** Deterministic ordered-merge reducer:
    [fold_left merge init] over the chunk results in ascending chunk order,
    i.e. identical to the sequential left fold for associative [merge]. *)

val set_monitor :
  (helped:bool -> queue_depth:int -> (unit -> unit) -> unit) option -> unit
(** Install (or remove, with [None]) a task monitor. The callback wraps
    every queue-drawn task and must run the thunk exactly once; [helped]
    marks tasks drained by a blocked caller rather than a worker domain (the
    pool's work stealing), [queue_depth] is the queue length right after the
    dequeue. Used by the observability layer ([Lpp_obs.Obs.enable]) for
    per-domain task spans and steal/queue-depth metrics; the [None] default
    costs one load and branch per task. *)

val shutdown : unit -> unit
(** Stop and join all worker domains (the pool restarts lazily on the next
    parallel call). Registered with [at_exit]; rarely needed directly. *)
