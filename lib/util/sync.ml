(* The one place in the tree allowed to call Mutex.lock directly: everything
   else goes through [with_lock] so a raising critical section can never
   leave its mutex held (srclint rule LPP-D003 enforces this). *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
