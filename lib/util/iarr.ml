type t =
  | I32 of (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | I64 of (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let fits_int32 v = v >= 0 && v <= Int32.to_int Int32.max_int

let create ~max_value len =
  if fits_int32 max_value then begin
    let a = Bigarray.Array1.create Bigarray.Int32 Bigarray.C_layout len in
    Bigarray.Array1.fill a 0l;
    I32 a
  end
  else begin
    let a = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout len in
    Bigarray.Array1.fill a 0;
    I64 a
  end

let length = function
  | I32 a -> Bigarray.Array1.dim a
  | I64 a -> Bigarray.Array1.dim a

let bits = function I32 _ -> 32 | I64 _ -> 64

let get t i =
  match t with
  | I32 a -> Int32.to_int (Bigarray.Array1.get a i)
  | I64 a -> Bigarray.Array1.get a i

let set t i v =
  match t with
  | I32 a -> Bigarray.Array1.set a i (Int32.of_int v)
  | I64 a -> Bigarray.Array1.set a i v

let max_element arr =
  Array.fold_left (fun acc v -> if v > acc then v else acc) 0 arr

let of_array ?max_value arr =
  let max_value =
    match max_value with Some m -> m | None -> max_element arr
  in
  let n = Array.length arr in
  match create ~max_value n with
  | I32 a ->
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set a i (Int32.of_int arr.(i))
      done;
      I32 a
  | I64 a ->
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set a i arr.(i)
      done;
      I64 a

let sub_to_array t ~pos ~len =
  match t with
  | I32 a ->
      Array.init len (fun i -> Int32.to_int (Bigarray.Array1.get a (pos + i)))
  | I64 a -> Array.init len (fun i -> Bigarray.Array1.get a (pos + i))

let to_array t = sub_to_array t ~pos:0 ~len:(length t)

let iter_range t ~pos ~len f =
  match t with
  | I32 a ->
      for i = pos to pos + len - 1 do
        f (Int32.to_int (Bigarray.Array1.get a i))
      done
  | I64 a ->
      for i = pos to pos + len - 1 do
        f (Bigarray.Array1.get a i)
      done

let iter t f = iter_range t ~pos:0 ~len:(length t) f

let size_in_bytes = function
  | I32 a -> Bigarray.Array1.size_in_bytes a
  | I64 a -> Bigarray.Array1.size_in_bytes a
