type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create headers = { headers; rows = [] }

let add_row t cells =
  let n_head = List.length t.headers in
  let n = List.length cells in
  if n > n_head then invalid_arg "Ascii_table.add_row: too many cells";
  let padded =
    if n = n_head then cells else cells @ List.init (n_head - n) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let base = List.map String.length t.headers in
  List.fold_left
    (fun acc row ->
      match row with
      | Separator -> acc
      | Cells cells -> List.map2 (fun w c -> max w (String.length c)) acc cells)
    base (List.rev t.rows)

let pad width s = s ^ String.make (width - String.length s) ' '

let render t =
  let ws = widths t in
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i (w, c) ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad w c))
      (List.combine ws cells);
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      ws;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers;
  rule ();
  List.iter
    (fun row -> match row with Separator -> rule () | Cells cells -> line cells)
    (List.rev t.rows);
  rule ();
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some title ->
      print_newline ();
      print_endline title;
      print_endline (String.make (String.length title) '=')
  | None -> ());
  print_string (render t)
[@@lpp.allow
  "D006 this module IS the CLI's table sink; every subcommand prints \
   through it"]
