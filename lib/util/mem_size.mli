(** Approximate in-memory footprint accounting for statistics summaries.

    The paper's Table 3 compares the sizes of the statistical summaries kept by
    each estimator. Rather than serialising, we account for the logical payload
    of each summary (counters, keys, hash-table entries) in bytes, mirroring how
    the paper reports "approximate" sizes. All helpers assume a 64-bit word. *)

val word : int
(** Bytes per machine word (8). *)

val int_entry : int
(** Size of one stored integer counter. *)

val float_entry : int
(** Size of one stored float. *)

val string_bytes : string -> int
(** Payload of an interned string (header + rounded-up characters). *)

val table_entry : key_bytes:int -> value_bytes:int -> int
(** One hash-table binding including bucket overhead. *)

val bigarray1 : ('a, 'b, 'c) Bigarray.Array1.t -> int
(** Payload of a Bigarray ([Array1.size_in_bytes] — element count × element
    width, not the 1-word custom block the GC sees) plus the proxy header. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable rendering ("1.4 MB", "3.1 kB", "812 B"). *)

val to_string : int -> string
