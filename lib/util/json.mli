(** Minimal JSON tree, emitter and parser (RFC 8259).

    The repo deliberately has no JSON dependency; the [lpp lint] output, the
    observability sinks (Chrome trace / metrics files) and the benches share
    this one implementation, so there is exactly one escaping routine.

    The emitter is compact (no insignificant whitespace). Non-finite floats
    have no JSON representation and are emitted as [null]. The parser accepts
    any RFC 8259 document, including [\uXXXX] escapes and surrogate pairs
    (decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** RFC 8259 string-content escaping, without the surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

val to_channel : out_channel -> t -> unit

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on any other constructor. *)

val number : t -> float option
(** [Int] or [Float] as a float; [None] otherwise. *)

val of_string : string -> (t, string) result
(** Parse one complete document; trailing non-whitespace is an error.
    Numbers with a fraction or exponent parse as [Float], the rest as [Int]
    (falling back to [Float] beyond the [int] range). *)
