(** Growable vector of non-negative ints backed by a [Bigarray].

    The streaming {!Graph_builder} path appends tens of millions of
    relationship endpoints before the final width is known; this vector keeps
    them off the OCaml heap while growing (amortised doubling), then packs
    into the narrowest {!Iarr} representation at freeze time. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val push : t -> int -> unit

val to_iarr : t -> Iarr.t
(** Pack the live prefix into an {!Iarr}, choosing 32-bit storage when the
    maximum element fits. *)

val to_array : t -> int array

val sub_to_array : t -> pos:int -> len:int -> int array
(** @raise Invalid_argument if the slice exceeds the live prefix. *)

val size_in_bytes : t -> int
(** Bytes of the backing store (capacity, not length). *)
