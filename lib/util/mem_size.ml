let word = 8

let int_entry = word

let float_entry = word

let string_bytes s = word + ((String.length s + word) / word * word)

let table_entry ~key_bytes ~value_bytes =
  (* key + value + bucket pointer + header overhead *)
  key_bytes + value_bytes + (2 * word)

let bigarray1 a = Bigarray.Array1.size_in_bytes a + (2 * word)

let to_string bytes =
  let b = float_of_int bytes in
  if b >= 1048576.0 then Printf.sprintf "%.1f MB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1f kB" (b /. 1024.0)
  else Printf.sprintf "%d B" bytes

let pp_bytes ppf bytes = Format.pp_print_string ppf (to_string bytes)
