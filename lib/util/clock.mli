(** Monotonic time for measurements.

    Backed by [CLOCK_MONOTONIC], so intervals are unaffected by NTP
    adjustments or manual wall-clock changes and can never be negative. Use
    this — never [Unix.gettimeofday] — for any measured runtime. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; only differences are
    meaningful. Monotonically non-decreasing. *)

val elapsed_ns : since:int64 -> float
(** Nanoseconds elapsed since a {!now_ns} reading; always ≥ 0. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since a {!now_ns} reading; always ≥ 0. *)
