(** Monotonic time for measurements.

    Backed by [CLOCK_MONOTONIC], so intervals are unaffected by NTP
    adjustments or manual wall-clock changes and can never be negative. Use
    this — never [Unix.gettimeofday] — for any measured runtime. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; only differences are
    meaningful. Monotonically non-decreasing. *)

val diff_ns : since:int64 -> int64 -> int64
(** [diff_ns ~since until] is the exact integer nanosecond interval between
    two {!now_ns} readings — the float-free API for code (span tracing,
    threshold checks) that only ever diffs timestamps and must not lose
    precision to rounding. *)

val elapsed_ns : since:int64 -> float
(** Nanoseconds elapsed since a {!now_ns} reading; always ≥ 0. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since a {!now_ns} reading; always ≥ 0. *)
