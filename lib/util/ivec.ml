type t = {
  mutable data : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable len : int;
}

let alloc n = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout n

let create ?(capacity = 16) () = { data = alloc (max capacity 1); len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get: index out of bounds";
  Bigarray.Array1.unsafe_get t.data i

let grow t =
  let cap = Bigarray.Array1.dim t.data in
  let fresh = alloc (2 * cap) in
  Bigarray.Array1.blit t.data (Bigarray.Array1.sub fresh 0 cap);
  t.data <- fresh

let push t v =
  if t.len = Bigarray.Array1.dim t.data then grow t;
  Bigarray.Array1.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let max_element t =
  let m = ref 0 in
  for i = 0 to t.len - 1 do
    let v = Bigarray.Array1.unsafe_get t.data i in
    if v > !m then m := v
  done;
  !m

let to_iarr t =
  let out = Iarr.create ~max_value:(max_element t) t.len in
  for i = 0 to t.len - 1 do
    Iarr.set out i (Bigarray.Array1.unsafe_get t.data i)
  done;
  out

let to_array t = Array.init t.len (fun i -> Bigarray.Array1.unsafe_get t.data i)

let sub_to_array t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Ivec.sub_to_array: slice out of bounds";
  Array.init len (fun i -> Bigarray.Array1.unsafe_get t.data (pos + i))

let size_in_bytes t = Bigarray.Array1.size_in_bytes t.data
