(* Minimal JSON tree, emitter and parser. The repo deliberately carries no
   JSON dependency: the lint subcommand, the observability sinks (Chrome
   trace / metrics files) and the benches all share this one implementation,
   so there is exactly one RFC 8259 escaping routine to get right. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emitting -------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every finite double; non-finite values have no JSON
   representation and degrade to null rather than emit an invalid token. *)
let float_token f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* keep the token recognisably a float: "1." is not a JSON number, and a
       bare "986" would reparse as an integer *)
    if String.ends_with ~suffix:"." s then s ^ "0"
    else if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_token f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v =
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.output_buffer oc buf

(* ---- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* ---- parsing --------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected %C, found %C" c d
    | None -> fail "expected %C, found end of input" c
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      value
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    match v with Some v -> v | None -> fail "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 (* surrogate pair: combine a high surrogate with a
                    following \uXXXX low surrogate *)
                 if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                    && s.[!pos] = '\\'
                    && !pos + 1 < n
                    && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   else fail "unpaired surrogate"
                 end
                 else cp
               in
               if cp >= 0xD800 && cp <= 0xDFFF then fail "unpaired surrogate"
               else Buffer.add_utf_8_uchar buf (Uchar.of_int cp)
           | c -> fail "invalid escape \\%C" c);
          go ()
        end
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "invalid number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> begin
          (* integer literal beyond int range: keep it as a float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "invalid number %S" tok
        end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
