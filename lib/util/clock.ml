(* Monotonic wall clock. [Monotonic_clock] (shipped with bechamel, zero
   dependencies) reads CLOCK_MONOTONIC, so measured durations are immune to
   NTP slews and wall-clock adjustments — unlike [Unix.gettimeofday], under
   which an interval can even come out negative. *)

let now_ns () = Monotonic_clock.now ()

let diff_ns ~since until = Int64.sub until since

let elapsed_ns ~since = Int64.to_float (diff_ns ~since (now_ns ()))

let elapsed_s ~since = elapsed_ns ~since /. 1e9
