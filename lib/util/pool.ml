(* Fixed-size domain pool over stdlib Domain/Mutex/Condition.

   One global pool of worker domains is grown lazily to the largest [jobs]
   ever requested; callers submit contiguous index chunks and block until
   their chunks complete. While blocked, a caller *helps*: it drains tasks
   from the shared queue (possibly tasks of other, nested calls), which makes
   nested [parallel_chunks] invocations deadlock-free — a waiting domain can
   never sit idle while runnable work exists.

   Determinism contract: chunk boundaries depend only on [(jobs, n)], results
   are stored by chunk index and returned in chunk order, so any
   order-sensitive reduction performed by the caller sees the exact sequence
   the sequential ([jobs = 1]) path produces. *)

let clamp_jobs j = if j < 1 then 1 else j

let override = Atomic.make None

let set_default_jobs j = Atomic.set override (Some (clamp_jobs j))

let env_jobs () =
  match Sys.getenv_opt "LPP_JOBS" with
  | None -> None
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None
    end

let default_jobs () =
  match Atomic.get override with
  | Some j -> j
  | None -> begin
      match env_jobs () with
      | Some j -> j
      | None -> Domain.recommended_domain_count ()
    end

let resolve_jobs = function
  | Some j -> clamp_jobs j
  | None -> default_jobs ()

(* ---- observability hook --------------------------------------------- *)

(* Optional task monitor, installed by the observability layer when tracing
   is on; the callback wraps every queue-drawn task and must run it exactly
   once. [helped] marks tasks a blocked caller drained while waiting for its
   own chunks (the pool's equivalent of work stealing); [queue_depth] is the
   queue length right after the dequeue. The [None] default costs one load
   and branch per task. *)
let monitor :
    (helped:bool -> queue_depth:int -> (unit -> unit) -> unit) option Atomic.t =
  Atomic.make None

let set_monitor m = Atomic.set monitor m

let run_task ~helped ~queue_depth t =
  match Atomic.get monitor with
  | None -> t ()
  | Some m -> m ~helped ~queue_depth t

(* ---- the shared scheduler ------------------------------------------- *)

let mutex = Mutex.create ()

(* Signalled on task arrival, task completion and shutdown; workers and
   waiting callers share it and re-check their own predicate on wakeup. *)
let cond = Condition.create ()

(* Queued tasks receive how they were drawn (helped / queue depth) so the
   monitor can be applied around the computation *inside* the task, before
   the task publishes its completion — a caller that has seen all its chunks
   complete must also see every monitor fully unwound (spans recorded). *)
let queue : (helped:bool -> queue_depth:int -> unit) Queue.t = Queue.create ()

let stopping = ref false

let workers : unit Domain.t list ref = ref []

let worker_count = ref 0

(* Tasks are pre-wrapped and never raise. *)
let rec worker_loop () =
  Mutex.lock mutex;
  let task = ref None in
  let depth = ref 0 in
  while !task = None && not !stopping do
    match Queue.take_opt queue with
    | Some t ->
        task := Some t;
        depth := Queue.length queue
    | None -> Condition.wait cond mutex
  done;
  Mutex.unlock mutex;
  match !task with
  | None -> ()
  | Some t ->
      t ~helped:false ~queue_depth:!depth;
      worker_loop ()

let ensure_workers n =
  Mutex.lock mutex;
  let missing = n - !worker_count in
  if missing > 0 then begin
    worker_count := n;
    for _ = 1 to missing do
      workers := Domain.spawn worker_loop :: !workers
    done
  end;
  Mutex.unlock mutex

(* Wake the workers and join them so process exit never races a domain that
   is still blocked on [cond]. *)
let shutdown () =
  Mutex.lock mutex;
  stopping := true;
  Condition.broadcast cond;
  Mutex.unlock mutex;
  List.iter Domain.join !workers;
  workers := [];
  worker_count := 0;
  Mutex.lock mutex;
  stopping := false;
  Mutex.unlock mutex

let () = at_exit shutdown

(* ---- parallel primitives -------------------------------------------- *)

let parallel_chunks ?jobs ~n f =
  if n < 0 then invalid_arg "Pool.parallel_chunks: negative n";
  let jobs = resolve_jobs jobs in
  let k = clamp_jobs (min jobs n) in
  if n = 0 then []
  else if k = 1 then [ f ~lo:0 ~hi:n ]
  else begin
    ensure_workers (k - 1);
    let bound i = i * n / k in
    let results = Array.make k None in
    let pending = ref k in
    let first_exn = ref None in
    let compute i () =
      match f ~lo:(bound i) ~hi:(bound (i + 1)) with
      | v -> Ok v
      | exception e -> Error e
    in
    let finish i outcome =
      Mutex.lock mutex;
      (match outcome with
      | Ok v -> results.(i) <- Some v
      | Error e -> if !first_exn = None then first_exn := Some e);
      decr pending;
      Condition.broadcast cond;
      Mutex.unlock mutex
    in
    (* Monitor around the computation only: completion must be published
       after the monitor has fully unwound, or a caller could merge spans
       while a worker is still recording its last one. *)
    let run_chunk i ~helped ~queue_depth =
      let outcome = ref None in
      run_task ~helped ~queue_depth (fun () -> outcome := Some (compute i ()));
      match !outcome with
      | Some o -> finish i o
      | None -> assert false (* the monitor runs its task exactly once *)
    in
    Mutex.lock mutex;
    for i = 1 to k - 1 do
      Queue.add (run_chunk i) queue
    done;
    Condition.broadcast cond;
    Mutex.unlock mutex;
    (* The caller computes chunk 0 itself (inline, unmonitored), then helps
       drain the queue until its own chunks are done. *)
    finish 0 (compute 0 ());
    Mutex.lock mutex;
    while !pending > 0 do
      match Queue.take_opt queue with
      | Some t ->
          let depth = Queue.length queue in
          Mutex.unlock mutex;
          t ~helped:true ~queue_depth:depth;
          Mutex.lock mutex
      | None -> Condition.wait cond mutex
    done;
    Mutex.unlock mutex;
    match !first_exn with
    | Some e -> raise e
    | None ->
        Array.to_list
          (Array.map
             (function
               | Some v -> v
               | None -> assert false (* pending = 0 and no exception *))
             results)
  end

let parallel_map_array ?jobs f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else
    parallel_chunks ?jobs ~n (fun ~lo ~hi ->
        Array.init (hi - lo) (fun k -> f arr.(lo + k)))
    |> Array.concat

let parallel_reduce ?jobs ~n ~chunk ~merge ~init =
  List.fold_left merge init (parallel_chunks ?jobs ~n chunk)
