(* Fixed-size domain pool over stdlib Domain/Mutex/Condition.

   One global pool of worker domains is grown lazily to the largest [jobs]
   ever requested; callers submit contiguous index chunks and block until
   their chunks complete. While blocked, a caller *helps*: it drains tasks
   from the shared queue (possibly tasks of other, nested calls), which makes
   nested [parallel_chunks] invocations deadlock-free — a waiting domain can
   never sit idle while runnable work exists.

   Determinism contract: chunk boundaries depend only on [(jobs, n)], results
   are stored by chunk index and returned in chunk order, so any
   order-sensitive reduction performed by the caller sees the exact sequence
   the sequential ([jobs = 1]) path produces.

   Locking: every critical section goes through [Sync.with_lock], so a
   raising body (a monitor callback, a chunk function) can never leave
   [mutex] held. [Condition.wait] is called inside the critical section —
   it releases and reacquires the mutex itself. *)

let clamp_jobs j = if j < 1 then 1 else j

let override = Atomic.make None
[@@lpp.domain_safe "one Atomic holding the --jobs override; no torn reads"]

let set_default_jobs j = Atomic.set override (Some (clamp_jobs j))

let env_jobs () =
  match Sys.getenv_opt "LPP_JOBS" with
  | None -> None
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None
    end

let default_jobs () =
  match Atomic.get override with
  | Some j -> j
  | None -> begin
      match env_jobs () with
      | Some j -> j
      | None -> Domain.recommended_domain_count ()
    end

let resolve_jobs = function
  | Some j -> clamp_jobs j
  | None -> default_jobs ()

(* ---- observability hook --------------------------------------------- *)

(* Optional task monitor, installed by the observability layer when tracing
   is on; the callback wraps every queue-drawn task and must run it exactly
   once. [helped] marks tasks a blocked caller drained while waiting for its
   own chunks (the pool's equivalent of work stealing); [queue_depth] is the
   queue length right after the dequeue. The [None] default costs one load
   and branch per task. *)
let monitor :
    (helped:bool -> queue_depth:int -> (unit -> unit) -> unit) option Atomic.t =
  Atomic.make None
[@@lpp.domain_safe "one Atomic holding the obs-layer task monitor"]

let set_monitor m = Atomic.set monitor m

let run_task ~helped ~queue_depth t =
  match Atomic.get monitor with
  | None -> t ()
  | Some m -> m ~helped ~queue_depth t

(* ---- the shared scheduler ------------------------------------------- *)

let mutex = Mutex.create ()

(* Signalled on task arrival, task completion and shutdown; workers and
   waiting callers share it and re-check their own predicate on wakeup. *)
let cond = Condition.create ()

(* Queued tasks receive how they were drawn (helped / queue depth) so the
   monitor can be applied around the computation *inside* the task, before
   the task publishes its completion — a caller that has seen all its chunks
   complete must also see every monitor fully unwound (spans recorded). *)
let queue : (helped:bool -> queue_depth:int -> unit) Queue.t = Queue.create ()
[@@lpp.domain_safe "shared task queue; every access holds [mutex]"]

let stopping = ref false
[@@lpp.domain_safe "guarded by [mutex]"]

let workers : unit Domain.t list ref = ref []
[@@lpp.domain_safe "worker registry; mutated under [mutex] or at-exit only"]

let worker_count = ref 0
[@@lpp.domain_safe "guarded by [mutex]"]

(* Tasks are pre-wrapped and never raise (run_chunk catches everything). *)
let rec worker_loop () =
  let task =
    Sync.with_lock mutex (fun () ->
        let rec next () =
          if !stopping then None
          else
            match Queue.take_opt queue with
            | Some t -> Some (t, Queue.length queue)
            | None ->
                Condition.wait cond mutex;
                next ()
        in
        next ())
  in
  match task with
  | None -> ()
  | Some (t, depth) ->
      t ~helped:false ~queue_depth:depth;
      worker_loop ()

let ensure_workers n =
  Sync.with_lock mutex (fun () ->
      let missing = n - !worker_count in
      if missing > 0 then begin
        worker_count := n;
        for _ = 1 to missing do
          workers := Domain.spawn worker_loop :: !workers
        done
      end)

(* Wake the workers and join them so process exit never races a domain that
   is still blocked on [cond]. *)
let shutdown () =
  Sync.with_lock mutex (fun () ->
      stopping := true;
      Condition.broadcast cond);
  List.iter Domain.join !workers;
  workers := [];
  worker_count := 0;
  Sync.with_lock mutex (fun () -> stopping := false)

let () = at_exit shutdown

(* ---- parallel primitives -------------------------------------------- *)

let parallel_chunks ?jobs ~n f =
  if n < 0 then invalid_arg "Pool.parallel_chunks: negative n";
  let jobs = resolve_jobs jobs in
  let k = clamp_jobs (min jobs n) in
  if n = 0 then []
  else if k = 1 then [ f ~lo:0 ~hi:n ]
  else begin
    ensure_workers (k - 1);
    let bound i = i * n / k in
    let results = Array.make k None in
    let pending = ref k in
    let first_exn = ref None in
    let compute i () =
      match f ~lo:(bound i) ~hi:(bound (i + 1)) with
      | v -> Ok v
      | exception e -> Error e
    in
    let finish i outcome =
      Sync.with_lock mutex (fun () ->
          (match outcome with
          | Ok v -> results.(i) <- Some v
          | Error e -> if !first_exn = None then first_exn := Some e);
          decr pending;
          Condition.broadcast cond)
    in
    (* Monitor around the computation only: completion must be published
       after the monitor has fully unwound, or a caller could merge spans
       while a worker is still recording its last one. A monitor that raises
       (or fails to run its task) is reported to the caller as the chunk's
       outcome instead of killing the worker domain that drew the task. *)
    let run_chunk i ~helped ~queue_depth =
      let outcome = ref None in
      let monitor_exn =
        match
          run_task ~helped ~queue_depth (fun () -> outcome := Some (compute i ()))
        with
        | () -> None
        | exception e -> Some e
      in
      finish i
        (match (!outcome, monitor_exn) with
        | Some o, None -> o
        | _, Some e -> Error e
        | None, None -> Error (Failure "Pool: monitor dropped its task"))
    in
    Sync.with_lock mutex (fun () ->
        for i = 1 to k - 1 do
          Queue.add (run_chunk i) queue
        done;
        Condition.broadcast cond);
    (* The caller computes chunk 0 itself (inline, unmonitored), then helps
       drain the queue until its own chunks are done. *)
    finish 0 (compute 0 ());
    let rec help () =
      let action =
        Sync.with_lock mutex (fun () ->
            if !pending = 0 then `Done
            else
              match Queue.take_opt queue with
              | Some t -> `Run (t, Queue.length queue)
              | None ->
                  Condition.wait cond mutex;
                  `Again)
      in
      match action with
      | `Done -> ()
      | `Again -> help ()
      | `Run (t, depth) ->
          t ~helped:true ~queue_depth:depth;
          help ()
    in
    help ();
    match !first_exn with
    | Some e -> raise e
    | None ->
        Array.to_list
          (Array.map
             (function
               | Some v -> v
               | None -> assert false (* pending = 0 and no exception *))
             results)
  end

let parallel_map_array ?jobs f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else
    parallel_chunks ?jobs ~n (fun ~lo ~hi ->
        Array.init (hi - lo) (fun k -> f arr.(lo + k)))
    |> Array.concat

let parallel_reduce ?jobs ~n ~chunk ~merge ~init =
  List.fold_left merge init (parallel_chunks ?jobs ~n chunk)
