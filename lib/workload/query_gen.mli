(** Query workload generation (Section 6, "Query Sets").

    Following the paper's methodology: undirected template subgraphs with 3–7
    nodes are matched against the data set anchored at randomly selected
    nodes; the resulting concrete subgraphs are turned into fully specified
    patterns and then generalised by randomly removing labels, properties and
    relationship direction. Anchoring guarantees every query has at least one
    match. Ground truth is computed with the exact {!Lpp_exec.Matcher} under
    Cypher semantics; queries whose ground truth exceeds the budget are
    discarded (the paper's timeout analogue).

    Two query-set flavours are generated per data set:
    - [`With_props] (the paper's "set 1"): up to three property predicates;
      relationships stay directed and single-typed so that every technique
      except Wander Join supports every query;
    - [`No_props] ("set 2"): no properties, but labels, types and direction
      are dropped liberally — CSets / WJ / SumRDF each support only a
      fraction, as in Section 6.2. *)

(** Ground truth of one query: exact under Cypher semantics, or an unbiased
    Wander-Join estimate with its 95% confidence interval (the large-tier
    protocol, where exhaustive matching is infeasible and q-errors must be
    read against the recorded sampling error). *)
type truth =
  | Exact of int
  | Sampled of { mean : float; ci_low : float; ci_high : float; walks : int }

type query = {
  id : int;
  pattern : Lpp_pattern.Pattern.t;
  shape : Lpp_pattern.Shape.t;
  size : int;  (** labels + relationships + property predicates *)
  true_card : int;
      (** [Exact] count, or the [Sampled] mean rounded (min 1) — kept so
          size-bucketed reporting works identically at every tier *)
  truth : truth;
}

val truth_value : query -> float
(** The number q-errors are computed against: the exact count, or the
    sampled mean. *)

val truth_ci_width : query -> float option
(** Width of the 95% CI for sampled ground truth; [None] when exact. *)

type flavour = With_props | No_props

type ground_truth = Exact_matching | Sampled_wj of { walks : int }

type spec = {
  flavour : flavour;
  target : int;  (** queries to keep after stratified sampling *)
  max_nodes : int;  (** template size upper bound, 7 in the paper *)
  truth_budget : int;  (** matcher step budget per candidate query *)
  attempts : int;  (** candidate queries to draw before stratifying *)
  ground_truth : ground_truth;
      (** [Sampled_wj] restricts generalisation to the Wander-Join-supported
          fragment (directed single-typed relationships, ≤ 1 label per node,
          no properties) so every candidate is estimable *)
}

val default_spec : flavour -> spec
(** target 120, max_nodes 7, truth_budget 30M, attempts = 4 × target,
    exact ground truth. *)

val generate :
  ?jobs:int -> Lpp_util.Rng.t -> Lpp_datasets.Dataset.t -> spec -> query list
(** Stratified by (coarse shape, size bucket); queries come out id-numbered in
    generation order.

    Sampling consumes [rng] sequentially; only the per-candidate ground-truth
    counts are spread across [jobs] domains (default
    {!Lpp_util.Pool.default_jobs}) in fixed-size batches, so the generated
    query set is the same for every [jobs] value. *)

val size_bucket : int -> string
(** Buckets used by Figure 7: "2-4", "5-6", "7-8", "9+". *)
