open Lpp_pgraph
open Lpp_pattern
open Lpp_util

type truth =
  | Exact of int
  | Sampled of { mean : float; ci_low : float; ci_high : float; walks : int }

type query = {
  id : int;
  pattern : Pattern.t;
  shape : Shape.t;
  size : int;
  true_card : int;
  truth : truth;
}

let truth_value q =
  match q.truth with
  | Exact c -> float_of_int c
  | Sampled { mean; _ } -> mean

let truth_ci_width q =
  match q.truth with
  | Exact _ -> None
  | Sampled { ci_low; ci_high; _ } -> Some (ci_high -. ci_low)

type flavour = With_props | No_props

type ground_truth = Exact_matching | Sampled_wj of { walks : int }

type spec = {
  flavour : flavour;
  target : int;
  max_nodes : int;
  truth_budget : int;
  attempts : int;
  ground_truth : ground_truth;
}

let default_spec flavour =
  {
    flavour;
    target = 120;
    max_nodes = 7;
    truth_budget = 30_000_000;
    attempts = 480;
    ground_truth = Exact_matching;
  }

let size_bucket size =
  if size <= 4 then "2-4"
  else if size <= 6 then "5-6"
  else if size <= 8 then "7-8"
  else "9+"

(* -------------------------------------------------------------------- *)
(* Step 1: sample a concrete connected subgraph anchored at a random node *)
(* -------------------------------------------------------------------- *)

type growth = Path | Star | Random_tree

type sampled = {
  s_nodes : int array;  (* graph node ids *)
  s_rels : (int * int * int) array;  (* graph rel id, src index, dst index *)
}

let incident g nd =
  Array.append (Graph.out_rels g nd) (Graph.in_rels g nd)

let sample_subgraph rng g ~max_nodes =
  let anchor =
    let rec pick tries =
      if tries > 100 then None
      else begin
        let nd = Rng.int rng (Graph.node_count g) in
        if Graph.degree g Both nd > 0 then Some nd else pick (tries + 1)
      end
    in
    pick 0
  in
  match anchor with
  | None -> None
  | Some anchor ->
      let growth =
        match Rng.int rng 3 with 0 -> Path | 1 -> Star | _ -> Random_tree
      in
      let target = Rng.int_in rng 3 max_nodes in
      let nodes = ref [ anchor ] in
      let index_of = Hashtbl.create 8 in
      Hashtbl.add index_of anchor 0;
      let rels = ref [] in
      let rel_set = Hashtbl.create 8 in
      let last = ref anchor in
      let stuck = ref false in
      while (not !stuck) && Hashtbl.length index_of < target do
        let source =
          match growth with
          | Path -> !last
          | Star -> anchor
          | Random_tree -> Rng.pick_list rng !nodes
        in
        let candidates =
          incident g source
          |> Array.to_list
          |> List.filter (fun r ->
                 (not (Hashtbl.mem rel_set r))
                 && not (Hashtbl.mem index_of (Graph.other_end g r source)))
        in
        match candidates with
        | [] ->
            (* path/star growth can wedge; fall back to any frontier node *)
            let frontier =
              List.concat_map
                (fun nd ->
                  incident g nd |> Array.to_list
                  |> List.filter_map (fun r ->
                         let other = Graph.other_end g r nd in
                         if
                           (not (Hashtbl.mem rel_set r))
                           && not (Hashtbl.mem index_of other)
                         then Some r
                         else None))
                !nodes
            in
            if frontier = [] then stuck := true
            else begin
              let r = Rng.pick_list rng frontier in
              let src = Graph.rel_src g r and dst = Graph.rel_dst g r in
              let fresh = if Hashtbl.mem index_of src then dst else src in
              Hashtbl.add index_of fresh (Hashtbl.length index_of);
              nodes := !nodes @ [ fresh ];
              Hashtbl.add rel_set r ();
              rels := r :: !rels;
              last := fresh
            end
        | _ ->
            let r = Rng.pick_list rng candidates in
            let fresh = Graph.other_end g r source in
            Hashtbl.add index_of fresh (Hashtbl.length index_of);
            nodes := !nodes @ [ fresh ];
            Hashtbl.add rel_set r ();
            rels := r :: !rels;
            last := fresh
      done;
      if Hashtbl.length index_of < 3 then None
      else begin
        (* optionally close cycles with relationships between chosen nodes *)
        if Rng.coin rng 0.4 then begin
          let extra =
            List.concat_map
              (fun nd ->
                Graph.out_rels g nd |> Array.to_list
                |> List.filter (fun r ->
                       (not (Hashtbl.mem rel_set r))
                       && Hashtbl.mem index_of (Graph.rel_dst g r)
                       && Graph.rel_src g r <> Graph.rel_dst g r))
              !nodes
          in
          let extra = Array.of_list extra in
          Rng.shuffle rng extra;
          let take = min (Array.length extra) (1 + Rng.int rng 2) in
          for i = 0 to take - 1 do
            Hashtbl.add rel_set extra.(i) ();
            rels := extra.(i) :: !rels
          done
        end;
        let s_nodes = Array.of_list !nodes in
        let s_rels =
          List.rev_map
            (fun r ->
              ( r,
                Hashtbl.find index_of (Graph.rel_src g r),
                Hashtbl.find index_of (Graph.rel_dst g r) ))
            !rels
          |> Array.of_list
        in
        Some { s_nodes; s_rels }
      end

(* -------------------------------------------------------------------- *)
(* Step 2 + 3: fully specify, then generalise                            *)
(* -------------------------------------------------------------------- *)

let generalize rng g flavour (s : sampled) =
  let label_keep = 0.15 +. Rng.float rng 0.85 in
  let nodes =
    Array.map
      (fun nd ->
        let labels =
          Graph.node_labels g nd |> Array.to_list
          |> List.filter (fun _ -> Rng.coin rng label_keep)
          |> Array.of_list
        in
        { Pattern.n_labels = labels; n_props = [||] })
      s.s_nodes
  in
  let rels =
    Array.map
      (fun (r, src, dst) ->
        let drop_type, drop_dir =
          match flavour with
          | With_props -> (false, false) (* "set 1": universally supported *)
          | No_props -> (Rng.coin rng 0.25, Rng.coin rng 0.3)
        in
        {
          Pattern.r_src = src;
          r_dst = dst;
          r_types = (if drop_type then [||] else [| Graph.rel_type g r |]);
          r_directed = not drop_dir;
          r_props = [||];
          r_hops = None;
        })
      s.s_rels
  in
  (* attach up to three property predicates taken from the concrete subgraph *)
  (match flavour with
  | No_props -> ()
  | With_props ->
      let n_props = Rng.int rng 4 in
      let attached = ref 0 and tries = ref 0 in
      while !attached < n_props && !tries < 20 do
        incr tries;
        let on_node = Rng.coin rng 0.8 in
        if on_node then begin
          let i = Rng.int rng (Array.length s.s_nodes) in
          let props = Graph.node_props g s.s_nodes.(i) in
          if Array.length props > 0 then begin
            let k, v = props.(Rng.int rng (Array.length props)) in
            let already =
              Array.exists (fun (k', _) -> k' = k) nodes.(i).Pattern.n_props
            in
            if not already then begin
              let pred =
                if Rng.coin rng 0.7 then Pattern.Eq v else Pattern.Exists
              in
              nodes.(i) <-
                {
                  (nodes.(i)) with
                  Pattern.n_props =
                    Array.append nodes.(i).Pattern.n_props [| (k, pred) |];
                };
              incr attached
            end
          end
        end
        else begin
          let j = Rng.int rng (Array.length s.s_rels) in
          let r, _, _ = s.s_rels.(j) in
          let props = Graph.rel_props g r in
          if Array.length props > 0 then begin
            let k, v = props.(Rng.int rng (Array.length props)) in
            let already =
              Array.exists (fun (k', _) -> k' = k) rels.(j).Pattern.r_props
            in
            if not already then begin
              let pred =
                if Rng.coin rng 0.7 then Pattern.Eq v else Pattern.Exists
              in
              rels.(j) <-
                {
                  (rels.(j)) with
                  Pattern.r_props =
                    Array.append rels.(j).Pattern.r_props [| (k, pred) |];
                };
              incr attached
            end
          end
        end
      done);
  (* sort the label/prop arrays the way Pattern expects *)
  let nodes =
    Array.map
      (fun (np : Pattern.node_pat) ->
        let labels = Array.copy np.n_labels in
        Array.sort Int.compare labels;
        let props = Array.copy np.n_props in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) props;
        { Pattern.n_labels = labels; n_props = props })
      nodes
  in
  Pattern.make ~nodes ~rels

(* Generalisation restricted to the Wander-Join-supported fragment (directed,
   single-typed relationships, at most one label per node, no properties):
   when ground truth comes from sampling instead of exact matching, every
   candidate must be estimable, so instead of dropping attributes freely we
   keep each relationship's type and orientation and keep at most one label
   per node (a random one, subject to the usual keep probability). *)
let generalize_wj rng g (s : sampled) =
  let label_keep = 0.15 +. Rng.float rng 0.85 in
  let nodes =
    Array.map
      (fun nd ->
        let ls = Graph.node_labels g nd in
        let labels =
          if Array.length ls = 0 then [||]
          else if Rng.coin rng label_keep then
            [| ls.(Rng.int rng (Array.length ls)) |]
          else [||]
        in
        { Pattern.n_labels = labels; n_props = [||] })
      s.s_nodes
  in
  let rels =
    Array.map
      (fun (r, src, dst) ->
        {
          Pattern.r_src = src;
          r_dst = dst;
          r_types = [| Graph.rel_type g r |];
          r_directed = true;
          r_props = [||];
          r_hops = None;
        })
      s.s_rels
  in
  Pattern.make ~nodes ~rels

(* -------------------------------------------------------------------- *)
(* Step 4: ground truth + stratified sampling                            *)
(* -------------------------------------------------------------------- *)

(* Candidates are drawn in batches: sampling and generalisation consume the
   caller's RNG sequentially (so the random stream is identical for every
   [jobs] value), then the expensive ground-truth counts of one batch run
   across domains. The batch size is a constant — independent of [jobs] — and
   the early-stop condition is checked between batches, so with the default
   spec ([attempts = 4 × target], where the old per-attempt check could never
   fire) the generated query set is identical to the sequential generator. *)
let truth_batch = 32

let generate ?jobs rng (ds : Lpp_datasets.Dataset.t) spec =
  let g = ds.graph in
  let candidates = ref [] in
  let n_candidates = ref 0 in
  let sample_attempt () =
    match sample_subgraph rng g ~max_nodes:spec.max_nodes with
    | None -> None
    | Some s -> begin
        let generalized =
          match spec.ground_truth with
          | Exact_matching -> generalize rng g spec.flavour s
          | Sampled_wj _ -> generalize_wj rng g s
        in
        match generalized with
        | exception Invalid_argument _ -> None
        | pattern -> Some pattern
      end
  in
  let truth_of = function
    | None -> None
    | Some pattern -> begin
        match
          Lpp_exec.Matcher.count ~jobs:1 ~budget:spec.truth_budget g pattern
        with
        | Lpp_exec.Matcher.Budget_exceeded -> None
        | Count c when c <= 0 ->
            (* cannot happen for anchored queries; skip defensively *)
            None
        | Count c -> Some (pattern, Exact c)
      end
  in
  let wj =
    match spec.ground_truth with
    | Exact_matching -> None
    | Sampled_wj _ -> Some (Lpp_baselines.Wander_join.build g)
  in
  let truth_of_sampled ~walks wj = function
    | None -> None
    | Some (pattern, walk_rng) -> begin
        match
          Lpp_baselines.Wander_join.estimate_interval ~rng:walk_rng wj ~walks
            pattern
        with
        | None -> None
        | Some (iv : Lpp_baselines.Wander_join.interval) ->
            if iv.mean <= 0.0 then
              (* every walk died: the sample carries no signal, and a zero
                 ground truth would make q-error meaningless *)
              None
            else
              Some
                ( pattern,
                  Sampled
                    {
                      mean = iv.mean;
                      ci_low = iv.ci_low;
                      ci_high = iv.ci_high;
                      walks = iv.n_walks;
                    } )
      end
  in
  let remaining = ref spec.attempts in
  while !remaining > 0 && !n_candidates < 4 * spec.target do
    let k = min truth_batch !remaining in
    remaining := !remaining - k;
    let patterns = Array.make k None in
    for i = 0 to k - 1 do
      patterns.(i) <- sample_attempt ()
    done;
    let results =
      match (spec.ground_truth, wj) with
      | Exact_matching, _ ->
          Lpp_util.Pool.parallel_map_array ?jobs truth_of patterns
      | Sampled_wj { walks }, Some wj ->
          (* per-candidate walk streams split off sequentially, so the
             parallel truth batch is deterministic for every [jobs] value *)
          let seeded = Array.make k None in
          for i = 0 to k - 1 do
            seeded.(i) <-
              Option.map (fun p -> (p, Rng.split rng)) patterns.(i)
          done;
          Lpp_util.Pool.parallel_map_array ?jobs (truth_of_sampled ~walks wj)
            seeded
      | Sampled_wj _, None -> assert false
    in
    Array.iter
      (function
        | None -> ()
        | Some (pattern, truth) ->
            incr n_candidates;
            candidates :=
              (Shape.classify pattern, Pattern.size pattern, pattern, truth)
              :: !candidates)
      results
  done;
  (* stratified sampling over (coarse shape, size bucket) *)
  let strata : (string, (Shape.t * int * Pattern.t * truth) Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let shuffled = Array.of_list !candidates in
  Rng.shuffle rng shuffled;
  Array.iter
    (fun ((shape, size, _, _) as cand) ->
      let key = Shape.coarse shape ^ "/" ^ size_bucket size in
      let q =
        match Hashtbl.find_opt strata key with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add strata key q;
            q
      in
      Queue.add cand q)
    shuffled;
  let queues = Hashtbl.fold (fun _ q acc -> q :: acc) strata [] in
  let taken = ref [] in
  let n_taken = ref 0 in
  let progress = ref true in
  while !n_taken < spec.target && !progress do
    progress := false;
    List.iter
      (fun q ->
        if !n_taken < spec.target && not (Queue.is_empty q) then begin
          taken := Queue.pop q :: !taken;
          incr n_taken;
          progress := true
        end)
      queues
  done;
  List.rev !taken
  |> List.mapi (fun id (shape, size, pattern, truth) ->
         let true_card =
           match truth with
           | Exact c -> c
           | Sampled { mean; _ } -> max 1 (int_of_float (Float.round mean))
         in
         { id; pattern; shape; size; true_card; truth })
