(** Graph patterns (Definition 3.3).

    A pattern is a small directed multigraph whose nodes carry required label
    sets and property predicates, and whose relationships carry allowed type
    sets, property predicates and a directedness flag. Labels, types and keys
    are interned ids resolved against the vocabulary of the data graph the
    pattern targets (see {!of_spec}). *)

type prop_pred =
  | Exists  (** the key must be present *)
  | Eq of Lpp_pgraph.Value.t  (** the key must be present with this value *)

type node_pat = {
  n_labels : int array;  (** required labels, sorted ascending *)
  n_props : (int * prop_pred) array;  (** required properties, sorted by key *)
}

type rel_pat = {
  r_src : int;  (** index into [nodes] *)
  r_dst : int;
  r_types : int array;  (** allowed types, sorted; empty means "any type" *)
  r_directed : bool;
      (** if [false] the relationship matches in either orientation *)
  r_props : (int * prop_pred) array;
  r_hops : (int * int) option;
      (** variable-length path [-\[:T*lo..hi\]->] (the paper's future-work
          extension): match any path of [lo] to [hi] relationships, every hop
          satisfying the type/direction/property constraints, all hops
          pairwise distinct under Cypher semantics. [None] = exactly one
          relationship. Intermediate path nodes are unconstrained. *)
}

type t = private { nodes : node_pat array; rels : rel_pat array }

val make : nodes:node_pat array -> rels:rel_pat array -> t
(** @raise Invalid_argument if a relationship references a missing node or the
    pattern is empty or not connected (treating relationships as undirected). *)

(** {1 Convenient construction from names} *)

type node_spec = {
  labels : string list;
  props : (string * prop_pred) list;
}

type rel_spec = {
  src : int;
  dst : int;
  types : string list;
  directed : bool;
  rprops : (string * prop_pred) list;
  hops : (int * int) option;
}

val node_spec : ?labels:string list -> ?props:(string * prop_pred) list -> unit -> node_spec

val rel_spec :
  ?types:string list ->
  ?directed:bool ->
  ?rprops:(string * prop_pred) list ->
  ?hops:int * int ->
  src:int ->
  dst:int ->
  unit ->
  rel_spec
(** @raise Invalid_argument later in {!make} if [hops = (lo, hi)] violates
    [1 <= lo <= hi]. *)

val of_spec : Lpp_pgraph.Graph.t -> node_spec list -> rel_spec list -> t
(** Resolve names against the graph's interners. Unknown labels / types / keys
    are interned (the pattern simply matches nothing for them).

    Resolution mutates the graph's interners, so statistics catalogs built
    before or after are unaffected (they index by id and treat absent ids as
    count zero). *)

(** {1 Accessors} *)

val node_count : t -> int

val rel_count : t -> int

val size : t -> int
(** Paper's pattern size: total labels + relationships + property predicates. *)

val label_total : t -> int

val prop_total : t -> int

val label_density : t -> float
(** labels / nodes, the x-axis of Figure 8b. *)

val degree : t -> int -> int
(** Number of incident pattern relationships (self-loops count twice). *)

val incident_rels : t -> int -> int list
(** Indices of relationships incident to the node. *)

val is_connected : t -> bool

val has_properties : t -> bool

val has_var_length : t -> bool
(** Does any relationship use a variable-length hop range? *)

val pp : ?names:(Lpp_pgraph.Graph.t option) -> Format.formatter -> t -> unit
(** Render as an openCypher-like string; with [names] the ids are resolved to
    strings. *)

val pp_parseable : ?names:(Lpp_pgraph.Graph.t option) -> Format.formatter -> t -> unit
(** Like {!pp}, but a shared variable's labels and properties are declared only
    at its first occurrence, so (with [names]) the output round-trips through
    {!Lpp_pattern.Parse.parse} — what the serve self-test and the workload
    export rely on. *)
