(** Operator sequences of the property-graph algebra (Section 3.2).

    A sequence linearises a {!Pattern.t} into the five operators whose
    cardinality behaviour the paper models: [GetNodes], [LabelSelection],
    [PropertySelection], [Expand] and [MergeOn]. Estimators process the
    sequence front to back (Algorithm 1); a reference evaluator in
    [Lpp_exec.Reference] executes the same sequence exactly. *)

type var_kind = Node_var | Rel_var

type op =
  | Get_nodes of { var : int }
      (** bind a fresh node variable to every node of the graph *)
  | Label_selection of { var : int; label : int }
      (** keep mappings where [var]'s node carries [label] *)
  | Prop_selection of {
      kind : var_kind;
      var : int;
      props : (int * Pattern.prop_pred) array;
    }
      (** keep mappings where the entity satisfies all property predicates *)
  | Expand of {
      src_var : int;
      rel_var : int;
      dst_var : int;
      types : int array;  (** allowed relationship types; empty = any *)
      dir : Lpp_pgraph.Direction.t;
      hops : (int * int) option;
          (** variable-length range; [None] = exactly one relationship *)
    }
      (** one output mapping per input mapping and qualifying relationship
          (or, with [hops], qualifying path) incident to [src_var]'s node;
          binds [rel_var] and [dst_var] *)
  | Merge_on of { keep : int; merge : int; cycle_len : int option }
      (** keep mappings where the two node variables are bound to the same
          node, dropping [merge]. [cycle_len] is planner-provided metadata:
          the length of the pattern cycle this merge closes (3 for a
          triangle), consumed by the triangle-aware estimator extension. *)

type t = {
  ops : op array;
  node_vars : int;  (** node variable ids are [0 .. node_vars-1] *)
  rel_vars : int;  (** relationship variable ids are [0 .. rel_vars-1] *)
}

(** Structural dataflow pass over an operator sequence.

    [scan] walks the sequence front to back tracking which node/relationship
    variables are bound and which labels each node variable has accumulated,
    and collects {e every} well-formedness violation rather than stopping at
    the first: after reporting, the pass recovers (an unbound use binds the
    variable, a rebinding keeps it bound) so later operators are still
    checked. {!Algebra.validate} and the semantic linter in [Lpp_analysis]
    are both built on this pass. *)
module Dataflow : sig
  type violation =
    | Node_var_out_of_range of int
    | Node_var_unbound of int  (** used before introduction *)
    | Node_var_rebound of int  (** introduced twice *)
    | Rel_var_out_of_range of int
    | Rel_var_unbound of int
    | Rel_var_rebound of int
    | Negative_label of int
    | Empty_prop_selection
    | Invalid_hop_range of int * int
    | Merge_self of int  (** [Merge_on] of a variable with itself *)

  val message : violation -> string
  (** Human-readable message, identical to the historical
      {!Algebra.validate} error strings. *)

  (** The per-prefix dataflow state, observable during a scan. Queries are
      total: out-of-range variables read as unbound with no labels. *)
  type state

  val node_bound : state -> int -> bool
  val rel_bound : state -> int -> bool

  val labels_of : state -> int -> int list
  (** Labels accumulated by [Label_selection] on a node variable so far, in
      selection order; a [Merge_on] folds the merged variable's labels into
      the kept one. *)

  val scan :
    ?observe:(index:int -> op -> state -> unit) -> t -> (int * violation) list
  (** All violations as [(op index, violation)] pairs, in sequence order
      (and, within one operator, in check order). [observe] is called for
      every operator {e before} its checks and state effects are applied,
      with the state of the prefix preceding it. *)
end

val validate : t -> (unit, string) result
(** Well-formedness: each variable is introduced exactly once before use, the
    first operator introducing a node variable is [Get_nodes] or [Expand],
    [Merge_on] drops a live variable, and variable ids stay within bounds.
    A thin wrapper over {!Dataflow.scan} reporting the first violation;
    use the scan directly to get all of them. *)

val op_count : t -> int

val pp_op : Format.formatter -> op -> unit

val pp : Format.formatter -> t -> unit
