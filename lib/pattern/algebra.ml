type var_kind = Node_var | Rel_var

type op =
  | Get_nodes of { var : int }
  | Label_selection of { var : int; label : int }
  | Prop_selection of {
      kind : var_kind;
      var : int;
      props : (int * Pattern.prop_pred) array;
    }
  | Expand of {
      src_var : int;
      rel_var : int;
      dst_var : int;
      types : int array;
      dir : Lpp_pgraph.Direction.t;
      hops : (int * int) option;
    }
  | Merge_on of { keep : int; merge : int; cycle_len : int option }

type t = { ops : op array; node_vars : int; rel_vars : int }

let op_count t = Array.length t.ops

module Dataflow = struct
  type violation =
    | Node_var_out_of_range of int
    | Node_var_unbound of int
    | Node_var_rebound of int
    | Rel_var_out_of_range of int
    | Rel_var_unbound of int
    | Rel_var_rebound of int
    | Negative_label of int
    | Empty_prop_selection
    | Invalid_hop_range of int * int
    | Merge_self of int

  let message = function
    | Node_var_out_of_range v -> Printf.sprintf "node var %d out of range" v
    | Node_var_unbound v ->
        Printf.sprintf "node var %d used before introduction" v
    | Node_var_rebound v -> Printf.sprintf "node var %d introduced twice" v
    | Rel_var_out_of_range v -> Printf.sprintf "rel var %d out of range" v
    | Rel_var_unbound v -> Printf.sprintf "rel var %d used before introduction" v
    | Rel_var_rebound v -> Printf.sprintf "rel var %d introduced twice" v
    | Negative_label _ -> "negative label id"
    | Empty_prop_selection -> "empty property selection"
    | Invalid_hop_range _ -> "invalid hop range"
    | Merge_self _ -> "Merge_on of a variable with itself"

  type state = {
    s_nodes : bool array;
    s_rels : bool array;
    s_labels : int list array;  (* most-recent selection first *)
  }

  let node_bound st v =
    v >= 0 && v < Array.length st.s_nodes && st.s_nodes.(v)

  let rel_bound st v = v >= 0 && v < Array.length st.s_rels && st.s_rels.(v)

  let labels_of st v =
    if v >= 0 && v < Array.length st.s_labels then List.rev st.s_labels.(v)
    else []

  let scan ?observe (alg : t) =
    let st =
      {
        s_nodes = Array.make (max alg.node_vars 1) false;
        s_rels = Array.make (max alg.rel_vars 1) false;
        s_labels = Array.make (max alg.node_vars 1) [];
      }
    in
    let out = ref [] in
    let report i v = out := (i, v) :: !out in
    let node_in_range v = v >= 0 && v < alg.node_vars in
    let rel_in_range v = v >= 0 && v < alg.rel_vars in
    (* On a violation we recover so the scan can keep reporting: an unbound
       use binds the variable, a rebinding keeps it bound. Every check keeps
       the order of the original single-error [validate], so the first
       violation of the scan is exactly the error it used to report. *)
    let use_node i v =
      if not (node_in_range v) then report i (Node_var_out_of_range v)
      else if not st.s_nodes.(v) then begin
        report i (Node_var_unbound v);
        st.s_nodes.(v) <- true
      end
    in
    let introduce_node i v =
      if not (node_in_range v) then report i (Node_var_out_of_range v)
      else if st.s_nodes.(v) then report i (Node_var_rebound v)
      else st.s_nodes.(v) <- true
    in
    let use_rel i v =
      if not (rel_in_range v) then report i (Rel_var_out_of_range v)
      else if not st.s_rels.(v) then begin
        report i (Rel_var_unbound v);
        st.s_rels.(v) <- true
      end
    in
    let introduce_rel i v =
      if not (rel_in_range v) then report i (Rel_var_out_of_range v)
      else if st.s_rels.(v) then report i (Rel_var_rebound v)
      else st.s_rels.(v) <- true
    in
    Array.iteri
      (fun i op ->
        (match observe with Some f -> f ~index:i op st | None -> ());
        match op with
        | Get_nodes { var } -> introduce_node i var
        | Label_selection { var; label } ->
            use_node i var;
            if label < 0 then report i (Negative_label label)
            else if node_in_range var then
              st.s_labels.(var) <- label :: st.s_labels.(var)
        | Prop_selection { kind; var; props } ->
            if Array.length props = 0 then report i Empty_prop_selection
            else begin
              match kind with
              | Node_var -> use_node i var
              | Rel_var -> use_rel i var
            end
        | Expand { src_var; rel_var; dst_var; types = _; dir = _; hops } ->
            (match hops with
            | Some (lo, hi) when lo < 1 || hi < lo ->
                report i (Invalid_hop_range (lo, hi))
            | Some _ | None -> ());
            use_node i src_var;
            introduce_node i dst_var;
            introduce_rel i rel_var
        | Merge_on { keep; merge; cycle_len = _ } ->
            use_node i keep;
            use_node i merge;
            if keep = merge then report i (Merge_self keep)
            else if node_in_range merge then begin
              st.s_nodes.(merge) <- false;
              if node_in_range keep then
                st.s_labels.(keep) <- st.s_labels.(merge) @ st.s_labels.(keep);
              st.s_labels.(merge) <- []
            end)
      alg.ops;
    List.rev !out
end

let validate t =
  match Dataflow.scan t with
  | [] -> Ok ()
  | (_, v) :: _ -> Error (Dataflow.message v)

let pp_props ppf props =
  Array.iteri
    (fun i (k, p) ->
      if i > 0 then Format.fprintf ppf ", ";
      match (p : Pattern.prop_pred) with
      | Exists -> Format.fprintf ppf "k%d" k
      | Eq v -> Format.fprintf ppf "k%d=%a" k Lpp_pgraph.Value.pp v)
    props

let pp_op ppf = function
  | Get_nodes { var } -> Format.fprintf ppf "GetNodes(v%d)" var
  | Label_selection { var; label } ->
      Format.fprintf ppf "LabelSel(v%d : L%d)" var label
  | Prop_selection { kind; var; props } ->
      let prefix = match kind with Node_var -> "v" | Rel_var -> "r" in
      Format.fprintf ppf "PropSel(%s%d {%a})" prefix var pp_props props
  | Expand { src_var; rel_var; dst_var; types; dir; hops } ->
      let hops_str =
        match hops with
        | None -> ""
        | Some (lo, hi) ->
            if lo = hi then Printf.sprintf "*%d" lo
            else Printf.sprintf "*%d..%d" lo hi
      in
      Format.fprintf ppf "Expand(v%d %a[r%d:%s%s] v%d)" src_var
        Lpp_pgraph.Direction.pp dir rel_var
        (String.concat "|"
           (Array.to_list (Array.map (fun t -> "T" ^ string_of_int t) types)))
        hops_str dst_var
  | Merge_on { keep; merge; cycle_len } ->
      Format.fprintf ppf "MergeOn(v%d = v%d%s)" keep merge
        (match cycle_len with
        | None -> ""
        | Some k -> Printf.sprintf ", %d-cycle" k)

let pp ppf t =
  Array.iteri
    (fun i op ->
      if i > 0 then Format.fprintf ppf " ; ";
      pp_op ppf op)
    t.ops
