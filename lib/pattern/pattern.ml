type prop_pred = Exists | Eq of Lpp_pgraph.Value.t

type node_pat = {
  n_labels : int array;
  n_props : (int * prop_pred) array;
}

type rel_pat = {
  r_src : int;
  r_dst : int;
  r_types : int array;
  r_directed : bool;
  r_props : (int * prop_pred) array;
  r_hops : (int * int) option;
}

type t = { nodes : node_pat array; rels : rel_pat array }

let node_count t = Array.length t.nodes

let rel_count t = Array.length t.rels

let incident_rels t v =
  let acc = ref [] in
  Array.iteri
    (fun i r -> if r.r_src = v || r.r_dst = v then acc := i :: !acc)
    t.rels;
  List.rev !acc

let degree t v =
  Array.fold_left
    (fun acc r ->
      acc + (if r.r_src = v then 1 else 0) + if r.r_dst = v then 1 else 0)
    0 t.rels

let is_connected t =
  let n = node_count t in
  if n = 0 then false
  else begin
    let seen = Array.make n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        Array.iter
          (fun r ->
            if r.r_src = v then visit r.r_dst;
            if r.r_dst = v then visit r.r_src)
          t.rels
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let make ~nodes ~rels =
  if Array.length nodes = 0 then invalid_arg "Pattern.make: empty pattern";
  Array.iter
    (fun r ->
      if
        r.r_src < 0
        || r.r_src >= Array.length nodes
        || r.r_dst < 0
        || r.r_dst >= Array.length nodes
      then invalid_arg "Pattern.make: relationship endpoint out of range";
      match r.r_hops with
      | Some (lo, hi) when lo < 1 || hi < lo ->
          invalid_arg "Pattern.make: invalid hop range"
      | Some _ | None -> ())
    rels;
  let t = { nodes; rels } in
  if not (is_connected t) then invalid_arg "Pattern.make: pattern not connected";
  t

type node_spec = { labels : string list; props : (string * prop_pred) list }

type rel_spec = {
  src : int;
  dst : int;
  types : string list;
  directed : bool;
  rprops : (string * prop_pred) list;
  hops : (int * int) option;
}

let node_spec ?(labels = []) ?(props = []) () = { labels; props }

let rel_spec ?(types = []) ?(directed = true) ?(rprops = []) ?hops ~src ~dst () =
  { src; dst; types; directed; rprops; hops }

let sorted_ids intern names =
  let arr = Array.of_list (List.map intern names) in
  Array.sort Int.compare arr;
  arr

let sorted_props intern props =
  let arr = Array.of_list (List.map (fun (k, p) -> (intern k, p)) props) in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
  arr

let of_spec graph node_specs rel_specs =
  let open Lpp_pgraph in
  let label_id = Interner.intern (Graph.labels graph) in
  let type_id = Interner.intern (Graph.rel_types graph) in
  let key_id = Interner.intern (Graph.prop_keys graph) in
  let nodes =
    node_specs
    |> List.map (fun (s : node_spec) ->
           { n_labels = sorted_ids label_id s.labels;
             n_props = sorted_props key_id s.props })
    |> Array.of_list
  in
  let rels =
    rel_specs
    |> List.map (fun (s : rel_spec) ->
           {
             r_src = s.src;
             r_dst = s.dst;
             r_types = sorted_ids type_id s.types;
             r_directed = s.directed;
             r_props = sorted_props key_id s.rprops;
             r_hops = s.hops;
           })
    |> Array.of_list
  in
  make ~nodes ~rels

let label_total t =
  Array.fold_left (fun acc n -> acc + Array.length n.n_labels) 0 t.nodes

let prop_total t =
  Array.fold_left (fun acc n -> acc + Array.length n.n_props) 0 t.nodes
  + Array.fold_left (fun acc r -> acc + Array.length r.r_props) 0 t.rels

let size t = label_total t + rel_count t + prop_total t

let label_density t = float_of_int (label_total t) /. float_of_int (node_count t)

let has_properties t = prop_total t > 0

let has_var_length t =
  Array.exists (fun r -> r.r_hops <> None) t.rels

let pp_with ~redeclare ?(names = None) ppf t =
  let open Lpp_pgraph in
  let label_name id =
    match names with Some g -> Interner.name (Graph.labels g) id | None -> "L" ^ string_of_int id
  in
  let type_name id =
    match names with Some g -> Interner.name (Graph.rel_types g) id | None -> "T" ^ string_of_int id
  in
  let key_name id =
    match names with Some g -> Interner.name (Graph.prop_keys g) id | None -> "k" ^ string_of_int id
  in
  let pp_props ppf props =
    if Array.length props > 0 then begin
      Format.fprintf ppf " {";
      Array.iteri
        (fun i (k, p) ->
          if i > 0 then Format.fprintf ppf ", ";
          match p with
          | Exists -> Format.fprintf ppf "%s" (key_name k)
          | Eq v -> Format.fprintf ppf "%s: %a" (key_name k) Value.pp v)
        props;
      Format.fprintf ppf "}"
    end
  in
  let seen = Array.make (Array.length t.nodes) false in
  let pp_node ppf i =
    let n = t.nodes.(i) in
    Format.fprintf ppf "(n%d" i;
    if redeclare || not seen.(i) then begin
      Array.iter (fun l -> Format.fprintf ppf ":%s" (label_name l)) n.n_labels;
      pp_props ppf n.n_props
    end;
    seen.(i) <- true;
    Format.fprintf ppf ")"
  in
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf ", ";
      pp_node ppf r.r_src;
      let types =
        match Array.to_list r.r_types with
        | [] -> ""
        | ts -> ":" ^ String.concat "|" (List.map type_name ts)
      in
      Format.fprintf ppf "-[%s" types;
      (match r.r_hops with
      | None -> ()
      | Some (lo, hi) ->
          if lo = hi then Format.fprintf ppf "*%d" lo
          else Format.fprintf ppf "*%d..%d" lo hi);
      pp_props ppf r.r_props;
      Format.fprintf ppf "]-";
      if r.r_directed then Format.fprintf ppf ">";
      pp_node ppf r.r_dst)
    t.rels;
  if Array.length t.rels = 0 then pp_node ppf 0

let pp ?names ppf t = pp_with ~redeclare:true ?names ppf t
let pp_parseable ?names ppf t = pp_with ~redeclare:false ?names ppf t
