open Lpp_pgraph

(* Triple keys are (src, typ, dst) with -1 encoding the wildcard [*]; all
   counts are stored from the relationship's natural orientation (src → dst).
   Queries in direction [In] swap the roles; [Both] sums both. *)
type t = {
  mutable total_nodes : int;
  mutable total_rels : int;
  mutable nc : int array;
  mutable rel_type_totals : int array;
  triples : (int * int * int, int) Hashtbl.t;
  any_type : (int * int, int) Hashtbl.t;
  hierarchy : Label_hierarchy.t;
  partition : Label_partition.t;
  props : Prop_stats.t;
  (* triangle census, computed on first use; guarded by a mutex because the
     catalog is shared across domains and concurrent [Lazy.force] from
     several domains is unsafe in OCaml 5 *)
  tri_graph : Graph.t;
  tri_mutex : Mutex.t;
  mutable tri : Triangle_stats.t option;
}

let star = -1

let wild = function None -> star | Some l -> l

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let add tbl key count =
  Hashtbl.replace tbl key (count + get tbl key)

(* Reusable scratch holding a label set with the wildcard prepended, so the
   per-relationship [Array.append [| star |] labels] allocation disappears
   from the build loop. [with_star] returns the live length of [s.buf]. *)
type scratch = { mutable buf : int array }

let with_star s labels =
  let n = Array.length labels + 1 in
  if Array.length s.buf < n then
    s.buf <- Array.make (max n (2 * Array.length s.buf)) star;
  s.buf.(0) <- star;
  Array.blit labels 0 s.buf 1 (Array.length labels);
  n

(* Count one shard [lo, hi) of the relationship id range into private tables.
   Chunk boundaries depend only on (jobs, rel_count), and the merge below
   walks shards in chunk order, so the final tables hold the same counts for
   every [jobs] value. *)
let count_rels g ~lo ~hi =
  let rel_type_totals = Array.make (Graph.rel_type_count g) 0 in
  let triples = Hashtbl.create 1024 in
  let any_type = Hashtbl.create 256 in
  let src_scratch = { buf = [| star |] } and dst_scratch = { buf = [| star |] } in
  for r = lo to hi - 1 do
    let typ = Graph.rel_type g r in
    rel_type_totals.(typ) <- rel_type_totals.(typ) + 1;
    let n_src = with_star src_scratch (Graph.node_labels g (Graph.rel_src g r)) in
    let n_dst = with_star dst_scratch (Graph.node_labels g (Graph.rel_dst g r)) in
    for i = 0 to n_src - 1 do
      let l1 = src_scratch.buf.(i) in
      for j = 0 to n_dst - 1 do
        let l2 = dst_scratch.buf.(j) in
        bump triples (l1, typ, l2);
        bump any_type (l1, l2)
      done
    done
  done;
  (rel_type_totals, triples, any_type)

let build_with ?hierarchy ?partition ?jobs g =
  let hierarchy =
    match hierarchy with Some h -> h | None -> Label_hierarchy.infer g
  in
  let partition =
    match partition with Some p -> p | None -> Label_partition.infer g
  in
  let nc =
    Array.init (Graph.label_count g) (fun l ->
        Array.length (Graph.nodes_with_label g l))
  in
  let jobs = Lpp_util.Pool.resolve_jobs jobs in
  let shards =
    Lpp_util.Pool.parallel_chunks ~jobs ~n:(Graph.rel_count g) (fun ~lo ~hi ->
        count_rels g ~lo ~hi)
  in
  let rel_type_totals, triples, any_type =
    match shards with
    | [ shard ] -> shard
    | shards ->
        let rel_type_totals = Array.make (Graph.rel_type_count g) 0 in
        let triples = Hashtbl.create 1024 in
        let any_type = Hashtbl.create 256 in
        List.iter
          (fun (rtt, tr, at) ->
            Array.iteri
              (fun typ c -> rel_type_totals.(typ) <- rel_type_totals.(typ) + c)
              rtt;
            Hashtbl.iter (fun key c -> add triples key c) tr;
            Hashtbl.iter (fun key c -> add any_type key c) at)
          shards;
        (rel_type_totals, triples, any_type)
  in
  {
    total_nodes = Graph.node_count g;
    total_rels = Graph.rel_count g;
    nc;
    rel_type_totals;
    triples;
    any_type;
    hierarchy;
    partition;
    props = Prop_stats.build g;
    tri_graph = g;
    tri_mutex = Mutex.create ();
    tri = None;
  }

let build ?jobs g = build_with ?jobs g

let nc_star t = t.total_nodes

let nc t l = if l >= 0 && l < Array.length t.nc then t.nc.(l) else 0

let label_count t = Array.length t.nc

let rel_total t = t.total_rels

let rel_type_total t typ =
  if typ >= 0 && typ < Array.length t.rel_type_totals then t.rel_type_totals.(typ)
  else 0

let rc_directed t ~src ~types ~dst =
  if Array.length types = 0 then get t.any_type (src, dst)
  else Array.fold_left (fun acc ty -> acc + get t.triples (src, ty, dst)) 0 types

let rc t ~dir ~node ~types ~other =
  let node = wild node and other = wild other in
  match (dir : Direction.t) with
  | Out -> rc_directed t ~src:node ~types ~dst:other
  | In -> rc_directed t ~src:other ~types ~dst:node
  | Both ->
      rc_directed t ~src:node ~types ~dst:other
      + rc_directed t ~src:other ~types ~dst:node

let simple_rc t ~dir ~node ~types = rc t ~dir ~node ~types ~other:None

let hierarchy t = t.hierarchy

let partition t = t.partition

let props t = t.props

let triangles t =
  Mutex.lock t.tri_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.tri_mutex)
    (fun () ->
      match t.tri with
      | Some stats -> stats
      | None ->
          let stats = Triangle_stats.build t.tri_graph in
          t.tri <- Some stats;
          stats)

let nc_bytes t = Array.length t.nc * Lpp_util.Mem_size.int_entry

let memory_bytes_simple t =
  (* Neo4j keeps NC(ℓ) plus (ℓ, t, direction) pair counts: our triple entries
     whose far side is the wildcard, once per direction. *)
  let pair_entries =
    Hashtbl.fold
      (fun (l1, _, l2) _ acc ->
        let out_pair = if l2 = star then 1 else 0 in
        let in_pair = if l1 = star then 1 else 0 in
        acc + out_pair + in_pair)
      t.triples 0
  in
  nc_bytes t
  + pair_entries
    * Lpp_util.Mem_size.table_entry
        ~key_bytes:(2 * Lpp_util.Mem_size.int_entry)
        ~value_bytes:Lpp_util.Mem_size.int_entry

let memory_bytes_advanced t =
  nc_bytes t
  + Hashtbl.length t.triples
    * Lpp_util.Mem_size.table_entry
        ~key_bytes:(3 * Lpp_util.Mem_size.int_entry)
        ~value_bytes:Lpp_util.Mem_size.int_entry

(* ---- incremental maintenance (Section 4.1's cheap-to-keep claim) ---- *)

let ensure_capacity arr size =
  if size <= Array.length arr then arr
  else begin
    let fresh = Array.make size 0 in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh
  end

let note_node_added t ~labels =
  t.total_nodes <- t.total_nodes + 1;
  Array.iter
    (fun l ->
      t.nc <- ensure_capacity t.nc (l + 1);
      t.nc.(l) <- t.nc.(l) + 1)
    labels

let note_rel_added t ~src_labels ~typ ~dst_labels =
  t.total_rels <- t.total_rels + 1;
  t.rel_type_totals <- ensure_capacity t.rel_type_totals (typ + 1);
  t.rel_type_totals.(typ) <- t.rel_type_totals.(typ) + 1;
  let bump_pair l1 l2 =
    bump t.triples (l1, typ, l2);
    bump t.any_type (l1, l2)
  in
  let bump_src l1 =
    bump_pair l1 star;
    Array.iter (fun l2 -> bump_pair l1 l2) dst_labels
  in
  bump_src star;
  Array.iter bump_src src_labels

let memory_bytes_optional t =
  Label_hierarchy.memory_bytes t.hierarchy
  + Label_partition.memory_bytes t.partition

let memory_bytes_props t = Prop_stats.memory_bytes t.props

let memory_bytes_alhd t =
  memory_bytes_advanced t + memory_bytes_optional t + memory_bytes_props t
