open Lpp_pgraph

(* Triple keys are (src, typ, dst) with -1 encoding the wildcard [*]; all
   counts are stored from the relationship's natural orientation (src → dst).
   Queries in direction [In] swap the roles; [Both] sums both. *)

(* Frozen read path: the triple and any-type hashtables compiled into flat
   arrays so [rc]/[simple_rc] become branch-light array reads. Both wildcard
   sides and the "any type" projection share one key space: label ids shift
   by one (star → 0) and type ids shift by one (any → 0), giving the packed
   key ((typ+1)·(L+1) + l1+1)·(L+1) + l2+1. The layout is chosen adaptively
   at freeze time:

   - [Dense]: small key spaces get the counter matrix directly — O(1) reads
     and contiguous [rc_row] sweeps.
   - [Rows]: large sparse key spaces (hundreds of labels × types, as in the
     DBpedia-like generator) get a CSR-style two-level layout: a dense row
     directory indexed by (type, near label) whose slots delimit the sorted
     far-label entries of that row. A lookup binary-searches only the
     handful of occupied far labels of its row instead of the whole table,
     and [rc_row] walks the row's entries directly. A transposed (dst-major)
     mirror serves the [In] direction sweeps. This replaced a single flat
     sorted-key array whose whole-table binary searches lost to the mutable
     hashtables on DBpedia-sized keyspaces.
   - [Packed]: if even the row directory would be outlandish (label ids so
     sparse that (T+1)·(L+1) exceeds the slot limit), fall back to the flat
     sorted key/count pair with whole-table binary search, which costs
     O(log entries) but only bytes per *occupied* key. *)
(* Frozen counter storage is a flat [(int, int_elt)] Bigarray: reads return
   unboxed immediates (no per-lookup allocation even without flambda), the GC
   never scans the tables, and counts keep the full native-int range — at
   10⁸ edges the wildcard projections overflow an int32. *)
type ia = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let ia_make n : ia =
  let a = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout n in
  Bigarray.Array1.fill a 0;
  a

let ia_of_array arr : ia =
  let a =
    Bigarray.Array1.create Bigarray.Int Bigarray.C_layout (Array.length arr)
  in
  Array.iteri (fun i v -> a.{i} <- v) arr;
  a

type layout =
  | Dense of ia  (* (T+1)·(L+1)² counters, index = packed key *)
  | Rows of {
      row_start : ia;  (* (T+1)·(L+1) + 1 slots; row = tyo·(L+1) + l1o *)
      cols : ia;  (* far label (+1), ascending within each row *)
      cnts : ia;
      tr_row_start : ia;  (* dst-major mirror for In-direction sweeps *)
      tr_cols : ia;  (* near label (+1) *)
      tr_cnts : ia;
    }
  | Packed of { keys : ia; counts : ia }  (* sorted by key *)

type frozen = {
  fz_labels : int;  (* label ids ≥ this (interned post-freeze) count 0 *)
  fz_types : int;
  fz_layout : layout;
  fz_nc : ia;  (* NC snapshot so frozen reads never touch the boxed array *)
  fz_bytes : int;  (* physical bytes of the frozen arrays *)
  fz_mem_simple : int;  (* memory accounting precomputed at freeze time *)
  fz_mem_advanced : int;
}

type t = {
  mutable total_nodes : int;
  mutable total_rels : int;
  mutable nc : int array;
  mutable rel_type_totals : int array;
  triples : (int * int * int, int) Hashtbl.t;
  any_type : (int * int, int) Hashtbl.t;
  mutable pair_entries : int;
      (* number of (ℓ, t, direction) pair entries — triples with a wildcard
         far side, counted once per direction; maintained incrementally so
         [memory_bytes_simple] never re-folds the whole table *)
  mutable frozen : frozen option;
  hierarchy : Label_hierarchy.t;
  partition : Label_partition.t;
  props : Prop_stats.t;
  (* triangle census, computed on first use; guarded by a mutex because the
     catalog is shared across domains and concurrent [Lazy.force] from
     several domains is unsafe in OCaml 5 *)
  tri_graph : Graph.t;
  tri_mutex : Mutex.t;
  mutable tri : Triangle_stats.t option;
}

let star = -1

let wild = function None -> star | Some l -> l

(* Observability: lookup-path counters and build-phase spans. Registered once
   at module initialisation; every write is gated on the global [Lpp_obs]
   switch, so the disabled read path costs one load and one branch. *)
let m_lookup_dense = Lpp_obs.Metrics.counter "catalog.lookup.dense"

let m_lookup_packed = Lpp_obs.Metrics.counter "catalog.lookup.packed"

let m_lookup_miss = Lpp_obs.Metrics.counter "catalog.lookup.miss"

let m_lookup_hashtable = Lpp_obs.Metrics.counter "catalog.lookup.hashtable"

let m_rc_row_dense = Lpp_obs.Metrics.counter "catalog.rc_row.dense"

let m_rc_row_rows = Lpp_obs.Metrics.counter "catalog.rc_row.rows"

let m_rc_row_generic = Lpp_obs.Metrics.counter "catalog.rc_row.generic"

let m_freeze_dense = Lpp_obs.Metrics.counter "catalog.freeze.dense"

let m_freeze_packed = Lpp_obs.Metrics.counter "catalog.freeze.packed"

let m_thaw = Lpp_obs.Metrics.counter "catalog.thaw"

let g_frozen_bytes = Lpp_obs.Metrics.gauge "catalog.frozen_bytes"

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let add tbl key count =
  Hashtbl.replace tbl key (count + get tbl key)

(* Reusable scratch holding a label set with the wildcard prepended, so the
   per-relationship [Array.append [| star |] labels] allocation disappears
   from the build loop. [with_star] returns the live length of [s.buf]. *)
type scratch = { mutable buf : int array }

let with_star s labels =
  let n = Array.length labels + 1 in
  if Array.length s.buf < n then
    s.buf <- Array.make (max n (2 * Array.length s.buf)) star;
  s.buf.(0) <- star;
  Array.blit labels 0 s.buf 1 (Array.length labels);
  n

(* Count one shard [lo, hi) of the relationship id range into private tables.
   Chunk boundaries depend only on (jobs, rel_count), and the merge below
   walks shards in chunk order, so the final tables hold the same counts for
   every [jobs] value. *)
let count_rels g ~lo ~hi =
  let rel_type_totals = Array.make (Graph.rel_type_count g) 0 in
  let triples = Hashtbl.create 1024 in
  let any_type = Hashtbl.create 256 in
  let src_scratch = { buf = [| star |] } and dst_scratch = { buf = [| star |] } in
  for r = lo to hi - 1 do
    let typ = Graph.rel_type g r in
    rel_type_totals.(typ) <- rel_type_totals.(typ) + 1;
    let n_src = with_star src_scratch (Graph.node_labels g (Graph.rel_src g r)) in
    let n_dst = with_star dst_scratch (Graph.node_labels g (Graph.rel_dst g r)) in
    for i = 0 to n_src - 1 do
      let l1 = src_scratch.buf.(i) in
      for j = 0 to n_dst - 1 do
        let l2 = dst_scratch.buf.(j) in
        bump triples (l1, typ, l2);
        bump any_type (l1, l2)
      done
    done
  done;
  (rel_type_totals, triples, any_type)

let build_with ?hierarchy ?partition ?jobs g =
  Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.build"
    ~args:(fun () ->
      [|
        ("nodes", float_of_int (Graph.node_count g));
        ("rels", float_of_int (Graph.rel_count g));
      |])
  @@ fun () ->
  let hierarchy =
    match hierarchy with
    | Some h -> h
    | None ->
        Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.infer_hierarchy"
          (fun () -> Label_hierarchy.infer g)
  in
  let partition =
    match partition with
    | Some p -> p
    | None ->
        Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.infer_partition"
          (fun () -> Label_partition.infer g)
  in
  let nc =
    Array.init (Graph.label_count g) (fun l ->
        Array.length (Graph.nodes_with_label g l))
  in
  let jobs = Lpp_util.Pool.resolve_jobs jobs in
  let shards =
    Lpp_util.Pool.parallel_chunks ~jobs ~n:(Graph.rel_count g) (fun ~lo ~hi ->
        Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.count_shard"
          ~args:(fun () ->
            [| ("lo", float_of_int lo); ("hi", float_of_int hi) |])
          (fun () -> count_rels g ~lo ~hi))
  in
  let rel_type_totals, triples, any_type =
    Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.merge" @@ fun () ->
    match shards with
    | [ shard ] -> shard
    | shards ->
        let rel_type_totals = Array.make (Graph.rel_type_count g) 0 in
        let triples = Hashtbl.create 1024 in
        let any_type = Hashtbl.create 256 in
        List.iter
          (fun (rtt, tr, at) ->
            Array.iteri
              (fun typ c -> rel_type_totals.(typ) <- rel_type_totals.(typ) + c)
              rtt;
            Hashtbl.iter (fun key c -> add triples key c) tr;
            Hashtbl.iter (fun key c -> add any_type key c) at)
          shards;
        (rel_type_totals, triples, any_type)
  in
  let pair_entries =
    Hashtbl.fold
      (fun (l1, _, l2) _ acc ->
        acc + (if l2 = star then 1 else 0) + if l1 = star then 1 else 0)
      triples 0
  in
  {
    total_nodes = Graph.node_count g;
    total_rels = Graph.rel_count g;
    nc;
    rel_type_totals;
    triples;
    any_type;
    pair_entries;
    frozen = None;
    hierarchy;
    partition;
    props =
      Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.prop_stats" (fun () ->
          Prop_stats.build g);
    tri_graph = g;
    tri_mutex = Mutex.create ();
    tri = None;
  }

let build ?jobs g = build_with ?jobs g

let nc_star t = t.total_nodes

let nc t l =
  match t.frozen with
  | Some f -> if l >= 0 && l < Bigarray.Array1.dim f.fz_nc then f.fz_nc.{l} else 0
  | None -> if l >= 0 && l < Array.length t.nc then t.nc.(l) else 0

let label_count t = Array.length t.nc

let rel_total t = t.total_rels

let rel_type_total t typ =
  if typ >= 0 && typ < Array.length t.rel_type_totals then t.rel_type_totals.(typ)
  else 0

(* ---- frozen read path ---- *)

let nc_bytes t = Array.length t.nc * Lpp_util.Mem_size.int_entry

let mem_simple_of t ~pair_entries =
  nc_bytes t
  + pair_entries
    * Lpp_util.Mem_size.table_entry
        ~key_bytes:(2 * Lpp_util.Mem_size.int_entry)
        ~value_bytes:Lpp_util.Mem_size.int_entry

let mem_advanced_of t ~triple_entries =
  nc_bytes t
  + triple_entries
    * Lpp_util.Mem_size.table_entry
        ~key_bytes:(3 * Lpp_util.Mem_size.int_entry)
        ~value_bytes:Lpp_util.Mem_size.int_entry

(* Above this many dense slots, switch to the CSR rows layout: 2M counters
   (16 MB) covers every generated dataset's (L+1)²·(T+1) comfortably while
   keeping adversarial label vocabularies from allocating gigabytes. The
   same limit bounds the rows layout's row directory ((T+1)·(L+1) slots);
   beyond it the flat sorted-key fallback kicks in. *)
let dense_slot_limit = 2_000_000

let pack ~l1 ~typ ~l2 ~labels1 = (((typ + 1) * labels1) + l1 + 1) * labels1 + (l2 + 1)

(* Compress sorted (key, count) entries into a CSR row directory. Keys are
   row·labels1 + col, so sorting by key sorts by (row, col) and the
   sequential fill below leaves each row's cols ascending. *)
let csr_of_entries entries ~nrows ~labels1 =
  Array.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2) entries;
  let row_start = Array.make (nrows + 1) 0 in
  Array.iter
    (fun (k, _) ->
      let r = k / labels1 in
      row_start.(r + 1) <- row_start.(r + 1) + 1)
    entries;
  for r = 1 to nrows do
    row_start.(r) <- row_start.(r) + row_start.(r - 1)
  done;
  let n = Array.length entries in
  let cols = ia_make n and cnts = ia_make n in
  Array.iteri
    (fun i (k, c) ->
      cols.{i} <- k mod labels1;
      cnts.{i} <- c)
    entries;
  (ia_of_array row_start, cols, cnts)

let freeze t =
  if t.frozen = None then begin
    Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.freeze" @@ fun () ->
    (* key space: every label/type the counters may be queried with, i.e.
       ids seen at build time plus any id the incremental path grew into *)
    let labels = ref (Array.length t.nc) in
    let types = ref (Array.length t.rel_type_totals) in
    Hashtbl.iter
      (fun (l1, ty, l2) _ ->
        labels := max !labels (max l1 l2 + 1);
        types := max !types (ty + 1))
      t.triples;
    Hashtbl.iter
      (fun (l1, l2) _ -> labels := max !labels (max l1 l2 + 1))
      t.any_type;
    let labels = !labels and types = !types in
    let labels1 = labels + 1 in
    let slots = (types + 1) * labels1 * labels1 in
    let layout =
      if slots <= dense_slot_limit then begin
        Lpp_obs.Metrics.incr m_freeze_dense;
        let dense = ia_make slots in
        Hashtbl.iter
          (fun (l1, l2) c -> dense.{pack ~l1 ~typ:star ~l2 ~labels1} <- c)
          t.any_type;
        Hashtbl.iter
          (fun (l1, typ, l2) c -> dense.{pack ~l1 ~typ ~l2 ~labels1} <- c)
          t.triples;
        Dense dense
      end
      else begin
        Lpp_obs.Metrics.incr m_freeze_packed;
        let n = Hashtbl.length t.any_type + Hashtbl.length t.triples in
        let gather key_of =
          let entries = Array.make n (0, 0) in
          let i = ref 0 in
          Hashtbl.iter
            (fun (l1, l2) c ->
              entries.(!i) <- (key_of ~l1 ~typ:star ~l2, c);
              incr i)
            t.any_type;
          Hashtbl.iter
            (fun (l1, typ, l2) c ->
              entries.(!i) <- (key_of ~l1 ~typ ~l2, c);
              incr i)
            t.triples;
          entries
        in
        let nrows = (types + 1) * labels1 in
        if nrows <= dense_slot_limit then begin
          let row_start, cols, cnts =
            csr_of_entries (gather (pack ~labels1)) ~nrows ~labels1
          in
          (* dst-major mirror: swap the label roles in the key *)
          let tr_row_start, tr_cols, tr_cnts =
            csr_of_entries
              (gather (fun ~l1 ~typ ~l2 -> pack ~l1:l2 ~typ ~l2:l1 ~labels1))
              ~nrows ~labels1
          in
          Rows { row_start; cols; cnts; tr_row_start; tr_cols; tr_cnts }
        end
        else begin
          let entries = gather (pack ~labels1) in
          Array.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2) entries;
          Packed
            {
              keys = ia_of_array (Array.map fst entries);
              counts = ia_of_array (Array.map snd entries);
            }
        end
      end
    in
    let fz_nc = ia_of_array t.nc in
    let layout_bytes =
      let ba = Lpp_util.Mem_size.bigarray1 in
      match layout with
      | Dense d -> ba d
      | Rows { row_start; cols; cnts; tr_row_start; tr_cols; tr_cnts } ->
          ba row_start + ba cols + ba cnts + ba tr_row_start + ba tr_cols
          + ba tr_cnts
      | Packed { keys; counts } -> ba keys + ba counts
    in
    let fz_bytes = layout_bytes + Lpp_util.Mem_size.bigarray1 fz_nc in
    if !Lpp_obs.Obs.live then Lpp_obs.Metrics.set g_frozen_bytes fz_bytes;
    t.frozen <-
      Some
        {
          fz_labels = labels;
          fz_types = types;
          fz_layout = layout;
          fz_nc;
          fz_bytes;
          fz_mem_simple = mem_simple_of t ~pair_entries:t.pair_entries;
          fz_mem_advanced =
            mem_advanced_of t ~triple_entries:(Hashtbl.length t.triples);
        }
  end

let thaw t =
  Lpp_obs.Metrics.incr m_thaw;
  t.frozen <- None

let is_frozen t = t.frozen <> None

let fz_get f ~l1 ~typ ~l2 =
  let l1o = l1 + 1 and l2o = l2 + 1 and tyo = typ + 1 in
  if
    l1o < 0 || l1o > f.fz_labels || l2o < 0 || l2o > f.fz_labels || tyo < 0
    || tyo > f.fz_types
  then begin
    if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_lookup_miss;
    0
  end
  else begin
    let labels1 = f.fz_labels + 1 in
    let key = (((tyo * labels1) + l1o) * labels1) + l2o in
    match f.fz_layout with
    | Dense dense ->
        if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_lookup_dense;
        dense.{key}
    | Rows { row_start; cols; cnts; _ } ->
        if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_lookup_packed;
        let row = (tyo * labels1) + l1o in
        let lo = ref row_start.{row} and hi = ref row_start.{row + 1} in
        while !hi - !lo > 0 do
          let mid = (!lo + !hi) / 2 in
          if cols.{mid} < l2o then lo := mid + 1 else hi := mid
        done;
        if !lo < row_start.{row + 1} && cols.{!lo} = l2o then cnts.{!lo} else 0
    | Packed { keys; counts } ->
        if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_lookup_packed;
        let lo = ref 0 and hi = ref (Bigarray.Array1.dim keys) in
        while !hi - !lo > 0 do
          let mid = (!lo + !hi) / 2 in
          if keys.{mid} < key then lo := mid + 1 else hi := mid
        done;
        if !lo < Bigarray.Array1.dim keys && keys.{!lo} = key then counts.{!lo}
        else 0
  end

let rc_directed_unfrozen t ~src ~types ~dst =
  if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_lookup_hashtable;
  if Array.length types = 0 then get t.any_type (src, dst)
  else
    Array.fold_left (fun acc ty -> acc + get t.triples (src, ty, dst)) 0 types

let rc_directed t ~src ~types ~dst =
  match t.frozen with
  | Some f ->
      if Array.length types = 0 then fz_get f ~l1:src ~typ:star ~l2:dst
      else
        Array.fold_left
          (fun acc ty ->
            (* ty < 0 would alias the any-type slot (keys shift by one);
               the hashtable path answers 0 for it, so must we *)
            if ty < 0 then acc else acc + fz_get f ~l1:src ~typ:ty ~l2:dst)
          0 types
  | None -> rc_directed_unfrozen t ~src ~types ~dst

let rc t ~dir ~node ~types ~other =
  let node = wild node and other = wild other in
  match (dir : Direction.t) with
  | Out -> rc_directed t ~src:node ~types ~dst:other
  | In -> rc_directed t ~src:other ~types ~dst:node
  | Both ->
      rc_directed t ~src:node ~types ~dst:other
      + rc_directed t ~src:other ~types ~dst:node

let simple_rc t ~dir ~node ~types = rc t ~dir ~node ~types ~other:None

let rc_unfrozen t ~dir ~node ~types ~other =
  let node = wild node and other = wild other in
  match (dir : Direction.t) with
  | Out -> rc_directed_unfrozen t ~src:node ~types ~dst:other
  | In -> rc_directed_unfrozen t ~src:other ~types ~dst:node
  | Both ->
      rc_directed_unfrozen t ~src:node ~types ~dst:other
      + rc_directed_unfrozen t ~src:other ~types ~dst:node

let type_count t = Array.length t.rel_type_totals

let unwild l = if l = star then None else Some l

let iter_triples t f =
  Hashtbl.iter
    (fun (l1, ty, l2) count ->
      f ~src:(unwild l1) ~typ:(Some ty) ~dst:(unwild l2) ~count)
    t.triples;
  Hashtbl.iter
    (fun (l1, l2) count -> f ~src:(unwild l1) ~typ:None ~dst:(unwild l2) ~count)
    t.any_type

let unsafe_set_rc t ~src ~typ ~dst count =
  let l1 = wild src and l2 = wild dst in
  match typ with
  | Some ty -> Hashtbl.replace t.triples (l1, ty, l2) count
  | None -> Hashtbl.replace t.any_type (l1, l2) count

let unsafe_set_nc t l count =
  if l >= 0 && l < Array.length t.nc then t.nc.(l) <- count;
  (* test-only corruption must stay observable through a frozen snapshot *)
  match t.frozen with
  | Some f when l >= 0 && l < Bigarray.Array1.dim f.fz_nc -> f.fz_nc.{l} <- count
  | _ -> ()

let rc_row t ~dir ~node ~types ~row =
  let len = Array.length row in
  let generic () =
    if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_rc_row_generic;
    for l' = 0 to len - 1 do
      row.(l') <- rc t ~dir ~node ~types ~other:(Some l')
    done
  in
  match t.frozen with
  | Some ({ fz_layout = Dense dense; _ } as f) ->
      if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_rc_row_dense;
      Array.fill row 0 len 0;
      let labels1 = f.fz_labels + 1 in
      let no = wild node + 1 in
      (* slots exist only for l' + 1 <= fz_labels; the rest keep the 0 that
         fz_get's bounds check would answer *)
      let last = min (len - 1) (f.fz_labels - 1) in
      if no >= 0 && no <= f.fz_labels then begin
        let add_ty tyo =
          if tyo >= 0 && tyo <= f.fz_types then begin
            (match (dir : Direction.t) with
            | Out | Both ->
                let base = ((tyo * labels1) + no) * labels1 in
                for l' = 0 to last do
                  row.(l') <- row.(l') + dense.{base + l' + 1}
                done
            | In -> ());
            match (dir : Direction.t) with
            | In | Both ->
                let base = (tyo * labels1 * labels1) + no in
                for l' = 0 to last do
                  row.(l') <- row.(l') + dense.{base + ((l' + 1) * labels1)}
                done
            | Out -> ()
          end
        in
        if Array.length types = 0 then add_ty (star + 1)
        else
          Array.iter
            (fun ty ->
              (* same negative-type guard as rc_directed *)
              if ty >= 0 then add_ty (ty + 1))
            types
      end
  | Some ({ fz_layout = Rows rows; _ } as f) ->
      if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_rc_row_rows;
      Array.fill row 0 len 0;
      let labels1 = f.fz_labels + 1 in
      let no = wild node + 1 in
      if no >= 0 && no <= f.fz_labels then begin
        (* walk the occupied entries of row (tyo, no): cols hold the far
           label (+1), so col 0 is the wildcard far side, which [generic]
           never asks for; entries beyond [len] keep the bounds-miss 0 *)
        let sweep (row_start : ia) (cols : ia) (cnts : ia) tyo =
          let r = (tyo * labels1) + no in
          for j = row_start.{r} to row_start.{r + 1} - 1 do
            let l' = cols.{j} - 1 in
            if l' >= 0 && l' < len then row.(l') <- row.(l') + cnts.{j}
          done
        in
        let add_ty tyo =
          if tyo >= 0 && tyo <= f.fz_types then begin
            (match (dir : Direction.t) with
            | Out | Both -> sweep rows.row_start rows.cols rows.cnts tyo
            | In -> ());
            match (dir : Direction.t) with
            | In | Both -> sweep rows.tr_row_start rows.tr_cols rows.tr_cnts tyo
            | Out -> ()
          end
        in
        if Array.length types = 0 then add_ty (star + 1)
        else Array.iter (fun ty -> if ty >= 0 then add_ty (ty + 1)) types
      end
  | Some _ | None -> generic ()

let hierarchy t = t.hierarchy

let partition t = t.partition

let props t = t.props

let triangles t =
  Lpp_util.Sync.with_lock t.tri_mutex (fun () ->
      match t.tri with
      | Some stats -> stats
      | None ->
          let stats =
            Lpp_obs.Trace.with_span ~cat:"catalog" "catalog.triangles"
              (fun () -> Triangle_stats.build t.tri_graph)
          in
          t.tri <- Some stats;
          stats)

(* Neo4j keeps NC(ℓ) plus (ℓ, t, direction) pair counts: our triple entries
   whose far side is the wildcard, once per direction. [pair_entries] is
   maintained at build / insert time, so both accessors are O(1); a frozen
   catalog serves the numbers precomputed at freeze time. *)
let memory_bytes_simple t =
  match t.frozen with
  | Some f -> f.fz_mem_simple
  | None -> mem_simple_of t ~pair_entries:t.pair_entries

let memory_bytes_advanced t =
  match t.frozen with
  | Some f -> f.fz_mem_advanced
  | None -> mem_advanced_of t ~triple_entries:(Hashtbl.length t.triples)

(* ---- incremental maintenance (Section 4.1's cheap-to-keep claim) ---- *)

let ensure_capacity arr size =
  if size <= Array.length arr then arr
  else begin
    let fresh = Array.make size 0 in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh
  end

(* The frozen snapshot is a compiled copy of the counters: mutating the
   hashtables underneath it would silently desynchronise the read path, so
   updates on a frozen catalog are refused instead of absorbed. *)
let refuse_if_frozen t fn =
  if t.frozen <> None then
    invalid_arg
      (Printf.sprintf
         "Catalog.%s: catalog is frozen; call Catalog.thaw before incremental \
          updates"
         fn)

let note_node_added t ~labels =
  refuse_if_frozen t "note_node_added";
  t.total_nodes <- t.total_nodes + 1;
  Array.iter
    (fun l ->
      t.nc <- ensure_capacity t.nc (l + 1);
      t.nc.(l) <- t.nc.(l) + 1)
    labels

let note_rel_added t ~src_labels ~typ ~dst_labels =
  refuse_if_frozen t "note_rel_added";
  t.total_rels <- t.total_rels + 1;
  t.rel_type_totals <- ensure_capacity t.rel_type_totals (typ + 1);
  t.rel_type_totals.(typ) <- t.rel_type_totals.(typ) + 1;
  let bump_pair l1 l2 =
    (match Hashtbl.find_opt t.triples (l1, typ, l2) with
    | Some c -> Hashtbl.replace t.triples (l1, typ, l2) (c + 1)
    | None ->
        Hashtbl.add t.triples (l1, typ, l2) 1;
        t.pair_entries <-
          t.pair_entries
          + (if l2 = star then 1 else 0)
          + if l1 = star then 1 else 0);
    bump t.any_type (l1, l2)
  in
  let bump_src l1 =
    bump_pair l1 star;
    Array.iter (fun l2 -> bump_pair l1 l2) dst_labels
  in
  bump_src star;
  Array.iter bump_src src_labels

let memory_bytes_optional t =
  Label_hierarchy.memory_bytes t.hierarchy
  + Label_partition.memory_bytes t.partition

let memory_bytes_props t = Prop_stats.memory_bytes t.props

let memory_bytes_alhd t =
  memory_bytes_advanced t + memory_bytes_optional t + memory_bytes_props t

(* Physical per-component bytes: frozen catalogs report the Bigarray payloads
   actually resident; unfrozen ones fall back to the logical hashtable
   accounting above. *)
let memory_breakdown t =
  let nc_rc =
    match t.frozen with
    | Some f ->
        [
          ("catalog.nc", Lpp_util.Mem_size.bigarray1 f.fz_nc);
          ("catalog.rc", f.fz_bytes - Lpp_util.Mem_size.bigarray1 f.fz_nc);
        ]
    | None ->
        [
          ("catalog.nc", nc_bytes t);
          ( "catalog.rc",
            mem_advanced_of t ~triple_entries:(Hashtbl.length t.triples)
            - nc_bytes t );
        ]
  in
  nc_rc
  @ [
      ("catalog.props", memory_bytes_props t);
      ("catalog.hierarchy", Label_hierarchy.memory_bytes t.hierarchy);
      ("catalog.partition", Label_partition.memory_bytes t.partition);
    ]

let frozen_bytes t = Option.map (fun f -> f.fz_bytes) t.frozen
