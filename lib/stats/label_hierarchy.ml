open Lpp_pgraph

(* supers.(l) = sorted array of strict transitive superlabels of l *)
type t = { supers : int array array }

let label_count t = Array.length t.supers

let trivial n = { supers = Array.make n [||] }

let mem arr x =
  let rec go lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if arr.(mid) = x then true
      else if arr.(mid) < x then go (mid + 1) hi
      else go lo mid
    end
  in
  go 0 (Array.length arr)

let is_strict_sublabel t a b = a <> b && mem t.supers.(a) b

let subeq t a b = a = b || is_strict_sublabel t a b

let superlabels t l = Array.to_list t.supers.(l)

let sublabels t l =
  let acc = ref [] in
  for x = Array.length t.supers - 1 downto 0 do
    if x <> l && mem t.supers.(x) l then acc := x :: !acc
  done;
  !acc

let related t a b = is_strict_sublabel t a b || is_strict_sublabel t b a

let drop_redundant t labels =
  List.filter
    (fun l -> not (List.exists (fun l' -> is_strict_sublabel t l' l) labels))
    labels

let maximal_among t labels =
  List.filter
    (fun l -> not (List.exists (fun l' -> is_strict_sublabel t l l') labels))
    labels

let of_direct ~labels direct_supers =
  (* transitive closure by repeated squaring over small label sets *)
  let closure = Array.init labels (fun l -> direct_supers l) in
  let module IS = Set.Make (Int) in
  let sets = Array.map IS.of_list closure in
  let changed = ref true in
  while !changed do
    changed := false;
    for l = 0 to labels - 1 do
      let next =
        IS.fold (fun s acc -> IS.union acc sets.(s)) sets.(l) sets.(l)
      in
      if IS.cardinal next > IS.cardinal sets.(l) then begin
        sets.(l) <- next;
        changed := true
      end
    done
  done;
  Array.iteri
    (fun l s ->
      if IS.mem l s then invalid_arg "Label_hierarchy: cyclic declaration")
    sets;
  { supers = Array.map (fun s -> Array.of_list (IS.elements s)) sets }

let unsafe_of_supers supers = { supers }

let of_pairs ~labels pairs =
  List.iter
    (fun (c, p) ->
      if c < 0 || c >= labels || p < 0 || p >= labels then
        invalid_arg "Label_hierarchy.of_pairs: label id out of range")
    pairs;
  of_direct ~labels (fun l ->
      List.filter_map (fun (c, p) -> if c = l then Some p else None) pairs)

let sorted_subset small big =
  (* both ascending; is [small] ⊆ [big]? *)
  let n_small = Array.length small and n_big = Array.length big in
  let rec go i j =
    if i >= n_small then true
    else if j >= n_big then false
    else if small.(i) = big.(j) then go (i + 1) (j + 1)
    else if small.(i) > big.(j) then go i (j + 1)
    else false
  in
  go 0 0

let infer g =
  let labels = Graph.label_count g in
  let extents = Array.init labels (Graph.nodes_with_label g) in
  let supers = Array.make labels [] in
  for a = 0 to labels - 1 do
    for b = 0 to labels - 1 do
      if a <> b && Array.length extents.(a) > 0 then begin
        let subset = sorted_subset extents.(a) extents.(b) in
        if subset then begin
          let equal_extents =
            Array.length extents.(a) = Array.length extents.(b)
          in
          (* alias extents: orient by id to keep the relation antisymmetric *)
          if (not equal_extents) || a < b then supers.(a) <- b :: supers.(a)
        end
      end
    done
  done;
  of_direct ~labels (fun l -> supers.(l))

let height t =
  let n = label_count t in
  if n = 0 then 0
  else begin
    let memo = Array.make n (-1) in
    let rec depth l =
      if memo.(l) >= 0 then memo.(l)
      else begin
        let d =
          List.fold_left (fun acc s -> max acc (1 + depth s)) 0 (superlabels t l)
        in
        memo.(l) <- d;
        d
      end
    in
    (* +1 for the virtual root [*] above every hierarchy root *)
    1 + Array.fold_left max 0 (Array.init n depth)
  end

let memory_bytes t =
  Array.fold_left
    (fun acc supers ->
      acc + Lpp_util.Mem_size.word
      + (Array.length supers * Lpp_util.Mem_size.int_entry))
    0 t.supers
