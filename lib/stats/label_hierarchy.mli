(** Label hierarchy H_L (Section 4.2.1): the sublabel relation ℓᵢ ⊑ ℓⱼ.

    ℓᵢ is a sublabel of ℓⱼ when every node carrying ℓᵢ also carries ℓⱼ. The
    structure stores the transitive closure over all labels plus a virtual root
    [*] that is a superlabel of everything. *)

type t

val trivial : int -> t
(** [trivial n] over [n] labels with no sublabel relationships — what the
    estimator substitutes when H_L is unavailable. *)

val of_pairs : labels:int -> (int * int) list -> t
(** [of_pairs ~labels pairs] where each pair [(child, parent)] declares
    child ⊑ parent; the transitive closure is computed.
    @raise Invalid_argument on a cyclic declaration or out-of-range ids. *)

val unsafe_of_supers : int array array -> t
(** Test-only: wrap a raw [supers] table (label → ascending strict
    superlabels) with no closure, acyclicity or range checking, so tests can
    manufacture broken hierarchies for [Lpp_analysis.Catalog_check]. *)

val infer : Lpp_pgraph.Graph.t -> t
(** Schema inference: ℓᵢ ⊑ ℓⱼ iff extent(ℓᵢ) ⊆ extent(ℓⱼ) in the data and
    extent(ℓᵢ) is non-empty. Labels with identical extents are ordered by id to
    keep the relation antisymmetric. *)

val label_count : t -> int

val is_strict_sublabel : t -> int -> int -> bool
(** [is_strict_sublabel t a b]: a ⊑ b and a ≠ b. *)

val subeq : t -> int -> int -> bool
(** Reflexive: [subeq t a a] is true. *)

val superlabels : t -> int -> int list
(** Strict superlabels of a label, ascending. *)

val sublabels : t -> int -> int list

val related : t -> int -> int -> bool
(** In a sublabel relation one way or the other (strictly). *)

val drop_redundant : t -> int list -> int list
(** Remove every label that has a strict sublabel in the list (Section 4.2.1:
    a superlabel's probability is implied by its sublabels). Order preserved. *)

val maximal_among : t -> int list -> int list
(** Remove every label that has a strict superlabel in the list — used to
    simplify negated-label products in Section 5.4. Order preserved. *)

val height : t -> int
(** Longest chain length (edges) from any label up to a hierarchy root,
    counting the virtual [*] root; [trivial] has height 1 when labels exist. *)

val memory_bytes : t -> int
