(** The statistics catalog: everything Section 4 requires or optionally uses.

    Built once per data graph; estimator configurations then decide which parts
    to consult. Label arguments use [None] for the wildcard [*] ("any node,
    labeled or not"); type lists use [[]] for "any type".

    Required statistics (Section 4.1):
    - [nc]: per-label node counts NC(ℓ) and the total NC(✱);
    - advanced relationship triples RC_α(ℓ₁, t, ℓ₂) including wildcard
      projections — the simple Neo4j-style (ℓ, t, α) pair counts used by the
      [S-*] configurations and the Neo4j baseline are the [other = None]
      projections of the same table.

    Optional statistics (Section 4.2): {!Label_hierarchy}, {!Label_partition},
    {!Prop_stats}. *)

type t

val build : ?jobs:int -> Lpp_pgraph.Graph.t -> t
(** Collect all statistics in a single pass over the graph; hierarchy and
    partition are inferred from the data (Section 4.2.1 notes schema inference
    as the standard way to obtain them).

    With [jobs > 1] (default {!Lpp_util.Pool.default_jobs}) the relationship
    scan is sharded across domains into private tables that are merged in
    shard order; the resulting catalog is identical to the [jobs:1] build for
    every [jobs] value. *)

val build_with :
  ?hierarchy:Label_hierarchy.t ->
  ?partition:Label_partition.t ->
  ?jobs:int ->
  Lpp_pgraph.Graph.t ->
  t
(** Like {!build} but with externally supplied schema information (e.g. the
    curated hierarchies the paper constructs manually for SNB and Cineasts). *)

(** {1 Node statistics} *)

val nc_star : t -> int
(** NC(✱): all nodes. *)

val nc : t -> int -> int
(** NC(ℓ); 0 for ids unseen at build time. *)

val label_count : t -> int

val rel_total : t -> int

val rel_type_total : t -> int -> int
(** Number of relationships of a given type. *)

(** {1 Relationship statistics} *)

val rc :
  t ->
  dir:Lpp_pgraph.Direction.t ->
  node:int option ->
  types:int array ->
  other:int option ->
  int
(** [rc t ~dir ~node ~types ~other] counts relationships incident to a node
    carrying [node] (or any node for [None]) in direction [dir], with type in
    [types] ([[||]] = any), whose far endpoint carries [other] (any for
    [None]). [dir = Both] counts each incident relationship once from the
    node's perspective (out + in). *)

val simple_rc :
  t -> dir:Lpp_pgraph.Direction.t -> node:int option -> types:int array -> int
(** Neo4j's pair counts: [rc] with [other = None]. *)

val type_count : t -> int
(** Number of relationship type ids the catalog has counters for. *)

val rc_unfrozen : t ->
  dir:Lpp_pgraph.Direction.t ->
  node:int option ->
  types:int array ->
  other:int option ->
  int
(** Like {!rc} but always answered from the mutable hashtables, bypassing a
    frozen snapshot — ground truth for the frozen≡mutable consistency check
    in [Lpp_analysis.Catalog_check]. Equal to {!rc} on an unfrozen catalog. *)

val iter_triples :
  t ->
  (src:int option ->
  typ:int option ->
  dst:int option ->
  count:int ->
  unit) ->
  unit
(** Iterate every occupied RC entry, wildcard projections included:
    [src]/[dst] are [None] for the [*] side, [typ = None] for the any-type
    projection. Order is unspecified. *)

(** {1 Test-only corruption hooks}

    Raw writes into the statistics tables that bypass both the frozen-catalog
    refusal and the incremental bookkeeping ([pair_entries], totals, frozen
    snapshots). They exist solely so tests can manufacture inconsistent
    catalogs for [Lpp_analysis.Catalog_check]; production code must use the
    [note_*] API. *)

val unsafe_set_rc :
  t -> src:int option -> typ:int option -> dst:int option -> int -> unit

val unsafe_set_nc : t -> int -> int -> unit
(** [unsafe_set_nc t l count] overwrites NC(ℓ); out-of-range ids ignored. *)

val rc_row :
  t ->
  dir:Lpp_pgraph.Direction.t ->
  node:int option ->
  types:int array ->
  row:int array ->
  unit
(** Fill [row.(l') <- rc t ~dir ~node ~types ~other:(Some l')] for every
    [l' < Array.length row]. On a frozen dense catalog this runs as a few
    contiguous sweeps over the counter matrix instead of per-[(node, l')]
    packed lookups — one call covers an Expand's whole target-probability
    row. Counts are identical to calling {!rc} per label. *)

(** {1 Frozen read path}

    [freeze] compiles the mutable triple/any-type hashtables into immutable
    flat arrays, choosing the layout adaptively: a dense [(T+1)·(L+1)²]
    counter matrix when the key space is small; a CSR-style row directory
    (per-(type, near-label) slices of sorted far-label entries, with a
    dst-major mirror for [In]-direction sweeps) when it is large but the
    directory fits; and flat sorted int-packed keys with whole-table binary
    search as the last resort — so {!rc} and {!simple_rc} on the estimator
    hot path become branch-light array reads instead of per-type hashtable
    probes. Freezing changes no observable
    count: every [nc]/[rc]/[simple_rc] result (including wildcard sides,
    out-of-range ids, and labels interned after the freeze) is identical to
    the unfrozen answer, and the [memory_bytes_*] accounting is precomputed at
    freeze time with unchanged values. Incremental updates ({!note_node_added},
    {!note_rel_added}) are refused while frozen; {!thaw} drops the snapshot
    and re-enables them. *)

val freeze : t -> unit
(** Idempotent; O(statistics size). *)

val thaw : t -> unit
(** Drop the frozen snapshot, restoring the mutable read path. *)

val is_frozen : t -> bool

(** {1 Optional statistics} *)

val hierarchy : t -> Label_hierarchy.t

val partition : t -> Label_partition.t

val props : t -> Prop_stats.t

val triangles : t -> Triangle_stats.t
(** Wedge-closure statistics for the triangle-aware extension; computed
    lazily on first use. *)

(** {1 Incremental maintenance}

    The required statistics (NC, RC, type totals) are cheap to keep current
    under data updates — Section 4.1's design goal. The optional schema-level
    statistics (H_L, D_L, property statistics, triangle census) are not
    maintained here: the paper argues schema evolution is far rarer than data
    churn, so they are refreshed by rebuilding the catalog. Deletions mirror
    additions and are left to the caller as negative workloads are not used
    in the evaluation. *)

val note_node_added : t -> labels:int array -> unit
(** O(|labels|); unseen label ids grow the counter table.
    @raise Invalid_argument if the catalog is frozen (see {!freeze}). *)

val note_rel_added :
  t -> src_labels:int array -> typ:int -> dst_labels:int array -> unit
(** O(|src_labels| · |dst_labels|).
    @raise Invalid_argument if the catalog is frozen (see {!freeze}). *)

(** {1 Memory accounting (Table 3)} *)

val memory_bytes_simple : t -> int
(** Neo4j's summary: NC(ℓ) counters + (ℓ, t, α) pair counts. *)

val memory_bytes_advanced : t -> int
(** Our required summary: NC(ℓ) + RC(ℓ₁, t, ℓ₂) triples (both wildcard
    projections included). *)

val memory_bytes_optional : t -> int
(** H_L + D_L. *)

val memory_bytes_props : t -> int

val memory_bytes_alhd : t -> int
(** Advanced + optional + properties: the A-LHD configuration's footprint. *)

val memory_breakdown : t -> (string * int) list
(** Per-component bytes, labelled ["catalog.nc"], ["catalog.rc"],
    ["catalog.props"], ["catalog.hierarchy"], ["catalog.partition"]. On a
    frozen catalog the NC/RC figures are the physical Bigarray payloads of
    the compiled tables; unfrozen they fall back to the logical
    [memory_bytes_*] accounting. *)

val frozen_bytes : t -> int option
(** Physical bytes of the frozen snapshot's flat arrays (NC + compiled RC
    layout); [None] while unfrozen. Also published as the
    [catalog.frozen_bytes] gauge at freeze time. *)
