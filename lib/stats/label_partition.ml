open Lpp_pgraph

type t = { cluster : int array; members : int array array }

let label_count t = Array.length t.cluster

let cluster_count t = Array.length t.members

let cluster_of t l = t.cluster.(l)

let clusters t = t.members

let disjoint t a b = a <> b && t.cluster.(a) <> t.cluster.(b)

let of_cluster_array cluster =
  let n = Array.length cluster in
  let n_clusters =
    Array.fold_left (fun acc c -> max acc (c + 1)) 0 cluster
  in
  let counts = Array.make (max n_clusters 1) 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) cluster;
  let members = Array.init n_clusters (fun c -> Array.make counts.(c) 0) in
  let fill = Array.make n_clusters 0 in
  for l = 0 to n - 1 do
    let c = cluster.(l) in
    members.(c).(fill.(c)) <- l;
    fill.(c) <- fill.(c) + 1
  done;
  { cluster; members }

let trivial n =
  if n = 0 then { cluster = [||]; members = [||] }
  else of_cluster_array (Array.make n 0)

let of_clusters ~labels groups =
  let cluster = Array.make labels (-1) in
  List.iteri
    (fun c group ->
      List.iter
        (fun l ->
          if l < 0 || l >= labels then
            invalid_arg "Label_partition.of_clusters: label out of range";
          if cluster.(l) >= 0 then
            invalid_arg "Label_partition.of_clusters: duplicate label";
          cluster.(l) <- c)
        group)
    groups;
  let next = ref (List.length groups) in
  Array.iteri
    (fun l c ->
      if c < 0 then begin
        cluster.(l) <- !next;
        incr next
      end)
    cluster;
  of_cluster_array cluster

let unsafe_make ~cluster ~members = { cluster; members }

(* Union-find over labels, merging labels that co-occur on a node. *)
let infer g =
  let n = Graph.label_count g in
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  Graph.iter_nodes g (fun nd ->
      let ls = Graph.node_labels g nd in
      for i = 1 to Array.length ls - 1 do
        union ls.(0) ls.(i)
      done);
  (* compress to dense cluster ids in order of first appearance *)
  let remap = Hashtbl.create 16 in
  let cluster =
    Array.init n (fun l ->
        let root = find l in
        match Hashtbl.find_opt remap root with
        | Some c -> c
        | None ->
            let c = Hashtbl.length remap in
            Hashtbl.add remap root c;
            c)
  in
  of_cluster_array cluster

let memory_bytes t =
  Array.length t.cluster * Lpp_util.Mem_size.int_entry
