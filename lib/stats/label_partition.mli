(** Label partition D_L (Section 4.2.1): clusters of labels such that labels
    in different clusters are disjoint (no node carries both).

    Inferred as the connected components of the label co-occurrence graph: two
    labels overlap when some node carries both, and overlapping labels must
    share a cluster; components then guarantee cross-cluster disjointness. *)

type t

val trivial : int -> t
(** All labels in one cluster — the substitute when D_L is unavailable. *)

val of_clusters : labels:int -> int list list -> t
(** Explicit clusters; unlisted labels each get a singleton cluster.
    @raise Invalid_argument if a label appears twice or is out of range. *)

val unsafe_make : cluster:int array -> members:int array array -> t
(** Test-only: wrap raw [cluster]/[members] tables with no well-formedness
    checking, so tests can manufacture broken partitions (overlaps, missing
    labels) for [Lpp_analysis.Catalog_check]. *)

val infer : Lpp_pgraph.Graph.t -> t

val label_count : t -> int

val cluster_count : t -> int
(** Table 1's "D_L components". *)

val cluster_of : t -> int -> int

val clusters : t -> int array array
(** Cluster id → member labels, ascending. Do not mutate. *)

val disjoint : t -> int -> int -> bool
(** Different clusters ⟹ provably disjoint. Same cluster ⟹ unknown (treated
    as overlapping). Labels are never disjoint from themselves. *)

val memory_bytes : t -> int
