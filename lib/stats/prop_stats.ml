open Lpp_pgraph

type owner = Node_label of int | Rel_type of int | Any_node | Any_rel

type entry = {
  owner_total : int;
  with_key : int;
  distinct : int;
  mcvs : (Value.t * int) array;
}

type t = { entries : (owner * int, entry) Hashtbl.t }

let mcv_limit = 10

let find t owner ~key = Hashtbl.find_opt t.entries (owner, key)

(* Accumulator per (owner, key): value frequency map. *)
type acc = { mutable n_with_key : int; values : (Value.t, int) Hashtbl.t }

let build g =
  let accs : (owner * int, acc) Hashtbl.t = Hashtbl.create 256 in
  let touch owner key value =
    let a =
      match Hashtbl.find_opt accs (owner, key) with
      | Some a -> a
      | None ->
          let a = { n_with_key = 0; values = Hashtbl.create 8 } in
          Hashtbl.add accs (owner, key) a;
          a
    in
    a.n_with_key <- a.n_with_key + 1;
    let c = Option.value ~default:0 (Hashtbl.find_opt a.values value) in
    Hashtbl.replace a.values value (c + 1)
  in
  Graph.iter_nodes g (fun nd ->
      let labels = Graph.node_labels g nd in
      Array.iter
        (fun (k, v) ->
          touch Any_node k v;
          Array.iter (fun l -> touch (Node_label l) k v) labels)
        (Graph.node_props g nd));
  Graph.iter_rels g (fun r ->
      let typ = Graph.rel_type g r in
      Array.iter
        (fun (k, v) ->
          touch Any_rel k v;
          touch (Rel_type typ) k v)
        (Graph.rel_props g r));
  (* totals per owner *)
  let rel_type_totals = Array.make (Graph.rel_type_count g) 0 in
  Graph.iter_rels g (fun r ->
      let t = Graph.rel_type g r in
      rel_type_totals.(t) <- rel_type_totals.(t) + 1);
  let owner_total = function
    | Any_node -> Graph.node_count g
    | Any_rel -> Graph.rel_count g
    | Node_label l -> Array.length (Graph.nodes_with_label g l)
    | Rel_type t -> rel_type_totals.(t)
  in
  let entries = Hashtbl.create (Hashtbl.length accs) in
  Hashtbl.iter
    (fun (owner, key) a ->
      let pairs =
        Hashtbl.fold (fun v c l -> (v, c) :: l) a.values [] |> Array.of_list
      in
      Array.sort
        (fun (v1, c1) (v2, c2) ->
          match Int.compare c2 c1 with
          | 0 -> Value.compare v1 v2
          | other -> other)
        pairs;
      let mcvs = Array.sub pairs 0 (min mcv_limit (Array.length pairs)) in
      Hashtbl.add entries (owner, key)
        {
          owner_total = owner_total owner;
          with_key = a.n_with_key;
          distinct = Array.length pairs;
          mcvs;
        })
    accs;
  { entries }

(* Observability: how often an equality predicate is answered by a most-
   common-value entry versus the uniform tail assumption. *)
let m_mcv_hit = Lpp_obs.Metrics.counter "propstats.mcv_hit"

let m_mcv_tail = Lpp_obs.Metrics.counter "propstats.mcv_tail"

let selectivity t owner ~key pred =
  match find t owner ~key with
  | None -> 0.0
  | Some e ->
      if e.owner_total = 0 then 0.0
      else begin
        let exists_sel = float_of_int e.with_key /. float_of_int e.owner_total in
        match (pred : Lpp_pattern.Pattern.prop_pred) with
        | Exists -> exists_sel
        | Eq v -> begin
            match Array.find_opt (fun (mv, _) -> Value.equal mv v) e.mcvs with
            | Some (_, c) ->
                if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_mcv_hit;
                float_of_int c /. float_of_int e.owner_total
            | None ->
                if !Lpp_obs.Obs.live then Lpp_obs.Metrics.incr m_mcv_tail;
                let mcv_mass =
                  Array.fold_left (fun acc (_, c) -> acc + c) 0 e.mcvs
                in
                let tail_distinct = e.distinct - Array.length e.mcvs in
                if tail_distinct <= 0 then 0.0
                else begin
                  let tail_share =
                    float_of_int (e.with_key - mcv_mass)
                    /. float_of_int tail_distinct
                  in
                  tail_share /. float_of_int e.owner_total
                end
          end
      end

let entry_count t = Hashtbl.length t.entries

let memory_bytes t =
  let open Lpp_util.Mem_size in
  Hashtbl.fold
    (fun _ e acc ->
      acc
      + table_entry
          ~key_bytes:(2 * int_entry)
          ~value_bytes:
            ((3 * int_entry) + (Array.length e.mcvs * (word + int_entry))))
    t.entries 0
