(* NDJSON request parsing and response construction. Pure: no I/O, no
   server state — property-testable in isolation (test_serve.ml feeds it
   arbitrary lines and checks every outcome is a well-formed response). *)

open Lpp_util

type request =
  | Estimate of { id : Json.t option; pattern : string; config : string option }
  | Ping of { id : Json.t option }
  | Stats of { id : Json.t option }

let with_id id fields =
  match id with Some v -> ("id", v) :: fields | None -> fields

let error ~id ~kind message =
  Json.Obj
    (with_id id
       [
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("kind", Json.String kind); ("message", Json.String message) ]
         );
       ])

let rejected ~id ~reason =
  Json.Obj
    (with_id id
       [
         ("ok", Json.Bool false);
         ("rejected", Json.Bool true);
         ("reason", Json.String reason);
       ])

let ok_estimate ~id ~config ~estimate ~ns =
  Json.Obj
    (with_id id
       [
         ("ok", Json.Bool true);
         ("estimate", Json.Float estimate);
         ("config", Json.String config);
         ("ns", Json.Float ns);
       ])

let pong ~id = Json.Obj (with_id id [ ("ok", Json.Bool true); ("pong", Json.Bool true) ])

let ok_stats ~id stats =
  Json.Obj (with_id id [ ("ok", Json.Bool true); ("stats", stats) ])

let request_of_line line =
  match Json.of_string line with
  | Error msg -> Error (error ~id:None ~kind:"bad_json" msg)
  | Ok json ->
      let id = Json.member "id" json in
      let str field =
        match Json.member field json with
        | Some (Json.String s) -> Some s
        | Some _ | None -> None
      in
      (match json with
      | Json.Obj _ -> begin
          match str "op" with
          | Some "estimate" -> begin
              match str "pattern" with
              | Some pattern -> Ok (Estimate { id; pattern; config = str "config" })
              | None ->
                  Error
                    (error ~id ~kind:"bad_request"
                       "estimate: string field \"pattern\" is required")
            end
          | Some "ping" -> Ok (Ping { id })
          | Some "stats" -> Ok (Stats { id })
          | Some op ->
              Error
                (error ~id ~kind:"bad_request"
                   (Printf.sprintf
                      "unknown op %S (estimate | ping | stats)" op))
          | None ->
              Error
                (error ~id ~kind:"bad_request"
                   "string field \"op\" is required")
        end
      | _ -> Error (error ~id:None ~kind:"bad_request" "request must be a JSON object"))
