(* The serving runtime. Domain layout and ownership:

   - reader domain: owns the listen socket and every connection's read side
     (select loop, per-connection line buffer, admission). Never writes to
     connections and never touches estimator state.
   - worker domains: own the write side of their connections, their private
     estimator sessions, and their latency counters. A connection is owned
     by exactly one worker (round-robin at accept), so per-connection
     response order equals request order and writes need no lock.
   - fd lifecycle: the reader stops reading a connection on EOF/error and
     enqueues a final [Close] job; the owning worker closes the fd after
     the jobs queued before it — no close/write race by construction.

   Shutdown (stop, SIGINT/SIGTERM via the CLI): the stopping flag makes the
   reader close the listener, enqueue [Close] for every live connection and
   raise reader_done; workers exit once reader_done is up and their queue is
   drained, so every admitted request is answered before its socket dies. *)

open Lpp_util

type addr = Unix_socket of string | Tcp of string * int

type config = {
  addr : addr;
  workers : int;
  batch : int;
  max_line : int;
  max_pending : int;
  estimator : Lpp_core.Config.t;
}

let default_config addr =
  {
    addr;
    workers = max 1 (Domain.recommended_domain_count () - 1);
    batch = 16;
    max_line = 64 * 1024;
    max_pending = 1024;
    estimator = Lpp_core.Config.a_lhd;
  }

(* Metrics-registry mirrors of the internal counters: live only when the
   observability switch is on, so `lpp serve --metrics` exports them without
   taxing the default path. *)
let m_requests = Lpp_obs.Metrics.counter "serve.requests"

let m_errors = Lpp_obs.Metrics.counter "serve.errors"

let m_rejected = Lpp_obs.Metrics.counter "serve.rejected"

let m_request_ns = Lpp_obs.Metrics.histogram "serve.request_ns"

type conn = {
  fd : Unix.file_descr;
  owner : int;  (* worker index *)
  rbuf : Buffer.t;  (* partial last line, reader-owned *)
  mutable discarding : bool;  (* inside an oversized line, reader-owned *)
  mutable wdead : bool;  (* a write failed; skip the rest, worker-owned *)
}

type job =
  | Line of conn * string  (* a complete request line *)
  | Reject of conn * Json.t  (* admission refusal, response prebuilt *)
  | Close of conn  (* last job for this connection: close the fd *)

type worker = {
  mu : Mutex.t;
  cv : Condition.t;
  jobs : job Queue.t;
  mutable queued_lines : int;  (* Line jobs in [jobs]; admission reads it *)
  (* Single-writer statistics (this worker), read lock-free by [stats_json]:
     word-sized stores cannot tear, so a concurrent read is a momentary but
     valid view — same contract as Lpp_obs.Metrics. *)
  mutable served : int;
  mutable errors : int;
  mutable rejected : int;
  mutable busy_ns : float;
  mutable lat_count : int;
  mutable lat_sum : float;
  lat_buckets : int array;  (* Lpp_obs.Metrics log2 bucket shape *)
}

type t = {
  cfg : config;
  graph : Lpp_pgraph.Graph.t;
  catalog : Lpp_stats.Catalog.t;
  parse_mu : Mutex.t;  (* Parse.parse interns into the shared graph *)
  stopping : bool Atomic.t;
  reader_done : bool Atomic.t;
  start_ns : int64;
  workers : worker array;
  listen_fd : Unix.file_descr;
  unlink_on_close : string option;
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
}

(* ---- queues ---------------------------------------------------------- *)

let enqueue w job =
  Sync.with_lock w.mu (fun () ->
      (match job with Line _ -> w.queued_lines <- w.queued_lines + 1 | _ -> ());
      Queue.push job w.jobs;
      Condition.signal w.cv)

(* Up to [batch] jobs in arrival order; [] only at shutdown. *)
let drain st w ~batch =
  Sync.with_lock w.mu (fun () ->
      while Queue.is_empty w.jobs && not (Atomic.get st.reader_done) do
        Condition.wait w.cv w.mu
      done;
      let out = ref [] in
      let n = ref 0 in
      while !n < batch && not (Queue.is_empty w.jobs) do
        let job = Queue.pop w.jobs in
        (match job with Line _ -> w.queued_lines <- w.queued_lines - 1 | _ -> ());
        out := job :: !out;
        incr n
      done;
      List.rev !out)

(* ---- worker ---------------------------------------------------------- *)

(* Connection fds are non-blocking (the reader needs that); a full send
   buffer therefore surfaces as EAGAIN here. Waiting for writability is the
   intended backpressure: a client that stops reading stalls its own worker,
   never the reader or the other workers' connections. *)
let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 0.2)
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let respond conn json =
  if not conn.wdead then begin
    match write_all conn.fd (Json.to_string json ^ "\n") with
    | () -> ()
    | exception Unix.Unix_error _ ->
        (* broken pipe: the reader will see the hangup and queue the Close;
           stop writing so one dead client cannot wedge its worker *)
        conn.wdead <- true
  end

(* Aggregated live statistics. Reads every worker's single-writer counters
   without locks: word-sized loads cannot tear, so concurrent readers get a
   momentary but valid view (exact once the workload is quiescent) — the
   same contract as Lpp_obs.Metrics. *)
let stats_json st =
  let total f = Array.fold_left (fun acc w -> acc + f w) 0 st.workers in
  let served = total (fun w -> w.served) in
  let errors = total (fun w -> w.errors) in
  let rejected = total (fun w -> w.rejected) in
  let uptime_s = Clock.elapsed_s ~since:st.start_ns in
  let hist =
    let buckets = Array.make Lpp_obs.Metrics.bucket_count 0 in
    Array.iter
      (fun w ->
        Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) w.lat_buckets)
      st.workers;
    {
      Lpp_obs.Metrics.count = total (fun w -> w.lat_count);
      sum = Array.fold_left (fun acc w -> acc +. w.lat_sum) 0.0 st.workers;
      buckets;
    }
  in
  let q p = Lpp_obs.Metrics.hist_quantile hist p in
  let per_worker w =
    Json.Obj
      [
        ("served", Json.Int w.served);
        ("errors", Json.Int w.errors);
        ("rejected", Json.Int w.rejected);
        ("busy_ns", Json.Float w.busy_ns);
        ( "utilization",
          Json.Float
            (if uptime_s > 0.0 then w.busy_ns /. (uptime_s *. 1e9) else 0.0) );
      ]
  in
  Json.Obj
    [
      ("served", Json.Int served);
      ("errors", Json.Int errors);
      ("rejected", Json.Int rejected);
      ("uptime_s", Json.Float uptime_s);
      ( "estimates_per_sec",
        Json.Float
          (if uptime_s > 0.0 then float_of_int served /. uptime_s else 0.0) );
      ( "latency",
        Json.Obj
          [
            ("count", Json.Int hist.Lpp_obs.Metrics.count);
            ( "mean_ns",
              Json.Float
                (if hist.Lpp_obs.Metrics.count = 0 then 0.0
                 else
                   hist.Lpp_obs.Metrics.sum
                   /. float_of_int hist.Lpp_obs.Metrics.count) );
            ("p50_ns", Json.Float (q 0.50));
            ("p90_ns", Json.Float (q 0.90));
            ("p99_ns", Json.Float (q 0.99));
          ] );
      ("workers", Json.List (Array.to_list (Array.map per_worker st.workers)));
    ]

(* One request line, start to finish. Returns the response; classification
   happens via the counters. Any escape — including estimator bugs — turns
   into an ["internal"] error response rather than a dead worker. *)
let answer st w sessions line =
  match Protocol.request_of_line line with
  | Error resp ->
      w.errors <- w.errors + 1;
      resp
  | Ok (Protocol.Ping { id }) -> Protocol.pong ~id
  | Ok (Protocol.Stats { id }) -> Protocol.ok_stats ~id (stats_json st)
  | Ok (Protocol.Estimate { id; pattern; config }) -> begin
      let resolved =
        match config with
        | None -> Ok st.cfg.estimator
        | Some name -> Lpp_core.Config.of_name name
      in
      match resolved with
      | Error msg ->
          w.errors <- w.errors + 1;
          Protocol.error ~id ~kind:"unknown_config" msg
      | Ok est_cfg -> begin
          let session =
            match List.assoc_opt est_cfg !sessions with
            | Some s -> s
            | None ->
                let s = Lpp_core.Estimator.make est_cfg st.catalog in
                sessions := (est_cfg, s) :: !sessions;
                s
          in
          let parsed =
            Sync.with_lock st.parse_mu (fun () ->
                Lpp_pattern.Parse.parse st.graph pattern)
          in
          match parsed with
          | Error msg ->
              w.errors <- w.errors + 1;
              Protocol.error ~id ~kind:"parse_error" msg
          | Ok { pattern = p; _ } -> begin
              let t0 = Clock.now_ns () in
              match Lpp_core.Estimator.session_estimate_pattern session p with
              | estimate ->
                  let ns = Clock.elapsed_ns ~since:t0 in
                  w.served <- w.served + 1;
                  Protocol.ok_estimate ~id
                    ~config:(Lpp_core.Config.name est_cfg)
                    ~estimate ~ns
              | exception e ->
                  w.errors <- w.errors + 1;
                  Protocol.error ~id ~kind:"internal" (Printexc.to_string e)
            end
        end
    end

let worker_loop st idx =
  let w = st.workers.(idx) in
  (* the default-config session is shared by most requests; others are
     created on first use and kept for the worker's lifetime *)
  let sessions =
    ref [ (st.cfg.estimator, Lpp_core.Estimator.make st.cfg.estimator st.catalog) ]
  in
  let live = Lpp_obs.Obs.live in
  let run_job = function
    | Close conn -> (try Unix.close conn.fd with Unix.Unix_error _ -> ())
    | Reject (conn, resp) ->
        w.rejected <- w.rejected + 1;
        if !live then Lpp_obs.Metrics.incr m_rejected;
        respond conn resp
    | Line (conn, line) ->
        let t0 = Clock.now_ns () in
        let errors_before = w.errors in
        let resp = answer st w sessions line in
        respond conn resp;
        if !live && w.errors > errors_before then Lpp_obs.Metrics.incr m_errors;
        let ns = Clock.elapsed_ns ~since:t0 in
        w.busy_ns <- w.busy_ns +. ns;
        w.lat_count <- w.lat_count + 1;
        w.lat_sum <- w.lat_sum +. ns;
        let b = Lpp_obs.Metrics.bucket_of ns in
        w.lat_buckets.(b) <- w.lat_buckets.(b) + 1;
        if !live then begin
          Lpp_obs.Metrics.incr m_requests;
          Lpp_obs.Metrics.observe m_request_ns ns
        end
  in
  let rec loop () =
    match drain st w ~batch:st.cfg.batch with
    | [] -> ()  (* reader done and queue empty: drained, exit *)
    | jobs ->
        List.iter run_job jobs;
        loop ()
  in
  loop ()

(* ---- reader ---------------------------------------------------------- *)

(* Split [conn.rbuf] plus freshly-read bytes into complete lines and apply
   admission per line. An overlong line is answered with one [oversized]
   rejection when its prefix first exceeds the limit; the rest of it is
   discarded as it streams in. *)
let feed st conn bytes n =
  Buffer.add_subbytes conn.rbuf bytes 0 n;
  let data = Buffer.contents conn.rbuf in
  Buffer.clear conn.rbuf;
  let len = String.length data in
  let w = st.workers.(conn.owner) in
  let admit line =
    (* tolerate CRLF framing; whitespace-only lines are ignored, so an
       interactive `nc` session can hit return without earning an error *)
    let line =
      if String.length line > 0 && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    if String.trim line = "" then ()
    else if String.length line > st.cfg.max_line then
      enqueue w (Reject (conn, Protocol.rejected ~id:None ~reason:"oversized"))
    else begin
      let full =
        Sync.with_lock w.mu (fun () -> w.queued_lines >= st.cfg.max_pending)
      in
      if full then
        enqueue w (Reject (conn, Protocol.rejected ~id:None ~reason:"overloaded"))
      else enqueue w (Line (conn, line))
    end
  in
  let start = ref 0 in
  (try
     while !start <= len - 1 do
       match String.index_from data !start '\n' with
       | nl ->
           let line = String.sub data !start (nl - !start) in
           if conn.discarding then conn.discarding <- false
           else admit line;
           start := nl + 1
       | exception Not_found -> raise Exit
     done
   with Exit -> ());
  let rem = len - !start in
  if conn.discarding then () (* still inside the oversized line: drop *)
  else if rem > st.cfg.max_line then begin
    enqueue w (Reject (conn, Protocol.rejected ~id:None ~reason:"oversized"));
    conn.discarding <- true
  end
  else if rem > 0 then Buffer.add_substring conn.rbuf data !start rem

let reader_loop st =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let bytes = Bytes.create 65536 in
  let hangup conn =
    Hashtbl.remove conns conn.fd;
    enqueue st.workers.(conn.owner) (Close conn)
  in
  let accept_all () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true st.listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          let owner = !next mod Array.length st.workers in
          incr next;
          Hashtbl.replace conns fd
            { fd; owner; rbuf = Buffer.create 256; discarding = false;
              wdead = false }
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done
  in
  let read_conn conn =
    match Unix.read conn.fd bytes 0 (Bytes.length bytes) with
    | 0 -> hangup conn
    | n -> feed st conn bytes n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> hangup conn
  in
  while not (Atomic.get st.stopping) do
    let fds = st.listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    match Unix.select fds [] [] 0.05 with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = st.listen_fd then accept_all ()
            else
              match Hashtbl.find_opt conns fd with
              | Some conn -> read_conn conn
              | None -> ())
          readable
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  (* graceful drain: no new connections or requests; queued work survives *)
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  Option.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    st.unlink_on_close;
  Hashtbl.iter (fun _ conn -> enqueue st.workers.(conn.owner) (Close conn)) conns;
  Atomic.set st.reader_done true;
  Array.iter
    (fun w -> Sync.with_lock w.mu (fun () -> Condition.broadcast w.cv))
    st.workers

(* ---- lifecycle ------------------------------------------------------- *)

let bind_listen addr =
  match addr with
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, Some path)
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, None)

let start (cfg : config) ~graph ~catalog =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.batch < 1 then invalid_arg "Server.start: batch must be >= 1";
  Lpp_stats.Catalog.freeze catalog;
  let listen_fd, unlink_on_close = bind_listen cfg.addr in
  let worker () =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      jobs = Queue.create ();
      queued_lines = 0;
      served = 0;
      errors = 0;
      rejected = 0;
      busy_ns = 0.0;
      lat_count = 0;
      lat_sum = 0.0;
      lat_buckets = Array.make Lpp_obs.Metrics.bucket_count 0;
    }
  in
  let st =
    {
      cfg;
      graph;
      catalog;
      parse_mu = Mutex.create ();
      stopping = Atomic.make false;
      reader_done = Atomic.make false;
      start_ns = Clock.now_ns ();
      workers = Array.init cfg.workers (fun _ -> worker ());
      listen_fd;
      unlink_on_close;
      domains = [];
      stopped = false;
    }
  in
  let workers =
    List.init cfg.workers (fun i -> Domain.spawn (fun () -> worker_loop st i))
  in
  let reader = Domain.spawn (fun () -> reader_loop st) in
  (* reader last in the list: [stop] joins it first so reader_done is up
     before the workers are joined *)
  st.domains <- reader :: workers;
  st

let stop st =
  if not st.stopped then begin
    st.stopped <- true;
    Atomic.set st.stopping true;
    List.iter Domain.join st.domains;
    st.domains <- []
  end
