(** A small blocking NDJSON client for {!Server} — what the tests, the
    [serve] bench experiment and [lpp serve --check] drive the service with.
    Not thread-safe; use one per domain. *)

type t

val connect : Server.addr -> t
(** @raise Unix.Unix_error if the server cannot be reached. *)

val close : t -> unit

val send_line : t -> string -> unit
(** Write one request line (the ["\n"] is appended). Lines may be pipelined:
    the server answers in order on each connection. *)

val recv_line : t -> string option
(** Next response line, blocking; [None] on EOF. *)

val try_recv_line : t -> string option
(** Next response line if one is already available without blocking;
    [None] otherwise (or on EOF). *)

val request : t -> string -> Lpp_util.Json.t
(** [send_line] then [recv_line], parsed.
    @raise Failure on EOF or a malformed response line. *)

val estimate : t -> ?config:string -> string -> (float, string) result
(** Convenience wrapper: one ["estimate"] round-trip for [pattern],
    returning the estimate or the server's error/rejection reason. *)
