(* Blocking NDJSON client with a hand-rolled line buffer (no in_channel:
   [try_recv_line] needs a non-blocking poll, which channels cannot do
   without consuming). *)

open Lpp_util

type t = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

let connect (addr : Server.addr) =
  let fd =
    match addr with
    | Server.Unix_socket path ->
        let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX path);
        fd
    | Server.Tcp (host, port) ->
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port));
        fd
  in
  { fd; buf = Buffer.create 512; eof = false }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let s = line ^ "\n" in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring t.fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* The first complete line of [t.buf], removed from it. *)
let take_line t =
  let data = Buffer.contents t.buf in
  match String.index data '\n' with
  | nl ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf data (nl + 1) (String.length data - nl - 1);
      Some (String.sub data 0 nl)
  | exception Not_found -> None

let fill t =
  let bytes = Bytes.create 65536 in
  match Unix.read t.fd bytes 0 (Bytes.length bytes) with
  | 0 -> t.eof <- true
  | n -> Buffer.add_subbytes t.buf bytes 0 n
  | exception Unix.Unix_error (EINTR, _, _) -> ()

let rec recv_line t =
  match take_line t with
  | Some line -> Some line
  | None ->
      if t.eof then None
      else begin
        fill t;
        recv_line t
      end

let rec try_recv_line t =
  match take_line t with
  | Some line -> Some line
  | None ->
      if t.eof then None
      else begin
        match Unix.select [ t.fd ] [] [] 0.0 with
        | [], _, _ -> None
        | _ ->
            fill t;
            try_recv_line t
        | exception Unix.Unix_error (EINTR, _, _) -> None
      end

let request t line =
  send_line t line;
  match recv_line t with
  | None -> failwith "Lpp_serve.Client.request: connection closed"
  | Some resp -> begin
      match Json.of_string resp with
      | Ok json -> json
      | Error msg ->
          failwith
            (Printf.sprintf "Lpp_serve.Client.request: bad response %S: %s"
               resp msg)
    end

let estimate t ?config pattern =
  let fields =
    [ ("op", Json.String "estimate"); ("pattern", Json.String pattern) ]
    @ match config with Some c -> [ ("config", Json.String c) ] | None -> []
  in
  let resp = request t (Json.to_string (Json.Obj fields)) in
  match Json.member "ok" resp with
  | Some (Json.Bool true) -> begin
      match Option.bind (Json.member "estimate" resp) Json.number with
      | Some est -> Ok est
      | None -> Error "response carried no estimate"
    end
  | _ -> begin
      let str path =
        match Json.member path resp with
        | Some (Json.String s) -> Some s
        | _ -> None
      in
      match
        ( str "reason",
          Option.bind (Json.member "error" resp) (Json.member "message") )
      with
      | Some reason, _ -> Error reason
      | None, Some (Json.String msg) -> Error msg
      | _ -> Error "request failed"
    end
