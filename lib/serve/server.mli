(** A long-lived estimation service over a Unix or TCP socket.

    The expensive state — the graph and its frozen statistics catalog — is
    built once by the caller and shared immutably across [workers] estimation
    domains; each worker owns a private {!Lpp_core.Estimator.make} session, so
    the hot path allocates (almost) nothing and takes no locks. One reader
    domain owns all socket I/O: it accepts connections, performs admission
    (line-length and queue-depth limits) and enqueues complete request lines
    onto the owning worker's queue; workers drain up to [batch] requests per
    wakeup, answer on the connection, and record per-request latency.

    Connections are assigned to workers round-robin at accept time and stay
    with that worker, so responses on one connection always come back in
    request order — pipelining is safe without request ids.

    The only cross-domain mutability is the per-worker job queue (mutex +
    condition), a parse-time lock (pattern parsing interns names into the
    shared graph vocabulary) and the shutdown flags; see DESIGN.md §12 for
    the invariants. *)

type addr =
  | Unix_socket of string  (** filesystem path; unlinked on shutdown *)
  | Tcp of string * int  (** host, port *)

type config = {
  addr : addr;
  workers : int;  (** estimation domains (≥ 1) *)
  batch : int;  (** max requests a worker drains per wakeup (≥ 1) *)
  max_line : int;  (** request lines longer than this are rejected *)
  max_pending : int;  (** per-worker queued-request cap; excess is rejected *)
  estimator : Lpp_core.Config.t;  (** default estimator configuration *)
}

val default_config : addr -> config
(** [workers] = recommended domain count − 1 (the reader), at least 1;
    [batch] 16; [max_line] 64 KiB; [max_pending] 1024; [estimator] A-LHD. *)

type t

val start :
  config -> graph:Lpp_pgraph.Graph.t -> catalog:Lpp_stats.Catalog.t -> t
(** Freeze the catalog (idempotent), bind and listen on [config.addr], and
    spawn the reader and worker domains. Returns once the socket accepts
    connections. @raise Unix.Unix_error if the address cannot be bound. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, let the workers drain every request
    already queued (each still gets its response), close all connections and
    join every domain. Idempotent. *)

val stats_json : t -> Lpp_util.Json.t
(** Live service statistics — also what the ["stats"] op answers: request
    counts by outcome, uptime, estimates/sec, latency mean and
    bucket-derived p50/p90/p99 ({!Lpp_obs.Metrics.hist_quantile}), and
    per-worker served counts and busy fractions. Lock-free momentary view,
    exact once quiescent. *)
