(** The [lpp serve] wire protocol: newline-delimited JSON.

    Every request is one line holding one JSON object; every line the client
    sends gets exactly one JSON response line, in order. A request names its
    operation in ["op"] and may carry an ["id"] (any JSON value), which the
    response echoes verbatim so pipelined clients can correlate.

    Requests:
    {v
    {"op": "estimate", "id": 7, "pattern": "(a:Person)-[:KNOWS]->(b)"}
    {"op": "estimate", "pattern": "(a)-[:ACTS_IN]->(m)", "config": "A-LH"}
    {"op": "ping"}
    {"op": "stats"}
    v}

    Responses (["ok"] is always present):
    {v
    {"id": 7, "ok": true, "estimate": 42.0, "config": "A-LHD", "ns": 12345.0}
    {"ok": true, "pong": true}
    {"ok": true, "stats": {…}}
    {"ok": false, "error": {"kind": "parse_error", "message": "…"}}
    {"ok": false, "rejected": true, "reason": "overloaded"}
    v}

    Malformed input is answered, never dropped: a line that is not a JSON
    object, names an unknown ["op"], or lacks a required field yields an
    [ok:false] error response with a machine-readable [kind]. Admission
    failures (line too long, queue full) yield [rejected:true] responses. *)

type request =
  | Estimate of { id : Lpp_util.Json.t option; pattern : string; config : string option }
  | Ping of { id : Lpp_util.Json.t option }
  | Stats of { id : Lpp_util.Json.t option }

val request_of_line : string -> (request, Lpp_util.Json.t) result
(** Parse one request line. The [Error] is the complete [ok:false] response
    to send back — it preserves the request's ["id"] when one could be
    extracted. Never raises. *)

val ok_estimate :
  id:Lpp_util.Json.t option ->
  config:string ->
  estimate:float ->
  ns:float ->
  Lpp_util.Json.t

val pong : id:Lpp_util.Json.t option -> Lpp_util.Json.t

val ok_stats : id:Lpp_util.Json.t option -> Lpp_util.Json.t -> Lpp_util.Json.t

val error : id:Lpp_util.Json.t option -> kind:string -> string -> Lpp_util.Json.t
(** [kind] is machine-readable: ["bad_json"], ["bad_request"],
    ["parse_error"], ["unknown_config"] or ["internal"]. *)

val rejected : id:Lpp_util.Json.t option -> reason:string -> Lpp_util.Json.t
(** Admission refusal; [reason] is ["oversized"] or ["overloaded"]. *)
