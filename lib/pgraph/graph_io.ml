let magic = "lpp-graph v1"

(* ---------------- escaping ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | 't' -> Buffer.add_char buf '\t'
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

let value_to_string = function
  | Value.Bool b -> "b:" ^ string_of_bool b
  | Value.Int i -> "i:" ^ string_of_int i
  | Value.Float f -> Printf.sprintf "f:%h" f
  | Value.Str s -> "s:" ^ escape s

let value_of_string s =
  if String.length s < 2 || s.[1] <> ':' then None
  else begin
    let payload = String.sub s 2 (String.length s - 2) in
    match s.[0] with
    | 'b' -> Option.map (fun b -> Value.Bool b) (bool_of_string_opt payload)
    | 'i' -> Option.map (fun i -> Value.Int i) (int_of_string_opt payload)
    | 'f' -> Option.map (fun f -> Value.Float f) (float_of_string_opt payload)
    | 's' -> Some (Value.Str (unescape payload))
    | _ -> None
  end

(* ---------------- writing ---------------- *)

let write g oc =
  let pr fmt = Printf.fprintf oc fmt in
  pr "%s\n" magic;
  Interner.iter (Graph.labels g) (fun id name -> pr "label\t%d\t%s\n" id (escape name));
  Interner.iter (Graph.rel_types g) (fun id name -> pr "type\t%d\t%s\n" id (escape name));
  Interner.iter (Graph.prop_keys g) (fun id name -> pr "key\t%d\t%s\n" id (escape name));
  Graph.iter_nodes g (fun nd ->
      pr "node\t%d" nd;
      Array.iter (fun l -> pr "\t%d" l) (Graph.node_labels g nd);
      pr "\n";
      Array.iter
        (fun (k, v) -> pr "nprop\t%d\t%d\t%s\n" nd k (value_to_string v))
        (Graph.node_props g nd));
  Graph.iter_rels g (fun r ->
      pr "rel\t%d\t%d\t%d\t%d\n" r (Graph.rel_src g r) (Graph.rel_dst g r)
        (Graph.rel_type g r);
      Array.iter
        (fun (k, v) -> pr "rprop\t%d\t%d\t%s\n" r k (value_to_string v))
        (Graph.rel_props g r))

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write g oc)

(* ---------------- reading ---------------- *)

exception Bad of string

(* The reader streams every line straight into a {!Graph_builder}: vocabulary
   declarations intern immediately, entities append to the builder's flat
   vectors, and properties attach to already-declared owners — no
   whole-file materialisation, so loading never holds two copies of the
   graph. Consequence of streaming: entity and property lines must reference
   owners already declared (the writer emits exactly that order). *)
let read ic =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    (match input_line ic with
    | line when line = magic -> ()
    | line -> fail "bad magic %S" line
    | exception End_of_file -> fail "empty input");
    let b = Graph_builder.create () in
    let intern_decl intern id name =
      let got = intern b (unescape name) in
      if got <> id then fail "non-dense vocabulary id %d" id
    in
    let int_of s =
      match int_of_string_opt s with
      | Some i -> i
      | None -> fail "expected an integer, got %S" s
    in
    let value_of s =
      match value_of_string s with
      | Some v -> v
      | None -> fail "bad value literal %S" s
    in
    let check_key k =
      if k < 0 || k >= Graph_builder.prop_key_count b then
        fail "key id out of range"
    in
    (try
       while true do
         let line = input_line ic in
         if line <> "" then begin
           match String.split_on_char '\t' line with
           | "label" :: id :: [ name ] ->
               intern_decl Graph_builder.intern_label (int_of id) name
           | "type" :: id :: [ name ] ->
               intern_decl Graph_builder.intern_rel_type (int_of id) name
           | "key" :: id :: [ name ] ->
               intern_decl Graph_builder.intern_prop_key (int_of id) name
           | "node" :: id :: label_ids ->
               if int_of id <> Graph_builder.node_count b then
                 fail "non-dense node id %s" id;
               let ls = Array.of_list (List.map int_of label_ids) in
               Array.iter
                 (fun l ->
                   if l < 0 || l >= Graph_builder.label_count b then
                     fail "label id out of range")
                 ls;
               ignore (Graph_builder.add_node_ids b ~labels:ls)
           | [ "nprop"; nd; k; v ] ->
               let nd = int_of nd in
               if nd < 0 || nd >= Graph_builder.node_count b then
                 fail "node property owner out of range";
               let k = int_of k in
               check_key k;
               Graph_builder.set_node_prop b nd ~key:k (value_of v)
           | [ "rel"; id; src; dst; typ ] ->
               if int_of id <> Graph_builder.rel_count b then
                 fail "non-dense rel id %s" id;
               let src = int_of src and dst = int_of dst in
               if
                 src < 0
                 || src >= Graph_builder.node_count b
                 || dst < 0
                 || dst >= Graph_builder.node_count b
               then fail "relationship endpoint out of range";
               let typ = int_of typ in
               if typ < 0 || typ >= Graph_builder.rel_type_count b then
                 fail "type id out of range";
               ignore (Graph_builder.add_rel_ids b ~src ~dst ~typ)
           | [ "rprop"; r; k; v ] ->
               let r = int_of r in
               if r < 0 || r >= Graph_builder.rel_count b then
                 fail "rel property owner out of range";
               let k = int_of k in
               check_key k;
               Graph_builder.set_rel_prop b r ~key:k (value_of v)
           | _ -> fail "unrecognised line %S" line
         end
       done
     with End_of_file -> ());
    Ok (Graph_builder.freeze b)
  with Bad msg -> Error msg

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
