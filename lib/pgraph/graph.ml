module Iarr = Lpp_util.Iarr

type node = int

type rel = int

(* Relationship columns and adjacency are CSR over Bigarrays ({!Iarr}): the
   GC never scans them, and ids narrow to 32 bits when they fit — the
   difference between a 10⁸-edge graph fitting in memory or not. Per-entity
   variable-width data (label sets, property lists) stays boxed: those arrays
   are tiny and mostly share the static empty atom. *)
type t = {
  labels : Interner.t;
  rel_types : Interner.t;
  prop_keys : Interner.t;
  node_labels : int array array;
  node_props : (int * Value.t) array array;
  rel_src : Iarr.t;
  rel_dst : Iarr.t;
  rel_type : Iarr.t;
  rel_props : (int * Value.t) array array;
  out_off : Iarr.t;  (* node_count + 1 slots *)
  out_tgt : Iarr.t;  (* rel ids, ascending within each node's slice *)
  in_off : Iarr.t;
  in_tgt : Iarr.t;
  label_index : int array array; (* label id -> sorted node ids *)
  unlabeled : int;
  prop_total : int;
}

let node_count t = Array.length t.node_labels

let rel_count t = Iarr.length t.rel_src

let property_count t = t.prop_total

let labels t = t.labels

let rel_types t = t.rel_types

let prop_keys t = t.prop_keys

let label_count t = Interner.size t.labels

let rel_type_count t = Interner.size t.rel_types

let prop_key_count t = Interner.size t.prop_keys

let node_labels t n = t.node_labels.(n)

let node_has_label t n l =
  (* Label arrays are tiny (rarely > 5); linear scan beats binary search. *)
  let arr = t.node_labels.(n) in
  let rec go i = i < Array.length arr && (arr.(i) = l || go (i + 1)) in
  go 0

let node_props t n = t.node_props.(n)

let assoc_prop props key =
  let rec go i =
    if i >= Array.length props then None
    else begin
      let k, v = props.(i) in
      if k = key then Some v else if k > key then None else go (i + 1)
    end
  in
  go 0

let node_prop t n key = assoc_prop t.node_props.(n) key

let nodes_with_label t l =
  (* labels interned into the vocabulary after freezing (e.g. by a query)
     have an empty extent *)
  if l < 0 || l >= Array.length t.label_index then [||] else t.label_index.(l)

let unlabeled_node_count t = t.unlabeled

let rel_src t r = Iarr.get t.rel_src r

let rel_dst t r = Iarr.get t.rel_dst r

let rel_type t r = Iarr.get t.rel_type r

let rel_props t r = t.rel_props.(r)

let rel_prop t r key = assoc_prop t.rel_props.(r) key

let out_rels t n =
  let lo = Iarr.get t.out_off n in
  Iarr.sub_to_array t.out_tgt ~pos:lo ~len:(Iarr.get t.out_off (n + 1) - lo)

let in_rels t n =
  let lo = Iarr.get t.in_off n in
  Iarr.sub_to_array t.in_tgt ~pos:lo ~len:(Iarr.get t.in_off (n + 1) - lo)

let iter_out_rels t n f =
  let lo = Iarr.get t.out_off n in
  Iarr.iter_range t.out_tgt ~pos:lo ~len:(Iarr.get t.out_off (n + 1) - lo) f

let iter_in_rels t n f =
  let lo = Iarr.get t.in_off n in
  Iarr.iter_range t.in_tgt ~pos:lo ~len:(Iarr.get t.in_off (n + 1) - lo) f

let out_degree t n = Iarr.get t.out_off (n + 1) - Iarr.get t.out_off n

let in_degree t n = Iarr.get t.in_off (n + 1) - Iarr.get t.in_off n

let degree t dir n =
  match (dir : Direction.t) with
  | Out -> out_degree t n
  | In -> in_degree t n
  | Both -> out_degree t n + in_degree t n

let other_end t r n =
  if rel_src t r = n then rel_dst t r
  else if rel_dst t r = n then rel_src t r
  else invalid_arg "Graph.other_end: node is not an endpoint"

let iter_nodes t f =
  for n = 0 to node_count t - 1 do
    f n
  done

let iter_rels t f =
  for r = 0 to rel_count t - 1 do
    f r
  done

let fold_nodes t ~init ~f =
  let acc = ref init in
  iter_nodes t (fun n -> acc := f !acc n);
  !acc

let fold_rels t ~init ~f =
  let acc = ref init in
  iter_rels t (fun r -> acc := f !acc r);
  !acc

(* Counting-sort CSR fill: iterating rels in ascending id order keeps each
   node's slice ascending, matching the per-node adjacency lists the boxed
   representation used to build — callers observe identical orderings. *)
let build_csr ~n_nodes ~endpoints =
  let m = Iarr.length endpoints in
  let counts = Array.make (n_nodes + 1) 0 in
  Iarr.iter endpoints (fun e -> counts.(e + 1) <- counts.(e + 1) + 1);
  for i = 1 to n_nodes do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  (* counts.(e) is now the start of e's slice (counts.(n_nodes) = m) *)
  let off = Iarr.of_array ~max_value:m counts in
  let tgt = Iarr.create ~max_value:(max 0 (m - 1)) m in
  let cursor = Array.sub counts 0 n_nodes in
  for r = 0 to m - 1 do
    let e = Iarr.get endpoints r in
    Iarr.set tgt cursor.(e) r;
    cursor.(e) <- cursor.(e) + 1
  done;
  (off, tgt)

let unsafe_make_packed ~labels ~rel_types ~prop_keys ~node_labels ~node_props
    ~rel_src ~rel_dst ~rel_type ~rel_props =
  let n_nodes = Array.length node_labels in
  let out_off, out_tgt = build_csr ~n_nodes ~endpoints:rel_src in
  let in_off, in_tgt = build_csr ~n_nodes ~endpoints:rel_dst in
  let label_counts = Array.make (Interner.size labels) 0 in
  Array.iter
    (fun ls -> Array.iter (fun l -> label_counts.(l) <- label_counts.(l) + 1) ls)
    node_labels;
  let label_index = Array.map (fun c -> Array.make c 0) label_counts in
  let fill = Array.make (Interner.size labels) 0 in
  Array.iteri
    (fun n ls ->
      Array.iter
        (fun l ->
          label_index.(l).(fill.(l)) <- n;
          fill.(l) <- fill.(l) + 1)
        ls)
    node_labels;
  let unlabeled =
    Array.fold_left
      (fun acc ls -> if Array.length ls = 0 then acc + 1 else acc)
      0 node_labels
  in
  let prop_total =
    Array.fold_left (fun acc ps -> acc + Array.length ps) 0 node_props
    + Array.fold_left (fun acc ps -> acc + Array.length ps) 0 rel_props
  in
  {
    labels;
    rel_types;
    prop_keys;
    node_labels;
    node_props;
    rel_src;
    rel_dst;
    rel_type;
    rel_props;
    out_off;
    out_tgt;
    in_off;
    in_tgt;
    label_index;
    unlabeled;
    prop_total;
  }

let unsafe_make ~labels ~rel_types ~prop_keys ~node_labels ~node_props ~rel_src
    ~rel_dst ~rel_type ~rel_props =
  let n_nodes = Array.length node_labels in
  let node_max = max 0 (n_nodes - 1) in
  unsafe_make_packed ~labels ~rel_types ~prop_keys ~node_labels ~node_props
    ~rel_src:(Iarr.of_array ~max_value:node_max rel_src)
    ~rel_dst:(Iarr.of_array ~max_value:node_max rel_dst)
    ~rel_type:(Iarr.of_array rel_type)
    ~rel_props

let memory_breakdown t =
  [
    ( "graph.rels",
      Iarr.size_in_bytes t.rel_src + Iarr.size_in_bytes t.rel_dst
      + Iarr.size_in_bytes t.rel_type );
    ( "graph.adjacency",
      Iarr.size_in_bytes t.out_off + Iarr.size_in_bytes t.out_tgt
      + Iarr.size_in_bytes t.in_off + Iarr.size_in_bytes t.in_tgt );
  ]

let csr_bytes t =
  List.fold_left (fun acc (_, b) -> acc + b) 0 (memory_breakdown t)
