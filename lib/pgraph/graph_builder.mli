(** Mutable construction of a property graph, frozen into a {!Graph.t}.

    Construction is streaming: labels and relationship endpoints accumulate
    in flat growable Bigarray vectors and properties in sparse per-entity
    tables, so peak memory while loading a 10⁷–10⁸-edge graph is the final
    packed layout plus doubling slack — never a second boxed copy.

    {[
      let b = Graph_builder.create () in
      let alice = Graph_builder.add_node b ~labels:[ "Person"; "Student" ]
          ~props:[ ("name", Value.Str "Alice") ] in
      let bob = Graph_builder.add_node b ~labels:[ "Person" ] ~props:[] in
      let _r = Graph_builder.add_rel b ~src:alice ~dst:bob ~rel_type:"knows"
          ~props:[] in
      let g = Graph_builder.freeze b
    ]} *)

type t

val create : unit -> t

val add_node :
  t -> labels:string list -> props:(string * Value.t) list -> Graph.node
(** Duplicate labels and duplicate property keys are deduplicated (last write
    wins for properties). *)

val add_rel :
  t ->
  src:Graph.node ->
  dst:Graph.node ->
  rel_type:string ->
  props:(string * Value.t) list ->
  Graph.rel
(** @raise Invalid_argument if either endpoint has not been added yet. *)

(** {1 Id-level streaming API}

    Used by loaders ({!Graph_io}) that already speak interned ids: intern the
    vocabulary up front, then push entities without per-line string lists. *)

val intern_label : t -> string -> int

val intern_rel_type : t -> string -> int

val intern_prop_key : t -> string -> int

val label_count : t -> int
(** Vocabulary sizes so far. *)

val rel_type_count : t -> int

val prop_key_count : t -> int

val add_node_ids : t -> labels:int array -> Graph.node
(** Labels are interned ids (sorted and deduplicated here).
    @raise Invalid_argument on an id not returned by {!intern_label}. *)

val add_rel_ids : t -> src:Graph.node -> dst:Graph.node -> typ:int -> Graph.rel
(** @raise Invalid_argument on unknown endpoints or type id. *)

val set_node_prop : t -> Graph.node -> key:int -> Value.t -> unit
(** Attach or overwrite one property (last write wins).
    @raise Invalid_argument on unknown node or key id. *)

val set_rel_prop : t -> Graph.rel -> key:int -> Value.t -> unit

(** {1 Freeze} *)

val node_count : t -> int

val rel_count : t -> int

val freeze : t -> Graph.t
(** The builder must not be used after [freeze]. Records the
    [build.edges_per_sec] ingest-rate and [build.graph_bytes] gauges when
    observability is enabled. *)
