module Ivec = Lpp_util.Ivec

(* Streaming construction: relationship columns and per-node label slices go
   straight into growable Bigarray vectors, and properties live in sparse
   per-entity tables (most entities have none). Peak RSS while building is
   the final flat layout plus doubling slack — no per-node records, no
   reversed lists, no second boxed copy at freeze time. *)
type t = {
  label_names : Interner.t;
  type_names : Interner.t;
  key_names : Interner.t;
  mutable n_nodes : int;
  lab_off : Ivec.t; (* n_nodes + 1 slice offsets into lab_ids *)
  lab_ids : Ivec.t;
  node_props : (int, (int * Value.t) array) Hashtbl.t;
  mutable n_rels : int;
  src : Ivec.t;
  dst : Ivec.t;
  typ : Ivec.t;
  rel_props : (int, (int * Value.t) array) Hashtbl.t;
  created_ns : int64;
  mutable frozen : bool;
}

let g_ingest_rate = Lpp_obs.Metrics.gauge "build.edges_per_sec"

let g_graph_bytes = Lpp_obs.Metrics.gauge "build.graph_bytes"

let create () =
  let lab_off = Ivec.create () in
  Ivec.push lab_off 0;
  {
    label_names = Interner.create ();
    type_names = Interner.create ();
    key_names = Interner.create ();
    n_nodes = 0;
    lab_off;
    lab_ids = Ivec.create ();
    node_props = Hashtbl.create 64;
    n_rels = 0;
    src = Ivec.create ();
    dst = Ivec.create ();
    typ = Ivec.create ();
    rel_props = Hashtbl.create 64;
    created_ns = Lpp_util.Clock.now_ns ();
    frozen = false;
  }

let check_live t =
  if t.frozen then invalid_arg "Graph_builder: already frozen"

let dedup_sorted_ints arr =
  Array.sort Int.compare arr;
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    let out = ref [ arr.(0) ] in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(i - 1) then out := arr.(i) :: !out
    done;
    Array.of_list (List.rev !out)
  end

let intern_props keys props =
  let tbl = Hashtbl.create (List.length props) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl (Interner.intern keys k) v) props;
  let arr = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> Array.of_list in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
  arr

let intern_label t name =
  check_live t;
  Interner.intern t.label_names name

let intern_rel_type t name =
  check_live t;
  Interner.intern t.type_names name

let intern_prop_key t name =
  check_live t;
  Interner.intern t.key_names name

let label_count t = Interner.size t.label_names

let rel_type_count t = Interner.size t.type_names

let prop_key_count t = Interner.size t.key_names

let add_node_ids t ~labels =
  check_live t;
  let n_labels = Interner.size t.label_names in
  Array.iter
    (fun l ->
      if l < 0 || l >= n_labels then
        invalid_arg "Graph_builder.add_node_ids: label id out of range")
    labels;
  let label_ids = dedup_sorted_ints (Array.copy labels) in
  Array.iter (Ivec.push t.lab_ids) label_ids;
  Ivec.push t.lab_off (Ivec.length t.lab_ids);
  let id = t.n_nodes in
  t.n_nodes <- id + 1;
  id

let add_node t ~labels ~props =
  check_live t;
  let label_ids =
    Array.of_list (List.map (Interner.intern t.label_names) labels)
  in
  let id = add_node_ids t ~labels:label_ids in
  let prop_arr = intern_props t.key_names props in
  if Array.length prop_arr > 0 then Hashtbl.replace t.node_props id prop_arr;
  id

let add_rel_ids t ~src ~dst ~typ =
  check_live t;
  if src < 0 || src >= t.n_nodes || dst < 0 || dst >= t.n_nodes then
    invalid_arg "Graph_builder.add_rel: unknown endpoint";
  if typ < 0 || typ >= Interner.size t.type_names then
    invalid_arg "Graph_builder.add_rel_ids: type id out of range";
  Ivec.push t.src src;
  Ivec.push t.dst dst;
  Ivec.push t.typ typ;
  let id = t.n_rels in
  t.n_rels <- id + 1;
  id

let add_rel t ~src ~dst ~rel_type ~props =
  check_live t;
  if src < 0 || src >= t.n_nodes || dst < 0 || dst >= t.n_nodes then
    invalid_arg "Graph_builder.add_rel: unknown endpoint";
  let typ = Interner.intern t.type_names rel_type in
  let id = add_rel_ids t ~src ~dst ~typ in
  let rprops = intern_props t.key_names props in
  if Array.length rprops > 0 then Hashtbl.replace t.rel_props id rprops;
  id

(* Insert-or-replace into a sorted property array; entities carry a handful
   of properties at most, so the quadratic rebuild never matters. *)
let upsert_prop arr key value =
  let n = Array.length arr in
  let rec find i =
    if i >= n then None else if fst arr.(i) = key then Some i else find (i + 1)
  in
  match find 0 with
  | Some i ->
      let out = Array.copy arr in
      out.(i) <- (key, value);
      out
  | None ->
      let out = Array.make (n + 1) (key, value) in
      Array.blit arr 0 out 0 n;
      Array.sort (fun (a, _) (b, _) -> Int.compare a b) out;
      out

let set_prop tbl owner ~key value =
  let prev = Option.value ~default:[||] (Hashtbl.find_opt tbl owner) in
  Hashtbl.replace tbl owner (upsert_prop prev key value)

let set_node_prop t node ~key value =
  check_live t;
  if node < 0 || node >= t.n_nodes then
    invalid_arg "Graph_builder.set_node_prop: unknown node";
  if key < 0 || key >= Interner.size t.key_names then
    invalid_arg "Graph_builder.set_node_prop: key id out of range";
  set_prop t.node_props node ~key value

let set_rel_prop t rel ~key value =
  check_live t;
  if rel < 0 || rel >= t.n_rels then
    invalid_arg "Graph_builder.set_rel_prop: unknown relationship";
  if key < 0 || key >= Interner.size t.key_names then
    invalid_arg "Graph_builder.set_rel_prop: key id out of range";
  set_prop t.rel_props rel ~key value

let node_count t = t.n_nodes

let rel_count t = t.n_rels

let freeze t =
  check_live t;
  t.frozen <- true;
  let node_labels =
    Array.init t.n_nodes (fun i ->
        let lo = Ivec.get t.lab_off i in
        Ivec.sub_to_array t.lab_ids ~pos:lo ~len:(Ivec.get t.lab_off (i + 1) - lo))
  in
  let props_of tbl n =
    Array.init n (fun i ->
        match Hashtbl.find_opt tbl i with Some a -> a | None -> [||])
  in
  let g =
    Graph.unsafe_make_packed ~labels:t.label_names ~rel_types:t.type_names
      ~prop_keys:t.key_names ~node_labels
      ~node_props:(props_of t.node_props t.n_nodes)
      ~rel_src:(Ivec.to_iarr t.src) ~rel_dst:(Ivec.to_iarr t.dst)
      ~rel_type:(Ivec.to_iarr t.typ)
      ~rel_props:(props_of t.rel_props t.n_rels)
  in
  if !Lpp_obs.Obs.live then begin
    let secs = Lpp_util.Clock.elapsed_s ~since:t.created_ns in
    if secs > 0.0 then
      Lpp_obs.Metrics.set g_ingest_rate
        (int_of_float (float_of_int t.n_rels /. secs));
    Lpp_obs.Metrics.set g_graph_bytes (Graph.csr_bytes g)
  end;
  g
