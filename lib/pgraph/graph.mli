(** Frozen property graph (Definition 3.1).

    A graph is built once through {!Graph_builder} and then immutable. Nodes
    and relationships are dense integer ids; labels, relationship types and
    property keys are interned integers resolvable through the embedded
    {!Interner}s. Adjacency is stored CSR-style per node and per direction,
    and a per-label node index supports label scans. *)

type t

type node = int
(** Node id in [0 .. node_count-1]. *)

type rel = int
(** Relationship id in [0 .. rel_count-1]. *)

(** {1 Sizes} *)

val node_count : t -> int

val rel_count : t -> int

val property_count : t -> int
(** Total number of (entity, key, value) property triples in the graph. *)

(** {1 Vocabulary} *)

val labels : t -> Interner.t

val rel_types : t -> Interner.t

val prop_keys : t -> Interner.t

val label_count : t -> int

val rel_type_count : t -> int

val prop_key_count : t -> int

(** {1 Nodes} *)

val node_labels : t -> node -> int array
(** Sorted, duplicate-free label ids of a node (possibly empty). *)

val node_has_label : t -> node -> int -> bool

val node_props : t -> node -> (int * Value.t) array
(** Sorted by key id. *)

val assoc_prop : (int * Value.t) array -> int -> Value.t option
(** Sorted-early-exit lookup over a property array in the representation
    returned by {!node_props}/{!rel_props} (ascending key ids): stops as soon
    as a larger key is seen. The single property-lookup primitive — reuse it
    instead of re-implementing linear scans. *)

val node_prop : t -> node -> int -> Value.t option

val nodes_with_label : t -> int -> node array
(** All nodes carrying the given label, ascending; the physical index — do not
    mutate. Labels interned into the vocabulary after the graph was frozen
    (e.g. by a query mentioning an unused label) have an empty extent. *)

val unlabeled_node_count : t -> int

(** {1 Relationships} *)

val rel_src : t -> rel -> node

val rel_dst : t -> rel -> node

val rel_type : t -> rel -> int

val rel_props : t -> rel -> (int * Value.t) array

val rel_prop : t -> rel -> int -> Value.t option

val out_rels : t -> node -> rel array
(** Relationship ids whose source is the node, ascending. A freshly allocated
    copy of the CSR slice — callers may keep it, but hot paths should use
    {!iter_out_rels} instead, which allocates nothing. *)

val in_rels : t -> node -> rel array

val iter_out_rels : t -> node -> (rel -> unit) -> unit
(** Apply [f] to each out-relationship id in ascending order without
    materialising the slice — the traversal primitive for matcher-grade
    loops. *)

val iter_in_rels : t -> node -> (rel -> unit) -> unit

val out_degree : t -> node -> int

val in_degree : t -> node -> int

val degree : t -> Direction.t -> node -> int
(** Number of incident relationships in the given direction; [Both] counts
    every incident relationship once (self-loops twice, matching how Expand
    enumerates them). *)

val other_end : t -> rel -> node -> node
(** The endpoint of [rel] that is not [node]; for self-loops returns [node].
    @raise Invalid_argument if [node] is not an endpoint of [rel]. *)

(** {1 Iteration} *)

val iter_nodes : t -> (node -> unit) -> unit

val iter_rels : t -> (rel -> unit) -> unit

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val fold_rels : t -> init:'a -> f:('a -> rel -> 'a) -> 'a

(** {1 Construction (used by {!Graph_builder})} *)

val unsafe_make :
  labels:Interner.t ->
  rel_types:Interner.t ->
  prop_keys:Interner.t ->
  node_labels:int array array ->
  node_props:(int * Value.t) array array ->
  rel_src:int array ->
  rel_dst:int array ->
  rel_type:int array ->
  rel_props:(int * Value.t) array array ->
  t
(** Invariants (sortedness of label/prop arrays, id ranges) are the caller's
    responsibility; {!Graph_builder.freeze} establishes them. *)

val unsafe_make_packed :
  labels:Interner.t ->
  rel_types:Interner.t ->
  prop_keys:Interner.t ->
  node_labels:int array array ->
  node_props:(int * Value.t) array array ->
  rel_src:Lpp_util.Iarr.t ->
  rel_dst:Lpp_util.Iarr.t ->
  rel_type:Lpp_util.Iarr.t ->
  rel_props:(int * Value.t) array array ->
  t
(** Like {!unsafe_make} but taking the relationship columns already packed,
    so a streaming builder never materialises boxed copies. *)

(** {1 Memory accounting} *)

val memory_breakdown : t -> (string * int) list
(** Physical bytes of the Bigarray-backed components: the relationship
    columns and the CSR adjacency (labelled ["graph.rels"] and
    ["graph.adjacency"]). Boxed per-entity data (labels, properties) is not
    included. *)

val csr_bytes : t -> int
(** Total over {!memory_breakdown}. *)
