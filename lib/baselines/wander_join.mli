(** Wander Join (Li et al.), adapted for subgraph-matching cardinality
    estimation as in Park et al.'s study (Section 2 / Section 6).

    Each walk samples the pattern's relationships in a fixed traversal order:
    the first relationship is drawn uniformly from the per-type relationship
    index, every further one uniformly from the current node's qualifying
    adjacency; the inverse sampling probability (the product of candidate-set
    sizes) is the Horvitz–Thompson weight of the walk, zero if the walk dies
    or violates a constraint. The estimate is the mean weight over a fixed
    number of walks, which trades accuracy for runtime.

    Limitations mirror the paper's: only directed relationships with exactly
    one type, at most one label per node, and no property predicates. *)

type t

val build : Lpp_pgraph.Graph.t -> t
(** Builds the per-type relationship index used to seed walks. *)

(** Walk-count configurations of Section 6: [WJ-1], [WJ-100], and the
    study's ratio-based configuration [WJ-R] (walks scale with graph size). *)
type config = WJ_1 | WJ_100 | WJ_R

val config_name : config -> string

val walks : t -> config -> int

val estimate :
  rng:Lpp_util.Rng.t -> t -> config -> Lpp_pattern.Pattern.t -> float

val supports : Lpp_pattern.Pattern.t -> bool

(** {1 Sampled ground truth}

    At the large dataset tier exact matching is infeasible, so ground truth
    is the Wander-Join mean with a confidence interval instead of
    [Reference.count]. *)

type interval = {
  mean : float;  (** unbiased estimate of the true cardinality *)
  stderr : float;  (** standard error of the mean *)
  ci_low : float;  (** 95% CI lower bound, clamped at 0 *)
  ci_high : float;
  n_walks : int;
}

val estimate_interval :
  rng:Lpp_util.Rng.t ->
  t ->
  walks:int ->
  Lpp_pattern.Pattern.t ->
  interval option
(** Mean, standard error and CLT 95% confidence interval over [walks] walks
    (Welford's online recurrence — no per-walk storage). [None] if the
    pattern is outside the supported fragment or [walks <= 0]. *)

val memory_bytes : t -> int
(** Size of the per-type relationship index. *)
