open Lpp_pgraph
open Lpp_pattern

type t = { graph : Graph.t; by_type : int array array }

let build graph =
  let n_types = Graph.rel_type_count graph in
  let counts = Array.make n_types 0 in
  Graph.iter_rels graph (fun r ->
      let ty = Graph.rel_type graph r in
      counts.(ty) <- counts.(ty) + 1);
  let by_type = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make n_types 0 in
  Graph.iter_rels graph (fun r ->
      let ty = Graph.rel_type graph r in
      by_type.(ty).(fill.(ty)) <- r;
      fill.(ty) <- fill.(ty) + 1);
  { graph; by_type }

type config = WJ_1 | WJ_100 | WJ_R

let config_name = function WJ_1 -> "WJ-1" | WJ_100 -> "WJ-100" | WJ_R -> "WJ-R"

let walks t = function
  | WJ_1 -> 1
  | WJ_100 -> 100
  | WJ_R -> max 1000 (Graph.rel_count t.graph / 20)

let supports (p : Pattern.t) =
  Array.for_all
    (fun (r : Pattern.rel_pat) ->
      r.r_directed && Array.length r.r_types = 1 && Array.length r.r_props = 0
      && r.r_hops = None)
    p.rels
  && Array.for_all
       (fun (n : Pattern.node_pat) ->
         Array.length n.n_labels <= 1 && Array.length n.n_props = 0)
       p.nodes
  && Pattern.rel_count p > 0

(* Relationship processing order: BFS over the pattern from the node with the
   highest degree, cycle-closers in place (they are sampled and rejected). *)
type step = { prel : int; from_src : bool; closes : bool }

let walk_order (p : Pattern.t) =
  let n = Pattern.node_count p in
  let degrees = Array.init n (Pattern.degree p) in
  let start = ref 0 in
  for v = 1 to n - 1 do
    if degrees.(v) > degrees.(!start) then start := v
  done;
  let bound = Array.make n false in
  let rel_done = Array.make (Pattern.rel_count p) false in
  bound.(!start) <- true;
  let steps = ref [] in
  let queue = Queue.create () in
  Queue.add !start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun prel ->
        if not rel_done.(prel) then begin
          rel_done.(prel) <- true;
          let r = p.rels.(prel) in
          let from_src = r.r_src = u in
          let w = if from_src then r.r_dst else r.r_src in
          if bound.(w) then steps := { prel; from_src; closes = true } :: !steps
          else begin
            bound.(w) <- true;
            steps := { prel; from_src; closes = false } :: !steps;
            Queue.add w queue
          end
        end)
      (Pattern.incident_rels p u)
  done;
  Array.of_list (List.rev !steps)

let node_ok g (np : Pattern.node_pat) nd =
  Array.for_all (fun l -> Graph.node_has_label g nd l) np.n_labels

let one_walk rng t (p : Pattern.t) steps =
  let g = t.graph in
  let n = Pattern.node_count p in
  let m = Pattern.rel_count p in
  let node_of = Array.make n (-1) in
  let rel_of = Array.make m (-1) in
  let rel_used r = Array.exists (fun x -> x = r) rel_of in
  let weight = ref 1.0 in
  let ok = ref true in
  Array.iteri
    (fun i { prel; from_src; closes } ->
      if !ok then begin
        let rp = p.rels.(prel) in
        let typ = rp.r_types.(0) in
        if i = 0 then begin
          (* seed: uniform relationship of the required type *)
          let pool = t.by_type.(typ) in
          if Array.length pool = 0 then ok := false
          else begin
            let r = pool.(Lpp_util.Rng.int rng (Array.length pool)) in
            weight := !weight *. float_of_int (Array.length pool);
            let s = Graph.rel_src g r and d = Graph.rel_dst g r in
            if node_ok g p.nodes.(rp.r_src) s && node_ok g p.nodes.(rp.r_dst) d
            then begin
              rel_of.(prel) <- r;
              node_of.(rp.r_src) <- s;
              node_of.(rp.r_dst) <- d
            end
            else ok := false
          end
        end
        else begin
          let u = node_of.(if from_src then rp.r_src else rp.r_dst) in
          let w_pat = if from_src then rp.r_dst else rp.r_src in
          let iter_incident f =
            if from_src then Graph.iter_out_rels g u f
            else Graph.iter_in_rels g u f
          in
          (* two passes over the CSR slice instead of a filtered list: count
             the qualifying candidates, draw once (same single [Rng.int] a
             [pick_list] would make), then scan to the drawn index *)
          let n_cand = ref 0 in
          iter_incident (fun r ->
              if Graph.rel_type g r = typ && not (rel_used r) then incr n_cand);
          if !n_cand = 0 then ok := false
          else begin
            let k = Lpp_util.Rng.int rng !n_cand in
            let seen = ref 0 and picked = ref (-1) in
            iter_incident (fun r ->
                if Graph.rel_type g r = typ && not (rel_used r) then begin
                  if !seen = k then picked := r;
                  incr seen
                end);
            let r = !picked in
            weight := !weight *. float_of_int !n_cand;
            let other = if from_src then Graph.rel_dst g r else Graph.rel_src g r in
            if closes then begin
              if node_of.(w_pat) = other then rel_of.(prel) <- r
              else ok := false
            end
            else if node_ok g p.nodes.(w_pat) other then begin
              rel_of.(prel) <- r;
              node_of.(w_pat) <- other
            end
            else ok := false
          end
        end
      end)
    steps;
  if !ok then !weight else 0.0

let estimate ~rng t config (p : Pattern.t) =
  if not (supports p) then 0.0
  else begin
    let steps = walk_order p in
    let n = walks t config in
    let sum = ref 0.0 in
    for _ = 1 to n do
      sum := !sum +. one_walk rng t p steps
    done;
    !sum /. float_of_int n
  end

type interval = {
  mean : float;
  stderr : float;
  ci_low : float;
  ci_high : float;
  n_walks : int;
}

(* Sampled ground truth for the large tier: each walk is an unbiased
   Horvitz–Thompson draw of the cardinality, so the running mean converges to
   the true count and Welford's recurrence gives its variance without storing
   the samples. The CI is the CLT 95% band, clamped at 0 (counts cannot be
   negative). *)
let estimate_interval ~rng t ~walks:n (p : Pattern.t) =
  if not (supports p) || n <= 0 then None
  else begin
    let steps = walk_order p in
    let mean = ref 0.0 and m2 = ref 0.0 in
    for i = 1 to n do
      let x = one_walk rng t p steps in
      let delta = x -. !mean in
      mean := !mean +. (delta /. float_of_int i);
      m2 := !m2 +. (delta *. (x -. !mean))
    done;
    let stderr =
      if n < 2 then 0.0
      else sqrt (!m2 /. float_of_int (n - 1) /. float_of_int n)
    in
    let half = 1.96 *. stderr in
    Some
      {
        mean = !mean;
        stderr;
        ci_low = Float.max 0.0 (!mean -. half);
        ci_high = !mean +. half;
        n_walks = n;
      }
  end

(* The rel-id pools double as the database's type-partitioned relationship
   store (Neo4j has the equivalent natively), so — like Park et al. — we only
   charge WJ for the per-type directory: one pointer, one count and one
   cursor-state entry per relationship type. *)
let memory_bytes t =
  Array.length t.by_type * 3 * Lpp_util.Mem_size.word
