(** Catalog consistency checker: verifies the invariants the estimator's
    accuracy argument relies on (Section 4's statistics definitions).

    Codes (stable), all located at [Stats _]:
    - [LPP-C001] (Error): NC negativity or [nc ℓ > NC(✱)].
    - [LPP-C002] (Error): wildcard dominance violated — an RC entry exceeds
      one of its partial-wildcard projections
      ([rc(ℓ₁,t,ℓ₂) ≤ rc(*,t,ℓ₂)], [≤ rc(ℓ₁,t,*)], [≤ rc(ℓ₁,*,ℓ₂)]).
    - [LPP-C003] (Error): cross-table totals disagree (per-type totals vs.
      relationship total vs. fully-wildcarded RC projections).
    - [LPP-C004] (Error): negative RC entry.
    - [LPP-C005] (Error): label hierarchy contains a cycle (two labels that
      are strict sublabels of each other).
    - [LPP-C006] (Error): sublabel count monotonicity violated —
      [a ⊑ b] but [nc a > nc b].
    - [LPP-C007] (Error): partition malformed (member out of range, label in
      two clusters or in none, [cluster_of] inconsistent with [clusters]).
    - [LPP-C008] (Warning): hierarchy/partition label dimension differs from
      the catalog's label count.
    - [LPP-C009] (Error): a frozen catalog answers differently from its own
      mutable tables (checked over every occupied entry plus a deterministic
      strided sample of the key space, in all three directions).

    A catalog fresh from [Catalog.build]/[build_with] (frozen or not) passes
    with no diagnostics. Per-code output is capped; a final [Hint] reports
    how many further findings were suppressed. *)

val run : Lpp_stats.Catalog.t -> Diagnostic.t list
