type sequence_report = {
  seq : Seq_lint.t;
  soundness : Soundness.t option;
}

let check_sequence ?config ~catalog alg =
  let seq = Seq_lint.run ~catalog alg in
  let soundness =
    match config with
    | Some config -> Some (Soundness.verify config catalog alg)
    | None -> None
  in
  { seq; soundness }

let report_diagnostics r =
  r.seq.Seq_lint.diagnostics
  @ match r.soundness with
    | Some s -> s.Soundness.diagnostics
    | None -> []

let provably_zero ~catalog alg =
  let seq = Seq_lint.run ~catalog alg in
  seq.Seq_lint.well_formed && seq.Seq_lint.provably_zero
