(** Front end over the three analysis passes, as consumed by the [lpp lint]
    subcommand and the harness. *)

type sequence_report = {
  seq : Seq_lint.t;
  soundness : Soundness.t option;
      (** present when a configuration was supplied *)
}

val check_sequence :
  ?config:Lpp_core.Config.t ->
  catalog:Lpp_stats.Catalog.t ->
  Lpp_pattern.Algebra.t ->
  sequence_report

val report_diagnostics : sequence_report -> Diagnostic.t list
(** Lint and soundness diagnostics of a report, in pass order. *)

val provably_zero : catalog:Lpp_stats.Catalog.t -> Lpp_pattern.Algebra.t -> bool
(** True when the sequence is structurally well-formed and some prefix is
    provably empty (see {!Seq_lint}) — the contract behind the opt-in
    zero-short-circuit in [Lpp_harness.Technique.ours]: the {e true}
    cardinality of such a sequence is exactly 0. Malformed sequences are
    never short-circuited (the estimator's behaviour on them, typically an
    exception, is preserved). *)
