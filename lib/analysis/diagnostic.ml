type severity = Error | Warning | Hint

type location =
  | Op of int
  | Stats of string
  | Sequence
  | Src of { file : string; line : int }

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

let make severity ~code ~loc message = { severity; code; loc; message }

let makef severity ~code ~loc fmt =
  Format.kasprintf (fun message -> make severity ~code ~loc message) fmt

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let is_error d = d.severity = Error

let has_errors ds = List.exists is_error ds

let count sev ds =
  List.fold_left (fun acc d -> if d.severity = sev then acc + 1 else acc) 0 ds

let loc_rank = function Op i -> i | Stats _ | Sequence | Src _ -> max_int

(* Src diagnostics additionally order by (file, line); every other location
   compares equal here so the stable sort preserves incoming order. *)
let src_key = function Src { file; line } -> (file, line) | _ -> ("", 0)

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare (loc_rank a.loc) (loc_rank b.loc) with
      | 0 -> compare (src_key a.loc) (src_key b.loc)
      | c -> c)
    ds

let pp_loc ppf = function
  | Op i -> Format.fprintf ppf "op %d" i
  | Stats s -> Format.fprintf ppf "stats:%s" s
  | Sequence -> Format.fprintf ppf "sequence"
  | Src { file; line } ->
      if line = 0 then Format.fprintf ppf "%s" file
      else Format.fprintf ppf "%s:%d" file line

let pp ppf d =
  Format.fprintf ppf "[%s] %s @@ %a: %s"
    (severity_string d.severity)
    d.code pp_loc d.loc d.message

(* One escaping implementation for the whole repo: Lpp_util.Json. *)
let json_escape = Lpp_util.Json.escape

let to_json d =
  let loc_field =
    match d.loc with
    | Op i -> Printf.sprintf "\"op\":%d," i
    | Stats s -> Printf.sprintf "\"stats\":\"%s\"," (json_escape s)
    | Sequence -> ""
    | Src { file; line } ->
        Printf.sprintf "\"file\":\"%s\",\"line\":%d," (json_escape file) line
  in
  Printf.sprintf "{\"severity\":\"%s\",\"code\":\"%s\",%s\"message\":\"%s\"}"
    (severity_string d.severity)
    (json_escape d.code) loc_field (json_escape d.message)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"
