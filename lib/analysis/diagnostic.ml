type severity = Error | Warning | Hint

type location = Op of int | Stats of string | Sequence

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

let make severity ~code ~loc message = { severity; code; loc; message }

let makef severity ~code ~loc fmt =
  Format.kasprintf (fun message -> make severity ~code ~loc message) fmt

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let is_error d = d.severity = Error

let has_errors ds = List.exists is_error ds

let count sev ds =
  List.fold_left (fun acc d -> if d.severity = sev then acc + 1 else acc) 0 ds

let loc_rank = function Op i -> i | Stats _ | Sequence -> max_int

let sort ds = List.stable_sort (fun a b -> compare (loc_rank a.loc) (loc_rank b.loc)) ds

let pp_loc ppf = function
  | Op i -> Format.fprintf ppf "op %d" i
  | Stats s -> Format.fprintf ppf "stats:%s" s
  | Sequence -> Format.fprintf ppf "sequence"

let pp ppf d =
  Format.fprintf ppf "[%s] %s @@ %a: %s"
    (severity_string d.severity)
    d.code pp_loc d.loc d.message

(* RFC 8259 string escaping; the repo deliberately has no JSON dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let loc_field =
    match d.loc with
    | Op i -> Printf.sprintf "\"op\":%d," i
    | Stats s -> Printf.sprintf "\"stats\":\"%s\"," (json_escape s)
    | Sequence -> ""
  in
  Printf.sprintf "{\"severity\":\"%s\",\"code\":\"%s\",%s\"message\":\"%s\"}"
    (severity_string d.severity)
    (json_escape d.code) loc_field (json_escape d.message)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"
