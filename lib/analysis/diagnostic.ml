type severity = Error | Warning | Hint

type location = Op of int | Stats of string | Sequence

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

let make severity ~code ~loc message = { severity; code; loc; message }

let makef severity ~code ~loc fmt =
  Format.kasprintf (fun message -> make severity ~code ~loc message) fmt

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let is_error d = d.severity = Error

let has_errors ds = List.exists is_error ds

let count sev ds =
  List.fold_left (fun acc d -> if d.severity = sev then acc + 1 else acc) 0 ds

let loc_rank = function Op i -> i | Stats _ | Sequence -> max_int

let sort ds = List.stable_sort (fun a b -> compare (loc_rank a.loc) (loc_rank b.loc)) ds

let pp_loc ppf = function
  | Op i -> Format.fprintf ppf "op %d" i
  | Stats s -> Format.fprintf ppf "stats:%s" s
  | Sequence -> Format.fprintf ppf "sequence"

let pp ppf d =
  Format.fprintf ppf "[%s] %s @@ %a: %s"
    (severity_string d.severity)
    d.code pp_loc d.loc d.message

(* One escaping implementation for the whole repo: Lpp_util.Json. *)
let json_escape = Lpp_util.Json.escape

let to_json d =
  let loc_field =
    match d.loc with
    | Op i -> Printf.sprintf "\"op\":%d," i
    | Stats s -> Printf.sprintf "\"stats\":\"%s\"," (json_escape s)
    | Sequence -> ""
  in
  Printf.sprintf "{\"severity\":\"%s\",\"code\":\"%s\",%s\"message\":\"%s\"}"
    (severity_string d.severity)
    (json_escape d.code) loc_field (json_escape d.message)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"
