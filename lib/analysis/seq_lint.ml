open Lpp_pattern
open Lpp_stats

type t = {
  diagnostics : Diagnostic.t list;
  well_formed : bool;
  provably_zero : bool;
  zero_at : int option;
}

let code_of_violation : Algebra.Dataflow.violation -> string = function
  | Node_var_out_of_range _ -> "LPP-A001"
  | Node_var_unbound _ -> "LPP-A002"
  | Node_var_rebound _ -> "LPP-A003"
  | Rel_var_out_of_range _ -> "LPP-A004"
  | Rel_var_unbound _ -> "LPP-A005"
  | Rel_var_rebound _ -> "LPP-A006"
  | Negative_label _ -> "LPP-A007"
  | Empty_prop_selection -> "LPP-A008"
  | Invalid_hop_range _ -> "LPP-A009"
  | Merge_self _ -> "LPP-A010"

(* The cycle a Merge_on closes, recomputed from the sequence itself: treat
   every Merge_on (except the one under scrutiny) as an alias merge→keep,
   project all Expand edges through the aliases, and measure the BFS distance
   between the aliased endpoints of the scrutinised merge. That distance is
   the length of the cycle the merge closes — the number Planner stores in
   [cycle_len] (the triangle-aware estimator fires on 3). *)
let check_cycles (alg : Algebra.t) add =
  let nv = alg.node_vars in
  let in_range v = v >= 0 && v < nv in
  let merges = ref [] and expands = ref [] in
  Array.iteri
    (fun i op ->
      match (op : Algebra.op) with
      | Merge_on { keep; merge; cycle_len }
        when in_range keep && in_range merge && keep <> merge ->
          merges := (i, keep, merge, cycle_len) :: !merges
      | Expand { src_var; dst_var; _ }
        when in_range src_var && in_range dst_var ->
          expands := (src_var, dst_var) :: !expands
      | _ -> ())
    alg.ops;
  let merges = List.rev !merges and expands = List.rev !expands in
  let n_merges = List.length merges in
  List.iter
    (fun (i, keep, merge, cycle_len) ->
      let resolve v =
        let v = ref v and steps = ref 0 and live = ref true in
        while !live && !steps <= n_merges do
          match List.find_opt (fun (j, _, m, _) -> j <> i && m = !v) merges with
          | Some (_, k, _, _) ->
              v := k;
              incr steps
          | None -> live := false
        done;
        !v
      in
      let a = resolve keep and b = resolve merge in
      let adj = Array.make nv [] in
      List.iter
        (fun (s, d) ->
          let s = resolve s and d = resolve d in
          if in_range s && in_range d then begin
            adj.(s) <- d :: adj.(s);
            adj.(d) <- s :: adj.(d)
          end)
        expands;
      let actual =
        if not (in_range a && in_range b) then None
        else begin
          let dist = Array.make nv (-1) in
          dist.(a) <- 0;
          let q = Queue.create () in
          Queue.add a q;
          while not (Queue.is_empty q) do
            let x = Queue.pop q in
            List.iter
              (fun y ->
                if dist.(y) < 0 then begin
                  dist.(y) <- dist.(x) + 1;
                  Queue.add y q
                end)
              adj.(x)
          done;
          if dist.(b) < 0 then None else Some dist.(b)
        end
      in
      match (cycle_len, actual) with
      | Some k, Some d when k <> d ->
          add
            (Diagnostic.makef Warning ~code:"LPP-A120" ~loc:(Op i)
               "cycle_len %d but this merge closes a cycle of length %d" k d)
      | Some k, None ->
          add
            (Diagnostic.makef Warning ~code:"LPP-A120" ~loc:(Op i)
               "cycle_len %d but the merged variables are not connected by \
                Expands" k)
      | None, Some d when d > 0 ->
          add
            (Diagnostic.makef Hint ~code:"LPP-A121" ~loc:(Op i)
               "closes a cycle of length %d without cycle_len metadata" d)
      | _ -> ())
    merges

let run ?catalog (alg : Algebra.t) =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let zero_at = ref None in
  let mark_zero i = if !zero_at = None then zero_at := Some i in
  let hierarchy = Option.map Catalog.hierarchy catalog in
  let partition = Option.map Catalog.partition catalog in
  let hier_sub a b =
    (* a strict sublabel of b, guarded against ids unknown to the catalog *)
    match hierarchy with
    | Some h ->
        a >= 0 && b >= 0
        && a < Label_hierarchy.label_count h
        && b < Label_hierarchy.label_count h
        && Label_hierarchy.is_strict_sublabel h a b
    | None -> false
  in
  let part_disjoint a b =
    match partition with
    | Some d ->
        a >= 0 && b >= 0
        && a < Label_partition.label_count d
        && b < Label_partition.label_count d
        && Label_partition.disjoint d a b
    | None -> false
  in
  let nvars = max alg.node_vars 1 and rvars = max alg.rel_vars 1 in
  let node_props_seen = Array.make nvars [] in
  let rel_props_seen = Array.make rvars [] in
  let got_nodes = ref false in
  let observe ~index (op : Algebra.op) before =
    match op with
    | Get_nodes _ ->
        if !got_nodes then
          add
            (Diagnostic.makef Warning ~code:"LPP-A130" ~loc:(Op index)
               "a second GetNodes overwrites the running cardinality \
                (Algorithm 1 sets it, it does not multiply)");
        got_nodes := true
    | Label_selection { var; label } when label >= 0 ->
        let prior = Algebra.Dataflow.labels_of before var in
        if List.mem label prior then
          add
            (Diagnostic.makef Hint ~code:"LPP-A111" ~loc:(Op index)
               "label %d already selected for node var %d" label var)
        else begin
          (match List.find_opt (fun l -> hier_sub l label) prior with
          | Some sub ->
              add
                (Diagnostic.makef Hint ~code:"LPP-A110" ~loc:(Op index)
                   "label %d is implied by already-selected sublabel %d" label
                   sub)
          | None -> ());
          (match List.find_opt (fun l -> part_disjoint label l) prior with
          | Some other ->
              add
                (Diagnostic.makef Error ~code:"LPP-A101" ~loc:(Op index)
                   "labels %d and %d are in disjoint partition clusters: no \
                    node carries both"
                   other label);
              mark_zero index
          | None -> ())
        end;
        (match catalog with
        | Some c when Catalog.nc c label = 0 ->
            add
              (Diagnostic.makef Error ~code:"LPP-A102" ~loc:(Op index)
                 "no node carries label %d (catalog count 0)" label);
            mark_zero index
        | _ -> ())
    | Label_selection _ -> ()
    | Prop_selection { kind; var; props } ->
        let seen =
          match kind with
          | Node_var when var >= 0 && var < nvars -> Some node_props_seen
          | Rel_var when var >= 0 && var < rvars -> Some rel_props_seen
          | _ -> None
        in
        let dup_keys = ref [] in
        Array.iteri
          (fun j (key, pred) ->
            let within =
              Array.exists
                (fun (k', _) -> k' = key)
                (Array.sub props 0 j)
            in
            let across =
              match seen with
              | Some tbl -> List.mem (key, pred) tbl.(var)
              | None -> false
            in
            if (within || across) && not (List.mem key !dup_keys) then begin
              dup_keys := key :: !dup_keys;
              add
                (Diagnostic.makef Hint ~code:"LPP-A112" ~loc:(Op index)
                   "duplicate predicate on property key %d of %s var %d" key
                   (match kind with Node_var -> "node" | Rel_var -> "rel")
                   var)
            end)
          props;
        (match seen with
        | Some tbl -> tbl.(var) <- Array.to_list props @ tbl.(var)
        | None -> ())
    | Expand { types; _ } -> (
        match catalog with
        | Some c when Array.length types > 0 ->
            let zero ty = Catalog.rel_type_total c ty = 0 in
            if Array.for_all zero types then begin
              add
                (Diagnostic.makef Error ~code:"LPP-A103" ~loc:(Op index)
                   "no relationship has any of the %d allowed types (all \
                    catalog counts 0)"
                   (Array.length types));
              mark_zero index
            end
            else
              Array.iter
                (fun ty ->
                  if zero ty then
                    add
                      (Diagnostic.makef Hint ~code:"LPP-A113" ~loc:(Op index)
                         "relationship type %d never occurs in the data" ty))
                types
        | _ -> ())
    | Merge_on { keep; merge; cycle_len = _ } -> (
        let lk = Algebra.Dataflow.labels_of before keep in
        let lm = Algebra.Dataflow.labels_of before merge in
        let conflict =
          List.find_map
            (fun a ->
              List.find_map
                (fun b -> if part_disjoint a b then Some (a, b) else None)
                lm)
            lk
        in
        match conflict with
        | Some (a, b) ->
            add
              (Diagnostic.makef Error ~code:"LPP-A104" ~loc:(Op index)
                 "merge unifies variables with disjoint labels %d and %d" a b);
            mark_zero index
        | None -> ())
  in
  let violations = Algebra.Dataflow.scan ~observe alg in
  List.iter
    (fun (i, v) ->
      add
        (Diagnostic.make Error
           ~code:(code_of_violation v)
           ~loc:(Op i)
           (Algebra.Dataflow.message v)))
    violations;
  check_cycles alg add;
  {
    diagnostics = Diagnostic.sort (List.rev !acc);
    well_formed = violations = [];
    provably_zero = !zero_at <> None;
    zero_at = !zero_at;
  }
