(** Structured diagnostics shared by every analysis pass.

    A diagnostic carries a severity, a stable machine-readable code (e.g.
    ["LPP-A003"]; the [A] family is the sequence lint, [C] the catalog
    checker, [S] the soundness verifier), a location — an operator index
    into the sequence, a named statistics component, or the sequence as a
    whole — and a human-readable message. Codes are part of the tool's
    contract: tests and downstream tooling match on them, so existing codes
    never change meaning. *)

type severity = Error | Warning | Hint

type location =
  | Op of int  (** operator index in the analysed sequence *)
  | Stats of string  (** catalog component, e.g. ["hierarchy"] *)
  | Sequence  (** the sequence (or catalog) as a whole *)
  | Src of { file : string; line : int }
      (** a position in one of the project's own source files (the source
          linter, [D] codes); [line] is 1-based, 0 = whole file *)

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

val make : severity -> code:string -> loc:location -> string -> t

val makef :
  severity ->
  code:string ->
  loc:location ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_string : severity -> string

val is_error : t -> bool

val has_errors : t list -> bool

val count : severity -> t list -> int

val sort : t list -> t list
(** Stable sort by location: operator diagnostics in op order first, then
    statistics/whole-sequence ones; source diagnostics order by file, then
    line. Within one location the incoming order is preserved. *)

val pp : Format.formatter -> t -> unit
(** One line: [[severity] CODE @ loc: message]. *)

val json_escape : string -> string
(** RFC 8259 string escaping (no surrounding quotes). *)

val to_json : t -> string
(** One JSON object, e.g.
    [{"severity":"error","code":"LPP-A101","op":3,"message":"..."}] — the
    location key is ["op"] (int), ["stats"] (string), or ["file"]/["line"]
    for source diagnostics, and is absent for whole-sequence diagnostics.
    Strings are escaped per RFC 8259. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects. *)
