open Lpp_pgraph
open Lpp_pattern
open Lpp_stats

type interval = { lo : float; hi : float }

type t = {
  intervals : interval array;
  diagnostics : Diagnostic.t list;
  sound : bool;
  counterexample : int option;
}

let fi = float_of_int

let safe_div num den = if den <= 0.0 then 0.0 else num /. den

(* Outward rounding slack: the estimator sums and multiplies at most a few
   million IEEE-754 terms per operator, so widening every derived bound by a
   relative 1e-9 dominates the accumulated (1 + ulp)^n reordering error. *)
let up x = x *. 1.000000001

let mul_up a b = up (a *. b)

let verify (config : Lpp_core.Config.t) cat (alg : Algebra.t) =
  match Algebra.validate alg with
  | Error msg ->
      {
        intervals = [||];
        diagnostics =
          [
            Diagnostic.makef Error ~code:"LPP-S003" ~loc:Sequence
              "sequence is malformed (%s): nothing to verify" msg;
          ];
        sound = false;
        counterexample = None;
      }
  | Ok () ->
      let labels = Catalog.label_count cat in
      let diags = ref [] in
      let counterexample = ref None in
      let fail i d =
        diags := d :: !diags;
        if !counterexample = None then counterexample := Some i
      in
      (* Upper bound on one hop's expansion factor: representatives carry
         distinct labels with probabilities ≤ 1, so the factor is at most the
         sum of every label's (unrestricted) mean degree plus the wildcard's.
         Each deg term is the estimator's own float expression. *)
      let expand_bound ~dir ~types =
        let deg node base =
          safe_div (fi (Catalog.rc cat ~dir ~node ~types ~other:None)) (fi base)
        in
        let sum = ref 0.0 in
        for l = 0 to labels - 1 do
          sum := !sum +. Float.max 0.0 (deg (Some l) (Catalog.nc cat l))
        done;
        up (!sum +. Float.max 0.0 (deg None (Catalog.nc_star cat)))
      in
      (* Upper bound on a Merge_on reduction: per representative pair
         pk·pm/NC(ℓ) ≤ 1/NC(ℓ) over distinct labels, plus the unlabeled
         1/NC(✱) term. *)
      let merge_bound =
        lazy
          begin
            let sum = ref 0.0 in
            for l = 0 to labels - 1 do
              let c = Catalog.nc cat l in
              if c > 0 then sum := !sum +. (1.0 /. fi c)
            done;
            let ns = Catalog.nc_star cat in
            up (!sum +. (if ns > 0 then 1.0 /. fi ns else 0.0))
          end
      in
      let n_ops = Array.length alg.ops in
      let intervals = Array.make n_ops { lo = 0.0; hi = 0.0 } in
      let chi = ref 0.0 in
      (* Bound on safe_div(card, last_expand_factor) — the wedge count the
         triangle-aware merge re-bases on. Established at each Expand as
         up(pre-Expand χ) + 1 (the absolute +1 absorbs the subnormal corner
         where a quotient's rounding error is not relative), then carried
         through every subsequent multiplier. *)
      let wedge_hi = ref 0.0 in
      let last_dir = ref Direction.Out in
      let bump_wedge m =
        wedge_hi :=
          (if Float.is_finite !wedge_hi then mul_up !wedge_hi m
           else Float.infinity)
      in
      Array.iteri
        (fun i op ->
          let lo = ref 0.0 in
          (match (op : Algebra.op) with
          | Get_nodes _ ->
              let total = Float.max 0.0 (fi (Catalog.nc_star cat)) in
              chi := total;
              lo := total;
              wedge_hi := total
          | Label_selection { label; _ } ->
              if label < 0 || label >= labels then begin
                chi := 0.0;
                wedge_hi := 0.0
              end
              else begin
                chi := mul_up !chi 1.0;
                bump_wedge 1.0
              end
          | Prop_selection _ -> begin
              match config.property_mode with
              | Use_stats ->
                  chi := mul_up !chi 1.0;
                  bump_wedge 1.0
              | Fixed f ->
                  if not (Float.is_finite f) || f < 0.0 || f > 1.0 then
                    fail i
                      (Diagnostic.makef Error ~code:"LPP-S002" ~loc:(Op i)
                         "fixed property selectivity %g is outside [0, 1]" f);
                  if Float.is_finite f && f >= 0.0 then begin
                    chi := mul_up !chi f;
                    bump_wedge f
                  end
                  else begin
                    (* negative or NaN factor: the estimator's end-of-op clamp
                       leaves 0 (negative) or NaN (unsound anyway) *)
                    chi := 0.0;
                    wedge_hi := 0.0
                  end
            end
          | Expand { types; dir; hops; _ } ->
              last_dir := dir;
              let u = expand_bound ~dir ~types in
              let factor =
                match hops with
                | None -> u
                | Some (lo_h, hi_h) ->
                    let total = ref 0.0 and pow = ref 1.0 in
                    for k = 1 to hi_h do
                      pow := mul_up !pow u;
                      if k >= lo_h then total := up (!total +. !pow)
                    done;
                    !total
              in
              wedge_hi := up !chi +. 1.0;
              chi := mul_up !chi factor
          | Merge_on { cycle_len; _ } ->
              if config.use_triangles && cycle_len = Some 3 then begin
                let ts = Catalog.triangles cat in
                let rate =
                  match !last_dir with
                  | Direction.Out | Direction.In ->
                      ts.Triangle_stats.rate_directed
                  | Direction.Both -> ts.Triangle_stats.rate_undirected
                in
                if not (Float.is_finite rate) || rate < 0.0 then begin
                  fail i
                    (Diagnostic.makef Error ~code:"LPP-S004" ~loc:(Op i)
                       "triangle closure rate %g is negative or not finite"
                       rate);
                  chi := Float.max 0.0 rate
                end
                else chi := up (mul_up !wedge_hi rate);
                (* the re-based cardinality has no usable relation to
                   last_expand_factor any more *)
                wedge_hi := Float.infinity
              end
              else begin
                let m = Lazy.force merge_bound in
                chi := mul_up !chi m;
                bump_wedge m
              end);
          chi := Float.max !chi 0.0;
          if not (Float.is_finite !chi) then begin
            if
              not
                (List.exists
                   (fun (d : Diagnostic.t) -> d.code = "LPP-S001")
                   !diags)
            then
              fail i
                (Diagnostic.makef Error ~code:"LPP-S001" ~loc:(Op i)
                   "cardinality upper bound overflows: finiteness is not \
                    provable from this operator on");
            chi := Float.infinity
          end;
          intervals.(i) <- { lo = !lo; hi = !chi })
        alg.ops;
      let diagnostics = Diagnostic.sort (List.rev !diags) in
      {
        intervals;
        diagnostics;
        sound = diagnostics = [];
        counterexample = !counterexample;
      }
