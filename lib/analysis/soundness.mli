(** Estimate-soundness verifier: an interval pass mirroring [Estimator]'s
    arithmetic for one sequence × configuration × catalog.

    For each operator it derives a conservative interval guaranteed to
    contain the estimator's running cardinality after that operator, using
    only the catalog (never running the estimator): [Get_nodes] pins the
    cardinality to NC(✱); selections multiply by at most 1; an [Expand]
    multiplies by at most Σ_ℓ deg(ℓ) + deg(✱) (representatives carry
    distinct labels with probabilities ≤ 1); a [Merge_on] by at most
    Σ_{NC(ℓ)>0} 1/NC(ℓ) + 1/NC(✱); the triangle-aware merge re-bases on a
    tracked wedge-count bound times the closure rate. Every bound is widened
    by a relative slack (plus an absolute term where float rounding can step
    over a product) so the intervals hold for the estimator's actual
    floating-point evaluation, not just the real-valued one.

    If every upper bound stays finite, the verdict [sound] certifies: the
    estimate is finite and ≥ 0, and every propagated label probability stays
    in [0, 1] — probabilities are structurally clamped ([Label_probs]) and,
    with all magnitudes bounded, no overflow can manufacture the NaN that
    would escape the clamp.

    Codes (stable):
    - [LPP-S001] (Error): finiteness unprovable — the cardinality upper
      bound overflows at the reported op (counterexample).
    - [LPP-S002] (Error): configured fixed property selectivity outside
      [0, 1] or not finite.
    - [LPP-S003] (Error): sequence is structurally malformed; nothing to
      verify.
    - [LPP-S004] (Error): triangle closure rate is negative or not finite.

    Assumption, stated rather than checked here: [Prop_stats.selectivity]
    returns values in [0, 1] (they are ratios of counted occurrences). *)

type interval = { lo : float; hi : float }

type t = {
  intervals : interval array;
      (** per-op bounds on the running cardinality; empty on [LPP-S003] *)
  diagnostics : Diagnostic.t list;
  sound : bool;
  counterexample : int option;
      (** first op where the proof fails, when [not sound] *)
}

val verify :
  Lpp_core.Config.t -> Lpp_stats.Catalog.t -> Lpp_pattern.Algebra.t -> t
