open Lpp_stats

(* Findings of one family are capped: a thoroughly corrupted catalog would
   otherwise produce one diagnostic per table entry. *)
let cap = 12

let sol = function None -> "*" | Some l -> string_of_int l

let run cat =
  let acc = ref [] in
  let counts = Hashtbl.create 16 in
  let add sev ~code ~loc msg =
    let n = Option.value ~default:0 (Hashtbl.find_opt counts code) in
    Hashtbl.replace counts code (n + 1);
    if n < cap then acc := Diagnostic.make sev ~code ~loc msg :: !acc
  in
  let error = add Diagnostic.Error and warn = add Diagnostic.Warning in
  let labels = Catalog.label_count cat in
  let types = Catalog.type_count cat in
  let nc_star = Catalog.nc_star cat in
  (* --- node counts --- *)
  if nc_star < 0 then
    error ~code:"LPP-C001" ~loc:(Stats "nc")
      (Printf.sprintf "NC(*) is negative: %d" nc_star);
  for l = 0 to labels - 1 do
    let n = Catalog.nc cat l in
    if n < 0 then
      error ~code:"LPP-C001" ~loc:(Stats "nc")
        (Printf.sprintf "NC(%d) is negative: %d" l n)
    else if n > nc_star then
      error ~code:"LPP-C001" ~loc:(Stats "nc")
        (Printf.sprintf "NC(%d) = %d exceeds NC(*) = %d" l n nc_star)
  done;
  (* --- relationship counts: negativity and wildcard dominance --- *)
  let rc_u ~src ~typ ~dst =
    Catalog.rc_unfrozen cat ~dir:Lpp_pgraph.Direction.Out ~node:src
      ~types:(match typ with None -> [||] | Some ty -> [| ty |])
      ~other:dst
  in
  Catalog.iter_triples cat (fun ~src ~typ ~dst ~count ->
      if count < 0 then
        error ~code:"LPP-C004" ~loc:(Stats "rc")
          (Printf.sprintf "rc(%s,%s,%s) is negative: %d" (sol src) (sol typ)
             (sol dst) count);
      let dominated ~by:(s, ty, d) =
        let sup = rc_u ~src:s ~typ:ty ~dst:d in
        if count > sup then
          error ~code:"LPP-C002" ~loc:(Stats "rc")
            (Printf.sprintf
               "wildcard dominance violated: rc(%s,%s,%s) = %d > rc(%s,%s,%s) \
                = %d"
               (sol src) (sol typ) (sol dst) count (sol s) (sol ty) (sol d) sup)
      in
      if src <> None then dominated ~by:(None, typ, dst);
      if dst <> None then dominated ~by:(src, typ, None);
      if typ <> None then dominated ~by:(src, None, dst));
  (* --- cross-table totals --- *)
  let rel_total = Catalog.rel_total cat in
  let type_sum = ref 0 in
  for ty = 0 to types - 1 do
    type_sum := !type_sum + Catalog.rel_type_total cat ty
  done;
  if !type_sum <> rel_total then
    error ~code:"LPP-C003" ~loc:(Stats "totals")
      (Printf.sprintf "per-type totals sum to %d but the relationship total \
                       is %d" !type_sum rel_total);
  let wild_all = rc_u ~src:None ~typ:None ~dst:None in
  if wild_all <> rel_total then
    error ~code:"LPP-C003" ~loc:(Stats "totals")
      (Printf.sprintf "rc(*,*,*) = %d but the relationship total is %d"
         wild_all rel_total);
  for ty = 0 to types - 1 do
    let w = rc_u ~src:None ~typ:(Some ty) ~dst:None in
    let t = Catalog.rel_type_total cat ty in
    if w <> t then
      error ~code:"LPP-C003" ~loc:(Stats "totals")
        (Printf.sprintf "rc(*,%d,*) = %d but the type total is %d" ty w t)
  done;
  (* --- label hierarchy: acyclicity and count monotonicity --- *)
  let h = Catalog.hierarchy cat in
  let hl = Label_hierarchy.label_count h in
  if hl <> labels then
    warn ~code:"LPP-C008" ~loc:(Stats "hierarchy")
      (Printf.sprintf "hierarchy covers %d labels, catalog has %d" hl labels);
  for a = 0 to hl - 1 do
    for b = a + 1 to hl - 1 do
      if
        Label_hierarchy.is_strict_sublabel h a b
        && Label_hierarchy.is_strict_sublabel h b a
      then
        error ~code:"LPP-C005" ~loc:(Stats "hierarchy")
          (Printf.sprintf "hierarchy cycle: labels %d and %d are strict \
                           sublabels of each other" a b)
    done
  done;
  let n = min hl labels in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if
        a <> b
        && Label_hierarchy.is_strict_sublabel h a b
        && Catalog.nc cat a > Catalog.nc cat b
      then
        error ~code:"LPP-C006" ~loc:(Stats "hierarchy")
          (Printf.sprintf
             "label %d is a sublabel of %d but NC(%d) = %d > NC(%d) = %d" a b a
             (Catalog.nc cat a) b (Catalog.nc cat b))
    done
  done;
  (* --- partition well-formedness --- *)
  let d = Catalog.partition cat in
  let dl = Label_partition.label_count d in
  if dl <> labels then
    warn ~code:"LPP-C008" ~loc:(Stats "partition")
      (Printf.sprintf "partition covers %d labels, catalog has %d" dl labels);
  let seen = Array.make (max dl 1) (-1) in
  Array.iteri
    (fun c members ->
      Array.iter
        (fun l ->
          if l < 0 || l >= dl then
            error ~code:"LPP-C007" ~loc:(Stats "partition")
              (Printf.sprintf "cluster %d contains out-of-range label %d" c l)
          else begin
            if seen.(l) >= 0 then
              error ~code:"LPP-C007" ~loc:(Stats "partition")
                (Printf.sprintf "label %d appears in clusters %d and %d" l
                   seen.(l) c)
            else seen.(l) <- c;
            if Label_partition.cluster_of d l <> c then
              error ~code:"LPP-C007" ~loc:(Stats "partition")
                (Printf.sprintf
                   "cluster_of %d = %d but label %d is listed in cluster %d" l
                   (Label_partition.cluster_of d l)
                   l c)
          end)
        members)
    (Label_partition.clusters d);
  for l = 0 to dl - 1 do
    if seen.(l) < 0 then
      error ~code:"LPP-C007" ~loc:(Stats "partition")
        (Printf.sprintf "label %d belongs to no cluster" l)
  done;
  (* --- frozen ≡ mutable --- *)
  if Catalog.is_frozen cat then begin
    let mismatch ~src ~typ ~dst =
      let tys = match typ with None -> [||] | Some ty -> [| ty |] in
      List.iter
        (fun dir ->
          let f = Catalog.rc cat ~dir ~node:src ~types:tys ~other:dst in
          let m = Catalog.rc_unfrozen cat ~dir ~node:src ~types:tys ~other:dst in
          if f <> m then
            error ~code:"LPP-C009" ~loc:(Stats "frozen")
              (Printf.sprintf
                 "frozen rc(%s,%s,%s) dir %s = %d but the mutable tables say \
                  %d"
                 (sol src) (sol typ) (sol dst)
                 (Format.asprintf "%a" Lpp_pgraph.Direction.pp dir)
                 f m))
        [ Lpp_pgraph.Direction.Out; Lpp_pgraph.Direction.In;
          Lpp_pgraph.Direction.Both ]
    in
    Catalog.iter_triples cat (fun ~src ~typ ~dst ~count:_ ->
        mismatch ~src ~typ ~dst);
    (* deterministic strided sweep of the key space, catching frozen entries
       with no mutable counterpart *)
    let stride dim = max 1 ((dim + 1 + 9) / 10) in
    let ls = stride labels and ts = stride types in
    let rec opts dim step v acc =
      if v >= dim then List.rev acc else opts dim step (v + step) (Some v :: acc)
    in
    let l_opts = None :: opts labels ls 0 [] in
    let t_opts = None :: opts types ts 0 [] in
    List.iter
      (fun src ->
        List.iter
          (fun typ -> List.iter (fun dst -> mismatch ~src ~typ ~dst) l_opts)
          t_opts)
      l_opts
  end;
  let out = Diagnostic.sort (List.rev !acc) in
  let suppressed = ref [] in
  Hashtbl.iter
    (fun code n -> if n > cap then suppressed := (code, n - cap) :: !suppressed)
    counts;
  out
  @ List.map
      (fun (code, extra) ->
        Diagnostic.makef Hint ~code:"LPP-C000" ~loc:Sequence
          "%d further %s findings suppressed" extra code)
      (List.sort compare !suppressed)
