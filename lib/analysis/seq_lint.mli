(** Sequence lint: semantic dataflow checks over an operator sequence.

    Built on [Algebra.Dataflow.scan]: structural well-formedness violations
    become [LPP-A001]–[LPP-A010] errors, and per-prefix state (bound
    variables, accumulated label sets) feeds the semantic checks. With a
    catalog the lint can prove a prefix empty — the result is then marked
    {e provably zero}: the true cardinality of the sequence is exactly 0,
    whatever the estimator computes for it.

    Codes (stable):
    - [LPP-A001]–[LPP-A010] (Error): structural, one per
      [Algebra.Dataflow.violation] constructor in declaration order.
    - [LPP-A101] (Error, zero): a variable selects two labels that
      [Label_partition] proves disjoint.
    - [LPP-A102] (Error, zero): selected label has catalog count 0 (unknown
      or unused label).
    - [LPP-A103] (Error, zero): every relationship type of an Expand has
      count 0.
    - [LPP-A104] (Error, zero): [Merge_on] unifies variables whose selected
      labels are provably disjoint.
    - [LPP-A110] (Hint): label selection implied by an already-selected
      strict sublabel.
    - [LPP-A111] (Hint): duplicate label selection on one variable.
    - [LPP-A112] (Hint): duplicate property predicate on one variable.
    - [LPP-A113] (Hint): some (not all) Expand types have count 0.
    - [LPP-A120] (Warning): [Merge_on cycle_len] disagrees with the cycle
      actually closed by the sequence's Expands.
    - [LPP-A121] (Hint): a closed cycle lacks [cycle_len] metadata.
    - [LPP-A130] (Warning): a second [Get_nodes] discards the running
      cardinality (Algorithm 1 sets, not multiplies). *)

type t = {
  diagnostics : Diagnostic.t list;  (** sorted by op index *)
  well_formed : bool;  (** no structural (A001–A010) violation *)
  provably_zero : bool;
      (** some prefix is provably empty: true cardinality is exactly 0 *)
  zero_at : int option;  (** first op index proving emptiness *)
}

val run : ?catalog:Lpp_stats.Catalog.t -> Lpp_pattern.Algebra.t -> t
(** Without a catalog only the structural, duplicate and cycle-metadata
    checks run (nothing is provably zero). *)
