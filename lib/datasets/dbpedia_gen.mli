(** Synthetic DBpedia-like knowledge graph (stand-in for DBpedia 3.6).

    What matters to the estimators — and what this generator reproduces — is
    DBpedia's statistical profile: a large ontology (≈140 classes in a tree of
    depth 4, so H_L height 5 with the virtual root), every entity carrying the
    common root label [Thing] plus its full ancestor chain (hence a single
    D_L component), many relationship types each with domain/range classes,
    Zipf-skewed class and type frequencies, and long-tailed property usage.
    Node/edge counts are reduced from 2.4M/7M to keep exact ground truth
    tractable (DESIGN.md §3). *)

val generate :
  ?entities:int ->
  ?classes:int ->
  ?rel_kinds:int ->
  ?props:bool ->
  seed:int ->
  unit ->
  Dataset.t
(** Defaults: 24_000 entities, 140 classes, 90 relationship types, yielding
    ≈24k nodes / ≈95k relationships. [props:false] (the Large tier, {!Scale})
    skips attaching properties while drawing the identical RNG stream. *)
