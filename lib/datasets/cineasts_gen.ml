open Lpp_pgraph
open Lpp_util

let hierarchy_pairs =
  [ ("Actor", "Person"); ("Director", "Person"); ("User", "Person") ]

let genres =
  [| "Drama"; "Comedy"; "Action"; "Thriller"; "Documentary"; "Romance";
     "Horror"; "SciFi" |]

let countries = [| "USA"; "UK"; "France"; "Germany"; "Japan"; "India" |]

let str s = Value.Str s

let int i = Value.Int i

let generate ?(movies = 2200) ?(props = true) ~seed () =
  let rng = Rng.create seed in
  let b = Graph_builder.create () in
  (* Whether to attach properties (off at the Large tier). All RNG draws
     happen either way, so the relationship structure is identical. *)
  let with_props = props in
  let n_people = movies * 2 in
  (* Professions overlap: some people act, some direct, some do both; a
     disjoint group are platform users who only rate and befriend. The
     profession flags live in flat bool arrays (not a per-person tuple list)
     so peak memory stays proportional to the packed graph. *)
  let person_acts = Array.make n_people false in
  let person_directs = Array.make n_people false in
  let person_user = Array.make n_people false in
  let person_ids =
    Array.init n_people (fun i ->
        let acts = Rng.coin rng 0.62 in
        let directs = Rng.coin rng (if acts then 0.06 else 0.22) in
        let is_user = (not acts) && (not directs) || Rng.coin rng 0.08 in
        person_acts.(i) <- acts;
        person_directs.(i) <- directs;
        person_user.(i) <- is_user;
        let labels =
          [ "Person" ]
          @ (if acts then [ "Actor" ] else [])
          @ (if directs then [ "Director" ] else [])
          @ if is_user then [ "User" ] else []
        in
        let birthyear = 1930 + Rng.int rng 75 in
        let birthplace =
          if Rng.coin rng 0.7 then Some (Rng.pick rng countries) else None
        in
        let props =
          if not with_props then []
          else begin
            let props =
              [ ("name", str (Printf.sprintf "Person%d" i));
                ("birthyear", int birthyear) ]
            in
            let props =
              if is_user then
                ("login", str (Printf.sprintf "user%d" i)) :: props
              else props
            in
            match birthplace with
            | Some c -> ("birthplace", str c) :: props
            | None -> props
          end
        in
        Graph_builder.add_node b ~labels ~props)
  in
  let selected flags =
    let n = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 flags in
    let out = Array.make (max n 1) 0 in
    let j = ref 0 in
    Array.iteri
      (fun i f ->
        if f then begin
          out.(!j) <- person_ids.(i);
          incr j
        end)
      flags;
    Array.sub out 0 n
  in
  let actors = selected person_acts in
  let directors = selected person_directs in
  let users = selected person_user in
  let movie_ids =
    Array.init movies (fun i ->
        let year = 1950 + Rng.int rng 72 in
        let genre = Rng.pick rng genres in
        let runtime = 60 + Rng.int rng 120 in
        let language =
          if Rng.coin rng 0.5 then
            Some (Rng.pick rng [| "en"; "fr"; "de"; "ja"; "hi" |])
          else None
        in
        let props =
          if not with_props then []
          else begin
            let props =
              [ ("title", str (Printf.sprintf "Movie%d" i));
                ("year", int year);
                ("genre", str genre);
                ("runtime", int runtime) ]
            in
            match language with
            | Some l -> ("language", str l) :: props
            | None -> props
          end
        in
        Graph_builder.add_node b ~labels:[ "Movie" ] ~props)
  in
  Array.iter
    (fun m ->
      (* cast: Zipf over actors so a few stars appear in many movies *)
      let cast_size = 3 + Rng.geometric rng ~p:0.35 in
      for _ = 1 to min cast_size 12 do
        let a = actors.(Rng.zipf rng ~n:(Array.length actors) ~s:0.7) in
        let role = Rng.int rng 500 in
        ignore
          (Graph_builder.add_rel b ~src:a ~dst:m ~rel_type:"ACTS_IN"
             ~props:
               (if with_props then
                  [ ("role", str (Printf.sprintf "Role%d" role)) ]
                else []))
      done;
      let d = directors.(Rng.zipf rng ~n:(Array.length directors) ~s:0.6) in
      ignore (Graph_builder.add_rel b ~src:d ~dst:m ~rel_type:"DIRECTED" ~props:[]);
      if Rng.coin rng 0.15 then begin
        let d2 = directors.(Rng.zipf rng ~n:(Array.length directors) ~s:0.6) in
        if d2 <> d then
          ignore
            (Graph_builder.add_rel b ~src:d2 ~dst:m ~rel_type:"DIRECTED" ~props:[])
      end)
    movie_ids;
  (* ratings by users *)
  let n_ratings = Array.length users * 8 in
  for _ = 1 to n_ratings do
    let u = users.(Rng.zipf rng ~n:(Array.length users) ~s:0.5) in
    let m = movie_ids.(Rng.zipf rng ~n:movies ~s:0.8) in
    let stars = 1 + Rng.int rng 5 in
    let commented = Rng.coin rng 0.3 in
    let props =
      if not with_props then []
      else if commented then [ ("comment", str "nice one"); ("stars", int stars) ]
      else [ ("stars", int stars) ]
    in
    ignore (Graph_builder.add_rel b ~src:u ~dst:m ~rel_type:"RATED" ~props)
  done;
  (* sparse friendship network among users: almost triangle-free *)
  let n_users = Array.length users in
  for i = 1 to n_users - 1 do
    if Rng.coin rng 0.8 then begin
      let j = Rng.int rng i in
      ignore
        (Graph_builder.add_rel b ~src:users.(i) ~dst:users.(j)
           ~rel_type:"FRIEND" ~props:[])
    end
  done;
  Dataset.make ~hierarchy_pairs ~name:"Cineasts" (Graph_builder.freeze b)
