(** Data-set size tiers.

    [Smoke] and [Default] match the historic CLI sizes (sub-second /
    seconds-scale builds with exact ground truth); [Large] scales each
    generator to ≥ 10⁷ relationships, drops per-entity properties to keep
    the builder's peak memory bounded by the packed columns, and switches
    ground truth to sampled Wander-Join estimates (exact matching is
    infeasible at that size — see DESIGN.md §13). *)

type t = Smoke | Default | Large

val of_name : string -> (t, string) result
(** Case-insensitive ["smoke" | "default" | "large"]. *)

val to_string : t -> string

val props : t -> bool
(** Whether generators attach properties at this tier ([false] only for
    [Large]). The relationship structure is identical either way: generators
    draw the same RNG stream regardless of the flag. *)

val sampled_truth : t -> bool
(** Whether workload ground truth at this tier should come from Wander-Join
    sampling rather than exact matching. *)

val snb_persons : t -> int
(** 120 / 500 / 160_000 (the last ≈ 10.3M relationships). *)

val cineasts_movies : t -> int
(** 250 / 1_200 / 900_000 (the last ≈ 11.8M relationships). *)

val dbpedia_entities : t -> int
(** 2_000 / 10_000 / 2_600_000 (the last ≈ 10.4M relationship draws). *)

val dbpedia_classes : t -> int

val dbpedia_rel_kinds : t -> int

val build : t -> name:string -> seed:int -> Dataset.t option
(** Build one of the named generators ("snb" | "cineasts" | "dbpedia",
    case-insensitive) at this tier; [None] for any other name (callers fall
    back to loading a saved graph file). *)
