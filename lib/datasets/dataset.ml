open Lpp_pgraph
open Lpp_stats

type t = { name : string; graph : Graph.t; catalog : Catalog.t }

let make ?hierarchy_pairs ~name graph =
  Lpp_obs.Trace.with_span ~cat:"dataset" "dataset.build"
    ~args:(fun () ->
      [|
        ("nodes", float_of_int (Graph.node_count graph));
        ("rels", float_of_int (Graph.rel_count graph));
      |])
  @@ fun () ->
  let hierarchy =
    Option.map
      (fun pairs ->
        let resolve n = Interner.find_opt (Graph.labels graph) n in
        let id_pairs =
          List.filter_map
            (fun (child, parent) ->
              match (resolve child, resolve parent) with
              | Some c, Some p -> Some (c, p)
              | _ -> None)
            pairs
        in
        Label_hierarchy.of_pairs ~labels:(Graph.label_count graph) id_pairs)
      hierarchy_pairs
  in
  let catalog = Catalog.build_with ?hierarchy graph in
  (* Debug guard: with LPP_DEBUG_CHECKS set (anything but 0/false/empty),
     every freshly built dataset catalog runs the consistency checker; an
     inconsistent one fails loudly instead of skewing every estimate. *)
  (match Sys.getenv_opt "LPP_DEBUG_CHECKS" with
  | None | Some ("" | "0" | "false") -> ()
  | Some _ ->
      let diags = Lpp_analysis.Catalog_check.run catalog in
      List.iter
        (fun d ->
          Format.eprintf "[%s catalog] %a@." name Lpp_analysis.Diagnostic.pp d)
        diags;
      if Lpp_analysis.Diagnostic.has_errors diags then
        failwith
          (Printf.sprintf
             "dataset %s: catalog consistency check failed (%d errors)" name
             (Lpp_analysis.Diagnostic.count Error diags)));
  { name; graph; catalog }

let summary_headers =
  [ "data set"; "nodes"; "rels"; "props"; "labels"; "rel types"; "prop keys";
    "H_L height"; "D_L comps" ]

let summary_row t =
  let g = t.graph in
  [
    t.name;
    string_of_int (Graph.node_count g);
    string_of_int (Graph.rel_count g);
    string_of_int (Graph.property_count g);
    string_of_int (Graph.label_count g);
    string_of_int (Graph.rel_type_count g);
    string_of_int (Graph.prop_key_count g);
    string_of_int (Label_hierarchy.height (Catalog.hierarchy t.catalog));
    string_of_int (Label_partition.cluster_count (Catalog.partition t.catalog));
  ]
