open Lpp_pgraph
open Lpp_util

let str s = Value.Str s

let int i = Value.Int i

let value_pool =
  [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta"; "theta";
     "iota"; "kappa"; "lambda"; "mu"; "nu"; "xi"; "omicron"; "pi"; "rho";
     "sigma"; "tau"; "upsilon" |]

let generate ?(entities = 24_000) ?(classes = 140) ?(rel_kinds = 90)
    ?(props = true) ~seed () =
  let rng = Rng.create seed in
  (* Whether to attach properties (off at the Large tier). All RNG draws
     happen either way, so the relationship structure is identical. *)
  let with_props = props in
  (* ---- ontology: a class tree of depth ≤ 4 rooted at Thing (class 0) ---- *)
  let class_names =
    Array.init classes (fun c ->
        if c = 0 then "Thing" else Printf.sprintf "Class%d" c)
  in
  let class_name c = class_names.(c) in
  let parent = Array.make classes 0 in
  let depth = Array.make classes 0 in
  for c = 1 to classes - 1 do
    (* prefer shallow parents so the tree stays broad but reaches depth 4 *)
    let rec pick () =
      let p = Rng.int rng c in
      if depth.(p) >= 4 then pick () else p
    in
    let p = pick () in
    parent.(c) <- p;
    depth.(c) <- depth.(p) + 1
  done;
  let rec ancestors c = if c = 0 then [ 0 ] else c :: ancestors parent.(c) in
  let hierarchy_pairs =
    List.concat_map
      (fun c ->
        if c = 0 then []
        else [ (class_name c, class_name parent.(c)) ])
      (List.init classes Fun.id)
  in
  (* ---- property key schema: per class a couple of keys -------------- *)
  let n_keys = 110 in
  let key_names = Array.init n_keys (fun k -> Printf.sprintf "prop%d" k) in
  let key_name k = key_names.(k) in
  let class_keys =
    Array.init classes (fun c ->
        if c = 0 then [| 0 |] (* every Thing has prop0 = its name *)
        else Array.init (1 + Rng.int rng 2) (fun _ -> 1 + Rng.int rng (n_keys - 1)))
  in
  (* ---- entities ------------------------------------------------------ *)
  let b = Graph_builder.create () in
  let entity_class = Array.make entities 0 in
  let entity_ids =
    Array.init entities (fun i ->
        (* skewed class popularity; avoid the bare root for most entities *)
        let c =
          let c = Rng.zipf rng ~n:classes ~s:0.7 in
          if c = 0 && Rng.coin rng 0.9 then 1 + Rng.int rng (classes - 1) else c
        in
        entity_class.(i) <- c;
        let labels = List.map class_name (ancestors c) in
        let props =
          ref
            (if with_props then
               [ (key_name 0, str (Printf.sprintf "Entity%d" i)) ]
             else [])
        in
        List.iter
          (fun cls ->
            Array.iter
              (fun k ->
                if k <> 0 && Rng.coin rng 0.8 then begin
                  let v =
                    if k mod 3 = 0 then int (Rng.zipf rng ~n:50 ~s:1.1)
                    else str value_pool.(Rng.zipf rng ~n:(Array.length value_pool) ~s:0.9)
                  in
                  if with_props then props := (key_name k, v) :: !props
                end)
              class_keys.(cls))
          (ancestors c);
        Graph_builder.add_node b ~labels ~props:!props)
  in
  (* extents: entities per class subtree, for domain/range sampling.
     Counting sort into flat arrays — no intermediate per-class lists. The
     fill runs over ascending entity ids writing each slot from the back, so
     every extent lists its entities in descending id order, matching the
     cons-onto-accumulator order this used to produce. *)
  let ext_count = Array.make classes 0 in
  Array.iter
    (fun c ->
      List.iter (fun a -> ext_count.(a) <- ext_count.(a) + 1) (ancestors c))
    entity_class;
  let extents = Array.map (fun n -> Array.make n 0) ext_count in
  let cursor = Array.copy ext_count in
  Array.iteri
    (fun i c ->
      List.iter
        (fun a ->
          cursor.(a) <- cursor.(a) - 1;
          extents.(a).(cursor.(a)) <- i)
        (ancestors c))
    entity_class;
  (* ---- relationship type schema: domain and range classes ------------ *)
  let type_domain = Array.make rel_kinds 0 in
  let type_range = Array.make rel_kinds 0 in
  for t = 0 to rel_kinds - 1 do
    let rec nonempty () =
      let c = Rng.int rng classes in
      if Array.length extents.(c) = 0 then nonempty () else c
    in
    type_domain.(t) <- nonempty ();
    type_range.(t) <- nonempty ()
  done;
  let rel_names = Array.init rel_kinds (fun t -> Printf.sprintf "rel%d" t) in
  let n_edges = entities * 4 in
  for _ = 1 to n_edges do
    let t = Rng.zipf rng ~n:rel_kinds ~s:0.8 in
    let dom = extents.(type_domain.(t)) in
    let rng_ext = extents.(type_range.(t)) in
    let src = entity_ids.(dom.(Rng.zipf rng ~n:(Array.length dom) ~s:0.4)) in
    let dst = entity_ids.(rng_ext.(Rng.zipf rng ~n:(Array.length rng_ext) ~s:0.4)) in
    if src <> dst then begin
      let since =
        if Rng.coin rng 0.1 then Some (1900 + Rng.int rng 120) else None
      in
      ignore
        (Graph_builder.add_rel b ~src ~dst ~rel_type:rel_names.(t)
           ~props:
             (match since with
             | Some y when with_props -> [ ("since", int y) ]
             | _ -> []))
    end
  done;
  Dataset.make ~hierarchy_pairs ~name:"DBpedia" (Graph_builder.freeze b)
