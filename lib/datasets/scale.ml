type t = Smoke | Default | Large

let to_string = function
  | Smoke -> "smoke"
  | Default -> "default"
  | Large -> "large"

let of_name s =
  match String.lowercase_ascii s with
  | "smoke" -> Ok Smoke
  | "default" -> Ok Default
  | "large" -> Ok Large
  | other ->
      Error (Printf.sprintf "unknown scale %S (smoke|default|large)" other)

let props = function Smoke | Default -> true | Large -> false

let sampled_truth = function Smoke | Default -> false | Large -> true

let snb_persons = function Smoke -> 120 | Default -> 500 | Large -> 160_000

let cineasts_movies = function
  | Smoke -> 250
  | Default -> 1_200
  | Large -> 900_000

let dbpedia_entities = function
  | Smoke -> 2_000
  | Default -> 10_000
  | Large -> 2_600_000

let dbpedia_classes = function Smoke -> 40 | Default | Large -> 140

let dbpedia_rel_kinds = function Smoke -> 25 | Default | Large -> 90

let build t ~name ~seed =
  let props = props t in
  match String.lowercase_ascii name with
  | "snb" ->
      Some (Snb_gen.generate ~persons:(snb_persons t) ~props ~seed ())
  | "cineasts" ->
      Some (Cineasts_gen.generate ~movies:(cineasts_movies t) ~props ~seed ())
  | "dbpedia" ->
      Some
        (Dbpedia_gen.generate ~entities:(dbpedia_entities t)
           ~classes:(dbpedia_classes t) ~rel_kinds:(dbpedia_rel_kinds t) ~props
           ~seed ())
  | _ -> None
