open Lpp_pgraph
open Lpp_util

let hierarchy_pairs =
  [
    ("Post", "Message");
    ("Comment", "Message");
    ("City", "Place");
    ("Country", "Place");
    ("Continent", "Place");
    ("University", "Organisation");
    ("Company", "Organisation");
  ]

let continents =
  [| "Europe"; "Asia"; "Africa"; "America"; "Oceania"; "Antarctica" |]

let browsers = [| "Firefox"; "Chrome"; "Safari"; "Edge"; "Opera" |]

let genders = [| "male"; "female" |]

let languages = [| "en"; "de"; "fr"; "es"; "zh"; "ar" |]

let first_names =
  [| "Jan"; "Maria"; "Chen"; "Ali"; "Anna"; "Ivan"; "Jose"; "Kim"; "Lena";
     "Omar"; "Petra"; "Sven"; "Tariq"; "Yuki"; "Zoe"; "Lars" |]

let last_names =
  [| "Smith"; "Mueller"; "Garcia"; "Wang"; "Kumar"; "Sato"; "Silva"; "Novak";
     "Khan"; "Olsen"; "Rossi"; "Dubois"; "Kowalski"; "Haddad"; "Brown"; "Berg" |]

let str s = Value.Str s

let int i = Value.Int i

(* Timestamps within the benchmark's 2010-2013 window, in epoch days. *)
let creation_date rng = int (14610 + Rng.int rng 1200)

let generate ?(persons = 900) ?(props = true) ~seed () =
  let rng = Rng.create seed in
  let b = Graph_builder.create () in
  (* [pp] drops properties at the Large tier. Its argument is evaluated
     either way, so the RNG stream — and hence the relationship structure —
     is identical with and without properties. *)
  let with_props = props in
  let pp l = if with_props then l else [] in
  (* --- places ------------------------------------------------------- *)
  let continent_ids =
    Array.map
      (fun name ->
        Graph_builder.add_node b ~labels:[ "Place"; "Continent" ]
          ~props:(pp [ ("name", str name) ]))
      continents
  in
  let n_countries = 28 in
  let country_ids =
    Array.init n_countries (fun i ->
        let nd =
          Graph_builder.add_node b ~labels:[ "Place"; "Country" ]
            ~props:(pp [ ("name", str (Printf.sprintf "Country%d" i)) ])
        in
        let cont = continent_ids.(Rng.zipf rng ~n:(Array.length continents) ~s:0.8) in
        ignore
          (Graph_builder.add_rel b ~src:nd ~dst:cont ~rel_type:"IS_PART_OF"
             ~props:[]);
        nd)
  in
  let n_cities = 170 in
  let city_ids =
    Array.init n_cities (fun i ->
        let nd =
          Graph_builder.add_node b ~labels:[ "Place"; "City" ]
            ~props:(pp [ ("name", str (Printf.sprintf "City%d" i)) ])
        in
        let country = country_ids.(Rng.zipf rng ~n:n_countries ~s:0.9) in
        ignore
          (Graph_builder.add_rel b ~src:nd ~dst:country ~rel_type:"IS_PART_OF"
             ~props:[]);
        nd)
  in
  (* --- organisations ------------------------------------------------ *)
  let n_universities = 45 in
  let university_ids =
    Array.init n_universities (fun i ->
        let nd =
          Graph_builder.add_node b ~labels:[ "Organisation"; "University" ]
            ~props:
              (pp
                 [ ("name", str (Printf.sprintf "University%d" i));
                   ("url", str (Printf.sprintf "http://uni%d.example.org" i)) ])
        in
        ignore
          (Graph_builder.add_rel b ~src:nd
             ~dst:(Rng.pick rng city_ids)
             ~rel_type:"IS_LOCATED_IN" ~props:[]);
        nd)
  in
  let n_companies = 80 in
  let company_ids =
    Array.init n_companies (fun i ->
        let nd =
          Graph_builder.add_node b ~labels:[ "Organisation"; "Company" ]
            ~props:
              (pp
                 [ ("name", str (Printf.sprintf "Company%d" i));
                   ("url",
                    str (Printf.sprintf "http://company%d.example.com" i)) ])
        in
        ignore
          (Graph_builder.add_rel b ~src:nd
             ~dst:(Rng.pick rng country_ids)
             ~rel_type:"IS_LOCATED_IN" ~props:[]);
        nd)
  in
  (* --- tags ---------------------------------------------------------- *)
  let n_tagclasses = 20 in
  let tagclass_ids =
    Array.init n_tagclasses (fun i ->
        Graph_builder.add_node b ~labels:[ "TagClass" ]
          ~props:(pp [ ("name", str (Printf.sprintf "TagClass%d" i)) ]))
  in
  Array.iteri
    (fun i nd ->
      if i > 0 then begin
        (* a tree over tag classes, rooted at TagClass0 *)
        let parent = tagclass_ids.(Rng.int rng i) in
        ignore
          (Graph_builder.add_rel b ~src:nd ~dst:parent
             ~rel_type:"IS_SUBCLASS_OF" ~props:[])
      end)
    tagclass_ids;
  let n_tags = 360 in
  let tag_ids =
    Array.init n_tags (fun i ->
        let nd =
          Graph_builder.add_node b ~labels:[ "Tag" ]
            ~props:(pp [ ("name", str (Printf.sprintf "Tag%d" i)) ])
        in
        ignore
          (Graph_builder.add_rel b ~src:nd
             ~dst:tagclass_ids.(Rng.zipf rng ~n:n_tagclasses ~s:1.0)
             ~rel_type:"HAS_TYPE" ~props:[]);
        nd)
  in
  let pick_tag rng = tag_ids.(Rng.zipf rng ~n:n_tags ~s:1.0) in
  (* --- persons ------------------------------------------------------- *)
  let person_ids =
    Array.init persons (fun _ ->
        Graph_builder.add_node b ~labels:[ "Person" ]
          ~props:
            (pp
               [ ("firstName", str (Rng.pick rng first_names));
                 ("lastName", str (Rng.pick rng last_names));
                 ("gender", str (Rng.pick rng genders));
                 ("birthday", int (3650 + Rng.int rng 14000));
                 ("creationDate", creation_date rng);
                 ("browserUsed", str (Rng.pick rng browsers)) ]))
  in
  Array.iter
    (fun p ->
      ignore
        (Graph_builder.add_rel b ~src:p
           ~dst:city_ids.(Rng.zipf rng ~n:n_cities ~s:0.9)
           ~rel_type:"IS_LOCATED_IN" ~props:[]);
      if Rng.coin rng 0.75 then
        ignore
          (Graph_builder.add_rel b ~src:p
             ~dst:(Rng.pick rng university_ids)
             ~rel_type:"STUDY_AT"
             ~props:(pp [ ("classYear", int (2000 + Rng.int rng 14)) ]));
      let jobs = Rng.geometric rng ~p:0.55 in
      for _ = 1 to min jobs 3 do
        ignore
          (Graph_builder.add_rel b ~src:p
             ~dst:(Rng.pick rng company_ids)
             ~rel_type:"WORK_AT"
             ~props:(pp [ ("workFrom", int (1995 + Rng.int rng 19)) ]))
      done;
      let interests = 2 + Rng.geometric rng ~p:0.35 in
      for _ = 1 to min interests 12 do
        ignore
          (Graph_builder.add_rel b ~src:p ~dst:(pick_tag rng)
             ~rel_type:"HAS_INTEREST" ~props:[])
      done)
    person_ids;
  (* friendships: preferential attachment for a skewed degree distribution *)
  let knows_per_person = 7 in
  Array.iteri
    (fun i p ->
      if i > 0 then begin
        let friends = 1 + Rng.geometric rng ~p:(1.0 /. float_of_int knows_per_person) in
        for _ = 1 to min friends 40 do
          (* preferential: earlier persons (already better connected) are
             favoured by the Zipf pick *)
          let j = Rng.zipf rng ~n:i ~s:0.35 in
          if j <> i then
            ignore
              (Graph_builder.add_rel b ~src:p ~dst:person_ids.(j)
                 ~rel_type:"KNOWS"
                 ~props:(pp [ ("creationDate", creation_date rng) ]))
        done
      end)
    person_ids;
  (* --- forums, posts, comments -------------------------------------- *)
  let n_forums = max 1 (persons * 4 / 5) in
  let forum_ids =
    Array.init n_forums (fun i ->
        let nd =
          Graph_builder.add_node b ~labels:[ "Forum" ]
            ~props:
              (pp
                 [ ("title", str (Printf.sprintf "Forum%d" i));
                   ("creationDate", creation_date rng) ])
        in
        let moderator = person_ids.(Rng.zipf rng ~n:persons ~s:0.4) in
        ignore
          (Graph_builder.add_rel b ~src:nd ~dst:moderator
             ~rel_type:"HAS_MODERATOR" ~props:[]);
        let members = 3 + Rng.geometric rng ~p:0.12 in
        for _ = 1 to min members 60 do
          ignore
            (Graph_builder.add_rel b ~src:nd
               ~dst:person_ids.(Rng.zipf rng ~n:persons ~s:0.5)
               ~rel_type:"HAS_MEMBER"
               ~props:(pp [ ("joinDate", creation_date rng) ]))
        done;
        ignore
          (Graph_builder.add_rel b ~src:nd ~dst:(pick_tag rng)
             ~rel_type:"HAS_TAG" ~props:[]);
        nd)
  in
  let n_posts = persons * 4 in
  let post_ids =
    Array.init n_posts (fun _ ->
        let has_image = Rng.coin rng 0.2 in
        let props =
          [ ("creationDate", creation_date rng);
            ("browserUsed", str (Rng.pick rng browsers));
            ("length", int (10 + Rng.int rng 990));
            ("language", str (Rng.pick rng languages)) ]
        in
        let props =
          if has_image then ("imageFile", str "photo.jpg") :: props else props
        in
        let nd =
          Graph_builder.add_node b ~labels:[ "Message"; "Post" ]
            ~props:(pp props)
        in
        let forum = forum_ids.(Rng.zipf rng ~n:n_forums ~s:0.6) in
        ignore
          (Graph_builder.add_rel b ~src:forum ~dst:nd ~rel_type:"CONTAINER_OF"
             ~props:[]);
        ignore
          (Graph_builder.add_rel b ~src:nd
             ~dst:person_ids.(Rng.zipf rng ~n:persons ~s:0.6)
             ~rel_type:"HAS_CREATOR" ~props:[]);
        if Rng.coin rng 0.6 then
          ignore
            (Graph_builder.add_rel b ~src:nd ~dst:(pick_tag rng)
               ~rel_type:"HAS_TAG" ~props:[]);
        ignore
          (Graph_builder.add_rel b ~src:nd
             ~dst:country_ids.(Rng.zipf rng ~n:n_countries ~s:0.9)
             ~rel_type:"IS_LOCATED_IN" ~props:[]);
        nd)
  in
  let n_comments = persons * 8 in
  let comment_ids = Array.make n_comments (-1) in
  for i = 0 to n_comments - 1 do
    let nd =
      Graph_builder.add_node b ~labels:[ "Message"; "Comment" ]
        ~props:
          (pp
             [ ("creationDate", creation_date rng);
               ("browserUsed", str (Rng.pick rng browsers));
               ("length", int (5 + Rng.int rng 295)) ])
    in
    comment_ids.(i) <- nd;
    (* reply to a post (70%) or an earlier comment (30%) *)
    let parent =
      if i = 0 || Rng.coin rng 0.7 then post_ids.(Rng.zipf rng ~n:n_posts ~s:0.7)
      else comment_ids.(Rng.int rng i)
    in
    ignore (Graph_builder.add_rel b ~src:nd ~dst:parent ~rel_type:"REPLY_OF" ~props:[]);
    ignore
      (Graph_builder.add_rel b ~src:nd
         ~dst:person_ids.(Rng.zipf rng ~n:persons ~s:0.6)
         ~rel_type:"HAS_CREATOR" ~props:[]);
    if Rng.coin rng 0.25 then
      ignore
        (Graph_builder.add_rel b ~src:nd ~dst:(pick_tag rng) ~rel_type:"HAS_TAG"
           ~props:[])
  done;
  (* likes: persons like posts and comments *)
  let n_likes = persons * 9 in
  for _ = 1 to n_likes do
    let person = person_ids.(Rng.zipf rng ~n:persons ~s:0.5) in
    let message =
      if Rng.coin rng 0.7 then post_ids.(Rng.zipf rng ~n:n_posts ~s:0.7)
      else comment_ids.(Rng.zipf rng ~n:n_comments ~s:0.7)
    in
    ignore
      (Graph_builder.add_rel b ~src:person ~dst:message ~rel_type:"LIKES"
         ~props:(pp [ ("creationDate", creation_date rng) ]))
  done;
  Dataset.make ~hierarchy_pairs ~name:"SNB" (Graph_builder.freeze b)
