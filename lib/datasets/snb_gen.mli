(** Synthetic LDBC-SNB-like social network (stand-in for SNB SF 0.1).

    Reproduces the Social Network Benchmark's schema: the same 14 node labels
    (with Post/Comment ⊑ Message, City/Country/Continent ⊑ Place,
    University/Company ⊑ Organisation), 15 relationship types and ~20 property
    keys, Zipf-skewed friendship and membership degrees, and correlated
    label/property usage. Scale is reduced so exact ground-truth counting
    remains tractable (the q-error metric is scale-free; DESIGN.md §3). *)

val generate : ?persons:int -> ?props:bool -> seed:int -> unit -> Dataset.t
(** [persons] defaults to 900, yielding ≈15k nodes / ≈90k relationships.
    [props:false] (the Large tier, {!Scale}) skips attaching properties while
    drawing the identical RNG stream, so the relationship structure is the
    same either way. *)

val hierarchy_pairs : (string * string) list
(** The curated (sublabel, superlabel) pairs the generator guarantees. *)
