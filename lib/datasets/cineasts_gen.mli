(** Synthetic Cineasts-like movie database (stand-in for Cineasts 2.1.6).

    Five node labels with Actor, Director and User as sublabels of Person —
    Actor and Director overlap (some people both act and direct), exercising
    the paper's "overlapping sublabels" case. Four relationship types
    (ACTS_IN, DIRECTED, RATED, FRIEND) and PostgreSQL-profile-friendly
    properties (titles, years, genres, star ratings). The graph contains very
    few triangles, which is what bounds cyclic-pattern cardinalities — and
    hence q-errors — in the paper's Figure 5b. *)

val generate : ?movies:int -> ?props:bool -> seed:int -> unit -> Dataset.t
(** [movies] defaults to 2200, yielding ≈9k nodes / ≈45k relationships.
    [props:false] (the Large tier, {!Scale}) skips attaching properties while
    drawing the identical RNG stream. *)

val hierarchy_pairs : (string * string) list
