(* Helpers shared by the lpp subcommands.

   Pattern-driven subcommands (lint, trace) agree on one contract: patterns
   come from [-f FILE] (one per line, # comments) plus positional arguments,
   with a generated workload as the fallback when neither is given, and the
   process exits 1 iff any pattern failed to parse or an error-severity
   diagnostic was produced (0 = clean). *)

let read_query_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go acc else go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* The named patterns with their parse results — or, when no pattern was
   named, the caller's generated-workload fallback (those always parse). *)
let load_patterns (ds : Lpp_datasets.Dataset.t) ~file ~patterns ~fallback =
  let from_file = match file with None -> [] | Some f -> read_query_file f in
  let named = from_file @ patterns in
  if named <> [] then
    List.map
      (fun q ->
        match Lpp_pattern.Parse.parse ds.graph q with
        | Ok { pattern; _ } -> (q, Ok pattern)
        | Error msg -> (q, Error msg))
      named
  else
    List.map
      (fun (q : Lpp_workload.Query_gen.query) ->
        ( Format.asprintf "%a"
            (Lpp_pattern.Pattern.pp_parseable ~names:(Some ds.graph))
            q.pattern,
          Ok q.pattern ))
      (fallback ())

let exit_if_errors errors = if errors > 0 then Stdlib.exit 1

(* Run [f] with observability on when any sink was requested, writing the
   requested sinks afterwards (even if [f] exits through an exception). *)
let with_obs ?trace_out ?metrics_out f =
  if trace_out = None && metrics_out = None then f ()
  else begin
    Lpp_obs.Obs.enable ();
    Fun.protect
      ~finally:(fun () ->
        Option.iter
          (fun path ->
            Lpp_obs.Export.write_chrome_trace path;
            Printf.eprintf "wrote Chrome trace to %s\n%!" path)
          trace_out;
        Option.iter
          (fun path ->
            Lpp_obs.Export.write_metrics path;
            Printf.eprintf "wrote metrics to %s\n%!" path)
          metrics_out;
        Lpp_obs.Obs.disable ())
      f
  end
