(* lpp — command-line front end to the library.

     dune exec bin/lpp.exe -- datasets
     dune exec bin/lpp.exe -- workload --dataset snb --queries 20
     dune exec bin/lpp.exe -- estimate --dataset cineasts --queries 15 --props
     dune exec bin/lpp.exe -- plan --dataset snb
     dune exec bin/lpp.exe -- query -d snb "(a:Person)-[:KNOWS*1..2]->(b)" *)

open Cmdliner

let dataset_of_name ?(scale = Lpp_datasets.Scale.Default) name ~seed =
  match Lpp_datasets.Scale.build scale ~name ~seed with
  | Some ds -> ds
  | None when Sys.file_exists name -> begin
      (* a saved graph file (see `lpp export` / Lpp_pgraph.Graph_io) *)
      match Lpp_pgraph.Graph_io.load name with
      | Ok graph -> Lpp_datasets.Dataset.make ~name:(Filename.basename name) graph
      | Error msg -> failwith (Printf.sprintf "cannot load %s: %s" name msg)
    end
  | None ->
      failwith
        (Printf.sprintf "unknown dataset %S (snb|cineasts|dbpedia or a saved graph file)"
           name)

let dataset_arg =
  Arg.(value & opt string "snb"
       & info [ "dataset"; "d" ] ~docv:"NAME"
           ~doc:"snb, cineasts, dbpedia, or the path of a saved graph file")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed")

let scale_arg =
  Arg.(value & opt (some string) None
       & info [ "scale" ] ~docv:"TIER"
           ~doc:"Data set size tier: smoke (sub-second), default, or large \
                 (≥10⁷ relationships, no properties, sampled ground truth)")

(* [--scale] wins; the legacy [--smoke] flag maps to the smoke tier. *)
let resolve_scale ?(smoke = false) scale_name =
  match scale_name with
  | Some s -> begin
      match Lpp_datasets.Scale.of_name s with
      | Ok t -> t
      | Error msg -> failwith msg
    end
  | None -> if smoke then Lpp_datasets.Scale.Smoke else Lpp_datasets.Scale.Default

let queries_arg =
  Arg.(value & opt int 20 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Queries to generate")

let props_arg =
  Arg.(value & flag & info [ "props" ] ~doc:"Generate queries with property predicates")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains for parallel stages (default: LPP_JOBS or the \
                 recommended domain count); results are identical for every N")

let set_jobs jobs = Option.iter Lpp_util.Pool.set_default_jobs jobs

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record spans and write a Chrome trace_event JSON file \
                 (load with about:tracing or Perfetto)")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Record counters/histograms and write them as JSON")

let gen_workload ?(scale = Lpp_datasets.Scale.Default) ds ~seed ~n ~props =
  let flavour =
    if props then Lpp_workload.Query_gen.With_props
    else Lpp_workload.Query_gen.No_props
  in
  let ground_truth =
    if Lpp_datasets.Scale.sampled_truth scale then
      Lpp_workload.Query_gen.Sampled_wj { walks = 2000 }
    else Lpp_workload.Query_gen.Exact_matching
  in
  let spec =
    { (Lpp_workload.Query_gen.default_spec flavour) with
      target = n; attempts = 6 * n; truth_budget = 10_000_000; ground_truth }
  in
  Lpp_workload.Query_gen.generate (Lpp_util.Rng.create (seed + 1000)) ds spec

let bytes_cell b =
  if b >= 1 lsl 20 then
    Printf.sprintf "%d (%.1f MiB)" b (float_of_int b /. 1048576.0)
  else string_of_int b

(* Per-component resident bytes of the packed graph and the (ideally frozen)
   catalog, as measured by Mem_size / Bigarray.Array1.size_in_bytes. *)
let print_memory_table (ds : Lpp_datasets.Dataset.t) =
  let t = Lpp_util.Ascii_table.create [ "component"; "bytes" ] in
  let rows =
    Lpp_pgraph.Graph.memory_breakdown ds.graph
    @ Lpp_stats.Catalog.memory_breakdown ds.catalog
  in
  List.iter (fun (k, v) -> Lpp_util.Ascii_table.add_row t [ k; bytes_cell v ]) rows;
  Lpp_util.Ascii_table.add_row t
    [ "total"; bytes_cell (List.fold_left (fun a (_, v) -> a + v) 0 rows) ];
  Lpp_util.Ascii_table.print ~title:"Memory" t

(* ---- datasets ------------------------------------------------------- *)

let cmd_datasets =
  let run seed scale_name =
    let scale = resolve_scale scale_name in
    let t = Lpp_util.Ascii_table.create Lpp_datasets.Dataset.summary_headers in
    List.iter
      (fun name ->
        Lpp_util.Ascii_table.add_row t
          (Lpp_datasets.Dataset.summary_row (dataset_of_name name ~seed ~scale)))
      [ "snb"; "cineasts"; "dbpedia" ];
    Lpp_util.Ascii_table.print
      ~title:(Printf.sprintf "Generated data sets (%s tier)"
                (Lpp_datasets.Scale.to_string scale))
      t
  in
  Cmd.v (Cmd.info "datasets" ~doc:"Summarise the three synthetic data sets")
    Term.(const run $ seed_arg $ scale_arg)

(* ---- workload ------------------------------------------------------- *)

let cmd_workload =
  let run jobs name seed n props scale_name =
    set_jobs jobs;
    let scale = resolve_scale scale_name in
    let ds = dataset_of_name name ~seed ~scale in
    let qs = gen_workload ds ~seed ~n ~props ~scale in
    let t = Lpp_util.Ascii_table.create [ "id"; "shape"; "size"; "truth"; "pattern" ] in
    List.iter
      (fun (q : Lpp_workload.Query_gen.query) ->
        Lpp_util.Ascii_table.add_row t
          [ string_of_int q.id;
            Lpp_pattern.Shape.to_string q.shape;
            string_of_int q.size;
            (match Lpp_workload.Query_gen.truth_ci_width q with
            | None -> string_of_int q.true_card
            | Some w -> Printf.sprintf "%d ±%.0f" q.true_card (w /. 2.0));
            Format.asprintf "%a" (Lpp_pattern.Pattern.pp ~names:(Some ds.graph))
              q.pattern ])
      qs;
    Lpp_util.Ascii_table.print
      ~title:(Printf.sprintf "Workload on %s (%d queries)" ds.name (List.length qs))
      t
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate an anchored query workload with ground truth")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg
          $ props_arg $ scale_arg)

(* ---- estimate ------------------------------------------------------- *)

let cmd_estimate =
  let run jobs name seed n props scale_name trace_out metrics_out =
    set_jobs jobs;
    let scale = resolve_scale scale_name in
    Cli_common.with_obs ?trace_out ?metrics_out @@ fun () ->
    let ds = dataset_of_name name ~seed ~scale in
    let qs = gen_workload ds ~seed ~n ~props ~scale in
    Lpp_stats.Catalog.freeze ds.catalog;
    let techs = Lpp_harness.Technique.our_configurations ds in
    let t =
      Lpp_util.Ascii_table.create
        ([ "id"; "truth" ]
        @ List.map (fun (x : Lpp_harness.Technique.t) -> x.name) techs)
    in
    List.iter
      (fun (q : Lpp_workload.Query_gen.query) ->
        Lpp_util.Ascii_table.add_row t
          ([ string_of_int q.id; string_of_int q.true_card ]
          @ List.map
              (fun (x : Lpp_harness.Technique.t) ->
                Printf.sprintf "%.1f" (x.estimate q.pattern))
              techs))
      qs;
    Lpp_util.Ascii_table.print
      ~title:(Printf.sprintf "Estimates on %s" ds.name)
      t;
    (* summary line per technique *)
    let t2 = Lpp_util.Ascii_table.create [ "technique"; "q-error median [q25, q75]" ] in
    List.iter
      (fun (x : Lpp_harness.Technique.t) ->
        let ms = Lpp_harness.Runner.run ~measure_time:false x qs in
        Lpp_util.Ascii_table.add_row t2
          [ x.name; Lpp_harness.Report.qerr_cell (Lpp_harness.Runner.q_errors ms) ])
      techs;
    Lpp_util.Ascii_table.print ~title:"Accuracy summary" t2;
    print_memory_table ds
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate a generated workload with every configuration of our technique")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg
          $ props_arg $ scale_arg $ trace_out_arg $ metrics_out_arg)

(* ---- plan ----------------------------------------------------------- *)

let cmd_plan =
  let run jobs name seed n props scale_name =
    set_jobs jobs;
    let scale = resolve_scale scale_name in
    let ds = dataset_of_name name ~seed ~scale in
    let qs = gen_workload ds ~seed ~n ~props ~scale in
    List.iter
      (fun (q : Lpp_workload.Query_gen.query) ->
        Printf.printf "\n-- query %d (%s, truth %d)\n   %s\n" q.id
          (Lpp_pattern.Shape.to_string q.shape)
          q.true_card
          (Format.asprintf "%a" (Lpp_pattern.Pattern.pp ~names:(Some ds.graph))
             q.pattern);
        let alg = Lpp_pattern.Planner.plan q.pattern in
        List.iter
          (fun (op, card) ->
            Printf.printf "   %-44s -> %10.2f\n"
              (Format.asprintf "%a" Lpp_pattern.Algebra.pp_op op)
              card)
          (Lpp_core.Estimator.trace Lpp_core.Config.a_lhd ds.catalog alg))
      (List.filteri (fun i _ -> i < 5) qs)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show operator sequences and per-operator cardinality traces")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg
          $ props_arg $ scale_arg)

(* ---- export --------------------------------------------------------- *)

let cmd_export =
  let run name seed scale_name out =
    let scale = resolve_scale scale_name in
    let ds = dataset_of_name name ~seed ~scale in
    Lpp_pgraph.Graph_io.save ds.graph out;
    Printf.printf "wrote %s (%d nodes, %d relationships) to %s\n" ds.name
      (Lpp_pgraph.Graph.node_count ds.graph)
      (Lpp_pgraph.Graph.rel_count ds.graph)
      out
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialise a generated data set to a graph file")
    Term.(const run $ dataset_arg $ seed_arg $ scale_arg $ out)

(* ---- query ---------------------------------------------------------- *)

let cmd_query =
  let run jobs name seed scale_name trace_out metrics_out queries =
    set_jobs jobs;
    let scale = resolve_scale scale_name in
    Cli_common.with_obs ?trace_out ?metrics_out @@ fun () ->
    let ds = dataset_of_name name ~seed ~scale in
    Lpp_stats.Catalog.freeze ds.catalog;
    let sessions =
      List.map
        (fun config -> (config, Lpp_core.Estimator.make config ds.catalog))
        (Lpp_core.Config.all @ [ Lpp_core.Config.a_lhdt ])
    in
    List.iter
      (fun q ->
        match Lpp_pattern.Parse.parse ds.graph q with
        | Error msg -> Printf.eprintf "parse error in %S: %s\n" q msg
        | Ok { pattern; _ } ->
            Printf.printf "\n%s\n  shape %s, size %d\n" q
              (Lpp_pattern.Shape.to_string (Lpp_pattern.Shape.classify pattern))
              (Lpp_pattern.Pattern.size pattern);
            let truth =
              match Lpp_exec.Matcher.count ~budget:50_000_000 ds.graph pattern with
              | Lpp_exec.Matcher.Count c -> string_of_int c
              | Budget_exceeded -> "(budget exceeded)"
            in
            Printf.printf "  exact count: %s\n" truth;
            let alg = Lpp_pattern.Planner.plan pattern in
            Printf.printf "  operator sequence: %s\n"
              (Format.asprintf "%a" Lpp_pattern.Algebra.pp alg);
            List.iter
              (fun (config, session) ->
                Printf.printf "  %-10s %.2f\n"
                  (Lpp_core.Config.name config)
                  (Lpp_core.Estimator.session_estimate session alg))
              sessions)
      queries
  in
  let queries =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATTERN"
         ~doc:"openCypher-style patterns, e.g. \"(a:Person)-[:KNOWS]->(b)\"")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Parse openCypher-style patterns, estimate and count them")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ scale_arg
          $ trace_out_arg $ metrics_out_arg $ queries)

(* ---- lint ----------------------------------------------------------- *)

let config_of_name name =
  match Lpp_core.Config.of_name name with
  | Ok c -> c
  | Error msg -> failwith msg

(* Arguments shared by the pattern-driven subcommands (lint, trace); both
   load patterns through Cli_common.load_patterns and exit 1 on errors. *)
let smoke_arg =
  Arg.(value & flag
       & info [ "smoke" ] ~doc:"Use reduced data set sizes (sub-second; for CI)")

let config_arg =
  Arg.(value & opt string "A-LHD"
       & info [ "config"; "c" ] ~docv:"CFG"
           ~doc:"Estimator configuration \
                 (S-L, A-L, A-LH, A-LD, A-LHD, A-LHD-10, A-LHDT)")

let file_arg =
  Arg.(value & opt (some string) None
       & info [ "file"; "f" ] ~docv:"FILE"
           ~doc:"Read patterns from FILE (one per line, # comments)")

let patterns_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATTERN"
       ~doc:"openCypher-style patterns; none = use a generated workload")

let cmd_lint =
  let run jobs name seed n props smoke scale_name json config_name file patterns =
    set_jobs jobs;
    let config = config_of_name config_name in
    let scale = resolve_scale ~smoke scale_name in
    let ds = dataset_of_name name ~seed ~scale in
    Lpp_stats.Catalog.freeze ds.catalog;
    let catalog_diags = Lpp_analysis.Catalog_check.run ds.catalog in
    let texts_and_algs =
      Cli_common.load_patterns ds ~file ~patterns ~fallback:(fun () ->
          gen_workload ds ~seed ~n ~props)
      |> List.map (fun (text, r) ->
             (text, Result.map (fun p -> Lpp_pattern.Planner.plan p) r))
    in
    let reports =
      List.map
        (fun (text, alg) ->
          match alg with
          | Ok alg ->
              (text, Ok (Lpp_analysis.Lint.check_sequence ~config ~catalog:ds.catalog alg))
          | Error msg -> (text, Error msg))
        texts_and_algs
    in
    let parse_errors =
      List.length (List.filter (fun (_, r) -> Result.is_error r) reports)
    in
    let all_diags =
      catalog_diags
      @ List.concat_map
          (fun (_, r) ->
            match r with
            | Ok rep -> Lpp_analysis.Lint.report_diagnostics rep
            | Error _ -> [])
          reports
    in
    let errors = Lpp_analysis.Diagnostic.count Error all_diags + parse_errors in
    if json then begin
      let seq_json (text, r) =
        match r with
        | Ok rep ->
            let z = rep.Lpp_analysis.Lint.seq.Lpp_analysis.Seq_lint.provably_zero in
            let sound =
              match rep.Lpp_analysis.Lint.soundness with
              | Some s -> string_of_bool s.Lpp_analysis.Soundness.sound
              | None -> "null"
            in
            Printf.sprintf
              "{\"pattern\":\"%s\",\"provably_zero\":%b,\"sound\":%s,\"diagnostics\":%s}"
              (Lpp_analysis.Diagnostic.json_escape text)
              z sound
              (Lpp_analysis.Diagnostic.list_to_json
                 (Lpp_analysis.Lint.report_diagnostics rep))
        | Error msg ->
            Printf.sprintf "{\"pattern\":\"%s\",\"parse_error\":\"%s\"}"
              (Lpp_analysis.Diagnostic.json_escape text)
              (Lpp_analysis.Diagnostic.json_escape msg)
      in
      Printf.printf
        "{\"dataset\":\"%s\",\"config\":\"%s\",\"errors\":%d,\"catalog\":%s,\"sequences\":[%s]}\n"
        (Lpp_analysis.Diagnostic.json_escape ds.name)
        (Lpp_analysis.Diagnostic.json_escape (Lpp_core.Config.name config))
        errors
        (Lpp_analysis.Diagnostic.list_to_json catalog_diags)
        (String.concat "," (List.map seq_json reports))
    end
    else begin
      Printf.printf "catalog %s: %s\n" ds.name
        (if catalog_diags = [] then "consistent"
         else Printf.sprintf "%d finding(s)" (List.length catalog_diags));
      List.iter
        (fun d -> Format.printf "  %a@." Lpp_analysis.Diagnostic.pp d)
        catalog_diags;
      List.iter
        (fun (text, r) ->
          match r with
          | Error msg -> Printf.printf "%s\n  parse error: %s\n" text msg
          | Ok rep ->
              let ds' = Lpp_analysis.Lint.report_diagnostics rep in
              let verdict =
                if rep.Lpp_analysis.Lint.seq.Lpp_analysis.Seq_lint.provably_zero
                then "provably empty"
                else if ds' = [] then "clean"
                else Printf.sprintf "%d finding(s)" (List.length ds')
              in
              Printf.printf "%s: %s\n" text verdict;
              List.iter
                (fun d -> Format.printf "  %a@." Lpp_analysis.Diagnostic.pp d)
                ds')
        reports;
      Printf.printf "%d sequence(s), %d error(s)\n" (List.length reports) errors
    end;
    Cli_common.exit_if_errors errors
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON") in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyse operator sequences and the statistics catalog"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs the catalog consistency checker, the sequence lint and \
               the estimate-soundness verifier (Lpp_analysis) over the given \
               patterns — or over a generated workload — and exits non-zero \
               if any error-severity diagnostic is found." ])
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg
          $ props_arg $ smoke_arg $ scale_arg $ json $ config_arg $ file_arg
          $ patterns_arg)

(* ---- srclint -------------------------------------------------------- *)

let cmd_srclint =
  let run root json suppress list_rules =
    if list_rules then begin
      if json then
        print_endline (Lpp_util.Json.to_string (Lpp_srclint.Rules.to_json ()))
      else print_string (Lpp_srclint.Rules.to_table ())
    end
    else begin
      let report = Lpp_srclint.Srclint.run ~suppress ~root () in
      let errors = Lpp_srclint.Srclint.errors report in
      if json then
        print_endline
          (Lpp_util.Json.to_string (Lpp_srclint.Srclint.to_json report))
      else begin
        List.iter
          (fun d -> Format.printf "%a@." Lpp_analysis.Diagnostic.pp d)
          report.Lpp_srclint.Srclint.diagnostics;
        Printf.printf "%d file(s), %d error(s), %d warning(s)\n"
          (List.length report.Lpp_srclint.Srclint.files)
          errors
          (Lpp_srclint.Srclint.warnings report)
      end;
      Cli_common.exit_if_errors errors
    end
  in
  let root =
    Arg.(value & opt string "."
         & info [ "root" ] ~docv:"DIR"
             ~doc:"Project root; lib/, bin/ and bench/ below it are linted")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON") in
  let suppress =
    Arg.(value & opt_all string []
         & info [ "suppress"; "S" ] ~docv:"CODE"
             ~doc:"Suppress a rule for the whole run (repeatable), e.g. \
                   $(b,-S D006); accepts D006 or LPP-D006")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ]
             ~doc:"Print the rule catalog (codes, severities, scopes) and exit")
  in
  Cmd.v
    (Cmd.info "srclint"
       ~doc:"Lint the project's own OCaml sources for concurrency and \
             determinism convention violations"
       ~man:
         [ `S Manpage.s_description;
           `P "Parses every .ml file under lib/, bin/ and bench/ \
               (compiler-libs, parse-only — no typing) and walks the ASTs \
               enforcing the LPP-Dxxx rule set: annotated top-level mutable \
               state, pool-owned Domain.spawn, exception-safe locking via \
               Lpp_util.Sync.with_lock, monotonic Lpp_util.Clock instead of \
               wall time, explicit seeded Random.State, silent libraries, \
               no catch-all exception handlers. Exits 1 if any \
               error-severity diagnostic survives suppression, mirroring \
               $(b,lpp lint). Suppress per site with [@lpp.allow \"D006 \
               reason\"] / justify globals with [@@lpp.domain_safe \
               \"reason\"], or per run with $(b,--suppress)." ])
    Term.(const run $ root $ json $ suppress $ list_rules)

(* ---- trace ---------------------------------------------------------- *)

let cmd_trace =
  let run jobs name seed n props smoke scale_name config_name file out metrics
      count patterns =
    set_jobs jobs;
    let config = config_of_name config_name in
    let scale = resolve_scale ~smoke scale_name in
    (* Enable before the data set is built so catalog build phases, freezing
       and the pool's per-task spans all land in the trace. *)
    Lpp_obs.Obs.enable ();
    let parse_errors = ref 0 in
    Fun.protect
      ~finally:(fun () -> Lpp_obs.Obs.disable ())
      (fun () ->
        let ds = dataset_of_name name ~seed ~scale in
        Lpp_stats.Catalog.freeze ds.catalog;
        let loaded =
          Cli_common.load_patterns ds ~file ~patterns ~fallback:(fun () ->
              gen_workload ds ~seed ~n ~props)
        in
        let session = Lpp_core.Estimator.make config ds.catalog in
        List.iter
          (fun (text, r) ->
            match r with
            | Error msg ->
                incr parse_errors;
                Printf.eprintf "parse error in %S: %s\n" text msg
            | Ok pattern ->
                let alg = Lpp_pattern.Planner.plan pattern in
                let est = Lpp_core.Estimator.session_estimate session alg in
                if count then begin
                  let exact =
                    match Lpp_exec.Matcher.count ds.graph pattern with
                    | Lpp_exec.Matcher.Count c -> string_of_int c
                    | Budget_exceeded -> "(budget exceeded)"
                  in
                  Printf.printf "%s\n  estimate %.2f, exact %s\n" text est exact
                end
                else Printf.printf "%s\n  estimate %.2f\n" text est)
          loaded;
        Option.iter
          (fun path ->
            Lpp_obs.Export.write_chrome_trace path;
            Printf.printf "wrote Chrome trace to %s\n" path)
          out;
        Option.iter
          (fun path ->
            Lpp_obs.Export.write_metrics path;
            Printf.printf "wrote metrics to %s\n" path)
          metrics;
        print_newline ();
        Lpp_obs.Export.print_summary ());
    Cli_common.exit_if_errors !parse_errors
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the Chrome trace_event JSON file (load with \
                   about:tracing or Perfetto)")
  in
  let count =
    Arg.(value & flag
         & info [ "count" ]
             ~doc:"Also run the exact matcher per pattern, so its partition \
                   spans appear in the trace")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Estimate patterns with tracing on and export spans and metrics"
       ~man:
         [ `S Manpage.s_description;
           `P "Builds the data set, freezes the catalog and estimates the \
               given patterns (or a generated workload) with the span tracer \
               and metrics registry enabled, then writes the Chrome trace \
               ($(b,--out)) and metrics JSON ($(b,--metrics)) and prints an \
               aggregate text report. Exits non-zero if any pattern fails to \
               parse, mirroring $(b,lpp lint)." ])
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg
          $ props_arg $ smoke_arg $ scale_arg $ config_arg $ file_arg $ out
          $ metrics_out_arg $ count $ patterns_arg)

(* ---- serve ---------------------------------------------------------- *)

let cmd_serve =
  let run name seed smoke scale_name config_name socket port host workers batch
      max_line max_pending check file n props trace_out metrics_out patterns =
    let config = config_of_name config_name in
    let scale = resolve_scale ~smoke scale_name in
    Cli_common.with_obs ?trace_out ?metrics_out @@ fun () ->
    let ds = dataset_of_name name ~seed ~scale in
    let addr =
      match port with
      | Some p -> Lpp_serve.Server.Tcp (host, p)
      | None ->
          Lpp_serve.Server.Unix_socket
            (Option.value socket
               ~default:
                 (if check then
                    Filename.concat (Filename.get_temp_dir_name ())
                      (Printf.sprintf "lpp-serve-check-%d.sock" (Unix.getpid ()))
                  else "/tmp/lpp-serve.sock"))
    in
    let scfg =
      let d = Lpp_serve.Server.default_config addr in
      {
        d with
        Lpp_serve.Server.workers = Option.value workers ~default:d.Lpp_serve.Server.workers;
        batch;
        max_line;
        max_pending;
        estimator = config;
      }
    in
    let server =
      Lpp_serve.Server.start scfg ~graph:ds.graph ~catalog:ds.catalog
    in
    if check then begin
      (* Self-test: every pattern must answer bit-identically to an offline
         session over the same catalog, and the protocol must answer (not
         drop) malformed input. Used by the @serve-smoke alias. *)
      let loaded =
        Cli_common.load_patterns ds ~file ~patterns ~fallback:(fun () ->
            gen_workload ds ~seed ~n ~props)
      in
      let session = Lpp_core.Estimator.make config ds.catalog in
      let client = Lpp_serve.Client.connect addr in
      let failures = ref 0 in
      let checked = ref 0 in
      let fail fmt = incr failures; Printf.eprintf fmt in
      List.iter
        (fun (text, _) ->
          (* re-parse the text here so both sides estimate the exact pattern
             the server will parse off the wire *)
          match Lpp_pattern.Parse.parse ds.graph text with
          | Error _ -> begin
              match Lpp_serve.Client.estimate client text with
              | Error _ -> incr checked
              | Ok _ ->
                  fail "FAIL %s: server accepted an unparsable pattern\n" text
            end
          | Ok { pattern; _ } -> begin
              let expect =
                Lpp_core.Estimator.session_estimate_pattern session pattern
              in
              match Lpp_serve.Client.estimate client text with
              | Ok est when est = expect -> incr checked
              | Ok est -> fail "FAIL %s: served %h <> offline %h\n" text est expect
              | Error msg -> fail "FAIL %s: %s\n" text msg
            end)
        loaded;
      let expect_ok_false what line =
        match Lpp_util.Json.member "ok" (Lpp_serve.Client.request client line) with
        | Some (Lpp_util.Json.Bool false) -> ()
        | _ -> fail "FAIL: %s was not answered with ok:false\n" what
      in
      expect_ok_false "malformed JSON" "{not json";
      expect_ok_false "unknown op" {|{"op":"shrug"}|};
      (match
         Lpp_util.Json.member "ok" (Lpp_serve.Client.request client {|{"op":"ping"}|})
       with
      | Some (Lpp_util.Json.Bool true) -> ()
      | _ -> fail "FAIL: ping did not pong\n");
      (match
         Lpp_util.Json.member "stats"
           (Lpp_serve.Client.request client {|{"op":"stats"}|})
       with
      | Some (Lpp_util.Json.Obj _) -> ()
      | _ -> fail "FAIL: stats op returned no stats object\n");
      Lpp_serve.Client.close client;
      Lpp_serve.Server.stop server;
      Printf.printf "serve check (%s, %s): %d pattern(s) bit-identical, %d failure(s)\n"
        ds.name
        (Lpp_core.Config.name config)
        !checked !failures;
      Cli_common.exit_if_errors !failures
    end
    else begin
      let stop = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler;
      Printf.printf "lpp serve: %s (%s), %d worker(s), batch %d, listening on %s\n%!"
        ds.name
        (Lpp_core.Config.name config)
        scfg.Lpp_serve.Server.workers scfg.Lpp_serve.Server.batch
        (match addr with
        | Lpp_serve.Server.Unix_socket p -> p
        | Lpp_serve.Server.Tcp (h, p) -> Printf.sprintf "%s:%d" h p);
      while not (Atomic.get stop) do
        try Unix.sleepf 0.2 with Unix.Unix_error (EINTR, _, _) -> ()
      done;
      Printf.printf "draining and shutting down…\n%!";
      Lpp_serve.Server.stop server;
      print_endline (Lpp_util.Json.to_string (Lpp_serve.Server.stats_json server))
    end
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix socket path (default /tmp/lpp-serve.sock)")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP instead of a Unix socket")
  in
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"TCP bind address (with --port)")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers"; "w" ] ~docv:"N"
             ~doc:"Estimation domains (default: recommended domain count - 1)")
  in
  let batch =
    Arg.(value & opt int 16
         & info [ "batch" ] ~docv:"K" ~doc:"Max requests a worker drains per wakeup")
  in
  let max_line =
    Arg.(value & opt int (64 * 1024)
         & info [ "max-line" ] ~docv:"BYTES" ~doc:"Reject request lines longer than this")
  in
  let max_pending =
    Arg.(value & opt int 1024
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Reject new requests when a worker has this many queued")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Self-test mode: serve on a temporary socket, verify the \
                   given patterns (or a generated workload) answer \
                   bit-identically to an offline session, then exit")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a long-lived estimation service speaking NDJSON over a socket"
       ~man:
         [ `S Manpage.s_description;
           `P "Builds the data set, freezes the statistics catalog and serves \
               estimate requests over a Unix or TCP socket. One JSON request \
               per line, one JSON response per line, in order per connection \
               (see DESIGN.md \xc2\xa712 for the protocol). SIGINT/SIGTERM \
               drain queued requests before exiting.";
           `P "Try: echo '{\"op\": \"estimate\", \"pattern\": \
               \"(a:Person)-[:KNOWS]->(b)\"}' | nc -U /tmp/lpp-serve.sock" ])
    Term.(const run $ dataset_arg $ seed_arg $ smoke_arg $ scale_arg
          $ config_arg $ socket $ port $ host $ workers $ batch $ max_line
          $ max_pending $ check $ file_arg $ queries_arg $ props_arg
          $ trace_out_arg $ metrics_out_arg $ patterns_arg)

(* ---- stats ---------------------------------------------------------- *)

let cmd_stats =
  let run name seed smoke scale_name =
    let scale = resolve_scale ~smoke scale_name in
    let t0 = Lpp_util.Clock.now_ns () in
    let ds = dataset_of_name name ~seed ~scale in
    let build_s = Lpp_util.Clock.elapsed_s ~since:t0 in
    let t1 = Lpp_util.Clock.now_ns () in
    Lpp_stats.Catalog.freeze ds.catalog;
    let freeze_s = Lpp_util.Clock.elapsed_s ~since:t1 in
    let t = Lpp_util.Ascii_table.create Lpp_datasets.Dataset.summary_headers in
    Lpp_util.Ascii_table.add_row t (Lpp_datasets.Dataset.summary_row ds);
    Lpp_util.Ascii_table.print
      ~title:(Printf.sprintf "%s (%s tier)" ds.name
                (Lpp_datasets.Scale.to_string scale))
      t;
    print_memory_table ds;
    Printf.printf "build %.2fs (%.0f rels/s), catalog+freeze %.2fs\n" build_s
      (float_of_int (Lpp_pgraph.Graph.rel_count ds.graph) /. Float.max build_s 1e-9)
      freeze_s
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Build one data set, freeze its catalog and report sizes and memory"
       ~man:
         [ `S Manpage.s_description;
           `P "Builds the data set at the requested $(b,--scale) tier, freezes \
               the statistics catalog into its packed Bigarray layout and \
               prints the Table-1 summary plus per-component resident bytes \
               (CSR adjacency, relationship columns, NC/RC catalog arrays). \
               Use $(b,--scale large) to exercise the ≥10⁷-relationship \
               tier." ])
    Term.(const run $ dataset_arg $ seed_arg $ smoke_arg $ scale_arg)

let () =
  let info =
    Cmd.info "lpp" ~version:"1.0.0"
      ~doc:"Label probability propagation: cardinality estimation for property graphs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ cmd_datasets; cmd_workload; cmd_estimate; cmd_plan; cmd_query;
            cmd_export; cmd_lint; cmd_srclint; cmd_trace; cmd_serve;
            cmd_stats ]))
