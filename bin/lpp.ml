(* lpp — command-line front end to the library.

     dune exec bin/lpp.exe -- datasets
     dune exec bin/lpp.exe -- workload --dataset snb --queries 20
     dune exec bin/lpp.exe -- estimate --dataset cineasts --queries 15 --props
     dune exec bin/lpp.exe -- plan --dataset snb
     dune exec bin/lpp.exe -- query -d snb "(a:Person)-[:KNOWS*1..2]->(b)" *)

open Cmdliner

let dataset_of_name name ~seed =
  match String.lowercase_ascii name with
  | "snb" -> Lpp_datasets.Snb_gen.generate ~persons:500 ~seed ()
  | "cineasts" -> Lpp_datasets.Cineasts_gen.generate ~movies:1200 ~seed ()
  | "dbpedia" -> Lpp_datasets.Dbpedia_gen.generate ~entities:10_000 ~seed ()
  | path when Sys.file_exists path -> begin
      (* a saved graph file (see `lpp export` / Lpp_pgraph.Graph_io) *)
      match Lpp_pgraph.Graph_io.load path with
      | Ok graph -> Lpp_datasets.Dataset.make ~name:(Filename.basename path) graph
      | Error msg -> failwith (Printf.sprintf "cannot load %s: %s" path msg)
    end
  | other ->
      failwith
        (Printf.sprintf "unknown dataset %S (snb|cineasts|dbpedia or a saved graph file)"
           other)

let dataset_arg =
  Arg.(value & opt string "snb"
       & info [ "dataset"; "d" ] ~docv:"NAME"
           ~doc:"snb, cineasts, dbpedia, or the path of a saved graph file")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed")

let queries_arg =
  Arg.(value & opt int 20 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Queries to generate")

let props_arg =
  Arg.(value & flag & info [ "props" ] ~doc:"Generate queries with property predicates")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains for parallel stages (default: LPP_JOBS or the \
                 recommended domain count); results are identical for every N")

let set_jobs jobs = Option.iter Lpp_util.Pool.set_default_jobs jobs

let gen_workload ds ~seed ~n ~props =
  let flavour =
    if props then Lpp_workload.Query_gen.With_props
    else Lpp_workload.Query_gen.No_props
  in
  let spec =
    { (Lpp_workload.Query_gen.default_spec flavour) with
      target = n; attempts = 6 * n; truth_budget = 10_000_000 }
  in
  Lpp_workload.Query_gen.generate (Lpp_util.Rng.create (seed + 1000)) ds spec

(* ---- datasets ------------------------------------------------------- *)

let cmd_datasets =
  let run seed =
    let t = Lpp_util.Ascii_table.create Lpp_datasets.Dataset.summary_headers in
    List.iter
      (fun name ->
        Lpp_util.Ascii_table.add_row t
          (Lpp_datasets.Dataset.summary_row (dataset_of_name name ~seed)))
      [ "snb"; "cineasts"; "dbpedia" ];
    Lpp_util.Ascii_table.print ~title:"Generated data sets" t
  in
  Cmd.v (Cmd.info "datasets" ~doc:"Summarise the three synthetic data sets")
    Term.(const run $ seed_arg)

(* ---- workload ------------------------------------------------------- *)

let cmd_workload =
  let run jobs name seed n props =
    set_jobs jobs;
    let ds = dataset_of_name name ~seed in
    let qs = gen_workload ds ~seed ~n ~props in
    let t = Lpp_util.Ascii_table.create [ "id"; "shape"; "size"; "truth"; "pattern" ] in
    List.iter
      (fun (q : Lpp_workload.Query_gen.query) ->
        Lpp_util.Ascii_table.add_row t
          [ string_of_int q.id;
            Lpp_pattern.Shape.to_string q.shape;
            string_of_int q.size;
            string_of_int q.true_card;
            Format.asprintf "%a" (Lpp_pattern.Pattern.pp ~names:(Some ds.graph))
              q.pattern ])
      qs;
    Lpp_util.Ascii_table.print
      ~title:(Printf.sprintf "Workload on %s (%d queries)" ds.name (List.length qs))
      t
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate an anchored query workload with ground truth")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg $ props_arg)

(* ---- estimate ------------------------------------------------------- *)

let cmd_estimate =
  let run jobs name seed n props =
    set_jobs jobs;
    let ds = dataset_of_name name ~seed in
    let qs = gen_workload ds ~seed ~n ~props in
    Lpp_stats.Catalog.freeze ds.catalog;
    let techs = Lpp_harness.Technique.our_configurations ds in
    let t =
      Lpp_util.Ascii_table.create
        ([ "id"; "truth" ]
        @ List.map (fun (x : Lpp_harness.Technique.t) -> x.name) techs)
    in
    List.iter
      (fun (q : Lpp_workload.Query_gen.query) ->
        Lpp_util.Ascii_table.add_row t
          ([ string_of_int q.id; string_of_int q.true_card ]
          @ List.map
              (fun (x : Lpp_harness.Technique.t) ->
                Printf.sprintf "%.1f" (x.estimate q.pattern))
              techs))
      qs;
    Lpp_util.Ascii_table.print
      ~title:(Printf.sprintf "Estimates on %s" ds.name)
      t;
    (* summary line per technique *)
    let t2 = Lpp_util.Ascii_table.create [ "technique"; "q-error median [q25, q75]" ] in
    List.iter
      (fun (x : Lpp_harness.Technique.t) ->
        let ms = Lpp_harness.Runner.run ~measure_time:false x qs in
        Lpp_util.Ascii_table.add_row t2
          [ x.name; Lpp_harness.Report.qerr_cell (Lpp_harness.Runner.q_errors ms) ])
      techs;
    Lpp_util.Ascii_table.print ~title:"Accuracy summary" t2
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate a generated workload with every configuration of our technique")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg $ props_arg)

(* ---- plan ----------------------------------------------------------- *)

let cmd_plan =
  let run jobs name seed n props =
    set_jobs jobs;
    let ds = dataset_of_name name ~seed in
    let qs = gen_workload ds ~seed ~n ~props in
    List.iter
      (fun (q : Lpp_workload.Query_gen.query) ->
        Printf.printf "\n-- query %d (%s, truth %d)\n   %s\n" q.id
          (Lpp_pattern.Shape.to_string q.shape)
          q.true_card
          (Format.asprintf "%a" (Lpp_pattern.Pattern.pp ~names:(Some ds.graph))
             q.pattern);
        let alg = Lpp_pattern.Planner.plan q.pattern in
        List.iter
          (fun (op, card) ->
            Printf.printf "   %-44s -> %10.2f\n"
              (Format.asprintf "%a" Lpp_pattern.Algebra.pp_op op)
              card)
          (Lpp_core.Estimator.trace Lpp_core.Config.a_lhd ds.catalog alg))
      (List.filteri (fun i _ -> i < 5) qs)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show operator sequences and per-operator cardinality traces")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries_arg $ props_arg)

(* ---- export --------------------------------------------------------- *)

let cmd_export =
  let run name seed out =
    let ds = dataset_of_name name ~seed in
    Lpp_pgraph.Graph_io.save ds.graph out;
    Printf.printf "wrote %s (%d nodes, %d relationships) to %s\n" ds.name
      (Lpp_pgraph.Graph.node_count ds.graph)
      (Lpp_pgraph.Graph.rel_count ds.graph)
      out
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialise a generated data set to a graph file")
    Term.(const run $ dataset_arg $ seed_arg $ out)

(* ---- query ---------------------------------------------------------- *)

let cmd_query =
  let run jobs name seed queries =
    set_jobs jobs;
    let ds = dataset_of_name name ~seed in
    Lpp_stats.Catalog.freeze ds.catalog;
    let sessions =
      List.map
        (fun config -> (config, Lpp_core.Estimator.make config ds.catalog))
        (Lpp_core.Config.all @ [ Lpp_core.Config.a_lhdt ])
    in
    List.iter
      (fun q ->
        match Lpp_pattern.Parse.parse ds.graph q with
        | Error msg -> Printf.eprintf "parse error in %S: %s\n" q msg
        | Ok { pattern; _ } ->
            Printf.printf "\n%s\n  shape %s, size %d\n" q
              (Lpp_pattern.Shape.to_string (Lpp_pattern.Shape.classify pattern))
              (Lpp_pattern.Pattern.size pattern);
            let truth =
              match Lpp_exec.Matcher.count ~budget:50_000_000 ds.graph pattern with
              | Lpp_exec.Matcher.Count c -> string_of_int c
              | Budget_exceeded -> "(budget exceeded)"
            in
            Printf.printf "  exact count: %s\n" truth;
            let alg = Lpp_pattern.Planner.plan pattern in
            Printf.printf "  operator sequence: %s\n"
              (Format.asprintf "%a" Lpp_pattern.Algebra.pp alg);
            List.iter
              (fun (config, session) ->
                Printf.printf "  %-10s %.2f\n"
                  (Lpp_core.Config.name config)
                  (Lpp_core.Estimator.session_estimate session alg))
              sessions)
      queries
  in
  let queries =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATTERN"
         ~doc:"openCypher-style patterns, e.g. \"(a:Person)-[:KNOWS]->(b)\"")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Parse openCypher-style patterns, estimate and count them")
    Term.(const run $ jobs_arg $ dataset_arg $ seed_arg $ queries)

let () =
  let info =
    Cmd.info "lpp" ~version:"1.0.0"
      ~doc:"Label probability propagation: cardinality estimation for property graphs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ cmd_datasets; cmd_workload; cmd_estimate; cmd_plan; cmd_query;
            cmd_export ]))
